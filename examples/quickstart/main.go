// Quickstart: a guarded authoritative server and a recursive resolver in an
// in-process simulated network. One resolution walks the full DNS-based
// cookie dance (Figure 2 of the paper) and prints what happened.
package main

import (
	"fmt"
	"net/netip"
	"os"
	"time"

	"dnsguard"
	"dnsguard/internal/dnswire"
)

const fooZone = `
$ORIGIN foo.com.
@    3600 IN SOA ns1 admin 1 7200 600 360000 60
@    3600 IN NS  ns1
ns1  3600 IN A   192.0.2.1
www  300  IN A   198.51.100.10
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// A simulated internet with 5 ms one-way latency (10 ms RTT).
	sim := dnsguard.NewSimulation(1, 5*time.Millisecond)
	sched := sim.Scheduler()

	// The real authoritative server lives on a private address...
	ansHost := sim.AddHost("foo-ans", netip.MustParseAddr("10.99.0.2"))
	z, err := dnsguard.ParseZone(fooZone, dnsguard.MustName(""))
	if err != nil {
		return err
	}
	srv, err := dnsguard.NewANS(dnsguard.ANSConfig{
		Env:  ansHost,
		Addr: netip.MustParseAddrPort("10.99.0.2:53"),
		Zone: z,
	})
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}

	// ...while the guard claims the public address space in front of it.
	guardHost := sim.AddHost("guard", netip.MustParseAddr("10.99.0.1"))
	guardHost.ClaimPrefix(netip.MustParsePrefix("192.0.2.0/24"))
	sim.SetLatency(guardHost, ansHost, 100*time.Microsecond)
	tap, err := guardHost.OpenTap()
	if err != nil {
		return err
	}
	auth, err := dnsguard.NewAuthenticator()
	if err != nil {
		return err
	}
	g, err := dnsguard.NewRemoteGuard(dnsguard.RemoteGuardConfig{
		Env:        guardHost,
		IO:         dnsguard.TapIO{Tap: tap},
		PublicAddr: netip.MustParseAddrPort("192.0.2.1:53"),
		ANSAddr:    netip.MustParseAddrPort("10.99.0.2:53"),
		Zone:       dnsguard.MustName("foo.com"),
		Subnet:     netip.MustParsePrefix("192.0.2.0/24"),
		Fallback:   dnsguard.SchemeDNS,
		Auth:       auth,
	})
	if err != nil {
		return err
	}
	if err := g.Start(); err != nil {
		return err
	}

	// A recursive resolver (the paper's LRS) on another network.
	lrsHost := sim.AddHost("lrs", netip.MustParseAddr("10.0.0.53"))
	res, err := dnsguard.NewResolver(dnsguard.ResolverConfig{
		Env:       lrsHost,
		RootHints: []netip.AddrPort{netip.MustParseAddrPort("192.0.2.1:53")},
		Timeout:   time.Second,
	})
	if err != nil {
		return err
	}

	fmt.Println("== first resolution (cache miss: the cookie dance) ==")
	sched.Go("main", func() {
		start := sched.Now()
		r, err := res.Resolve(dnsguard.MustName("www.foo.com"), dnswire.TypeA)
		if err != nil {
			fmt.Printf("resolve failed: %v\n", err)
			return
		}
		fmt.Printf("answer: %v\n", r.Answers[len(r.Answers)-1])
		fmt.Printf("latency: %v (3 RTT: fabricated NS, cookie query, cookie-IP query)\n", sched.Now()-start)
		fmt.Printf("upstream queries: %d\n", r.Upstream)

		fmt.Println()
		fmt.Println("== second resolution, 400s later (answer TTL expired, cookies cached) ==")
		sched.Sleep(400 * time.Second)
		start = sched.Now()
		r, err = res.Resolve(dnsguard.MustName("www.foo.com"), dnswire.TypeA)
		if err != nil {
			fmt.Printf("resolve failed: %v\n", err)
			return
		}
		fmt.Printf("answer: %v\n", r.Answers[len(r.Answers)-1])
		fmt.Printf("latency: %v (1 RTT: straight to the cookie address)\n", sched.Now()-start)
		fmt.Printf("upstream queries: %d\n", r.Upstream)
	})
	sched.Run(20 * time.Minute)

	fmt.Println()
	fmt.Println("== guard statistics ==")
	st := g.Stats
	fmt.Printf("packets received:   %d\n", st.Received)
	fmt.Printf("cookies granted:    %d\n", st.NewcomerGrants)
	fmt.Printf("cookies verified:   %d\n", st.CookieValid)
	fmt.Printf("spoofed dropped:    %d\n", st.CookieInvalid)
	fmt.Printf("forwarded to ANS:   %d\n", st.ForwardedToANS)
	fmt.Printf("ANS saw queries:    %d\n", srv.Stats.UDPQueries)
	return nil
}
