// TCP fallback: the TCP-based scheme of §III-C. The guard answers UDP
// queries with the truncation flag; the resolver falls back to TCP; the
// guard's TCP proxy terminates the connection (proving the source address
// via the three-way handshake, statelessly with SYN cookies) and relays the
// request to the ANS over UDP. Also demonstrates the proxy's self-defense:
// connection-duration caps and per-client connection rate limits.
package main

import (
	"fmt"
	"net/netip"
	"os"
	"time"

	"dnsguard"
	"dnsguard/internal/dnswire"
)

const fooZone = `
$ORIGIN foo.com.
@    3600 IN SOA ns1 admin 1 7200 600 360000 60
@    3600 IN NS  ns1
ns1  3600 IN A   192.0.2.1
www  300  IN A   198.51.100.10
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "tcpfallback: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	sim := dnsguard.NewSimulation(9, 5*time.Millisecond)
	sched := sim.Scheduler()

	ansHost := sim.AddHost("foo-ans", netip.MustParseAddr("10.99.0.2"))
	z, err := dnsguard.ParseZone(fooZone, dnsguard.MustName(""))
	if err != nil {
		return err
	}
	srv, err := dnsguard.NewANS(dnsguard.ANSConfig{
		Env: ansHost, Addr: netip.MustParseAddrPort("10.99.0.2:53"), Zone: z,
	})
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}

	guardHost := sim.AddHost("guard", netip.MustParseAddr("10.99.0.1"))
	guardHost.ClaimAddr(netip.MustParseAddr("192.0.2.1"))
	sim.SetLatency(guardHost, ansHost, 100*time.Microsecond)
	dnsguard.InstallTCP(guardHost, true) // SYN cookies on
	tap, err := guardHost.OpenTap()
	if err != nil {
		return err
	}
	auth, err := dnsguard.NewAuthenticator()
	if err != nil {
		return err
	}
	g, err := dnsguard.NewRemoteGuard(dnsguard.RemoteGuardConfig{
		Env:        guardHost,
		IO:         dnsguard.TapIO{Tap: tap},
		PublicAddr: netip.MustParseAddrPort("192.0.2.1:53"),
		ANSAddr:    netip.MustParseAddrPort("10.99.0.2:53"),
		Zone:       dnsguard.MustName("foo.com"),
		Fallback:   dnsguard.SchemeTCP, // <— redirect everyone to TCP
		Auth:       auth,
	})
	if err != nil {
		return err
	}
	if err := g.Start(); err != nil {
		return err
	}
	proxy, err := dnsguard.NewTCPProxy(dnsguard.TCPProxyConfig{
		Env:       guardHost,
		Listen:    netip.MustParseAddrPort("192.0.2.1:53"),
		ANSAddr:   netip.MustParseAddrPort("10.99.0.2:53"),
		RTT:       10 * time.Millisecond, // duration cap = 5×RTT = 50ms
		ConnRate:  5,
		ConnBurst: 3,
	})
	if err != nil {
		return err
	}
	if err := proxy.Start(); err != nil {
		return err
	}

	lrsHost := sim.AddHost("lrs", netip.MustParseAddr("10.0.0.53"))
	dnsguard.InstallTCP(lrsHost, false)
	res, err := dnsguard.NewResolver(dnsguard.ResolverConfig{
		Env:       lrsHost,
		RootHints: []netip.AddrPort{netip.MustParseAddrPort("192.0.2.1:53")},
		Timeout:   time.Second,
	})
	if err != nil {
		return err
	}

	sched.Go("main", func() {
		fmt.Println("== resolution through TC redirect + TCP proxy ==")
		start := sched.Now()
		r, err := res.Resolve(dnsguard.MustName("www.foo.com"), dnswire.TypeA)
		if err != nil {
			fmt.Printf("resolve failed: %v\n", err)
			return
		}
		fmt.Printf("answer:  %v\n", r.Answers[0])
		fmt.Printf("latency: %v (3 RTT: redirect + handshake + query)\n", sched.Now()-start)

		fmt.Println()
		fmt.Println("== idle connection killed at the 5xRTT duration cap ==")
		conn, err := lrsHost.DialTCP(netip.MustParseAddrPort("192.0.2.1:53"))
		if err != nil {
			fmt.Printf("dial: %v\n", err)
			return
		}
		start = sched.Now()
		buf := make([]byte, 16)
		_, err = conn.Read(buf, time.Second)
		fmt.Printf("idle connection closed by proxy after %v (%v)\n", sched.Now()-start, err)

		fmt.Println()
		fmt.Println("== per-client connection rate limiting ==")
		opened, refused := 0, 0
		for i := 0; i < 10; i++ {
			c, err := lrsHost.DialTCP(netip.MustParseAddrPort("192.0.2.1:53"))
			if err != nil {
				refused++
				continue
			}
			// The proxy closes over-rate connections immediately.
			if _, err := c.Read(buf, 5*time.Millisecond); err == nil || sched.Now() == start {
				opened++
			} else {
				opened++
			}
			_ = c.Close()
		}
		fmt.Printf("10 rapid dials: proxy accepted %d, rate-rejected %d\n",
			int(proxy.Stats.Accepted), int(proxy.Stats.RateRejected))
		_ = opened
		_ = refused
	})
	sched.Run(time.Minute)

	fmt.Println()
	fmt.Printf("guard: %d TC redirects; proxy: %d requests relayed, %d duration kills\n",
		g.Stats.TCRedirects, proxy.Stats.Requests, proxy.Stats.DurationKills)
	fmt.Printf("SYN cookies kept the listener stateless for every handshake\n")
	return nil
}
