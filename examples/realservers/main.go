// Realservers: the same stack on genuine UDP/TCP sockets via the loopback
// interface — an authoritative server, a DNS guard in front of it, its TCP
// proxy, and a recursive resolver pointed at the guard. The guard runs the
// TCP-based scheme (§III-C): over userspace sockets the handshake is the
// only spoofing proof available (the DNS-based fabricated-IP variant needs
// an intercepted subnet; see DESIGN.md). Demonstrates that every component
// is transport-agnostic: the code is identical to the simulated examples,
// only the environment differs.
package main

import (
	"fmt"
	"net/netip"
	"os"
	"time"

	"dnsguard"
	"dnsguard/internal/dnswire"
	"dnsguard/internal/guard"
)

const fooZone = `
$ORIGIN foo.com.
@    3600 IN SOA ns1 admin 1 7200 600 360000 60
@    3600 IN NS  ns1
ns1  3600 IN A   127.0.0.1
www  300  IN A   198.51.100.10
alias 300 IN CNAME www
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "realservers: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	env := dnsguard.NewEnv()

	// Real authoritative server on an ephemeral loopback port.
	z, err := dnsguard.ParseZone(fooZone, dnsguard.MustName(""))
	if err != nil {
		return err
	}
	srv, err := dnsguard.NewANS(dnsguard.ANSConfig{
		Env:  env,
		Addr: netip.MustParseAddrPort("127.0.0.1:0"),
		Zone: z,
	})
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("ANS listening on %v\n", srv.Addr())

	// The guard binds its own socket; in a real deployment this is the
	// public service address (DNAT/inline), here just another port.
	guardSock, err := env.ListenUDP(netip.MustParseAddrPort("127.0.0.1:0"))
	if err != nil {
		return err
	}
	auth, err := dnsguard.NewAuthenticator()
	if err != nil {
		return err
	}
	g, err := dnsguard.NewRemoteGuard(dnsguard.RemoteGuardConfig{
		Env:        env,
		IO:         guard.SocketIO{Conn: guardSock},
		PublicAddr: guardSock.LocalAddr(),
		ANSAddr:    srv.Addr(),
		Zone:       dnsguard.MustName("foo.com"),
		Fallback:   dnsguard.SchemeTCP,
		Auth:       auth,
	})
	if err != nil {
		return err
	}
	if err := g.Start(); err != nil {
		return err
	}
	defer g.Close()
	proxy, err := dnsguard.NewTCPProxy(dnsguard.TCPProxyConfig{
		Env:     env,
		Listen:  guardSock.LocalAddr(),
		ANSAddr: srv.Addr(),
		RTT:     50 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	if err := proxy.Start(); err != nil {
		return err
	}
	defer proxy.Close()
	fmt.Printf("guard + TCP proxy on %v → ANS %v\n", guardSock.LocalAddr(), srv.Addr())

	// A recursive resolver whose "root hint" is the guarded address.
	res, err := dnsguard.NewResolver(dnsguard.ResolverConfig{
		Env:       env,
		RootHints: []netip.AddrPort{guardSock.LocalAddr()},
		Timeout:   2 * time.Second,
		Seed:      time.Now().UnixNano(),
	})
	if err != nil {
		return err
	}

	for _, name := range []string{"www.foo.com", "alias.foo.com", "www.foo.com"} {
		start := time.Now()
		r, err := res.Resolve(dnsguard.MustName(name), dnswire.TypeA)
		if err != nil {
			return fmt.Errorf("resolving %s: %w", name, err)
		}
		last := "-"
		if len(r.Answers) > 0 {
			last = r.Answers[len(r.Answers)-1].String()
		}
		fmt.Printf("%-16s %-44s %8v upstream=%d\n", name, last, time.Since(start).Round(time.Microsecond), r.Upstream)
	}

	st := g.Stats
	fmt.Printf("\nguard: %d TC redirects; proxy: %d requests relayed over verified TCP\n",
		st.TCRedirects, proxy.Stats.Requests)
	fmt.Println("every request reached the ANS through a completed TCP handshake —")
	fmt.Println("the source addresses are proven, not trusted.")
	return nil
}
