// DoS defense: a miniature Figure 6. A legitimate resolver-farm saturates a
// guarded ANS while a spoofed flood ramps up; then the same attack runs
// against the unprotected server. Prints legitimate throughput side by side.
package main

import (
	"fmt"
	"net/netip"
	"os"
	"time"

	"dnsguard"
	"dnsguard/internal/netsim"
	"dnsguard/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "dosdefense: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("legitimate throughput under spoofed flood (modified-DNS scheme):")
	fmt.Printf("%12s %15s %15s\n", "attack(r/s)", "guarded(r/s)", "unguarded(r/s)")
	for _, rate := range []float64{0, 50000, 100000, 200000} {
		on, err := cell(rate, true)
		if err != nil {
			return err
		}
		off, err := cell(rate, false)
		if err != nil {
			return err
		}
		fmt.Printf("%12.0f %15.0f %15.0f\n", rate, on, off)
	}
	fmt.Println()
	fmt.Println("the guard drops spoofed requests before they reach the server, so")
	fmt.Println("legitimate throughput holds while the unprotected server collapses.")
	return nil
}

func cell(attackRate float64, guarded bool) (float64, error) {
	sim := dnsguard.NewSimulation(3, 200*time.Microsecond)
	sched := sim.Scheduler()
	costs := dnsguard.DefaultCosts()

	public := netip.MustParseAddrPort("192.0.2.1:53")
	var ansHost *netsim.Host
	var ansAddr netip.AddrPort
	if guarded {
		ansHost = sim.AddHost("ans", netip.MustParseAddr("10.99.0.2"))
		ansAddr = netip.MustParseAddrPort("10.99.0.2:53")
	} else {
		ansHost = sim.AddHost("ans", public.Addr())
		ansAddr = public
	}
	ansSim, err := workload.NewANSSim(workload.ANSSimConfig{
		Env: ansHost, Addr: ansAddr,
		CPU: ansHost.CPU(), Cost: costs.Server.ANSSim, // 110K req/s ceiling
	})
	if err != nil {
		return 0, err
	}
	if err := ansSim.Start(); err != nil {
		return 0, err
	}

	if guarded {
		gh := sim.AddHost("guard", netip.MustParseAddr("10.99.0.1"))
		gh.ClaimAddr(public.Addr())
		sim.SetLatency(gh, ansHost, 50*time.Microsecond)
		tap, err := gh.OpenTap()
		if err != nil {
			return 0, err
		}
		auth, err := dnsguard.NewAuthenticator()
		if err != nil {
			return 0, err
		}
		g, err := dnsguard.NewRemoteGuard(dnsguard.RemoteGuardConfig{
			Env:        gh,
			IO:         dnsguard.TapIO{Tap: tap},
			PublicAddr: public,
			ANSAddr:    ansAddr,
			Zone:       dnsguard.MustName("foo.com"),
			Fallback:   dnsguard.SchemeDNS,
			Auth:       auth,
			CPU:        gh.CPU(),
			Costs:      costs.Guard,
			RL2:        dnsguard.Limiter2Config{PerSourceRate: 1e9, PerSourceBurst: 1e9, TrackedSources: 1024},
		})
		if err != nil {
			return 0, err
		}
		if err := g.Start(); err != nil {
			return 0, err
		}
	}

	// 160 legitimate request lanes from one LRS machine.
	lrs := sim.AddHost("lrs", netip.MustParseAddr("10.0.0.53"))
	kind := workload.KindModified
	if !guarded {
		kind = workload.KindPlain
	}
	clients := make([]*workload.Client, 160)
	for i := range clients {
		c, err := workload.NewClient(workload.ClientConfig{
			Env: lrs, Kind: kind, Mode: workload.ModeHit,
			Target: public, Wait: 10 * time.Millisecond,
		})
		if err != nil {
			return 0, err
		}
		clients[i] = c
		c.Start()
	}
	if attackRate > 0 {
		atkHost := sim.AddHost("attacker", netip.MustParseAddr("203.0.113.66"))
		kind := workload.AttackBadCookie
		if !guarded {
			kind = workload.AttackPlain
		}
		atk, err := workload.NewAttacker(workload.AttackerConfig{
			Host: atkHost, Target: public, Rate: attackRate, Kind: kind,
		})
		if err != nil {
			return 0, err
		}
		atk.Start()
	}

	count := func() uint64 {
		var sum uint64
		for _, c := range clients {
			sum += c.Stats.Completed
		}
		return sum
	}
	sched.Run(200 * time.Millisecond)
	before := count()
	sched.Run(600 * time.Millisecond)
	return float64(count()-before) / 0.4, nil
}
