// Hierarchy: a full DNS tree (root → com → foo.com) where the root server
// is protected by a DNS guard, resolved by an unmodified recursive server.
// Demonstrates the referral variant (§III-B.1): the guard fabricates NS
// names for TLD delegations, and once the LRS has cached them it never
// bothers the root again — the paper's "message 1 and 2 are eliminated".
package main

import (
	"fmt"
	"net/netip"
	"os"
	"time"

	"dnsguard"
	"dnsguard/internal/dnswire"
)

const rootZone = `
.    86400 IN SOA a.root.example. host.example. 1 7200 600 360000 60
.    86400 IN NS  a.root.example.
a.root.example. 86400 IN A 198.41.0.4
com. 86400 IN NS a.gtld.example.
a.gtld.example. 86400 IN A 192.5.6.30
`

const comZone = `
$ORIGIN com.
@ 86400 IN SOA a.gtld.example. host.example. 1 7200 600 360000 60
@ 86400 IN NS a.gtld.example.
foo 86400 IN NS ns1.foo.com.
ns1.foo.com. 86400 IN A 192.0.2.1
bar 86400 IN NS ns1.foo.com.
`

const fooZone = `
$ORIGIN foo.com.
@ 3600 IN SOA ns1 admin 1 7200 600 360000 60
@ 3600 IN NS ns1
ns1 3600 IN A 192.0.2.1
www 300 IN A 198.51.100.10
mail 300 IN A 198.51.100.11
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "hierarchy: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	sim := dnsguard.NewSimulation(7, 5*time.Millisecond)
	sched := sim.Scheduler()

	startANS := func(name, ip, text string) error {
		h := sim.AddHost(name, netip.MustParseAddr(ip))
		z, err := dnsguard.ParseZone(text, dnsguard.MustName(""))
		if err != nil {
			return err
		}
		srv, err := dnsguard.NewANS(dnsguard.ANSConfig{
			Env: h, Addr: netip.AddrPortFrom(h.Addr(), 53), Zone: z,
		})
		if err != nil {
			return err
		}
		return srv.Start()
	}

	// The root's real server hides on a private address; its guard claims
	// the famous public one.
	if err := startANS("root-ans", "10.99.0.2", rootZone); err != nil {
		return err
	}
	guardHost := sim.AddHost("root-guard", netip.MustParseAddr("10.99.0.1"))
	guardHost.ClaimAddr(netip.MustParseAddr("198.41.0.4"))
	tap, err := guardHost.OpenTap()
	if err != nil {
		return err
	}
	auth, err := dnsguard.NewAuthenticator()
	if err != nil {
		return err
	}
	g, err := dnsguard.NewRemoteGuard(dnsguard.RemoteGuardConfig{
		Env:        guardHost,
		IO:         dnsguard.TapIO{Tap: tap},
		PublicAddr: netip.MustParseAddrPort("198.41.0.4:53"),
		ANSAddr:    netip.MustParseAddrPort("10.99.0.2:53"),
		Zone:       dnsguard.MustName(""),
		Fallback:   dnsguard.SchemeDNS,
		Auth:       auth,
	})
	if err != nil {
		return err
	}
	if err := g.Start(); err != nil {
		return err
	}

	// com and foo.com are ordinary, unguarded servers.
	if err := startANS("com-ans", "192.5.6.30", comZone); err != nil {
		return err
	}
	if err := startANS("foo-ans", "192.0.2.1", fooZone); err != nil {
		return err
	}

	lrs := sim.AddHost("lrs", netip.MustParseAddr("10.0.0.53"))
	res, err := dnsguard.NewResolver(dnsguard.ResolverConfig{
		Env:       lrs,
		RootHints: []netip.AddrPort{netip.MustParseAddrPort("198.41.0.4:53")},
		Timeout:   time.Second,
	})
	if err != nil {
		return err
	}

	resolve := func(name string) {
		start := sched.Now()
		r, err := res.Resolve(dnsguard.MustName(name), dnswire.TypeA)
		if err != nil {
			fmt.Printf("%-16s FAILED: %v\n", name, err)
			return
		}
		last := "-"
		if len(r.Answers) > 0 {
			last = r.Answers[len(r.Answers)-1].String()
		}
		fmt.Printf("%-16s %-42s %7v  upstream=%d  rootGuardPkts=%d\n",
			name, last, sched.Now()-start, r.Upstream, g.Stats.Received)
	}

	sched.Go("main", func() {
		fmt.Println("resolving through the guarded root:")
		resolve("www.foo.com")  // walks root (guarded) → com → foo
		resolve("mail.foo.com") // foo delegation cached: no root contact
		resolve("www.bar.com")  // com cached: still no root contact
	})
	sched.Run(time.Minute)

	fmt.Println()
	fmt.Printf("root guard: grants=%d verified=%d — the root was consulted exactly once,\n",
		g.Stats.NewcomerGrants, g.Stats.CookieValid)
	fmt.Println("through the cookie dance; every later query used the cached fabricated NS.")
	return nil
}
