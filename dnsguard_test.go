package dnsguard

import (
	"net/netip"
	"testing"
	"time"

	"dnsguard/internal/dnswire"
	"dnsguard/internal/guard"
)

const testZone = `
$ORIGIN example.com.
@    3600 IN SOA ns1 admin 1 7200 600 360000 60
@    3600 IN NS  ns1
ns1  3600 IN A   192.0.2.1
www  300  IN A   198.51.100.42
`

// TestPublicAPISimulatedEndToEnd drives the entire public surface in the
// simulator: simulation, guarded ANS, resolver, attack, stats.
func TestPublicAPISimulatedEndToEnd(t *testing.T) {
	sim := NewSimulation(123, 2*time.Millisecond)
	sched := sim.Scheduler()

	ansHost := sim.AddHost("ans", netip.MustParseAddr("10.99.0.2"))
	z, err := ParseZone(testZone, MustName(""))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewANS(ANSConfig{Env: ansHost, Addr: netip.MustParseAddrPort("10.99.0.2:53"), Zone: z})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	guardHost := sim.AddHost("guard", netip.MustParseAddr("10.99.0.1"))
	guardHost.ClaimPrefix(netip.MustParsePrefix("192.0.2.0/24"))
	tap, err := guardHost.OpenTap()
	if err != nil {
		t.Fatal(err)
	}
	auth, err := NewAuthenticator()
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewRemoteGuard(RemoteGuardConfig{
		Env:        guardHost,
		IO:         TapIO{Tap: tap},
		PublicAddr: netip.MustParseAddrPort("192.0.2.1:53"),
		ANSAddr:    netip.MustParseAddrPort("10.99.0.2:53"),
		Zone:       MustName("example.com"),
		Subnet:     netip.MustParsePrefix("192.0.2.0/24"),
		Fallback:   SchemeDNS,
		Auth:       auth,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}

	lrsHost := sim.AddHost("lrs", netip.MustParseAddr("10.0.0.53"))
	res, err := NewResolver(ResolverConfig{
		Env:       lrsHost,
		RootHints: []netip.AddrPort{netip.MustParseAddrPort("192.0.2.1:53")},
		Timeout:   time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	// An LRS front end + stub query path too.
	lrsSrv, err := NewLRS(LRSConfig{
		Env:      lrsHost,
		Addr:     netip.MustParseAddrPort("10.0.0.53:53"),
		Resolver: res,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := lrsSrv.Start(); err != nil {
		t.Fatal(err)
	}

	stub := sim.AddHost("stub", netip.MustParseAddr("10.0.0.7"))
	sched.Go("test", func() {
		r, err := res.Resolve(MustName("www.example.com"), dnswire.TypeA)
		if err != nil {
			t.Errorf("Resolve: %v", err)
			return
		}
		if len(r.Answers) == 0 {
			t.Error("no answers")
		}
		// Stub → LRS → (cache) answer.
		conn, err := stub.ListenUDP(netip.AddrPort{})
		if err != nil {
			t.Errorf("stub bind: %v", err)
			return
		}
		defer conn.Close()
		q, _ := dnswire.NewQuery(77, MustName("www.example.com"), dnswire.TypeA).PackUDP(512)
		_ = conn.WriteTo(q, netip.MustParseAddrPort("10.0.0.53:53"))
		payload, _, err := conn.ReadFrom(time.Second)
		if err != nil {
			t.Errorf("stub read: %v", err)
			return
		}
		resp, err := dnswire.Unpack(payload)
		if err != nil || !resp.Flags.RA || len(resp.Answers) == 0 {
			t.Errorf("stub resp = %v %v", resp, err)
		}
	})
	sched.Run(time.Minute)

	if g.Stats.CookieValid == 0 || srv.Stats.UDPQueries == 0 {
		t.Fatalf("guard=%+v ans=%+v", g.Stats, srv.Stats)
	}
}

// TestPublicAPIRealSockets runs guard + ANS + proxy + resolver over real
// loopback sockets with the TCP scheme — the full real-mode path.
func TestPublicAPIRealSockets(t *testing.T) {
	env := NewEnv()
	z, err := ParseZone(testZone, MustName(""))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewANS(ANSConfig{Env: env, Addr: netip.MustParseAddrPort("127.0.0.1:0"), Zone: z})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	guardSock, err := env.ListenUDP(netip.MustParseAddrPort("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	auth, err := NewAuthenticator()
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewRemoteGuard(RemoteGuardConfig{
		Env:        env,
		IO:         guard.SocketIO{Conn: guardSock},
		PublicAddr: guardSock.LocalAddr(),
		ANSAddr:    srv.Addr(),
		Zone:       MustName("example.com"),
		Fallback:   SchemeTCP,
		Auth:       auth,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	proxy, err := NewTCPProxy(TCPProxyConfig{
		Env:     env,
		Listen:  guardSock.LocalAddr(),
		ANSAddr: srv.Addr(),
		RTT:     50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := proxy.Start(); err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	res, err := NewResolver(ResolverConfig{
		Env:       env,
		RootHints: []netip.AddrPort{guardSock.LocalAddr()},
		Timeout:   2 * time.Second,
		Seed:      time.Now().UnixNano(),
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := res.Resolve(MustName("www.example.com"), dnswire.TypeA)
	if err != nil {
		t.Fatalf("Resolve over real sockets: %v (guard %+v proxy %+v)", err, g.Stats, proxy.Stats)
	}
	if len(r.Answers) == 0 {
		t.Fatal("no answers")
	}
	if proxy.Stats.Requests == 0 {
		t.Fatalf("proxy relayed nothing: %+v", proxy.Stats)
	}
}

// TestDefaultCostsExposed sanity-checks the public cost-model accessor.
func TestDefaultCostsExposed(t *testing.T) {
	c := DefaultCosts()
	if c.Guard.PacketOp <= 0 || c.Server.BINDUDP <= 0 {
		t.Fatalf("costs = %+v", c)
	}
}

// TestZoneSetFacade exercises the multi-zone public constructor.
func TestZoneSetFacade(t *testing.T) {
	z, err := ParseZone(testZone, MustName(""))
	if err != nil {
		t.Fatal(err)
	}
	zs := NewZoneSet(z)
	if got := zs.Match(MustName("www.example.com")); got == nil {
		t.Fatal("Match failed")
	}
	if zs.Match(MustName("other.net")) != nil {
		t.Fatal("matched foreign name")
	}
}

// TestZoneSetErrDuplicateZone checks the error-returning constructor rejects
// a duplicate apex instead of panicking, and that MustZoneSet still panics.
func TestZoneSetErrDuplicateZone(t *testing.T) {
	z, err := ParseZone(testZone, MustName(""))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewZoneSetErr(z); err != nil {
		t.Fatalf("single zone rejected: %v", err)
	}
	if _, err := NewZoneSetErr(z, z); err == nil {
		t.Fatal("duplicate zone accepted")
	}
	if _, err := NewZoneSetErr(nil); err == nil {
		t.Fatal("nil zone accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustZoneSet did not panic on duplicate zone")
		}
	}()
	MustZoneSet(z, z)
}

// TestFaultInjectionFacade drives the exported fault-injection surface: a
// lossy, jittery link plus a scheduled partition, observed via LinkStats.
func TestFaultInjectionFacade(t *testing.T) {
	sim := NewSimulation(9, 2*time.Millisecond)
	sched := sim.Scheduler()
	a := sim.AddHost("a", netip.MustParseAddr("10.0.0.1"))
	b := sim.AddHost("b", netip.MustParseAddr("10.0.0.2"))
	sim.SetLinkFaults(a, b, Faults{Loss: 0.5, Jitter: time.Millisecond})
	sim.PartitionFor(a, b, 50*time.Millisecond, 20*time.Millisecond)

	dst := netip.MustParseAddrPort("10.0.0.2:9000")
	sched.Go("sink", func() {
		conn, err := b.ListenUDP(dst)
		if err != nil {
			t.Errorf("bind: %v", err)
			return
		}
		defer conn.Close()
		for {
			if _, _, err := conn.ReadFrom(200 * time.Millisecond); err != nil {
				return
			}
		}
	})
	sched.Go("source", func() {
		conn, err := a.ListenUDP(netip.AddrPort{})
		if err != nil {
			t.Errorf("bind: %v", err)
			return
		}
		defer conn.Close()
		for i := 0; i < 100; i++ {
			_ = conn.WriteTo([]byte{byte(i)}, dst)
			sched.Sleep(time.Millisecond)
		}
	})
	sched.Run(time.Minute)

	var st LinkStats = sim.LinkStats(a, b)
	if st.Sent != 100 || st.Lost == 0 || st.PartitionDrops == 0 {
		t.Fatalf("link stats = %+v", st)
	}
}
