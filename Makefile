# dnsguard build/verify entry points. `make check` is the full local gate:
# vet, the race-enabled suite, and a short fuzz smoke on both dnswire targets.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test check vet race fuzz-smoke metrics-smoke bench-smoke testdata

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short deterministic-ish smoke on each fuzz target; regressions in the
# checked-in corpus (testdata/fuzz/...) fail `make test` already, this adds
# fresh mutation coverage.
fuzz-smoke:
	$(GO) test ./internal/dnswire -run='^$$' -fuzz='^FuzzDecode$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/dnswire -run='^$$' -fuzz='^FuzzNameRoundTrip$$' -fuzztime=$(FUZZTIME)

# Boot a guarded ANS with -metrics-addr, scrape /metrics once, and check the
# guard's series are present. End-to-end proof the observability layer serves.
metrics-smoke:
	@set -e; \
	$(GO) build -o /tmp/dnsguard-smoke-ansd ./cmd/ansd; \
	$(GO) build -o /tmp/dnsguard-smoke-guardd ./cmd/dnsguardd; \
	/tmp/dnsguard-smoke-ansd -zone testdata/foo.com.zone -listen 127.0.0.1:15353 & ANS=$$!; \
	/tmp/dnsguard-smoke-guardd -listen 127.0.0.1:15355 -ans 127.0.0.1:15353 -zone foo.com \
		-shards 2 -metrics-addr 127.0.0.1:19090 -stats 0 & GUARD=$$!; \
	trap 'kill $$ANS $$GUARD 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		curl -sf http://127.0.0.1:19090/metrics >/tmp/dnsguard-smoke-metrics.txt 2>/dev/null && break; \
		sleep 0.1; \
	done; \
	curl -sf http://127.0.0.1:19090/debug/vars >/dev/null; \
	for series in guard_remote_received guard_remote_cookie_valid guard_remote_upstream_spoofed \
		guard_rl1_allowed tcpproxy_accepted guard_remote_pending \
		guard_engine_shards guard_engine_handled guard_engine_shed_new \
		guard_engine_queue_depth guard_engine_shard1_handled; do \
		grep -q "^$$series " /tmp/dnsguard-smoke-metrics.txt || { echo "missing $$series"; exit 1; }; \
	done; \
	grep -q "^guard_engine_shards 2$$" /tmp/dnsguard-smoke-metrics.txt \
		|| { echo "guard_engine_shards != 2"; exit 1; }; \
	echo "metrics-smoke: ok ($$(wc -l < /tmp/dnsguard-smoke-metrics.txt) series)"

# One short pass over the real-time engine benchmark (1 shard, clean load)
# and one scaled-down Table III regeneration: catches dataplane or harness
# rot without the full sweep's runtime.
bench-smoke:
	$(GO) test -run='^$$' -bench='^BenchmarkEngineThroughput$$/shards=1/spoof=0$$' -benchtime=1x -short .
	$(GO) test -run='^$$' -bench='^BenchmarkTableIII_NSName$$' -benchtime=1x .

check: vet race fuzz-smoke metrics-smoke bench-smoke

# Regenerate the wire-capture fuzz seeds under internal/dnswire/testdata/.
testdata:
	$(GO) run internal/dnswire/testdata/gen.go
