# dnsguard build/verify entry points. `make check` is the full local gate:
# vet, the race-enabled suite, and a short fuzz smoke on both dnswire targets.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test check vet race fuzz-smoke testdata

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short deterministic-ish smoke on each fuzz target; regressions in the
# checked-in corpus (testdata/fuzz/...) fail `make test` already, this adds
# fresh mutation coverage.
fuzz-smoke:
	$(GO) test ./internal/dnswire -run='^$$' -fuzz='^FuzzDecode$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/dnswire -run='^$$' -fuzz='^FuzzNameRoundTrip$$' -fuzztime=$(FUZZTIME)

check: vet race fuzz-smoke

# Regenerate the wire-capture fuzz seeds under internal/dnswire/testdata/.
testdata:
	$(GO) run internal/dnswire/testdata/gen.go
