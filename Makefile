# dnsguard build/verify entry points. `make check` is the full local gate:
# vet, the race-enabled suite, and a short fuzz smoke on both dnswire targets.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test check vet race api-check fuzz-smoke metrics-smoke bench-smoke crash-restart-smoke campaign-smoke fleet-smoke upgrade-smoke testdata

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -shuffle=on ./...

# Short deterministic-ish smoke on each fuzz target; regressions in the
# checked-in corpus (testdata/fuzz/...) fail `make test` already, this adds
# fresh mutation coverage.
fuzz-smoke:
	$(GO) test ./internal/dnswire -run='^$$' -fuzz='^FuzzDecode$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/dnswire -run='^$$' -fuzz='^FuzzNameRoundTrip$$' -fuzztime=$(FUZZTIME)

# Boot a guarded ANS with -metrics-addr, scrape /metrics once, and check the
# guard's series are present. End-to-end proof the observability layer serves.
metrics-smoke:
	@set -e; \
	$(GO) build -o /tmp/dnsguard-smoke-ansd ./cmd/ansd; \
	$(GO) build -o /tmp/dnsguard-smoke-guardd ./cmd/dnsguardd; \
	/tmp/dnsguard-smoke-ansd -zone testdata/foo.com.zone -listen 127.0.0.1:15353 & ANS=$$!; \
	/tmp/dnsguard-smoke-guardd -listen 127.0.0.1:15355 -ans 127.0.0.1:15353 -zone foo.com \
		-shards 2 -mitigate -metrics-addr 127.0.0.1:19090 -stats 0 & GUARD=$$!; \
	trap 'kill $$ANS $$GUARD 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		curl -sf http://127.0.0.1:19090/metrics >/tmp/dnsguard-smoke-metrics.txt 2>/dev/null && break; \
		sleep 0.1; \
	done; \
	curl -sf http://127.0.0.1:19090/debug/vars >/dev/null; \
	for series in guard_remote_received guard_remote_cookie_valid guard_remote_upstream_spoofed \
		guard_rl1_allowed tcpproxy_accepted guard_remote_pending \
		guard_engine_shards guard_engine_handled guard_engine_shed_new \
		guard_engine_queue_depth guard_engine_shard1_handled \
		guard_mitigation_layer guard_mitigation_escalations; do \
		grep -q "^$$series " /tmp/dnsguard-smoke-metrics.txt || { echo "missing $$series"; exit 1; }; \
	done; \
	grep -q "^guard_engine_shards 2$$" /tmp/dnsguard-smoke-metrics.txt \
		|| { echo "guard_engine_shards != 2"; exit 1; }; \
	grep -q "^guard_mitigation_enabled 1$$" /tmp/dnsguard-smoke-metrics.txt \
		|| { echo "guard_mitigation_enabled != 1 under -mitigate"; exit 1; }; \
	echo "metrics-smoke: ok ($$(wc -l < /tmp/dnsguard-smoke-metrics.txt) series)"

# Run every shipped campaign pack in the deterministic lab (2 shards, fixed
# seed) plus the mitigation-selector transition table: the adversarial gate
# behind DESIGN.md §13. Same-seed runs must match the checked-in goldens.
campaign-smoke:
	$(GO) test ./internal/workload -run='^TestCampaign' -count=1
	$(GO) test ./internal/guard -run='^TestMitigator' -count=1

# Boot the 3-guard netsim fleet and run the shipped fleet packs: the
# catchment-shift acceptance gate (flap moves ≥30% of a 120k-source verified
# population to a cold site mid-attack; the cold site re-admits via the
# fleet-shared keyring; zero verified-traffic drops during the scripted
# drain; bit-identical golden replay) plus site failure and mid-run key
# rotation. The gate behind DESIGN.md §15.
fleet-smoke:
	$(GO) test ./internal/fleet -run='^TestFleet' -count=1

# The zero-downtime acceptance gate behind DESIGN.md §16: every site of the
# rolling-upgrade pack restarted one at a time under live load and a mid-roll
# spoof flood; a keyring rotation seeded through a controller outage and a
# site-pair partition converges by gossip anti-entropy within bounded rounds;
# catchment-moved verified sources re-admit with zero extra cookie exchanges;
# goodput stays ≥ 0.99; the metrics export replays bit-identically against
# the checked-in golden — all under the race detector.
upgrade-smoke:
	$(GO) test -race ./internal/fleet -run='^(TestRollingUpgrade|TestGossip)' -count=1

# The public-API freeze: any change to the exported dnsguard surface fails
# here until testdata/api.txt is deliberately regenerated with
# `go test -run TestAPI -update`.
api-check:
	$(GO) test -run='^TestAPI$$' .

# One short pass over the real-time engine benchmark (1 shard, clean load,
# per-packet and batched I/O), one scaled-down Table III regeneration, and
# the DESIGN §17 allocation/cost gates: the wire-to-wire fast path must stay
# at 0 allocs per verified packet cycle (TestFastPathWireAllocs), both cookie
# MAC schemes must verify allocation-free (BenchmarkCookieVerifyMAC), and one
# verification under either scheme must cost less than the host's measured
# per-datagram send syscall (TestMACCostBelowSyscall).
bench-smoke:
	$(GO) test -run='^$$' -bench='^BenchmarkEngineThroughput$$/shards=1/spoof=0$$/batch=1$$' -benchtime=1x -short .
	$(GO) test -run='^$$' -bench='^BenchmarkEngineThroughput$$/shards=1/spoof=0$$/batch=32$$' -benchtime=1x -short .
	$(GO) test -run='^$$' -bench='^BenchmarkTableIII_NSName$$' -benchtime=1x .
	$(GO) test -run='^$$' -bench='^BenchmarkCookieVerifyMAC$$' -benchtime=1000x .
	$(GO) test -run='^TestFastPathWireAllocs$$' -count=1 ./internal/guard
	$(GO) test -run='^TestMACCostBelowSyscall$$' -count=1 -v ./internal/experiments
	DNSGUARD_SCALING_SMOKE=1 $(GO) test -run='^TestShardScalingSmoke$$' -count=1 -v ./internal/experiments

# Crash-restart smoke: boot a guarded ANS with a persisted keyring, obtain a
# cookie, SIGKILL the guard, restart it on the same -state-file, and prove
# the pre-crash cookie still verifies (guard_remote_cookie_valid = 1 on the
# restarted process). The end-to-end check behind DESIGN.md Â§11.
crash-restart-smoke:
	@set -e; \
	rm -f /tmp/dnsguard-smoke-keyring /tmp/dnsguard-smoke-cookie; \
	$(GO) build -o /tmp/dnsguard-smoke-ansd ./cmd/ansd; \
	$(GO) build -o /tmp/dnsguard-smoke-guardd ./cmd/dnsguardd; \
	$(GO) build -o /tmp/dnsguard-smoke-dnsq ./cmd/dnsq; \
	/tmp/dnsguard-smoke-ansd -zone testdata/foo.com.zone -listen 127.0.0.1:16353 & ANS=$$!; \
	trap 'kill $$ANS $$GUARD 2>/dev/null' EXIT; \
	/tmp/dnsguard-smoke-guardd -listen 127.0.0.1:16355 -ans 127.0.0.1:16353 -zone foo.com \
		-state-file /tmp/dnsguard-smoke-keyring -stats 0 & GUARD=$$!; \
	ok=; for i in $$(seq 1 50); do \
		/tmp/dnsguard-smoke-dnsq -server 127.0.0.1:16355 -timeout 200ms \
			-cookie-file /tmp/dnsguard-smoke-cookie www.foo.com A >/dev/null 2>&1 \
			&& { ok=1; break; }; sleep 0.1; \
	done; test -n "$$ok" || { echo "pre-crash query never succeeded"; exit 1; }; \
	test -s /tmp/dnsguard-smoke-cookie || { echo "no cookie cached"; exit 1; }; \
	kill -9 $$GUARD; wait $$GUARD 2>/dev/null || true; \
	/tmp/dnsguard-smoke-guardd -listen 127.0.0.1:16355 -ans 127.0.0.1:16353 -zone foo.com \
		-state-file /tmp/dnsguard-smoke-keyring -metrics-addr 127.0.0.1:19091 -stats 0 & GUARD=$$!; \
	ok=; for i in $$(seq 1 50); do \
		/tmp/dnsguard-smoke-dnsq -server 127.0.0.1:16355 -timeout 200ms \
			-cookie-file /tmp/dnsguard-smoke-cookie www.foo.com A >/dev/null 2>&1 \
			&& { ok=1; break; }; sleep 0.1; \
	done; test -n "$$ok" || { echo "post-restart query never succeeded"; exit 1; }; \
	curl -sf http://127.0.0.1:19091/metrics | grep -q "^guard_remote_cookie_valid [1-9]" \
		|| { echo "pre-crash cookie did not verify after restart"; exit 1; }; \
	echo "crash-restart-smoke: ok"

check: vet race api-check campaign-smoke fleet-smoke upgrade-smoke fuzz-smoke metrics-smoke bench-smoke crash-restart-smoke

# Regenerate the wire-capture fuzz seeds under internal/dnswire/testdata/.
testdata:
	$(GO) run internal/dnswire/testdata/gen.go
