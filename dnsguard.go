// Package dnsguard is the public API of this reproduction of "Spoof
// Detection for Preventing DoS Attacks against DNS Servers" (Guo, Chen,
// Chiueh — ICDCS 2006).
//
// It exposes the DNS Guard itself (the ANS-side and LRS-side firewall
// modules implementing the paper's three cookie schemes), the substrates it
// is built on (DNS wire codec, authoritative server, recursive resolver,
// zone data, rate limiters, cookie engine, TCP proxy), and the two execution
// environments everything runs in:
//
//   - a real-socket environment (NewEnv) for actual deployments — see the
//     cmd/ daemons;
//   - a deterministic discrete-event simulator (NewSimulation) used by the
//     experiment harness that regenerates every table and figure of the
//     paper — see internal/experiments and cmd/benchtab.
//
// # Quick start (simulated)
//
//	sim := dnsguard.NewSimulation(42, 5*time.Millisecond)
//	... // build hosts, a guarded ANS and a resolver; see examples/quickstart
//
// # Quick start (real sockets)
//
//	env := dnsguard.NewEnv()
//	auth, _ := dnsguard.NewAuthenticator()
//	g, _ := dnsguard.NewRemoteGuard(dnsguard.RemoteGuardConfig{ ... })
//
// The examples/ directory contains five runnable programs covering both
// modes, and DESIGN.md maps every paper section to the module implementing
// it.
package dnsguard

import (
	"io"
	"net"
	"time"

	"dnsguard/internal/ans"
	"dnsguard/internal/cookie"
	"dnsguard/internal/cpumodel"
	"dnsguard/internal/dnswire"
	"dnsguard/internal/engine"
	"dnsguard/internal/fleet"
	"dnsguard/internal/guard"
	"dnsguard/internal/metrics"
	"dnsguard/internal/netapi"
	"dnsguard/internal/netsim"
	"dnsguard/internal/ratelimit"
	"dnsguard/internal/realnet"
	"dnsguard/internal/resolver"
	"dnsguard/internal/tcpproxy"
	"dnsguard/internal/tcpsim"
	"dnsguard/internal/vclock"
	"dnsguard/internal/workload"
	"dnsguard/internal/zone"
)

// Environment -----------------------------------------------------------

// Env is the execution environment (clock + sockets) every component runs
// against; implemented by the real network and by simulated hosts.
type Env = netapi.Env

// NewEnv returns the real-socket environment backed by the operating
// system's network stack.
func NewEnv() Env { return realnet.New() }

// Caps describes the optional capabilities of an Env: queue construction,
// SO_REUSEPORT-style sharded binds, cooperative scheduling, and native batch
// datagram I/O. Every field is usable as returned — optional interfaces are
// replaced by portable fallbacks where they exist, and nil only where no
// fallback is possible (see the netapi capability matrix).
type Caps = netapi.Caps

// Capabilities inspects env once and returns its capability set; call it
// instead of type-asserting the optional netapi interfaces by hand.
func Capabilities(env Env) Caps { return netapi.Capabilities(env) }

// Simulation is the deterministic discrete-event network simulator used for
// experiments and tests.
type Simulation = netsim.Network

// SimHost is one simulated machine; it implements Env.
type SimHost = netsim.Host

// Scheduler is the simulator's virtual-time event scheduler.
type Scheduler = vclock.Scheduler

// NewSimulation creates a simulator with the given seed and default one-way
// link latency.
func NewSimulation(seed int64, oneWayLatency time.Duration) *Simulation {
	return netsim.New(vclock.New(seed), oneWayLatency)
}

// InstallTCP attaches the simulated TCP stack (with optional SYN cookies)
// to a simulated host so DialTCP/ListenTCP work on it.
func InstallTCP(h *SimHost, synCookies bool) {
	tcpsim.Install(h, tcpsim.Config{SYNCookies: synCookies})
}

// Fault injection ----------------------------------------------------------

// Faults is a per-link fault-injection policy for the simulator: packet
// loss, duplication, reordering, payload corruption and latency jitter, all
// drawn deterministically from the simulation seed. The zero value injects
// nothing and leaves event schedules bit-for-bit unchanged. Install with
// (*Simulation).SetFaults / SetLinkFaults / SetDefaultFaults; partitions are
// managed separately with Partition / Heal / PartitionFor.
type Faults = netsim.Faults

// LinkStats counts per-directed-link fault outcomes (sent, lost, duplicated,
// reordered, corrupted, partition drops); read with (*Simulation).LinkStats.
type LinkStats = netsim.LinkStats

// DNS protocol ------------------------------------------------------------

// Name is a canonical DNS domain name.
type Name = dnswire.Name

// Message is a DNS message; see the dnswire documentation for the codec.
type Message = dnswire.Message

// Question is one question record of a DNS message.
type Question = dnswire.Question

// WireView is a zero-copy read of a DNS datagram's header and first question
// over borrowed bytes — the guard's verified-source fast path parses with it
// instead of materializing a Message. Neither a WireView nor any slice it
// returns may outlive the underlying buffer (see the dnswire view
// invariants).
type WireView = dnswire.View

// ParseWireView parses b's header and first question in place; ok is false
// when b cannot be viewed zero-copy (the caller falls back to the
// materializing codec, which decides between a parse and a malformed
// verdict).
func ParseWireView(b []byte) (WireView, bool) { return dnswire.ParseView(b) }

// UnpackQuestion decodes one question record from the start of b — the flat
// span WireView.QuestionWire returns — reporting how many bytes it consumed.
func UnpackQuestion(b []byte) (Question, int, error) { return dnswire.UnpackQuestion(b) }

// ParseName validates and canonicalizes a domain name.
func ParseName(s string) (Name, error) { return dnswire.ParseName(s) }

// MustName is ParseName that panics on error.
func MustName(s string) Name { return dnswire.MustName(s) }

// Zone is authoritative DNS data.
type Zone = zone.Zone

// ParseZone reads an RFC 1035 master file.
func ParseZone(text string, defaultOrigin Name) (*Zone, error) {
	return zone.Parse(text, defaultOrigin)
}

// ZoneSet hosts multiple zones on one authoritative server.
type ZoneSet = ans.ZoneSet

// NewZoneSetErr builds a zone set, reporting invalid or duplicate zones as
// an error. Use this when zone data comes from configuration or user input.
func NewZoneSetErr(zones ...*Zone) (*ZoneSet, error) {
	return ans.NewZoneSet(zones...)
}

// MustZoneSet builds a zone set and panics on invalid or duplicate zones,
// mirroring MustName; for statically-known zone literals.
func MustZoneSet(zones ...*Zone) *ZoneSet {
	zs, err := ans.NewZoneSet(zones...)
	if err != nil {
		panic(err)
	}
	return zs
}

// NewZoneSet builds a zone set; add zones with Add or pass them here.
//
// Deprecated: NewZoneSet panics on duplicate zones. Use NewZoneSetErr for
// error handling or MustZoneSet to make the panic explicit.
func NewZoneSet(zones ...*Zone) *ZoneSet {
	return MustZoneSet(zones...)
}

// Servers and resolvers ----------------------------------------------------

// ANSConfig configures an authoritative name server.
type ANSConfig = ans.Config

// ANS is an authoritative name server (UDP + DNS-over-TCP).
type ANS = ans.Server

// NewANS creates an authoritative server; call Start to serve.
func NewANS(cfg ANSConfig) (*ANS, error) { return ans.New(cfg) }

// ResolverConfig configures a recursive resolver.
type ResolverConfig = resolver.Config

// Resolver is an iterative (recursive-serving) resolver with a TTL cache —
// the paper's LRS.
type Resolver = resolver.Resolver

// NewResolver creates a resolver.
func NewResolver(cfg ResolverConfig) (*Resolver, error) { return resolver.New(cfg) }

// LRSConfig configures the recursive front end serving stub resolvers.
type LRSConfig = resolver.ServerConfig

// LRS is a recursive DNS server wrapping a Resolver.
type LRS = resolver.Server

// NewLRS creates an LRS front end.
func NewLRS(cfg LRSConfig) (*LRS, error) { return resolver.NewServer(cfg) }

// The guard -----------------------------------------------------------------

// Authenticator computes and verifies the guard's cookies
// (c = MAC(key76, source IP), §III-E — MD5 by default), with generation-bit
// key rotation.
type Authenticator = cookie.Authenticator

// MACScheme is the pluggable keyed-MAC behind cookie minting and
// verification. The paper-fidelity default is MD5; SipHash-2-4-128 is the
// cheaper modern alternative. A keyring is created under one scheme and
// keeps it for life (state files and fleet pushes carry a scheme tag) —
// switching schemes mid-ring would orphan every cookie the population holds.
type MACScheme = cookie.MACScheme

// Built-in cookie MAC schemes.
var (
	// CookieMD5 computes c = MD5(key76 ‖ source IP) — the paper's formula,
	// byte-identical to every release before schemes were pluggable.
	CookieMD5 = cookie.MD5
	// CookieSipHash computes the cookie with SipHash-2-4-128 keyed from the
	// ring key — far cheaper per packet than MD5 on modern CPUs.
	CookieSipHash = cookie.SipHash
)

// MACSchemeByName resolves a scheme name from configuration: "" and "md5"
// are CookieMD5, "siphash" is CookieSipHash.
func MACSchemeByName(name string) (MACScheme, error) { return cookie.MACByName(name) }

// KeyringOptions parameterizes OpenKeyringWith: key material, restored
// state, persistent state file, follower mode, and MAC scheme in one struct.
type KeyringOptions = cookie.Options

// OpenKeyringWith is the unified authenticator constructor; every historical
// entry point (NewAuthenticator, OpenKeyring, OpenKeyringHandle,
// RestoreAuthenticator) is a special case of it.
func OpenKeyringWith(opts KeyringOptions) (*Authenticator, error) { return cookie.Open(opts) }

// NewAuthenticator creates an authenticator with a fresh random key.
func NewAuthenticator() (*Authenticator, error) { return cookie.NewAuthenticator() }

// OpenKeyring loads the epoch'd cookie keyring persisted at path, or creates
// a fresh one there if the file does not exist, and binds the authenticator
// so every later Rotate is persisted atomically. A guard restarted with the
// same state file keeps verifying every cookie the LRS population cached
// before the restart (DESIGN.md §11).
func OpenKeyring(path string) (*Authenticator, error) { return cookie.OpenKeyring(path) }

// OpenKeyringHandle opens a follower handle on an existing keyring state
// file: the handle mints and verifies with the shared key material but
// cannot Rotate (ErrKeyringFollower) — the owner rotates, followers Reload.
// Fleet deployments give every site a handle on one ring so any guard
// verifies a cookie minted by any other (DESIGN.md §15).
func OpenKeyringHandle(path string) (*Authenticator, error) { return cookie.OpenKeyringHandle(path) }

// ErrKeyringFollower is returned by Rotate on a follower handle.
var ErrKeyringFollower = cookie.ErrFollowHandle

// KeyState is the keyring's serializable state: epoch plus both epoch keys.
type KeyState = cookie.KeyState

// RestoreAuthenticator rebuilds an authenticator from a captured KeyState
// (an unbound in-memory handle on the same ring).
func RestoreAuthenticator(st KeyState) *Authenticator { return cookie.RestoreAuthenticator(st) }

// Scheme selects how the guard bootstraps cookie-less requesters.
type Scheme = guard.Scheme

// Fallback schemes.
const (
	// SchemeDNS embeds cookies in fabricated NS names/addresses (§III-B).
	SchemeDNS = guard.SchemeDNS
	// SchemeTCP redirects requesters to TCP via truncation (§III-C).
	SchemeTCP = guard.SchemeTCP
)

// RemoteGuardConfig configures the ANS-side guard.
type RemoteGuardConfig = guard.RemoteConfig

// GuardHealthConfig configures upstream ANS health tracking and failover
// (per-shard circuit breakers over the ordered upstream list).
type GuardHealthConfig = guard.HealthConfig

// SupervisorConfig configures dataplane shard supervision: panic quarantine,
// per-shard restart, and the trip policy when a shard exhausts its restart
// budget.
type SupervisorConfig = engine.SupervisorConfig

// Trip policies for a shard that exhausts its restart budget.
const (
	// TripDrop sheds the tripped shard's traffic (fail-closed).
	TripDrop = engine.TripDrop
	// TripPass relays the tripped shard's traffic unfiltered (fail-open).
	TripPass = engine.TripPass
)

// IngestMode selects how packets reach dataplane shard workers.
type IngestMode = engine.IngestMode

// Ingest modes.
const (
	// IngestAuto picks affine ingest when every shard has its own
	// flow-stable interface, hash fan-out otherwise.
	IngestAuto = engine.IngestAuto
	// IngestHash forces the central source-hash fan-out (deterministic
	// replays; netsim).
	IngestHash = engine.IngestHash
	// IngestAffine forces one read loop per shard on its own interface;
	// requires one interface per shard.
	IngestAffine = engine.IngestAffine
)

// RemoteGuard is the ANS-side DNS guard: the cookie checker, both rate
// limiters, and all three spoof-detection schemes (Figure 4).
type RemoteGuard = guard.Remote

// NewRemoteGuard creates an ANS-side guard; call Start to run it.
func NewRemoteGuard(cfg RemoteGuardConfig) (*RemoteGuard, error) { return guard.NewRemote(cfg) }

// MitigationConfig configures the guard's layered auto-mitigation selector:
// a state machine over the guard's own counters that climbs a fixed ladder
// of responses (passthrough → threshold → cookies → TCP fallback →
// per-source limits) with hysteresis, and descends when the attack stops.
type MitigationConfig = guard.MitigationConfig

// MitigationLayer is one rung of the mitigation ladder.
type MitigationLayer = guard.MitigationLayer

// Mitigation ladder rungs, in escalation order.
const (
	// LayerPassthrough relays everything unverified (guard disarmed).
	LayerPassthrough = guard.LayerPassthrough
	// LayerThreshold arms the guard only above the activation threshold.
	LayerThreshold = guard.LayerThreshold
	// LayerCookies forces cookie verification on regardless of load.
	LayerCookies = guard.LayerCookies
	// LayerTCPFallback bootstraps newcomers over TCP truncation.
	LayerTCPFallback = guard.LayerTCPFallback
	// LayerSourceLimit tightens both rate limiters per source.
	LayerSourceLimit = guard.LayerSourceLimit
)

// AttackClass is the selector's classification of the current interval.
type AttackClass = guard.AttackClass

// Attack classes the selector distinguishes.
const (
	// ClassNone: no attack evident.
	ClassNone = guard.ClassNone
	// ClassSpoofFlood: spoofed-source query flood (low name diversity).
	ClassSpoofFlood = guard.ClassSpoofFlood
	// ClassWaterTorture: random-subdomain flood (high name diversity).
	ClassWaterTorture = guard.ClassWaterTorture
	// ClassPoisoning: forged upstream answers racing NAT entries.
	ClassPoisoning = guard.ClassPoisoning
)

// TerminalLayer is the documented rung the ladder stops climbing at for a
// given attack class; see DESIGN.md §13.
func TerminalLayer(c AttackClass) MitigationLayer { return guard.TerminalLayer(c) }

// MitigationStats counts selector activity (escalations, de-escalations,
// flap holds, per-class interval tallies).
type MitigationStats = guard.MitigationStats

// MitigationState is a point-in-time snapshot of the selector, read with
// (*RemoteGuard).Mitigation.
type MitigationState = guard.MitigationState

// LocalGuardConfig configures the LRS-side guard.
type LocalGuardConfig = guard.LocalConfig

// LocalGuard is the LRS-side guard for the modified-DNS scheme: it stamps
// outgoing queries with cached cookies, transparently to the LRS.
type LocalGuard = guard.Local

// NewLocalGuard creates an LRS-side guard; call Start to run it.
func NewLocalGuard(cfg LocalGuardConfig) (*LocalGuard, error) { return guard.NewLocal(cfg) }

// PacketIO is the guard's packet capture interface.
type PacketIO = guard.PacketIO

// TapIO adapts a simulated host's tap to PacketIO.
type TapIO = guard.TapIO

// The fleet (anycast tier) --------------------------------------------------

// GuardFleetConfig configures a simulated anycast guard fleet: N guard
// instances behind a deterministic ECMP front, sharing one cookie keyring.
type GuardFleetConfig = fleet.Config

// GuardFleet is N remote guards behind a catchment-hashed anycast front.
type GuardFleet = fleet.Fleet

// GuardFleetSite is one fleet site (host, guard, metrics registry).
type GuardFleetSite = fleet.Site

// NewGuardFleet builds a fleet in a simulated network; call Start to run it.
func NewGuardFleet(cfg GuardFleetConfig) (*GuardFleet, error) { return fleet.New(cfg) }

// Catchment deterministically maps client sources to fleet sites (weighted
// rendezvous hashing plus BGP-flap overrides).
type Catchment = fleet.Catchment

// NewCatchment creates a catchment over len(weights) sites.
func NewCatchment(seed uint64, weights ...float64) *Catchment {
	return fleet.NewCatchment(seed, weights...)
}

// CatchmentEvent is one scripted routing change on the virtual clock.
type CatchmentEvent = fleet.Event

// CatchmentEventKind selects a scripted catchment event.
type CatchmentEventKind = fleet.EventKind

// Catchment event kinds.
const (
	// CatchmentFlap: a BGP flap routes a hash-selected population fraction
	// to one site until flaps are cleared.
	CatchmentFlap = fleet.EventFlap
	// CatchmentDrain: zero one site's weight (rolling-upgrade drain).
	CatchmentDrain = fleet.EventDrain
	// CatchmentRestore: return a site to its configured weight.
	CatchmentRestore = fleet.EventRestore
	// CatchmentFail: kill a site; its catchment blackholes until the BGP
	// withdrawal propagates.
	CatchmentFail = fleet.EventFail
	// CatchmentClearFlaps: withdraw every flap override.
	CatchmentClearFlaps = fleet.EventClearFlaps
	// CatchmentRotate: rotate the fleet-shared keyring.
	CatchmentRotate = fleet.EventRotate
	// CatchmentUpgrade: roll one site through a zero-downtime restart
	// (catchment drain, guard drain, keyring reopen, health-gated
	// re-admission). Requires GuardFleetConfig.StateDir.
	CatchmentUpgrade = fleet.EventUpgrade
	// CatchmentPartition: sever the Site-Peer link (gossip routes around it).
	CatchmentPartition = fleet.EventPartition
	// CatchmentHeal: restore a previously partitioned Site-Peer link.
	CatchmentHeal = fleet.EventHeal
	// CatchmentControllerDown: take the keyring controller out; push
	// rotations fail, gossip-seeded rotations converge without it.
	CatchmentControllerDown = fleet.EventControllerDown
	// CatchmentControllerUp: bring the controller back; it anti-entropies
	// to the fleet's best keyring on return.
	CatchmentControllerUp = fleet.EventControllerUp
)

// FleetGossipConfig tunes the fleet's peer-to-peer keyring anti-entropy.
type FleetGossipConfig = fleet.GossipConfig

// FleetGossipStats aggregates a fleet's gossip counters.
type FleetGossipStats = fleet.GossipStats

// FleetPack is one shipped fleet scenario (population + attack + events).
type FleetPack = fleet.Pack

// FleetPacks returns the shipped fleet scenarios.
func FleetPacks() []FleetPack { return fleet.Packs() }

// FleetLabConfig parameterizes one fleet-pack run.
type FleetLabConfig = fleet.LabConfig

// FleetLabResult is a fleet-pack run reduced to assertable counters.
type FleetLabResult = fleet.LabResult

// RunFleetLab runs one fleet pack in a fresh simulated world; same config,
// bit-identical result.
func RunFleetLab(cfg FleetLabConfig) (FleetLabResult, error) { return fleet.RunLab(cfg) }

// PopulationConfig configures the population-scale client model: Zipf source
// popularity, Poisson flow arrivals, every source re-presenting a live
// cookie from the fleet-shared keyring.
type PopulationConfig = workload.PopulationConfig

// Population is the aggregate population generator.
type Population = workload.Population

// NewPopulation creates a population generator; call Start to run it.
func NewPopulation(cfg PopulationConfig) (*Population, error) { return workload.NewPopulation(cfg) }

// TCPProxyConfig configures the guard's TCP proxy.
type TCPProxyConfig = tcpproxy.Config

// TCPProxy terminates DNS-over-TCP for the protected ANS and relays
// requests over UDP (§III-C).
type TCPProxy = tcpproxy.Proxy

// NewTCPProxy creates a TCP proxy; call Start to run it.
func NewTCPProxy(cfg TCPProxyConfig) (*TCPProxy, error) { return tcpproxy.New(cfg) }

// Rate limiting --------------------------------------------------------------

// Limiter1Config configures Rate-Limiter1 (cookie responses; reflector
// protection).
type Limiter1Config = ratelimit.Limiter1Config

// Limiter2Config configures Rate-Limiter2 (per-host nominal rate for
// verified requesters).
type Limiter2Config = ratelimit.Limiter2Config

// Observability ---------------------------------------------------------------

// Metrics is a registry of named counters, gauges and latency histograms.
// Every long-running component (guards, resolver, LRS, ANS, TCP proxy, the
// simulator) has a MetricsInto method that registers its live counters on
// one; see DESIGN.md §9 for the naming scheme.
type Metrics = metrics.Registry

// MetricSample is one named value from a Metrics snapshot.
type MetricSample = metrics.Sample

// NewMetrics creates an empty metrics registry.
func NewMetrics() *Metrics { return metrics.NewRegistry() }

// ServeMetrics serves the registry over HTTP on addr: /metrics is the
// deterministic "name value" text form, /debug/vars the expvar-style JSON
// object. It returns the bound listener (close it to stop serving).
func ServeMetrics(addr string, r *Metrics) (net.Listener, error) {
	return metrics.Serve(addr, r)
}

// ServeMetricsHealth is ServeMetrics with Kubernetes-style /healthz and
// /readyz probes mounted alongside the metrics endpoints: nil probe results
// render as 200 "ok", errors as 503 with the error text (so curl explains
// why a site is out of rotation). Nil funcs always pass.
func ServeMetricsHealth(addr string, r *Metrics, healthz, readyz func() error) (net.Listener, error) {
	return metrics.ServeHealth(addr, r, healthz, readyz)
}

// DumpMetricsEvery writes a framed text snapshot of r to w every interval
// until stop is closed; the cmd/ daemons use it for periodic stderr dumps.
func DumpMetricsEvery(r *Metrics, interval time.Duration, w io.Writer, stop <-chan struct{}) {
	metrics.DumpEvery(r, interval, w, stop)
}

// MetricsDelta returns after-minus-before for every series present in after;
// benchmarks use it to report per-run counter movement.
func MetricsDelta(before, after []MetricSample) []MetricSample {
	return metrics.Delta(before, after)
}

// MergedMetrics snapshots several registries as one: same-named counters and
// gauges sum, histograms merge bucket-wise. The fleet roll-up uses it to
// aggregate per-guard registries; it works equally for multi-process export.
func MergedMetrics(regs ...*Metrics) []MetricSample { return metrics.Merged(regs...) }

// MergeMetricsInto registers a live merged view of regs on r, every series
// prefixed with prefix.
func MergeMetricsInto(r *Metrics, prefix string, regs ...*Metrics) {
	metrics.MergedInto(r, prefix, regs...)
}

// Cost model ------------------------------------------------------------------

// Costs is the calibrated CPU cost model reproducing the paper's testbed.
type Costs = cpumodel.Costs

// DefaultCosts returns the constants calibrated against the paper's 2006
// testbed; see the cpumodel documentation for the derivation.
func DefaultCosts() Costs { return cpumodel.Default2006() }
