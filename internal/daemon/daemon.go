// Package daemon factors the signal plumbing the dnsguard daemons share:
// block until SIGINT/SIGTERM, run a graceful drain before shutdown, reload
// on SIGHUP, and close the metrics listener on the way out. Before this
// existed each cmd carried its own signal.Notify block and none of them
// handled SIGHUP or drained before exit.
package daemon

import (
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Hooks configures Wait. Every field is optional.
type Hooks struct {
	// Reload runs on each SIGHUP (e.g. keyring reload). An error is logged,
	// not fatal — a daemon must survive a bad reload.
	Reload func() error
	// Drain runs once, after the first SIGINT/SIGTERM and before Shutdown.
	// It may block (a graceful drain); a second signal while draining skips
	// straight to Shutdown. DrainTimeout, when > 0, bounds the wait.
	Drain        func()
	DrainTimeout time.Duration
	// Shutdown runs once after Drain (or immediately on signal when Drain
	// is nil): close servers, print final stats.
	Shutdown func()
	// Metrics is the metrics/health HTTP listener, closed after Shutdown.
	Metrics net.Listener
	// Logf receives progress lines ("draining", "reload failed: …");
	// nil discards them.
	Logf func(format string, args ...any)
}

// Wait blocks until the daemon should exit, handling signals per Hooks:
// SIGHUP → Reload, first SIGINT/SIGTERM → Drain then Shutdown then return.
// It is the single exit path the cmds share.
func Wait(h Hooks) {
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	defer signal.Stop(sig)
	wait(sig, h)
}

// wait is Wait over an injected signal channel (tested directly).
func wait(sig chan os.Signal, h Hooks) {
	logf := h.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	for s := range sig {
		if s == syscall.SIGHUP {
			if h.Reload == nil {
				logf("SIGHUP ignored (no reload hook)")
				continue
			}
			if err := h.Reload(); err != nil {
				logf("reload: %v", err)
			} else {
				logf("reloaded")
			}
			continue
		}
		break // SIGINT / SIGTERM
	}
	if h.Drain != nil {
		logf("draining")
		done := make(chan struct{})
		go func() { h.Drain(); close(done) }()
		var bound <-chan time.Time
		if h.DrainTimeout > 0 {
			t := time.NewTimer(h.DrainTimeout)
			defer t.Stop()
			bound = t.C
		}
		select {
		case <-done:
		case <-bound:
			logf("drain timed out after %v; shutting down", h.DrainTimeout)
		case s := <-sig:
			if s != syscall.SIGHUP {
				logf("second signal during drain; shutting down")
			}
		}
	}
	if h.Shutdown != nil {
		h.Shutdown()
	}
	if h.Metrics != nil {
		_ = h.Metrics.Close()
	}
}
