package daemon

import (
	"errors"
	"net"
	"os"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

func TestWaitRunsHooksInOrder(t *testing.T) {
	sig := make(chan os.Signal, 2)
	var order []string
	var reloads atomic.Int32
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		wait(sig, Hooks{
			Reload:   func() error { reloads.Add(1); return nil },
			Drain:    func() { order = append(order, "drain") },
			Shutdown: func() { order = append(order, "shutdown") },
			Metrics:  ln,
		})
		close(done)
	}()
	sig <- syscall.SIGHUP
	sig <- syscall.SIGTERM
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("wait never returned after SIGTERM")
	}
	if reloads.Load() != 1 {
		t.Fatalf("reloads = %d, want 1", reloads.Load())
	}
	if len(order) != 2 || order[0] != "drain" || order[1] != "shutdown" {
		t.Fatalf("hook order = %v, want [drain shutdown]", order)
	}
	// The metrics listener must be closed on exit.
	if _, err := ln.Accept(); err == nil {
		t.Fatal("metrics listener still open after wait returned")
	}
}

func TestWaitReloadErrorNotFatal(t *testing.T) {
	sig := make(chan os.Signal, 2)
	var msgs []string
	done := make(chan struct{})
	go func() {
		wait(sig, Hooks{
			Reload: func() error { return errors.New("keyring corrupt") },
			Logf:   func(f string, a ...any) { msgs = append(msgs, f) },
		})
		close(done)
	}()
	sig <- syscall.SIGHUP
	sig <- syscall.SIGINT
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("wait never returned")
	}
	found := false
	for _, m := range msgs {
		if m == "reload: %v" {
			found = true
		}
	}
	if !found {
		t.Fatalf("reload error not logged: %v", msgs)
	}
}

func TestWaitDrainTimeout(t *testing.T) {
	sig := make(chan os.Signal, 1)
	shutdown := make(chan struct{})
	hang := make(chan struct{})
	defer close(hang)
	done := make(chan struct{})
	go func() {
		wait(sig, Hooks{
			Drain:        func() { <-hang },
			DrainTimeout: 30 * time.Millisecond,
			Shutdown:     func() { close(shutdown) },
		})
		close(done)
	}()
	sig <- syscall.SIGTERM
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("wait hung on a stuck drain despite DrainTimeout")
	}
	select {
	case <-shutdown:
	default:
		t.Fatal("shutdown skipped after drain timeout")
	}
}

func TestWaitSecondSignalSkipsDrain(t *testing.T) {
	sig := make(chan os.Signal, 2)
	hang := make(chan struct{})
	defer close(hang)
	done := make(chan struct{})
	go func() {
		wait(sig, Hooks{Drain: func() { <-hang }})
		close(done)
	}()
	sig <- syscall.SIGTERM
	go func() {
		time.Sleep(10 * time.Millisecond)
		sig <- syscall.SIGTERM
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("second SIGTERM did not break a blocked drain")
	}
}
