package zone

import (
	"errors"
	"net/netip"
	"testing"

	"dnsguard/internal/dnswire"
)

func n(s string) dnswire.Name { return dnswire.MustName(s) }

// comZone models the paper's "com" ANS: authoritative for com, delegating
// foo.com.
func comZone(t *testing.T) *Zone {
	t.Helper()
	z := New(n("com"))
	z.MustAdd(dnswire.NewRR(n("com"), 86400, &dnswire.SOAData{
		MName: n("a.gtld.example"), RName: n("hostmaster.com"),
		Serial: 1, Refresh: 7200, Retry: 600, Expire: 360000, Minimum: 60,
	}))
	z.MustAdd(dnswire.NewRR(n("com"), 86400, &dnswire.NSData{Host: n("a.gtld.example")}))
	z.MustAdd(dnswire.NewRR(n("foo.com"), 86400, &dnswire.NSData{Host: n("ns1.foo.com")}))
	z.MustAdd(dnswire.NewRR(n("foo.com"), 86400, &dnswire.NSData{Host: n("ns2.foo.com")}))
	z.MustAdd(dnswire.NewRR(n("ns1.foo.com"), 86400, &dnswire.AData{Addr: netip.MustParseAddr("192.0.2.1")}))
	z.MustAdd(dnswire.NewRR(n("ns2.foo.com"), 86400, &dnswire.AData{Addr: netip.MustParseAddr("192.0.2.2")}))
	return z
}

// fooZone models the paper's leaf ANS for foo.com.
func fooZone(t *testing.T) *Zone {
	t.Helper()
	z := New(n("foo.com"))
	z.MustAdd(dnswire.NewRR(n("foo.com"), 3600, &dnswire.SOAData{
		MName: n("ns1.foo.com"), RName: n("admin.foo.com"),
		Serial: 5, Refresh: 7200, Retry: 600, Expire: 360000, Minimum: 60,
	}))
	z.MustAdd(dnswire.NewRR(n("foo.com"), 3600, &dnswire.NSData{Host: n("ns1.foo.com")}))
	z.MustAdd(dnswire.NewRR(n("ns1.foo.com"), 3600, &dnswire.AData{Addr: netip.MustParseAddr("192.0.2.1")}))
	z.MustAdd(dnswire.NewRR(n("www.foo.com"), 300, &dnswire.AData{Addr: netip.MustParseAddr("198.51.100.10")}))
	z.MustAdd(dnswire.NewRR(n("alias.foo.com"), 300, &dnswire.CNAMEData{Target: n("www.foo.com")}))
	z.MustAdd(dnswire.NewRR(n("a.b.foo.com"), 300, &dnswire.AData{Addr: netip.MustParseAddr("198.51.100.20")}))
	return z
}

func TestLookupAuthoritativeAnswer(t *testing.T) {
	z := fooZone(t)
	ans := z.Lookup(n("www.foo.com"), dnswire.TypeA)
	if ans.Kind != KindAnswer {
		t.Fatalf("kind = %v, want answer", ans.Kind)
	}
	if len(ans.Answer) != 1 || ans.Answer[0].Data.(*dnswire.AData).Addr != netip.MustParseAddr("198.51.100.10") {
		t.Fatalf("answer = %v", ans.Answer)
	}
}

func TestLookupReferralWithGlue(t *testing.T) {
	z := comZone(t)
	ans := z.Lookup(n("www.foo.com"), dnswire.TypeA)
	if ans.Kind != KindReferral {
		t.Fatalf("kind = %v, want referral", ans.Kind)
	}
	if len(ans.Authority) != 2 {
		t.Fatalf("authority = %v, want 2 NS", ans.Authority)
	}
	if len(ans.Additional) != 2 {
		t.Fatalf("additional = %v, want 2 glue A", ans.Additional)
	}
	for _, rr := range ans.Authority {
		if rr.Type != dnswire.TypeNS || rr.Name != n("foo.com") {
			t.Fatalf("bad authority rr %v", rr)
		}
	}
}

func TestLookupReferralAtCutItself(t *testing.T) {
	z := comZone(t)
	ans := z.Lookup(n("foo.com"), dnswire.TypeA)
	if ans.Kind != KindReferral {
		t.Fatalf("kind = %v, want referral at the cut", ans.Kind)
	}
}

func TestLookupNXDomain(t *testing.T) {
	z := fooZone(t)
	ans := z.Lookup(n("nope.foo.com"), dnswire.TypeA)
	if ans.Kind != KindNXDomain {
		t.Fatalf("kind = %v, want nxdomain", ans.Kind)
	}
	if len(ans.Authority) != 1 || ans.Authority[0].Type != dnswire.TypeSOA {
		t.Fatalf("authority = %v, want SOA", ans.Authority)
	}
}

func TestLookupNoData(t *testing.T) {
	z := fooZone(t)
	ans := z.Lookup(n("www.foo.com"), dnswire.TypeMX)
	if ans.Kind != KindNoData {
		t.Fatalf("kind = %v, want nodata", ans.Kind)
	}
	if len(ans.Authority) != 1 || ans.Authority[0].Type != dnswire.TypeSOA {
		t.Fatalf("authority = %v, want SOA", ans.Authority)
	}
}

func TestLookupEmptyNonTerminal(t *testing.T) {
	z := fooZone(t)
	// b.foo.com exists only as an ancestor of a.b.foo.com.
	ans := z.Lookup(n("b.foo.com"), dnswire.TypeA)
	if ans.Kind != KindNoData {
		t.Fatalf("kind = %v, want nodata for empty non-terminal", ans.Kind)
	}
}

func TestLookupCNAMEChase(t *testing.T) {
	z := fooZone(t)
	ans := z.Lookup(n("alias.foo.com"), dnswire.TypeA)
	if ans.Kind != KindAnswer {
		t.Fatalf("kind = %v", ans.Kind)
	}
	if len(ans.Answer) != 2 {
		t.Fatalf("answer = %v, want CNAME + A", ans.Answer)
	}
	if ans.Answer[0].Type != dnswire.TypeCNAME || ans.Answer[1].Type != dnswire.TypeA {
		t.Fatalf("answer order = %v", ans.Answer)
	}
}

func TestLookupCNAMETypeQuery(t *testing.T) {
	z := fooZone(t)
	ans := z.Lookup(n("alias.foo.com"), dnswire.TypeCNAME)
	if ans.Kind != KindAnswer || len(ans.Answer) != 1 || ans.Answer[0].Type != dnswire.TypeCNAME {
		t.Fatalf("CNAME query = %+v", ans)
	}
}

func TestLookupOutOfZone(t *testing.T) {
	z := fooZone(t)
	ans := z.Lookup(n("bar.org"), dnswire.TypeA)
	if ans.Kind != KindNXDomain {
		t.Fatalf("kind = %v", ans.Kind)
	}
}

func TestAddRejectsOutOfZone(t *testing.T) {
	z := New(n("foo.com"))
	err := z.Add(dnswire.NewRR(n("bar.org"), 60, &dnswire.AData{Addr: netip.MustParseAddr("1.1.1.1")}))
	if !errors.Is(err, ErrOutOfZone) {
		t.Fatalf("err = %v", err)
	}
}

func TestAddRejectsCNAMEConflict(t *testing.T) {
	z := New(n("foo.com"))
	z.MustAdd(dnswire.NewRR(n("x.foo.com"), 60, &dnswire.AData{Addr: netip.MustParseAddr("1.1.1.1")}))
	err := z.Add(dnswire.NewRR(n("x.foo.com"), 60, &dnswire.CNAMEData{Target: n("y.foo.com")}))
	if !errors.Is(err, ErrDupCNAME) {
		t.Fatalf("err = %v", err)
	}
	err = z.Add(dnswire.NewRR(n("alias2.foo.com"), 60, &dnswire.CNAMEData{Target: n("y.foo.com")}))
	if err != nil {
		t.Fatalf("clean CNAME rejected: %v", err)
	}
	err = z.Add(dnswire.NewRR(n("alias2.foo.com"), 60, &dnswire.AData{Addr: netip.MustParseAddr("1.1.1.2")}))
	if !errors.Is(err, ErrDupCNAME) {
		t.Fatalf("err = %v", err)
	}
}

func TestValidate(t *testing.T) {
	z := New(n("foo.com"))
	if err := z.Validate(); !errors.Is(err, ErrNoSOA) {
		t.Fatalf("err = %v, want ErrNoSOA", err)
	}
	z = fooZone(t)
	if err := z.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

const fooZoneText = `
$ORIGIN foo.com.
$TTL 3600
@   IN  SOA ns1 admin.foo.com. (
        5       ; serial
        7200    ; refresh
        600     ; retry
        360000  ; expire
        60 )    ; minimum
@       IN  NS   ns1
ns1     IN  A    192.0.2.1
www     300 IN A 198.51.100.10
alias   IN  CNAME www
mail    IN  MX   10 www
txt     IN  TXT  "hello"
v6      IN  AAAA 2001:db8::1
`

func TestParseZoneFile(t *testing.T) {
	z, err := Parse(fooZoneText, dnswire.Root)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if z.Origin != n("foo.com") {
		t.Fatalf("origin = %v", z.Origin)
	}
	if err := z.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	soa, err := z.SOA()
	if err != nil {
		t.Fatalf("SOA: %v", err)
	}
	d := soa.Data.(*dnswire.SOAData)
	if d.Serial != 5 || d.Minimum != 60 || d.MName != n("ns1.foo.com") {
		t.Fatalf("SOA = %v", d)
	}
	ans := z.Lookup(n("www.foo.com"), dnswire.TypeA)
	if ans.Kind != KindAnswer || ans.Answer[0].TTL != 300 {
		t.Fatalf("www lookup = %+v", ans)
	}
	ans = z.Lookup(n("alias.foo.com"), dnswire.TypeA)
	if ans.Kind != KindAnswer || len(ans.Answer) != 2 {
		t.Fatalf("alias lookup = %+v", ans)
	}
	ans = z.Lookup(n("mail.foo.com"), dnswire.TypeMX)
	if ans.Kind != KindAnswer || ans.Answer[0].Data.(*dnswire.MXData).Pref != 10 {
		t.Fatalf("mx lookup = %+v", ans)
	}
	ans = z.Lookup(n("v6.foo.com"), dnswire.TypeAAAA)
	if ans.Kind != KindAnswer {
		t.Fatalf("aaaa lookup = %+v", ans)
	}
	ans = z.Lookup(n("txt.foo.com"), dnswire.TypeTXT)
	if ans.Kind != KindAnswer || string(ans.Answer[0].Data.(*dnswire.TXTData).Strings[0]) != "hello" {
		t.Fatalf("txt lookup = %+v", ans)
	}
}

func TestParseRootZone(t *testing.T) {
	const rootText = `
$TTL 86400
.    IN SOA a.root.example. hostmaster.example. 1 7200 600 360000 60
.    IN NS  a.root.example.
a.root.example. IN A 198.41.0.4
com. IN NS a.gtld.example.
a.gtld.example. IN A 192.5.6.30
`
	z, err := Parse(rootText, dnswire.Root)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !z.Origin.IsRoot() {
		t.Fatalf("origin = %q", z.Origin)
	}
	ans := z.Lookup(n("www.foo.com"), dnswire.TypeA)
	if ans.Kind != KindReferral {
		t.Fatalf("kind = %v, want referral to com", ans.Kind)
	}
	if ans.Authority[0].Name != n("com") {
		t.Fatalf("authority owner = %v", ans.Authority[0].Name)
	}
	if len(ans.Additional) != 1 {
		t.Fatalf("want glue, got %v", ans.Additional)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                            // empty
		"$TTL abc\nfoo. IN A 1.2.3.4", // bad TTL
		"foo. IN A not-an-ip",         // bad A
		"foo. IN AAAA 1.2.3.4",        // v4 in AAAA
		"foo. IN WEIRD data",          // unknown type
		"foo. IN MX 10",               // missing MX host
		"foo. IN",                     // missing type
	}
	for _, text := range cases {
		if _, err := Parse(text, dnswire.Root); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", text)
		}
	}
}

func TestParseOwnerInheritance(t *testing.T) {
	const text = `
$ORIGIN example.
@ IN SOA ns admin 1 2 3 4 5
@ IN NS ns
ns IN A 192.0.2.1
multi IN A 192.0.2.2
      IN A 192.0.2.3
`
	z, err := Parse(text, dnswire.Root)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	rrs := z.Records(n("multi.example"), dnswire.TypeA)
	if len(rrs) != 2 {
		t.Fatalf("multi A records = %v, want 2 (owner inheritance)", rrs)
	}
}
