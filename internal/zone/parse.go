package zone

import (
	"fmt"
	"net/netip"
	"strings"

	"dnsguard/internal/dnswire"
)

// Parse reads a master file (practical RFC 1035 subset) and returns the
// zone. Supported directives: $ORIGIN, $TTL. Supported types: SOA, NS, A,
// AAAA, CNAME, MX, TXT, PTR. Names without a trailing dot are relative to
// the origin; "@" denotes the origin. The class field (IN) is optional.
// Comments start with ';'. Parenthesized multi-line SOA records are
// supported.
func Parse(text string, defaultOrigin dnswire.Name) (*Zone, error) {
	lines := joinParens(text)
	origin := defaultOrigin
	var defTTL uint32 = 3600
	var z *Zone
	var lastOwner dnswire.Name

	for lineno, raw := range lines {
		line := stripComment(raw)
		if strings.TrimSpace(line) == "" {
			continue
		}
		fields := strings.Fields(line)
		switch strings.ToUpper(fields[0]) {
		case "$ORIGIN":
			if len(fields) < 2 {
				return nil, fmt.Errorf("%w: line %d: $ORIGIN needs a name", ErrParse, lineno+1)
			}
			n, err := dnswire.ParseName(fields[1])
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrParse, lineno+1, err)
			}
			origin = n
			continue
		case "$TTL":
			if len(fields) < 2 {
				return nil, fmt.Errorf("%w: line %d: $TTL needs a value", ErrParse, lineno+1)
			}
			ttl, err := atoiTTL(fields[1])
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineno+1, err)
			}
			defTTL = ttl
			continue
		}

		// Owner column: present unless the line starts with whitespace.
		rest := fields
		owner := lastOwner
		if !strings.HasPrefix(line, " ") && !strings.HasPrefix(line, "\t") {
			var err error
			owner, err = resolveName(fields[0], origin)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrParse, lineno+1, err)
			}
			rest = fields[1:]
		}
		if owner == "" {
			return nil, fmt.Errorf("%w: line %d: no owner name", ErrParse, lineno+1)
		}
		lastOwner = owner

		// Optional TTL and class, in either order.
		ttl := defTTL
		for len(rest) > 0 {
			tok := strings.ToUpper(rest[0])
			if tok == "IN" {
				rest = rest[1:]
				continue
			}
			if v, err := atoiTTL(rest[0]); err == nil {
				ttl = v
				rest = rest[1:]
				continue
			}
			break
		}
		if len(rest) == 0 {
			return nil, fmt.Errorf("%w: line %d: missing record type", ErrParse, lineno+1)
		}
		rtype := strings.ToUpper(rest[0])
		args := rest[1:]

		if z == nil {
			z = New(origin)
		}
		rr, err := buildRR(owner, ttl, rtype, args, origin)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno+1, err)
		}
		if err := z.Add(rr); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno+1, err)
		}
	}
	if z == nil {
		return nil, fmt.Errorf("%w: empty zone file", ErrParse)
	}
	return z, nil
}

// MustParse is Parse that panics, for fixtures.
func MustParse(text string, origin dnswire.Name) *Zone {
	z, err := Parse(text, origin)
	if err != nil {
		panic(err)
	}
	return z
}

func buildRR(owner dnswire.Name, ttl uint32, rtype string, args []string, origin dnswire.Name) (dnswire.RR, error) {
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("%w: %s needs %d fields, have %d", ErrParse, rtype, n, len(args))
		}
		return nil
	}
	switch rtype {
	case "A":
		if err := need(1); err != nil {
			return dnswire.RR{}, err
		}
		a, err := netip.ParseAddr(args[0])
		if err != nil || !a.Is4() {
			return dnswire.RR{}, fmt.Errorf("%w: bad A address %q", ErrParse, args[0])
		}
		return dnswire.NewRR(owner, ttl, &dnswire.AData{Addr: a}), nil
	case "AAAA":
		if err := need(1); err != nil {
			return dnswire.RR{}, err
		}
		a, err := netip.ParseAddr(args[0])
		if err != nil || !a.Is6() {
			return dnswire.RR{}, fmt.Errorf("%w: bad AAAA address %q", ErrParse, args[0])
		}
		return dnswire.NewRR(owner, ttl, &dnswire.AAAAData{Addr: a}), nil
	case "NS":
		if err := need(1); err != nil {
			return dnswire.RR{}, err
		}
		h, err := resolveName(args[0], origin)
		if err != nil {
			return dnswire.RR{}, err
		}
		return dnswire.NewRR(owner, ttl, &dnswire.NSData{Host: h}), nil
	case "CNAME":
		if err := need(1); err != nil {
			return dnswire.RR{}, err
		}
		h, err := resolveName(args[0], origin)
		if err != nil {
			return dnswire.RR{}, err
		}
		return dnswire.NewRR(owner, ttl, &dnswire.CNAMEData{Target: h}), nil
	case "PTR":
		if err := need(1); err != nil {
			return dnswire.RR{}, err
		}
		h, err := resolveName(args[0], origin)
		if err != nil {
			return dnswire.RR{}, err
		}
		return dnswire.NewRR(owner, ttl, &dnswire.PTRData{Target: h}), nil
	case "MX":
		if err := need(2); err != nil {
			return dnswire.RR{}, err
		}
		pref, err := atoiTTL(args[0])
		if err != nil {
			return dnswire.RR{}, err
		}
		h, err := resolveName(args[1], origin)
		if err != nil {
			return dnswire.RR{}, err
		}
		return dnswire.NewRR(owner, ttl, &dnswire.MXData{Pref: uint16(pref), Host: h}), nil
	case "TXT":
		if err := need(1); err != nil {
			return dnswire.RR{}, err
		}
		var strs [][]byte
		for _, a := range args {
			strs = append(strs, []byte(strings.Trim(a, `"`)))
		}
		return dnswire.NewRR(owner, ttl, &dnswire.TXTData{Strings: strs}), nil
	case "SOA":
		if err := need(7); err != nil {
			return dnswire.RR{}, err
		}
		mname, err := resolveName(args[0], origin)
		if err != nil {
			return dnswire.RR{}, err
		}
		rname, err := resolveName(args[1], origin)
		if err != nil {
			return dnswire.RR{}, err
		}
		var nums [5]uint32
		for i := 0; i < 5; i++ {
			v, err := atoiTTL(args[2+i])
			if err != nil {
				return dnswire.RR{}, err
			}
			nums[i] = v
		}
		return dnswire.NewRR(owner, ttl, &dnswire.SOAData{
			MName: mname, RName: rname,
			Serial: nums[0], Refresh: nums[1], Retry: nums[2], Expire: nums[3], Minimum: nums[4],
		}), nil
	default:
		return dnswire.RR{}, fmt.Errorf("%w: unsupported type %q", ErrParse, rtype)
	}
}

func resolveName(s string, origin dnswire.Name) (dnswire.Name, error) {
	if s == "@" {
		return origin, nil
	}
	if strings.HasSuffix(s, ".") {
		return dnswire.ParseName(s)
	}
	n, err := dnswire.ParseName(s)
	if err != nil {
		return "", err
	}
	if origin.IsRoot() {
		return n, nil
	}
	return dnswire.ParseName(string(n) + "." + string(origin))
}

func stripComment(line string) string {
	if i := strings.IndexByte(line, ';'); i >= 0 {
		return line[:i]
	}
	return line
}

// joinParens merges parenthesized multi-line records into single lines.
func joinParens(text string) []string {
	raw := strings.Split(text, "\n")
	var out []string
	depth := 0
	var cur strings.Builder
	for _, l := range raw {
		l = stripComment(l)
		depth += strings.Count(l, "(") - strings.Count(l, ")")
		l = strings.ReplaceAll(strings.ReplaceAll(l, "(", " "), ")", " ")
		if depth > 0 {
			cur.WriteString(l)
			cur.WriteString(" ")
			continue
		}
		if cur.Len() > 0 {
			cur.WriteString(l)
			out = append(out, cur.String())
			cur.Reset()
			continue
		}
		out = append(out, l)
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}
