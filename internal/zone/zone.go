// Package zone holds authoritative DNS data: a parser for a practical subset
// of RFC 1035 master files ($ORIGIN, $TTL, @, relative names; A, AAAA, NS,
// CNAME, SOA, MX, TXT, PTR records) and the authoritative lookup algorithm —
// answers, delegations with glue, CNAME chasing, NXDOMAIN/NODATA with SOA —
// that the authoritative name server (internal/ans) serves from.
package zone

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"strings"

	"dnsguard/internal/dnswire"
)

// Errors reported by zone construction and parsing.
var (
	ErrNoSOA       = errors.New("zone: missing SOA record at apex")
	ErrOutOfZone   = errors.New("zone: record out of zone")
	ErrParse       = errors.New("zone: parse error")
	ErrDupCNAME    = errors.New("zone: CNAME cannot coexist with other data")
	ErrNoSuchThing = errors.New("zone: no such record")
)

type rrKey struct {
	name  dnswire.Name
	rtype dnswire.Type
}

// Zone is an authoritative zone: an apex name and its records.
type Zone struct {
	Origin dnswire.Name
	rrsets map[rrKey][]dnswire.RR
	names  map[dnswire.Name]bool // every owner name, for empty-nonterminal checks
	cuts   map[dnswire.Name]bool // delegation points (owner of NS below apex)
}

// New creates an empty zone rooted at origin.
func New(origin dnswire.Name) *Zone {
	return &Zone{
		Origin: origin,
		rrsets: make(map[rrKey][]dnswire.RR),
		names:  make(map[dnswire.Name]bool),
		cuts:   make(map[dnswire.Name]bool),
	}
}

// Add inserts one record. The owner must be at or below the apex.
func (z *Zone) Add(rr dnswire.RR) error {
	if !rr.Name.IsSubdomainOf(z.Origin) {
		return fmt.Errorf("%w: %s not under %s", ErrOutOfZone, rr.Name, z.Origin)
	}
	key := rrKey{rr.Name, rr.Type}
	if rr.Type == dnswire.TypeCNAME {
		for k := range z.rrsets {
			if k.name == rr.Name && k.rtype != dnswire.TypeCNAME {
				return fmt.Errorf("%w at %s", ErrDupCNAME, rr.Name)
			}
		}
	} else if len(z.rrsets[rrKey{rr.Name, dnswire.TypeCNAME}]) > 0 {
		return fmt.Errorf("%w at %s", ErrDupCNAME, rr.Name)
	}
	z.rrsets[key] = append(z.rrsets[key], rr)
	// Register the owner and all ancestors up to the apex so
	// empty non-terminals answer NODATA rather than NXDOMAIN.
	for n := rr.Name; ; n = n.Parent() {
		z.names[n] = true
		if n == z.Origin || n.IsRoot() {
			break
		}
	}
	if rr.Type == dnswire.TypeNS && rr.Name != z.Origin {
		z.cuts[rr.Name] = true
	}
	return nil
}

// MustAdd is Add that panics, for fixtures.
func (z *Zone) MustAdd(rr dnswire.RR) {
	if err := z.Add(rr); err != nil {
		panic(err)
	}
}

// SOA returns the apex SOA record.
func (z *Zone) SOA() (dnswire.RR, error) {
	rrs := z.rrsets[rrKey{z.Origin, dnswire.TypeSOA}]
	if len(rrs) == 0 {
		return dnswire.RR{}, ErrNoSOA
	}
	return rrs[0], nil
}

// Validate checks structural invariants: an SOA and NS set at the apex.
func (z *Zone) Validate() error {
	if _, err := z.SOA(); err != nil {
		return err
	}
	if len(z.rrsets[rrKey{z.Origin, dnswire.TypeNS}]) == 0 {
		return fmt.Errorf("zone %s: %w", z.Origin, errors.New("missing NS at apex"))
	}
	return nil
}

// Lookup returns the records of the exact rrset, or nil.
func (z *Zone) Records(name dnswire.Name, t dnswire.Type) []dnswire.RR {
	return z.rrsets[rrKey{name, t}]
}

// Names returns all owner names, sorted, mostly for tests and dumps.
func (z *Zone) Names() []dnswire.Name {
	out := make([]dnswire.Name, 0, len(z.names))
	for n := range z.names {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AnswerKind classifies an authoritative lookup result.
type AnswerKind int

// Lookup result kinds.
const (
	// KindAnswer is an authoritative answer (possibly via CNAME chain).
	KindAnswer AnswerKind = iota + 1
	// KindReferral is a delegation to child-zone name servers.
	KindReferral
	// KindNXDomain means the name does not exist; Authority carries SOA.
	KindNXDomain
	// KindNoData means the name exists but has no rrset of the asked
	// type; Authority carries SOA.
	KindNoData
)

func (k AnswerKind) String() string {
	switch k {
	case KindAnswer:
		return "answer"
	case KindReferral:
		return "referral"
	case KindNXDomain:
		return "nxdomain"
	case KindNoData:
		return "nodata"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Answer is the result of an authoritative lookup, ready to be copied into
// the corresponding DNS message sections.
type Answer struct {
	Kind       AnswerKind
	Answer     []dnswire.RR
	Authority  []dnswire.RR
	Additional []dnswire.RR
}

// Lookup performs authoritative resolution of (qname, qtype) within the
// zone, per RFC 1034 §4.3.2: find the closest delegation cut (referral with
// glue), else exact match (answer / CNAME chase), else NXDOMAIN or NODATA
// with the SOA in authority.
func (z *Zone) Lookup(qname dnswire.Name, qtype dnswire.Type) Answer {
	if !qname.IsSubdomainOf(z.Origin) {
		return z.negative(KindNXDomain)
	}
	// Delegation: walk from just below the apex toward qname; the first
	// cut wins. (A cut at qname itself also causes a referral unless the
	// query is for the NS set... authoritative behaviour: referral.)
	if cut, ok := z.closestCut(qname); ok {
		return z.referral(cut)
	}
	// Exact name present?
	if z.names[qname] {
		if rrs := z.rrsets[rrKey{qname, qtype}]; len(rrs) > 0 {
			return Answer{Kind: KindAnswer, Answer: append([]dnswire.RR(nil), rrs...)}
		}
		// CNAME chase within the zone.
		if cn := z.rrsets[rrKey{qname, dnswire.TypeCNAME}]; len(cn) > 0 && qtype != dnswire.TypeCNAME {
			ans := Answer{Kind: KindAnswer, Answer: append([]dnswire.RR(nil), cn...)}
			target := cn[0].Data.(*dnswire.CNAMEData).Target
			for depth := 0; depth < 8; depth++ {
				if !target.IsSubdomainOf(z.Origin) || !z.names[target] {
					break
				}
				if rrs := z.rrsets[rrKey{target, qtype}]; len(rrs) > 0 {
					ans.Answer = append(ans.Answer, rrs...)
					break
				}
				next := z.rrsets[rrKey{target, dnswire.TypeCNAME}]
				if len(next) == 0 {
					break
				}
				ans.Answer = append(ans.Answer, next...)
				target = next[0].Data.(*dnswire.CNAMEData).Target
			}
			return ans
		}
		return z.negative(KindNoData)
	}
	return z.negative(KindNXDomain)
}

// closestCut finds the highest delegation point strictly above or at qname
// (but below the apex).
func (z *Zone) closestCut(qname dnswire.Name) (dnswire.Name, bool) {
	// Walk down from the label just below the apex to qname.
	depth := qname.NumLabels() - z.Origin.NumLabels()
	for i := depth - 1; i >= 0; i-- {
		labels := qname.Labels()
		candidate := dnswire.Name(strings.Join(labels[i:], "."))
		if z.cuts[candidate] {
			return candidate, true
		}
	}
	return "", false
}

func (z *Zone) referral(cut dnswire.Name) Answer {
	ans := Answer{Kind: KindReferral}
	nsset := z.rrsets[rrKey{cut, dnswire.TypeNS}]
	ans.Authority = append(ans.Authority, nsset...)
	// Glue: addresses for in-zone (or below-cut) NS targets. Standard
	// delegation practice per the paper: every next-level domain provides
	// both name and address of its ANSs.
	for _, rr := range nsset {
		host := rr.Data.(*dnswire.NSData).Host
		for _, t := range []dnswire.Type{dnswire.TypeA, dnswire.TypeAAAA} {
			ans.Additional = append(ans.Additional, z.rrsets[rrKey{host, t}]...)
		}
	}
	return ans
}

func (z *Zone) negative(kind AnswerKind) Answer {
	ans := Answer{Kind: kind}
	if soa, err := z.SOA(); err == nil {
		ans.Authority = append(ans.Authority, soa)
	}
	return ans
}

// ParseAddr is a small helper shared by fixtures.
func ParseAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

// atoiTTL parses a TTL field.
func atoiTTL(s string) (uint32, error) {
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("%w: bad TTL %q", ErrParse, s)
	}
	return uint32(v), nil
}
