package zone

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dnsguard/internal/dnswire"
)

// TestPropertyLookupTotal exercises Lookup with random names and types: it
// must never panic, always classify, and respect basic invariants (answers
// only for existing rrsets; SOA present in negatives; referral authority is
// all NS).
func TestPropertyLookupTotal(t *testing.T) {
	z := comZone(t)
	labels := []string{"www", "foo", "bar", "ns1", "ns2", "a", "b", "pr00aabbcc", ""}
	tlds := []string{"com", "org", "foo.com", "x.foo.com", ""}
	types := []dnswire.Type{dnswire.TypeA, dnswire.TypeNS, dnswire.TypeMX, dnswire.TypeTXT, dnswire.TypeSOA, dnswire.TypeCNAME}

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		name := tlds[r.Intn(len(tlds))]
		if l := labels[r.Intn(len(labels))]; l != "" {
			if name != "" {
				name = l + "." + name
			} else {
				name = l
			}
		}
		qname, err := dnswire.ParseName(name)
		if err != nil {
			return true
		}
		qtype := types[r.Intn(len(types))]
		ans := z.Lookup(qname, qtype)
		switch ans.Kind {
		case KindAnswer:
			if len(ans.Answer) == 0 {
				t.Logf("answer kind with empty answers for %s %v", qname, qtype)
				return false
			}
		case KindReferral:
			for _, rr := range ans.Authority {
				if rr.Type != dnswire.TypeNS {
					t.Logf("referral authority has %v", rr.Type)
					return false
				}
			}
		case KindNXDomain, KindNoData:
			if len(ans.Authority) != 1 || ans.Authority[0].Type != dnswire.TypeSOA {
				t.Logf("negative without SOA for %s", qname)
				return false
			}
		default:
			t.Logf("unclassified result for %s", qname)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyParseNeverPanics feeds mutated zone text to the parser.
func TestPropertyParseNeverPanics(t *testing.T) {
	base := fooZoneText
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := []byte(base)
		for i := 0; i < 1+r.Intn(10); i++ {
			b[r.Intn(len(b))] = byte(r.Intn(256))
		}
		_, _ = Parse(string(b), dnswire.Root) // errors fine; panics are not
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
