// Package vclock implements a deterministic discrete-event scheduler with a
// virtual clock and cooperative simulated goroutines ("procs").
//
// The scheduler runs at most one proc at a time. A proc may block only through
// vclock primitives (Sleep, Queue.Get, Cond.Wait); blocking parks the proc and
// returns control to the event loop, which advances virtual time to the next
// scheduled event. Because control transfer is explicit and events are ordered
// by (time, sequence number), every run of a simulation with the same inputs
// is bit-for-bit deterministic.
//
// This is the substrate for the network simulator used by the DNS Guard
// experiments: latency, timeouts, and CPU service times are all expressed as
// virtual durations, so experiments that model minutes of traffic complete in
// milliseconds of real time.
package vclock

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Scheduler owns the virtual clock and the event queue. The zero value is not
// usable; create one with New.
type Scheduler struct {
	now     time.Duration
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	nprocs  int
	ctl     chan struct{} // proc -> scheduler handoff
	running *Proc         // proc currently holding the execution token
	stopped bool
	idleFn  func() bool // optional: called when the event queue drains
}

// New returns a Scheduler whose clock starts at zero and whose random source
// is seeded with seed (determinism requires all simulation randomness to come
// from Rand).
func New(seed int64) *Scheduler {
	return &Scheduler{
		rng: rand.New(rand.NewSource(seed)),
		ctl: make(chan struct{}),
	}
}

// Now returns the current virtual time as an offset from the start of the
// simulation.
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand returns the scheduler's deterministic random source. It must only be
// used from procs or event callbacks.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// RandDuration returns a uniformly distributed duration in [0, max), drawn
// from the scheduler's deterministic random source. It is the primitive the
// network simulator's fault-injection layer uses for latency jitter and
// reorder delays, so degraded-network runs replay bit-for-bit from a seed.
// A non-positive max yields zero without consuming randomness.
func (s *Scheduler) RandDuration(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(s.rng.Int63n(int64(max)))
}

// Proc is a simulated goroutine. Procs are created with Go and must perform
// all blocking through the scheduler that owns them.
type Proc struct {
	name   string
	sched  *Scheduler
	resume chan struct{}
	dead   bool
}

func (p *Proc) String() string { return fmt.Sprintf("proc(%s)", p.name) }

type event struct {
	at   time.Duration
	seq  uint64
	proc *Proc  // if non-nil, wake this proc
	fn   func() // otherwise run this callback inline (must not block)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func (s *Scheduler) schedule(at time.Duration, p *Proc, fn func()) *event {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.events, event{at: at, seq: s.seq, proc: p, fn: fn})
	return nil
}

// Go spawns a new proc that begins executing fn at the current virtual time.
// The name is used in diagnostics only. Go may be called from outside the
// simulation (before Run) or from a running proc or callback.
func (s *Scheduler) Go(name string, fn func()) *Proc {
	p := &Proc{name: name, sched: s, resume: make(chan struct{})}
	s.nprocs++
	go func() {
		<-p.resume // wait to be scheduled for the first time
		fn()
		p.dead = true
		s.nprocs--
		s.ctl <- struct{}{} // return the token; proc goroutine exits
	}()
	s.schedule(s.now, p, nil)
	return p
}

// After schedules fn to run as an event callback after d elapses. Callbacks
// run on the scheduler's goroutine and must not block. It returns a Timer
// that can be stopped.
func (s *Scheduler) After(d time.Duration, fn func()) *Timer {
	t := &Timer{}
	s.schedule(s.now+d, nil, func() {
		if !t.stopped {
			fn()
		}
	})
	return t
}

// Timer is a cancellable callback handle returned by After.
type Timer struct{ stopped bool }

// Stop prevents the timer's callback from firing if it has not fired yet.
func (t *Timer) Stop() { t.stopped = true }

// Sleep parks the calling proc for d of virtual time.
func (s *Scheduler) Sleep(d time.Duration) {
	p := s.mustRunning("Sleep")
	s.schedule(s.now+d, p, nil)
	s.park(p)
}

// Yield parks the calling proc and reschedules it at the current time, after
// any events already queued for this instant.
func (s *Scheduler) Yield() { s.Sleep(0) }

// park transfers control from proc p back to the scheduler loop and blocks
// until the scheduler resumes p.
func (s *Scheduler) park(p *Proc) {
	s.ctl <- struct{}{}
	<-p.resume
}

func (s *Scheduler) mustRunning(op string) *Proc {
	if s.running == nil {
		panic("vclock: " + op + " called from outside a proc")
	}
	return s.running
}

// Running reports the proc currently executing, or nil when the scheduler
// itself (a callback) is running.
func (s *Scheduler) Running() *Proc { return s.running }

// Run processes events until the queue is empty, the virtual clock passes
// until, or Stop is called. It returns the virtual time at which it stopped.
// A zero until means run until the event queue drains.
func (s *Scheduler) Run(until time.Duration) time.Duration {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		e := heap.Pop(&s.events).(event)
		if until > 0 && e.at > until {
			// Put it back for a future Run call and stop at the horizon.
			heap.Push(&s.events, e)
			s.now = until
			return s.now
		}
		s.now = e.at
		switch {
		case e.proc != nil:
			if e.proc.dead {
				continue
			}
			s.running = e.proc
			e.proc.resume <- struct{}{}
			<-s.ctl // wait for the proc to park or finish
			s.running = nil
		case e.fn != nil:
			e.fn()
		}
		if len(s.events) == 0 && s.idleFn != nil && !s.stopped {
			if !s.idleFn() {
				s.idleFn = nil
			}
		}
	}
	return s.now
}

// Stop makes Run return after the current event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// OnIdle registers fn to be invoked whenever the event queue drains while Run
// is active. If fn returns false it is unregistered. It is used by harnesses
// that feed the simulation incrementally.
func (s *Scheduler) OnIdle(fn func() bool) { s.idleFn = fn }

// Pending reports the number of queued events, mostly for tests.
func (s *Scheduler) Pending() int { return len(s.events) }
