package vclock

import (
	"errors"
	"time"
)

// ErrClosed is returned by Queue.Get when the queue has been closed and
// drained.
var ErrClosed = errors.New("vclock: queue closed")

// ErrTimeout is returned by Queue.Get when the timeout elapses before an item
// arrives.
var ErrTimeout = errors.New("vclock: timeout")

// NoTimeout passed to Queue.Get blocks until an item arrives or the queue is
// closed.
const NoTimeout time.Duration = -1

// Queue is an unbounded-by-default FIFO mailbox connecting procs (and event
// callbacks) to procs. Put never blocks; Get blocks the calling proc. A
// capacity may be set, in which case Put drops the item and reports false
// when the queue is full (tail drop) — this is how bounded socket buffers and
// CPU backlogs are modelled.
type Queue[T any] struct {
	sched   *Scheduler
	items   []T
	cap     int // 0 means unbounded
	closed  bool
	waiters []*qwaiter[T]
	dropped uint64
}

type qwaiter[T any] struct {
	proc  *Proc
	item  T
	ok    bool
	err   error
	fired bool // an item or close has been handed to this waiter
}

// NewQueue returns an unbounded queue bound to s.
func NewQueue[T any](s *Scheduler) *Queue[T] {
	return &Queue[T]{sched: s}
}

// NewBoundedQueue returns a queue that holds at most capacity items; further
// Puts are dropped.
func NewBoundedQueue[T any](s *Scheduler, capacity int) *Queue[T] {
	return &Queue[T]{sched: s, cap: capacity}
}

// Len reports the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Dropped reports how many Puts were discarded due to the capacity bound.
func (q *Queue[T]) Dropped() uint64 { return q.dropped }

// Put appends v to the queue, waking the oldest waiter if one exists. It
// reports whether the item was accepted (false when the queue is closed or
// full). Put may be called from procs and from event callbacks.
func (q *Queue[T]) Put(v T) bool {
	if q.closed {
		return false
	}
	// Hand the item directly to the oldest waiter that has not fired yet.
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		if w.fired {
			continue
		}
		w.item, w.ok, w.fired = v, true, true
		q.sched.schedule(q.sched.now, w.proc, nil)
		return true
	}
	if q.cap > 0 && len(q.items) >= q.cap {
		q.dropped++
		return false
	}
	q.items = append(q.items, v)
	return true
}

// PutEvict appends v to the queue like Put, but when the capacity bound is
// reached it evicts the oldest buffered item to make room instead of dropping
// v (drop-oldest policy, for traffic classes where the newest item is worth
// more than the stalest). It returns the evicted item and whether an eviction
// happened; evictions are not counted in Dropped. A Put to a closed queue
// still discards v.
func (q *Queue[T]) PutEvict(v T) (evicted T, didEvict bool) {
	var zero T
	if q.closed {
		return zero, false
	}
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		if w.fired {
			continue
		}
		w.item, w.ok, w.fired = v, true, true
		q.sched.schedule(q.sched.now, w.proc, nil)
		return zero, false
	}
	if q.cap > 0 && len(q.items) >= q.cap {
		evicted, didEvict = q.items[0], true
		q.items = q.items[1:]
	}
	q.items = append(q.items, v)
	return evicted, didEvict
}

// Get removes and returns the oldest item. It blocks the calling proc until
// an item is available, the queue is closed (ErrClosed), or timeout elapses
// (ErrTimeout). A timeout of NoTimeout blocks indefinitely; a timeout of zero
// polls without blocking.
func (q *Queue[T]) Get(timeout time.Duration) (T, error) {
	var zero T
	if len(q.items) > 0 {
		v := q.items[0]
		q.items = q.items[1:]
		return v, nil
	}
	if q.closed {
		return zero, ErrClosed
	}
	if timeout == 0 {
		return zero, ErrTimeout
	}
	p := q.sched.mustRunning("Queue.Get")
	w := &qwaiter[T]{proc: p}
	q.waiters = append(q.waiters, w)
	var timer *Timer
	if timeout > 0 {
		timer = q.sched.After(timeout, func() {
			if !w.fired {
				w.err, w.fired = ErrTimeout, true
				q.sched.schedule(q.sched.now, p, nil)
			}
		})
	}
	q.sched.park(p)
	if timer != nil {
		timer.Stop()
	}
	if w.err != nil {
		return zero, w.err
	}
	if !w.ok {
		return zero, ErrClosed
	}
	return w.item, nil
}

// Close marks the queue closed. Buffered items may still be drained with Get;
// blocked waiters are woken with ErrClosed.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for _, w := range q.waiters {
		if w.fired {
			continue
		}
		w.fired = true
		q.sched.schedule(q.sched.now, w.proc, nil)
	}
	q.waiters = nil
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }
