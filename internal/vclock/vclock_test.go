package vclock

import (
	"testing"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	s := New(1)
	var woke time.Duration
	s.Go("sleeper", func() {
		s.Sleep(250 * time.Millisecond)
		woke = s.Now()
	})
	s.Run(0)
	if woke != 250*time.Millisecond {
		t.Fatalf("woke at %v, want 250ms", woke)
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New(1)
	var order []int
	s.After(30*time.Millisecond, func() { order = append(order, 3) })
	s.After(10*time.Millisecond, func() { order = append(order, 1) })
	s.After(20*time.Millisecond, func() { order = append(order, 2) })
	s.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

func TestSameInstantEventsRunInScheduleOrder(t *testing.T) {
	s := New(1)
	var order []int
	for i := 1; i <= 5; i++ {
		i := i
		s.After(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run(0)
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.After(time.Millisecond, func() { fired = true })
	tm.Stop()
	s.Run(0)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestQueuePutGet(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s)
	var got []int
	s.Go("consumer", func() {
		for i := 0; i < 3; i++ {
			v, err := q.Get(NoTimeout)
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			got = append(got, v)
		}
	})
	s.Go("producer", func() {
		for i := 1; i <= 3; i++ {
			s.Sleep(time.Millisecond)
			q.Put(i)
		}
	})
	s.Run(0)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got = %v, want [1 2 3]", got)
	}
}

func TestQueueGetTimeout(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s)
	var err error
	var elapsed time.Duration
	s.Go("consumer", func() {
		start := s.Now()
		_, err = q.Get(5 * time.Millisecond)
		elapsed = s.Now() - start
	})
	s.Run(0)
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed != 5*time.Millisecond {
		t.Fatalf("elapsed = %v, want 5ms", elapsed)
	}
}

func TestQueueGetZeroTimeoutPolls(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s)
	q.Put(7)
	s.Go("poller", func() {
		if v, err := q.Get(0); err != nil || v != 7 {
			t.Errorf("Get = %v, %v; want 7, nil", v, err)
		}
		if _, err := q.Get(0); err != ErrTimeout {
			t.Errorf("empty poll err = %v, want ErrTimeout", err)
		}
	})
	s.Run(0)
}

func TestQueueTimeoutThenPutDoesNotLoseItem(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s)
	var after int
	s.Go("consumer", func() {
		if _, err := q.Get(time.Millisecond); err != ErrTimeout {
			t.Errorf("first Get err = %v, want timeout", err)
		}
		v, err := q.Get(NoTimeout)
		if err != nil {
			t.Errorf("second Get err = %v", err)
		}
		after = v
	})
	s.Go("producer", func() {
		s.Sleep(2 * time.Millisecond)
		q.Put(42)
	})
	s.Run(0)
	if after != 42 {
		t.Fatalf("after = %d, want 42 (item delivered to stale waiter?)", after)
	}
}

func TestQueueCloseWakesWaiter(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s)
	var err error
	s.Go("consumer", func() { _, err = q.Get(NoTimeout) })
	s.Go("closer", func() {
		s.Sleep(time.Millisecond)
		q.Close()
	})
	s.Run(0)
	if err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestQueueCloseDrainsBufferedItems(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s)
	q.Put(1)
	q.Close()
	s.Go("consumer", func() {
		if v, err := q.Get(NoTimeout); err != nil || v != 1 {
			t.Errorf("Get = %v, %v; want 1, nil", v, err)
		}
		if _, err := q.Get(NoTimeout); err != ErrClosed {
			t.Errorf("after drain err = %v, want ErrClosed", err)
		}
	})
	s.Run(0)
}

func TestBoundedQueueDrops(t *testing.T) {
	s := New(1)
	q := NewBoundedQueue[int](s, 2)
	if !q.Put(1) || !q.Put(2) {
		t.Fatal("first two puts rejected")
	}
	if q.Put(3) {
		t.Fatal("third put accepted beyond capacity")
	}
	if q.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", q.Dropped())
	}
}

func TestBoundedQueuePutEvict(t *testing.T) {
	s := New(1)
	q := NewBoundedQueue[int](s, 2)
	q.Put(1)
	q.Put(2)
	ev, did := q.PutEvict(3)
	if !did || ev != 1 {
		t.Fatalf("PutEvict = (%d, %v), want (1, true)", ev, did)
	}
	if q.Dropped() != 0 {
		t.Fatalf("evictions counted as drops: %d", q.Dropped())
	}
	// FIFO order after eviction: 2, then 3.
	var got []int
	s.Go("drain", func() {
		for i := 0; i < 2; i++ {
			v, err := q.Get(NoTimeout)
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			got = append(got, v)
		}
	})
	s.Run(0)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("drained %v, want [2 3]", got)
	}
}

func TestBoundedQueuePutEvictHandsToWaiter(t *testing.T) {
	s := New(1)
	q := NewBoundedQueue[int](s, 1)
	var got int
	s.Go("waiter", func() {
		v, err := q.Get(NoTimeout)
		if err != nil {
			t.Errorf("Get: %v", err)
			return
		}
		got = v
	})
	s.Go("producer", func() {
		if _, did := q.PutEvict(7); did {
			t.Error("eviction with a blocked waiter present")
		}
	})
	s.Run(0)
	if got != 7 {
		t.Fatalf("waiter got %d, want 7", got)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := New(1)
	fired := 0
	s.After(time.Second, func() { fired++ })
	s.After(3*time.Second, func() { fired++ })
	end := s.Run(2 * time.Second)
	if end != 2*time.Second {
		t.Fatalf("end = %v, want 2s", end)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	s.Run(0)
	if fired != 2 {
		t.Fatalf("after second run fired = %d, want 2", fired)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		s := New(42)
		q := NewQueue[int](s)
		var stamps []time.Duration
		for i := 0; i < 4; i++ {
			i := i
			s.Go("p", func() {
				d := time.Duration(s.Rand().Intn(1000)) * time.Microsecond
				s.Sleep(d)
				q.Put(i)
			})
		}
		s.Go("c", func() {
			for i := 0; i < 4; i++ {
				if _, err := q.Get(NoTimeout); err != nil {
					return
				}
				stamps = append(stamps, s.Now())
			}
		})
		s.Run(0)
		return stamps
	}
	a, b := run(), run()
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("incomplete runs: %v %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic: %v vs %v", a, b)
		}
	}
}

func TestGoFromProc(t *testing.T) {
	s := New(1)
	done := false
	s.Go("outer", func() {
		s.Go("inner", func() { done = true })
		s.Sleep(time.Millisecond)
	})
	s.Run(0)
	if !done {
		t.Fatal("inner proc never ran")
	}
}

func TestYieldRunsAfterQueuedEvents(t *testing.T) {
	s := New(1)
	var order []string
	s.Go("a", func() {
		order = append(order, "a1")
		s.Yield()
		order = append(order, "a2")
	})
	s.Go("b", func() { order = append(order, "b") })
	s.Run(0)
	want := []string{"a1", "b", "a2"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
