package dnswire

import (
	"errors"
	"math/rand"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleMessage() *Message {
	return &Message{
		ID:    0xBEEF,
		Flags: Flags{QR: true, AA: true, RD: true, RA: true},
		Questions: []Question{
			{Name: MustName("www.foo.com"), Type: TypeA, Class: ClassINET},
		},
		Answers: []RR{
			NewRR(MustName("www.foo.com"), 300, &CNAMEData{Target: MustName("web.foo.com")}),
			NewRR(MustName("web.foo.com"), 300, &AData{Addr: netip.MustParseAddr("1.2.3.4")}),
			NewRR(MustName("web.foo.com"), 300, &AAAAData{Addr: netip.MustParseAddr("2001:db8::1")}),
		},
		Authority: []RR{
			NewRR(MustName("foo.com"), 86400, &NSData{Host: MustName("ns1.foo.com")}),
			NewRR(MustName("foo.com"), 86400, &SOAData{
				MName: MustName("ns1.foo.com"), RName: MustName("admin.foo.com"),
				Serial: 2026070601, Refresh: 7200, Retry: 600, Expire: 360000, Minimum: 60,
			}),
		},
		Additional: []RR{
			NewRR(MustName("ns1.foo.com"), 86400, &AData{Addr: netip.MustParseAddr("5.6.7.8")}),
			NewRR(MustName("foo.com"), 3600, &MXData{Pref: 10, Host: MustName("mail.foo.com")}),
			NewRR(Root, 0, &TXTData{Strings: [][]byte{[]byte("cookie-0123456789abcdef")}}),
		},
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	m := sampleMessage()
	b, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	got, err := Unpack(b)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, m)
	}
}

func TestCompressionShrinksMessage(t *testing.T) {
	m := sampleMessage()
	b, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	// Rough uncompressed size: every name fully expanded.
	uncompressed := 12
	for _, q := range m.Questions {
		uncompressed += q.Name.WireLen() + 4
	}
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, r := range sec {
			uncompressed += r.Name.WireLen() + 10 + 32 // generous rdata bound
		}
	}
	if len(b) >= uncompressed {
		t.Fatalf("compressed %d >= rough uncompressed bound %d", len(b), uncompressed)
	}
	// All shared suffixes should appear only once.
	if n := strings.Count(string(b), "\x03foo\x03com"); n != 1 {
		t.Fatalf("foo.com appears %d times in wire form, want 1 (compression)", n)
	}
}

func TestUnpackRejectsTrailingBytes(t *testing.T) {
	b, _ := sampleMessage().Pack()
	b = append(b, 0xFF)
	if _, err := Unpack(b); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
}

func TestUnpackRejectsTruncatedInput(t *testing.T) {
	b, _ := sampleMessage().Pack()
	for i := 1; i < len(b)-1; i++ {
		if _, err := Unpack(b[:i]); err == nil {
			t.Fatalf("Unpack accepted truncation at %d bytes", i)
		}
	}
}

func TestUnpackRejectsPointerLoop(t *testing.T) {
	// Header + a question whose name is a pointer to itself.
	b := make([]byte, 12)
	b[5] = 1                 // QDCOUNT=1
	name := []byte{0xC0, 12} // points at itself
	b = append(b, name...)
	b = append(b, 0, 1, 0, 1)
	_, err := Unpack(b)
	if !errors.Is(err, ErrForwardPointer) && !errors.Is(err, ErrPointerLoop) {
		t.Fatalf("err = %v, want pointer error", err)
	}
}

func TestUnpackRejectsForwardPointer(t *testing.T) {
	b := make([]byte, 12)
	b[5] = 1
	b = append(b, 0xC0, 20) // forward pointer past the name
	b = append(b, 0, 1, 0, 1, 0, 0, 0, 0)
	if _, err := Unpack(b); err == nil {
		t.Fatal("accepted forward pointer")
	}
}

func TestUnpackRejectsBadRDLength(t *testing.T) {
	m := &Message{ID: 1, Questions: []Question{{Name: MustName("a.b"), Type: TypeA, Class: ClassINET}}}
	b, _ := m.Pack()
	// Claim an answer exists but provide a record whose rdlength overruns.
	b[7] = 1 // ANCOUNT = 1
	b = append(b, 0 /*root name*/, 0, 1, 0, 1, 0, 0, 0, 0 /*ttl*/, 0, 10 /*rdlen 10*/, 1, 2, 3, 4)
	if _, err := Unpack(b); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
}

func TestPackUDPTruncates(t *testing.T) {
	m := &Message{
		ID:        7,
		Flags:     Flags{QR: true},
		Questions: []Question{{Name: MustName("big.example"), Type: TypeTXT, Class: ClassINET}},
	}
	for i := 0; i < 30; i++ {
		m.Answers = append(m.Answers, NewRR(MustName("big.example"), 60,
			&TXTData{Strings: [][]byte{[]byte(strings.Repeat("x", 100))}}))
	}
	b, err := m.PackUDP(MaxUDPSize)
	if err != nil {
		t.Fatalf("PackUDP: %v", err)
	}
	if len(b) > MaxUDPSize {
		t.Fatalf("len = %d > 512", len(b))
	}
	got, err := Unpack(b)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if !got.Flags.TC {
		t.Fatal("TC flag not set on truncated response")
	}
	if len(got.Answers) >= 30 {
		t.Fatal("no records dropped")
	}
	// The original message must be untouched.
	if m.Flags.TC || len(m.Answers) != 30 {
		t.Fatal("PackUDP mutated its receiver")
	}
}

func TestPackUDPSmallMessagePassesThrough(t *testing.T) {
	m := NewQuery(9, MustName("foo.com"), TypeA)
	b, err := m.PackUDP(MaxUDPSize)
	if err != nil {
		t.Fatalf("PackUDP: %v", err)
	}
	got, _ := Unpack(b)
	if got.Flags.TC {
		t.Fatal("TC set on small message")
	}
}

func TestResponseSkeleton(t *testing.T) {
	q := NewQuery(42, MustName("foo.com"), TypeNS)
	r := q.Response()
	if r.ID != 42 || !r.Flags.QR || !r.Flags.RD || len(r.Questions) != 1 {
		t.Fatalf("bad response skeleton: %v", r)
	}
}

func TestUnknownTypeRoundTripsAsRaw(t *testing.T) {
	rr := RR{Name: MustName("x.y"), Type: Type(999), Class: ClassINET, TTL: 5, Data: &Raw{Data: []byte{9, 9, 9}}}
	m := &Message{ID: 3, Answers: []RR{rr}}
	b, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	got, err := Unpack(b)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	raw, ok := got.Answers[0].Data.(*Raw)
	if !ok || !reflect.DeepEqual(raw.Data, []byte{9, 9, 9}) {
		t.Fatalf("got %v", got.Answers[0])
	}
}

// randomName builds a valid random domain name from the rng.
func randomName(r *rand.Rand) Name {
	nlabels := 1 + r.Intn(4)
	labels := make([]string, nlabels)
	const alpha = "abcdefghijklmnopqrstuvwxyz0123456789-"
	for i := range labels {
		l := make([]byte, 1+r.Intn(12))
		for j := range l {
			l[j] = alpha[r.Intn(len(alpha)-1)] // avoid '-' heavy labels mattering
		}
		labels[i] = string(l)
	}
	return MustName(strings.Join(labels, "."))
}

func randomRR(r *rand.Rand) RR {
	name := randomName(r)
	ttl := r.Uint32() % 1000000
	switch r.Intn(7) {
	case 0:
		var a [4]byte
		r.Read(a[:])
		return NewRR(name, ttl, &AData{Addr: netip.AddrFrom4(a)})
	case 1:
		return NewRR(name, ttl, &NSData{Host: randomName(r)})
	case 2:
		return NewRR(name, ttl, &CNAMEData{Target: randomName(r)})
	case 3:
		return NewRR(name, ttl, &MXData{Pref: uint16(r.Intn(100)), Host: randomName(r)})
	case 4:
		n := 1 + r.Intn(3)
		strs := make([][]byte, n)
		for i := range strs {
			strs[i] = make([]byte, r.Intn(50))
			r.Read(strs[i])
		}
		return NewRR(name, ttl, &TXTData{Strings: strs})
	case 5:
		var a [16]byte
		r.Read(a[:])
		addr := netip.AddrFrom16(a)
		if addr.Is4In6() {
			a[0] = 0x20
			addr = netip.AddrFrom16(a)
		}
		return NewRR(name, ttl, &AAAAData{Addr: addr})
	default:
		return NewRR(name, ttl, &SOAData{
			MName: randomName(r), RName: randomName(r),
			Serial: r.Uint32(), Refresh: r.Uint32(), Retry: r.Uint32(),
			Expire: r.Uint32(), Minimum: r.Uint32(),
		})
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := &Message{
			ID:    uint16(r.Uint32()),
			Flags: Flags{QR: r.Intn(2) == 0, AA: r.Intn(2) == 0, TC: r.Intn(2) == 0, RD: r.Intn(2) == 0, RCode: RCode(r.Intn(6))},
		}
		for i := 0; i < r.Intn(3); i++ {
			m.Questions = append(m.Questions, Question{Name: randomName(r), Type: TypeA, Class: ClassINET})
		}
		for i := 0; i < r.Intn(5); i++ {
			m.Answers = append(m.Answers, randomRR(r))
		}
		for i := 0; i < r.Intn(3); i++ {
			m.Authority = append(m.Authority, randomRR(r))
		}
		for i := 0; i < r.Intn(3); i++ {
			m.Additional = append(m.Additional, randomRR(r))
		}
		b, err := m.Pack()
		if err != nil {
			t.Logf("Pack(%d): %v", seed, err)
			return false
		}
		got, err := Unpack(b)
		if err != nil {
			t.Logf("Unpack(%d): %v", seed, err)
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUnpackNeverPanicsOnMutatedInput(t *testing.T) {
	base, _ := sampleMessage().Pack()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := append([]byte(nil), base...)
		for i := 0; i < 1+r.Intn(8); i++ {
			b[r.Intn(len(b))] ^= byte(1 << r.Intn(8))
		}
		// Must not panic; errors are fine.
		_, _ = Unpack(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameScanner(t *testing.T) {
	m1, _ := NewQuery(1, MustName("a.com"), TypeA).Pack()
	m2, _ := NewQuery(2, MustName("b.com"), TypeNS).Pack()
	var stream []byte
	var err error
	if stream, err = AppendTCPFrame(stream, m1); err != nil {
		t.Fatal(err)
	}
	if stream, err = AppendTCPFrame(stream, m2); err != nil {
		t.Fatal(err)
	}
	var sc FrameScanner
	// Feed byte by byte to exercise partial reads.
	var got [][]byte
	for _, by := range stream {
		sc.Add([]byte{by})
		for {
			msg, ok, err := sc.Next()
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
			if !ok {
				break
			}
			got = append(got, msg)
		}
	}
	if len(got) != 2 {
		t.Fatalf("got %d messages, want 2", len(got))
	}
	d1, err := Unpack(got[0])
	if err != nil || d1.ID != 1 {
		t.Fatalf("first frame: %v %v", d1, err)
	}
	d2, err := Unpack(got[1])
	if err != nil || d2.ID != 2 {
		t.Fatalf("second frame: %v %v", d2, err)
	}
}

func TestFrameScannerRejectsRunt(t *testing.T) {
	var sc FrameScanner
	sc.Add([]byte{0, 3, 1, 2, 3})
	if _, _, err := sc.Next(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
}
