package dnswire

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// addWireSeeds feeds every wire capture under testdata/ to the fuzzer so
// mutation starts from realistic message shapes (queries, CNAME chains,
// referrals with glue, TXT cookies, negative responses) rather than random
// bytes. Regenerate the captures with `go run internal/dnswire/testdata/gen.go`.
func addWireSeeds(f *F) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.bin"))
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) == 0 {
		f.Fatal("no wire-capture seeds under testdata/; run go run internal/dnswire/testdata/gen.go")
	}
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
}

// F is the subset of *testing.F the seed loader needs; it keeps addWireSeeds
// usable from both fuzz targets without repeating the glob boilerplate.
type F = testing.F

// decodeErrClassifiable reports whether err belongs to the documented decode
// error family. Unpack promises hostile input is rejected with an error that
// is classifiable by a single errors.Is check against these sentinels.
func decodeErrClassifiable(err error) bool {
	return errors.Is(err, ErrMalformed) ||
		errors.Is(err, ErrPointerLoop) ||
		errors.Is(err, ErrForwardPointer) ||
		errors.Is(err, ErrNameTooLong) ||
		errors.Is(err, ErrMessageTooLarge)
}

// FuzzDecode throws arbitrary bytes at Unpack and checks the decoder's safety
// contract: no panic, every failure wraps a documented sentinel error, and
// any message that decodes successfully survives a Pack/Unpack round trip
// with its header and section structure intact.
func FuzzDecode(f *testing.F) {
	addWireSeeds(f)
	// A few adversarial shapes the captures don't cover: empty input, bare
	// header, self-pointing compression, pointer chain, reserved label type.
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 0x0C, 0, 1, 0, 1})
	f.Add([]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 0x00, 0, 1, 0, 1})
	f.Add([]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0x80, 0x01, 0, 1, 0, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			if !decodeErrClassifiable(err) {
				t.Fatalf("Unpack error outside the documented family: %v", err)
			}
			return
		}
		// Accepted input must re-encode. Names decoded from the wire can
		// only shrink label-wise, so Pack may fail solely on the size cap —
		// and a decoded message is never larger than its wire form.
		wire, err := m.Pack()
		if err != nil {
			t.Fatalf("Pack failed on a message Unpack accepted: %v", err)
		}
		m2, err := Unpack(wire)
		if err != nil {
			t.Fatalf("re-Unpack of packed message failed: %v\nwire: %x", err, wire)
		}
		if m2.ID != m.ID || m2.Flags != m.Flags {
			t.Fatalf("header changed across round trip: %+v vs %+v", m2, m)
		}
		if len(m2.Questions) != len(m.Questions) || len(m2.Answers) != len(m.Answers) ||
			len(m2.Authority) != len(m.Authority) || len(m2.Additional) != len(m.Additional) {
			t.Fatalf("section counts changed across round trip: %+v vs %+v", m2, m)
		}
		// Canonical fixed point: packing the re-decoded message must be
		// byte-identical — our encoder's output is stable under re-encode.
		wire2, err := m2.Pack()
		if err != nil {
			t.Fatalf("second Pack failed: %v", err)
		}
		if !bytes.Equal(wire, wire2) {
			t.Fatalf("encoding not a fixed point:\n first: %x\nsecond: %x", wire, wire2)
		}
	})
}

// FuzzNameRoundTrip checks that any string ParseName accepts survives a full
// encode/decode cycle unchanged: the canonical Name packs into a question and
// unpacks back to the identical Name (ParseName already lowercased it, and
// the wire decoder lowercases too, so canonicalization is a fixed point).
func FuzzNameRoundTrip(f *testing.F) {
	for _, s := range []string{
		"", ".", "com", "www.foo.com", "WWW.FOO.COM", "a.b.c.d.e.f.g",
		"xn--nxasmq6b.example", "_cookie.foo.com", "ns1.foo.com.",
		"123.456.789.com", "with-dash.and_underscore.example",
	} {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, s string) {
		n, err := ParseName(s)
		if err != nil {
			// Rejection is fine; the error just has to be a documented one.
			if !errors.Is(err, ErrNameTooLong) && !errors.Is(err, ErrLabelTooLong) &&
				!errors.Is(err, ErrEmptyLabel) {
				t.Fatalf("ParseName(%q) error outside the documented family: %v", s, err)
			}
			return
		}
		if n.WireLen() > MaxNameWireLen {
			t.Fatalf("ParseName(%q) accepted a name with wire length %d", s, n.WireLen())
		}
		// Canonicalization must be idempotent.
		again, err := ParseName(string(n))
		if err != nil {
			t.Fatalf("ParseName not idempotent: re-parse of %q failed: %v", n, err)
		}
		if again != n {
			t.Fatalf("ParseName not idempotent: %q -> %q -> %q", s, n, again)
		}
		// Wire round trip through a real message.
		wire, err := NewQuery(0x7357, n, TypeA).Pack()
		if err != nil {
			t.Fatalf("Pack of query for %q failed: %v", n, err)
		}
		m, err := Unpack(wire)
		if err != nil {
			t.Fatalf("Unpack of query for %q failed: %v", n, err)
		}
		if len(m.Questions) != 1 || m.Questions[0].Name != n {
			t.Fatalf("name changed across wire round trip: %q -> %v", n, m.Questions)
		}
	})
}
