// Package dnswire implements the DNS wire format per RFC 1035: message
// encoding and decoding with name compression, the resource-record types the
// DNS Guard system needs (A, NS, CNAME, SOA, PTR, MX, TXT, AAAA), UDP size
// limits with truncation, and the two-byte length framing used by DNS over
// TCP.
//
// The codec is strict on decode (rejects malformed names, forward compression
// pointers, and out-of-bounds lengths) because the guard parses packets from
// hostile sources.
package dnswire

import "fmt"

// Type is a DNS resource-record type code.
type Type uint16

// Resource-record types used in this system.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeOPT   Type = 41
	TypeANY   Type = 255
)

func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypePTR:
		return "PTR"
	case TypeMX:
		return "MX"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	case TypeOPT:
		return "OPT"
	case TypeANY:
		return "ANY"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// Class is a DNS class code.
type Class uint16

// ClassINET is the Internet class; the only class this system uses.
const ClassINET Class = 1

func (c Class) String() string {
	if c == ClassINET {
		return "IN"
	}
	return fmt.Sprintf("CLASS%d", uint16(c))
}

// Opcode is the DNS operation code.
type Opcode uint8

// OpcodeQuery is a standard query; the only opcode this system uses.
const OpcodeQuery Opcode = 0

// RCode is the DNS response code.
type RCode uint8

// Response codes.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

func (r RCode) String() string {
	switch r {
	case RCodeNoError:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	default:
		return fmt.Sprintf("RCODE%d", uint8(r))
	}
}

// Wire-format size limits.
const (
	// MaxUDPSize is the classic RFC 1035 UDP payload limit; larger
	// responses must be truncated with the TC flag set.
	MaxUDPSize = 512
	// MaxMessageSize bounds any DNS message (the TCP length prefix is 16
	// bits).
	MaxMessageSize = 65535
	// MaxNameWireLen bounds an encoded domain name.
	MaxNameWireLen = 255
	// MaxLabelLen bounds a single label.
	MaxLabelLen = 63
)
