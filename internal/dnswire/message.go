package dnswire

import (
	"fmt"
	"net/netip"
	"strings"
)

// Flags is the decoded second word of the DNS header.
type Flags struct {
	QR     bool // response
	Opcode Opcode
	AA     bool // authoritative answer
	TC     bool // truncated
	RD     bool // recursion desired
	RA     bool // recursion available
	RCode  RCode
}

func (f Flags) pack() uint16 {
	var w uint16
	if f.QR {
		w |= 1 << 15
	}
	w |= uint16(f.Opcode&0xF) << 11
	if f.AA {
		w |= 1 << 10
	}
	if f.TC {
		w |= 1 << 9
	}
	if f.RD {
		w |= 1 << 8
	}
	if f.RA {
		w |= 1 << 7
	}
	w |= uint16(f.RCode & 0xF)
	return w
}

func unpackFlags(w uint16) Flags {
	return Flags{
		QR:     w&(1<<15) != 0,
		Opcode: Opcode(w >> 11 & 0xF),
		AA:     w&(1<<10) != 0,
		TC:     w&(1<<9) != 0,
		RD:     w&(1<<8) != 0,
		RA:     w&(1<<7) != 0,
		RCode:  RCode(w & 0xF),
	}
}

// Question is one entry of the question section.
type Question struct {
	Name  Name
	Type  Type
	Class Class
}

func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", q.Name, q.Class, q.Type)
}

// RR is a resource record. Data's concrete type corresponds to Type; records
// decoded with an unknown type carry *Raw data.
type RR struct {
	Name  Name
	Type  Type
	Class Class
	TTL   uint32
	Data  RData
}

func (r RR) String() string {
	return fmt.Sprintf("%s %d %s %s %s", r.Name, r.TTL, r.Class, r.Type, r.Data)
}

// RData is the typed payload of a resource record.
type RData interface {
	// encode appends the RDATA (without the length prefix) to b.
	encode(b *builder)
	String() string
}

// AData is an IPv4 address record payload.
type AData struct{ Addr netip.Addr }

func (d *AData) encode(b *builder) { b.addr4(d.Addr) }
func (d *AData) String() string    { return d.Addr.String() }

// AAAAData is an IPv6 address record payload.
type AAAAData struct{ Addr netip.Addr }

func (d *AAAAData) encode(b *builder) { b.addr16(d.Addr) }
func (d *AAAAData) String() string    { return d.Addr.String() }

// NSData names an authoritative server for the owner domain.
type NSData struct{ Host Name }

func (d *NSData) encode(b *builder) { b.name(d.Host, true) }
func (d *NSData) String() string    { return d.Host.String() }

// CNAMEData is an alias record payload.
type CNAMEData struct{ Target Name }

func (d *CNAMEData) encode(b *builder) { b.name(d.Target, true) }
func (d *CNAMEData) String() string    { return d.Target.String() }

// PTRData is a pointer record payload.
type PTRData struct{ Target Name }

func (d *PTRData) encode(b *builder) { b.name(d.Target, true) }
func (d *PTRData) String() string    { return d.Target.String() }

// MXData is a mail-exchange record payload.
type MXData struct {
	Pref uint16
	Host Name
}

func (d *MXData) encode(b *builder) { b.u16(d.Pref); b.name(d.Host, true) }
func (d *MXData) String() string    { return fmt.Sprintf("%d %s", d.Pref, d.Host) }

// SOAData is a start-of-authority record payload.
type SOAData struct {
	MName   Name
	RName   Name
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

func (d *SOAData) encode(b *builder) {
	b.name(d.MName, true)
	b.name(d.RName, true)
	b.u32(d.Serial)
	b.u32(d.Refresh)
	b.u32(d.Retry)
	b.u32(d.Expire)
	b.u32(d.Minimum)
}

func (d *SOAData) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d", d.MName, d.RName, d.Serial, d.Refresh, d.Retry, d.Expire, d.Minimum)
}

// TXTData is a text record payload: one or more character strings of up to
// 255 octets each. The modified-DNS cookie extension carries its cookie in a
// TXT record's first string.
type TXTData struct{ Strings [][]byte }

func (d *TXTData) encode(b *builder) {
	for _, s := range d.Strings {
		b.u8(uint8(len(s)))
		b.bytes(s)
	}
}

func (d *TXTData) String() string {
	parts := make([]string, len(d.Strings))
	for i, s := range d.Strings {
		parts[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(parts, " ")
}

// Raw is the payload of a record whose type this codec does not interpret.
type Raw struct{ Data []byte }

func (d *Raw) encode(b *builder) { b.bytes(d.Data) }
func (d *Raw) String() string    { return fmt.Sprintf("\\# %d %x", len(d.Data), d.Data) }

// Message is a full DNS message.
type Message struct {
	ID         uint16
	Flags      Flags
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// Question returns the first question, or a zero Question if none.
func (m *Message) Question() Question {
	if len(m.Questions) == 0 {
		return Question{}
	}
	return m.Questions[0]
}

// Response constructs a reply skeleton for m: same ID and question, QR set,
// RD echoed.
func (m *Message) Response() *Message {
	return &Message{
		ID:        m.ID,
		Flags:     Flags{QR: true, RD: m.Flags.RD},
		Questions: append([]Question(nil), m.Questions...),
	}
}

func (m *Message) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "id=%d qr=%v aa=%v tc=%v rcode=%v", m.ID, m.Flags.QR, m.Flags.AA, m.Flags.TC, m.Flags.RCode)
	for _, q := range m.Questions {
		fmt.Fprintf(&sb, "\n;; Q: %s", q)
	}
	for _, r := range m.Answers {
		fmt.Fprintf(&sb, "\n;; AN: %s", r)
	}
	for _, r := range m.Authority {
		fmt.Fprintf(&sb, "\n;; AU: %s", r)
	}
	for _, r := range m.Additional {
		fmt.Fprintf(&sb, "\n;; AD: %s", r)
	}
	return sb.String()
}

// NewQuery builds a standard recursive-desired query for name/type.
func NewQuery(id uint16, name Name, qtype Type) *Message {
	return &Message{
		ID:        id,
		Flags:     Flags{RD: true},
		Questions: []Question{{Name: name, Type: qtype, Class: ClassINET}},
	}
}

// NewRR is a convenience constructor that derives the Type field from the
// concrete RData.
func NewRR(name Name, ttl uint32, data RData) RR {
	return RR{Name: name, Type: typeOf(data), Class: ClassINET, TTL: ttl, Data: data}
}

func typeOf(d RData) Type {
	switch d.(type) {
	case *AData:
		return TypeA
	case *AAAAData:
		return TypeAAAA
	case *NSData:
		return TypeNS
	case *CNAMEData:
		return TypeCNAME
	case *PTRData:
		return TypePTR
	case *MXData:
		return TypeMX
	case *SOAData:
		return TypeSOA
	case *TXTData:
		return TypeTXT
	default:
		return TypeANY
	}
}
