package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// Name is a fully-qualified domain name in canonical form: lowercase, dotted,
// without a trailing dot. The root name is ".". Construct Names with
// ParseName (or MustName in tests/fixtures) so invariants hold.
type Name string

// Root is the DNS root name.
const Root Name = "."

// Name validation errors.
var (
	ErrNameTooLong  = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel   = errors.New("dnswire: empty label")
)

// ParseName canonicalizes and validates s as a domain name. A trailing dot is
// accepted and removed; the empty string and "." both denote the root.
func ParseName(s string) (Name, error) {
	if s == "" || s == "." {
		return Root, nil
	}
	s = strings.TrimSuffix(s, ".")
	s = strings.ToLower(s)
	wire := 1 // terminating zero octet
	for _, label := range strings.Split(s, ".") {
		switch {
		case label == "":
			return "", fmt.Errorf("%w in %q", ErrEmptyLabel, s)
		case len(label) > MaxLabelLen:
			return "", fmt.Errorf("%w: %q", ErrLabelTooLong, label)
		}
		wire += 1 + len(label)
	}
	if wire > MaxNameWireLen {
		return "", fmt.Errorf("%w: %q", ErrNameTooLong, s)
	}
	return Name(s), nil
}

// MustName is ParseName that panics on error; for constants and tests.
func MustName(s string) Name {
	n, err := ParseName(s)
	if err != nil {
		panic(err)
	}
	return n
}

// String renders the name with a trailing dot for the root only, matching
// common presentation format.
func (n Name) String() string { return string(n) }

// IsRoot reports whether n is the root name.
func (n Name) IsRoot() bool { return n == Root || n == "" }

// Labels returns the name's labels, most-specific first. The root has none.
func (n Name) Labels() []string {
	if n.IsRoot() {
		return nil
	}
	return strings.Split(string(n), ".")
}

// NumLabels reports the number of labels.
func (n Name) NumLabels() int {
	if n.IsRoot() {
		return 0
	}
	return strings.Count(string(n), ".") + 1
}

// FirstLabel returns the leftmost (most specific) label, or "" for the root.
func (n Name) FirstLabel() string {
	if n.IsRoot() {
		return ""
	}
	if i := strings.IndexByte(string(n), '.'); i >= 0 {
		return string(n[:i])
	}
	return string(n)
}

// Parent returns the name with the first label removed; the parent of a
// single-label name (and of the root) is the root.
func (n Name) Parent() Name {
	if n.IsRoot() {
		return Root
	}
	if i := strings.IndexByte(string(n), '.'); i >= 0 {
		return n[i+1:]
	}
	return Root
}

// IsSubdomainOf reports whether n is equal to or below parent.
func (n Name) IsSubdomainOf(parent Name) bool {
	if parent.IsRoot() {
		return true
	}
	if n == parent {
		return true
	}
	return strings.HasSuffix(string(n), "."+string(parent))
}

// ChildOf returns the ancestor of n that is exactly one label below zone.
// For example ChildOf(www.foo.com, com) = foo.com and ChildOf(www.foo.com, .)
// = com. It reports ok=false when n is not strictly below zone. This is the
// name the DNS guard fabricates an NS record for.
func (n Name) ChildOf(zone Name) (Name, bool) {
	if !n.IsSubdomainOf(zone) || n == zone {
		return "", false
	}
	labels := n.Labels()
	depth := n.NumLabels() - zone.NumLabels()
	return Name(strings.Join(labels[depth-1:], ".")), true
}

// PrependLabel returns label.n, validating the result.
func (n Name) PrependLabel(label string) (Name, error) {
	if n.IsRoot() {
		return ParseName(label)
	}
	return ParseName(label + "." + string(n))
}

// WireLen returns the encoded (uncompressed) length of the name in octets.
func (n Name) WireLen() int {
	if n.IsRoot() {
		return 1
	}
	return len(n) + 2
}
