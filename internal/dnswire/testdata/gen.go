//go:build ignore

// gen.go regenerates the wire-capture seed corpus for the dnswire fuzz
// targets. Run from the module root:
//
//	go run internal/dnswire/testdata/gen.go
//
// Each .bin file is the exact wire encoding of one representative message
// shape the system exchanges: plain queries, answers with CNAME chains,
// referrals with glue, TXT cookie payloads, and negative responses. The fuzz
// harness loads every *.bin here as a seed so mutation starts from realistic
// captures rather than random bytes.
package main

import (
	"fmt"
	"net/netip"
	"os"
	"path/filepath"

	"dnsguard/internal/dnswire"
)

func main() {
	dir := filepath.Join("internal", "dnswire", "testdata")
	seeds := map[string]*dnswire.Message{
		"query_a.bin": dnswire.NewQuery(0x1234, dnswire.MustName("www.foo.com"), dnswire.TypeA),
		"query_aaaa.bin": dnswire.NewQuery(0x00ff, dnswire.MustName("deep.sub.domain.example.org"),
			dnswire.TypeAAAA),
		"answer_a.bin": {
			ID:        0x1234,
			Flags:     dnswire.Flags{QR: true, RD: true, RA: true},
			Questions: []dnswire.Question{{Name: "www.foo.com", Type: dnswire.TypeA, Class: dnswire.ClassINET}},
			Answers: []dnswire.RR{
				{Name: "www.foo.com", Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: 300,
					Data: &dnswire.AData{Addr: netip.MustParseAddr("198.51.100.10")}},
			},
		},
		"cname_chain.bin": {
			ID:        0x4242,
			Flags:     dnswire.Flags{QR: true, RA: true},
			Questions: []dnswire.Question{{Name: "alias.foo.com", Type: dnswire.TypeA, Class: dnswire.ClassINET}},
			Answers: []dnswire.RR{
				{Name: "alias.foo.com", Type: dnswire.TypeCNAME, Class: dnswire.ClassINET, TTL: 300,
					Data: &dnswire.CNAMEData{Target: "web.foo.com"}},
				{Name: "web.foo.com", Type: dnswire.TypeCNAME, Class: dnswire.ClassINET, TTL: 300,
					Data: &dnswire.CNAMEData{Target: "www.foo.com"}},
				{Name: "www.foo.com", Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: 300,
					Data: &dnswire.AData{Addr: netip.MustParseAddr("198.51.100.10")}},
			},
		},
		// Referral with glue: heavy name compression across sections.
		"referral_glue.bin": {
			ID:        0x0007,
			Flags:     dnswire.Flags{QR: true},
			Questions: []dnswire.Question{{Name: "www.foo.com", Type: dnswire.TypeA, Class: dnswire.ClassINET}},
			Authority: []dnswire.RR{
				{Name: "foo.com", Type: dnswire.TypeNS, Class: dnswire.ClassINET, TTL: 3600,
					Data: &dnswire.NSData{Host: "ns1.foo.com"}},
				{Name: "foo.com", Type: dnswire.TypeNS, Class: dnswire.ClassINET, TTL: 3600,
					Data: &dnswire.NSData{Host: "ns2.foo.com"}},
			},
			Additional: []dnswire.RR{
				{Name: "ns1.foo.com", Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: 3600,
					Data: &dnswire.AData{Addr: netip.MustParseAddr("192.0.2.1")}},
				{Name: "ns2.foo.com", Type: dnswire.TypeAAAA, Class: dnswire.ClassINET, TTL: 3600,
					Data: &dnswire.AAAAData{Addr: netip.MustParseAddr("2001:db8::53")}},
			},
		},
		// TXT carrying an opaque cookie blob, as the modified-DNS scheme does.
		"txt_cookie.bin": {
			ID:        0xbeef,
			Flags:     dnswire.Flags{QR: true},
			Questions: []dnswire.Question{{Name: "_cookie.foo.com", Type: dnswire.TypeTXT, Class: dnswire.ClassINET}},
			Answers: []dnswire.RR{
				{Name: "_cookie.foo.com", Type: dnswire.TypeTXT, Class: dnswire.ClassINET, TTL: 0,
					Data: &dnswire.TXTData{Strings: [][]byte{
						{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01, 0x02, 0x03},
						[]byte("gen=1"),
					}}},
			},
		},
		"negative_soa.bin": {
			ID:        0x5151,
			Flags:     dnswire.Flags{QR: true, AA: true, RCode: dnswire.RCodeNXDomain},
			Questions: []dnswire.Question{{Name: "nope.foo.com", Type: dnswire.TypeA, Class: dnswire.ClassINET}},
			Authority: []dnswire.RR{
				{Name: "foo.com", Type: dnswire.TypeSOA, Class: dnswire.ClassINET, TTL: 60,
					Data: &dnswire.SOAData{MName: "ns1.foo.com", RName: "admin.foo.com",
						Serial: 1, Refresh: 7200, Retry: 600, Expire: 360000, Minimum: 60}},
			},
		},
		"mx_ptr.bin": {
			ID:        0x0a0a,
			Flags:     dnswire.Flags{QR: true},
			Questions: []dnswire.Question{{Name: "foo.com", Type: dnswire.TypeMX, Class: dnswire.ClassINET}},
			Answers: []dnswire.RR{
				{Name: "foo.com", Type: dnswire.TypeMX, Class: dnswire.ClassINET, TTL: 3600,
					Data: &dnswire.MXData{Pref: 10, Host: "mail.foo.com"}},
				{Name: "10.100.51.198.in-addr.arpa", Type: dnswire.TypePTR, Class: dnswire.ClassINET, TTL: 3600,
					Data: &dnswire.PTRData{Target: "www.foo.com"}},
			},
		},
		// Water-torture flood query: the pseudorandom-subdomain shape
		// AttackRandomSub emits (internal/workload), so mutation starts
		// from a realistic random-QNAME capture.
		"watertorture_qname.bin": dnswire.NewQuery(0x7041, dnswire.MustName("a9f3c2d41b7e.foo.com"),
			dnswire.TypeA),
		// Kaminsky ID-sweep forgery: the exact response AttackKaminsky
		// sweeps at the guard's upstream socket — authoritative answer
		// planting the attacker's address for a name of their choosing.
		"idsweep_response.bin": {
			ID:        0x01ff,
			Flags:     dnswire.Flags{QR: true, AA: true},
			Questions: []dnswire.Question{{Name: "evil.example", Type: dnswire.TypeA, Class: dnswire.ClassINET}},
			Answers: []dnswire.RR{
				{Name: "evil.example", Type: dnswire.TypeA, Class: dnswire.ClassINET, TTL: 300,
					Data: &dnswire.AData{Addr: netip.MustParseAddr("203.0.113.1")}},
			},
		},
		// Unknown RR type round-trips as raw rdata.
		"unknown_type.bin": {
			ID:        0x0101,
			Flags:     dnswire.Flags{QR: true},
			Questions: []dnswire.Question{{Name: "foo.com", Type: dnswire.Type(99), Class: dnswire.ClassINET}},
			Answers: []dnswire.RR{
				{Name: "foo.com", Type: dnswire.Type(99), Class: dnswire.ClassINET, TTL: 30,
					Data: &dnswire.Raw{Data: []byte{1, 2, 3, 4, 5}}},
			},
		},
	}
	for name, m := range seeds {
		b, err := m.Pack()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pack %s: %v\n", name, err)
			os.Exit(1)
		}
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d bytes)\n", name, len(b))
	}
}
