package dnswire

import (
	"errors"
	"fmt"
)

// ErrFrameTooLarge reports a TCP length prefix exceeding the protocol cap.
var ErrFrameTooLarge = errors.New("dnswire: TCP frame exceeds 64 KiB")

// AppendTCPFrame appends the two-byte big-endian length prefix and the
// message bytes to dst, per RFC 1035 §4.2.2.
func AppendTCPFrame(dst, msg []byte) ([]byte, error) {
	if len(msg) > MaxMessageSize {
		return dst, ErrFrameTooLarge
	}
	dst = append(dst, byte(len(msg)>>8), byte(len(msg)))
	return append(dst, msg...), nil
}

// FrameScanner incrementally extracts length-prefixed DNS messages from a TCP
// byte stream. Feed it raw reads with Add and pull complete messages with
// Next.
type FrameScanner struct {
	buf []byte
}

// Add appends stream bytes to the scanner's buffer.
func (s *FrameScanner) Add(b []byte) { s.buf = append(s.buf, b...) }

// Buffered reports how many unconsumed bytes the scanner holds.
func (s *FrameScanner) Buffered() int { return len(s.buf) }

// Next returns the next complete message payload, or ok=false when more
// stream bytes are needed. The returned slice is a copy owned by the caller.
func (s *FrameScanner) Next() (msg []byte, ok bool, err error) {
	if len(s.buf) < 2 {
		return nil, false, nil
	}
	n := int(s.buf[0])<<8 | int(s.buf[1])
	if len(s.buf) < 2+n {
		return nil, false, nil
	}
	msg = append([]byte(nil), s.buf[2:2+n]...)
	s.buf = s.buf[2+n:]
	if len(msg) < 12 {
		return nil, false, fmt.Errorf("%w: frame of %d bytes is shorter than a DNS header", ErrMalformed, len(msg))
	}
	return msg, true, nil
}
