package dnswire

import (
	"errors"
	"strings"
	"testing"
)

func TestParseName(t *testing.T) {
	tests := []struct {
		in      string
		want    Name
		wantErr error
	}{
		{"", Root, nil},
		{".", Root, nil},
		{"com", "com", nil},
		{"com.", "com", nil},
		{"WWW.Foo.COM", "www.foo.com", nil},
		{"a.b.c.d.e", "a.b.c.d.e", nil},
		{strings.Repeat("a", 63) + ".com", Name(strings.Repeat("a", 63) + ".com"), nil},
		{strings.Repeat("a", 64) + ".com", "", ErrLabelTooLong},
		{"foo..com", "", ErrEmptyLabel},
		{".foo.com", "", ErrEmptyLabel},
	}
	for _, tt := range tests {
		got, err := ParseName(tt.in)
		if tt.wantErr != nil {
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("ParseName(%q) err = %v, want %v", tt.in, err, tt.wantErr)
			}
			continue
		}
		if err != nil || got != tt.want {
			t.Errorf("ParseName(%q) = %q, %v; want %q", tt.in, got, err, tt.want)
		}
	}
}

func TestParseNameTotalLength(t *testing.T) {
	// 4 labels of 63 bytes = 4*64+1 = 257 wire bytes > 255.
	long := strings.Repeat(strings.Repeat("a", 63)+".", 4)
	if _, err := ParseName(long); !errors.Is(err, ErrNameTooLong) {
		t.Fatalf("err = %v, want ErrNameTooLong", err)
	}
}

func TestNameAccessors(t *testing.T) {
	n := MustName("www.foo.com")
	if got := n.FirstLabel(); got != "www" {
		t.Errorf("FirstLabel = %q", got)
	}
	if got := n.Parent(); got != "foo.com" {
		t.Errorf("Parent = %q", got)
	}
	if got := n.NumLabels(); got != 3 {
		t.Errorf("NumLabels = %d", got)
	}
	if !n.IsSubdomainOf(MustName("foo.com")) {
		t.Error("www.foo.com should be under foo.com")
	}
	if !n.IsSubdomainOf(Root) {
		t.Error("everything is under the root")
	}
	if n.IsSubdomainOf(MustName("oo.com")) {
		t.Error("www.foo.com is not under oo.com")
	}
	if MustName("com").Parent() != Root {
		t.Error("parent of com should be root")
	}
	if Root.Parent() != Root {
		t.Error("parent of root should be root")
	}
	if Root.FirstLabel() != "" {
		t.Error("root has no first label")
	}
}

func TestChildOf(t *testing.T) {
	tests := []struct {
		name, zone string
		want       string
		ok         bool
	}{
		{"www.foo.com", ".", "com", true},
		{"www.foo.com", "com", "foo.com", true},
		{"www.foo.com", "foo.com", "www.foo.com", true},
		{"www.foo.com", "www.foo.com", "", false},
		{"www.foo.com", "bar.org", "", false},
		{"com", ".", "com", true},
	}
	for _, tt := range tests {
		got, ok := MustName(tt.name).ChildOf(MustName(tt.zone))
		if ok != tt.ok || (ok && got != MustName(tt.want)) {
			t.Errorf("ChildOf(%q, %q) = %q, %v; want %q, %v", tt.name, tt.zone, got, ok, tt.want, tt.ok)
		}
	}
}

func TestPrependLabel(t *testing.T) {
	n, err := MustName("foo.com").PrependLabel("prabcd1234")
	if err != nil || n != "prabcd1234.foo.com" {
		t.Fatalf("PrependLabel = %q, %v", n, err)
	}
	if _, err := MustName("com").PrependLabel(strings.Repeat("x", 64)); !errors.Is(err, ErrLabelTooLong) {
		t.Fatalf("oversized label err = %v", err)
	}
	r, err := Root.PrependLabel("com")
	if err != nil || r != "com" {
		t.Fatalf("PrependLabel(root) = %q, %v", r, err)
	}
}

func TestWireLen(t *testing.T) {
	if got := Root.WireLen(); got != 1 {
		t.Errorf("root WireLen = %d, want 1", got)
	}
	if got := MustName("foo.com").WireLen(); got != 9 { // 3 foo 3 com 0
		t.Errorf("foo.com WireLen = %d, want 9", got)
	}
}
