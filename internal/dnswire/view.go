package dnswire

// Zero-copy message views. Unpack materializes a Message — name strings,
// question and RR slices — which is exactly the per-packet garbage the
// guard's verified-source fast path cannot afford. A View parses the header
// and first question of a datagram in place over borrowed bytes: no copy,
// no allocation, no escape.
//
// View invariants (the no-escape rule):
//
//   - A View borrows its buffer — typically a netapi batch-slab slot that
//     the I/O loop overwrites on the next read. Neither the View nor any
//     slice it returns may be retained past the packet's handling; anything
//     that must outlive the packet is copied into caller-owned storage.
//   - ParseView accepts a strict subset of what Unpack accepts: an
//     uncompressed question name whose labels are plain ASCII with no '.'
//     bytes. On any accepted input, ID/flags/counts/question agree with
//     Unpack's (a View's raw label bytes may differ from the canonical
//     Name only by ASCII case, which byte-wise lowercasing folds — the
//     ASCII restriction is what makes that equal to Unpack's Unicode
//     lowercasing). Everything else — compression, exotic label bytes,
//     truncation — reports ok=false and the caller falls back to Unpack,
//     which either materializes the message or classifies it malformed.
//   - A View covers the header and first question only. End reports the
//     offset past the question; callers that need "nothing but a question"
//     (the guard's pass-through shape check) compare End to the datagram
//     length and the three RR counts to zero rather than trusting the View
//     to have seen the whole message.

// headerLen is the fixed DNS message header size.
const headerLen = 12

// View is a zero-copy read of a DNS message's header and first question
// over a borrowed buffer. Obtain with ParseView; the zero View is invalid.
type View struct {
	buf     []byte
	nameLen int // first question's name length on the wire, terminator included
	end     int // offset just past the first question
}

// ParseView parses the header and first question of b in place. ok is false
// when b cannot be viewed zero-copy — too short, QDCOUNT zero, a compressed
// or non-ASCII or dotted-label question name, or a name past the length
// limits. ok=false says nothing about validity: the caller decides between
// Unpack and a malformed verdict.
func ParseView(b []byte) (View, bool) {
	if len(b) < headerLen || len(b) > MaxMessageSize {
		return View{}, false
	}
	if int(b[4])<<8|int(b[5]) == 0 { // QDCOUNT
		return View{}, false
	}
	off := headerLen
	total := 0
	for {
		if off >= len(b) {
			return View{}, false
		}
		c := int(b[off])
		if c == 0 {
			off++
			break
		}
		if c >= 64 {
			// Compression pointer or reserved label type: not viewable.
			return View{}, false
		}
		if off+1+c > len(b) {
			return View{}, false
		}
		total += c + 1
		if total+1 > MaxNameWireLen {
			return View{}, false
		}
		for _, x := range b[off+1 : off+1+c] {
			if x >= 0x80 || x == '.' {
				return View{}, false
			}
		}
		off += 1 + c
	}
	if off+4 > len(b) {
		return View{}, false
	}
	return View{buf: b, nameLen: off - headerLen, end: off + 4}, true
}

// ID returns the message ID.
func (v View) ID() uint16 { return uint16(v.buf[0])<<8 | uint16(v.buf[1]) }

// RawFlags returns the flags word exactly as it appears on the wire.
func (v View) RawFlags() uint16 { return uint16(v.buf[2])<<8 | uint16(v.buf[3]) }

// Flags decodes the flags word.
func (v View) Flags() Flags { return unpackFlags(v.RawFlags()) }

// QR reports the response bit.
func (v View) QR() bool { return v.buf[2]&0x80 != 0 }

// QDCount returns the question count.
func (v View) QDCount() uint16 { return uint16(v.buf[4])<<8 | uint16(v.buf[5]) }

// ANCount returns the answer count.
func (v View) ANCount() uint16 { return uint16(v.buf[6])<<8 | uint16(v.buf[7]) }

// NSCount returns the authority count.
func (v View) NSCount() uint16 { return uint16(v.buf[8])<<8 | uint16(v.buf[9]) }

// ARCount returns the additional count.
func (v View) ARCount() uint16 { return uint16(v.buf[10])<<8 | uint16(v.buf[11]) }

// QNameWire returns the first question's name as raw wire bytes (labels
// plus terminator), borrowed from the underlying buffer.
func (v View) QNameWire() []byte { return v.buf[headerLen : headerLen+v.nameLen] }

// FirstLabel returns the first label's bytes (no length octet), borrowed.
// Empty for the root name.
func (v View) FirstLabel() []byte {
	c := int(v.buf[headerLen])
	return v.buf[headerLen+1 : headerLen+1+c]
}

// QType returns the first question's type.
func (v View) QType() Type {
	o := headerLen + v.nameLen
	return Type(uint16(v.buf[o])<<8 | uint16(v.buf[o+1]))
}

// QClass returns the first question's class.
func (v View) QClass() Class {
	o := headerLen + v.nameLen + 2
	return Class(uint16(v.buf[o])<<8 | uint16(v.buf[o+1]))
}

// QuestionWire returns the first question's full span (name, type, class)
// as wire bytes, borrowed from the underlying buffer.
func (v View) QuestionWire() []byte { return v.buf[headerLen:v.end] }

// End returns the offset just past the first question. A query that is
// exactly one question — the guard's fast-path shape — has End equal to the
// datagram length and zero ANCount/NSCount/ARCount.
func (v View) End() int { return v.end }

// Question materializes the first question as Unpack would decode it —
// canonical lowercase Name. It allocates; the fast path never calls it.
func (v View) Question() (Question, error) {
	q, _, err := UnpackQuestion(v.QuestionWire())
	return q, err
}

// UnpackQuestion decodes one question record from the start of b — the flat
// span QuestionWire returns, or one a caller copied out of a View — and
// reports how many bytes of b it consumed.
func UnpackQuestion(b []byte) (Question, int, error) {
	p := &parser{buf: b}
	q, err := p.question()
	if err != nil {
		return Question{}, 0, err
	}
	return q, p.off, nil
}
