package dnswire

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// Decoding errors. All decode failures wrap ErrMalformed so hostile input can
// be classified with a single errors.Is check.
var (
	ErrMalformed      = errors.New("dnswire: malformed message")
	ErrPointerLoop    = errors.New("dnswire: compression pointer loop")
	ErrForwardPointer = errors.New("dnswire: forward compression pointer")
)

type parser struct {
	buf []byte
	off int
}

func (p *parser) remaining() int { return len(p.buf) - p.off }

func (p *parser) u8() (uint8, error) {
	if p.remaining() < 1 {
		return 0, fmt.Errorf("%w: truncated u8", ErrMalformed)
	}
	v := p.buf[p.off]
	p.off++
	return v, nil
}

func (p *parser) u16() (uint16, error) {
	if p.remaining() < 2 {
		return 0, fmt.Errorf("%w: truncated u16", ErrMalformed)
	}
	v := uint16(p.buf[p.off])<<8 | uint16(p.buf[p.off+1])
	p.off += 2
	return v, nil
}

func (p *parser) u32() (uint32, error) {
	if p.remaining() < 4 {
		return 0, fmt.Errorf("%w: truncated u32", ErrMalformed)
	}
	v := uint32(p.buf[p.off])<<24 | uint32(p.buf[p.off+1])<<16 |
		uint32(p.buf[p.off+2])<<8 | uint32(p.buf[p.off+3])
	p.off += 4
	return v, nil
}

func (p *parser) take(n int) ([]byte, error) {
	if n < 0 || p.remaining() < n {
		return nil, fmt.Errorf("%w: truncated field (%d bytes wanted)", ErrMalformed, n)
	}
	b := p.buf[p.off : p.off+n]
	p.off += n
	return b, nil
}

// name decodes a possibly-compressed domain name starting at p.off.
// Compression pointers must point strictly backward (as all real encoders
// emit) which also guarantees termination.
func (p *parser) name() (Name, error) {
	var labels []string
	total := 0
	off := p.off
	jumped := false
	minPtr := p.off // every pointer must go strictly before this
	for {
		if off >= len(p.buf) {
			return "", fmt.Errorf("%w: name runs past end", ErrMalformed)
		}
		c := int(p.buf[off])
		switch {
		case c == 0:
			if !jumped {
				p.off = off + 1
			}
			if len(labels) == 0 {
				return Root, nil
			}
			return canonicalName(labels)
		case c < 64: // ordinary label
			if off+1+c > len(p.buf) {
				return "", fmt.Errorf("%w: label runs past end", ErrMalformed)
			}
			total += c + 1
			if total+1 > MaxNameWireLen {
				return "", ErrNameTooLong
			}
			labels = append(labels, string(p.buf[off+1:off+1+c]))
			off += 1 + c
		case c >= 0xC0: // compression pointer
			if off+1 >= len(p.buf) {
				return "", fmt.Errorf("%w: truncated pointer", ErrMalformed)
			}
			ptr := (c&0x3F)<<8 | int(p.buf[off+1])
			if !jumped {
				p.off = off + 2
				jumped = true
			}
			if ptr >= minPtr {
				if ptr >= off {
					return "", ErrForwardPointer
				}
				return "", ErrPointerLoop
			}
			minPtr = ptr
			off = ptr
		default:
			return "", fmt.Errorf("%w: reserved label type 0x%02x", ErrMalformed, c)
		}
	}
}

// canonicalName converts decoded wire labels into a canonical Name. Name's
// invariant is "lowercase dotted string", so a wire label containing a '.'
// byte has no faithful representation — re-encoding it would split at the dot
// and change the name. Such labels (legal in raw DNS, never emitted for
// hostnames) are rejected as malformed, as are labels that blow past the
// length limits once lowercased (lowercasing invalid UTF-8 can expand bytes).
// Funneling through ParseName guarantees every Name the decoder hands out
// survives a Pack/Unpack round trip unchanged.
func canonicalName(labels []string) (Name, error) {
	for _, l := range labels {
		if strings.Contains(l, ".") {
			return "", fmt.Errorf("%w: label contains '.'", ErrMalformed)
		}
	}
	n, err := ParseName(strings.Join(labels, "."))
	if err != nil {
		return "", fmt.Errorf("%w: non-canonical name: %v", ErrMalformed, err)
	}
	return n, nil
}

func (p *parser) question() (Question, error) {
	n, err := p.name()
	if err != nil {
		return Question{}, err
	}
	t, err := p.u16()
	if err != nil {
		return Question{}, err
	}
	c, err := p.u16()
	if err != nil {
		return Question{}, err
	}
	return Question{Name: n, Type: Type(t), Class: Class(c)}, nil
}

func (p *parser) rr() (RR, error) {
	n, err := p.name()
	if err != nil {
		return RR{}, err
	}
	t, err := p.u16()
	if err != nil {
		return RR{}, err
	}
	class, err := p.u16()
	if err != nil {
		return RR{}, err
	}
	ttl, err := p.u32()
	if err != nil {
		return RR{}, err
	}
	rdlen, err := p.u16()
	if err != nil {
		return RR{}, err
	}
	if p.remaining() < int(rdlen) {
		return RR{}, fmt.Errorf("%w: rdata runs past end", ErrMalformed)
	}
	end := p.off + int(rdlen)
	data, err := p.rdata(Type(t), int(rdlen))
	if err != nil {
		return RR{}, err
	}
	if p.off != end {
		return RR{}, fmt.Errorf("%w: rdata length mismatch for %v", ErrMalformed, Type(t))
	}
	return RR{Name: n, Type: Type(t), Class: Class(class), TTL: ttl, Data: data}, nil
}

func (p *parser) rdata(t Type, rdlen int) (RData, error) {
	switch t {
	case TypeA:
		b, err := p.take(4)
		if err != nil {
			return nil, err
		}
		return &AData{Addr: netip.AddrFrom4([4]byte(b))}, nil
	case TypeAAAA:
		b, err := p.take(16)
		if err != nil {
			return nil, err
		}
		return &AAAAData{Addr: netip.AddrFrom16([16]byte(b))}, nil
	case TypeNS:
		n, err := p.name()
		if err != nil {
			return nil, err
		}
		return &NSData{Host: n}, nil
	case TypeCNAME:
		n, err := p.name()
		if err != nil {
			return nil, err
		}
		return &CNAMEData{Target: n}, nil
	case TypePTR:
		n, err := p.name()
		if err != nil {
			return nil, err
		}
		return &PTRData{Target: n}, nil
	case TypeMX:
		pref, err := p.u16()
		if err != nil {
			return nil, err
		}
		n, err := p.name()
		if err != nil {
			return nil, err
		}
		return &MXData{Pref: pref, Host: n}, nil
	case TypeSOA:
		var d SOAData
		var err error
		if d.MName, err = p.name(); err != nil {
			return nil, err
		}
		if d.RName, err = p.name(); err != nil {
			return nil, err
		}
		if d.Serial, err = p.u32(); err != nil {
			return nil, err
		}
		if d.Refresh, err = p.u32(); err != nil {
			return nil, err
		}
		if d.Retry, err = p.u32(); err != nil {
			return nil, err
		}
		if d.Expire, err = p.u32(); err != nil {
			return nil, err
		}
		if d.Minimum, err = p.u32(); err != nil {
			return nil, err
		}
		return &d, nil
	case TypeTXT:
		end := p.off + rdlen
		var d TXTData
		for p.off < end {
			l, err := p.u8()
			if err != nil {
				return nil, err
			}
			if p.off+int(l) > end {
				return nil, fmt.Errorf("%w: TXT string runs past rdata", ErrMalformed)
			}
			s, err := p.take(int(l))
			if err != nil {
				return nil, err
			}
			cp := make([]byte, len(s))
			copy(cp, s)
			d.Strings = append(d.Strings, cp)
		}
		return &d, nil
	default:
		b, err := p.take(rdlen)
		if err != nil {
			return nil, err
		}
		return &Raw{Data: append([]byte(nil), b...)}, nil
	}
}

// Unpack decodes a full DNS message. It is safe on hostile input: all errors
// wrap ErrMalformed (or the specific pointer errors) and no input can cause
// unbounded work.
func Unpack(b []byte) (*Message, error) {
	if len(b) > MaxMessageSize {
		return nil, ErrMessageTooLarge
	}
	p := &parser{buf: b}
	m := &Message{}
	var err error
	if m.ID, err = p.u16(); err != nil {
		return nil, err
	}
	fl, err := p.u16()
	if err != nil {
		return nil, err
	}
	m.Flags = unpackFlags(fl)
	counts := make([]uint16, 4)
	for i := range counts {
		if counts[i], err = p.u16(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < int(counts[0]); i++ {
		q, err := p.question()
		if err != nil {
			return nil, err
		}
		m.Questions = append(m.Questions, q)
	}
	sections := []*[]RR{&m.Answers, &m.Authority, &m.Additional}
	for si, sec := range sections {
		for i := 0; i < int(counts[si+1]); i++ {
			r, err := p.rr()
			if err != nil {
				return nil, err
			}
			*sec = append(*sec, r)
		}
	}
	if p.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, p.remaining())
	}
	return m, nil
}
