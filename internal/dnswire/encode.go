package dnswire

import (
	"errors"
	"fmt"
	"net/netip"
)

// Encoding errors.
var (
	ErrMessageTooLarge = errors.New("dnswire: message exceeds 64 KiB")
	ErrBadAddress      = errors.New("dnswire: address family does not match record type")
)

type builder struct {
	buf  []byte
	ptrs map[Name]int
	err  error
}

func (b *builder) u8(v uint8)   { b.buf = append(b.buf, v) }
func (b *builder) u16(v uint16) { b.buf = append(b.buf, byte(v>>8), byte(v)) }
func (b *builder) u32(v uint32) {
	b.buf = append(b.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
func (b *builder) bytes(p []byte) { b.buf = append(b.buf, p...) }

func (b *builder) addr4(a netip.Addr) {
	if !a.Is4() && !a.Is4In6() {
		b.fail(fmt.Errorf("%w: %v is not IPv4", ErrBadAddress, a))
		return
	}
	v4 := a.As4()
	b.bytes(v4[:])
}

func (b *builder) addr16(a netip.Addr) {
	if !a.Is6() || a.Is4In6() {
		b.fail(fmt.Errorf("%w: %v is not IPv6", ErrBadAddress, a))
		return
	}
	v6 := a.As16()
	b.bytes(v6[:])
}

func (b *builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// name appends n in wire format, using compression pointers to earlier
// occurrences when compress is true.
func (b *builder) name(n Name, compress bool) {
	for !n.IsRoot() {
		if compress {
			if off, ok := b.ptrs[n]; ok && off <= 0x3FFF {
				b.u16(uint16(off) | 0xC000)
				return
			}
		}
		if len(b.buf) <= 0x3FFF {
			b.ptrs[n] = len(b.buf)
		}
		label := n.FirstLabel()
		b.u8(uint8(len(label)))
		b.bytes([]byte(label))
		n = n.Parent()
	}
	b.u8(0)
}

func (b *builder) rr(r RR) {
	b.name(r.Name, true)
	b.u16(uint16(r.Type))
	b.u16(uint16(r.Class))
	b.u32(r.TTL)
	lenAt := len(b.buf)
	b.u16(0) // placeholder
	r.Data.encode(b)
	rdlen := len(b.buf) - lenAt - 2
	b.buf[lenAt] = byte(rdlen >> 8)
	b.buf[lenAt+1] = byte(rdlen)
}

// Pack encodes m with no size restriction beyond the 64 KiB protocol cap;
// use it for TCP transport and internal processing.
func (m *Message) Pack() ([]byte, error) {
	b := &builder{buf: make([]byte, 0, 256), ptrs: make(map[Name]int)}
	b.u16(m.ID)
	b.u16(m.Flags.pack())
	b.u16(uint16(len(m.Questions)))
	b.u16(uint16(len(m.Answers)))
	b.u16(uint16(len(m.Authority)))
	b.u16(uint16(len(m.Additional)))
	for _, q := range m.Questions {
		b.name(q.Name, true)
		b.u16(uint16(q.Type))
		b.u16(uint16(q.Class))
	}
	for _, r := range m.Answers {
		b.rr(r)
	}
	for _, r := range m.Authority {
		b.rr(r)
	}
	for _, r := range m.Additional {
		b.rr(r)
	}
	if b.err != nil {
		return nil, b.err
	}
	if len(b.buf) > MaxMessageSize {
		return nil, ErrMessageTooLarge
	}
	return b.buf, nil
}

// PackUDP encodes m for UDP transport with the given size limit (use
// MaxUDPSize for classic DNS). If the message does not fit, records are
// dropped section by section from the back and the TC flag is set, matching
// server truncation behaviour.
func (m *Message) PackUDP(limit int) ([]byte, error) {
	if limit <= 0 || limit > MaxMessageSize {
		limit = MaxUDPSize
	}
	b, err := m.Pack()
	if err != nil {
		return nil, err
	}
	if len(b) <= limit {
		return b, nil
	}
	trunc := *m
	trunc.Answers = append([]RR(nil), m.Answers...)
	trunc.Authority = append([]RR(nil), m.Authority...)
	trunc.Additional = append([]RR(nil), m.Additional...)
	trunc.Flags.TC = true
	for len(b) > limit {
		switch {
		case len(trunc.Additional) > 0:
			trunc.Additional = trunc.Additional[:len(trunc.Additional)-1]
		case len(trunc.Authority) > 0:
			trunc.Authority = trunc.Authority[:len(trunc.Authority)-1]
		case len(trunc.Answers) > 0:
			trunc.Answers = trunc.Answers[:len(trunc.Answers)-1]
		default:
			return nil, fmt.Errorf("dnswire: question alone exceeds %d bytes: %w", limit, ErrMessageTooLarge)
		}
		if b, err = trunc.Pack(); err != nil {
			return nil, err
		}
	}
	return b, nil
}
