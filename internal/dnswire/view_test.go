package dnswire

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
)

// TestViewAgreesWithUnpack checks the accept-subset contract: every message
// ParseView accepts with the fast-path shape (one question, nothing else,
// End at the datagram edge) must Unpack to the same ID, flags, and
// question.
func TestViewAgreesWithUnpack(t *testing.T) {
	cases := []*Message{
		NewQuery(0x1234, MustName("www.foo.com"), TypeA),
		NewQuery(0, MustName("pr0a1b2c3dwww.foo.com"), TypeNS),
		NewQuery(0xFFFF, Root, TypeANY),
		NewQuery(7, MustName("a.b.c.d.e.foo.com"), TypeTXT),
	}
	for _, m := range cases {
		wire, err := m.Pack()
		if err != nil {
			t.Fatal(err)
		}
		v, ok := ParseView(wire)
		if !ok {
			t.Fatalf("ParseView rejected %v", m.Questions[0])
		}
		ref, err := Unpack(wire)
		if err != nil {
			t.Fatal(err)
		}
		if v.ID() != ref.ID || v.Flags() != ref.Flags {
			t.Errorf("view header %d/%+v disagrees with Unpack %d/%+v", v.ID(), v.Flags(), ref.ID, ref.Flags)
		}
		if v.QDCount() != 1 || v.ANCount() != 0 || v.NSCount() != 0 || v.ARCount() != 0 {
			t.Errorf("view counts %d/%d/%d/%d, want 1/0/0/0", v.QDCount(), v.ANCount(), v.NSCount(), v.ARCount())
		}
		if v.End() != len(wire) {
			t.Errorf("End() = %d, want %d", v.End(), len(wire))
		}
		q, err := v.Question()
		if err != nil || q != ref.Questions[0] {
			t.Errorf("view question %+v (%v) disagrees with Unpack %+v", q, err, ref.Questions[0])
		}
		if v.QType() != ref.Questions[0].Type || v.QClass() != ref.Questions[0].Class {
			t.Errorf("view type/class %v/%v disagree with %+v", v.QType(), v.QClass(), ref.Questions[0])
		}
	}
}

// TestViewCasePreserved: the view hands out raw wire bytes; ASCII-lowercasing
// them must equal the canonical Name that Unpack produces.
func TestViewCasePreserved(t *testing.T) {
	wire, err := NewQuery(9, MustName("www.foo.com"), TypeA).Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Uppercase the first qname label in place (offset 12 is the length 3,
	// 13..15 the label "www").
	copy(wire[13:16], "WWW")
	v, ok := ParseView(wire)
	if !ok {
		t.Fatal("ParseView rejected mixed-case name")
	}
	if got := string(v.FirstLabel()); got != "WWW" {
		t.Errorf("FirstLabel = %q, want raw wire bytes WWW", got)
	}
	if got := strings.ToLower(string(v.FirstLabel())); got != "www" {
		t.Errorf("folded first label = %q", got)
	}
	ref, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Questions[0].Name != MustName("www.foo.com") {
		t.Errorf("Unpack canonicalized to %v", ref.Questions[0].Name)
	}
}

// TestViewRejects pins the not-viewable cases: each must fall back to the
// materializing path rather than mis-parse.
func TestViewRejects(t *testing.T) {
	base, err := NewQuery(1, MustName("www.foo.com"), TypeA).Pack()
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), base...)
		return f(b)
	}
	cases := map[string][]byte{
		"short header":  base[:11],
		"qdcount zero":  mutate(func(b []byte) []byte { b[4], b[5] = 0, 0; return b }),
		"truncated name": base[:14],
		"truncated type": base[:len(base)-3],
		"compressed name": mutate(func(b []byte) []byte {
			// Replace the qname with a pointer to itself-ish; compression
			// is never viewable regardless of target.
			return append(b[:12], 0xC0, 0x0C, 0, 1, 0, 1)
		}),
		"non-ascii label": mutate(func(b []byte) []byte { b[13] = 0x80; return b }),
		"dotted label":    mutate(func(b []byte) []byte { b[13] = '.'; return b }),
	}
	for name, wire := range cases {
		if _, ok := ParseView(wire); ok {
			t.Errorf("%s: ParseView accepted", name)
		}
	}
	// A response with RRs is viewable (header + first question parse fine):
	// the caller's count checks are what gate the fast path.
	resp := NewQuery(2, MustName("www.foo.com"), TypeA).Response()
	resp.Answers = []RR{NewRR(MustName("www.foo.com"), 60, &AData{Addr: netip.MustParseAddr("10.0.0.1")})}
	wire, err := resp.Pack()
	if err != nil {
		t.Fatal(err)
	}
	v, ok := ParseView(wire)
	if !ok {
		t.Fatal("ParseView rejected a response with answers")
	}
	if v.ANCount() != 1 || v.End() >= len(wire) {
		t.Errorf("ANCount=%d End=%d len=%d", v.ANCount(), v.End(), len(wire))
	}
}

// TestViewZeroAlloc pins the whole view path — parse plus every accessor —
// at zero allocations.
func TestViewZeroAlloc(t *testing.T) {
	wire, err := NewQuery(3, MustName("pr00aabbccwww.foo.com"), TypeNS).Pack()
	if err != nil {
		t.Fatal(err)
	}
	var sink uint64
	if n := testing.AllocsPerRun(200, func() {
		v, ok := ParseView(wire)
		if !ok {
			t.Fatal("rejected")
		}
		sink += uint64(v.ID()) + uint64(v.RawFlags()) + uint64(v.QDCount()) +
			uint64(v.QType()) + uint64(v.QClass()) + uint64(v.End()) +
			uint64(len(v.FirstLabel())) + uint64(len(v.QNameWire())) + uint64(len(v.QuestionWire()))
	}); n != 0 {
		t.Errorf("ParseView+accessors allocate %.1f/op, want 0", n)
	}
	_ = sink
}

// TestUnpackQuestion round-trips a question span through the flat decoder.
func TestUnpackQuestion(t *testing.T) {
	m := NewQuery(4, MustName("sub.example.org"), TypeTXT)
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	v, ok := ParseView(wire)
	if !ok {
		t.Fatal("rejected")
	}
	span := append([]byte(nil), v.QuestionWire()...)
	span = append(span, 0xDE, 0xAD) // trailing bytes must be left alone
	q, n, err := UnpackQuestion(span)
	if err != nil {
		t.Fatal(err)
	}
	if q != m.Questions[0] {
		t.Errorf("UnpackQuestion = %+v, want %+v", q, m.Questions[0])
	}
	if n != len(span)-2 || !bytes.Equal(span[n:], []byte{0xDE, 0xAD}) {
		t.Errorf("consumed %d of %d bytes", n, len(span))
	}
	if _, _, err := UnpackQuestion(span[:3]); err == nil {
		t.Error("truncated question did not error")
	}
}

// FuzzViewAgreement cross-checks ParseView against Unpack on arbitrary
// bytes: whenever the view accepts a single-question message whose End is
// the buffer edge, Unpack must accept it too and agree on every field the
// view exposes.
func FuzzViewAgreement(f *testing.F) {
	seed, _ := NewQuery(0x55AA, MustName("www.foo.com"), TypeA).Pack()
	f.Add(seed)
	f.Add([]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 1, 'a', 0, 0, 1, 0, 1})
	f.Fuzz(func(t *testing.T, b []byte) {
		v, ok := ParseView(b)
		if !ok {
			return
		}
		if v.QDCount() != 1 || v.ANCount() != 0 || v.NSCount() != 0 || v.ARCount() != 0 || v.End() != len(b) {
			return
		}
		m, err := Unpack(b)
		if err != nil {
			t.Fatalf("view accepted fast-path shape but Unpack rejects: %v", err)
		}
		if v.ID() != m.ID || v.Flags() != m.Flags {
			t.Fatalf("header disagreement: view %d/%+v unpack %d/%+v", v.ID(), v.Flags(), m.ID, m.Flags)
		}
		q, err := v.Question()
		if err != nil || q != m.Questions[0] {
			t.Fatalf("question disagreement: view %+v (%v) unpack %+v", q, err, m.Questions[0])
		}
	})
}
