// Package cookie implements the DNS Guard cookie design from §III-E of the
// paper: for a request with source address src, the cookie is
//
//	c = MAC(key76, src_ip)
//
// where key76 is a 76-byte secret held only by the guard and MAC is a
// pluggable keyed hash (MACScheme). The default — and the paper's — scheme
// is MD5 over key76 ‖ src_ip (76 + 4 = 80 bytes, MD5's minimum padded input
// block in the paper's accounting); a SipHash-2-4 scheme is available for
// deployments that want the verify cost below the per-packet syscall floor.
// The 16-byte value c is used three ways:
//
//   - the full 16 bytes travel in a TXT record for the modified-DNS scheme;
//   - the first 4 bytes, hex-encoded behind a short prefix, form the label
//     embedded in fabricated NS names ("pr" + 8 hex chars, e.g. pra1b2c3d4);
//   - the first 4 bytes modulo the guard subnet's host range select the
//     fabricated A-record address (COOKIE2) for non-referral answers.
//
// Key rotation uses the cookie's first bit as a generation indicator: the
// guard overwrites bit 0 with its current generation parity and accepts
// cookies from the current and previous generation, so each verification
// still costs exactly one MAC (§III-E).
//
// Keys live in an epoch'd keyring (current + previous epoch). The live ring
// — epoch, both key slots, and the MAC scheme — is one immutable value
// behind an atomic pointer: readers (Mint/Verify and every codec) take zero
// locks, writers (Rotate/Adopt) build a new ring, persist it, and publish
// with a single store. Verification tries the current epoch and then the
// previous one — the parity bit proves at most one of the two can match, so
// the cost stays one MAC — and every cookie comparison is constant-time
// (crypto/subtle), closing the byte-wise early-exit timing side channel.
// The keyring can be persisted to a state file (see keystate.go) so a guard
// restart does not silently invalidate every cookie the LRS population has
// cached.
//
// Construction goes through Open (see open.go); the historical constructors
// remain as deprecated wrappers.
package cookie

import (
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// KeySize is the guard's secret key length in bytes.
const KeySize = 76

// Size is the cookie length in bytes.
const Size = 16

// DefaultNSPrefix is the label prefix that distinguishes cookie-bearing
// fabricated NS names from ordinary names ("PR" in the paper's example).
const DefaultNSPrefix = "pr"

// hexDigits in the NS-name encoding (4 bytes of cookie → 8 hex chars).
const nsHexLen = 8

// Cookie is the 16-byte spoof-detection credential.
type Cookie [Size]byte

// ringState is one immutable generation of the keyring. Every read path
// loads the whole ring with a single atomic pointer load; writers never
// mutate a published ring.
type ringState struct {
	epoch uint64           // current key epoch; epoch-1 is still accepted
	keys  [2][KeySize]byte // keys[epoch&1] is the key for that epoch parity
	mac   MACScheme
}

// zeroRing backs zero-value Authenticators and un-Reset BatchVerifiers: the
// all-zero keyring under the default scheme, which no constructor ever
// publishes, so nothing real verifies against it.
var zeroRing = &ringState{mac: MD5}

// compute mints the cookie for src under epoch e of the ring: the scheme's
// MAC with the first bit overwritten by the epoch parity (§III-E). The
// built-in schemes are dispatched concretely so the cookie never escapes to
// the heap — the hot path runs allocation-free.
func (r *ringState) compute(e uint64, src netip.Addr) Cookie {
	var c Cookie
	key := &r.keys[e&1]
	switch r.mac.(type) {
	case md5Scheme:
		md5MAC(key, src, &c)
	case sipScheme:
		sipMAC(key, src, &c)
	default:
		var cc Cookie
		r.mac.MAC(key, src, &cc)
		c = cc
	}
	c[0] = c[0]&0x7F | uint8(e&1)<<7
	return c
}

// state renders the ring in its serializable form.
func (r *ringState) state() KeyState {
	return KeyState{Epoch: r.epoch, Keys: r.keys, Scheme: schemeTag(r.mac)}
}

// Authenticator computes and verifies cookies for one guard. It holds an
// epoch'd keyring — the current and previous epoch's keys — so rotation (or
// a restart that restores the ring from a state file) never invalidates live
// cookies within one TTL window. All methods are safe for concurrent use by
// the guard's shard workers and the rotation proc; the read paths are
// lock-free (one atomic pointer load per call, or per batch through
// BatchVerifier).
type Authenticator struct {
	ring   atomic.Pointer[ringState]
	mu     sync.Mutex // serializes writers and guards the binding fields
	bound  string     // state file auto-written on Rotate ("" = none)
	source string     // state file re-read on Reload ("" = none)
	follow bool       // read handle: Rotate refuses, the owner rotates
}

// NewAuthenticator creates an authenticator with a fresh random key.
//
// Deprecated: use Open(Options{}).
func NewAuthenticator() (*Authenticator, error) {
	return Open(Options{})
}

// NewAuthenticatorWithKey creates an authenticator with a fixed key, for
// tests and deterministic simulations.
//
// Deprecated: use Open(Options{Key: &key}).
func NewAuthenticatorWithKey(key [KeySize]byte) *Authenticator {
	a, err := Open(Options{Key: &key})
	if err != nil {
		// Unreachable: Open with a caller-supplied key has no failure path.
		panic(err)
	}
	return a
}

// snapshot returns the live ring (one atomic load, no locks).
func (a *Authenticator) snapshot() *ringState {
	if r := a.ring.Load(); r != nil {
		return r
	}
	return zeroRing
}

// MAC returns the authenticator's cookie MAC scheme.
func (a *Authenticator) MAC() MACScheme { return a.snapshot().mac }

// Generation returns the current key epoch truncated to its historical
// uint8 form (the parity bit is what the wire format carries).
func (a *Authenticator) Generation() uint8 { return uint8(a.Epoch()) }

// Epoch returns the current key epoch. Epochs only grow — across rotations
// and, when the keyring is persisted, across restarts.
func (a *Authenticator) Epoch() uint64 { return a.snapshot().epoch }

// Rotate installs a new random key as the next epoch. Cookies minted by the
// previous epoch remain verifiable until the following rotation,
// implementing the paper's week-over-week schedule. When the authenticator
// is bound to a state file (BindStateFile) the new ring is persisted before
// it is published; a persistence failure leaves the live ring untouched so
// the disk ring never lags the live one.
func (a *Authenticator) Rotate() error {
	var key [KeySize]byte
	if _, err := rand.Read(key[:]); err != nil {
		return fmt.Errorf("cookie: rotating key: %w", err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.follow {
		return ErrFollowHandle
	}
	cur := a.snapshot()
	next := &ringState{epoch: cur.epoch + 1, keys: cur.keys, mac: cur.mac}
	next.keys[next.epoch&1] = key
	if a.bound != "" {
		if err := writeKeyState(a.bound, next.state()); err != nil {
			return fmt.Errorf("cookie: persisting rotation: %w", err)
		}
	}
	a.ring.Store(next)
	return nil
}

// RotateWithKey is Rotate with a caller-supplied key, for deterministic
// tests.
func (a *Authenticator) RotateWithKey(key [KeySize]byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	cur := a.snapshot()
	next := &ringState{epoch: cur.epoch + 1, keys: cur.keys, mac: cur.mac}
	next.keys[next.epoch&1] = key
	a.ring.Store(next)
}

// Mint returns the cookie for src under the current epoch.
func (a *Authenticator) Mint(src netip.Addr) Cookie {
	r := a.snapshot()
	return r.compute(r.epoch, src)
}

// Verify reports whether c is a valid cookie for src under the current or
// previous key epoch. Verification tries the current epoch first, then the
// previous; the parity bit carried in the cookie means at most one of the
// two can match, so exactly one MAC is computed. The comparison is
// constant-time.
func (a *Authenticator) Verify(src netip.Addr, c Cookie) bool {
	return verifyRing(a.snapshot(), src, c)
}

// verifyRing is Verify against an explicit ring snapshot.
func verifyRing(r *ringState, src netip.Addr, c Cookie) bool {
	for _, e := range [2]uint64{r.epoch, r.epoch - 1} {
		if c[0]>>7 != uint8(e&1) {
			continue // parity proves this epoch cannot have minted c
		}
		want := r.compute(e, src)
		return subtle.ConstantTimeCompare(want[:], c[:]) == 1
	}
	return false
}

// IsZero reports whether c is the all-zero cookie, which the modified-DNS
// scheme uses as "please send me my cookie".
func (c Cookie) IsZero() bool { return c == Cookie{} }

// NS-name encoding ----------------------------------------------------------

// Errors returned by the encodings.
var (
	ErrNotCookieLabel = errors.New("cookie: label does not carry a cookie")
	ErrBadSubnet      = errors.New("cookie: subnet too small for IP cookies")
)

// NSCodec encodes cookies into DNS labels for the DNS-based scheme.
type NSCodec struct {
	// Prefix distinguishes cookie labels; must be short lowercase
	// letters, default DefaultNSPrefix.
	Prefix string
}

func (nc NSCodec) prefix() string {
	if nc.Prefix == "" {
		return DefaultNSPrefix
	}
	return nc.Prefix
}

// EncodeLabel renders the first 4 bytes of c as prefix+8 hex chars, a 10-byte
// label in the default configuration (the paper's "PRa1b2c3d4", cookie range
// 2^32).
func (nc NSCodec) EncodeLabel(c Cookie) string {
	return nc.prefix() + hex.EncodeToString(c[:nsHexLen/2])
}

// DecodeLabel extracts the cookie prefix bytes from a label produced by
// EncodeLabel. Only the first 4 bytes of the returned cookie are meaningful.
func (nc NSCodec) DecodeLabel(label string) (Cookie, error) {
	p := nc.prefix()
	if len(label) != len(p)+nsHexLen || !strings.HasPrefix(strings.ToLower(label), p) {
		return Cookie{}, ErrNotCookieLabel
	}
	raw, err := hex.DecodeString(strings.ToLower(label[len(p):]))
	if err != nil {
		return Cookie{}, fmt.Errorf("%w: %v", ErrNotCookieLabel, err)
	}
	var c Cookie
	copy(c[:], raw)
	return c, nil
}

// IsCookieLabel reports whether label has the cookie shape.
func (nc NSCodec) IsCookieLabel(label string) bool {
	_, err := nc.DecodeLabel(label)
	return err == nil
}

// VerifyLabel checks that label carries the first 4 bytes of the cookie the
// authenticator would mint for src, under the current or previous epoch.
// The prefix comparison is constant-time.
func (nc NSCodec) VerifyLabel(a *Authenticator, src netip.Addr, label string) bool {
	got, err := nc.DecodeLabel(label)
	if err != nil {
		return false
	}
	r := a.snapshot()
	for _, e := range [2]uint64{r.epoch, r.epoch - 1} {
		if got[0]>>7 != uint8(e&1) {
			continue // parity proves this epoch cannot have minted the label
		}
		want := r.compute(e, src)
		return subtle.ConstantTimeCompare(want[:4], got[:4]) == 1
	}
	return false
}

// IP encoding ----------------------------------------------------------------

// IPCodec encodes a second cookie (COOKIE2) as an address inside the guard's
// intercepted subnet, used for non-referral answers (§III-B.2). The security
// strength is the subnet's usable host count R_y.
type IPCodec struct {
	// Subnet is the prefix the guard intercepts (e.g. 1.2.3.0/24).
	Subnet netip.Prefix
}

// Range returns R_y, the number of distinct cookie addresses available.
// Network and broadcast addresses are excluded for IPv4 realism.
func (ic IPCodec) Range() (uint32, error) {
	bits := ic.Subnet.Addr().BitLen() - ic.Subnet.Bits()
	if bits < 2 {
		return 0, fmt.Errorf("%w: %v", ErrBadSubnet, ic.Subnet)
	}
	if bits > 24 {
		bits = 24 // cap so hosts fit comfortably in uint32 arithmetic
	}
	return uint32(1)<<bits - 2, nil
}

// Encode maps c into an address in the subnet: y = first4(c) mod R_y, host
// part y+1 (skipping the network address).
func (ic IPCodec) Encode(c Cookie) (netip.Addr, error) {
	ry, err := ic.Range()
	if err != nil {
		return netip.Addr{}, err
	}
	y := be32(c[:4])%ry + 1
	base := ic.Subnet.Masked().Addr().As4()
	host := be32(base[:]) + y
	return netip.AddrFrom4([4]byte{byte(host >> 24), byte(host >> 16), byte(host >> 8), byte(host)}), nil
}

// Verify reports whether addr is the cookie address for src. Address
// comparisons are constant-time.
func (ic IPCodec) Verify(a *Authenticator, src netip.Addr, addr netip.Addr) bool {
	if !ic.Subnet.Contains(addr) {
		return false
	}
	got := addr.As16()
	r := a.snapshot()
	// Try both epochs: the address carries no epoch parity bit.
	for _, e := range [2]uint64{r.epoch, r.epoch - 1} {
		want, err := ic.Encode(r.compute(e, src))
		if err != nil {
			continue
		}
		w := want.As16()
		if subtle.ConstantTimeCompare(w[:], got[:]) == 1 {
			return true
		}
	}
	return false
}

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// Wire encoding (modified-DNS scheme) ----------------------------------------

// TTL choices from the paper: fabricated NS records and wire cookies live for
// a week so caches almost always hit.
const DefaultTTL = 7 * 24 * time.Hour
