// Package cookie implements the DNS Guard cookie design from §III-E of the
// paper: for a request with source address src, the cookie is
//
//	c = MD5(key76 ‖ src_ip)
//
// where key76 is a 76-byte secret held only by the guard (76 + 4 = 80 bytes,
// MD5's minimum padded input block in the paper's accounting). The 16-byte
// value c is used three ways:
//
//   - the full 16 bytes travel in a TXT record for the modified-DNS scheme;
//   - the first 4 bytes, hex-encoded behind a short prefix, form the label
//     embedded in fabricated NS names ("pr" + 8 hex chars, e.g. pra1b2c3d4);
//   - the first 4 bytes modulo the guard subnet's host range select the
//     fabricated A-record address (COOKIE2) for non-referral answers.
//
// Key rotation uses the cookie's first bit as a generation indicator: the
// guard overwrites bit 0 with its current generation parity and accepts
// cookies from the current and previous generation, so each verification
// still costs exactly one MD5 (§III-E).
package cookie

import (
	"crypto/md5"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"time"
)

// KeySize is the guard's secret key length in bytes.
const KeySize = 76

// Size is the cookie length in bytes.
const Size = 16

// DefaultNSPrefix is the label prefix that distinguishes cookie-bearing
// fabricated NS names from ordinary names ("PR" in the paper's example).
const DefaultNSPrefix = "pr"

// hexDigits in the NS-name encoding (4 bytes of cookie → 8 hex chars).
const nsHexLen = 8

// Cookie is the 16-byte spoof-detection credential.
type Cookie [Size]byte

// Authenticator computes and verifies cookies for one guard. It holds the
// current and previous keys so rotation never invalidates live cookies
// within one TTL window.
type Authenticator struct {
	keys [2][KeySize]byte // keys[gen&1] is the key for that generation parity
	gen  uint8            // current generation
}

// NewAuthenticator creates an authenticator with a fresh random key.
func NewAuthenticator() (*Authenticator, error) {
	a := &Authenticator{}
	if _, err := rand.Read(a.keys[0][:]); err != nil {
		return nil, fmt.Errorf("cookie: generating key: %w", err)
	}
	// Until the first rotation both slots hold the same key so generation
	// parity never rejects a fresh cookie.
	a.keys[1] = a.keys[0]
	return a, nil
}

// NewAuthenticatorWithKey creates an authenticator with a fixed key, for
// tests and deterministic simulations.
func NewAuthenticatorWithKey(key [KeySize]byte) *Authenticator {
	a := &Authenticator{}
	a.keys[0] = key
	a.keys[1] = key
	return a
}

// Generation returns the current key generation.
func (a *Authenticator) Generation() uint8 { return a.gen }

// Rotate installs a new random key as the next generation. Cookies minted by
// the previous generation remain verifiable until the following rotation,
// implementing the paper's week-over-week schedule.
func (a *Authenticator) Rotate() error {
	var key [KeySize]byte
	if _, err := rand.Read(key[:]); err != nil {
		return fmt.Errorf("cookie: rotating key: %w", err)
	}
	a.gen++
	a.keys[a.gen&1] = key
	return nil
}

// RotateWithKey is Rotate with a caller-supplied key, for deterministic
// tests.
func (a *Authenticator) RotateWithKey(key [KeySize]byte) {
	a.gen++
	a.keys[a.gen&1] = key
}

func (a *Authenticator) compute(gen uint8, src netip.Addr) Cookie {
	h := md5.New()
	key := a.keys[gen&1]
	h.Write(key[:])
	if src.Is4() || src.Is4In6() {
		b := src.As4()
		h.Write(b[:])
	} else {
		b := src.As16()
		h.Write(b[:])
	}
	var c Cookie
	copy(c[:], h.Sum(nil))
	// Overwrite the first bit with the generation parity (§III-E).
	c[0] = c[0]&0x7F | gen&1<<7
	return c
}

// Mint returns the cookie for src under the current generation.
func (a *Authenticator) Mint(src netip.Addr) Cookie {
	return a.compute(a.gen, src)
}

// Verify reports whether c is a valid cookie for src under the current or
// previous key generation. Exactly one MD5 is computed: the cookie's
// generation bit selects the key.
func (a *Authenticator) Verify(src netip.Addr, c Cookie) bool {
	gen := a.gen
	if c[0]>>7 != gen&1 {
		gen-- // previous generation
	}
	return a.compute(gen, src) == c
}

// IsZero reports whether c is the all-zero cookie, which the modified-DNS
// scheme uses as "please send me my cookie".
func (c Cookie) IsZero() bool { return c == Cookie{} }

// NS-name encoding ----------------------------------------------------------

// Errors returned by the encodings.
var (
	ErrNotCookieLabel = errors.New("cookie: label does not carry a cookie")
	ErrBadSubnet      = errors.New("cookie: subnet too small for IP cookies")
)

// NSCodec encodes cookies into DNS labels for the DNS-based scheme.
type NSCodec struct {
	// Prefix distinguishes cookie labels; must be short lowercase
	// letters, default DefaultNSPrefix.
	Prefix string
}

func (nc NSCodec) prefix() string {
	if nc.Prefix == "" {
		return DefaultNSPrefix
	}
	return nc.Prefix
}

// EncodeLabel renders the first 4 bytes of c as prefix+8 hex chars, a 10-byte
// label in the default configuration (the paper's "PRa1b2c3d4", cookie range
// 2^32).
func (nc NSCodec) EncodeLabel(c Cookie) string {
	return nc.prefix() + hex.EncodeToString(c[:nsHexLen/2])
}

// DecodeLabel extracts the cookie prefix bytes from a label produced by
// EncodeLabel. Only the first 4 bytes of the returned cookie are meaningful.
func (nc NSCodec) DecodeLabel(label string) (Cookie, error) {
	p := nc.prefix()
	if len(label) != len(p)+nsHexLen || !strings.HasPrefix(strings.ToLower(label), p) {
		return Cookie{}, ErrNotCookieLabel
	}
	raw, err := hex.DecodeString(strings.ToLower(label[len(p):]))
	if err != nil {
		return Cookie{}, fmt.Errorf("%w: %v", ErrNotCookieLabel, err)
	}
	var c Cookie
	copy(c[:], raw)
	return c, nil
}

// IsCookieLabel reports whether label has the cookie shape.
func (nc NSCodec) IsCookieLabel(label string) bool {
	_, err := nc.DecodeLabel(label)
	return err == nil
}

// VerifyLabel checks that label carries the first 4 bytes of the cookie the
// authenticator would mint for src, under current or previous generation.
func (nc NSCodec) VerifyLabel(a *Authenticator, src netip.Addr, label string) bool {
	got, err := nc.DecodeLabel(label)
	if err != nil {
		return false
	}
	gen := a.gen
	if got[0]>>7 != gen&1 {
		gen--
	}
	want := a.compute(gen, src)
	return [4]byte(got[:4]) == [4]byte(want[:4])
}

// IP encoding ----------------------------------------------------------------

// IPCodec encodes a second cookie (COOKIE2) as an address inside the guard's
// intercepted subnet, used for non-referral answers (§III-B.2). The security
// strength is the subnet's usable host count R_y.
type IPCodec struct {
	// Subnet is the prefix the guard intercepts (e.g. 1.2.3.0/24).
	Subnet netip.Prefix
}

// Range returns R_y, the number of distinct cookie addresses available.
// Network and broadcast addresses are excluded for IPv4 realism.
func (ic IPCodec) Range() (uint32, error) {
	bits := ic.Subnet.Addr().BitLen() - ic.Subnet.Bits()
	if bits < 2 {
		return 0, fmt.Errorf("%w: %v", ErrBadSubnet, ic.Subnet)
	}
	if bits > 24 {
		bits = 24 // cap so hosts fit comfortably in uint32 arithmetic
	}
	return uint32(1)<<bits - 2, nil
}

// Encode maps c into an address in the subnet: y = first4(c) mod R_y, host
// part y+1 (skipping the network address).
func (ic IPCodec) Encode(c Cookie) (netip.Addr, error) {
	ry, err := ic.Range()
	if err != nil {
		return netip.Addr{}, err
	}
	y := be32(c[:4])%ry + 1
	base := ic.Subnet.Masked().Addr().As4()
	host := be32(base[:]) + y
	return netip.AddrFrom4([4]byte{byte(host >> 24), byte(host >> 16), byte(host >> 8), byte(host)}), nil
}

// Verify reports whether addr is the cookie address for src.
func (ic IPCodec) Verify(a *Authenticator, src netip.Addr, addr netip.Addr) bool {
	if !ic.Subnet.Contains(addr) {
		return false
	}
	// Try both generations: the address carries no generation bit.
	for _, gen := range []uint8{a.gen, a.gen - 1} {
		want, err := ic.Encode(a.compute(gen, src))
		if err == nil && want == addr {
			return true
		}
	}
	return false
}

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// Wire encoding (modified-DNS scheme) ----------------------------------------

// TTL choices from the paper: fabricated NS records and wire cookies live for
// a week so caches almost always hit.
const DefaultTTL = 7 * 24 * time.Hour
