package cookie

// Keyring persistence. A guard restart that loses key76 silently invalidates
// every cookie the LRS population has cached — and those cached credentials
// live for up to a week (DefaultTTL), so the paper's "almost always a cache
// hit" property turns into a thundering herd of re-bootstraps the moment the
// guard comes back. Persisting the epoch'd keyring lets a restarted guard
// keep verifying cookies minted before the crash.
//
// The state file is a small versioned text format:
//
//	dnsguard-keyring v1
//	epoch <decimal>
//	key-even <152 hex chars>
//	key-odd  <152 hex chars>
//	mac <scheme name, present only for non-default schemes>
//	sum <8 hex chars, CRC-32 of the lines above>
//
// key-even/key-odd are the epoch-parity key slots (keys[epoch&1] is
// current). The mac line tags the ring's MACScheme; it is omitted for the
// default MD5 so rings under the paper's scheme stay byte-identical to the
// historical format and remain readable by older builds. The file is
// written atomically (tmp + fsync + rename) with 0600 permissions; it holds
// the guard's only secret. The trailing sum line detects torn or bit-rotted
// state (files written before the sum existed — exactly four lines — still
// parse); every write also refreshes a `.bak` replica so OpenKeyring can
// recover a corrupt main file from the last durable ring instead of minting
// fresh keys and orphaning every cookie the population has cached.

import (
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// keyStateMagic is the state file's first line.
const keyStateMagic = "dnsguard-keyring v1"

// keyStateBackup is the suffix of the recovery replica kept beside the
// state file.
const keyStateBackup = ".bak"

// KeyState is the serializable form of an Authenticator's keyring.
type KeyState struct {
	Epoch uint64
	Keys  [2][KeySize]byte // indexed by epoch parity
	// Scheme names the ring's MACScheme; empty means the default (MD5),
	// keeping states captured by older builds adoptable unchanged.
	Scheme string
}

// State returns a copy of the authenticator's current keyring.
func (a *Authenticator) State() KeyState {
	return a.snapshot().state()
}

// RestoreAuthenticator builds an authenticator from a previously captured
// keyring state: cookies minted under st.Epoch and st.Epoch-1 verify. A
// state naming an unknown scheme falls back to the default MD5.
//
// Deprecated: use Open(Options{State: &st}).
func RestoreAuthenticator(st KeyState) *Authenticator {
	a, err := Open(Options{State: &st})
	if err != nil {
		fallback := st
		fallback.Scheme = ""
		a, _ = Open(Options{State: &fallback})
	}
	return a
}

// BindStateFile makes path the authenticator's persistent home: the current
// ring is written immediately and every subsequent Rotate rewrites it before
// returning. Binding an empty path detaches.
func (a *Authenticator) BindStateFile(path string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.bound = path
	if path == "" {
		return nil
	}
	return writeKeyState(path, a.snapshot().state())
}

// SaveStateFile writes the current keyring to path (atomic tmp + rename,
// mode 0600) without binding.
func (a *Authenticator) SaveStateFile(path string) error {
	return writeKeyState(path, a.State())
}

// LoadAuthenticator reads a keyring state file written by SaveStateFile or
// BindStateFile and restores the authenticator it describes, under the
// scheme the file's mac tag names.
func LoadAuthenticator(path string) (*Authenticator, error) {
	st, err := ReadKeyState(path)
	if err != nil {
		return nil, err
	}
	return Open(Options{State: &st})
}

// OpenKeyring is the load-or-create entry point daemons use: if path exists
// its keyring is restored (cookies minted before the restart keep
// verifying); otherwise a fresh authenticator is created and persisted.
// Either way the authenticator is bound to path so rotations persist.
//
// A truncated or corrupt main file is not fatal and never silently replaced
// with fresh keys: OpenKeyring falls back to the `.bak` replica written
// alongside every state update. The replica may trail the main file by one
// rotation, which the verifier's previous-epoch grace window absorbs. Only
// when both copies are unreadable does OpenKeyring fail — deliberately
// closed, because minting a new ring would orphan every cookie the
// population has cached.
//
// Deprecated: use Open(Options{StateFile: path}).
func OpenKeyring(path string) (*Authenticator, error) {
	return Open(Options{StateFile: path})
}

// Fleet-shared keyrings. A guard fleet (anycast sites behind one service
// address) must verify each other's cookies: a catchment shift hands a
// verified client to a cold site, and the cold site can only re-admit it
// without a re-challenge if it holds the same key material and epoch
// schedule as the site that minted the cookie. One authenticator (or the
// daemon owning the state file) is the ring's writer; every other guard
// holds a read handle that adopts the owner's published KeyState.

// ErrFollowHandle is returned by Rotate on a read handle opened with
// OpenKeyringHandle: the ring has exactly one writer, followers only adopt.
var ErrFollowHandle = errors.New("cookie: keyring follow handle cannot rotate; the owner rotates")

// Adopt installs a published keyring state, typically pushed by a fleet
// controller after it rotates the shared ring. Epochs never regress: a stale
// state (st.Epoch below the current epoch) is ignored and Adopt reports
// false, as is a state naming a scheme this build does not know. Adopting
// the current epoch re-installs the key material, which is a no-op when the
// states already agree. When the authenticator is bound to a state file the
// adopted ring is persisted before it is published; a persistence failure
// (reported as false) leaves the live ring untouched so the disk ring never
// lags the live one.
func (a *Authenticator) Adopt(st KeyState) bool {
	mac, err := MACByName(st.Scheme)
	if err != nil {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if st.Epoch < a.snapshot().epoch {
		return false
	}
	next := &ringState{epoch: st.Epoch, keys: st.Keys, mac: mac}
	if a.bound != "" {
		if err := writeKeyState(a.bound, next.state()); err != nil {
			return false
		}
	}
	a.ring.Store(next)
	return true
}

// Reload re-reads the state file the authenticator follows (OpenKeyringHandle)
// or is bound to, and adopts it. The shared-file flavour of fleet key
// distribution: the owner rotates and rewrites the file, followers poll
// Reload. A state whose epoch is behind the live one is ignored without
// error — the owner's write may simply not have landed yet.
func (a *Authenticator) Reload() error {
	a.mu.Lock()
	path := a.source
	if path == "" {
		path = a.bound
	}
	a.mu.Unlock()
	if path == "" {
		return errors.New("cookie: Reload: authenticator has no state file")
	}
	st, err := ReadKeyState(path)
	if err != nil {
		return err
	}
	a.Adopt(st)
	return nil
}

// OpenKeyringHandle opens a read handle on an existing keyring state file:
// the returned authenticator verifies (and mints) cookies under the file's
// current ring, Reload picks up rotations written by the owner, and Rotate
// refuses with ErrFollowHandle. Unlike OpenKeyring it never writes the file
// and errors if it does not exist — a follower must not race the owner to
// create the ring.
//
// Deprecated: use Open(Options{StateFile: path, Follow: true}).
func OpenKeyringHandle(path string) (*Authenticator, error) {
	return Open(Options{StateFile: path, Follow: true})
}

// ReadKeyState parses a keyring state file.
func ReadKeyState(path string) (KeyState, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return KeyState{}, fmt.Errorf("cookie: keyring %s: %w", path, err)
	}
	var st KeyState
	lines := strings.Split(strings.TrimSpace(string(blob)), "\n")
	if len(lines) < 4 || len(lines) > 6 || strings.TrimSpace(lines[0]) != keyStateMagic {
		return KeyState{}, fmt.Errorf("cookie: keyring %s: not a %q file", path, keyStateMagic)
	}
	if last := strings.Fields(lines[len(lines)-1]); len(last) > 0 && last[0] == "sum" {
		// Current writers append a CRC-32 of the preceding lines; a file
		// without the sum predates it and is accepted as-is.
		if len(last) != 2 {
			return KeyState{}, fmt.Errorf("cookie: keyring %s: malformed line %q", path, lines[len(lines)-1])
		}
		want, err := strconv.ParseUint(last[1], 16, 32)
		if err != nil {
			return KeyState{}, fmt.Errorf("cookie: keyring %s: sum: %w", path, err)
		}
		body := strings.Join(lines[:len(lines)-1], "\n") + "\n"
		if got := crc32.ChecksumIEEE([]byte(body)); got != uint32(want) {
			return KeyState{}, fmt.Errorf("cookie: keyring %s: checksum mismatch (want %08x, got %08x): torn or corrupt state", path, uint32(want), got)
		}
		lines = lines[:len(lines)-1]
	}
	seen := map[string]bool{}
	for _, line := range lines[1:] {
		fields := strings.Fields(line)
		if len(fields) != 2 || seen[fields[0]] {
			return KeyState{}, fmt.Errorf("cookie: keyring %s: malformed line %q", path, line)
		}
		seen[fields[0]] = true
		switch fields[0] {
		case "epoch":
			st.Epoch, err = strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return KeyState{}, fmt.Errorf("cookie: keyring %s: epoch: %w", path, err)
			}
		case "key-even", "key-odd":
			raw, err := hex.DecodeString(fields[1])
			if err != nil || len(raw) != KeySize {
				return KeyState{}, fmt.Errorf("cookie: keyring %s: %s is not %d hex bytes", path, fields[0], KeySize)
			}
			idx := 0
			if fields[0] == "key-odd" {
				idx = 1
			}
			copy(st.Keys[idx][:], raw)
		case "mac":
			if _, err := MACByName(fields[1]); err != nil {
				return KeyState{}, fmt.Errorf("cookie: keyring %s: %w", path, err)
			}
			st.Scheme = fields[1]
		default:
			return KeyState{}, fmt.Errorf("cookie: keyring %s: unknown field %q", path, fields[0])
		}
	}
	if !seen["epoch"] || !seen["key-even"] || !seen["key-odd"] {
		return KeyState{}, fmt.Errorf("cookie: keyring %s: missing fields", path)
	}
	return st, nil
}

// keyStateBlob renders st in the on-disk format, checksum line included.
// The mac line appears only for non-default schemes, so default-scheme
// rings keep the exact historical byte layout.
func keyStateBlob(st KeyState) string {
	var b strings.Builder
	fmt.Fprintln(&b, keyStateMagic)
	fmt.Fprintf(&b, "epoch %d\n", st.Epoch)
	fmt.Fprintf(&b, "key-even %s\n", hex.EncodeToString(st.Keys[0][:]))
	fmt.Fprintf(&b, "key-odd %s\n", hex.EncodeToString(st.Keys[1][:]))
	if st.Scheme != "" && st.Scheme != "md5" {
		fmt.Fprintf(&b, "mac %s\n", st.Scheme)
	}
	body := b.String()
	return body + fmt.Sprintf("sum %08x\n", crc32.ChecksumIEEE([]byte(body)))
}

// writeKeyState atomically replaces path with st and refreshes the `.bak`
// replica OpenKeyring recovers from. The replica write is best-effort: the
// main file is the ring's source of truth, and a replica that trails by one
// epoch still verifies within the grace window.
func writeKeyState(path string, st KeyState) error {
	blob := keyStateBlob(st)
	if err := writeFileAtomic(path, blob); err != nil {
		return err
	}
	_ = writeFileAtomic(path+keyStateBackup, blob)
	return nil
}

// writeFileAtomic replaces path with data via tmp file + fsync + rename
// (mode 0600), so a crash mid-write can never leave a torn main file — the
// old content survives until the rename commits a fully synced new one.
func writeFileAtomic(path, data string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".keyring-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := tmp.Chmod(0o600); err != nil {
		tmp.Close()
		return err
	}
	if _, err := tmp.WriteString(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Persist the rename itself; best-effort, some filesystems refuse
	// directory fsync.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}
