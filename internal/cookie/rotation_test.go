package cookie

import (
	"math/rand"
	"net/netip"
	"testing"
)

// Property test for the §III-E rotation contract: at any point in the key
// schedule, Verify accepts exactly the cookies minted under the current and
// previous generation for the same source address — and nothing else. This
// is what lets the guard rotate weekly without invalidating cookies cached
// by resolvers inside one TTL window, while a stolen two-week-old cookie is
// useless.

// detKey derives a distinct deterministic key for generation i.
func detKey(i int) [KeySize]byte {
	var key [KeySize]byte
	rng := rand.New(rand.NewSource(int64(0x5eed<<8 + i)))
	rng.Read(key[:])
	return key
}

// detAddrs returns a deterministic mix of v4 and v6 source addresses.
func detAddrs() []netip.Addr {
	rng := rand.New(rand.NewSource(777))
	addrs := make([]netip.Addr, 0, 40)
	for i := 0; i < 32; i++ {
		var b [4]byte
		rng.Read(b[:])
		addrs = append(addrs, netip.AddrFrom4(b))
	}
	for i := 0; i < 8; i++ {
		var b [16]byte
		rng.Read(b[:])
		addrs = append(addrs, netip.AddrFrom16(b))
	}
	return addrs
}

func TestRotationAcceptsExactlyTwoGenerations(t *testing.T) {
	auth := NewAuthenticatorWithKey(detKey(0))
	addrs := detAddrs()
	const rotations = 6

	// minted[g][addr] is the cookie minted while generation g was current.
	minted := make([]map[netip.Addr]Cookie, rotations+1)
	for gen := 0; gen <= rotations; gen++ {
		if gen > 0 {
			auth.RotateWithKey(detKey(gen))
		}
		if int(auth.Generation()) != gen {
			t.Fatalf("generation = %d after %d rotations", auth.Generation(), gen)
		}
		minted[gen] = make(map[netip.Addr]Cookie, len(addrs))
		for _, src := range addrs {
			minted[gen][src] = auth.Mint(src)
		}

		for _, src := range addrs {
			// Current generation always verifies.
			if !auth.Verify(src, minted[gen][src]) {
				t.Fatalf("gen %d: fresh cookie for %v rejected", gen, src)
			}
			// Previous generation still verifies (TTL grace).
			if gen >= 1 && !auth.Verify(src, minted[gen-1][src]) {
				t.Fatalf("gen %d: previous-generation cookie for %v rejected", gen, src)
			}
			// Anything older is dead, even though its generation parity
			// may match the current key slot.
			for old := 0; old <= gen-2; old++ {
				if auth.Verify(src, minted[old][src]) {
					t.Fatalf("gen %d: generation-%d cookie for %v still accepted", gen, old, src)
				}
			}
		}
	}
}

func TestRotationRejectsForgeries(t *testing.T) {
	auth := NewAuthenticatorWithKey(detKey(0))
	auth.RotateWithKey(detKey(1)) // make current ≠ previous
	addrs := detAddrs()
	rng := rand.New(rand.NewSource(31337))

	for _, src := range addrs {
		c := auth.Mint(src)

		// Any single-bit corruption must invalidate the cookie — including
		// bit 0 of byte 0, the generation-parity bit.
		for bit := 0; bit < Size*8; bit++ {
			bad := c
			bad[bit/8] ^= 1 << (bit % 8)
			if auth.Verify(src, bad) {
				t.Fatalf("cookie for %v with bit %d flipped still verifies", src, bit)
			}
		}

		// Random cookies never verify.
		var forged Cookie
		rng.Read(forged[:])
		if auth.Verify(src, forged) {
			t.Fatalf("random forgery for %v verifies", src)
		}

		// A valid cookie is bound to its source address.
		for _, other := range addrs {
			if other != src && auth.Verify(other, c) {
				t.Fatalf("cookie for %v accepted for %v", src, other)
			}
		}
	}
}

func TestRotationNSLabelAcceptsBothGenerations(t *testing.T) {
	// The fabricated-NS encoding carries only the first 4 cookie bytes; it
	// must honour the same two-generation window.
	auth := NewAuthenticatorWithKey(detKey(0))
	nc := NSCodec{}
	addrs := detAddrs()

	prev := make(map[netip.Addr]string, len(addrs))
	for _, src := range addrs {
		prev[src] = nc.EncodeLabel(auth.Mint(src))
	}
	auth.RotateWithKey(detKey(1))
	for _, src := range addrs {
		cur := nc.EncodeLabel(auth.Mint(src))
		if !nc.VerifyLabel(auth, src, cur) {
			t.Fatalf("current-generation label for %v rejected", src)
		}
		if !nc.VerifyLabel(auth, src, prev[src]) {
			t.Fatalf("previous-generation label for %v rejected", src)
		}
	}
	// Two rotations later the old labels are dead.
	auth.RotateWithKey(detKey(2))
	auth.RotateWithKey(detKey(3))
	rejected := 0
	for _, src := range addrs {
		if !nc.VerifyLabel(auth, src, prev[src]) {
			rejected++
		}
	}
	// The label carries 31 effective bits, so a stray collision is possible
	// in principle; with these fixed seeds every stale label must miss.
	if rejected != len(addrs) {
		t.Fatalf("only %d/%d stale labels rejected after two rotations", rejected, len(addrs))
	}
}

func TestRotationIPCookieAcceptsBothGenerations(t *testing.T) {
	// COOKIE2 addresses carry no generation bit at all: Verify tries both
	// keys explicitly. Same window property, smaller cookie space (R_y).
	auth := NewAuthenticatorWithKey(detKey(0))
	ic := IPCodec{Subnet: netip.MustParsePrefix("192.0.2.0/24")}
	addrs := detAddrs()

	prev := make(map[netip.Addr]netip.Addr, len(addrs))
	for _, src := range addrs {
		a, err := ic.Encode(auth.Mint(src))
		if err != nil {
			t.Fatal(err)
		}
		prev[src] = a
	}
	auth.RotateWithKey(detKey(1))
	for _, src := range addrs {
		cur, err := ic.Encode(auth.Mint(src))
		if err != nil {
			t.Fatal(err)
		}
		if !ic.Verify(auth, src, cur) {
			t.Fatalf("current-generation address for %v rejected", src)
		}
		if !ic.Verify(auth, src, prev[src]) {
			t.Fatalf("previous-generation address for %v rejected", src)
		}
		if out := netip.MustParseAddr("203.0.113.9"); ic.Verify(auth, src, out) {
			t.Fatalf("address outside the subnet verified for %v", src)
		}
	}
}
