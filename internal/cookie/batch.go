// Batch verification. The historical single-packet entry points took one
// keyring read-lock and allocated one MD5 state per call; the ring is now an
// atomic snapshot so even single-packet Verify is lock- and allocation-free.
// BatchVerifier remains the dataplane's way to hold one ring snapshot stable
// across a whole batch window: Reset pins the snapshot once and every
// verification in the batch — single-packet or batched, any mix — sees the
// same ring with zero further synchronization. Results are bit-identical to
// the single-packet paths — both funnel into ringState.compute.
package cookie

import (
	"crypto/subtle"
	"fmt"
	"net/netip"
)

// BatchVerifier verifies many cookies against one keyring snapshot. Obtain
// with NewBatchVerifier, call Reset(a) at the start of each batch, then any
// mix of Verify/VerifyLabel/VerifyIP/Mint for the batch's packets. Not safe
// for concurrent use — each dataplane shard owns one.
//
// A Reset snapshot intentionally holds the keyring stable across the batch:
// a rotation that lands mid-batch takes effect on the next Reset, which is
// indistinguishable from the rotation having landed a few packets later.
type BatchVerifier struct {
	ring *ringState
}

// NewBatchVerifier returns a verifier with no snapshot; Reset must be
// called before the first verification (a zero snapshot verifies against
// the all-zero keyring, which no authenticator ever holds).
func NewBatchVerifier() *BatchVerifier {
	return &BatchVerifier{ring: zeroRing}
}

// Reset snapshots a's keyring (one atomic load) for the coming batch.
func (v *BatchVerifier) Reset(a *Authenticator) {
	v.ring = a.snapshot()
}

func (v *BatchVerifier) compute(e uint64, src netip.Addr) Cookie {
	return v.ring.compute(e, src)
}

// Mint returns the cookie for src under the snapshot's current epoch,
// matching Authenticator.Mint against the same keyring.
func (v *BatchVerifier) Mint(src netip.Addr) Cookie {
	return v.compute(v.ring.epoch, src)
}

// Verify is Authenticator.Verify against the snapshot.
func (v *BatchVerifier) Verify(src netip.Addr, c Cookie) bool {
	return verifyRing(v.ring, src, c)
}

// VerifyLabel is NSCodec.VerifyLabel against the snapshot.
func (v *BatchVerifier) VerifyLabel(nc NSCodec, src netip.Addr, label string) bool {
	got, err := nc.DecodeLabel(label)
	if err != nil {
		return false
	}
	for _, e := range [2]uint64{v.ring.epoch, v.ring.epoch - 1} {
		if got[0]>>7 != uint8(e&1) {
			continue
		}
		want := v.compute(e, src)
		return subtle.ConstantTimeCompare(want[:4], got[:4]) == 1
	}
	return false
}

// VerifyIP is IPCodec.Verify against the snapshot.
func (v *BatchVerifier) VerifyIP(ic IPCodec, src netip.Addr, addr netip.Addr) bool {
	if !ic.Subnet.Contains(addr) {
		return false
	}
	got := addr.As16()
	for _, e := range [2]uint64{v.ring.epoch, v.ring.epoch - 1} {
		want, err := ic.Encode(v.compute(e, src))
		if err != nil {
			continue
		}
		w := want.As16()
		if subtle.ConstantTimeCompare(w[:], got[:]) == 1 {
			return true
		}
	}
	return false
}

// VerifyBatch verifies cookies[i] for srcs[i] into ok[i] under one keyring
// snapshot. The three slices must be equal length.
func (a *Authenticator) VerifyBatch(srcs []netip.Addr, cookies []Cookie, ok []bool) error {
	if len(srcs) != len(cookies) || len(srcs) != len(ok) {
		return fmt.Errorf("cookie: VerifyBatch length mismatch: %d srcs, %d cookies, %d results",
			len(srcs), len(cookies), len(ok))
	}
	r := a.snapshot()
	for i := range srcs {
		ok[i] = verifyRing(r, srcs[i], cookies[i])
	}
	return nil
}
