// Batch verification. The single-packet entry points (Verify, VerifyLabel,
// IPCodec.Verify) each take one keyring read-lock and allocate one MD5 state
// per call; under a line-rate flood those two costs dominate the verifier.
// BatchVerifier hoists both to batch granularity: one snapshot of the
// keyring, one reusable digest hashing the batch's sources contiguously.
// Results are bit-identical to the single-packet paths — both funnel into
// computeInto.
package cookie

import (
	"crypto/md5"
	"crypto/subtle"
	"fmt"
	"hash"
	"net/netip"
)

// BatchVerifier verifies many cookies against one keyring snapshot. Obtain
// with NewBatchVerifier, call Reset(a) at the start of each batch, then any
// mix of Verify/VerifyLabel/VerifyIP/Mint for the batch's packets. Not safe
// for concurrent use — each dataplane shard owns one.
//
// A Reset snapshot intentionally holds the keyring stable across the batch:
// a rotation that lands mid-batch takes effect on the next Reset, which is
// indistinguishable from the rotation having landed a few packets later.
type BatchVerifier struct {
	epoch uint64
	keys  [2][KeySize]byte
	h     hash.Hash
}

// NewBatchVerifier returns a verifier with no snapshot; Reset must be
// called before the first verification (a zero snapshot verifies against
// the all-zero keyring, which no authenticator ever holds).
func NewBatchVerifier() *BatchVerifier {
	return &BatchVerifier{h: md5.New()}
}

// Reset snapshots a's keyring (one read-lock) for the coming batch.
func (v *BatchVerifier) Reset(a *Authenticator) {
	v.epoch, v.keys = a.snapshot()
}

func (v *BatchVerifier) compute(e uint64, src netip.Addr) Cookie {
	return computeInto(v.h, v.keys[e&1], e, src)
}

// Mint returns the cookie for src under the snapshot's current epoch,
// matching Authenticator.Mint against the same keyring.
func (v *BatchVerifier) Mint(src netip.Addr) Cookie {
	return v.compute(v.epoch, src)
}

// Verify is Authenticator.Verify against the snapshot.
func (v *BatchVerifier) Verify(src netip.Addr, c Cookie) bool {
	for _, e := range [2]uint64{v.epoch, v.epoch - 1} {
		if c[0]>>7 != uint8(e&1) {
			continue // parity proves this epoch cannot have minted c
		}
		want := v.compute(e, src)
		return subtle.ConstantTimeCompare(want[:], c[:]) == 1
	}
	return false
}

// VerifyLabel is NSCodec.VerifyLabel against the snapshot.
func (v *BatchVerifier) VerifyLabel(nc NSCodec, src netip.Addr, label string) bool {
	got, err := nc.DecodeLabel(label)
	if err != nil {
		return false
	}
	for _, e := range [2]uint64{v.epoch, v.epoch - 1} {
		if got[0]>>7 != uint8(e&1) {
			continue
		}
		want := v.compute(e, src)
		return subtle.ConstantTimeCompare(want[:4], got[:4]) == 1
	}
	return false
}

// VerifyIP is IPCodec.Verify against the snapshot.
func (v *BatchVerifier) VerifyIP(ic IPCodec, src netip.Addr, addr netip.Addr) bool {
	if !ic.Subnet.Contains(addr) {
		return false
	}
	got := addr.As16()
	for _, e := range [2]uint64{v.epoch, v.epoch - 1} {
		want, err := ic.Encode(v.compute(e, src))
		if err != nil {
			continue
		}
		w := want.As16()
		if subtle.ConstantTimeCompare(w[:], got[:]) == 1 {
			return true
		}
	}
	return false
}

// VerifyBatch verifies cookies[i] for srcs[i] into ok[i] under one keyring
// snapshot with contiguous hashing. The three slices must be equal length.
func (a *Authenticator) VerifyBatch(srcs []netip.Addr, cookies []Cookie, ok []bool) error {
	if len(srcs) != len(cookies) || len(srcs) != len(ok) {
		return fmt.Errorf("cookie: VerifyBatch length mismatch: %d srcs, %d cookies, %d results",
			len(srcs), len(cookies), len(ok))
	}
	v := BatchVerifier{h: md5.New()}
	v.Reset(a)
	for i := range srcs {
		ok[i] = v.Verify(srcs[i], cookies[i])
	}
	return nil
}
