package cookie

import (
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The survivability contract: cookies minted before a restart verify after
// the keyring is restored from its state file — across both live epochs —
// and do NOT verify when the restart comes up with a fresh key (the
// regression the state file exists to fix).
func TestKeyringSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keyring")
	a := NewAuthenticatorWithKey(detKey(0))
	a.RotateWithKey(detKey(1)) // current ≠ previous
	if err := a.SaveStateFile(path); err != nil {
		t.Fatal(err)
	}

	addrs := detAddrs()
	prevEpoch := make(map[netip.Addr]Cookie, len(addrs))
	curEpoch := make(map[netip.Addr]Cookie, len(addrs))
	for _, src := range addrs {
		curEpoch[src] = a.Mint(src)
	}
	// Cookies from the previous epoch: mint with a ring one rotation back.
	old := NewAuthenticatorWithKey(detKey(0))
	for _, src := range addrs {
		prevEpoch[src] = old.Mint(src)
	}

	restored, err := LoadAuthenticator(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Epoch() != a.Epoch() {
		t.Fatalf("restored epoch = %d, want %d", restored.Epoch(), a.Epoch())
	}
	for _, src := range addrs {
		if !restored.Verify(src, curEpoch[src]) {
			t.Fatalf("current-epoch cookie for %v rejected after restore", src)
		}
		if !restored.Verify(src, prevEpoch[src]) {
			t.Fatalf("previous-epoch cookie for %v rejected after restore", src)
		}
	}

	// Without persistence (fresh random key) the same cookies must die.
	fresh, err := NewAuthenticator()
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	for _, src := range addrs {
		if !fresh.Verify(src, curEpoch[src]) {
			rejected++
		}
	}
	if rejected != len(addrs) {
		t.Fatalf("only %d/%d pre-restart cookies rejected by a fresh key", rejected, len(addrs))
	}
}

func TestBoundRotatePersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keyring")
	a, err := OpenKeyring(path)
	if err != nil {
		t.Fatal(err)
	}
	src := netip.MustParseAddr("198.51.100.7")
	c0 := a.Mint(src)
	if err := a.Rotate(); err != nil {
		t.Fatal(err)
	}
	c1 := a.Mint(src)

	// A second OpenKeyring (the restarted daemon) sees the post-rotation
	// ring: both live epochs verify without any explicit save call.
	b, err := OpenKeyring(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Epoch() != 1 {
		t.Fatalf("epoch after reload = %d, want 1", b.Epoch())
	}
	if !b.Verify(src, c1) || !b.Verify(src, c0) {
		t.Fatal("live-epoch cookies rejected after rotate+reload")
	}

	if fi, err := os.Stat(path); err != nil {
		t.Fatal(err)
	} else if fi.Mode().Perm() != 0o600 {
		t.Fatalf("state file mode = %v, want 0600", fi.Mode().Perm())
	}
}

func TestReadKeyStateRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"empty":     "",
		"magic":     "not-a-keyring v9\nepoch 1\nkey-even 00\nkey-odd 00\n",
		"shortkey":  keyStateMagic + "\nepoch 1\nkey-even 0011\nkey-odd 0011\n",
		"badepoch":  keyStateMagic + "\nepoch xyzzy\nkey-even 00\nkey-odd 00\n",
		"missing":   keyStateMagic + "\nepoch 1\n",
		"duplicate": keyStateMagic + "\nepoch 1\nepoch 2\nkey-even 00\n",
	}
	for name, body := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadKeyState(p); err == nil {
			t.Errorf("%s: corrupt state file accepted", name)
		}
	}
}

func TestStateFileRoundTripsExactRing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keyring")
	a := NewAuthenticatorWithKey(detKey(7))
	for i := 0; i < 5; i++ {
		a.RotateWithKey(detKey(10 + i))
	}
	if err := a.SaveStateFile(path); err != nil {
		t.Fatal(err)
	}
	st, err := ReadKeyState(path)
	if err != nil {
		t.Fatal(err)
	}
	want := a.State()
	if st != want {
		t.Fatalf("round trip mismatch: %+v != %+v", st.Epoch, want.Epoch)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(blob), keyStateMagic+"\n") {
		t.Fatalf("state file missing magic header: %q", blob[:32])
	}
}
