package cookie

// Open is the package's single constructor. The historical entry points
// (NewAuthenticator, NewAuthenticatorWithKey, RestoreAuthenticator,
// OpenKeyring, OpenKeyringHandle) grew one at a time as the keyring gained
// persistence and fleet semantics; they all remain as thin deprecated
// wrappers, but every combination of key material, state file, follower
// mode, and MAC scheme now funnels through one Options struct.

import (
	"crypto/rand"
	"errors"
	"fmt"
	"os"
)

// Options configures Open. The zero value creates a fresh random keyring
// under the default (MD5) scheme — equivalent to the old NewAuthenticator.
type Options struct {
	// Key, when non-nil, seeds both epoch slots with this fixed key
	// instead of fresh random material — deterministic tests and
	// simulations. Ignored when an existing state (State or a readable
	// StateFile) supplies key material.
	Key *[KeySize]byte
	// State, when non-nil, restores a previously captured keyring state:
	// cookies minted under State.Epoch and State.Epoch-1 verify.
	State *KeyState
	// StateFile, when non-empty, is the keyring's persistent home. Without
	// Follow the file is loaded if present (falling back to its `.bak`
	// replica when the main copy is corrupt or missing) or created, and
	// the authenticator is bound to it so every rotation persists before
	// it is published. With State set, the restored ring is written there.
	StateFile string
	// Follow opens StateFile as a read-only handle on a fleet-shared
	// keyring: the file must exist, Reload adopts the owner's rotations,
	// and Rotate refuses with ErrFollowHandle.
	Follow bool
	// MAC selects the cookie MAC scheme for a newly created ring. nil
	// means the default, MD5. A ring restored from State or StateFile
	// keeps the scheme its state tags — switching schemes mid-ring would
	// orphan every cookie the population has cached — and MAC is only a
	// fallback for states with no tag.
	MAC MACScheme
}

// Open builds an Authenticator from opts. See Options for the semantics of
// each field.
func Open(opts Options) (*Authenticator, error) {
	switch {
	case opts.Follow:
		if opts.StateFile == "" {
			return nil, errors.New("cookie: Open: Follow requires StateFile")
		}
		st, err := ReadKeyState(opts.StateFile)
		if err != nil {
			return nil, err
		}
		a, err := restore(st, opts.MAC)
		if err != nil {
			return nil, err
		}
		a.source = opts.StateFile
		a.follow = true
		return a, nil

	case opts.State != nil:
		a, err := restore(*opts.State, opts.MAC)
		if err != nil {
			return nil, err
		}
		if opts.StateFile != "" {
			if err := a.BindStateFile(opts.StateFile); err != nil {
				return nil, err
			}
		}
		return a, nil

	case opts.StateFile != "":
		return openKeyringFile(opts)
	}
	a, err := fresh(opts)
	if err != nil {
		return nil, err
	}
	return a, nil
}

// fresh creates a brand-new ring from opts.Key (or random material) under
// opts.MAC.
func fresh(opts Options) (*Authenticator, error) {
	mac := opts.MAC
	if mac == nil {
		mac = MD5
	}
	var key [KeySize]byte
	if opts.Key != nil {
		key = *opts.Key
	} else if _, err := rand.Read(key[:]); err != nil {
		return nil, fmt.Errorf("cookie: generating key: %w", err)
	}
	a := &Authenticator{}
	// Until the first rotation both slots hold the same key so epoch
	// parity never rejects a fresh cookie.
	a.ring.Store(&ringState{keys: [2][KeySize]byte{key, key}, mac: mac})
	return a, nil
}

// restore builds an authenticator from a captured state. The state's scheme
// tag wins; fallback applies only when the state carries none.
func restore(st KeyState, fallback MACScheme) (*Authenticator, error) {
	mac := fallback
	if st.Scheme != "" {
		var err error
		mac, err = MACByName(st.Scheme)
		if err != nil {
			return nil, err
		}
	}
	if mac == nil {
		mac = MD5
	}
	a := &Authenticator{}
	a.ring.Store(&ringState{epoch: st.Epoch, keys: st.Keys, mac: mac})
	return a, nil
}

// openKeyringFile is the load-or-create path behind Open without Follow:
// restore the ring at opts.StateFile (recovering from the `.bak` replica if
// the main copy is corrupt or lost), or create a fresh persisted ring when
// neither copy exists. Never silently replaces an unreadable ring with
// fresh keys — that would orphan every cookie the population has cached.
func openKeyringFile(opts Options) (*Authenticator, error) {
	path := opts.StateFile
	if _, err := os.Stat(path); err == nil {
		st, err := ReadKeyState(path)
		if err != nil {
			bak, bakErr := ReadKeyState(path + keyStateBackup)
			if bakErr != nil {
				return nil, fmt.Errorf("%w (backup: %v)", err, bakErr)
			}
			st = bak
		}
		a, err := restore(st, opts.MAC)
		if err != nil {
			return nil, err
		}
		if err := a.BindStateFile(path); err != nil {
			return nil, err
		}
		return a, nil
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("cookie: keyring %s: %w", path, err)
	}
	// No main file. A surviving replica means the ring existed and the main
	// file was lost mid-replace: recover it rather than create fresh keys.
	if bak, err := ReadKeyState(path + keyStateBackup); err == nil {
		a, err := restore(bak, opts.MAC)
		if err != nil {
			return nil, err
		}
		if err := a.BindStateFile(path); err != nil {
			return nil, err
		}
		return a, nil
	}
	a, err := fresh(opts)
	if err != nil {
		return nil, err
	}
	if err := a.BindStateFile(path); err != nil {
		return nil, err
	}
	return a, nil
}
