package cookie

// Crash-during-rotate coverage: a site killed between Rotate's in-memory
// epoch bump and the state persist (or between the main-file write and the
// replica refresh) must come back with a monotone epoch and keep verifying
// old-epoch cookies inside the grace window. These tests simulate each
// crash point by manipulating the on-disk files directly, then reopen with
// OpenKeyring exactly as a restarted daemon would.

import (
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// crashSrc is the client whose cookies thread through the restart.
var crashSrc = netip.MustParseAddr("198.51.100.42")

// TestRotatePersistFailureRollsBack pins the ordering contract: when the
// state write fails, Rotate reports the error and the live ring is NOT
// advanced — so a crash "between Rotate and persist" cannot exist; the
// epoch only moves once the new ring is durable.
func TestRotatePersistFailureRollsBack(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "keyring")
	if err := os.Mkdir(filepath.Dir(path), 0o700); err != nil {
		t.Fatal(err)
	}
	a, err := OpenKeyring(path)
	if err != nil {
		t.Fatal(err)
	}
	c0 := a.Mint(crashSrc)
	// Make the persist fail: remove the directory the tmp file lands in.
	if err := os.RemoveAll(filepath.Dir(path)); err != nil {
		t.Fatal(err)
	}
	if err := a.Rotate(); err == nil {
		t.Fatal("Rotate succeeded with an unwritable state dir")
	}
	if a.Epoch() != 0 {
		t.Fatalf("epoch advanced to %d despite persist failure", a.Epoch())
	}
	if !a.Verify(crashSrc, c0) {
		t.Fatal("pre-failure cookie no longer verifies after rolled-back rotate")
	}
}

// TestCrashBetweenMainAndReplica kills the site after the main state file
// committed epoch N+1 but before the .bak replica caught up (still at N).
// The reopened ring must carry epoch N+1 (monotone) and still verify the
// epoch-N cookie through the grace window.
func TestCrashBetweenMainAndReplica(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keyring")
	a := NewAuthenticatorWithKey(detKey(0))
	if err := a.BindStateFile(path); err != nil {
		t.Fatal(err)
	}
	cOld := a.Mint(crashSrc)
	stale, err := os.ReadFile(path + keyStateBackup)
	if err != nil {
		t.Fatal(err)
	}
	a.RotateWithKey(detKey(1))
	if err := a.SaveStateFile(path); err != nil {
		t.Fatal(err)
	}
	cNew := a.Mint(crashSrc)
	// Crash point: replica never refreshed — restore the stale epoch-0 copy.
	if err := os.WriteFile(path+keyStateBackup, stale, 0o600); err != nil {
		t.Fatal(err)
	}

	b, err := OpenKeyring(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Epoch() != 1 {
		t.Fatalf("epoch after reopen = %d, want 1 (monotone)", b.Epoch())
	}
	if !b.Verify(crashSrc, cNew) {
		t.Fatal("current-epoch cookie rejected after reopen")
	}
	if !b.Verify(crashSrc, cOld) {
		t.Fatal("previous-epoch cookie rejected inside the grace window")
	}
}

// TestCorruptMainRecoversFromReplica torches the main file in several ways
// (truncation, bit flip caught by the checksum, garbage) and checks
// OpenKeyring recovers the ring from the replica instead of failing or —
// worse — minting fresh keys. The replica trails by one rotation, so the
// recovered epoch is N while the latest was N+1; cookies minted under N
// (the population's grace-window credentials) must verify.
func TestCorruptMainRecoversFromReplica(t *testing.T) {
	corrupt := map[string]func(t *testing.T, path string){
		"truncated": func(t *testing.T, path string) {
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, blob[:len(blob)/2], 0o600); err != nil {
				t.Fatal(err)
			}
		},
		"bitflip": func(t *testing.T, path string) {
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Flip a hex digit inside key-even; only the checksum can see it.
			i := strings.Index(string(blob), "key-even ") + len("key-even ")
			if blob[i] == '0' {
				blob[i] = '1'
			} else {
				blob[i] = '0'
			}
			if err := os.WriteFile(path, blob, 0o600); err != nil {
				t.Fatal(err)
			}
		},
		"garbage": func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("\x00\xff\x00\xff"), 0o600); err != nil {
				t.Fatal(err)
			}
		},
		"deleted": func(t *testing.T, path string) {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, breakIt := range corrupt {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "keyring")
			a := NewAuthenticatorWithKey(detKey(3))
			if err := a.BindStateFile(path); err != nil {
				t.Fatal(err)
			}
			cGrace := a.Mint(crashSrc)
			replica, err := os.ReadFile(path + keyStateBackup)
			if err != nil {
				t.Fatal(err)
			}
			a.RotateWithKey(detKey(4))
			if err := a.SaveStateFile(path); err != nil {
				t.Fatal(err)
			}
			// Crash point: main committed epoch 1, replica still epoch 0,
			// and the main file is then damaged (torn write, bitrot, loss).
			if err := os.WriteFile(path+keyStateBackup, replica, 0o600); err != nil {
				t.Fatal(err)
			}
			breakIt(t, path)

			b, err := OpenKeyring(path)
			if err != nil {
				t.Fatalf("OpenKeyring did not recover from replica: %v", err)
			}
			if b.Epoch() != 0 {
				t.Fatalf("recovered epoch = %d, want 0 (replica)", b.Epoch())
			}
			if !b.Verify(crashSrc, cGrace) {
				t.Fatal("grace-window cookie rejected after replica recovery")
			}
			// Recovery must re-establish a good main file for the next boot.
			if _, err := ReadKeyState(path); err != nil {
				t.Fatalf("main file not rewritten after recovery: %v", err)
			}
			// And fleet adoption of the lost epoch still lands monotonically.
			if !b.Adopt(KeyState{Epoch: 1, Keys: a.State().Keys}) {
				t.Fatal("recovered ring refused to re-adopt the lost epoch")
			}
			if b.Epoch() != 1 {
				t.Fatalf("epoch after re-adopt = %d, want 1", b.Epoch())
			}
		})
	}
}

// TestBothCopiesCorruptFailsClosed: with main and replica both unreadable
// OpenKeyring must error rather than silently mint a fresh ring that
// orphans every cached cookie.
func TestBothCopiesCorruptFailsClosed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keyring")
	a := NewAuthenticatorWithKey(detKey(9))
	if err := a.BindStateFile(path); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{path, path + keyStateBackup} {
		if err := os.WriteFile(p, []byte("ruined"), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := OpenKeyring(path); err == nil {
		t.Fatal("OpenKeyring minted a fresh ring over a corrupt one")
	}
}

// TestChecksumDetectsTamper: the sum line turns silent corruption into a
// parse error (pre-sum four-line files still load).
func TestChecksumDetectsTamper(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keyring")
	a := NewAuthenticatorWithKey(detKey(5))
	if err := a.SaveStateFile(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(blob), "\n")
	if len(lines) < 5 || !strings.HasPrefix(lines[4], "sum ") {
		t.Fatalf("state file missing sum line: %q", blob)
	}
	// Legacy four-line file (no sum) still parses.
	legacy := strings.Join(lines[:4], "")
	if err := os.WriteFile(path, []byte(legacy), 0o600); err != nil {
		t.Fatal(err)
	}
	if st, err := ReadKeyState(path); err != nil {
		t.Fatalf("legacy sum-less file rejected: %v", err)
	} else if st != a.State() {
		t.Fatal("legacy parse mismatch")
	}
	// Tampered epoch with a stale sum is caught.
	tampered := strings.Replace(string(blob), "epoch 0", "epoch 7", 1)
	if err := os.WriteFile(path, []byte(tampered), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadKeyState(path); err == nil {
		t.Fatal("checksum accepted a tampered epoch")
	}
}
