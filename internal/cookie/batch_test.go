package cookie

import (
	"net/netip"
	"testing"
)

// TestBatchVerifierMatchesSingle pins the batch paths to the single-packet
// paths bit-for-bit, across key rotation and for every cookie encoding.
func TestBatchVerifierMatchesSingle(t *testing.T) {
	var key [KeySize]byte
	for i := range key {
		key[i] = byte(i * 7)
	}
	a := NewAuthenticatorWithKey(key)
	nc := NSCodec{}
	ic := IPCodec{Subnet: netip.MustParsePrefix("1.2.3.0/24")}

	srcs := make([]netip.Addr, 0, 64)
	for i := 0; i < 64; i++ {
		srcs = append(srcs, netip.AddrFrom4([4]byte{10, 0, byte(i / 8), byte(i)}))
	}
	srcs = append(srcs, netip.MustParseAddr("2001:db8::17"))

	check := func(stage string) {
		t.Helper()
		v := NewBatchVerifier()
		v.Reset(a)
		for _, src := range srcs {
			c := a.Mint(src)
			if v.Mint(src) != c {
				t.Fatalf("%s: Mint(%v) diverges", stage, src)
			}
			if got, want := v.Verify(src, c), a.Verify(src, c); got != want || !got {
				t.Fatalf("%s: Verify(%v) batch=%v single=%v", stage, src, got, want)
			}
			// A cookie for the wrong source must fail on both paths.
			other := a.Mint(netip.AddrFrom4([4]byte{192, 0, 2, 1}))
			if v.Verify(src, other) != a.Verify(src, other) {
				t.Fatalf("%s: wrong-source Verify diverges for %v", stage, src)
			}
			label := nc.EncodeLabel(c)
			if got, want := v.VerifyLabel(nc, src, label), nc.VerifyLabel(a, src, label); got != want || !got {
				t.Fatalf("%s: VerifyLabel(%v) batch=%v single=%v", stage, src, got, want)
			}
			addr, err := ic.Encode(c)
			if err != nil {
				t.Fatalf("%s: Encode: %v", stage, err)
			}
			if got, want := v.VerifyIP(ic, src, addr), ic.Verify(a, src, addr); got != want || !got {
				t.Fatalf("%s: VerifyIP(%v) batch=%v single=%v", stage, src, got, want)
			}
		}
	}

	check("epoch0")
	// Cookies minted before a rotation must stay valid on both paths.
	pre := a.Mint(srcs[0])
	var key2 [KeySize]byte
	key2[0] = 0xAA
	a.RotateWithKey(key2)
	check("epoch1")
	v := NewBatchVerifier()
	v.Reset(a)
	if !v.Verify(srcs[0], pre) || !a.Verify(srcs[0], pre) {
		t.Fatal("pre-rotation cookie rejected after one rotation")
	}
}

func TestVerifyBatchSlices(t *testing.T) {
	var key [KeySize]byte
	key[5] = 9
	a := NewAuthenticatorWithKey(key)
	srcs := []netip.Addr{
		netip.MustParseAddr("10.0.0.1"),
		netip.MustParseAddr("10.0.0.2"),
		netip.MustParseAddr("10.0.0.3"),
	}
	cookies := []Cookie{a.Mint(srcs[0]), {}, a.Mint(srcs[2])}
	cookies[1][3] = 0xFF // forged
	ok := make([]bool, 3)
	if err := a.VerifyBatch(srcs, cookies, ok); err != nil {
		t.Fatal(err)
	}
	if !ok[0] || ok[1] || !ok[2] {
		t.Fatalf("VerifyBatch = %v, want [true false true]", ok)
	}
	if err := a.VerifyBatch(srcs, cookies, ok[:2]); err == nil {
		t.Fatal("length mismatch not reported")
	}
}
