package cookie

import (
	"crypto/md5"
	"encoding/hex"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSipHash128Vectors pins the SipHash-2-4-128 core against the reference
// implementation's vectors_sip128 (key 000102...0f, message 000102...).
func TestSipHash128Vectors(t *testing.T) {
	want := map[int]string{
		0:  "a3817f04ba25a8e66df67214c7550293",
		1:  "da87c1d86b99af44347659119b22fc45",
		4:  "f88164c12d9c8faf7d0f6e7c7bcd5579",
		8:  "3b62a9ba6258f5610f83e264f31497b4",
		15: "5493e99933b0a8117e08ec0f97cfc3d9",
		16: "6ee2a4ca67b054bbfd3315bf85230577",
	}
	var keyBytes [16]byte
	for i := range keyBytes {
		keyBytes[i] = byte(i)
	}
	k0 := uint64(0x0706050403020100)
	k1 := uint64(0x0f0e0d0c0b0a0908)
	for n, hexWant := range want {
		msg := make([]byte, n)
		for i := range msg {
			msg[i] = byte(i)
		}
		lo, hi := siphash128(k0, k1, msg)
		var out [16]byte
		for i := 0; i < 8; i++ {
			out[i] = byte(lo >> (8 * i))
			out[8+i] = byte(hi >> (8 * i))
		}
		if got := hex.EncodeToString(out[:]); got != hexWant {
			t.Errorf("siphash128(len %d) = %s, want %s", n, got, hexWant)
		}
	}
}

// TestMD5SchemeMatchesReference checks the default scheme against the
// paper's formula computed independently: c = MD5(key76 ‖ src_ip) with the
// first bit overwritten by the epoch parity. This is the cross-check that
// the Open/MACScheme redesign left the historical cookie bytes untouched.
func TestMD5SchemeMatchesReference(t *testing.T) {
	var key [KeySize]byte
	for i := range key {
		key[i] = byte(i * 3)
	}
	a, err := Open(Options{Key: &key})
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []netip.Addr{
		netip.MustParseAddr("10.1.2.3"),
		netip.MustParseAddr("192.0.2.250"),
		netip.MustParseAddr("2001:db8::1234"),
	} {
		var in []byte
		in = append(in, key[:]...)
		if src.Is4() {
			b := src.As4()
			in = append(in, b[:]...)
		} else {
			b := src.As16()
			in = append(in, b[:]...)
		}
		ref := md5.Sum(in)
		ref[0] = ref[0] & 0x7F // epoch 0 parity
		if got := a.Mint(src); got != Cookie(ref) {
			t.Errorf("Mint(%v) = %x, want reference MD5 %x", src, got, ref)
		}
	}
}

func TestMACByName(t *testing.T) {
	for name, want := range map[string]MACScheme{"": MD5, "md5": MD5, "siphash": SipHash} {
		got, err := MACByName(name)
		if err != nil || got != want {
			t.Errorf("MACByName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := MACByName("blake3"); err == nil {
		t.Error("MACByName(blake3) should fail")
	}
}

// TestSchemeRoundTrip exercises mint/verify, rotation grace, and
// cross-scheme rejection for both built-in schemes.
func TestSchemeRoundTrip(t *testing.T) {
	var key [KeySize]byte
	key[0] = 7
	src := netip.MustParseAddr("10.0.0.9")
	for _, mac := range []MACScheme{MD5, SipHash} {
		a, err := Open(Options{Key: &key, MAC: mac})
		if err != nil {
			t.Fatal(err)
		}
		c := a.Mint(src)
		if !a.Verify(src, c) {
			t.Fatalf("%s: minted cookie does not verify", mac.Name())
		}
		if a.Verify(netip.MustParseAddr("10.0.0.10"), c) {
			t.Fatalf("%s: cookie verifies for the wrong source", mac.Name())
		}
		var next [KeySize]byte
		next[0] = 9
		a.RotateWithKey(next)
		if !a.Verify(src, c) {
			t.Fatalf("%s: previous-epoch cookie rejected inside the grace window", mac.Name())
		}
	}
	// The two schemes must disagree: a SipHash cookie must not verify
	// under an MD5 ring with the same key, and vice versa.
	am, _ := Open(Options{Key: &key})
	as, _ := Open(Options{Key: &key, MAC: SipHash})
	if am.Verify(src, as.Mint(src)) || as.Verify(src, am.Mint(src)) {
		t.Error("cookies verify across schemes sharing a key")
	}
}

// TestVerifyAllocs pins the single-packet and batch verify paths at zero
// allocations for both built-in schemes — the cookie half of the
// zero-allocation fast path.
func TestVerifyAllocs(t *testing.T) {
	var key [KeySize]byte
	key[5] = 42
	src := netip.MustParseAddr("172.16.33.44")
	for _, mac := range []MACScheme{MD5, SipHash} {
		a, err := Open(Options{Key: &key, MAC: mac})
		if err != nil {
			t.Fatal(err)
		}
		c := a.Mint(src)
		if n := testing.AllocsPerRun(200, func() {
			if !a.Verify(src, c) {
				t.Fatal("verify failed")
			}
		}); n != 0 {
			t.Errorf("%s: Authenticator.Verify allocates %.1f/op, want 0", mac.Name(), n)
		}
		if n := testing.AllocsPerRun(200, func() { a.Mint(src) }); n != 0 {
			t.Errorf("%s: Authenticator.Mint allocates %.1f/op, want 0", mac.Name(), n)
		}
		bv := NewBatchVerifier()
		bv.Reset(a)
		if n := testing.AllocsPerRun(200, func() {
			if !bv.Verify(src, c) {
				t.Fatal("batch verify failed")
			}
		}); n != 0 {
			t.Errorf("%s: BatchVerifier.Verify allocates %.1f/op, want 0", mac.Name(), n)
		}
	}
}

// TestStateFileSchemeTag checks the scheme round-trip through keyring
// persistence: MD5 rings keep the historical untagged format, SipHash rings
// carry a mac line, and both reopen under the right scheme.
func TestStateFileSchemeTag(t *testing.T) {
	dir := t.TempDir()
	src := netip.MustParseAddr("10.2.3.4")
	var key [KeySize]byte
	key[1] = 11

	md5Path := filepath.Join(dir, "ring-md5")
	am, err := Open(Options{Key: &key, StateFile: md5Path})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(md5Path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(blob), "mac ") {
		t.Errorf("default-scheme state file carries a mac line:\n%s", blob)
	}
	if len(strings.Split(strings.TrimSpace(string(blob)), "\n")) != 5 {
		t.Errorf("default-scheme state file is not the historical 5-line format:\n%s", blob)
	}

	sipPath := filepath.Join(dir, "ring-sip")
	as, err := Open(Options{Key: &key, MAC: SipHash, StateFile: sipPath})
	if err != nil {
		t.Fatal(err)
	}
	blob, err = os.ReadFile(sipPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "mac siphash") {
		t.Errorf("siphash state file missing mac tag:\n%s", blob)
	}
	c := as.Mint(src)

	// Reopen both; the scheme must come back from the file, not Options.
	am2, err := Open(Options{StateFile: md5Path})
	if err != nil {
		t.Fatal(err)
	}
	if am2.MAC() != MD5 || am2.Mint(src) != am.Mint(src) {
		t.Error("md5 ring did not reopen byte-identically")
	}
	as2, err := Open(Options{StateFile: sipPath})
	if err != nil {
		t.Fatal(err)
	}
	if as2.MAC() != SipHash || !as2.Verify(src, c) {
		t.Error("siphash ring did not reopen under its tagged scheme")
	}

	// A follower handle adopts the file's scheme too.
	follower, err := Open(Options{StateFile: sipPath, Follow: true})
	if err != nil {
		t.Fatal(err)
	}
	if follower.MAC() != SipHash || !follower.Verify(src, c) {
		t.Error("follower did not adopt the tagged scheme")
	}

	// State/Adopt carry the scheme: a fresh md5 authenticator pushed the
	// siphash ring's state must verify its cookies afterwards.
	st := as.State()
	if st.Scheme != "siphash" {
		t.Fatalf("State().Scheme = %q, want siphash", st.Scheme)
	}
	if !am2.Adopt(st) || !am2.Verify(src, c) {
		t.Error("Adopt did not install the pushed scheme")
	}
	if am2.Adopt(KeyState{Epoch: st.Epoch + 1, Scheme: "nope"}) {
		t.Error("Adopt accepted an unknown scheme")
	}
}
