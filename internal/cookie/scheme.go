package cookie

// Pluggable cookie MAC schemes. The paper fixes the cookie MAC as MD5 over
// key76 ‖ src_ip (§III-E's 80-byte single-block argument); MACScheme keeps
// that computation the default while letting deployments swap in a cheaper
// keyed hash. The guard's whole deployability case is that one verification
// stays below the per-packet syscall cost, and on modern cores a short-input
// SipHash beats MD5 by a wide margin — BENCH_engine.json records both
// against the measured syscall floor.
//
// A scheme computes the raw 16-byte MAC only. Epoch-parity stamping of the
// first bit (the paper's generation indicator) happens in the ring, so every
// scheme composes with key rotation identically.

import (
	"crypto/md5"
	"encoding/binary"
	"fmt"
	"math/bits"
	"net/netip"
)

// MACScheme is a keyed MAC over a request's source address: the pluggable
// core of the cookie computation. Implementations must be pure functions of
// (key, src) — the ring applies the epoch-parity overwrite to c[0] after MAC
// returns — and must not retain key or c, so the hot path can pass
// stack-allocated storage.
type MACScheme interface {
	// Name is the scheme's stable identifier, used for the state-file
	// scheme tag, the gossip wire encoding, and `dnsguardd -cookie-mac`.
	Name() string
	// MAC fills c with the 16-byte MAC of src's packed address (4 bytes
	// for IPv4 and 4-in-6, 16 otherwise) under key.
	MAC(key *[KeySize]byte, src netip.Addr, c *Cookie)
}

// The built-in schemes.
var (
	// MD5 is the paper's cookie MAC: c = MD5(key76 ‖ src_ip). The default;
	// byte-identical to the historical computation.
	MD5 MACScheme = md5Scheme{}
	// SipHash is SipHash-2-4 with 128-bit output keyed by the first 16
	// bytes of key76 — a short-input keyed hash several times cheaper than
	// MD5 at the same cookie width.
	SipHash MACScheme = sipScheme{}
)

// MACByName resolves a scheme identifier. The empty string names the
// default (MD5), matching a state file with no scheme tag.
func MACByName(name string) (MACScheme, error) {
	switch name {
	case "", "md5":
		return MD5, nil
	case "siphash":
		return SipHash, nil
	}
	return nil, fmt.Errorf("cookie: unknown MAC scheme %q (want md5 or siphash)", name)
}

// srcBytes packs src the way every scheme hashes it: As4 for IPv4 and
// 4-in-6 sources (the paper's 76+4 = 80-byte block), As16 otherwise.
func srcBytes(src netip.Addr, b *[16]byte) int {
	if src.Is4() || src.Is4In6() {
		a := src.As4()
		return copy(b[:], a[:])
	}
	a := src.As16()
	return copy(b[:], a[:])
}

// md5Scheme is the paper's MAC.
type md5Scheme struct{}

func (md5Scheme) Name() string { return "md5" }

func (s md5Scheme) MAC(key *[KeySize]byte, src netip.Addr, c *Cookie) { md5MAC(key, src, c) }

// md5MAC hashes key ‖ src into c over a stack buffer, producing exactly the
// bytes of md5.Sum(key76 ‖ As4/As16(src)).
func md5MAC(key *[KeySize]byte, src netip.Addr, c *Cookie) {
	var buf [KeySize + 16]byte
	copy(buf[:KeySize], key[:])
	var sb [16]byte
	n := KeySize + srcBytes(src, &sb)
	copy(buf[KeySize:], sb[:])
	*c = md5.Sum(buf[:n])
}

// sipScheme is SipHash-2-4-128.
type sipScheme struct{}

func (sipScheme) Name() string { return "siphash" }

func (s sipScheme) MAC(key *[KeySize]byte, src netip.Addr, c *Cookie) { sipMAC(key, src, c) }

// sipMAC computes SipHash-2-4 with 128-bit output over the packed source
// address, keyed by key[0:16] interpreted little-endian.
func sipMAC(key *[KeySize]byte, src netip.Addr, c *Cookie) {
	k0 := binary.LittleEndian.Uint64(key[0:8])
	k1 := binary.LittleEndian.Uint64(key[8:16])
	var m [16]byte
	n := srcBytes(src, &m)
	lo, hi := siphash128(k0, k1, m[:n])
	binary.LittleEndian.PutUint64(c[0:8], lo)
	binary.LittleEndian.PutUint64(c[8:16], hi)
}

// siphash128 is the reference SipHash-2-4 in 128-bit output mode (v1 ^= 0xee
// at init, v2 ^= 0xee for the first finalization, v1 ^= 0xdd for the
// second). msg is at most 16 bytes here, but the loop handles any length.
func siphash128(k0, k1 uint64, msg []byte) (lo, hi uint64) {
	v0 := k0 ^ 0x736f6d6570736575
	v1 := k1 ^ 0x646f72616e646f6d
	v2 := k0 ^ 0x6c7967656e657261
	v3 := k1 ^ 0x7465646279746573
	v1 ^= 0xee

	b := msg
	for len(b) >= 8 {
		m := binary.LittleEndian.Uint64(b)
		v3 ^= m
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
		v0 ^= m
		b = b[8:]
	}
	var last uint64
	for i := len(b) - 1; i >= 0; i-- {
		last = last<<8 | uint64(b[i])
	}
	last |= uint64(len(msg)) << 56
	v3 ^= last
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0 ^= last

	v2 ^= 0xee
	for i := 0; i < 4; i++ {
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	}
	lo = v0 ^ v1 ^ v2 ^ v3
	v1 ^= 0xdd
	for i := 0; i < 4; i++ {
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	}
	hi = v0 ^ v1 ^ v2 ^ v3
	return lo, hi
}

func sipRound(v0, v1, v2, v3 uint64) (uint64, uint64, uint64, uint64) {
	v0 += v1
	v1 = bits.RotateLeft64(v1, 13)
	v1 ^= v0
	v0 = bits.RotateLeft64(v0, 32)
	v2 += v3
	v3 = bits.RotateLeft64(v3, 16)
	v3 ^= v2
	v0 += v3
	v3 = bits.RotateLeft64(v3, 21)
	v3 ^= v0
	v2 += v1
	v1 = bits.RotateLeft64(v1, 17)
	v1 ^= v2
	v2 = bits.RotateLeft64(v2, 32)
	return v0, v1, v2, v3
}

// schemeTag is the state-file tag for a ring's scheme: empty for the
// default MD5 so rings written by older builds keep parsing and rings using
// the default stay byte-identical to the historical file format.
func schemeTag(m MACScheme) string {
	if m == nil || m == MD5 {
		return ""
	}
	return m.Name()
}
