package cookie

import (
	"errors"
	"net/netip"
	"path/filepath"
	"sync"
	"testing"
)

func testKey(fill byte) (k [KeySize]byte) {
	for i := range k {
		k[i] = fill
	}
	return k
}

func TestOpenKeyringHandleFollowsOwner(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keyring")
	owner, err := OpenKeyring(path)
	if err != nil {
		t.Fatal(err)
	}
	follower, err := OpenKeyringHandle(path)
	if err != nil {
		t.Fatal(err)
	}
	src := netip.MustParseAddr("192.0.2.77")

	// Cross-mint: either side's cookie verifies on the other.
	if !follower.Verify(src, owner.Mint(src)) {
		t.Fatal("follower rejected owner's cookie")
	}
	if !owner.Verify(src, follower.Mint(src)) {
		t.Fatal("owner rejected follower's cookie")
	}

	// A follower must not rotate the shared ring.
	if err := follower.Rotate(); !errors.Is(err, ErrFollowHandle) {
		t.Fatalf("follower.Rotate() = %v, want ErrFollowHandle", err)
	}

	// Owner rotates; the follower is stale until Reload, then catches up.
	preRotate := owner.Mint(src)
	if err := owner.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := follower.Reload(); err != nil {
		t.Fatal(err)
	}
	if follower.Epoch() != owner.Epoch() {
		t.Fatalf("follower epoch %d != owner epoch %d after Reload", follower.Epoch(), owner.Epoch())
	}
	if !follower.Verify(src, preRotate) {
		t.Fatal("follower rejected pre-rotate cookie within the grace epoch")
	}
	if !follower.Verify(src, owner.Mint(src)) {
		t.Fatal("follower rejected owner's post-rotate cookie")
	}
}

func TestOpenKeyringHandleRequiresExistingFile(t *testing.T) {
	if _, err := OpenKeyringHandle(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("OpenKeyringHandle created a missing keyring")
	}
}

func TestAdoptNeverRegresses(t *testing.T) {
	a := NewAuthenticatorWithKey(testKey(1))
	a.RotateWithKey(testKey(2))
	a.RotateWithKey(testKey(3)) // epoch 2
	stale := KeyState{Epoch: 1}
	if a.Adopt(stale) {
		t.Fatal("Adopt accepted a stale epoch")
	}
	if a.Epoch() != 2 {
		t.Fatalf("epoch moved to %d on rejected Adopt", a.Epoch())
	}
	fresh := KeyState{Epoch: 5}
	fresh.Keys[0] = testKey(9)
	fresh.Keys[1] = testKey(8)
	if !a.Adopt(fresh) {
		t.Fatal("Adopt rejected a fresh epoch")
	}
	if a.Epoch() != 5 || a.State().Keys != fresh.Keys {
		t.Fatal("Adopt did not install the published state")
	}
}

// TestConcurrentVerifyDuringRotateAcrossHandles is the fleet-consistency
// race: two keyring handles on the same state file, one rotating while
// clients verify on the other. Run under -race this exercises the locking;
// the correctness half pins the paper's grace-epoch contract — a cookie
// minted just before a rotation must keep verifying on the *other* handle
// once it reloads, through every rotation in the schedule.
func TestConcurrentVerifyDuringRotateAcrossHandles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keyring")
	owner, err := OpenKeyring(path)
	if err != nil {
		t.Fatal(err)
	}
	follower, err := OpenKeyringHandle(path)
	if err != nil {
		t.Fatal(err)
	}
	src := netip.MustParseAddr("10.128.3.9")

	const rotations = 64
	var wg sync.WaitGroup
	errc := make(chan error, 2)

	// Writer: mint under the current epoch, rotate, and check the pre-rotate
	// cookie still verifies locally (grace epoch on the owner itself).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rotations; i++ {
			c := owner.Mint(src)
			if err := owner.Rotate(); err != nil {
				errc <- err
				return
			}
			if !owner.Verify(src, c) {
				errc <- errors.New("owner rejected its own pre-rotate cookie")
				return
			}
		}
	}()

	// Reader: hammer the follower with verifications of its own freshly
	// minted cookies while reloading the state file the owner keeps
	// rewriting. A follower-minted cookie must always verify on the follower
	// (its ring is internally consistent at every instant), and Reload must
	// never regress the epoch.
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := follower.Epoch()
		for i := 0; i < 4*rotations; i++ {
			if !follower.Verify(src, follower.Mint(src)) {
				errc <- errors.New("follower rejected its own cookie")
				return
			}
			if err := follower.Reload(); err != nil {
				errc <- err
				return
			}
			if e := follower.Epoch(); e < last {
				errc <- errors.New("follower epoch regressed on Reload")
				return
			} else {
				last = e
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Settle: after the dust clears the follower adopts the final ring and
	// the grace-epoch contract holds across handles one more time.
	preRotate := owner.Mint(src)
	if err := owner.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := follower.Reload(); err != nil {
		t.Fatal(err)
	}
	if !follower.Verify(src, preRotate) {
		t.Fatal("follower rejected pre-rotate cookie after concurrent rotation storm")
	}
}
