package cookie

import (
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func testAuth() *Authenticator {
	var key [KeySize]byte
	for i := range key {
		key[i] = byte(i * 7)
	}
	return NewAuthenticatorWithKey(key)
}

func TestMintVerify(t *testing.T) {
	a := testAuth()
	src := netip.MustParseAddr("10.1.2.3")
	c := a.Mint(src)
	if !a.Verify(src, c) {
		t.Fatal("cookie rejected for its own source")
	}
	if a.Verify(netip.MustParseAddr("10.1.2.4"), c) {
		t.Fatal("cookie accepted for a different source")
	}
}

func TestCookiesDifferPerSource(t *testing.T) {
	a := testAuth()
	seen := map[Cookie]bool{}
	for i := 0; i < 256; i++ {
		src := netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)})
		c := a.Mint(src)
		if seen[c] {
			t.Fatalf("duplicate cookie for %v", src)
		}
		seen[c] = true
	}
}

func TestDifferentKeysDifferentCookies(t *testing.T) {
	a1 := testAuth()
	var key2 [KeySize]byte
	key2[0] = 0xAA
	a2 := NewAuthenticatorWithKey(key2)
	src := netip.MustParseAddr("10.1.2.3")
	if a1.Mint(src) == a2.Mint(src) {
		t.Fatal("different keys produced identical cookies")
	}
	if a2.Verify(src, a1.Mint(src)) {
		t.Fatal("cookie from another guard accepted")
	}
}

func TestRotationAcceptsPreviousGeneration(t *testing.T) {
	a := testAuth()
	src := netip.MustParseAddr("192.0.2.55")
	old := a.Mint(src)

	var k1 [KeySize]byte
	k1[10] = 1
	a.RotateWithKey(k1)
	if !a.Verify(src, old) {
		t.Fatal("previous-generation cookie rejected after one rotation")
	}
	fresh := a.Mint(src)
	if !a.Verify(src, fresh) {
		t.Fatal("current cookie rejected")
	}
	if fresh == old {
		t.Fatal("rotation did not change the cookie")
	}

	var k2 [KeySize]byte
	k2[20] = 2
	a.RotateWithKey(k2)
	if a.Verify(src, old) {
		t.Fatal("stale cookie (two rotations old) accepted")
	}
	if !a.Verify(src, fresh) {
		t.Fatal("one-rotation-old cookie rejected")
	}
}

func TestGenerationBitMatchesParity(t *testing.T) {
	a := testAuth()
	src := netip.MustParseAddr("10.0.0.1")
	if got := a.Mint(src)[0] >> 7; got != 0 {
		t.Fatalf("gen-0 cookie has generation bit %d", got)
	}
	var k [KeySize]byte
	a.RotateWithKey(k)
	if got := a.Mint(src)[0] >> 7; got != 1 {
		t.Fatalf("gen-1 cookie has generation bit %d", got)
	}
}

func TestIsZero(t *testing.T) {
	var c Cookie
	if !c.IsZero() {
		t.Fatal("zero cookie not IsZero")
	}
	c[15] = 1
	if c.IsZero() {
		t.Fatal("nonzero cookie IsZero")
	}
}

func TestNSLabelRoundTrip(t *testing.T) {
	a := testAuth()
	nc := NSCodec{}
	src := netip.MustParseAddr("203.0.113.9")
	label := nc.EncodeLabel(a.Mint(src))
	if len(label) != 10 {
		t.Fatalf("label %q has length %d, want 10 (paper's encoding)", label, len(label))
	}
	if !strings.HasPrefix(label, "pr") {
		t.Fatalf("label %q lacks prefix", label)
	}
	if !nc.IsCookieLabel(label) {
		t.Fatal("IsCookieLabel rejected own label")
	}
	if !nc.VerifyLabel(a, src, label) {
		t.Fatal("VerifyLabel rejected own label")
	}
	if nc.VerifyLabel(a, netip.MustParseAddr("203.0.113.10"), label) {
		t.Fatal("VerifyLabel accepted label for wrong source")
	}
}

func TestNSLabelRejectsNonCookies(t *testing.T) {
	nc := NSCodec{}
	for _, label := range []string{"", "www", "pr", "pra1b2c3", "pra1b2c3d4e5", "prZZZZZZZZ", "xxa1b2c3d4"} {
		if nc.IsCookieLabel(label) {
			t.Errorf("IsCookieLabel(%q) = true", label)
		}
	}
}

func TestNSLabelCaseInsensitive(t *testing.T) {
	a := testAuth()
	nc := NSCodec{}
	src := netip.MustParseAddr("203.0.113.9")
	label := strings.ToUpper(nc.EncodeLabel(a.Mint(src)))
	if !nc.VerifyLabel(a, src, label) {
		t.Fatal("uppercase label rejected (DNS names are case-insensitive)")
	}
}

func TestNSLabelSurvivesRotation(t *testing.T) {
	a := testAuth()
	nc := NSCodec{}
	src := netip.MustParseAddr("198.51.100.77")
	label := nc.EncodeLabel(a.Mint(src))
	var k [KeySize]byte
	k[3] = 9
	a.RotateWithKey(k)
	if !nc.VerifyLabel(a, src, label) {
		t.Fatal("label from previous generation rejected")
	}
	var k2 [KeySize]byte
	k2[4] = 8
	a.RotateWithKey(k2)
	if nc.VerifyLabel(a, src, label) {
		t.Fatal("label two generations old accepted")
	}
}

func TestCustomPrefix(t *testing.T) {
	a := testAuth()
	nc := NSCodec{Prefix: "gx"}
	src := netip.MustParseAddr("10.0.0.1")
	label := nc.EncodeLabel(a.Mint(src))
	if !strings.HasPrefix(label, "gx") {
		t.Fatalf("label %q", label)
	}
	if (NSCodec{}).IsCookieLabel(label) {
		t.Fatal("default codec accepted custom-prefix label")
	}
}

func TestIPCodecEncodeVerify(t *testing.T) {
	a := testAuth()
	ic := IPCodec{Subnet: netip.MustParsePrefix("1.2.3.0/24")}
	src := netip.MustParseAddr("10.20.30.40")
	addr, err := ic.Encode(a.Mint(src))
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !ic.Subnet.Contains(addr) {
		t.Fatalf("cookie address %v outside subnet", addr)
	}
	last := addr.As4()[3]
	if last == 0 || last == 255 {
		t.Fatalf("cookie address %v uses network/broadcast byte", addr)
	}
	if !ic.Verify(a, src, addr) {
		t.Fatal("Verify rejected own encoding")
	}
	if ic.Verify(a, netip.MustParseAddr("10.20.30.41"), addr) {
		t.Fatal("Verify accepted wrong source")
	}
	if ic.Verify(a, src, netip.MustParseAddr("9.9.9.9")) {
		t.Fatal("Verify accepted address outside subnet")
	}
}

func TestIPCodecRange(t *testing.T) {
	tests := []struct {
		prefix string
		want   uint32
		ok     bool
	}{
		{"1.2.3.0/24", 254, true},
		{"1.2.0.0/16", 65534, true},
		{"1.2.3.4/31", 0, false},
		{"1.2.3.4/32", 0, false},
	}
	for _, tt := range tests {
		ic := IPCodec{Subnet: netip.MustParsePrefix(tt.prefix)}
		got, err := ic.Range()
		if tt.ok && (err != nil || got != tt.want) {
			t.Errorf("Range(%s) = %d, %v; want %d", tt.prefix, got, err, tt.want)
		}
		if !tt.ok && err == nil {
			t.Errorf("Range(%s) accepted", tt.prefix)
		}
	}
}

func TestIPCodecSurvivesRotation(t *testing.T) {
	a := testAuth()
	ic := IPCodec{Subnet: netip.MustParsePrefix("1.2.3.0/24")}
	src := netip.MustParseAddr("10.20.30.40")
	addr, _ := ic.Encode(a.Mint(src))
	var k [KeySize]byte
	k[9] = 3
	a.RotateWithKey(k)
	if !ic.Verify(a, src, addr) {
		t.Fatal("IP cookie from previous generation rejected")
	}
}

func TestPropertyLabelRoundTrip(t *testing.T) {
	a := testAuth()
	nc := NSCodec{}
	f := func(b [4]byte) bool {
		src := netip.AddrFrom4(b)
		label := nc.EncodeLabel(a.Mint(src))
		return nc.VerifyLabel(a, src, label)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyVerifyRejectsRandomCookies(t *testing.T) {
	a := testAuth()
	src := netip.MustParseAddr("10.0.0.1")
	r := rand.New(rand.NewSource(1))
	hits := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		var c Cookie
		r.Read(c[:])
		if a.Verify(src, c) {
			hits++
		}
	}
	if hits > 0 {
		t.Fatalf("%d of %d random cookies accepted", hits, trials)
	}
}

func TestIPv6SourcesSupported(t *testing.T) {
	a := testAuth()
	s1 := netip.MustParseAddr("2001:db8::1")
	s2 := netip.MustParseAddr("2001:db8::2")
	if a.Mint(s1) == a.Mint(s2) {
		t.Fatal("v6 sources collide")
	}
	if !a.Verify(s1, a.Mint(s1)) {
		t.Fatal("v6 cookie rejected")
	}
}
