// Package cpumodel holds the per-operation CPU cost constants that let the
// simulator reproduce the paper's throughput numbers (Tables III, Figures
// 5–7) on virtual hardware.
//
// # Calibration
//
// The paper's own analysis (§IV-D) derives throughput from two quantities:
// packets transferred and cookie computations per serviced request. Working
// back from Table III's measured rates on the authors' 2.4 GHz P4 guard:
//
//	scheme            packets  cookies  measured    implied cost/req
//	NS name (miss)       6        2      84.2K/s      11.88 µs
//	fabricated (miss)    8        3      60.1K/s      16.64 µs
//	modified (miss)      6        2      84.3K/s      11.86 µs
//	non-TCP (hit)        4        1     110.1K/s    (ANS-bound)
//	TCP                ~10-12     2      22.7K/s      44.0 µs
//
// Solving with Figure 6's constraint that the guard holds 100K legit req/s
// at a 200K/s attack (drop cost ≈ 2.25 µs = recv + check) and 80K at 250K:
//
//	PacketOp    ≈ 1.10 µs   (one UDP receive or send through the guard)
//	CookieCheck ≈ 1.15 µs   (MD5 + compare)
//	CookieGrant ≈ 4.10 µs   (MD5 + response fabrication + RL1 bookkeeping)
//	TCPSegment  ≈ 4.10 µs   (kernel TCP path per segment)
//
// Figure 7a's decline from 22K to 11K req/s between 20 and 6000 concurrent
// connections implies connection-table overhead doubling the per-segment
// cost at 6000 conns: slope 1/6000 per connection.
//
// The BIND server saturates at 14K req/s UDP (71.4 µs/req) and 2.2K req/s
// TCP; the authors' ANS simulator at 110K req/s (9.1 µs/req); the LRS's TCP
// client path at 0.5K req/s (2 ms/req).
//
// Everything downstream (the experiment harness) uses these constants; no
// experiment is tuned individually.
package cpumodel

import "time"

// GuardCosts are the DNS guard's per-operation costs.
type GuardCosts struct {
	// PacketOp is one UDP datagram received or sent by the guard.
	PacketOp time.Duration
	// CookieCheck verifies a cookie (one MD5 plus compare/decode).
	CookieCheck time.Duration
	// CookieGrant mints a cookie and fabricates the response carrying it.
	CookieGrant time.Duration
	// TCReply builds a truncation-redirect response (no MD5 — cheaper
	// than a cookie grant; this is the guard's reply to every UDP packet
	// in Figure 7b's flood).
	TCReply time.Duration
	// Rewrite restores an original question from a cookie query or strips
	// a cookie extension before forwarding.
	Rewrite time.Duration
	// TCPSegment is the kernel TCP proxy's cost to process one segment.
	TCPSegment time.Duration
	// ConnTableSlope is the fractional per-open-connection increase in
	// TCPSegment cost (connection-table management, Figure 7a).
	ConnTableSlope float64
}

// ServerCosts are per-request service times for the server models.
type ServerCosts struct {
	// BINDUDP is BIND 9.3.1's per-request cost over UDP (14K req/s).
	BINDUDP time.Duration
	// BINDTCP is BIND's per-request cost over TCP (2.2K req/s).
	BINDTCP time.Duration
	// ANSSim is the authors' ANS simulator per-request cost (110K req/s).
	ANSSim time.Duration
	// LRSTCPClient is the LRS-side cost to complete one TCP request
	// (0.5K req/s ceiling observed in Figure 5).
	LRSTCPClient time.Duration
}

// Costs bundles all calibrated constants.
type Costs struct {
	Guard  GuardCosts
	Server ServerCosts
}

// Default2006 returns the constants calibrated against the paper's testbed
// (DELL 600SC guard, DELL 400SC servers, Linux 2.4.31, gigabit Ethernet).
func Default2006() Costs {
	return Costs{
		Guard: GuardCosts{
			PacketOp:       1100 * time.Nanosecond,
			CookieCheck:    1150 * time.Nanosecond,
			CookieGrant:    4100 * time.Nanosecond,
			TCReply:        300 * time.Nanosecond,
			Rewrite:        50 * time.Nanosecond,
			TCPSegment:     4100 * time.Nanosecond,
			ConnTableSlope: 1.0 / 6000.0,
		},
		Server: ServerCosts{
			BINDUDP:      71400 * time.Nanosecond,
			BINDTCP:      455 * time.Microsecond,
			ANSSim:       9100 * time.Nanosecond,
			LRSTCPClient: 2 * time.Millisecond,
		},
	}
}

// PerRequestGuardCost computes the analytic guard cost for a request that
// moves packets datagrams through the guard with checks cookie verifications
// and grants cookie creations — used by tests to cross-check the simulated
// totals against the model.
func (g GuardCosts) PerRequestGuardCost(packets, checks, grants int) time.Duration {
	return time.Duration(packets)*g.PacketOp +
		time.Duration(checks)*g.CookieCheck +
		time.Duration(grants)*g.CookieGrant
}
