package cpumodel

import (
	"testing"
	"time"
)

func TestDefault2006MatchesPaperAccounting(t *testing.T) {
	c := Default2006()
	g := c.Guard

	// §IV-D's packet/cookie accounting must land on Table III's measured
	// throughputs within 12%.
	cases := []struct {
		name            string
		packets, checks int
		grants          int
		extraChecks     int // extra cookie computations (fabricated-IP path)
		wantThroughput  float64
	}{
		{"ns-name miss (6 pkts, grant+check)", 6, 1, 1, 0, 84200},
		{"modified miss (6 pkts, grant+check)", 6, 1, 1, 0, 84300},
		{"fabricated miss (8 pkts, grant+3 checks)", 8, 3, 1, 0, 60100},
	}
	for _, tc := range cases {
		cost := g.PerRequestGuardCost(tc.packets, tc.checks, tc.grants)
		got := 1e9 / float64(cost.Nanoseconds())
		ratio := got / tc.wantThroughput
		if ratio < 0.88 || ratio > 1.12 {
			t.Errorf("%s: model gives %.0f req/s, paper %.0f (ratio %.2f)",
				tc.name, got, tc.wantThroughput, ratio)
		}
	}

	// Cache-hit path (4 pkts + 1 check) must exceed the ANS simulator's
	// 110K ceiling — the guard is not the bottleneck on hits.
	hit := g.PerRequestGuardCost(4, 1, 0)
	if cap := 1e9 / float64(hit.Nanoseconds()); cap < 110000 {
		t.Errorf("hit-path capacity %.0f < ANS ceiling 110K", cap)
	}

	// TCP request: ~10 segments at TCPSegment each ≈ 22.7K req/s.
	tcp := time.Duration(10) * g.TCPSegment
	if got := 1e9 / float64(tcp.Nanoseconds()); got < 20000 || got > 27000 {
		t.Errorf("TCP model gives %.0f req/s, paper 22.7K", got)
	}

	// Figure 6's drop cost: recv + check ≈ 2.25µs lets the guard absorb
	// a 250K/s flood with 0.44 CPU-seconds to spare.
	drop := g.PacketOp + g.CookieCheck
	if spent := 250000 * drop.Seconds(); spent > 0.62 {
		t.Errorf("drop path consumes %.2f CPU at 250K/s; Figure 6 needs <= ~0.6", spent)
	}

	// Server constants.
	if got := 1e9 / float64(c.Server.BINDUDP.Nanoseconds()); got < 13000 || got > 15000 {
		t.Errorf("BIND UDP capacity %.0f, paper 14K", got)
	}
	if got := 1e9 / float64(c.Server.ANSSim.Nanoseconds()); got < 105000 || got > 115000 {
		t.Errorf("ANS simulator capacity %.0f, paper 110K", got)
	}
	if got := 1e9 / float64(c.Server.LRSTCPClient.Nanoseconds()); got != 500 {
		t.Errorf("LRS TCP client capacity %.0f, paper 0.5K", got)
	}

	// Figure 7a's conn-table slope: cost doubles at 6000 connections.
	if f := 1 + g.ConnTableSlope*6000; f < 1.9 || f > 2.1 {
		t.Errorf("conn-table factor at 6000 = %.2f, want ~2", f)
	}
}

func TestPerRequestGuardCostAdds(t *testing.T) {
	g := Default2006().Guard
	got := g.PerRequestGuardCost(2, 1, 1)
	want := 2*g.PacketOp + g.CookieCheck + g.CookieGrant
	if got != want {
		t.Fatalf("got %v, want %v", got, want)
	}
	if g.PerRequestGuardCost(0, 0, 0) != 0 {
		t.Fatal("zero ops must cost zero")
	}
}
