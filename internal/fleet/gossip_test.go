package fleet

import (
	"testing"
	"time"
)

// TestGossipConvergesWithoutController: a rotation seeded while the
// controller is down reaches every site over pure peer-to-peer anti-entropy,
// in bounded rounds, and the verified population rides the grace epoch
// (its cookies are minted under the controller's now-stale ring).
func TestGossipConvergesWithoutController(t *testing.T) {
	pack := Pack{
		Name:        "gossip-ctrl-down",
		Sites:       4,
		Sources:     5_000,
		Rate:        800,
		PopDuration: 2 * time.Second,
		Gossip:      true,
		Events: []Event{
			{At: 400 * time.Millisecond, Kind: EventControllerDown},
			{At: 500 * time.Millisecond, Kind: EventRotate},
		},
		End: 2 * time.Second,
	}
	res, err := RunLab(LabConfig{Pack: pack, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range res.KeyEpochs {
		if e != 1 {
			t.Errorf("site %d final epoch %d, want 1", i, e)
		}
	}
	if res.GossipConvergeRounds < 0 {
		t.Fatal("rotation never converged")
	}
	// 4 sites: each contacts all 3 peers within 3 intervals; one extra
	// round covers the pull round-trip.
	if res.GossipConvergeRounds > 6 {
		t.Errorf("converged in %d rounds, want <= 6", res.GossipConvergeRounds)
	}
	if res.Population.Refused != 0 || res.Population.Granted != 0 {
		t.Errorf("population refused=%d granted=%d across the rotation, want 0/0",
			res.Population.Refused, res.Population.Granted)
	}
	if res.Population.Answered != res.Population.FlowsSent {
		t.Errorf("answered %d of %d flows", res.Population.Answered, res.Population.FlowsSent)
	}
}

// TestGossipConvergesThroughPartition: with one pairwise link severed for
// the whole run, the deterministic peer rotation routes the ring around the
// partition and the fleet still converges.
func TestGossipConvergesThroughPartition(t *testing.T) {
	pack := Pack{
		Name:        "gossip-partition",
		Sites:       3,
		Sources:     2_000,
		Rate:        400,
		PopDuration: 2 * time.Second,
		Gossip:      true,
		Events: []Event{
			{At: 100 * time.Millisecond, Kind: EventPartition, Site: 0, Peer: 1},
			{At: 500 * time.Millisecond, Kind: EventRotate},
		},
		End: 2 * time.Second,
	}
	res, err := RunLab(LabConfig{Pack: pack, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range res.KeyEpochs {
		if e != 1 {
			t.Errorf("site %d final epoch %d, want 1 (ring should route around the partition)", i, e)
		}
	}
	if res.GossipConvergeRounds < 0 || res.GossipConvergeRounds > 6 {
		t.Errorf("converge rounds = %d, want in [0,6]", res.GossipConvergeRounds)
	}
}

// TestGossipDeterminism: gossip runs (peer rotation, derived keys,
// convergence accounting) replay bit-identically under one seed and diverge
// under another.
func TestGossipDeterminism(t *testing.T) {
	pack := Pack{
		Name:        "gossip-det",
		Sites:       3,
		Sources:     2_000,
		Rate:        400,
		PopDuration: 1500 * time.Millisecond,
		Gossip:      true,
		Persist:     true,
		Events: []Event{
			{At: 300 * time.Millisecond, Kind: EventRotate},
			{At: 700 * time.Millisecond, Kind: EventUpgrade, Site: 1, Lag: 100 * time.Millisecond},
		},
		End: 1500 * time.Millisecond,
	}
	cfg := LabConfig{Pack: pack, Seed: 77}
	a, err := RunLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MetricsText != b.MetricsText {
		t.Error("same seed, different metrics export (gossip or upgrade nondeterminism)")
	}
	cfg.Seed = 78
	c, err := RunLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MetricsText == c.MetricsText {
		t.Error("different seeds produced identical metrics export")
	}
}
