package fleet

import (
	"fmt"
	"time"

	"dnsguard/internal/workload"
)

// Pack is a shipped fleet scenario: a population profile, an attack
// timeline, and a scripted sequence of catchment events. Packs are run by
// RunLab; `benchtab -run fleet` records one row per pack.
type Pack struct {
	// Name identifies the pack (make fleet-smoke, benchtab rows).
	Name string
	// Description is the one-line operator summary.
	Description string
	// Sites is the fleet width.
	Sites int
	// Sources is the verified-population size (Zipf ranks).
	Sources int
	// Rate is the population's aggregate flow rate (flows/s).
	Rate float64
	// PopDuration bounds population emission (from t=0), leaving the
	// horizon tail for in-flight replies so end-state accounting is exact.
	PopDuration time.Duration
	// AttackStart/AttackDuration/AttackRate script one spoofed flood
	// (workload.AttackPlain) against the anycast address.
	AttackStart    time.Duration
	AttackDuration time.Duration
	AttackRate     float64
	// Events is the scripted catchment timeline.
	Events []Event
	// ShiftAt/ShiftSite locate the pack's defining catchment shift for
	// moved-source accounting: the lab snapshots the population assignment
	// just before and after ShiftAt and reads the cold site's counters.
	// ShiftSite < 0 means the shift has no single cold site (site failure).
	ShiftAt   time.Duration
	ShiftSite int
	// End is the scenario horizon (before the lab's drain tail).
	End time.Duration
}

// Packs returns the shipped fleet scenarios.
func Packs() []Pack {
	return []Pack{
		{
			Name: "catchment-shift",
			Description: "BGP flap hands half the verified population to a cold site mid-attack; " +
				"then a rolling-upgrade drain and restore of site 0",
			Sites:          3,
			Sources:        120_000,
			Rate:           6000,
			PopDuration:    4500 * time.Millisecond,
			AttackStart:    1000 * time.Millisecond,
			AttackDuration: 3500 * time.Millisecond,
			AttackRate:     6000, // 50% spoof at the fleet's aggregate input
			Events: []Event{
				{At: 1500 * time.Millisecond, Kind: EventFlap, Site: 2, Frac: 0.5},
				{At: 2500 * time.Millisecond, Kind: EventDrain, Site: 0},
				{At: 3500 * time.Millisecond, Kind: EventRestore, Site: 0},
			},
			ShiftAt:   1500 * time.Millisecond,
			ShiftSite: 2,
			End:       4500 * time.Millisecond,
		},
		{
			Name: "site-failure",
			Description: "site 1 dies mid-attack; its catchment blackholes until the BGP withdrawal " +
				"propagates, then redistributes; the site later recovers",
			Sites:          3,
			Sources:        60_000,
			Rate:           4000,
			PopDuration:    4000 * time.Millisecond,
			AttackStart:    1000 * time.Millisecond,
			AttackDuration: 3000 * time.Millisecond,
			AttackRate:     4000,
			Events: []Event{
				{At: 1500 * time.Millisecond, Kind: EventFail, Site: 1, Lag: 300 * time.Millisecond},
				{At: 3000 * time.Millisecond, Kind: EventRestore, Site: 1},
			},
			ShiftAt:   1800 * time.Millisecond, // the withdrawal, not the failure
			ShiftSite: -1,
			End:       4000 * time.Millisecond,
		},
	}
}

// PackByName returns the shipped pack with that name.
func PackByName(name string) (Pack, error) {
	for _, p := range Packs() {
		if p.Name == name {
			return p, nil
		}
	}
	return Pack{}, fmt.Errorf("fleet: unknown pack %q", name)
}

// phases renders the pack's attack script as a campaign timeline.
func (p Pack) phases() []workload.Phase {
	if p.AttackRate <= 0 || p.AttackDuration <= 0 {
		return nil
	}
	return []workload.Phase{{
		Name:     "flood",
		Start:    p.AttackStart,
		Duration: p.AttackDuration,
		Attacks:  []workload.PhaseAttack{{Kind: workload.AttackPlain, Rate: p.AttackRate}},
	}}
}
