package fleet

import (
	"fmt"
	"time"

	"dnsguard/internal/workload"
)

// Pack is a shipped fleet scenario: a population profile, an attack
// timeline, and a scripted sequence of catchment events. Packs are run by
// RunLab; `benchtab -run fleet` records one row per pack.
type Pack struct {
	// Name identifies the pack (make fleet-smoke, benchtab rows).
	Name string
	// Description is the one-line operator summary.
	Description string
	// Sites is the fleet width.
	Sites int
	// Sources is the verified-population size (Zipf ranks).
	Sources int
	// Rate is the population's aggregate flow rate (flows/s).
	Rate float64
	// PopDuration bounds population emission (from t=0), leaving the
	// horizon tail for in-flight replies so end-state accounting is exact.
	PopDuration time.Duration
	// AttackStart/AttackDuration/AttackRate script one spoofed flood
	// (workload.AttackPlain) against the anycast address.
	AttackStart    time.Duration
	AttackDuration time.Duration
	AttackRate     float64
	// Events is the scripted catchment timeline.
	Events []Event
	// Gossip distributes the keyring by peer-to-peer anti-entropy instead of
	// controller push; EventRotate then seeds one site.
	Gossip bool
	// Persist gives every site a persisted keyring in a per-run state
	// directory. Required by EventUpgrade (the restarted site reopens its
	// ring from disk).
	Persist bool
	// ShiftAt/ShiftSite locate the pack's defining catchment shift for
	// moved-source accounting: the lab snapshots the population assignment
	// just before and after ShiftAt and reads the cold site's counters.
	// ShiftSite < 0 means the shift has no single cold site (site failure).
	ShiftAt   time.Duration
	ShiftSite int
	// End is the scenario horizon (before the lab's drain tail).
	End time.Duration
}

// Packs returns the shipped fleet scenarios.
func Packs() []Pack {
	return []Pack{
		{
			Name: "catchment-shift",
			Description: "BGP flap hands half the verified population to a cold site mid-attack; " +
				"then a rolling-upgrade drain and restore of site 0",
			Sites:          3,
			Sources:        120_000,
			Rate:           6000,
			PopDuration:    4500 * time.Millisecond,
			AttackStart:    1000 * time.Millisecond,
			AttackDuration: 3500 * time.Millisecond,
			AttackRate:     6000, // 50% spoof at the fleet's aggregate input
			Events: []Event{
				{At: 1500 * time.Millisecond, Kind: EventFlap, Site: 2, Frac: 0.5},
				{At: 2500 * time.Millisecond, Kind: EventDrain, Site: 0},
				{At: 3500 * time.Millisecond, Kind: EventRestore, Site: 0},
			},
			ShiftAt:   1500 * time.Millisecond,
			ShiftSite: 2,
			End:       4500 * time.Millisecond,
		},
		{
			Name: "rolling-upgrade",
			Description: "all three sites restarted one at a time under live load and a mid-roll " +
				"spoof flood; gossip anti-entropy converges a rotation seeded through a controller " +
				"outage and a site-pair partition; re-admission is readiness-gated",
			Sites:          3,
			Sources:        90_000,
			Rate:           5000,
			PopDuration:    5000 * time.Millisecond,
			AttackStart:    800 * time.Millisecond,
			AttackDuration: 3400 * time.Millisecond,
			AttackRate:     5000,
			Gossip:         true,
			Persist:        true,
			Events: []Event{
				{At: 1200 * time.Millisecond, Kind: EventUpgrade, Site: 0, Lag: 150 * time.Millisecond},
				{At: 1600 * time.Millisecond, Kind: EventControllerDown},
				{At: 1650 * time.Millisecond, Kind: EventPartition, Site: 1, Peer: 2},
				{At: 1700 * time.Millisecond, Kind: EventRotate},
				{At: 2050 * time.Millisecond, Kind: EventHeal, Site: 1, Peer: 2},
				{At: 2200 * time.Millisecond, Kind: EventUpgrade, Site: 1, Lag: 150 * time.Millisecond},
				{At: 3200 * time.Millisecond, Kind: EventUpgrade, Site: 2, Lag: 150 * time.Millisecond},
				{At: 4400 * time.Millisecond, Kind: EventControllerUp},
			},
			// The defining shift is the first site's catchment drain; its
			// sources split across both survivors, so no single cold site.
			ShiftAt:   1200 * time.Millisecond,
			ShiftSite: -1,
			End:       5500 * time.Millisecond,
		},
		{
			Name: "site-failure",
			Description: "site 1 dies mid-attack; its catchment blackholes until the BGP withdrawal " +
				"propagates, then redistributes; the site later recovers",
			Sites:          3,
			Sources:        60_000,
			Rate:           4000,
			PopDuration:    4000 * time.Millisecond,
			AttackStart:    1000 * time.Millisecond,
			AttackDuration: 3000 * time.Millisecond,
			AttackRate:     4000,
			Events: []Event{
				{At: 1500 * time.Millisecond, Kind: EventFail, Site: 1, Lag: 300 * time.Millisecond},
				{At: 3000 * time.Millisecond, Kind: EventRestore, Site: 1},
			},
			ShiftAt:   1800 * time.Millisecond, // the withdrawal, not the failure
			ShiftSite: -1,
			End:       4000 * time.Millisecond,
		},
	}
}

// PackByName returns the shipped pack with that name.
func PackByName(name string) (Pack, error) {
	for _, p := range Packs() {
		if p.Name == name {
			return p, nil
		}
	}
	return Pack{}, fmt.Errorf("fleet: unknown pack %q", name)
}

// phases renders the pack's attack script as a campaign timeline.
func (p Pack) phases() []workload.Phase {
	if p.AttackRate <= 0 || p.AttackDuration <= 0 {
		return nil
	}
	return []workload.Phase{{
		Name:     "flood",
		Start:    p.AttackStart,
		Duration: p.AttackDuration,
		Attacks:  []workload.PhaseAttack{{Kind: workload.AttackPlain, Rate: p.AttackRate}},
	}}
}
