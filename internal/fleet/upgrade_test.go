package fleet

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// The full-scale rolling-upgrade lab is shared across tests, like the
// catchment-shift one: one run feeds the acceptance assertions and the
// golden-snapshot comparison.
var (
	rollOnce sync.Once
	rollRes  LabResult
	rollErr  error
)

func rollingUpgradeResult(t *testing.T) LabResult {
	t.Helper()
	rollOnce.Do(func() {
		pack, err := PackByName("rolling-upgrade")
		if err != nil {
			rollErr = err
			return
		}
		rollRes, rollErr = RunLab(LabConfig{Pack: pack, Seed: 42})
	})
	if rollErr != nil {
		t.Fatalf("rolling-upgrade lab: %v", rollErr)
	}
	return rollRes
}

// TestRollingUpgrade is the zero-downtime acceptance gate: every site is
// restarted one at a time under live population load and a mid-roll spoof
// flood, with a keyring rotation seeded through a controller outage and a
// site-pair partition. Catchment-moved verified sources must be re-admitted
// with zero extra cookie exchanges, goodput must stay >= 0.99, and the
// gossiped epoch must converge fleet-wide within bounded rounds.
func TestRollingUpgrade(t *testing.T) {
	res := rollingUpgradeResult(t)

	if res.Upgrades != 3 {
		t.Fatalf("completed %d upgrades, want 3", res.Upgrades)
	}
	if res.MovedSources == 0 {
		t.Error("first drain moved no population sources")
	}

	// Zero extra cookie exchanges: every moved or re-admitted source rode
	// the shared (and persisted) keyring — never the newcomer referral path.
	if res.Population.Granted != 0 {
		t.Errorf("population saw %d referral grants (re-challenge storm), want 0", res.Population.Granted)
	}
	if res.Population.Refused != 0 {
		t.Errorf("population refused %d, want 0", res.Population.Refused)
	}

	// Goodput >= 0.99 across three full restarts plus the flood.
	goodput := float64(res.Population.Answered) / float64(res.Population.FlowsSent)
	if goodput < 0.99 {
		t.Errorf("goodput %.4f (answered %d of %d), want >= 0.99",
			goodput, res.Population.Answered, res.Population.FlowsSent)
	}

	// The seeded rotation converged everywhere despite the controller outage
	// and the site 1 - site 2 partition, within bounded gossip rounds.
	for i, e := range res.KeyEpochs {
		if e != 1 {
			t.Errorf("site %d final keyring epoch %d, want 1", i, e)
		}
	}
	if res.GossipConvergeRounds < 0 {
		t.Error("seeded rotation never converged fleet-wide")
	} else if res.GossipConvergeRounds > 8 {
		t.Errorf("rotation converged in %d gossip rounds, want <= 8", res.GossipConvergeRounds)
	}
	if res.Gossip.Adopts == 0 || res.Gossip.Pushes == 0 {
		t.Errorf("gossip left no anti-entropy trace: %+v", res.Gossip)
	}

	// The attack was live while all of this held, and no site rejected a
	// sibling's (or its own pre-restart) cookies.
	if res.AttackSent == 0 {
		t.Error("campaign sent no attack traffic")
	}
	tot := res.Totals()
	if tot.CookieInvalid != 0 {
		t.Errorf("fleet rejected %d cookies across the roll, want 0", tot.CookieInvalid)
	}
	if tot.NewcomerGrants == 0 && tot.RL1Dropped == 0 {
		t.Error("attack left no newcomer-path trace on the fleet")
	}
}

// TestRollingUpgradeGolden pins the full metrics export: same pack, same
// seed, bit-identical replay (upgrades, gossip, and partitions included).
func TestRollingUpgradeGolden(t *testing.T) {
	res := rollingUpgradeResult(t)
	golden := filepath.Join("testdata", "rolling_upgrade_metrics.txt")
	if *update {
		if err := os.WriteFile(golden, []byte(res.MetricsText), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if res.MetricsText != string(want) {
		t.Errorf("metrics snapshot diverged from golden; rerun with -update if intended\ngot:\n%s", res.MetricsText)
	}
}

// TestFleetUpgradePushMode upgrades one site under controller push (no
// gossip) with a rotation landing during the site's downtime: the rejoining
// site re-adopts the controller's ring and is readmitted without the
// population noticing either the restart or the rotation.
func TestFleetUpgradePushMode(t *testing.T) {
	pack := Pack{
		Name:        "upgrade-push",
		Sites:       3,
		Sources:     10_000,
		Rate:        1500,
		PopDuration: 2500 * time.Millisecond,
		Persist:     true,
		Events: []Event{
			{At: 1000 * time.Millisecond, Kind: EventUpgrade, Site: 0, Lag: 200 * time.Millisecond},
			// Lands mid-downtime: site 0's persisted ring is now stale.
			{At: 1100 * time.Millisecond, Kind: EventRotate},
		},
		End: 2500 * time.Millisecond,
	}
	res, err := RunLab(LabConfig{Pack: pack, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Upgrades != 1 {
		t.Fatalf("completed %d upgrades, want 1", res.Upgrades)
	}
	for i, e := range res.KeyEpochs {
		if e != 1 {
			t.Errorf("site %d final epoch %d, want 1 (rejoin re-adopted the push ring)", i, e)
		}
	}
	if res.Population.Refused != 0 || res.Population.Granted != 0 {
		t.Errorf("upgrade+rotation broke the verified path: refused=%d granted=%d",
			res.Population.Refused, res.Population.Granted)
	}
	if res.Population.Answered != res.Population.FlowsSent {
		t.Errorf("answered %d of %d flows", res.Population.Answered, res.Population.FlowsSent)
	}
}

// TestFleetUpgradeRequiresStateDir: an upgrade without persisted keyrings is
// an orchestration error, not a silent fresh-keys restart.
func TestFleetUpgradeRequiresStateDir(t *testing.T) {
	pack := Pack{
		Name:        "upgrade-no-state",
		Sites:       2,
		Sources:     500,
		Rate:        200,
		PopDuration: time.Second,
		Events: []Event{
			{At: 500 * time.Millisecond, Kind: EventUpgrade, Site: 0},
		},
		End: time.Second,
	}
	if _, err := RunLab(LabConfig{Pack: pack, Seed: 3}); err == nil {
		t.Fatal("upgrade without Persist succeeded; want a StateDir error")
	}
}
