package fleet

// Rolling upgrades. A planned site restart should cost the population
// nothing: the catchment sheds the site's weight first (its verified sources
// re-admit at sibling sites through the shared keyring — one full cookie
// verification each, zero new cookie exchanges), the guard drains to
// quiesced, the replacement instance reopens the persisted keyring so
// pre-restart cookies keep verifying, and the front restores the site's
// weight only after the readiness gate passes: lifecycle serving/warming,
// keyring epoch caught up to the fleet's, ingress backlog settled. This is
// the fleet-side composition of guard.Drain/Ready and cookie.OpenKeyring.

import (
	"context"
	"fmt"
	"time"

	"dnsguard/internal/cookie"
	"dnsguard/internal/metrics"
)

// readmitPoll paces the readiness polling between warm start and catchment
// re-admission.
const readmitPoll = 5 * time.Millisecond

// upgradeSite runs one zero-downtime site upgrade end to end. It must run in
// a proc (it sleeps and blocks on the drain); EventUpgrade spawns it.
// Failures are recorded on Fleet.Err — a half-upgraded fleet cannot limp on
// silently.
func (f *Fleet) upgradeSite(site int, downtime time.Duration) {
	if f.cfg.StateDir == "" {
		f.fail(fmt.Errorf("fleet: upgrade of site %d needs Config.StateDir (persisted keyring)", site))
		return
	}
	if downtime <= 0 {
		downtime = 100 * time.Millisecond
	}
	s := f.sites[site]
	old := s.Guard

	// 1. Shed catchment weight: new flows route to the surviving sites.
	f.catch.SetWeight(site, 0)

	// 2. Graceful drain: refuse new cookie exchanges, flush the dataplane,
	// give pending ANS exchanges their window. Bounded on the virtual clock
	// by the engine backlog and PendingTimeout, so no context deadline.
	_ = old.Drain(context.Background())

	// 3. Tear the old instance down. The down flag keeps the front honest
	// about the window: any straggler still routed here blackholes, exactly
	// like a real restart gap.
	old.BeginRestart()
	f.down[site] = true
	old.Close()
	addStats(&s.Retired, old.Stats.Load())
	s.retiredRegs = append(s.retiredRegs, s.Registry)

	// The restart itself: exec, config re-read, socket rebind.
	s.Host.Sleep(downtime)

	// 4. The replacement reopens the persisted keyring — cookies minted
	// before the upgrade verify unchanged, including a ring the old instance
	// adopted over gossip seconds before dying.
	auth, err := cookie.OpenKeyring(f.statePath(site))
	if err != nil {
		f.fail(fmt.Errorf("fleet: site %d reopening keyring: %w", site, err))
		return
	}
	if !f.cfg.Gossip.Enabled && !f.ctrlDown {
		// Controller push has no anti-entropy path for a rejoining site:
		// model the controller re-pushing its ring on join, or a rotation
		// during the downtime would leave the site unready forever.
		auth.Adopt(f.controller.State())
	}
	g, err := f.newGuard(site, auth)
	if err != nil {
		f.fail(fmt.Errorf("fleet: site %d rebuilding guard: %w", site, err))
		return
	}
	g.WarmStart()
	if err := g.Start(); err != nil {
		f.fail(fmt.Errorf("fleet: site %d restarting guard: %w", site, err))
		return
	}
	s.Guard = g
	s.Registry = metrics.NewRegistry()
	g.MetricsInto(s.Registry)
	f.down[site] = false // back in the gossip mesh; stragglers served again

	// 5. Health-gated re-admission: the front restores the site's weight
	// only once the replacement is ready at the fleet's current epoch —
	// re-evaluated each poll, since a rotation can land mid-warmup.
	for g.Ready(f.fleetEpoch()) != nil {
		s.Host.Sleep(readmitPoll)
	}
	g.MarkServing()
	f.catch.Restore(site)
	f.upgrades++
}

// fail records the first asynchronous orchestration error.
func (f *Fleet) fail(err error) {
	if f.err == nil {
		f.err = err
	}
}
