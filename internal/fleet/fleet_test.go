package fleet

import (
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// The full-scale catchment-shift lab is shared across tests: one run feeds
// the acceptance assertions and the golden-snapshot comparison.
var (
	shiftOnce sync.Once
	shiftRes  LabResult
	shiftErr  error
)

func catchmentShiftResult(t *testing.T) LabResult {
	t.Helper()
	shiftOnce.Do(func() {
		pack, err := PackByName("catchment-shift")
		if err != nil {
			shiftErr = err
			return
		}
		shiftRes, shiftErr = RunLab(LabConfig{Pack: pack, Seed: 42})
	})
	if shiftErr != nil {
		t.Fatalf("catchment-shift lab: %v", shiftErr)
	}
	return shiftRes
}

// TestFleetCatchmentShift is the subsystem's acceptance gate: a BGP flap
// hands >=30% of a >=10^5-source verified population to a cold site
// mid-attack, the cold site re-admits them through the fleet-shared keyring
// (full cookie verifications, not referral grants), and the scripted drain
// of site 0 drops no verified traffic anywhere in the fleet.
func TestFleetCatchmentShift(t *testing.T) {
	res := catchmentShiftResult(t)

	if res.VerifiedSources < 100_000 {
		t.Fatalf("population %d sources, want >= 100000", res.VerifiedSources)
	}
	if min := (res.VerifiedSources * 30) / 100; res.MovedSources < min {
		t.Errorf("flap moved %d sources, want >= %d (30%%)", res.MovedSources, min)
	}

	// The cold site re-admits the moved population with full verifications
	// against the shared ring — no site ever rejects a sibling's cookie and
	// no moved source is pushed back through the newcomer referral dance.
	if res.ColdReverified == 0 {
		t.Error("cold site performed no full verifications after the shift")
	}
	if res.Population.Granted != 0 {
		t.Errorf("population saw %d referral grants (re-challenge storm), want 0", res.Population.Granted)
	}

	// Zero verified-traffic drops, fleet-wide, across flap + drain + restore.
	tot := res.Totals()
	if tot.CookieInvalid != 0 {
		t.Errorf("fleet rejected %d cookies, want 0", tot.CookieInvalid)
	}
	if tot.RL2Dropped != 0 {
		t.Errorf("fleet RL2-dropped %d verified queries, want 0", tot.RL2Dropped)
	}
	if res.Population.Refused != 0 {
		t.Errorf("population refused %d, want 0", res.Population.Refused)
	}
	if res.Front.Blackholed != 0 {
		t.Errorf("front blackholed %d packets with no site down, want 0", res.Front.Blackholed)
	}
	if res.Population.Answered != res.Population.FlowsSent {
		t.Errorf("answered %d of %d population flows, want every one",
			res.Population.Answered, res.Population.FlowsSent)
	}

	// The attack was live while all of this held.
	if res.AttackSent == 0 {
		t.Error("campaign sent no attack traffic")
	}
	if tot.NewcomerGrants == 0 && tot.RL1Dropped == 0 {
		t.Error("attack left no newcomer-path trace on the fleet")
	}
	// The front observed the churn the moved sources produced.
	if res.Front.Moved == 0 {
		t.Error("front observed no moved packets across the shift")
	}
}

// TestFleetCatchmentShiftGolden pins the full metrics export: same pack,
// same seed, bit-identical replay.
func TestFleetCatchmentShiftGolden(t *testing.T) {
	res := catchmentShiftResult(t)
	golden := filepath.Join("testdata", "catchment_shift_metrics.txt")
	if *update {
		if err := os.WriteFile(golden, []byte(res.MetricsText), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if res.MetricsText != string(want) {
		t.Errorf("metrics snapshot diverged from golden; rerun with -update if intended\ngot:\n%s", res.MetricsText)
	}
}

// TestFleetSiteFailure exercises the fail-then-withdraw timeline: while the
// dead site's routes are still advertised its catchment blackholes, then the
// withdrawal redistributes those sources and service recovers.
func TestFleetSiteFailure(t *testing.T) {
	pack, err := PackByName("site-failure")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLab(LabConfig{Pack: pack, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Front.Blackholed == 0 {
		t.Error("no packets blackholed during the failure-to-withdrawal lag")
	}
	if res.MovedSources == 0 {
		t.Error("withdrawal moved no sources off the dead site")
	}
	// Losses are bounded by the blackhole: every population flow that reached
	// a live site was answered.
	if res.Population.Answered+res.Front.Blackholed < res.Population.FlowsSent {
		t.Errorf("answered %d + blackholed %d < sent %d: flows lost outside the blackhole window",
			res.Population.Answered, res.Front.Blackholed, res.Population.FlowsSent)
	}
	if res.Population.Refused != 0 || res.Population.Granted != 0 {
		t.Errorf("population refused=%d granted=%d, want 0/0", res.Population.Refused, res.Population.Granted)
	}
	tot := res.Totals()
	if tot.CookieInvalid != 0 || tot.RL2Dropped != 0 {
		t.Errorf("verified traffic dropped at a live site: invalid=%d rl2=%d", tot.CookieInvalid, tot.RL2Dropped)
	}
}

// TestFleetDeterminism replays a scaled-down shift scenario twice in-process
// and expects identical metrics text, and checks a different seed diverges.
func TestFleetDeterminism(t *testing.T) {
	pack, err := PackByName("catchment-shift")
	if err != nil {
		t.Fatal(err)
	}
	cfg := LabConfig{Pack: pack, Seed: 99, Sources: 20_000, Rate: 1500}
	a, err := RunLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MetricsText != b.MetricsText {
		t.Error("same seed, different metrics export")
	}
	cfg.Seed = 100
	c, err := RunLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MetricsText == c.MetricsText {
		t.Error("different seeds produced identical metrics export")
	}
}

// TestFleetRotateMidRun rotates the fleet-shared keyring mid-stream: every
// site adopts the new epoch in lockstep and the verified population rides
// through on the grace epoch without a single refusal or grant.
func TestFleetRotateMidRun(t *testing.T) {
	pack := Pack{
		Name:        "rotate-mid-run",
		Sites:       3,
		Sources:     10_000,
		Rate:        1500,
		PopDuration: 2 * time.Second,
		Events: []Event{
			{At: time.Second, Kind: EventRotate},
		},
		End: 2 * time.Second,
	}
	res, err := RunLab(LabConfig{Pack: pack, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var rotations uint64
	for _, s := range res.Sites {
		rotations += s.KeyRotations
	}
	if rotations != uint64(pack.Sites) {
		t.Errorf("sites recorded %d key rotations, want %d (one each)", rotations, pack.Sites)
	}
	if res.Population.Refused != 0 || res.Population.Granted != 0 {
		t.Errorf("rotation broke the verified path: refused=%d granted=%d", res.Population.Refused, res.Population.Granted)
	}
	if res.Population.Answered != res.Population.FlowsSent {
		t.Errorf("answered %d of %d flows across the rotation", res.Population.Answered, res.Population.FlowsSent)
	}
}
