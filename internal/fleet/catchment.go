// Package fleet is the anycast tier: N independent guard instances behind a
// deterministic ECMP/anycast front in netsim. The paper deploys one
// spoof-detection middlebox in front of one DNS server; production DNS is
// anycast, and six years of catchment measurement (Whac-A-Mole) show BGP
// churn constantly re-routes client populations between sites mid-attack.
// The fleet layer reproduces that failure mode on the virtual clock: a
// catchment map routes each client source to a site, scripted events (BGP
// flap, drain, site failure) shift it, and the fleet-shared cookie keyring
// lets the cold site re-admit moved verified clients without a re-challenge
// storm.
package fleet

import (
	"fmt"
	"math"
	"net/netip"
	"sync"
)

// Catchment deterministically maps client source addresses to sites using
// weighted rendezvous hashing: each (site, source) pair gets a uniform
// hash u in [0,1) and the site with the highest score -w/ln(u) wins. The
// construction has the minimal-disruption property anycast shows in
// practice — changing one site's weight only moves sources into or out of
// that site's catchment, never between two unaffected sites — so a scripted
// drain/restore cycle returns exactly the original map.
//
// Flap overrides model coarse BGP events: a flap claims a hash-selected
// fraction of *all* sources for one target site, overriding the rendezvous
// choice, the way a leaked or re-preferred route captures traffic
// regardless of the operator's weights. All methods are safe for concurrent
// use.
type Catchment struct {
	mu      sync.Mutex
	seed    uint64
	weights []float64 // current routing weight per site; <=0 removes the site
	initial []float64 // configured weights, for Restore
	flaps   []flapRule
	gen     uint64 // bumped on every routing change
}

// flapRule moves the sources with h(seed,src) < frac to site to.
type flapRule struct {
	seed uint64
	frac float64
	to   int
}

// NewCatchment creates a catchment over len(weights) sites. Weights are
// relative capacities (a site with weight 2 attracts twice the sources of a
// site with weight 1); non-positive weights leave the site out of the map
// until SetWeight raises them.
func NewCatchment(seed uint64, weights ...float64) *Catchment {
	if len(weights) == 0 {
		panic("fleet: NewCatchment needs at least one site")
	}
	return &Catchment{
		seed:    seed,
		weights: append([]float64(nil), weights...),
		initial: append([]float64(nil), weights...),
	}
}

// Sites returns the number of sites in the map.
func (c *Catchment) Sites() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.weights)
}

// Generation counts routing changes (weight updates, flaps, restores).
func (c *Catchment) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// SiteFor returns the site src routes to, or -1 when no site is routable
// (every weight zero — the fleet-wide outage case).
func (c *Catchment) SiteFor(src netip.Addr) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := addrKey(src)
	for _, f := range c.flaps {
		if f.to < len(c.weights) && c.weights[f.to] > 0 && h01(f.seed, key) < f.frac {
			return f.to
		}
	}
	best, bestScore := -1, math.Inf(-1)
	for i, w := range c.weights {
		if w <= 0 {
			continue
		}
		u := h01(c.seed^uint64(i)*0xD1B54A32D192ED03, key)
		score := -w / math.Log(u) // u in (0,1): ln(u) < 0, score > 0
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// SetWeight changes one site's routing weight. Weight 0 drains the site:
// its catchment redistributes to the remaining sites (and nothing else
// moves, per rendezvous hashing).
func (c *Catchment) SetWeight(site int, w float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mustSite(site)
	c.weights[site] = w
	c.gen++
}

// Weight returns site's current routing weight.
func (c *Catchment) Weight(site int) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mustSite(site)
	return c.weights[site]
}

// Flap registers a BGP-flap override: the hash-selected frac of all sources
// routes to site to, regardless of weights, until ClearFlaps or Restore.
// Each call uses a fresh hash (derived from the catchment seed and the
// routing generation), so successive flaps capture independent slices of
// the population.
func (c *Catchment) Flap(frac float64, to int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mustSite(to)
	c.gen++
	c.flaps = append(c.flaps, flapRule{
		seed: splitmix(c.seed ^ c.gen*0x9E3779B97F4A7C15),
		frac: frac,
		to:   to,
	})
}

// ClearFlaps withdraws every flap override; the weighted rendezvous map is
// authoritative again.
func (c *Catchment) ClearFlaps() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.flaps) > 0 {
		c.flaps = nil
		c.gen++
	}
}

// Restore returns one site to its configured weight (drain undo).
func (c *Catchment) Restore(site int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mustSite(site)
	c.weights[site] = c.initial[site]
	c.gen++
}

func (c *Catchment) mustSite(site int) {
	if site < 0 || site >= len(c.weights) {
		panic(fmt.Sprintf("fleet: site %d out of range [0,%d)", site, len(c.weights)))
	}
}

// addrKey folds an address into the 64-bit hash key.
func addrKey(src netip.Addr) uint64 {
	if src.Is4() || src.Is4In6() {
		b := src.As4()
		return uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3])
	}
	b := src.As16()
	var k uint64
	for i := 0; i < 16; i += 8 {
		k ^= uint64(b[i])<<56 | uint64(b[i+1])<<48 | uint64(b[i+2])<<40 | uint64(b[i+3])<<32 |
			uint64(b[i+4])<<24 | uint64(b[i+5])<<16 | uint64(b[i+6])<<8 | uint64(b[i+7])
	}
	return k
}

// splitmix is the splitmix64 finalizer, the repo-wide deterministic hash.
func splitmix(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// h01 hashes (seed, key) to a uniform float64 in (0,1): the zero output is
// nudged up so ln(u) stays finite.
func h01(seed, key uint64) float64 {
	u := float64(splitmix(seed^key)>>11) / (1 << 53)
	if u == 0 {
		u = 1.0 / (1 << 53)
	}
	return u
}
