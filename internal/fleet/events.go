package fleet

import (
	"fmt"
	"time"
)

// EventKind selects a scripted catchment event.
type EventKind int

// Catchment event kinds.
const (
	// EventFlap is a BGP flap: a hash-selected Frac of all sources routes
	// to Site until the flaps are cleared (EventClearFlaps) — the
	// Whac-A-Mole observation that routing churn hands whole populations
	// to another site mid-attack.
	EventFlap EventKind = iota + 1
	// EventDrain zeroes Site's catchment weight (rolling-upgrade drain):
	// its sources redistribute to the remaining sites, nothing else moves.
	EventDrain
	// EventRestore returns Site to its configured weight and marks it
	// alive again (drain or failure undo).
	EventRestore
	// EventFail kills Site: traffic the catchment still routes there
	// blackholes until the BGP withdrawal propagates (Lag), after which
	// the site's weight drops to zero and its sources redistribute.
	EventFail
	// EventClearFlaps withdraws every flap override.
	EventClearFlaps
	// EventRotate rotates the fleet-shared keyring (controller rotates,
	// every site adopts), exercising cross-site grace-epoch verification.
	// Under gossip the rotation is seeded at one live site instead.
	EventRotate
	// EventUpgrade rolls Site through a zero-downtime restart: catchment
	// drain, graceful guard drain, restart after Lag of downtime with the
	// persisted keyring reopened, then health-gated re-admission. Requires
	// Config.StateDir.
	EventUpgrade
	// EventPartition severs the link between Site's and Peer's hosts (gossip
	// and any other site-to-site traffic drops until EventHeal).
	EventPartition
	// EventHeal restores the Site—Peer link.
	EventHeal
	// EventControllerDown takes the keyring controller out: push rotations
	// fail and gossip-seeded rotations converge without it.
	EventControllerDown
	// EventControllerUp brings the controller back; it anti-entropies to the
	// fleet's best keyring on return.
	EventControllerUp
)

func (k EventKind) String() string {
	switch k {
	case EventFlap:
		return "flap"
	case EventDrain:
		return "drain"
	case EventRestore:
		return "restore"
	case EventFail:
		return "fail"
	case EventClearFlaps:
		return "clear-flaps"
	case EventRotate:
		return "rotate"
	case EventUpgrade:
		return "upgrade"
	case EventPartition:
		return "partition"
	case EventHeal:
		return "heal"
	case EventControllerDown:
		return "controller-down"
	case EventControllerUp:
		return "controller-up"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one scripted routing change on the virtual clock.
type Event struct {
	// At is the virtual time of the event, relative to the moment Schedule
	// is called (campaign scripts call Schedule at t=0, making At absolute).
	At time.Duration
	// Kind selects the event.
	Kind EventKind
	// Site is the event's subject (Flap: the destination site; Partition and
	// Heal: one end of the link).
	Site int
	// Peer is the other end of a Partition or Heal link.
	Peer int
	// Frac is the population fraction a flap captures.
	Frac float64
	// Lag is the failure-to-withdrawal delay for EventFail (how long the
	// dead site keeps attracting — and blackholing — its catchment), and the
	// restart downtime for EventUpgrade (0: 100ms).
	Lag time.Duration
}

// Schedule registers events on the virtual clock. Call before running the
// scheduler; each event applies atomically in scheduler context.
func (f *Fleet) Schedule(events []Event) {
	for _, ev := range events {
		ev := ev
		f.cfg.Net.At(ev.At, func() { f.apply(ev) })
	}
}

func (f *Fleet) apply(ev Event) {
	switch ev.Kind {
	case EventFlap:
		f.catch.Flap(ev.Frac, ev.Site)
	case EventDrain:
		f.catch.SetWeight(ev.Site, 0)
	case EventRestore:
		f.down[ev.Site] = false
		f.catch.Restore(ev.Site)
	case EventFail:
		f.down[ev.Site] = true
		site := ev.Site
		f.cfg.Net.At(ev.Lag, func() { f.catch.SetWeight(site, 0) })
	case EventClearFlaps:
		f.catch.ClearFlaps()
	case EventRotate:
		if err := f.Rotate(); err != nil {
			f.fail(err)
		}
	case EventUpgrade:
		// apply runs in scheduler (callback) context and must not block; the
		// upgrade drains and sleeps, so it gets its own proc.
		site, lag := ev.Site, ev.Lag
		f.sites[site].Host.Go(fmt.Sprintf("upgrade-site%d", site), func() {
			f.upgradeSite(site, lag)
		})
	case EventPartition:
		f.cfg.Net.Partition(f.sites[ev.Site].Host, f.sites[ev.Peer].Host)
	case EventHeal:
		f.cfg.Net.Heal(f.sites[ev.Site].Host, f.sites[ev.Peer].Host)
	case EventControllerDown:
		f.ctrlDown = true
	case EventControllerUp:
		f.ctrlDown = false
		// The recovered controller anti-entropies from the fleet, so cookie
		// minting (and the fleet_key_epoch series) catches up.
		f.controller.Adopt(f.bestState())
	}
}
