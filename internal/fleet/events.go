package fleet

import (
	"fmt"
	"time"
)

// EventKind selects a scripted catchment event.
type EventKind int

// Catchment event kinds.
const (
	// EventFlap is a BGP flap: a hash-selected Frac of all sources routes
	// to Site until the flaps are cleared (EventClearFlaps) — the
	// Whac-A-Mole observation that routing churn hands whole populations
	// to another site mid-attack.
	EventFlap EventKind = iota + 1
	// EventDrain zeroes Site's catchment weight (rolling-upgrade drain):
	// its sources redistribute to the remaining sites, nothing else moves.
	EventDrain
	// EventRestore returns Site to its configured weight and marks it
	// alive again (drain or failure undo).
	EventRestore
	// EventFail kills Site: traffic the catchment still routes there
	// blackholes until the BGP withdrawal propagates (Lag), after which
	// the site's weight drops to zero and its sources redistribute.
	EventFail
	// EventClearFlaps withdraws every flap override.
	EventClearFlaps
	// EventRotate rotates the fleet-shared keyring (controller rotates,
	// every site adopts), exercising cross-site grace-epoch verification.
	EventRotate
)

func (k EventKind) String() string {
	switch k {
	case EventFlap:
		return "flap"
	case EventDrain:
		return "drain"
	case EventRestore:
		return "restore"
	case EventFail:
		return "fail"
	case EventClearFlaps:
		return "clear-flaps"
	case EventRotate:
		return "rotate"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one scripted routing change on the virtual clock.
type Event struct {
	// At is the virtual time of the event, relative to the moment Schedule
	// is called (campaign scripts call Schedule at t=0, making At absolute).
	At time.Duration
	// Kind selects the event.
	Kind EventKind
	// Site is the event's subject (Flap: the destination site).
	Site int
	// Frac is the population fraction a flap captures.
	Frac float64
	// Lag is the failure-to-withdrawal delay for EventFail (how long the
	// dead site keeps attracting — and blackholing — its catchment).
	Lag time.Duration
}

// Schedule registers events on the virtual clock. Call before running the
// scheduler; each event applies atomically in scheduler context.
func (f *Fleet) Schedule(events []Event) {
	for _, ev := range events {
		ev := ev
		f.cfg.Net.At(ev.At, func() { f.apply(ev) })
	}
}

func (f *Fleet) apply(ev Event) {
	switch ev.Kind {
	case EventFlap:
		f.catch.Flap(ev.Frac, ev.Site)
	case EventDrain:
		f.catch.SetWeight(ev.Site, 0)
	case EventRestore:
		f.down[ev.Site] = false
		f.catch.Restore(ev.Site)
	case EventFail:
		f.down[ev.Site] = true
		site := ev.Site
		f.cfg.Net.At(ev.Lag, func() { f.catch.SetWeight(site, 0) })
	case EventClearFlaps:
		f.catch.ClearFlaps()
	case EventRotate:
		_ = f.Rotate()
	}
}
