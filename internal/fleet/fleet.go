package fleet

import (
	"errors"
	"fmt"
	"net/netip"
	"path/filepath"
	"reflect"
	"time"

	"dnsguard/internal/cookie"
	"dnsguard/internal/dnswire"
	"dnsguard/internal/guard"
	"dnsguard/internal/metrics"
	"dnsguard/internal/netapi"
	"dnsguard/internal/netsim"
)

// Config parameterizes a simulated guard fleet.
type Config struct {
	// Net is the simulated network the fleet is built in. Required.
	Net *netsim.Network
	// Sites is the number of guard instances. Required (>= 1).
	Sites int
	// Weights are the sites' relative catchment capacities; nil means all 1.
	Weights []float64
	// Seed keys the catchment hash and the per-guard shard hash.
	Seed uint64
	// PublicAddr is the anycast service address every site answers for.
	// Required.
	PublicAddr netip.AddrPort
	// Subnet is the advertised prefix around PublicAddr; the front claims it
	// so client traffic lands on the ECMP hop. Required.
	Subnet netip.Prefix
	// ANSAddr is the protected origin server, shared by every site. Required.
	ANSAddr netip.AddrPort
	// Zone is the apex the origin serves.
	Zone dnswire.Name
	// Key seeds the fleet-shared keyring deterministically; the zero value
	// generates a random ring.
	Key [cookie.KeySize]byte
	// FastPathTTL enables each guard's verified-source cache.
	FastPathTTL time.Duration
	// StateDir, when non-empty, gives every site a persisted keyring at
	// StateDir/site<i>.keyring: rotations and adoptions are written through,
	// and a rolling upgrade (EventUpgrade) reopens the file so cookies minted
	// before the restart keep verifying. Required for upgrades.
	StateDir string
	// Gossip switches keyring distribution from controller push to
	// peer-to-peer anti-entropy between the sites (see gossip.go).
	Gossip GossipConfig
	// Guard, when non-nil, adjusts each site's config before the guard is
	// created (rate limiters, mitigation, costs...).
	Guard func(site int, cfg *guard.RemoteConfig)
}

// Site is one guard instance plus its host and private metrics registry.
type Site struct {
	// Host is the site's machine; the front injects routed traffic here.
	Host *netsim.Host
	// Guard is the site's spoof-detection instance. Replaced in place by a
	// rolling upgrade; read it through the Fleet in scheduler context.
	Guard *guard.Remote
	// Registry holds the site's guard_* series; the fleet roll-up merges
	// all of them under fleet_*. Replaced alongside Guard on upgrade.
	Registry *metrics.Registry
	// Retired accumulates the counters of instances closed by upgrades, so
	// per-site totals span restarts.
	Retired guard.RemoteStats

	// auth is the site's handle on the shared keyring (the Guard's
	// cfg.Auth); gossip reads full key states from it.
	auth *cookie.Authenticator
	// retiredRegs keeps the registries of upgraded-away instances so the
	// metrics roll-up spans restarts.
	retiredRegs []*metrics.Registry
}

// FrontStats counts the ECMP front's routing decisions.
type FrontStats struct {
	// Routed counts packets delivered to a site.
	Routed uint64
	// Blackholed counts packets dropped because the catchment had no
	// routable site or the selected site was down (failure before the BGP
	// withdrawal propagated).
	Blackholed uint64
	// Moved counts packets whose source had previously been routed to a
	// different site — the front-side measure of catchment churn.
	Moved uint64
}

// Fleet is N guards behind a deterministic anycast front sharing one cookie
// keyring. Create with New, then Start.
type Fleet struct {
	cfg        Config
	catch      *Catchment
	controller *cookie.Authenticator
	ctrlDown   bool // controller outage: rotations cannot be pushed or seeded through it
	front      *netsim.Host
	tap        *netsim.Tap
	sites      []*Site
	down       []bool
	lastSite   map[netip.Addr]int
	stopped    bool
	upgrades   uint64
	err        error // first asynchronous orchestration failure

	// gossip anti-entropy state (nil maps when disabled).
	gossipConns []netapi.UDPConn
	gstats      GossipStats
	seededAt    map[uint64]time.Duration
	convergedAt map[uint64]time.Duration

	// Stats is updated by the front proc as the fleet runs.
	Stats FrontStats
}

// New builds the fleet world: a front host claiming the anycast prefix, one
// guard host per site, and a shared keyring — the controller authenticator
// owns the ring and every guard gets an independent handle on the same key
// material and epoch schedule, so any site verifies a cookie minted by any
// other.
func New(cfg Config) (*Fleet, error) {
	if cfg.Net == nil || cfg.Sites < 1 {
		return nil, errors.New("fleet: Config.Net and Sites are required")
	}
	if !cfg.PublicAddr.IsValid() || !cfg.Subnet.IsValid() || !cfg.ANSAddr.IsValid() {
		return nil, errors.New("fleet: PublicAddr, Subnet, ANSAddr are required")
	}
	if cfg.Weights == nil {
		cfg.Weights = make([]float64, cfg.Sites)
		for i := range cfg.Weights {
			cfg.Weights[i] = 1
		}
	}
	if len(cfg.Weights) != cfg.Sites {
		return nil, errors.New("fleet: len(Weights) must equal Sites")
	}
	if cfg.Zone == "" {
		cfg.Zone = dnswire.MustName("foo.com")
	}

	var controller *cookie.Authenticator
	if cfg.Key == ([cookie.KeySize]byte{}) {
		a, err := cookie.NewAuthenticator()
		if err != nil {
			return nil, err
		}
		controller = a
	} else {
		controller = cookie.NewAuthenticatorWithKey(cfg.Key)
	}

	f := &Fleet{
		cfg:         cfg,
		catch:       NewCatchment(splitmix(cfg.Seed^0xFEE7C47C), cfg.Weights...),
		controller:  controller,
		down:        make([]bool, cfg.Sites),
		lastSite:    make(map[netip.Addr]int),
		seededAt:    make(map[uint64]time.Duration),
		convergedAt: make(map[uint64]time.Duration),
	}
	f.cfg.Gossip.normalize()

	f.front = cfg.Net.AddHost("front", cfg.PublicAddr.Addr())
	f.front.ClaimPrefix(cfg.Subnet)
	f.front.SetQueueCap(1 << 16)
	tap, err := f.front.OpenTap()
	if err != nil {
		return nil, err
	}
	f.tap = tap

	for i := 0; i < cfg.Sites; i++ {
		// Site addresses sit in 10.64/16, outside the population's claimed
		// 10.128.0.0/9 pool: each guard's upstream socket binds the site
		// address, and ANS replies to it must route to the site, not into a
		// client prefix claim.
		host := cfg.Net.AddHost(fmt.Sprintf("site%d", i), siteAddr(i))
		host.SetQueueCap(1 << 16)
		// Every guard holds an independent handle on the shared ring; with a
		// StateDir that handle is persisted, so a site restart reopens the
		// same ring instead of orphaning the population's cookies.
		auth := cookie.RestoreAuthenticator(controller.State())
		if cfg.StateDir != "" {
			if err := auth.BindStateFile(f.statePath(i)); err != nil {
				return nil, fmt.Errorf("fleet: site %d keyring: %w", i, err)
			}
		}
		site := &Site{Host: host, auth: auth}
		f.sites = append(f.sites, site)
		g, err := f.newGuard(i, auth)
		if err != nil {
			return nil, err
		}
		site.Guard = g
		site.Registry = metrics.NewRegistry()
	}
	return f, nil
}

// siteAddr is site i's host address.
func siteAddr(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, 64, byte(i + 1), 1})
}

// statePath is site i's persisted-keyring path under Config.StateDir.
func (f *Fleet) statePath(i int) string {
	return filepath.Join(f.cfg.StateDir, fmt.Sprintf("site%d.keyring", i))
}

// newGuard constructs site i's guard instance on its existing host — used at
// fleet build time and again by rolling upgrades, so a replacement instance
// is configured exactly like the original (including the Config.Guard hook).
func (f *Fleet) newGuard(i int, auth *cookie.Authenticator) (*guard.Remote, error) {
	host := f.sites[i].Host
	siteTap, err := host.OpenTap()
	if err != nil {
		return nil, err
	}
	gcfg := guard.RemoteConfig{
		Env:           host,
		IO:            guard.TapIO{Tap: siteTap},
		Shards:        1, // inline per site: the fleet's parallelism is across sites
		Auth:          auth,
		ShardHashSeed: splitmix(f.cfg.Seed ^ uint64(i+1)*0x9E3779B97F4A7C15),
		PublicAddr:    f.cfg.PublicAddr,
		ANSAddr:       f.cfg.ANSAddr,
		Zone:          f.cfg.Zone,
		Subnet:        f.cfg.Subnet,
		Fallback:      guard.SchemeDNS,
		FastPathTTL:   f.cfg.FastPathTTL,
	}
	if f.cfg.Guard != nil {
		f.cfg.Guard(i, &gcfg)
	}
	g, err := guard.NewRemote(gcfg)
	if err != nil {
		return nil, err
	}
	f.sites[i].auth = auth
	return g, nil
}

// Start boots every guard, the front's routing proc, and (when enabled) the
// per-site gossip anti-entropy procs.
func (f *Fleet) Start() error {
	for i, s := range f.sites {
		if err := s.Guard.Start(); err != nil {
			return fmt.Errorf("fleet: site %d: %w", i, err)
		}
		s.Guard.MetricsInto(s.Registry)
	}
	if f.cfg.Gossip.Enabled {
		if err := f.startGossip(); err != nil {
			return err
		}
	}
	f.front.Go("fleet-front", f.route)
	return nil
}

// route is the ECMP front: read each packet arriving on the anycast prefix,
// ask the catchment which site owns the source, and inject it there. Sites
// that are down (failed, withdrawal not yet propagated) blackhole their
// catchment, exactly like anycast before the routes converge.
func (f *Fleet) route() {
	for !f.stopped {
		pkt, err := f.tap.Read(netapi.NoTimeout)
		if err != nil {
			return // tap closed
		}
		src := pkt.Src.Addr()
		site := f.catch.SiteFor(src)
		if site < 0 || f.down[site] {
			f.Stats.Blackholed++
			continue
		}
		if prev, ok := f.lastSite[src]; ok && prev != site {
			f.Stats.Moved++
		}
		f.lastSite[src] = site
		if f.front.InjectTo(f.sites[site].Host, pkt.Src, pkt.Dst, pkt.Payload) == nil {
			f.Stats.Routed++
		}
	}
}

// Catchment exposes the routing map for scripted events and assignment
// queries.
func (f *Fleet) Catchment() *Catchment { return f.catch }

// Auth returns the controller authenticator owning the fleet-shared keyring.
// Workload generators mint pre-provisioned client cookies from it; Rotate
// goes through the Fleet so every site adopts the new ring.
func (f *Fleet) Auth() *cookie.Authenticator { return f.controller }

// Sites returns the number of guard sites.
func (f *Fleet) Sites() int { return len(f.sites) }

// Site returns site i.
func (f *Fleet) Site(i int) *Site { return f.sites[i] }

// SetDown marks a site dead (its catchment blackholes) or alive. Fail
// events use it for the window between the failure and the BGP withdrawal.
func (f *Fleet) SetDown(site int, down bool) {
	f.down[site] = down
}

// Rotate advances the fleet-shared keyring. Under controller push the
// controller rotates once and every guard adopts the published state, so the
// fleet's epoch schedule stays in lockstep and cross-site verification keeps
// costing one MD5. Under gossip the rotation is instead seeded at one live
// site and anti-entropy spreads it — the path that keeps working through a
// controller outage.
func (f *Fleet) Rotate() error {
	if f.cfg.Gossip.Enabled {
		return f.seedRotation()
	}
	if f.ctrlDown {
		return errors.New("fleet: controller down; push rotation unavailable")
	}
	if err := f.controller.Rotate(); err != nil {
		return err
	}
	f.push()
	return nil
}

// RotateWithKey is Rotate with a caller-supplied key, for deterministic
// simulations under controller push.
func (f *Fleet) RotateWithKey(key [cookie.KeySize]byte) {
	f.controller.RotateWithKey(key)
	f.push()
}

func (f *Fleet) push() {
	st := f.controller.State()
	for _, s := range f.sites {
		s.Guard.AdoptKeys(st)
	}
}

// bestState returns the highest-epoch keyring anywhere in the fleet — what a
// recovering controller anti-entropies from.
func (f *Fleet) bestState() cookie.KeyState {
	best := f.controller.State()
	for _, s := range f.sites {
		if st := s.auth.State(); st.Epoch > best.Epoch {
			best = st
		}
	}
	return best
}

// fleetEpoch is the highest keyring epoch any component holds — the target a
// rejoining site must reach before it is readmitted to the catchment.
func (f *Fleet) fleetEpoch() uint64 {
	e := f.controller.Epoch()
	for _, s := range f.sites {
		if se := s.auth.State().Epoch; se > e {
			e = se
		}
	}
	return e
}

// Upgrades counts completed zero-downtime site upgrades.
func (f *Fleet) Upgrades() uint64 { return f.upgrades }

// Err reports the first failure from asynchronous orchestration (a rolling
// upgrade that could not rebuild its site). Check it after the run.
func (f *Fleet) Err() error { return f.err }

// SiteStats returns site i's counters, including instances retired by
// rolling upgrades.
func (f *Fleet) SiteStats(i int) guard.RemoteStats {
	st := f.sites[i].Guard.Stats.Load()
	addStats(&st, f.sites[i].Retired)
	return st
}

// addStats accumulates src's counters into dst field-wise. Reflection keeps
// retirement honest when RemoteStats grows new counters.
func addStats(dst *guard.RemoteStats, src guard.RemoteStats) {
	d := reflect.ValueOf(dst).Elem()
	s := reflect.ValueOf(src)
	for i := 0; i < d.NumField(); i++ {
		if d.Field(i).Kind() == reflect.Uint64 {
			d.Field(i).SetUint(d.Field(i).Uint() + s.Field(i).Uint())
		}
	}
}

// MetricsInto registers the fleet's series on r: front counters, catchment
// generation, the fleet_* roll-up merging every site's registry (counters
// sum, histograms merge bucket-wise), and per-site site<i>_* copies.
func (f *Fleet) MetricsInto(r *metrics.Registry) {
	r.FuncUint("fleet_sites", func() uint64 { return uint64(len(f.sites)) })
	r.FuncUint("fleet_front_routed", func() uint64 { return f.Stats.Routed })
	r.FuncUint("fleet_front_blackholed", func() uint64 { return f.Stats.Blackholed })
	r.FuncUint("fleet_front_moved", func() uint64 { return f.Stats.Moved })
	r.FuncUint("fleet_catchment_generation", f.catch.Generation)
	r.FuncUint("fleet_key_epoch", f.controller.Epoch)
	r.FuncUint("fleet_upgrades", func() uint64 { return f.upgrades })
	if f.cfg.Gossip.Enabled {
		f.gossipMetricsInto(r)
	}
	var all []*metrics.Registry
	for i, s := range f.sites {
		i := i
		r.FuncUint(fmt.Sprintf("site%d_key_epoch", i), func() uint64 {
			return f.sites[i].auth.State().Epoch
		})
		// Per-site and fleet-wide roll-ups span upgrades: registries of
		// retired instances keep contributing their (frozen) counters.
		regs := append(append([]*metrics.Registry(nil), s.retiredRegs...), s.Registry)
		metrics.MergedInto(r, fmt.Sprintf("site%d_", i), regs...)
		all = append(all, regs...)
	}
	metrics.MergedInto(r, "fleet_", all...)
}

// Close stops the front, the gossip procs, and every guard.
func (f *Fleet) Close() {
	f.stopped = true
	f.tap.Close()
	for _, c := range f.gossipConns {
		_ = c.Close()
	}
	for _, s := range f.sites {
		s.Guard.Close()
	}
}
