package fleet

import (
	"net/netip"
	"os"
	"strings"
	"time"

	"dnsguard/internal/cookie"
	"dnsguard/internal/dnswire"
	"dnsguard/internal/guard"
	"dnsguard/internal/metrics"
	"dnsguard/internal/netsim"
	"dnsguard/internal/vclock"
	"dnsguard/internal/workload"
)

// LabConfig parameterizes one fleet-pack run.
type LabConfig struct {
	// Pack is the scenario to run.
	Pack Pack
	// Seed keys the virtual clock, the catchment, and every PRNG.
	Seed int64
	// Sources overrides the pack's population size (0: pack default).
	Sources int
	// Rate overrides the pack's population rate (0: pack default).
	Rate float64
	// Tail extends the simulation past Pack.End so in-flight replies drain
	// before the final accounting. 0 means 1s.
	Tail time.Duration
}

// LabResult is everything a test or experiment asserts on after a fleet run.
type LabResult struct {
	// Front is the ECMP front's final counters.
	Front FrontStats
	// Sites holds each guard's final counter snapshot.
	Sites []guard.RemoteStats
	// Population is the verified population's final counters.
	Population workload.PopulationStats
	// AttackSent totals the campaign's spoofed packets.
	AttackSent uint64
	// VerifiedSources is the population size.
	VerifiedSources int
	// MovedSources is the exact number of population sources whose catchment
	// assignment changed across Pack.ShiftAt (assignment snapshots one
	// millisecond before and after the shift).
	MovedSources int
	// ColdValidAtShift / ColdFastAtShift snapshot the shift-target site's
	// accepted-verified and fast-path counters just after the shift;
	// ColdReverified is the number of *full* cookie verifications the cold
	// site performed after the shift — the moved population re-admitting
	// through the fleet-shared keyring rather than a re-challenge storm.
	// All zero when Pack.ShiftSite < 0.
	ColdValidAtShift uint64
	ColdFastAtShift  uint64
	ColdReverified   uint64
	// Upgrades counts completed zero-downtime site upgrades.
	Upgrades int
	// KeyEpochs is each site's final keyring epoch (the upgraded instance's,
	// where a site was restarted).
	KeyEpochs []uint64
	// Gossip aggregates the anti-entropy counters (zero under controller
	// push).
	Gossip GossipStats
	// GossipConvergeRounds is the number of gossip intervals between the
	// highest seeded epoch and the last site adopting it; -1 when the pack
	// seeded no gossip rotation.
	GossipConvergeRounds int
	// MetricsText is the deterministic text export of every registered
	// series after the run (golden-snapshot input).
	MetricsText string
}

// Totals sums the headline counters across all sites (fields not meaningful
// as a fleet-wide sum are left zero).
func (r LabResult) Totals() guard.RemoteStats {
	var t guard.RemoteStats
	for _, s := range r.Sites {
		t.Received += s.Received
		t.CookieValid += s.CookieValid
		t.CookieInvalid += s.CookieInvalid
		t.FastPathHits += s.FastPathHits
		t.NewcomerGrants += s.NewcomerGrants
		t.RL1Dropped += s.RL1Dropped
		t.RL2Dropped += s.RL2Dropped
		t.ForwardedToANS += s.ForwardedToANS
		t.RepliesToClient += s.RepliesToClient
		t.Malformed += s.Malformed
	}
	return t
}

// RunLab runs one fleet pack to completion in a fresh simulated world: an
// origin ANS, a Pack.Sites-wide guard fleet behind the anycast front, a
// population-scale verified client base re-presenting cookies from the
// fleet-shared keyring, and the pack's spoofed flood from a separate host,
// with the pack's catchment events scripted on the virtual clock. Same
// config, bit-identical result.
func RunLab(cfg LabConfig) (LabResult, error) {
	var res LabResult
	pack := cfg.Pack
	if cfg.Sources > 0 {
		pack.Sources = cfg.Sources
	}
	if cfg.Rate > 0 {
		pack.Rate = cfg.Rate
	}
	if cfg.Tail <= 0 {
		cfg.Tail = time.Second
	}
	sched := vclock.New(cfg.Seed)
	net := netsim.New(sched, 200*time.Microsecond)

	ansHost := net.AddHost("ans", netip.MustParseAddr("10.99.0.2"))
	sim, err := workload.NewANSSim(workload.ANSSimConfig{
		Env: ansHost, Addr: netip.MustParseAddrPort("10.99.0.2:53"), Mode: workload.ModeAnswer, TTL: 0,
	})
	if err != nil {
		return res, err
	}
	if err := sim.Start(); err != nil {
		return res, err
	}

	var stateDir string
	if pack.Persist {
		dir, err := os.MkdirTemp("", "fleet-keyring-")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(dir)
		stateDir = dir
	}
	var key [cookie.KeySize]byte
	key[0] = 0x6D
	flt, err := New(Config{
		Net:         net,
		Sites:       pack.Sites,
		Seed:        splitmix(uint64(cfg.Seed) ^ 0xF1EE7),
		PublicAddr:  netip.MustParseAddrPort("192.0.2.1:53"),
		Subnet:      netip.MustParsePrefix("192.0.2.0/24"),
		ANSAddr:     netip.MustParseAddrPort("10.99.0.2:53"),
		Zone:        dnswire.MustName("foo.com"),
		Key:         key,
		FastPathTTL: time.Second,
		StateDir:    stateDir,
		Gossip:      GossipConfig{Enabled: pack.Gossip},
	})
	if err != nil {
		return res, err
	}
	if err := flt.Start(); err != nil {
		return res, err
	}

	// The population host sits just below the 10.128.0.0/9 source pool so its
	// own address never collides with a Zipf rank.
	popHost := net.AddHost("population", netip.MustParseAddr("10.127.0.1"))
	pop, err := workload.NewPopulation(workload.PopulationConfig{
		Host:     popHost,
		Sources:  pack.Sources,
		Rate:     pack.Rate,
		Target:   netip.MustParseAddrPort("192.0.2.1:53"),
		Auth:     flt.Auth(),
		Seed:     uint64(cfg.Seed)*0x9E3779B97F4A7C15 + 0x5EED,
		Duration: pack.PopDuration,
	})
	if err != nil {
		return res, err
	}
	pop.Start()

	var camp *workload.Campaign
	if phases := pack.phases(); len(phases) > 0 {
		atkHost := net.AddHost("attacker", netip.MustParseAddr("203.0.113.66"))
		camp, err = workload.NewCampaign(workload.CampaignConfig{
			Host:    atkHost,
			Target:  netip.MustParseAddrPort("192.0.2.1:53"),
			Zone:    dnswire.MustName("foo.com"),
			Seed:    uint64(cfg.Seed)*0x9E3779B97F4A7C15 + 0xA5A5,
			ANSAddr: netip.MustParseAddrPort("10.99.0.2:53"),
			Phases:  phases,
		})
		if err != nil {
			return res, err
		}
		camp.Start()
	}

	flt.Schedule(pack.Events)

	// Exact shift accounting: enumerate the population's catchment assignment
	// one millisecond either side of the pack's defining shift, and snapshot
	// the cold site's verification counters at the shift so the re-admission
	// wave is measurable on its own.
	var before, after []int
	if pack.ShiftAt > 0 {
		net.At(pack.ShiftAt-time.Millisecond, func() { before = popAssignments(flt, pop) })
		net.At(pack.ShiftAt+time.Millisecond, func() {
			after = popAssignments(flt, pop)
			if pack.ShiftSite >= 0 {
				st := flt.Site(pack.ShiftSite).Guard.Stats.Load()
				res.ColdValidAtShift = st.CookieValid
				res.ColdFastAtShift = st.FastPathHits
			}
		})
	}

	horizon := pack.End + cfg.Tail
	sched.Run(horizon)

	if err := flt.Err(); err != nil {
		return res, err
	}
	for i := range before {
		if before[i] != after[i] {
			res.MovedSources++
		}
	}
	if pack.ShiftSite >= 0 {
		st := flt.Site(pack.ShiftSite).Guard.Stats.Load()
		// Full verifications after the shift = accepted minus fast-path hits,
		// differenced across the shift snapshot.
		res.ColdReverified = (st.CookieValid - res.ColdValidAtShift) - (st.FastPathHits - res.ColdFastAtShift)
	}

	r := metrics.NewRegistry()
	flt.MetricsInto(r)
	pop.MetricsInto(r)
	if camp != nil {
		camp.MetricsInto(r)
	}
	r.FuncUint("lab_moved_sources", func() uint64 { return uint64(res.MovedSources) })
	r.FuncUint("lab_cold_reverified", func() uint64 { return res.ColdReverified })
	res.Upgrades = int(flt.Upgrades())
	res.Gossip = flt.GossipStats()
	res.GossipConvergeRounds = -1
	if _, rounds, ok := flt.GossipConvergence(); ok {
		res.GossipConvergeRounds = rounds
	}
	for i := 0; i < flt.Sites(); i++ {
		res.KeyEpochs = append(res.KeyEpochs, flt.Site(i).Guard.KeyringEpoch())
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		return res, err
	}

	res.Front = flt.Stats
	res.Sites = make([]guard.RemoteStats, flt.Sites())
	for i := range res.Sites {
		// SiteStats spans upgrades: counters of retired instances included.
		res.Sites[i] = flt.SiteStats(i)
	}
	res.Population = pop.Stats
	if camp != nil {
		res.AttackSent = camp.Sent()
	}
	res.VerifiedSources = pack.Sources
	res.MetricsText = sb.String()

	flt.Close()
	pop.Stop()
	sim.Close()
	return res, nil
}

// popAssignments maps every population rank to its current catchment site.
func popAssignments(f *Fleet, pop *workload.Population) []int {
	out := make([]int, pop.Sources())
	for r := 1; r <= pop.Sources(); r++ {
		out[r-1] = f.Catchment().SiteFor(pop.Addr(r))
	}
	return out
}
