package fleet

import (
	"net/netip"
	"testing"
)

// testAddrs enumerates n deterministic IPv4 sources.
func testAddrs(n int) []netip.Addr {
	out := make([]netip.Addr, n)
	for i := range out {
		v := uint32(0x0A800000 + i) // 10.128.0.0 onward, the population pool
		out[i] = netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
	}
	return out
}

func assignments(c *Catchment, addrs []netip.Addr) []int {
	out := make([]int, len(addrs))
	for i, a := range addrs {
		out[i] = c.SiteFor(a)
	}
	return out
}

func counts(assign []int, sites int) []int {
	out := make([]int, sites+1) // out[sites] counts blackholed (-1)
	for _, s := range assign {
		if s < 0 {
			out[sites]++
		} else {
			out[s]++
		}
	}
	return out
}

func TestCatchmentBalancesByWeight(t *testing.T) {
	addrs := testAddrs(30_000)
	even := NewCatchment(1, 1, 1, 1)
	n := counts(assignments(even, addrs), 3)
	for s := 0; s < 3; s++ {
		if frac := float64(n[s]) / float64(len(addrs)); frac < 0.30 || frac > 0.37 {
			t.Errorf("equal weights: site %d holds %.3f, want ~1/3", s, frac)
		}
	}
	weighted := NewCatchment(1, 2, 1, 1)
	n = counts(assignments(weighted, addrs), 3)
	if frac := float64(n[0]) / float64(len(addrs)); frac < 0.45 || frac > 0.55 {
		t.Errorf("weight 2: site 0 holds %.3f, want ~1/2", frac)
	}
}

func TestCatchmentDeterministic(t *testing.T) {
	addrs := testAddrs(5000)
	a := assignments(NewCatchment(7, 1, 1, 1), addrs)
	b := assignments(NewCatchment(7, 1, 1, 1), addrs)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different assignment for %v: %d vs %d", addrs[i], a[i], b[i])
		}
	}
	c := assignments(NewCatchment(8, 1, 1, 1), addrs)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical maps")
	}
}

// TestCatchmentMinimalDisruption pins the rendezvous property the drain
// events rely on: zeroing one site's weight moves exactly that site's
// sources and nobody else; restoring returns the original map bit for bit.
func TestCatchmentMinimalDisruption(t *testing.T) {
	addrs := testAddrs(20_000)
	c := NewCatchment(3, 1, 1, 1)
	before := assignments(c, addrs)
	c.SetWeight(0, 0) // drain site 0
	during := assignments(c, addrs)
	for i := range addrs {
		switch {
		case during[i] == 0:
			t.Fatalf("drained site still assigned %v", addrs[i])
		case before[i] != 0 && during[i] != before[i]:
			t.Fatalf("source %v moved %d→%d though its site was not drained", addrs[i], before[i], during[i])
		}
	}
	c.Restore(0)
	after := assignments(c, addrs)
	for i := range addrs {
		if after[i] != before[i] {
			t.Fatalf("restore did not return %v to site %d (got %d)", addrs[i], before[i], after[i])
		}
	}
	if gen := c.Generation(); gen != 2 {
		t.Errorf("generation = %d, want 2 (drain + restore)", gen)
	}
}

func TestCatchmentFlap(t *testing.T) {
	addrs := testAddrs(20_000)
	c := NewCatchment(5, 1, 1, 1)
	before := assignments(c, addrs)
	c.Flap(0.5, 2)
	during := assignments(c, addrs)
	moved, onTarget := 0, 0
	for i := range addrs {
		if during[i] == 2 {
			onTarget++
		}
		if during[i] != before[i] {
			moved++
			if during[i] != 2 {
				t.Fatalf("flap moved %v to site %d, not the flap target", addrs[i], during[i])
			}
		}
	}
	// The flap captures ~50% of all sources; ~1/3 of those were already on
	// site 2, so ~1/3 of the population actually moves.
	if frac := float64(onTarget) / float64(len(addrs)); frac < 0.60 || frac > 0.72 {
		t.Errorf("flap target holds %.3f of sources, want ~2/3 (1/3 native + 1/2 captured)", frac)
	}
	if frac := float64(moved) / float64(len(addrs)); frac < 0.30 || frac > 0.37 {
		t.Errorf("flap moved %.3f of sources, want ~1/3", frac)
	}
	c.ClearFlaps()
	after := assignments(c, addrs)
	for i := range addrs {
		if after[i] != before[i] {
			t.Fatalf("clearing flaps did not restore %v", addrs[i])
		}
	}
}

func TestCatchmentBlackholesWhenAllDown(t *testing.T) {
	c := NewCatchment(1, 1, 1)
	c.SetWeight(0, 0)
	c.SetWeight(1, 0)
	if s := c.SiteFor(netip.MustParseAddr("10.128.0.1")); s != -1 {
		t.Fatalf("SiteFor with all weights zero = %d, want -1", s)
	}
	// A flap targeting a zero-weight site cannot resurrect it.
	c.Flap(1.0, 1)
	if s := c.SiteFor(netip.MustParseAddr("10.128.0.1")); s != -1 {
		t.Fatalf("flap to drained site routed to %d, want -1", s)
	}
}
