package fleet

// Gossip keyring anti-entropy. Controller push (Fleet.push) has a single
// point of failure: a rotation that lands while the controller is out leaves
// the fleet's epoch schedule frozen. The gossip layer removes it — every
// site periodically exchanges a one-line digest (its keyring epoch) with a
// deterministically rotating peer, pulls the full ring when it is behind and
// pushes when it is ahead. Adopt's epoch monotonicity makes reconciliation
// conflict-free, so the protocol converges within a bounded number of rounds
// even through link partitions: with N sites each site cycles through all
// N-1 peers, and any connected component agrees on the maximum epoch after
// at most N-1 intervals plus one pull round-trip.
//
// The wire protocol (UDP on each site's own address, default port 7946):
//
//	digest  0x01 | epoch:8          periodic advertisement
//	pull    0x02                    "you are ahead of me; send your ring"
//	state   0x03 | epoch:8 | key-even:76 | key-odd:76 [| scheme:1]
//
// The trailing scheme octet tags the ring's MAC scheme (0 = md5, 1 =
// siphash). Senders always append it; receivers accept the legacy untagged
// length too, treating it as md5 — the same compatibility rule as the
// keyring state file's optional "mac" line.
//
// A received state goes through guard.AdoptKeys → cookie.Adopt, which both
// enforces monotonicity and persists to the site's bound state file before
// returning — a site restarted mid-convergence reopens the newest ring it
// had durably adopted.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"time"

	"dnsguard/internal/cookie"
	"dnsguard/internal/metrics"
	"dnsguard/internal/netapi"
)

// GossipConfig parameterizes the anti-entropy layer.
type GossipConfig struct {
	// Enabled switches keyring distribution from controller push to gossip.
	Enabled bool
	// Interval is the digest period (default 100ms).
	Interval time.Duration
	// Port is the UDP port each site's gossip endpoint binds (default 7946,
	// memberlist's).
	Port uint16
}

func (c *GossipConfig) normalize() {
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.Port == 0 {
		c.Port = 7946
	}
}

// GossipStats counts anti-entropy activity fleet-wide.
type GossipStats struct {
	// Digests counts periodic digest advertisements sent.
	Digests uint64
	// Pulls counts behind-digest pull requests sent.
	Pulls uint64
	// Pushes counts full key states sent (ahead-digest push or pull answer).
	Pushes uint64
	// Adopts counts epoch-advancing adoptions at receiving sites.
	Adopts uint64
}

// gossip message types.
const (
	gossipDigest = 0x01
	gossipPull   = 0x02
	gossipState  = 0x03
)

// gossipStateLen is the wire size of a legacy (untagged) state message;
// tagged messages carry one more scheme octet.
const gossipStateLen = 1 + 8 + 2*cookie.KeySize

// Scheme octet values for tagged state messages.
const (
	gossipSchemeMD5     = 0
	gossipSchemeSipHash = 1
)

// gossipSchemeName maps a state message's scheme octet to the cookie
// package's scheme name; ok is false for octets this build does not know
// (the message is dropped — adopting a ring we cannot verify with would
// break every cookie at this site).
func gossipSchemeName(b byte) (string, bool) {
	switch b {
	case gossipSchemeMD5:
		return "", true
	case gossipSchemeSipHash:
		return "siphash", true
	}
	return "", false
}

// gossipSchemeByte is the inverse, for senders.
func gossipSchemeByte(name string) byte {
	if name == "siphash" {
		return gossipSchemeSipHash
	}
	return gossipSchemeMD5
}

// startGossip binds each site's gossip endpoint and spawns its sender and
// receiver procs.
func (f *Fleet) startGossip() error {
	f.gossipConns = make([]netapi.UDPConn, len(f.sites))
	for i, s := range f.sites {
		conn, err := s.Host.ListenUDP(f.gossipAddr(i))
		if err != nil {
			return fmt.Errorf("fleet: site %d gossip endpoint: %w", i, err)
		}
		f.gossipConns[i] = conn
		i := i
		s.Host.Go(fmt.Sprintf("gossip-send-%d", i), func() { f.gossipSendLoop(i) })
		s.Host.Go(fmt.Sprintf("gossip-recv-%d", i), func() { f.gossipRecvLoop(i) })
	}
	return nil
}

// gossipAddr is site i's gossip endpoint.
func (f *Fleet) gossipAddr(i int) netip.AddrPort {
	return netip.AddrPortFrom(siteAddr(i), f.cfg.Gossip.Port)
}

// gossipSendLoop advertises site i's keyring epoch every interval to a
// deterministically rotating peer: round r goes to (i+1+r mod N-1) mod N, so
// every site contacts every other within N-1 rounds — the property that
// bounds convergence even when one pairwise link is partitioned.
func (f *Fleet) gossipSendLoop(i int) {
	h := f.sites[i].Host
	n := len(f.sites)
	for round := 0; ; round++ {
		h.Sleep(f.cfg.Gossip.Interval)
		if f.stopped {
			return
		}
		if f.down[i] || n < 2 {
			continue // a restarting site is out of the mesh until it rejoins
		}
		peer := (i + 1 + round%(n-1)) % n
		var msg [9]byte
		msg[0] = gossipDigest
		binary.BigEndian.PutUint64(msg[1:], f.sites[i].auth.State().Epoch)
		f.gstats.Digests++
		if f.gossipConns[i].WriteTo(msg[:], f.gossipAddr(peer)) != nil {
			return // endpoint closed
		}
	}
}

// gossipRecvLoop dispatches incoming gossip traffic for site i.
func (f *Fleet) gossipRecvLoop(i int) {
	conn := f.gossipConns[i]
	for {
		b, src, err := conn.ReadFrom(netapi.NoTimeout)
		if err != nil {
			return // endpoint closed
		}
		if f.stopped || f.down[i] || len(b) == 0 {
			continue
		}
		f.gossipHandle(i, src, b)
	}
}

// gossipHandle reconciles one incoming message at site i: push-pull
// anti-entropy keyed purely on epoch comparison.
func (f *Fleet) gossipHandle(i int, src netip.AddrPort, b []byte) {
	switch b[0] {
	case gossipDigest:
		if len(b) != 9 {
			return
		}
		remote := binary.BigEndian.Uint64(b[1:])
		mine := f.sites[i].auth.State().Epoch
		switch {
		case remote > mine:
			f.gstats.Pulls++
			_ = f.gossipConns[i].WriteTo([]byte{gossipPull}, src)
		case remote < mine:
			f.gossipSendState(i, src)
		}
	case gossipPull:
		f.gossipSendState(i, src)
	case gossipState:
		if len(b) != gossipStateLen && len(b) != gossipStateLen+1 {
			return
		}
		var st cookie.KeyState
		if len(b) == gossipStateLen+1 {
			name, known := gossipSchemeName(b[gossipStateLen])
			if !known {
				return
			}
			st.Scheme = name
		}
		st.Epoch = binary.BigEndian.Uint64(b[1:9])
		copy(st.Keys[0][:], b[9:9+cookie.KeySize])
		copy(st.Keys[1][:], b[9+cookie.KeySize:gossipStateLen])
		g := f.sites[i].Guard
		before := f.sites[i].auth.State().Epoch
		if g.AdoptKeys(st) && st.Epoch > before {
			f.gstats.Adopts++
			f.noteEpoch(st.Epoch)
		}
	}
}

// gossipSendState ships site i's full keyring to a peer endpoint.
func (f *Fleet) gossipSendState(i int, to netip.AddrPort) {
	st := f.sites[i].auth.State()
	b := make([]byte, gossipStateLen+1)
	b[0] = gossipState
	binary.BigEndian.PutUint64(b[1:9], st.Epoch)
	copy(b[9:], st.Keys[0][:])
	copy(b[9+cookie.KeySize:], st.Keys[1][:])
	b[gossipStateLen] = gossipSchemeByte(st.Scheme)
	f.gstats.Pushes++
	_ = f.gossipConns[i].WriteTo(b, to)
}

// seedRotation is Rotate under gossip: exactly one live site adopts the next
// epoch (with deterministically derived key material — simulations must
// replay bit-identically) and anti-entropy spreads it. The controller, when
// up, adopts the same state so pre-provisioned cookie minting stays current;
// when down, the fleet converges without it and the population's older
// cookies ride the previous-epoch grace window.
func (f *Fleet) seedRotation() error {
	seed := -1
	for i := range f.sites {
		if !f.down[i] {
			seed = i
			break
		}
	}
	if seed < 0 {
		return errors.New("fleet: no live site to seed a rotation")
	}
	st := f.sites[seed].auth.State()
	st.Epoch++
	st.Keys[st.Epoch&1] = f.deriveKey(st.Epoch)
	if !f.sites[seed].Guard.AdoptKeys(st) {
		return fmt.Errorf("fleet: site %d refused seeded epoch %d", seed, st.Epoch)
	}
	f.seededAt[st.Epoch] = f.cfg.Net.Scheduler().Now()
	f.noteEpoch(st.Epoch)
	if !f.ctrlDown {
		f.controller.Adopt(st)
	}
	return nil
}

// deriveKey expands (fleet seed, epoch) into rotation key material via the
// splitmix64 stream. Production guards rotate with crypto/rand
// (Authenticator.Rotate); the simulated fleet needs replayable keys.
func (f *Fleet) deriveKey(epoch uint64) [cookie.KeySize]byte {
	var k [cookie.KeySize]byte
	var buf [cookie.KeySize + 8]byte
	x := splitmix(f.cfg.Seed ^ epoch*0xA24BAED4963EE407)
	for o := 0; o < cookie.KeySize; o += 8 {
		x = splitmix(x)
		binary.BigEndian.PutUint64(buf[o:], x)
	}
	copy(k[:], buf[:cookie.KeySize])
	return k
}

// noteEpoch records fleet-wide convergence on epoch: the first moment every
// site's keyring has reached it.
func (f *Fleet) noteEpoch(epoch uint64) {
	if _, done := f.convergedAt[epoch]; done {
		return
	}
	for _, s := range f.sites {
		if s.auth.State().Epoch < epoch {
			return
		}
	}
	f.convergedAt[epoch] = f.cfg.Net.Scheduler().Now()
}

// GossipStats returns the fleet-wide anti-entropy counters.
func (f *Fleet) GossipStats() GossipStats { return f.gstats }

// GossipConvergence reports, for the highest seeded epoch that has fully
// converged, how many gossip intervals elapsed between seeding and the last
// site's adoption. ok is false when no seeded epoch has converged.
func (f *Fleet) GossipConvergence() (epoch uint64, rounds int, ok bool) {
	for e, at := range f.seededAt {
		done, conv := f.convergedAt[e]
		if !conv || e < epoch {
			continue
		}
		epoch = e
		iv := f.cfg.Gossip.Interval
		rounds = int((done - at + iv - 1) / iv)
		ok = true
	}
	return epoch, rounds, ok
}

// gossipMetricsInto registers the fleet_gossip_* series.
func (f *Fleet) gossipMetricsInto(r *metrics.Registry) {
	r.FuncUint("fleet_gossip_digests", func() uint64 { return f.gstats.Digests })
	r.FuncUint("fleet_gossip_pulls", func() uint64 { return f.gstats.Pulls })
	r.FuncUint("fleet_gossip_pushes", func() uint64 { return f.gstats.Pushes })
	r.FuncUint("fleet_gossip_adopts", func() uint64 { return f.gstats.Adopts })
	r.FuncUint("fleet_gossip_converge_rounds", func() uint64 {
		if _, rounds, ok := f.GossipConvergence(); ok {
			return uint64(rounds)
		}
		return 0
	})
}
