// Package tcpproxy implements the DNS guard's kernel-level TCP proxy
// (§III-C): it terminates TCP connections addressed to the protected ANS
// (whose address the guard intercepts — the paper uses Linux DNAT), converts
// each DNS-over-TCP request to UDP toward the real ANS, and converts the
// response back. TCP's three-way handshake proves the requester's source
// address; SYN cookies (in the TCP stack underneath) keep the handshake
// itself stateless.
//
// Per the paper, the proxy defends its own resources: connections living
// longer than 5×RTT are torn down, and per-client token buckets bound the
// rate of new connections.
package tcpproxy

import (
	"errors"
	"fmt"
	"net/netip"
	"sync/atomic"
	"time"

	"dnsguard/internal/dnswire"
	"dnsguard/internal/metrics"
	"dnsguard/internal/netapi"
	"dnsguard/internal/ratelimit"
)

// Config parameterizes a Proxy.
type Config struct {
	// Env supplies clock and sockets.
	Env netapi.Env
	// Listen is the TCP service address (the protected ANS's public
	// address, port 53).
	Listen netip.AddrPort
	// ANSAddr is the real ANS's UDP address.
	ANSAddr netip.AddrPort
	// RTT is the estimated client round-trip time; the connection
	// duration cap is 5×RTT (§III-C). 0 means 200ms.
	RTT time.Duration
	// MaxDuration overrides the 5×RTT duration cap when positive.
	MaxDuration time.Duration
	// UpstreamTimeout bounds the ANS's answer time. 0 means 2s.
	UpstreamTimeout time.Duration
	// ConnRate and ConnBurst bound per-client new-connection rates.
	// Zero means 50/s with burst 20.
	ConnRate  float64
	ConnBurst float64
	// MaxConcurrent bounds simultaneous proxied connections. 0 means
	// 8192.
	MaxConcurrent int
	// CPU, when non-nil, is charged CostPerRequest for every proxied
	// request (the simulator's kernel-TCP service time).
	CPU CPUWorker
	// CostPerRequest computes the service cost given the current number
	// of live connections — connection-table management makes it grow
	// with concurrency (Figure 7a).
	CostPerRequest func(live int) time.Duration
}

// CPUWorker charges simulated CPU time; netsim.(*CPU) implements it.
type CPUWorker interface {
	Work(d time.Duration)
}

func (c *Config) fillDefaults() error {
	if c.Env == nil {
		return errors.New("tcpproxy: Config.Env is required")
	}
	if !c.Listen.IsValid() || !c.ANSAddr.IsValid() {
		return errors.New("tcpproxy: Listen and ANSAddr are required")
	}
	if c.RTT <= 0 {
		c.RTT = 200 * time.Millisecond
	}
	if c.MaxDuration <= 0 {
		c.MaxDuration = 5 * c.RTT
	}
	if c.UpstreamTimeout <= 0 {
		c.UpstreamTimeout = 2 * time.Second
	}
	if c.ConnRate <= 0 {
		c.ConnRate = 50
	}
	if c.ConnBurst <= 0 {
		c.ConnBurst = 20
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8192
	}
	return nil
}

// Stats counts proxy activity. Fields are written atomically (the accept
// loop and per-connection procs run concurrently under real clocks).
type Stats struct {
	Accepted      uint64
	RateRejected  uint64 // closed immediately by per-client token bucket
	FullRejected  uint64 // closed due to MaxConcurrent
	Requests      uint64 // DNS requests proxied to UDP
	Responses     uint64
	DurationKills uint64 // connections torn down at the 5×RTT cap
	UpstreamDrops uint64 // ANS did not answer in time
}

// MetricsInto registers every counter as a tcpproxy_* series reading the
// live fields.
func (s *Stats) MetricsInto(r *metrics.Registry) {
	for name, f := range map[string]*uint64{
		"tcpproxy_accepted":       &s.Accepted,
		"tcpproxy_rate_rejected":  &s.RateRejected,
		"tcpproxy_full_rejected":  &s.FullRejected,
		"tcpproxy_requests":       &s.Requests,
		"tcpproxy_responses":      &s.Responses,
		"tcpproxy_duration_kills": &s.DurationKills,
		"tcpproxy_upstream_drops": &s.UpstreamDrops,
	} {
		f := f
		r.FuncUint(name, func() uint64 { return atomic.LoadUint64(f) })
	}
}

// Proxy is a running TCP→UDP DNS proxy.
type Proxy struct {
	cfg      Config
	listener netapi.Listener
	buckets  *clientBuckets
	live     atomic.Int64 // mutated by acceptLoop and every conn proc
	closed   bool

	// Stats is updated as the proxy runs (atomically; see Stats).
	Stats Stats
}

// MetricsInto registers the proxy's counters and a live-connection gauge
// (tcpproxy_*) on r.
func (p *Proxy) MetricsInto(r *metrics.Registry) {
	p.Stats.MetricsInto(r)
	r.Func("tcpproxy_live", func() float64 { return float64(p.live.Load()) })
}

// clientBuckets is a small bounded map of per-client token buckets.
type clientBuckets struct {
	rate, burst float64
	m           map[netip.Addr]*ratelimit.TokenBucket
}

func (cb *clientBuckets) allow(a netip.Addr, now time.Duration) bool {
	b, ok := cb.m[a]
	if !ok {
		if len(cb.m) > 65536 {
			cb.m = make(map[netip.Addr]*ratelimit.TokenBucket) // crude reset under spray
		}
		b = ratelimit.NewTokenBucket(cb.rate, cb.burst, now)
		cb.m[a] = b
	}
	return b.Allow(now)
}

// New validates cfg and creates a proxy (not yet started).
func New(cfg Config) (*Proxy, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	return &Proxy{
		cfg:     cfg,
		buckets: &clientBuckets{rate: cfg.ConnRate, burst: cfg.ConnBurst, m: make(map[netip.Addr]*ratelimit.TokenBucket)},
	}, nil
}

// Start binds the listener and spawns the accept proc.
func (p *Proxy) Start() error {
	l, err := p.cfg.Env.ListenTCP(p.cfg.Listen)
	if err != nil {
		return fmt.Errorf("tcpproxy: listen %v: %w", p.cfg.Listen, err)
	}
	p.listener = l
	p.cfg.Env.Go("tcpproxy-accept", p.acceptLoop)
	return nil
}

// Close stops the proxy.
func (p *Proxy) Close() {
	if p.closed {
		return
	}
	p.closed = true
	if p.listener != nil {
		_ = p.listener.Close()
	}
}

// Live reports currently proxied connections (drives the connection-table
// cost factor in experiments).
func (p *Proxy) Live() int { return int(p.live.Load()) }

func (p *Proxy) acceptLoop() {
	for {
		conn, err := p.listener.Accept(netapi.NoTimeout)
		if err != nil {
			return
		}
		now := p.cfg.Env.Now()
		if !p.buckets.allow(conn.RemoteAddr().Addr(), now) {
			atomic.AddUint64(&p.Stats.RateRejected, 1)
			_ = conn.Close()
			continue
		}
		if p.live.Load() >= int64(p.cfg.MaxConcurrent) {
			atomic.AddUint64(&p.Stats.FullRejected, 1)
			_ = conn.Close()
			continue
		}
		atomic.AddUint64(&p.Stats.Accepted, 1)
		p.live.Add(1)
		p.cfg.Env.Go("tcpproxy-conn", func() {
			defer p.live.Add(-1)
			p.serve(conn)
		})
	}
}

// serve relays one TCP connection until it closes, errors, or exceeds the
// duration cap.
func (p *Proxy) serve(conn netapi.Conn) {
	defer conn.Close()
	opened := p.cfg.Env.Now()
	var sc dnswire.FrameScanner
	buf := make([]byte, 4096)
	for {
		remain := p.cfg.MaxDuration - (p.cfg.Env.Now() - opened)
		if remain <= 0 {
			atomic.AddUint64(&p.Stats.DurationKills, 1)
			return
		}
		n, err := conn.Read(buf, remain)
		if err != nil {
			if errors.Is(err, netapi.ErrTimeout) {
				atomic.AddUint64(&p.Stats.DurationKills, 1)
			}
			return
		}
		sc.Add(buf[:n])
		for {
			frame, ok, err := sc.Next()
			if err != nil {
				return
			}
			if !ok {
				break
			}
			if !p.relay(conn, frame) {
				return
			}
		}
	}
}

// relay forwards one request frame to the ANS over UDP and writes the
// response back on the TCP connection.
func (p *Proxy) relay(conn netapi.Conn, frame []byte) bool {
	req, err := dnswire.Unpack(frame)
	if err != nil || req.Flags.QR {
		return false
	}
	atomic.AddUint64(&p.Stats.Requests, 1)
	if p.cfg.CPU != nil && p.cfg.CostPerRequest != nil {
		p.cfg.CPU.Work(p.cfg.CostPerRequest(int(p.live.Load())))
	}
	udp, err := p.cfg.Env.ListenUDP(netip.AddrPort{})
	if err != nil {
		return false
	}
	defer udp.Close()
	if err := udp.WriteTo(frame, p.cfg.ANSAddr); err != nil {
		return false
	}
	deadline := p.cfg.Env.Now() + p.cfg.UpstreamTimeout
	for {
		remain := deadline - p.cfg.Env.Now()
		if remain <= 0 {
			atomic.AddUint64(&p.Stats.UpstreamDrops, 1)
			return false
		}
		payload, _, err := udp.ReadFrom(remain)
		if err != nil {
			atomic.AddUint64(&p.Stats.UpstreamDrops, 1)
			return false
		}
		resp, err := dnswire.Unpack(payload)
		if err != nil || resp.ID != req.ID {
			continue
		}
		out, err := dnswire.AppendTCPFrame(nil, payload)
		if err != nil {
			return false
		}
		if _, err := conn.Write(out); err != nil {
			return false
		}
		atomic.AddUint64(&p.Stats.Responses, 1)
		return true
	}
}
