package tcpproxy

import (
	"net/netip"
	"testing"
	"time"

	"dnsguard/internal/ans"
	"dnsguard/internal/cookie"
	"dnsguard/internal/dnswire"
	"dnsguard/internal/guard"

	"dnsguard/internal/netsim"
	"dnsguard/internal/resolver"
	"dnsguard/internal/tcpsim"
	"dnsguard/internal/vclock"
	"dnsguard/internal/zone"
)

const fooZoneText = `
$ORIGIN foo.com.
@ 3600 IN SOA ns1 admin 1 7200 600 360000 60
@ 3600 IN NS ns1
ns1 3600 IN A 192.0.2.1
www 300 IN A 198.51.100.10
`

func mustAddr(s string) netip.Addr   { return netip.MustParseAddr(s) }
func mustAP(s string) netip.AddrPort { return netip.MustParseAddrPort(s) }

// fixture: guard in TCP-redirect mode + TCP proxy in front of foo.com's ANS.
type fixture struct {
	sched     *vclock.Scheduler
	net       *netsim.Network
	proxy     *Proxy
	g         *guard.Remote
	fooNS     *ans.Server
	lrs       *netsim.Host
	guardHost *netsim.Host
	res       *resolver.Resolver
	gStack    *tcpsim.Stack
}

func newFixture(t *testing.T, mutate func(*Config)) *fixture {
	t.Helper()
	sched := vclock.New(55)
	network := netsim.New(sched, 5*time.Millisecond)
	f := &fixture{sched: sched, net: network}

	ansHost := network.AddHost("foo-ans", mustAddr("10.99.0.2"))
	srv, err := ans.New(ans.Config{
		Env: ansHost, Addr: mustAP("10.99.0.2:53"),
		Zone: zone.MustParse(fooZoneText, dnswire.Root),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	f.fooNS = srv

	guardHost := network.AddHost("guard", mustAddr("10.99.0.1"))
	f.guardHost = guardHost
	guardHost.ClaimAddr(mustAddr("192.0.2.1"))
	network.SetLatency(guardHost, ansHost, 100*time.Microsecond)
	f.gStack = tcpsim.Install(guardHost, tcpsim.Config{SYNCookies: true})

	tap, err := guardHost.OpenTap()
	if err != nil {
		t.Fatal(err)
	}
	g, err := guard.NewRemote(guard.RemoteConfig{
		Env:        guardHost,
		IO:         guard.TapIO{Tap: tap},
		PublicAddr: mustAP("192.0.2.1:53"),
		ANSAddr:    mustAP("10.99.0.2:53"),
		Zone:       dnswire.MustName("foo.com"),
		Fallback:   guard.SchemeTCP,
		Auth:       newAuth(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	f.g = g

	cfg := Config{
		Env:     guardHost,
		Listen:  mustAP("192.0.2.1:53"),
		ANSAddr: mustAP("10.99.0.2:53"),
		RTT:     10 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	f.proxy = p

	f.lrs = network.AddHost("lrs", mustAddr("10.0.0.53"))
	tcpsim.Install(f.lrs, tcpsim.Config{})
	res, err := resolver.New(resolver.Config{
		Env:       f.lrs,
		RootHints: []netip.AddrPort{mustAP("192.0.2.1:53")},
		Timeout:   time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.res = res
	return f
}

func newAuth() *cookie.Authenticator {
	var key [cookie.KeySize]byte
	for i := range key {
		key[i] = byte(i)
	}
	return cookie.NewAuthenticatorWithKey(key)
}

func (f *fixture) run(t *testing.T, fn func()) {
	t.Helper()
	f.sched.Go("test", fn)
	f.sched.Run(15 * time.Minute)
}

func TestTCPSchemeEndToEnd(t *testing.T) {
	f := newFixture(t, nil)
	var lat time.Duration
	f.run(t, func() {
		start := f.sched.Now()
		res, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA)
		lat = f.sched.Now() - start
		if err != nil {
			t.Errorf("Resolve: %v (guard %+v proxy %+v)", err, f.g.Stats, f.proxy.Stats)
			return
		}
		if len(res.Answers) != 1 || res.Answers[0].Data.(*dnswire.AData).Addr != mustAddr("198.51.100.10") {
			t.Errorf("answers = %v", res.Answers)
		}
	})
	// Paper Table II: TCP scheme is always ~3 RTT (TC redirect + handshake
	// + query/response): 34.5ms at RTT 10.9. Ours: 30ms + LAN hops.
	if lat < 29*time.Millisecond || lat > 33*time.Millisecond {
		t.Errorf("latency = %v, want ~30ms (3 RTT)", lat)
	}
	if f.g.Stats.TCRedirects != 1 {
		t.Errorf("redirects = %d, want 1", f.g.Stats.TCRedirects)
	}
	if f.proxy.Stats.Requests != 1 || f.proxy.Stats.Responses != 1 {
		t.Errorf("proxy stats = %+v", f.proxy.Stats)
	}
	if f.fooNS.Stats.UDPQueries != 1 {
		t.Errorf("ANS queries = %d, want 1 (over UDP, not TCP)", f.fooNS.Stats.UDPQueries)
	}
	if f.fooNS.Stats.TCPQueries != 0 {
		t.Errorf("ANS saw %d TCP queries; the proxy must offload TCP", f.fooNS.Stats.TCPQueries)
	}
}

func TestTCPSchemeSecondQueryStillThreeRTT(t *testing.T) {
	// TCP-based protection has no cacheable credential: every request is
	// redirected (the "Best Latency 3 RTT" row of Table I).
	f := newFixture(t, nil)
	var lat time.Duration
	f.run(t, func() {
		if _, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA); err != nil {
			t.Errorf("first: %v", err)
			return
		}
		f.sched.Sleep(400 * time.Second) // let the answer TTL (300s) lapse
		start := f.sched.Now()
		if _, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA); err != nil {
			t.Errorf("second: %v", err)
			return
		}
		lat = f.sched.Now() - start
	})
	if lat < 29*time.Millisecond || lat > 33*time.Millisecond {
		t.Errorf("second-query latency = %v, want ~30ms (3 RTT, no caching win)", lat)
	}
	if f.g.Stats.TCRedirects != 2 {
		t.Errorf("redirects = %d, want 2", f.g.Stats.TCRedirects)
	}
}

func TestProxyDurationCap(t *testing.T) {
	f := newFixture(t, nil) // cap = 5×10ms = 50ms
	f.run(t, func() {
		conn, err := f.lrs.DialTCP(mustAP("192.0.2.1:53"))
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		defer conn.Close()
		// Send nothing; the proxy must kill the idle connection at ~50ms.
		start := f.sched.Now()
		buf := make([]byte, 16)
		_, err = conn.Read(buf, time.Second)
		elapsed := f.sched.Now() - start
		if err == nil {
			t.Error("read succeeded on a capped connection")
			return
		}
		if elapsed > 100*time.Millisecond {
			t.Errorf("connection lived %v, cap is 50ms", elapsed)
		}
	})
	if f.proxy.Stats.DurationKills != 1 {
		t.Errorf("duration kills = %d, want 1", f.proxy.Stats.DurationKills)
	}
}

func TestProxyConnRateLimiting(t *testing.T) {
	f := newFixture(t, func(c *Config) {
		c.ConnRate = 10
		c.ConnBurst = 5
	})
	served, refused := 0, 0
	f.run(t, func() {
		q, _ := dnswire.NewQuery(1, dnswire.MustName("www.foo.com"), dnswire.TypeA).Pack()
		frame, _ := dnswire.AppendTCPFrame(nil, q)
		for i := 0; i < 50; i++ {
			conn, err := f.lrs.DialTCP(mustAP("192.0.2.1:53"))
			if err != nil {
				refused++
				continue
			}
			if _, err := conn.Write(frame); err != nil {
				refused++
				_ = conn.Close()
				continue
			}
			buf := make([]byte, 2048)
			if _, err := conn.Read(buf, 100*time.Millisecond); err != nil {
				refused++
			} else {
				served++
			}
			_ = conn.Close()
		}
	})
	if served > 25 {
		t.Errorf("served = %d of 50 rapid connections, want most rejected", served)
	}
	if f.proxy.Stats.RateRejected == 0 {
		t.Error("rate limiter never rejected")
	}
}

func TestProxyConcurrentClients(t *testing.T) {
	f := newFixture(t, func(c *Config) {
		c.ConnRate = 1e6
		c.ConnBurst = 1e6
	})
	const n = 100
	done := 0
	for i := 0; i < n; i++ {
		id := uint16(i + 1)
		f.sched.Go("client", func() {
			conn, err := f.lrs.DialTCP(mustAP("192.0.2.1:53"))
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer conn.Close()
			q, _ := dnswire.NewQuery(id, dnswire.MustName("www.foo.com"), dnswire.TypeA).Pack()
			frame, _ := dnswire.AppendTCPFrame(nil, q)
			if _, err := conn.Write(frame); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			var sc dnswire.FrameScanner
			buf := make([]byte, 2048)
			for {
				rn, err := conn.Read(buf, time.Second)
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				sc.Add(buf[:rn])
				msg, ok, _ := sc.Next()
				if ok {
					resp, err := dnswire.Unpack(msg)
					if err != nil || resp.ID != id {
						t.Errorf("bad response: %v %v", resp, err)
						return
					}
					done++
					return
				}
			}
		})
	}
	f.sched.Run(time.Minute)
	if done != n {
		t.Fatalf("done = %d, want %d", done, n)
	}
	if f.proxy.Live() != 0 {
		t.Fatalf("live = %d after completion", f.proxy.Live())
	}
}

func TestProxyMaxConcurrent(t *testing.T) {
	f := newFixture(t, func(c *Config) {
		c.ConnRate = 1e6
		c.ConnBurst = 1e6
		c.MaxConcurrent = 5
		c.MaxDuration = 10 * time.Second
	})
	for i := 0; i < 20; i++ {
		f.sched.Go("holder", func() {
			conn, err := f.lrs.DialTCP(mustAP("192.0.2.1:53"))
			if err != nil {
				return
			}
			defer conn.Close()
			buf := make([]byte, 16)
			_, _ = conn.Read(buf, 5*time.Second) // hold open
		})
	}
	f.sched.Run(time.Minute)
	if f.proxy.Stats.FullRejected == 0 {
		t.Error("MaxConcurrent never enforced")
	}
	if f.proxy.Stats.Accepted > 6 {
		t.Errorf("accepted = %d with MaxConcurrent 5", f.proxy.Stats.Accepted)
	}
}
