package tcpproxy

import (
	"testing"
	"time"

	"dnsguard/internal/dnswire"
	"dnsguard/internal/netsim"
)

// The proxy's two DoS backstops — the 5×RTT duration cap and the
// token-bucket connection-rate limit — must hold up when the network itself
// is degraded, not just on a clean link: jitter stretches legitimate
// connections toward the cap, and a partition turns accepted connections
// into zombies the cap must reap.

func TestProxyDurationCapUnderJitter(t *testing.T) {
	f := newFixture(t, nil) // cap = 5×10ms = 50ms
	// Jitter every segment between the LRS and the guard by up to 15 ms
	// each way. A handshake still completes, but an idle connection must
	// still die at the cap — jitter must not let it linger unboundedly.
	f.net.SetLinkFaults(f.lrs, f.guardHost, netsim.Faults{Jitter: 15 * time.Millisecond})
	f.run(t, func() {
		conn, err := f.lrs.DialTCP(mustAP("192.0.2.1:53"))
		if err != nil {
			t.Errorf("dial under jitter: %v", err)
			return
		}
		defer conn.Close()
		start := f.sched.Now()
		buf := make([]byte, 16)
		_, err = conn.Read(buf, 2*time.Second)
		elapsed := f.sched.Now() - start
		if err == nil {
			t.Error("read succeeded on a capped connection")
			return
		}
		// Cap is 50 ms from accept; allow the RST itself to be jittered.
		if elapsed > 150*time.Millisecond {
			t.Errorf("connection lived %v under jitter, cap is 50ms", elapsed)
		}
	})
	if f.proxy.Stats.DurationKills != 1 {
		t.Errorf("duration kills = %d, want 1", f.proxy.Stats.DurationKills)
	}
}

func TestProxyDurationCapReapsPartitionedClients(t *testing.T) {
	// A client completes the handshake, then the WAN partitions: the client
	// can never FIN. The duration cap is what frees the proxy slot — without
	// it a slow-drip attacker behind lossy links would pin MaxConcurrent.
	f := newFixture(t, func(c *Config) {
		c.MaxConcurrent = 4
		c.ConnRate = 1e6
		c.ConnBurst = 1e6
	})
	for i := 0; i < 4; i++ {
		f.sched.Go("zombie", func() {
			conn, err := f.lrs.DialTCP(mustAP("192.0.2.1:53"))
			if err != nil {
				return
			}
			defer conn.Close()
			buf := make([]byte, 16)
			_, _ = conn.Read(buf, 10*time.Second)
		})
	}
	// Sever the link shortly after the handshakes complete.
	f.net.PartitionFor(f.lrs, f.guardHost, 30*time.Millisecond, 5*time.Second)
	f.sched.Run(10 * time.Second)
	if f.proxy.Stats.DurationKills != 4 {
		t.Errorf("duration kills = %d, want all 4 partitioned connections reaped", f.proxy.Stats.DurationKills)
	}
	if live := f.proxy.Live(); live != 0 {
		t.Errorf("live = %d after reaping, want 0", live)
	}
}

func TestProxyConnRateLimitUnderJitterAndDuplication(t *testing.T) {
	// Duplicated SYNs must not double-count against (or bypass) the token
	// bucket, and jitter must not smear the arrival rate below the
	// limiter's threshold. 50 rapid attempts against rate 10/s, burst 5:
	// most must still be rejected.
	f := newFixture(t, func(c *Config) {
		c.ConnRate = 10
		c.ConnBurst = 5
	})
	f.net.SetLinkFaults(f.lrs, f.guardHost, netsim.Faults{
		Duplicate: 0.5,
		Jitter:    5 * time.Millisecond,
	})
	served, refused := 0, 0
	f.run(t, func() {
		q, _ := dnswire.NewQuery(1, dnswire.MustName("www.foo.com"), dnswire.TypeA).Pack()
		frame, _ := dnswire.AppendTCPFrame(nil, q)
		for i := 0; i < 50; i++ {
			conn, err := f.lrs.DialTCP(mustAP("192.0.2.1:53"))
			if err != nil {
				refused++
				continue
			}
			if _, err := conn.Write(frame); err != nil {
				refused++
				_ = conn.Close()
				continue
			}
			buf := make([]byte, 2048)
			if _, err := conn.Read(buf, 200*time.Millisecond); err != nil {
				refused++
			} else {
				served++
			}
			_ = conn.Close()
		}
	})
	if served > 25 {
		t.Errorf("served = %d of 50 rapid connections under faults, want most rejected", served)
	}
	if f.proxy.Stats.RateRejected == 0 {
		t.Error("rate limiter never rejected under faults")
	}
	if served == 0 {
		t.Error("rate limiter starved every legitimate connection")
	}
}
