// Fleet acceptance rig: runs every shipped fleet pack (catchment shift,
// site failure) on the virtual clock and reduces each run to one row for
// BENCH_engine.json, so the anycast tier's behavior under routing churn is
// tracked next to the single-instance dataplane numbers.
package experiments

import (
	"fmt"
	"io"
	"time"

	"dnsguard/internal/fleet"
)

// FleetBenchResult is one fleet pack reduced to its headline counters;
// benchtab serializes these under the "fleet" key of BENCH_engine.json.
type FleetBenchResult struct {
	Pack    string `json:"pack"`
	Sites   int    `json:"sites"`
	Sources int    `json:"sources"`
	// FlowsSent/Answered are the verified population's totals; Goodput is
	// their ratio — 1.0 means no verified flow was lost to the scripted
	// routing churn.
	FlowsSent uint64  `json:"flows_sent"`
	Answered  uint64  `json:"answered"`
	Goodput   float64 `json:"goodput"`
	// AttackSent is the spoofed flood volume the fleet absorbed meanwhile.
	AttackSent uint64 `json:"attack_sent"`
	// MovedSources counts population sources the pack's defining shift
	// re-routed; ColdReverified counts the full cookie verifications the
	// shift target performed afterwards (fleet-shared keyring re-admission).
	MovedSources   int    `json:"moved_sources"`
	ColdReverified uint64 `json:"cold_reverified"`
	// Blackholed counts packets lost at the front while a dead site's
	// routes were still advertised.
	Blackholed uint64 `json:"blackholed"`
	// Fleet-wide guard counters.
	CookieValid    uint64 `json:"cookie_valid"`
	CookieInvalid  uint64 `json:"cookie_invalid"`
	RL2Dropped     uint64 `json:"rl2_dropped"`
	NewcomerGrants uint64 `json:"newcomer_grants"`
	// Elapsed is the real time the simulation took (the virtual horizon is
	// fixed by the pack).
	Elapsed time.Duration `json:"elapsed_ns"`
}

// FleetBenchOptions parameterizes a FleetBench sweep.
type FleetBenchOptions struct {
	// Seed keys every run (default 42, the golden-snapshot seed).
	Seed int64
	// Quick scales the populations down ~10x for a fast smoke pass.
	Quick bool
}

// FleetBench runs every shipped fleet pack and returns one row per pack.
func FleetBench(opts FleetBenchOptions) ([]FleetBenchResult, error) {
	if opts.Seed == 0 {
		opts.Seed = 42
	}
	var rows []FleetBenchResult
	for _, p := range fleet.Packs() {
		cfg := fleet.LabConfig{Pack: p, Seed: opts.Seed}
		if opts.Quick {
			cfg.Sources = p.Sources / 10
			cfg.Rate = p.Rate / 4
		}
		start := time.Now()
		res, err := fleet.RunLab(cfg)
		if err != nil {
			return nil, fmt.Errorf("fleet pack %q: %w", p.Name, err)
		}
		tot := res.Totals()
		row := FleetBenchResult{
			Pack:           p.Name,
			Sites:          p.Sites,
			Sources:        res.VerifiedSources,
			FlowsSent:      res.Population.FlowsSent,
			Answered:       res.Population.Answered,
			AttackSent:     res.AttackSent,
			MovedSources:   res.MovedSources,
			ColdReverified: res.ColdReverified,
			Blackholed:     res.Front.Blackholed,
			CookieValid:    tot.CookieValid,
			CookieInvalid:  tot.CookieInvalid,
			RL2Dropped:     tot.RL2Dropped,
			NewcomerGrants: tot.NewcomerGrants,
			Elapsed:        time.Since(start),
		}
		if row.FlowsSent > 0 {
			row.Goodput = float64(row.Answered) / float64(row.FlowsSent)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteFleetBench prints fleet rows in benchtab's tabular style.
func WriteFleetBench(w io.Writer, rows []FleetBenchResult) {
	fmt.Fprintf(w, "%-16s %5s %8s %9s %9s %8s %8s %11s %9s %9s %8s\n",
		"pack", "sites", "sources", "flows", "answered", "goodput", "moved", "reverified", "blackhole", "attack", "invalid")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %5d %8d %9d %9d %8.4f %8d %11d %9d %9d %8d\n",
			r.Pack, r.Sites, r.Sources, r.FlowsSent, r.Answered, r.Goodput,
			r.MovedSources, r.ColdReverified, r.Blackholed, r.AttackSent, r.CookieInvalid)
	}
}
