package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// ms converts a duration to floating-point milliseconds for table output.
func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// WriteTableI renders the scheme-comparison table (paper Table I).
func WriteTableI(w io.Writer) {
	fmt.Fprintln(w, "TABLE I. Comparison among spoof detection schemes")
	fmt.Fprintf(w, "%-34s %-14s %-13s %-34s %-22s %-18s %s\n",
		"Scheme", "Worst Latency", "Best Latency", "Cookie Storage", "Cookie Range", "Amplification", "Deployment")
	for _, r := range TableI() {
		fmt.Fprintf(w, "%-34s %-14s %-13s %-34s %-22s %-18s %s\n",
			r.Scheme,
			fmt.Sprintf("%d RTT", r.WorstLatencyRTT),
			fmt.Sprintf("%d RTT", r.BestLatencyRTT),
			r.CookieStorage, r.CookieRange, r.TrafficAmplification, r.Deployment)
	}
}

// WriteTableII renders measured latencies next to the paper's (Table II).
func WriteTableII(w io.Writer, rows []TableIIRow) {
	fmt.Fprintln(w, "TABLE II. Average DNS request latency (msec); RTT = 10.9 ms")
	fmt.Fprintf(w, "%-28s %14s %14s %14s %14s\n", "Scheme", "Miss (ours)", "Miss (paper)", "Hit (ours)", "Hit (paper)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %14.1f %14.1f %14.1f %14.1f\n",
			r.Scheme, ms(r.Miss), r.PaperMissMs, ms(r.Hit), r.PaperHitMs)
	}
}

// WriteTableIII renders measured throughput next to the paper's (Table III),
// with a per-cell detail line: guard counter movement over the measurement
// window and the client-observed latency percentiles.
func WriteTableIII(w io.Writer, rows []TableIIIRow) {
	fmt.Fprintln(w, "TABLE III. Average DNS request throughput (requests/sec)")
	fmt.Fprintf(w, "%-28s %14s %14s %14s %14s\n", "Scheme", "Miss (ours)", "Miss (paper)", "Hit (ours)", "Hit (paper)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %14.0f %14.0f %14.0f %14.0f\n",
			r.Scheme, r.Miss, r.PaperMiss, r.Hit, r.PaperHit)
		writeCellDetail(w, "miss", r.MissDetail)
		writeCellDetail(w, "hit", r.HitDetail)
	}
}

func writeCellDetail(w io.Writer, label string, d CellDetail) {
	fmt.Fprintf(w, "    %-4s Δvalid=%d Δinvalid=%d Δrl1drop=%d Δfwd=%d  p50=%.2fms p90=%.2fms p99=%.2fms\n",
		label, d.CookieValid, d.CookieInvalid, d.RL1Dropped, d.Forwarded,
		ms(d.P50), ms(d.P90), ms(d.P99))
}

// WriteFigure5 renders the Figure 5 series.
func WriteFigure5(w io.Writer, points []Figure5Point) {
	fmt.Fprintln(w, "FIGURE 5. BIND 9 ANS under spoofed flood (guard on/off)")
	fmt.Fprintf(w, "%12s %14s %14s %10s %10s\n", "attack(r/s)", "legit-on(r/s)", "legit-off(r/s)", "cpuANS-on", "cpuANS-off")
	for _, p := range points {
		fmt.Fprintf(w, "%12.0f %14.0f %14.0f %9.0f%% %9.0f%%\n",
			p.AttackRate, p.ThroughputOn, p.ThroughputOff, p.CPUOn*100, p.CPUOff*100)
	}
}

// WriteFigure6 renders the Figure 6 series.
func WriteFigure6(w io.Writer, points []Figure6Point) {
	fmt.Fprintln(w, "FIGURE 6. Guard throughput under spoofed flood (modified-DNS scheme)")
	fmt.Fprintf(w, "%12s %14s %14s %12s %12s\n", "attack(r/s)", "legit-on(r/s)", "legit-off(r/s)", "cpuGuard-on", "Δdropped-on")
	for _, p := range points {
		fmt.Fprintf(w, "%12.0f %14.0f %14.0f %11.0f%% %12d\n",
			p.AttackRate, p.ThroughputOn, p.ThroughputOff, p.CPUOn*100, p.DroppedOn)
	}
}

// WriteFigure7a renders the Figure 7(a) series.
func WriteFigure7a(w io.Writer, points []Figure7aPoint) {
	fmt.Fprintln(w, "FIGURE 7a. Kernel TCP proxy throughput vs concurrent requests")
	fmt.Fprintf(w, "%12s %14s\n", "concurrent", "tput(r/s)")
	for _, p := range points {
		fmt.Fprintf(w, "%12d %14.0f\n", p.Concurrency, p.Throughput)
	}
}

// WriteFigure7b renders the Figure 7(b) series.
func WriteFigure7b(w io.Writer, points []Figure7bPoint) {
	fmt.Fprintln(w, "FIGURE 7b. Kernel TCP proxy throughput under UDP flood (50 concurrent)")
	fmt.Fprintf(w, "%12s %14s\n", "attack(r/s)", "tput(r/s)")
	for _, p := range points {
		fmt.Fprintf(w, "%12.0f %14.0f\n", p.AttackRate, p.Throughput)
	}
}

// Rule prints a section divider.
func Rule(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}
