// Campaign-pack acceptance runs: every shipped adversarial scenario pack is
// replayed in the deterministic lab world and reported as one row of the
// DESIGN.md §13 acceptance table — which terminal rung the auto-mitigation
// selector converged on, the class evidence it accumulated, and what goodput
// the legitimate fleet kept while the ladder climbed.
package experiments

import (
	"fmt"
	"io"

	"dnsguard/internal/workload"
)

// CampaignRow is the acceptance outcome of one pack run.
type CampaignRow struct {
	Pack     string
	Class    string  // documented attack class
	Terminal string  // documented terminal rung
	Reached  string  // max rung the selector actually reached
	Sent     uint64  // attack packets emitted
	Goodput  float64 // fleet completed / ideal
	Esc      uint64
	Deesc    uint64
	Pass     bool
}

// CampaignsOptions tunes the pack runs; the zero value reproduces the
// checked-in goldens (seed 7, 2 shards, pack-default rates).
type CampaignsOptions struct {
	Seed   int64
	Shards int
}

// Campaigns runs every shipped pack in the lab world and returns one
// acceptance row per pack. A row passes when the selector's high-water rung
// equals the pack's documented terminal rung.
func Campaigns(opts CampaignsOptions) ([]CampaignRow, error) {
	if opts.Seed == 0 {
		opts.Seed = 7
	}
	var rows []CampaignRow
	for _, pack := range workload.Packs() {
		res, err := workload.RunCampaignLab(workload.CampaignLabConfig{
			Pack:   pack,
			Seed:   opts.Seed,
			Shards: opts.Shards,
		})
		if err != nil {
			return nil, fmt.Errorf("pack %s: %w", pack.Name, err)
		}
		rows = append(rows, CampaignRow{
			Pack:     pack.Name,
			Class:    pack.Class.String(),
			Terminal: pack.Terminal.String(),
			Reached:  res.Mitigation.MaxLayer.String(),
			Sent:     res.Sent,
			Goodput:  res.Goodput(),
			Esc:      res.Mitigation.Stats.Escalations,
			Deesc:    res.Mitigation.Stats.Deescalations,
			Pass:     res.Mitigation.MaxLayer == pack.Terminal,
		})
	}
	return rows, nil
}

// WriteCampaigns renders the per-pack acceptance table.
func WriteCampaigns(w io.Writer, rows []CampaignRow) {
	fmt.Fprintln(w, "CAMPAIGN PACKS. Auto-mitigation acceptance (deterministic lab, fixed seed)")
	fmt.Fprintf(w, "%-16s %-14s %-13s %-13s %10s %9s %5s %6s %6s\n",
		"pack", "class", "terminal", "reached", "attack-pkts", "goodput", "esc", "deesc", "pass")
	for _, r := range rows {
		pass := "ok"
		if !r.Pass {
			pass = "FAIL"
		}
		fmt.Fprintf(w, "%-16s %-14s %-13s %-13s %10d %8.1f%% %5d %6d %6s\n",
			r.Pack, r.Class, r.Terminal, r.Reached, r.Sent, 100*r.Goodput, r.Esc, r.Deesc, pass)
	}
}
