// Engine throughput rig: drives the sharded guard dataplane with real
// goroutines and real loopback UDP on the upstream path, measuring how qps
// scales with shard count under clean and spoofed load. Unlike the paper
// tables (virtual clock, calibrated 2006 CPU costs), this measures the
// implementation itself on the host's cores — the number the ROADMAP's
// "as fast as the hardware allows" goal tracks.
package experiments

import (
	"fmt"
	"io"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dnsguard/internal/cookie"
	"dnsguard/internal/dnswire"
	"dnsguard/internal/guard"
	"dnsguard/internal/metrics"
	"dnsguard/internal/netapi"
	"dnsguard/internal/ratelimit"
	"dnsguard/internal/realnet"
)

// EngineThroughputOptions parameterizes one EngineThroughput run. Zero
// values take defaults.
type EngineThroughputOptions struct {
	// Shards is the dataplane worker count (default 1).
	Shards int
	// Batch is the datagrams moved per I/O call (default 1 = per-packet).
	Batch int
	// SpoofFraction in [0, 1) of the load that carries forged cookies from
	// spoofed sources (default 0).
	SpoofFraction float64
	// Packets is the total datagram count driven through the guard
	// (default 24000; keep ≤ 60000 so per-run transaction IDs stay unique).
	Packets int
	// Sources is the number of distinct legitimate requesters (default 64).
	Sources int
	// QueueDepth bounds each shard's ingress queue (default 1024).
	QueueDepth int
	// FastPathTTL enables the verified-source cache (default 1 minute;
	// negative disables).
	FastPathTTL time.Duration
	// MAC selects the cookie MAC scheme ("", "md5", "siphash"); empty means
	// the paper-default MD5.
	MAC string
	// Debug, when non-nil, receives rig diagnostics.
	Debug func(format string, args ...any)
}

func (o *EngineThroughputOptions) fillDefaults() {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Batch <= 0 {
		o.Batch = 1
	}
	if o.Packets <= 0 {
		o.Packets = 24000
	}
	if o.Sources <= 0 {
		o.Sources = 64
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.FastPathTTL == 0 {
		o.FastPathTTL = time.Minute
	}
}

// EngineThroughputResult is one measured configuration; benchtab serializes
// a slice of these as BENCH_engine.json.
type EngineThroughputResult struct {
	Shards        int     `json:"shards"`
	Batch         int     `json:"batch"`
	SpoofFraction float64 `json:"spoof_fraction"`
	Packets       int     `json:"packets"`
	Completed     uint64  `json:"completed"`
	// QPS is goodput — completed verifiable queries per second — kept under
	// its historical JSON name so existing BENCH_engine.json consumers and
	// the bench-smoke gate keep reading the same field.
	QPS float64 `json:"qps"`
	// GoodputQPS duplicates QPS under its unambiguous name.
	GoodputQPS float64 `json:"goodput_qps"`
	// ProcessedQPS is dataplane throughput — every packet the shards handled
	// (including spoofed drops and sheds) per second. Under spoofed load this
	// is the number that should scale with shards even though goodput is
	// capped by the valid fraction; conflating the two was the qps-accounting
	// bug this split fixes.
	ProcessedQPS float64 `json:"processed_qps"`
	// Affine reports whether the run used shard-affine ingest (one read loop
	// per shard) rather than the central hash fan-out.
	Affine bool `json:"affine"`
	// MACScheme is the cookie MAC the run verified under ("md5"/"siphash").
	MACScheme string `json:"mac_scheme"`
	P50     time.Duration `json:"p50_ns"`
	P99     time.Duration `json:"p99_ns"`
	ShedNew uint64        `json:"shed_new"`
	ShedOld uint64        `json:"shed_old"`
	// Handoffs totals cross-shard migrations; ShardHandoffs breaks the same
	// counters out per shard (the shard<i>_handoff series /metrics already
	// exports), making affine-mode migration cost visible in the JSON rows.
	Handoffs        uint64        `json:"handoffs"`
	ShardHandoffs   []uint64      `json:"shard_handoffs,omitempty"`
	FastPathHits    uint64        `json:"fast_path_hits"`
	CookieInvalid   uint64        `json:"cookie_invalid"`
	AllocsPerPacket float64       `json:"allocs_per_packet"`
	Elapsed         time.Duration `json:"elapsed_ns"`
}

// WriteEngineBench prints a shard-scaling sweep in benchtab's tabular style.
func WriteEngineBench(w io.Writer, rows []EngineThroughputResult) {
	fmt.Fprintf(w, "%6s %5s %6s %6s %8s %11s %11s %9s %9s %9s %9s %9s %9s %10s\n",
		"shards", "batch", "spoof", "ingest", "mac", "processed", "goodput", "p50_ms", "p99_ms", "shed_new", "shed_old", "handoffs", "fastpath", "allocs/pkt")
	for _, r := range rows {
		batch := r.Batch
		if batch == 0 {
			batch = 1
		}
		ingest := "hash"
		if r.Affine {
			ingest = "affine"
		}
		mac := r.MACScheme
		if mac == "" {
			mac = "md5" // rows serialized before the scheme dimension
		}
		goodput := r.GoodputQPS
		if goodput == 0 {
			goodput = r.QPS // rows serialized before the split
		}
		fmt.Fprintf(w, "%6d %5d %6.2f %6s %8s %11.0f %11.0f %9.3f %9.3f %9d %9d %9d %9d %10.1f\n",
			r.Shards, batch, r.SpoofFraction, ingest, mac, r.ProcessedQPS, goodput,
			float64(r.P50.Nanoseconds())/1e6, float64(r.P99.Nanoseconds())/1e6,
			r.ShedNew, r.ShedOld, r.Handoffs, r.FastPathHits, r.AllocsPerPacket)
	}
}

// feedIO is a synthetic PacketIO: Read hands out a pre-built packet list
// (stamping each packet's pipeline-entry time), WriteFromTo is the guard's
// reply path and completes the latency measurement.
type feedIO struct {
	mu      sync.Mutex
	packets []feedPkt
	next    int
	rig     *engineRig
	done    chan struct{}
	once    sync.Once
}

type feedPkt struct {
	pkt   guard.Packet
	valid bool // carries a genuine cookie, so a reply is expected
}

// maxInFlightPerShard bounds the rig's outstanding verifiable queries, per
// upstream socket. UDP has no flow control: an unthrottled feed overruns the
// loopback socket buffers on the guard→ANS path and the run measures kernel
// drops, not the dataplane. Each shard forwards through its own upstream
// socket (its own kernel receive buffer), so the window scales with the
// shard count — a global 192 would throttle an 8-shard run to 24 outstanding
// queries per shard and measure the window, not the dataplane.
const maxInFlightPerShard = 192

// FlowStable implements engine.FlowStable: each feed hands out a fixed
// packet list that the rig pre-partitioned by source (flowFeed), so every
// flow arrives on exactly one feed — the property kernel SO_REUSEPORT
// hashing provides in production. This makes the rig eligible for affine
// ingest, the default multi-shard dataplane this bench measures.
func (f *feedIO) FlowStable() bool { return true }

func (f *feedIO) Read(timeout time.Duration) (guard.Packet, error) {
	f.mu.Lock()
	if f.next < len(f.packets) {
		p := f.packets[f.next]
		f.next++
		f.mu.Unlock()
		if p.valid {
			for f.rig.validOut.Load()-f.rig.completed.Load() >= f.rig.window {
				time.Sleep(50 * time.Microsecond)
			}
			f.rig.validOut.Add(1)
		}
		f.rig.stamp(p.pkt)
		return p.pkt, nil
	}
	f.mu.Unlock()
	<-f.done
	return guard.Packet{}, netapi.ErrClosed
}

// ReadBatch is the slab-path feed: it fills up to len(pkts) entries, blocking
// only while the batch is still empty (BatchConn semantics). The in-flight
// throttle is preserved — a full window ends the batch early rather than
// stalling packets already handed out.
func (f *feedIO) ReadBatch(pkts []guard.Packet, timeout time.Duration) (int, error) {
	n := 0
	for n < len(pkts) {
		f.mu.Lock()
		if f.next >= len(f.packets) {
			f.mu.Unlock()
			if n > 0 {
				return n, nil
			}
			<-f.done
			return 0, netapi.ErrClosed
		}
		p := f.packets[f.next]
		f.next++
		f.mu.Unlock()
		if p.valid {
			for f.rig.validOut.Load()-f.rig.completed.Load() >= f.rig.window {
				if n > 0 {
					// Un-pop: this reader is the feed's only consumer, so the
					// packet is simply the next batch's first entry.
					f.mu.Lock()
					f.next--
					f.mu.Unlock()
					return n, nil
				}
				time.Sleep(50 * time.Microsecond)
			}
			f.rig.validOut.Add(1)
		}
		f.rig.stamp(p.pkt)
		pkts[n] = p.pkt
		n++
	}
	return n, nil
}

func (f *feedIO) WriteFromTo(src, dst netip.AddrPort, payload []byte) error {
	f.rig.complete(dst, payload)
	return nil
}

// WriteBatch receives the guard's coalesced egress flush.
func (f *feedIO) WriteBatch(pkts []guard.Packet) error {
	for _, p := range pkts {
		f.rig.complete(p.Dst, p.Payload)
	}
	return nil
}

func (f *feedIO) Close() error {
	f.once.Do(func() { close(f.done) })
	return nil
}

type engineRig struct {
	mu        sync.Mutex
	sent      map[replyKey]time.Time
	hist      *metrics.Histogram
	window    uint64        // in-flight bound: maxInFlightPerShard × shards
	validOut  atomic.Uint64 // verifiable queries admitted to the pipeline
	completed atomic.Uint64
	lastReply atomic.Int64 // UnixNano of the latest reply
}

type replyKey struct {
	client netip.AddrPort
	id     uint16
}

func (r *engineRig) stamp(p guard.Packet) {
	if len(p.Payload) < 2 {
		return
	}
	id := uint16(p.Payload[0])<<8 | uint16(p.Payload[1])
	r.mu.Lock()
	r.sent[replyKey{p.Src, id}] = time.Now()
	r.mu.Unlock()
}

func (r *engineRig) complete(dst netip.AddrPort, payload []byte) {
	if len(payload) < 2 {
		return
	}
	id := uint16(payload[0])<<8 | uint16(payload[1])
	key := replyKey{dst, id}
	r.mu.Lock()
	start, ok := r.sent[key]
	if ok {
		delete(r.sent, key)
	}
	r.mu.Unlock()
	if !ok {
		return
	}
	r.hist.Observe(time.Since(start))
	r.completed.Add(1)
	r.lastReply.Store(time.Now().UnixNano())
}

// flowFeed assigns a source to one of n feeds by hashing the flow (FNV-1a
// over address and port), standing in for the kernel's SO_REUSEPORT 4-tuple
// hash: every packet of a flow arrives on the same feed, the invariant
// affine ingest relies on. The old round-robin `seq % n` assignment sprayed
// each source across every feed — flow-unstable delivery no production
// socket configuration exhibits.
func flowFeed(src netip.AddrPort, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(14695981039346656037)
	for _, b := range src.Addr().As4() {
		h = (h ^ uint64(b)) * 1099511628211
	}
	h = (h ^ uint64(src.Port()&0xff)) * 1099511628211
	h = (h ^ uint64(src.Port()>>8)) * 1099511628211
	// FNV's low bit is a plain XOR of the input bytes' low bits (odd
	// multiplier), so h % 2^k degenerates for correlated inputs — e.g.
	// sources built as addr=i, port=base+i have constant parity and all hash
	// to one feed. Avalanche the state (murmur3 fmix64) before reducing.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return int(h % uint64(n))
}

// EngineThroughput runs one shard/spoof configuration: an echo ANS on real
// loopback UDP behind the guard, synthetic capture interfaces in front (one
// per shard), a mix of valid NS-cookie queries from opts.Sources requesters
// and — per SpoofFraction — forged-cookie queries from spoofed sources.
// Returns completed-query throughput, end-to-end latency percentiles, shed
// and fast-path counters, and the read-path allocation rate.
func EngineThroughput(opts EngineThroughputOptions) (EngineThroughputResult, error) {
	opts.fillDefaults()
	env := realnet.New()

	// Echo ANS: flip QR, return the datagram. The question echo satisfies
	// the guard's upstream anti-spoof check; the answerless response takes
	// the guard's ServFail fabrication path, which is the full reply
	// pipeline as far as throughput is concerned.
	ansConn, err := env.ListenUDP(netip.MustParseAddrPort("127.0.0.1:0"))
	if err != nil {
		return EngineThroughputResult{}, err
	}
	defer ansConn.Close()
	// The single echo socket absorbs every shard's forwarded queries, so its
	// receive buffer must cover the whole in-flight window; the distro
	// default (~208 KiB) overflows past ~250 outstanding datagrams and the
	// run measures kernel drops. Best-effort: a capped setsockopt still
	// beats the default.
	if rb, ok := ansConn.(interface{ SetReadBuffer(int) error }); ok {
		_ = rb.SetReadBuffer(4 << 20)
	}
	// Several echo workers share the socket (UDP reads are per-datagram
	// atomic): a single echo loop serializes every shard's upstream traffic
	// and becomes the bottleneck of exactly the multi-shard runs this rig
	// exists to measure.
	echoWorkers := opts.Shards
	if echoWorkers > runtime.NumCPU() {
		echoWorkers = runtime.NumCPU()
	}
	if echoWorkers < 1 {
		echoWorkers = 1
	}
	for w := 0; w < echoWorkers; w++ {
		go func() {
			for {
				b, src, err := ansConn.ReadFrom(netapi.NoTimeout)
				if err != nil {
					return
				}
				if len(b) > 2 {
					b[2] |= 0x80 // QR: query -> response
					_ = ansConn.WriteTo(b, src)
				}
			}
		}()
	}

	var key [cookie.KeySize]byte
	for i := range key {
		key[i] = byte(i * 7)
	}
	mac, err := cookie.MACByName(opts.MAC)
	if err != nil {
		return EngineThroughputResult{}, err
	}
	auth, err := cookie.Open(cookie.Options{Key: &key, MAC: mac})
	if err != nil {
		return EngineThroughputResult{}, err
	}
	nc := cookie.NSCodec{}
	public := netip.MustParseAddrPort("192.0.2.1:53")
	child := dnswire.MustName("www.foo.com")

	rig := &engineRig{
		sent:   make(map[replyKey]time.Time),
		hist:   metrics.NewHistogram(),
		window: maxInFlightPerShard * uint64(opts.Shards),
	}
	ios := make([]*feedIO, opts.Shards)
	for i := range ios {
		ios[i] = &feedIO{rig: rig, done: make(chan struct{})}
	}

	// Pre-build the traffic so packet construction is outside the measured
	// (and allocation-counted) window. Valid sources repeat, so the fast
	// path warms; spoofed sources are all distinct, as a real flood's are.
	spoofEvery := 0
	if opts.SpoofFraction > 0 {
		spoofEvery = int(1 / opts.SpoofFraction)
	}
	victim := netip.MustParseAddr("203.0.113.250")
	for seq := 0; seq < opts.Packets; seq++ {
		var src netip.AddrPort
		var minted netip.Addr
		if spoofEvery > 0 && seq%spoofEvery == 0 {
			// Forged: cookie minted for the victim, sent from elsewhere.
			src = netip.AddrPortFrom(netip.AddrFrom4([4]byte{198, 51, byte(seq >> 8), byte(seq)}), 4000)
			minted = victim
		} else {
			i := seq % opts.Sources
			src = netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 66, byte(i >> 8), byte(i)}), uint16(3000+i))
			minted = src.Addr()
		}
		fab, err := guard.FabricateNSName(nc, auth.Mint(minted), child)
		if err != nil {
			return EngineThroughputResult{}, err
		}
		wire, err := dnswire.NewQuery(uint16(seq), fab, dnswire.TypeA).PackUDP(512)
		if err != nil {
			return EngineThroughputResult{}, err
		}
		f := ios[flowFeed(src, len(ios))]
		f.packets = append(f.packets, feedPkt{
			pkt:   guard.Packet{Src: src, Dst: public, Payload: wire},
			valid: minted == src.Addr(),
		})
	}

	gios := make([]guard.PacketIO, len(ios))
	for i, f := range ios {
		gios[i] = f
	}
	g, err := guard.NewRemote(guard.RemoteConfig{
		Env:         env,
		IOs:         gios,
		Shards:      opts.Shards,
		Batch:       opts.Batch,
		QueueDepth:  opts.QueueDepth,
		FastPathTTL: opts.FastPathTTL,
		PublicAddr:  public,
		ANSAddr:     ansConn.LocalAddr(),
		Zone:        dnswire.MustName("foo.com"),
		Fallback:    guard.SchemeDNS,
		Auth:        auth,
		// Rate limits out of the way: this rig measures the dataplane, not
		// the policy layer.
		RL1: ratelimit.Limiter1Config{PerSourceRate: 1e9, PerSourceBurst: 1e9, GlobalRate: 1e9, GlobalBurst: 1e9, TrackedSources: 4096},
		RL2: ratelimit.Limiter2Config{PerSourceRate: 1e9, PerSourceBurst: 1e9, TrackedSources: 8192},
		// Long enough that nothing expires mid-run.
		PendingTimeout: time.Minute,
	})
	if err != nil {
		return EngineThroughputResult{}, err
	}

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	rig.lastReply.Store(start.UnixNano())
	if err := g.Start(); err != nil {
		return EngineThroughputResult{}, err
	}

	// The run is over when replies stop arriving (spoofed and shed packets
	// never complete, so "all done" is a stall, not a count).
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		last := time.Unix(0, rig.lastReply.Load())
		if time.Since(last) > 300*time.Millisecond {
			break
		}
	}
	elapsed := time.Unix(0, rig.lastReply.Load()).Sub(start)
	runtime.ReadMemStats(&m1)
	if opts.Debug != nil {
		st := g.Stats.Load()
		opts.Debug("stats=%+v pending=%d", st, g.PendingEntries())
		for i := 0; i < g.Engine().Shards(); i++ {
			opts.Debug("shard %d: %+v depth=%d", i, g.Engine().Stats(i), g.Engine().QueueDepth(i))
		}
	}
	g.Close()

	res := EngineThroughputResult{
		Shards:        opts.Shards,
		Batch:         opts.Batch,
		MACScheme:     mac.Name(),
		SpoofFraction: opts.SpoofFraction,
		Packets:       opts.Packets,
		Completed:     rig.completed.Load(),
		P50:           rig.hist.Quantile(0.50),
		P99:           rig.hist.Quantile(0.99),
		Elapsed:       elapsed,
	}
	eng := g.Engine()
	res.Affine = eng.Affine()
	var handled uint64
	res.ShardHandoffs = make([]uint64, 0, eng.Shards())
	for _, st := range eng.StatsAll() {
		res.ShedNew += st.ShedNew
		res.ShedOld += st.ShedOld
		res.Handoffs += st.Handoff
		res.ShardHandoffs = append(res.ShardHandoffs, st.Handoff)
		handled += st.Handled
	}
	if elapsed > 0 {
		res.QPS = float64(res.Completed) / elapsed.Seconds()
		res.GoodputQPS = res.QPS
		res.ProcessedQPS = float64(handled) / elapsed.Seconds()
	}
	res.FastPathHits = g.Stats.Load().FastPathHits
	res.CookieInvalid = g.Stats.Load().CookieInvalid
	res.AllocsPerPacket = float64(m1.Mallocs-m0.Mallocs) / float64(opts.Packets)
	if res.Completed == 0 {
		return res, fmt.Errorf("engine throughput: no queries completed (shards=%d)", opts.Shards)
	}
	return res, nil
}
