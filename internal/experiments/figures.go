package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"dnsguard/internal/guard"
	"dnsguard/internal/metrics"
	"dnsguard/internal/netsim"
	"dnsguard/internal/workload"
)

// Figure5Point is one x-position of Figures 5(a) and 5(b): a BIND ANS under
// a spoofed flood, with the guard enabled or disabled.
type Figure5Point struct {
	AttackRate    float64 // req/s
	ThroughputOn  float64 // legitimate req/s with the guard
	ThroughputOff float64 // legitimate req/s without the guard
	CPUOn         float64 // ANS CPU utilization with the guard
	CPUOff        float64 // ANS CPU utilization without the guard
}

// Figure5Options tunes the sweep.
type Figure5Options struct {
	AttackRates []float64
	Warmup      time.Duration
	Window      time.Duration
}

func (o *Figure5Options) fill() {
	if len(o.AttackRates) == 0 {
		for r := 0.0; r <= 16000; r += 2000 {
			o.AttackRates = append(o.AttackRates, r)
		}
	}
	if o.Warmup <= 0 {
		o.Warmup = 2 * time.Second
	}
	if o.Window <= 0 {
		o.Window = 4 * time.Second
	}
}

// Figure5 reproduces §IV-C: throughput of legitimate requests and ANS CPU
// utilization for a BIND 9 server under attack, with the DNS guard on
// (activation threshold at the ANS capacity) and off. Two legitimate LRSs
// send 1K req/s each; the first uses UDP cookies, the second is redirected
// to TCP (capped by its own 2 ms/request TCP path); BIND-like clients wait
// 2 s on loss, which is what collapses the unprotected server.
func Figure5(opts Figure5Options) ([]Figure5Point, error) {
	opts.fill()
	points := make([]Figure5Point, 0, len(opts.AttackRates))
	for _, rate := range opts.AttackRates {
		p := Figure5Point{AttackRate: rate}
		for _, guardOn := range []bool{true, false} {
			tput, cpu, err := figure5Cell(rate, guardOn, opts)
			if err != nil {
				return nil, fmt.Errorf("figure 5 rate=%v on=%v: %w", rate, guardOn, err)
			}
			if guardOn {
				p.ThroughputOn, p.CPUOn = tput, cpu
			} else {
				p.ThroughputOff, p.CPUOff = tput, cpu
			}
		}
		points = append(points, p)
	}
	return points, nil
}

func figure5Cell(attackRate float64, guardOn bool, opts Figure5Options) (float64, float64, error) {
	w, err := NewWorld(WorldConfig{
		UseBIND:           true,
		GuardOff:          !guardOn,
		Scheme:            guard.SchemeDNS,
		Threshold:         14000, // the ANS's measured capacity (§IV-C)
		WithProxy:         guardOn,
		ProxyMaxDuration:  time.Second,
		RL1Generous:       true,
		TCPClientPrefixes: []netip.Prefix{netip.MustParsePrefix("10.0.1.53/32")},
	})
	if err != nil {
		return 0, 0, err
	}
	// Two legitimate LRSs at 1K req/s each, as 8 paced lanes apiece so one
	// stalled lane does not zero the whole LRS.
	const lanes = 8
	clients := make([]*workload.Client, 0, 2*lanes)
	mk := func(env *netsim.Host, kind workload.ClientKind, tcpCost time.Duration) error {
		for i := 0; i < lanes; i++ {
			c, err := workload.NewClient(workload.ClientConfig{
				Env:      env,
				Kind:     kind,
				Mode:     workload.ModeHit,
				Target:   w.Public,
				QName:    qname,
				Wait:     2 * time.Second, // BIND's retransmission timer
				Interval: lanes * time.Millisecond,
				CPU:      env.CPU(),
				TCPCost:  tcpCost,
			})
			if err != nil {
				return err
			}
			clients = append(clients, c)
			c.Start()
		}
		return nil
	}
	if err := mk(w.LRSHost, workload.KindNSName, 0); err != nil {
		return 0, 0, err
	}
	if err := mk(w.LRS2Host, workload.KindTCP, w.Costs.Server.LRSTCPClient); err != nil {
		return 0, 0, err
	}
	if attackRate > 0 {
		atk, err := workload.NewAttacker(workload.AttackerConfig{
			Host:   w.AttackHost,
			Target: w.Public,
			Rate:   attackRate,
			Kind:   workload.AttackPlain,
			QName:  qname,
		})
		if err != nil {
			return 0, 0, err
		}
		atk.Start()
	}
	completed := func() uint64 {
		var sum uint64
		for _, c := range clients {
			sum += c.Stats.Completed
		}
		return sum
	}
	meter := netsim.NewUtilizationMeter(w.ANSHost.CPU())
	w.Sched.Run(opts.Warmup)
	meter.Sample()
	tput := w.MeasureRate(opts.Warmup, opts.Warmup+opts.Window, completed)
	return tput, meter.Sample(), nil
}

// Figure6Point is one x-position of Figures 6(a) and 6(b): the guard itself
// under a spoofed flood while a legitimate LRS saturates the ANS simulator.
type Figure6Point struct {
	AttackRate    float64
	ThroughputOn  float64
	ThroughputOff float64
	CPUOn         float64 // guard CPU utilization (on-world)
	CPUOff        float64 // guard CPU when spoof detection is off: 0 (no guard)
	// DroppedOn counts requests the guard rejected over the measurement
	// window (forged cookies + rate-limited), on-world only.
	DroppedOn uint64
}

// Figure6Options tunes the sweep.
type Figure6Options struct {
	AttackRates []float64
	Clients     int
	Warmup      time.Duration
	Window      time.Duration
}

func (o *Figure6Options) fill() {
	if len(o.AttackRates) == 0 {
		for r := 0.0; r <= 250000; r += 25000 {
			o.AttackRates = append(o.AttackRates, r)
		}
	}
	if o.Clients <= 0 {
		o.Clients = 192
	}
	if o.Warmup <= 0 {
		o.Warmup = 300 * time.Millisecond
	}
	if o.Window <= 0 {
		o.Window = 700 * time.Millisecond
	}
}

// Figure6 reproduces §IV-E: a legitimate LRS (holding a valid cookie,
// modified-DNS scheme) saturates the ANS simulator while an attacker floods
// spoofed requests with forged cookies at increasing rates.
func Figure6(opts Figure6Options) ([]Figure6Point, error) {
	opts.fill()
	points := make([]Figure6Point, 0, len(opts.AttackRates))
	for _, rate := range opts.AttackRates {
		p := Figure6Point{AttackRate: rate}
		for _, guardOn := range []bool{true, false} {
			tput, cpu, dropped, err := figure6Cell(rate, guardOn, opts)
			if err != nil {
				return nil, fmt.Errorf("figure 6 rate=%v on=%v: %w", rate, guardOn, err)
			}
			if guardOn {
				p.ThroughputOn, p.CPUOn, p.DroppedOn = tput, cpu, dropped
			} else {
				p.ThroughputOff, p.CPUOff = tput, cpu
			}
		}
		points = append(points, p)
	}
	return points, nil
}

func figure6Cell(attackRate float64, guardOn bool, opts Figure6Options) (float64, float64, uint64, error) {
	w, err := NewWorld(WorldConfig{
		GuardOff:           !guardOn,
		Scheme:             guard.SchemeDNS,
		DisableAnswerCache: true,
		RL1Unlimited:       true,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	kind := workload.KindModified
	if !guardOn {
		kind = workload.KindPlain
	}
	clients := make([]*workload.Client, opts.Clients)
	for i := range clients {
		c, err := workload.NewClient(workload.ClientConfig{
			Env:    w.LRSHost,
			Kind:   kind,
			Mode:   workload.ModeHit,
			Target: w.Public,
			QName:  qname,
			Wait:   10 * time.Millisecond,
		})
		if err != nil {
			return 0, 0, 0, err
		}
		clients[i] = c
		c.Start()
	}
	if attackRate > 0 {
		atkKind := workload.AttackBadCookie
		if !guardOn {
			atkKind = workload.AttackPlain
		}
		atk, err := workload.NewAttacker(workload.AttackerConfig{
			Host:   w.AttackHost,
			Target: w.Public,
			Rate:   attackRate,
			Kind:   atkKind,
			QName:  qname,
		})
		if err != nil {
			return 0, 0, 0, err
		}
		atk.Start()
	}
	completed := func() uint64 {
		var sum uint64
		for _, c := range clients {
			sum += c.Stats.Completed
		}
		return sum
	}
	var cpuHost *netsim.Host
	if guardOn {
		cpuHost = w.GuardHost
	} else {
		cpuHost = w.ANSHost
	}
	var reg *metrics.Registry
	if guardOn {
		reg = metrics.NewRegistry()
		w.Guard.MetricsInto(reg)
	}
	meter := netsim.NewUtilizationMeter(cpuHost.CPU())
	w.Sched.Run(opts.Warmup)
	meter.Sample()
	var s0 []metrics.Sample
	if reg != nil {
		s0 = reg.Snapshot()
	}
	tput := w.MeasureRate(opts.Warmup, opts.Warmup+opts.Window, completed)
	cpu := meter.Sample()
	var dropped uint64
	if reg != nil {
		d := metrics.Delta(s0, reg.Snapshot())
		dropped = deltaUint(d, "guard_remote_cookie_invalid") +
			deltaUint(d, "guard_remote_rl1_dropped") +
			deltaUint(d, "guard_remote_rl2_dropped")
	}
	if !guardOn {
		cpu = 0 // Figure 6(b) plots the guard machine, idle when disabled
	}
	return tput, cpu, dropped, nil
}

// Figure7aPoint is one x-position of Figure 7(a): proxy throughput vs
// concurrent TCP requests.
type Figure7aPoint struct {
	Concurrency int
	Throughput  float64
}

// Figure7aOptions tunes the sweep.
type Figure7aOptions struct {
	Concurrency []int
	Warmup      time.Duration
	Window      time.Duration
}

func (o *Figure7aOptions) fill() {
	if len(o.Concurrency) == 0 {
		o.Concurrency = []int{1, 3, 10, 20, 50, 100, 300, 1000, 3000, 6000}
	}
	if o.Warmup <= 0 {
		o.Warmup = 300 * time.Millisecond
	}
	if o.Window <= 0 {
		o.Window = 700 * time.Millisecond
	}
}

// Figure7a reproduces the kernel TCP proxy's throughput under varying
// numbers of concurrent TCP requests (LAN RTT 0.4 ms; clients instructed to
// use TCP directly).
func Figure7a(opts Figure7aOptions) ([]Figure7aPoint, error) {
	opts.fill()
	points := make([]Figure7aPoint, 0, len(opts.Concurrency))
	for _, n := range opts.Concurrency {
		tput, err := figure7Cell(n, 0, opts.Warmup, opts.Window)
		if err != nil {
			return nil, fmt.Errorf("figure 7a n=%d: %w", n, err)
		}
		points = append(points, Figure7aPoint{Concurrency: n, Throughput: tput})
	}
	return points, nil
}

// Figure7bPoint is one x-position of Figure 7(b): proxy throughput under a
// UDP flood, at 50 concurrent TCP requests.
type Figure7bPoint struct {
	AttackRate float64
	Throughput float64
}

// Figure7bOptions tunes the sweep.
type Figure7bOptions struct {
	AttackRates []float64
	Concurrency int
	Warmup      time.Duration
	Window      time.Duration
}

func (o *Figure7bOptions) fill() {
	if len(o.AttackRates) == 0 {
		for r := 0.0; r <= 250000; r += 25000 {
			o.AttackRates = append(o.AttackRates, r)
		}
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 50
	}
	if o.Warmup <= 0 {
		o.Warmup = 300 * time.Millisecond
	}
	if o.Window <= 0 {
		o.Window = 700 * time.Millisecond
	}
}

// Figure7b reproduces the proxy's throughput as a UDP flood consumes the
// guard's CPU (every flood packet is answered with a truncation redirect —
// there is no cheaper way to talk back to a possibly-legitimate requester).
func Figure7b(opts Figure7bOptions) ([]Figure7bPoint, error) {
	opts.fill()
	points := make([]Figure7bPoint, 0, len(opts.AttackRates))
	for _, rate := range opts.AttackRates {
		tput, err := figure7Cell(opts.Concurrency, rate, opts.Warmup, opts.Window)
		if err != nil {
			return nil, fmt.Errorf("figure 7b rate=%v: %w", rate, err)
		}
		points = append(points, Figure7bPoint{AttackRate: rate, Throughput: tput})
	}
	return points, nil
}

func figure7Cell(concurrency int, attackRate float64, warmup, window time.Duration) (float64, error) {
	w, err := NewWorld(WorldConfig{
		Scheme:            guard.SchemeTCP,
		WithProxy:         true,
		ProxyMaxDuration:  time.Hour,
		ProxyCostSegments: 10,
		RL1Unlimited:      true,
	})
	if err != nil {
		return 0, err
	}
	clients := make([]*workload.Client, concurrency)
	for i := range clients {
		c, err := workload.NewClient(workload.ClientConfig{
			Env:  w.LRSHost,
			Kind: workload.KindTCP,
			Mode: workload.ModeHit,
			// The paper's Figure 7 client keeps N connections in flight
			// and waits for each to complete (no 10 ms retry churn).
			Wait:      5 * time.Second,
			Target:    w.Public,
			QName:     qname,
			DirectTCP: true,
		})
		if err != nil {
			return 0, err
		}
		clients[i] = c
		c.Start()
	}
	if attackRate > 0 {
		atk, err := workload.NewAttacker(workload.AttackerConfig{
			Host:   w.AttackHost,
			Target: w.Public,
			Rate:   attackRate,
			Kind:   workload.AttackPlain,
			QName:  qname,
		})
		if err != nil {
			return 0, err
		}
		atk.Start()
	}
	completed := func() uint64 {
		var sum uint64
		for _, c := range clients {
			sum += c.Stats.Completed
		}
		return sum
	}
	return w.MeasureRate(warmup, warmup+window, completed), nil
}
