// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV) on the discrete-event simulator: Table I (scheme
// comparison), Table II (request latency), Table III (guard throughput),
// Figure 5 (BIND under attack, guard on/off), Figure 6 (guard throughput
// under attack), and Figure 7 (TCP proxy under concurrency and attack).
//
// Every experiment uses the single calibrated cost model in
// internal/cpumodel; nothing is tuned per experiment. EXPERIMENTS.md records
// the paper's numbers next to ours.
package experiments

import (
	"net/netip"
	"time"

	"dnsguard/internal/ans"
	"dnsguard/internal/cookie"
	"dnsguard/internal/cpumodel"
	"dnsguard/internal/dnswire"
	"dnsguard/internal/guard"
	"dnsguard/internal/netsim"
	"dnsguard/internal/ratelimit"
	"dnsguard/internal/tcpproxy"
	"dnsguard/internal/tcpsim"
	"dnsguard/internal/vclock"
	"dnsguard/internal/workload"
	"dnsguard/internal/zone"
)

// Topology constants shared by all experiments.
var (
	publicANSAddr = netip.MustParseAddrPort("192.0.2.1:53")
	guardSubnet   = netip.MustParsePrefix("192.0.2.0/24")
	privateANS    = netip.MustParseAddrPort("10.99.0.2:53")
	qname         = dnswire.MustName("www.foo.com")
)

const fooZoneText = `
$ORIGIN foo.com.
@ 3600 IN SOA ns1 admin 1 7200 600 360000 60
@ 3600 IN NS ns1
ns1 3600 IN A 192.0.2.1
www 300 IN A 198.51.100.10
`

// WorldConfig describes one simulated testbed.
type WorldConfig struct {
	// Seed drives all simulation randomness.
	Seed int64
	// OneWayWAN is the client↔guard one-way latency. The paper's testbed
	// LAN RTT is 0.4 ms (one-way 200 µs); the latency experiment uses a
	// WAN RTT of 10.9 ms.
	OneWayWAN time.Duration
	// GuardOff removes the guard entirely: the ANS owns the public
	// address (the paper's "protection disabled" baselines).
	GuardOff bool
	// Scheme is the guard's fallback scheme for cookie-less requesters.
	Scheme guard.Scheme
	// UseBIND serves a real zone with BIND's measured service cost
	// instead of the authors' fast ANS simulator.
	UseBIND bool
	// ReferralANS puts the ANS simulator in referral mode (root/TLD
	// shape) instead of answer mode.
	ReferralANS bool
	// ANSTTL sets the ANS simulator's answer TTL. The throughput
	// experiments leave it 0 (uncacheable, per the paper); the ablation
	// benchmark raises it so the guard's answer cache can engage.
	ANSTTL uint32
	// Threshold is the guard's activation threshold (0 = always on).
	Threshold float64
	// WithProxy starts the TCP proxy on the public address.
	WithProxy bool
	// ProxyMaxDuration overrides the proxy's 5×RTT duration cap.
	ProxyMaxDuration time.Duration
	// ProxyCostSegments, when positive (and the world is costed),
	// charges the guard CPU segments×TCPSegment×(1+live×slope) per
	// proxied request — the kernel-TCP service model.
	ProxyCostSegments int
	// RL1Unlimited lifts Rate-Limiter1 entirely (throughput experiments
	// drive one LRS source far past any sane per-source cookie-response
	// budget; Figure 7b answers every flood packet with a truncation
	// reply).
	RL1Unlimited bool
	// RL1Generous raises only the per-source budget (Figure 5's second
	// LRS passes through RL1 on every TCP redirect at up to 1K req/s).
	RL1Generous bool
	// TCPClientPrefixes configures per-source TCP redirection (Figure 5
	// redirects the second LRS to TCP).
	TCPClientPrefixes []netip.Prefix
	// Uncosted disables CPU charging (pure latency measurements).
	Uncosted bool
	// DisableAnswerCache makes message 7 always consult the ANS,
	// matching the paper's 4-packet cache-hit accounting.
	DisableAnswerCache bool
}

// World is one assembled testbed.
type World struct {
	Sched      *vclock.Scheduler
	Net        *netsim.Network
	GuardHost  *netsim.Host
	ANSHost    *netsim.Host
	LRSHost    *netsim.Host
	LRS2Host   *netsim.Host
	AttackHost *netsim.Host
	Guard      *guard.Remote
	Proxy      *tcpproxy.Proxy
	ANSSim     *workload.ANSSim
	BIND       *ans.Server
	Costs      cpumodel.Costs
	Public     netip.AddrPort
}

// NewWorld assembles the testbed described by cfg.
func NewWorld(cfg WorldConfig) (*World, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 2006
	}
	if cfg.OneWayWAN <= 0 {
		cfg.OneWayWAN = 200 * time.Microsecond // paper LAN RTT 0.4 ms
	}
	if cfg.Scheme == 0 {
		cfg.Scheme = guard.SchemeDNS
	}
	sched := vclock.New(cfg.Seed)
	network := netsim.New(sched, cfg.OneWayWAN)
	w := &World{
		Sched:  sched,
		Net:    network,
		Costs:  cpumodel.Default2006(),
		Public: publicANSAddr,
	}

	// The protected server.
	var ansEnv *netsim.Host
	if cfg.GuardOff {
		ansEnv = network.AddHost("ans", publicANSAddr.Addr())
	} else {
		ansEnv = network.AddHost("ans", privateANS.Addr())
	}
	w.ANSHost = ansEnv
	ansAddr := privateANS
	if cfg.GuardOff {
		ansAddr = publicANSAddr
	}
	if cfg.UseBIND {
		zero := uint32(0)
		srv, err := ans.New(ans.Config{
			Env:          ansEnv,
			Addr:         ansAddr,
			Zone:         zone.MustParse(fooZoneText, dnswire.Root),
			CPU:          cpuOrNil(cfg, ansEnv),
			CostPerQuery: w.Costs.Server.BINDUDP,
			TTLOverride:  &zero,
		})
		if err != nil {
			return nil, err
		}
		if err := srv.Start(); err != nil {
			return nil, err
		}
		w.BIND = srv
	} else {
		mode := workload.ModeAnswer
		if cfg.ReferralANS {
			mode = workload.ModeReferral
		}
		sim, err := workload.NewANSSim(workload.ANSSimConfig{
			Env:  ansEnv,
			Addr: ansAddr,
			Mode: mode,
			TTL:  cfg.ANSTTL,
			CPU:  cpuOrNil(cfg, ansEnv),
			Cost: w.Costs.Server.ANSSim,
		})
		if err != nil {
			return nil, err
		}
		if err := sim.Start(); err != nil {
			return nil, err
		}
		w.ANSSim = sim
	}

	// Client and attacker hosts.
	w.LRSHost = network.AddHost("lrs", netip.MustParseAddr("10.0.0.53"))
	w.LRS2Host = network.AddHost("lrs2", netip.MustParseAddr("10.0.1.53"))
	w.AttackHost = network.AddHost("attacker", netip.MustParseAddr("203.0.113.66"))
	tcpsim.Install(w.LRSHost, tcpsim.Config{})
	tcpsim.Install(w.LRS2Host, tcpsim.Config{})

	if cfg.GuardOff {
		if cfg.UseBIND {
			// DNS-over-TCP straight to BIND (rarely exercised).
			tcpsim.Install(ansEnv, tcpsim.Config{})
		}
		return w, nil
	}

	// The guard, claiming the public address space.
	gh := network.AddHost("guard", netip.MustParseAddr("10.99.0.1"))
	w.GuardHost = gh
	gh.ClaimPrefix(guardSubnet)
	network.SetLatency(gh, ansEnv, 50*time.Microsecond) // guard↔ANS LAN hop
	tcpsim.Install(gh, tcpsim.Config{SYNCookies: true})
	tap, err := gh.OpenTap()
	if err != nil {
		return nil, err
	}
	var key [cookie.KeySize]byte
	key[0] = byte(cfg.Seed)
	gcfg := guard.RemoteConfig{
		Env:                 gh,
		IO:                  guard.TapIO{Tap: tap},
		PublicAddr:          publicANSAddr,
		ANSAddr:             privateANS,
		Zone:                dnswire.MustName("foo.com"),
		Subnet:              guardSubnet,
		Fallback:            cfg.Scheme,
		Auth:                cookie.NewAuthenticatorWithKey(key),
		TCPClients:          cfg.TCPClientPrefixes,
		ActivationThreshold: cfg.Threshold,
		// The throughput experiments drive one LRS host at full speed;
		// Rate-Limiter2's per-host nominal rate must not gate it.
		RL2: ratelimit.Limiter2Config{PerSourceRate: 1e9, PerSourceBurst: 1e9, TrackedSources: 8192},
	}
	if cfg.RL1Unlimited {
		gcfg.RL1 = ratelimit.Limiter1Config{PerSourceRate: 1e9, PerSourceBurst: 1e9, GlobalRate: 1e12, GlobalBurst: 1e12, TrackedSources: 1024}
	} else if cfg.RL1Generous {
		gcfg.RL1 = ratelimit.Limiter1Config{PerSourceRate: 2000, PerSourceBurst: 400, GlobalRate: 1e9, GlobalBurst: 1e9, TrackedSources: 4096}
	}
	if cfg.DisableAnswerCache {
		gcfg.AnswerCacheTTL = -1
	}
	if !cfg.Uncosted {
		gcfg.CPU = gh.CPU()
		gcfg.Costs = w.Costs.Guard
	}
	g, err := guard.NewRemote(gcfg)
	if err != nil {
		return nil, err
	}
	if err := g.Start(); err != nil {
		return nil, err
	}
	w.Guard = g

	if cfg.WithProxy {
		pcfg := tcpproxy.Config{
			Env:           gh,
			Listen:        publicANSAddr,
			ANSAddr:       privateANS,
			RTT:           2 * cfg.OneWayWAN,
			MaxDuration:   cfg.ProxyMaxDuration,
			ConnRate:      1e9,
			ConnBurst:     1e9,
			MaxConcurrent: 1 << 16,
		}
		if !cfg.Uncosted && cfg.ProxyCostSegments > 0 {
			gc := w.Costs.Guard
			base := time.Duration(cfg.ProxyCostSegments) * gc.TCPSegment
			pcfg.CPU = gh.CPU()
			pcfg.CostPerRequest = func(live int) time.Duration {
				f := 1 + gc.ConnTableSlope*float64(live)
				return time.Duration(float64(base) * f)
			}
		}
		p, err := tcpproxy.New(pcfg)
		if err != nil {
			return nil, err
		}
		if err := p.Start(); err != nil {
			return nil, err
		}
		w.Proxy = p
	}
	return w, nil
}

func cpuOrNil(cfg WorldConfig, h *netsim.Host) workload.CPUWorker {
	if cfg.Uncosted {
		return nil
	}
	return h.CPU()
}

// RunPhase advances the simulation to absolute virtual time t.
func (w *World) RunPhase(t time.Duration) { w.Sched.Run(t) }

// MeasureRate runs the simulation over [from, to] and converts the counter
// delta (observed via count) to events/second.
func (w *World) MeasureRate(from, to time.Duration, count func() uint64) float64 {
	w.Sched.Run(from)
	c0 := count()
	w.Sched.Run(to)
	c1 := count()
	return float64(c1-c0) / (to - from).Seconds()
}
