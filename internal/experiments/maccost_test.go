package experiments

import "testing"

// TestMACCostBelowSyscall is the DESIGN §17 deployability gate: one cookie
// verification — under either built-in scheme — must cost less than the
// per-datagram send syscall the packet pays anyway. Run by `make bench-smoke`.
func TestMACCostBelowSyscall(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement; skipped under -short")
	}
	for _, scheme := range []string{"md5", "siphash"} {
		res, err := MACCost(scheme)
		if err != nil {
			t.Fatalf("MACCost(%s): %v", scheme, err)
		}
		t.Logf("%-8s verify %7.1f ns/op   sendto %7.1f ns/op   (x%.1f headroom)",
			res.Scheme, res.VerifyNs, res.SyscallNs, res.SyscallNs/res.VerifyNs)
		if res.VerifyNs >= res.SyscallNs {
			t.Errorf("%s: verify %.1f ns/op >= per-packet syscall %.1f ns/op — verification has become the bottleneck",
				res.Scheme, res.VerifyNs, res.SyscallNs)
		}
	}
}
