package experiments

import (
	"testing"
	"time"

	"dnsguard/internal/workload"
)

// within reports whether got is within frac of want.
func within(got, want, frac float64) bool {
	if want == 0 {
		return got == 0
	}
	d := got/want - 1
	if d < 0 {
		d = -d
	}
	return d <= frac
}

func TestTableIILatencyShape(t *testing.T) {
	rows, err := TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byScheme := map[SchemeLabel]TableIIRow{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
		t.Logf("%-28s miss=%6.2fms (paper %.1f)  hit=%6.2fms (paper %.1f)",
			r.Scheme, ms(r.Miss), r.PaperMissMs, ms(r.Hit), r.PaperHitMs)
	}
	rtt := 10.9 // ms
	checks := []struct {
		s        SchemeLabel
		missRTTs float64
		hitRTTs  float64
	}{
		{LabelNSName, 2, 1},
		{LabelFabIP, 3, 1},
		{LabelTCP, 3, 3},
		{LabelModified, 2, 1},
	}
	for _, c := range checks {
		r := byScheme[c.s]
		if !within(ms(r.Miss), c.missRTTs*rtt, 0.12) {
			t.Errorf("%s miss = %.2fms, want ~%.1f RTT", c.s, ms(r.Miss), c.missRTTs)
		}
		if !within(ms(r.Hit), c.hitRTTs*rtt, 0.12) {
			t.Errorf("%s hit = %.2fms, want ~%.1f RTT", c.s, ms(r.Hit), c.hitRTTs)
		}
	}
	// Ordering properties the paper emphasizes: TCP is worst; modified and
	// NS-name are comparable; everyone's hit is ~1 RTT except TCP.
	if byScheme[LabelTCP].Hit <= byScheme[LabelModified].Hit*2 {
		t.Error("TCP hit latency should be ~3x the cookie schemes")
	}
}

func TestTableIIIThroughputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput sweep")
	}
	rows, err := TableIII(TableIIIOptions{
		Clients: 160,
		Warmup:  200 * time.Millisecond,
		Window:  400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[SchemeLabel]TableIIIRow{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
		t.Logf("%-28s miss=%7.0f (paper %6.0f)  hit=%7.0f (paper %6.0f)",
			r.Scheme, r.Miss, r.PaperMiss, r.Hit, r.PaperHit)
	}
	// Absolute targets within 25% (the substrate is a simulator; the shape
	// and rough factors are what must hold).
	for _, s := range allSchemes {
		r := byScheme[s]
		if !within(r.Miss, r.PaperMiss, 0.25) {
			t.Errorf("%s miss = %.0f, paper %.0f (>25%% off)", s, r.Miss, r.PaperMiss)
		}
		if !within(r.Hit, r.PaperHit, 0.25) {
			t.Errorf("%s hit = %.0f, paper %.0f (>25%% off)", s, r.Hit, r.PaperHit)
		}
	}
	// Relative shape: TCP is by far the slowest; fabricated-IP is the
	// slowest UDP scheme on misses; hits are ANS-bound and roughly equal.
	if byScheme[LabelTCP].Miss*2 > byScheme[LabelFabIP].Miss {
		t.Error("TCP should be at least 2x slower than the slowest UDP scheme")
	}
	if byScheme[LabelFabIP].Miss >= byScheme[LabelNSName].Miss {
		t.Error("fabricated-IP misses should be slower than NS-name misses")
	}
}

func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("attack sweep")
	}
	points, err := Figure6(Figure6Options{
		AttackRates: []float64{0, 100000, 200000, 250000},
		Clients:     160,
		Warmup:      200 * time.Millisecond,
		Window:      400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	byRate := map[float64]Figure6Point{}
	for _, p := range points {
		byRate[p.AttackRate] = p
		t.Logf("attack=%6.0f  on=%7.0f cpu=%4.2f  off=%7.0f", p.AttackRate, p.ThroughputOn, p.CPUOn, p.ThroughputOff)
	}
	// Guard on: ~110K at no attack, held >= 90K at 200K, >= 60K at 250K.
	if !within(byRate[0].ThroughputOn, 110000, 0.15) {
		t.Errorf("on@0 = %.0f, want ~110K", byRate[0].ThroughputOn)
	}
	if byRate[200000].ThroughputOn < 85000 {
		t.Errorf("on@200K = %.0f, want >= 85K (paper: 100K)", byRate[200000].ThroughputOn)
	}
	if byRate[250000].ThroughputOn < 60000 {
		t.Errorf("on@250K = %.0f, want >= 60K (paper: 80K)", byRate[250000].ThroughputOn)
	}
	// Guard off: collapses as the attack eats the ANS.
	if byRate[0].ThroughputOff < 90000 {
		t.Errorf("off@0 = %.0f, want ~110K", byRate[0].ThroughputOff)
	}
	if byRate[200000].ThroughputOff > byRate[0].ThroughputOff/3 {
		t.Errorf("off@200K = %.0f; unprotected server should have collapsed", byRate[200000].ThroughputOff)
	}
	// Guard CPU rises with attack rate.
	if byRate[250000].CPUOn < byRate[0].CPUOn {
		t.Error("guard CPU should increase with attack rate")
	}
}

func TestFigure7aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrency sweep")
	}
	points, err := Figure7a(Figure7aOptions{
		Concurrency: []int{1, 20, 1000, 6000},
		Warmup:      200 * time.Millisecond,
		Window:      400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	byN := map[int]float64{}
	for _, p := range points {
		byN[p.Concurrency] = p.Throughput
		t.Logf("n=%5d  %7.0f req/s", p.Concurrency, p.Throughput)
	}
	// Rises to ~22K near 20 concurrent, declines toward ~11K at 6000.
	if byN[1] > 3000 {
		t.Errorf("n=1 = %.0f, should be RTT-bound (~1.2K)", byN[1])
	}
	if !within(byN[20], 22700, 0.25) {
		t.Errorf("n=20 = %.0f, want ~22K", byN[20])
	}
	if !within(byN[6000], 11000, 0.35) {
		t.Errorf("n=6000 = %.0f, want ~11K", byN[6000])
	}
	if byN[6000] >= byN[20] {
		t.Error("throughput should decline at high concurrency (conn-table overhead)")
	}
}

func TestFigure7bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("attack sweep")
	}
	points, err := Figure7b(Figure7bOptions{
		AttackRates: []float64{0, 125000, 250000},
		Warmup:      200 * time.Millisecond,
		Window:      400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	byRate := map[float64]float64{}
	for _, p := range points {
		byRate[p.AttackRate] = p.Throughput
		t.Logf("attack=%6.0f  %7.0f req/s", p.AttackRate, p.Throughput)
	}
	if !within(byRate[0], 22700, 0.25) {
		t.Errorf("tput@0 = %.0f, want ~22K", byRate[0])
	}
	if !within(byRate[250000], 10000, 0.45) {
		t.Errorf("tput@250K = %.0f, want ~10K", byRate[250000])
	}
	if !(byRate[250000] < byRate[125000] && byRate[125000] < byRate[0]) {
		t.Errorf("throughput should decline monotonically: %v", byRate)
	}
}

func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("attack sweep")
	}
	points, err := Figure5(Figure5Options{
		AttackRates: []float64{0, 8000, 16000},
		Warmup:      2 * time.Second,
		Window:      4 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	byRate := map[float64]Figure5Point{}
	for _, p := range points {
		byRate[p.AttackRate] = p
		t.Logf("attack=%5.0f  on=%6.0f cpuANS=%4.2f | off=%6.0f cpuANS=%4.2f",
			p.AttackRate, p.ThroughputOn, p.CPUOn, p.ThroughputOff, p.CPUOff)
	}
	// No attack: both deliver ~2K (two 1K LRSs).
	if !within(byRate[0].ThroughputOff, 2000, 0.2) {
		t.Errorf("off@0 = %.0f, want ~2K", byRate[0].ThroughputOff)
	}
	// At 16K attack: unprotected BIND collapses; the guard holds >= 1.2K
	// (LRS1 1K + LRS2 capped at 0.5K by its TCP path).
	off := byRate[16000].ThroughputOff
	on := byRate[16000].ThroughputOn
	if off > 500 {
		t.Errorf("off@16K = %.0f, unprotected BIND should collapse (paper: near 0)", off)
	}
	if on < 1100 {
		t.Errorf("on@16K = %.0f, want >= 1.1K (paper: ~1.5K)", on)
	}
	// ANS CPU: saturated without the guard, relieved with it.
	if byRate[16000].CPUOff < 0.9 {
		t.Errorf("cpuOff@16K = %.2f, want saturated", byRate[16000].CPUOff)
	}
	if byRate[16000].CPUOn > 0.5 {
		t.Errorf("cpuOn@16K = %.2f, want far below saturation", byRate[16000].CPUOn)
	}
}

func TestTableIStatic(t *testing.T) {
	rows := TableI()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[2].BestLatencyRTT != 3 || rows[3].BestLatencyRTT != 1 {
		t.Error("Table I latency entries corrupted")
	}
}

var _ = workload.ModeHit // anchor import when shape tests are skipped
