package experiments

import (
	"os"
	"runtime"
	"testing"
)

// TestShardScalingSmoke is the `make bench-smoke` scaling gate: adding a
// second shard must not cost throughput. It runs the real-time engine rig
// (affine ingest: one flow-stable feed per shard) for shards ∈ {1, 2},
// interleaved best-of-3 to shrug off scheduler noise, and fails when the
// 2-shard goodput falls below the 1-shard goodput. On a single-core host
// two shards cannot beat one — the second worker only adds scheduling — so
// the gate there allows a bounded regression instead of asserting the
// physically impossible; multi-core hosts enforce the strict inequality.
//
// Real-time measurement is meaningless under `go test`'s default parallel
// package runs, so the gate only engages when bench-smoke opts in via
// DNSGUARD_SCALING_SMOKE=1.
func TestShardScalingSmoke(t *testing.T) {
	if os.Getenv("DNSGUARD_SCALING_SMOKE") == "" {
		t.Skip("real-time scaling gate; set DNSGUARD_SCALING_SMOKE=1 (make bench-smoke does)")
	}
	const rounds = 3
	best := map[int]float64{}
	for r := 0; r < rounds; r++ {
		for _, shards := range []int{1, 2} {
			res, err := EngineThroughput(EngineThroughputOptions{
				Shards:  shards,
				Batch:   1,
				Packets: 8000,
			})
			if err != nil {
				t.Fatalf("round %d shards=%d: %v", r, shards, err)
			}
			if uint64(res.Packets) != res.Completed {
				t.Errorf("round %d shards=%d: completed %d of %d — the rig lost packets",
					r, shards, res.Completed, res.Packets)
			}
			if res.GoodputQPS > best[shards] {
				best[shards] = res.GoodputQPS
			}
			t.Logf("round %d shards=%d affine=%v goodput=%.0f processed=%.0f",
				r, shards, res.Affine, res.GoodputQPS, res.ProcessedQPS)
		}
	}
	floor := best[1]
	if runtime.NumCPU() == 1 {
		// One core: equal throughput is the ceiling; gate the overhead of the
		// second affine loop at 15% instead of demanding a speedup the
		// hardware cannot produce (EXPERIMENTS.md §shard-scaling).
		floor = 0.85 * best[1]
		t.Logf("single-core host: relaxing 2-shard floor to 0.85× (%.0f)", floor)
	}
	if best[2] < floor {
		t.Errorf("2-shard goodput %.0f < required %.0f (1-shard best %.0f)",
			best[2], floor, best[1])
	}
}
