package experiments

import (
	"fmt"
	"time"

	"dnsguard/internal/guard"
	"dnsguard/internal/metrics"
	"dnsguard/internal/workload"
)

// SchemeLabel names the four measured columns of Tables II and III.
type SchemeLabel string

// Scheme labels, in the paper's column order.
const (
	LabelNSName   SchemeLabel = "DNS-based/NS-name"
	LabelFabIP    SchemeLabel = "DNS-based/fabricated-NS-IP"
	LabelTCP      SchemeLabel = "TCP-based"
	LabelModified SchemeLabel = "Modified-DNS"
)

var allSchemes = []SchemeLabel{LabelNSName, LabelFabIP, LabelTCP, LabelModified}

func (l SchemeLabel) clientKind() workload.ClientKind {
	switch l {
	case LabelNSName:
		return workload.KindNSName
	case LabelFabIP:
		return workload.KindFabIP
	case LabelTCP:
		return workload.KindTCP
	default:
		return workload.KindModified
	}
}

// worldFor builds the testbed appropriate for one scheme column.
func worldFor(label SchemeLabel, cfg WorldConfig) (*World, error) {
	switch label {
	case LabelNSName:
		cfg.ReferralANS = true // referral answers exercise the NS-name variant
		cfg.Scheme = guard.SchemeDNS
	case LabelFabIP:
		cfg.Scheme = guard.SchemeDNS
	case LabelTCP:
		cfg.Scheme = guard.SchemeTCP
		cfg.WithProxy = true
		if cfg.ProxyMaxDuration == 0 {
			cfg.ProxyMaxDuration = time.Hour
		}
	case LabelModified:
		cfg.Scheme = guard.SchemeDNS // newcomers irrelevant; client speaks cookies
	}
	return NewWorld(cfg)
}

// TableIIRow is one measured latency row.
type TableIIRow struct {
	Scheme SchemeLabel
	Miss   time.Duration
	Hit    time.Duration
	// Paper's measurements (ms) for EXPERIMENTS.md.
	PaperMissMs, PaperHitMs float64
}

var paperTableII = map[SchemeLabel][2]float64{
	LabelNSName:   {21.0, 11.1},
	LabelFabIP:    {32.1, 11.3},
	LabelTCP:      {34.5, 33.7},
	LabelModified: {22.4, 10.8},
}

// TableII reproduces §IV-B: average request latency per scheme at the
// paper's WAN RTT of 10.9 ms, for the first access (cache miss) and
// subsequent accesses (cache hit).
func TableII() ([]TableIIRow, error) {
	rows := make([]TableIIRow, 0, len(allSchemes))
	for _, label := range allSchemes {
		w, err := worldFor(label, WorldConfig{
			OneWayWAN: 5450 * time.Microsecond, // RTT 10.9 ms
			Uncosted:  true,
		})
		if err != nil {
			return nil, fmt.Errorf("table II %s: %w", label, err)
		}
		client, err := workload.NewClient(workload.ClientConfig{
			Env:    w.LRSHost,
			Kind:   label.clientKind(),
			Mode:   workload.ModeHit, // manual control via Forget
			Target: w.Public,
			QName:  qname,
			Wait:   5 * time.Second,
		})
		if err != nil {
			return nil, err
		}
		row := TableIIRow{
			Scheme:      label,
			PaperMissMs: paperTableII[label][0],
			PaperHitMs:  paperTableII[label][1],
		}
		errCh := make(chan error, 1)
		w.Sched.Go("tableII", func() {
			miss, err := client.RunOnce()
			if err != nil {
				errCh <- fmt.Errorf("miss: %w", err)
				return
			}
			hit, err := client.RunOnce()
			if err != nil {
				errCh <- fmt.Errorf("hit: %w", err)
				return
			}
			row.Miss, row.Hit = miss, hit
			errCh <- nil
		})
		w.Sched.Run(time.Minute)
		if err := <-errCh; err != nil {
			return nil, fmt.Errorf("table II %s: %w", label, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// TableIIIRow is one measured throughput row.
type TableIIIRow struct {
	Scheme SchemeLabel
	Miss   float64 // requests/second
	Hit    float64
	// Paper's measurements (req/s) for EXPERIMENTS.md.
	PaperMiss, PaperHit float64
	// Per-cell observability (counter movement + latency percentiles).
	MissDetail, HitDetail CellDetail
}

// CellDetail captures one measurement cell's observability: how the guard's
// counters moved over the measurement window, and the latency percentiles
// the client fleet observed.
type CellDetail struct {
	CookieValid   uint64 // verified requests over the window
	CookieInvalid uint64
	RL1Dropped    uint64
	Forwarded     uint64 // requests relayed to the ANS
	P50, P90, P99 time.Duration
}

// deltaUint extracts one series from a metrics.Delta result.
func deltaUint(d []metrics.Sample, name string) uint64 {
	for _, s := range d {
		if s.Name == name {
			return uint64(s.Value)
		}
	}
	return 0
}

var paperTableIII = map[SchemeLabel][2]float64{
	LabelNSName:   {84200, 110100},
	LabelFabIP:    {60100, 109700},
	LabelTCP:      {22700, 22700},
	LabelModified: {84300, 110300},
}

// TableIIIOptions tunes the measurement effort (the defaults match
// cmd/benchtab; tests use shorter windows).
type TableIIIOptions struct {
	Clients int
	Warmup  time.Duration
	Window  time.Duration
}

func (o *TableIIIOptions) fill() {
	if o.Clients <= 0 {
		o.Clients = 192
	}
	if o.Warmup <= 0 {
		o.Warmup = 300 * time.Millisecond
	}
	if o.Window <= 0 {
		o.Window = 700 * time.Millisecond
	}
}

// TableIII reproduces §IV-D: guard throughput per scheme with the ANS and
// LRS simulators on the LAN testbed, for cache-miss (cookie caching
// disabled) and cache-hit traffic.
func TableIII(opts TableIIIOptions) ([]TableIIIRow, error) {
	opts.fill()
	rows := make([]TableIIIRow, 0, len(allSchemes))
	for _, label := range allSchemes {
		row := TableIIIRow{
			Scheme:    label,
			PaperMiss: paperTableIII[label][0],
			PaperHit:  paperTableIII[label][1],
		}
		for _, mode := range []workload.ClientMode{workload.ModeMiss, workload.ModeHit} {
			rate, detail, err := tableIIICell(label, mode, opts)
			if err != nil {
				return nil, fmt.Errorf("table III %s/%v: %w", label, mode, err)
			}
			if mode == workload.ModeMiss {
				row.Miss, row.MissDetail = rate, detail
			} else {
				row.Hit, row.HitDetail = rate, detail
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func tableIIICell(label SchemeLabel, mode workload.ClientMode, opts TableIIIOptions) (float64, CellDetail, error) {
	w, err := worldFor(label, WorldConfig{
		DisableAnswerCache: true,
		ProxyCostSegments:  10,
		RL1Unlimited:       true,
	})
	if err != nil {
		return 0, CellDetail{}, err
	}
	reg := metrics.NewRegistry()
	w.Guard.MetricsInto(reg)
	hist := metrics.NewHistogram()
	clients := make([]*workload.Client, opts.Clients)
	n := opts.Clients
	if label == LabelTCP {
		// TCP requests are ~30× heavier; fewer lanes saturate the guard.
		n = 64
	}
	for i := 0; i < n; i++ {
		c, err := workload.NewClient(workload.ClientConfig{
			Env:     w.LRSHost,
			Kind:    label.clientKind(),
			Mode:    mode,
			Target:  w.Public,
			QName:   qname,
			Wait:    10 * time.Millisecond, // the paper's LRS simulator wait
			Latency: hist,
		})
		if err != nil {
			return 0, CellDetail{}, err
		}
		clients[i] = c
		c.Start()
	}
	completed := func() uint64 {
		var sum uint64
		for _, c := range clients {
			if c != nil {
				sum += c.Stats.Completed
			}
		}
		return sum
	}
	// Sample the registry at the same instants MeasureRate samples the
	// completion counter, so the deltas cover exactly the rate window.
	w.RunPhase(opts.Warmup)
	c0 := completed()
	s0 := reg.Snapshot()
	w.RunPhase(opts.Warmup + opts.Window)
	c1 := completed()
	s1 := reg.Snapshot()
	rate := float64(c1-c0) / opts.Window.Seconds()
	d := metrics.Delta(s0, s1)
	detail := CellDetail{
		CookieValid:   deltaUint(d, "guard_remote_cookie_valid"),
		CookieInvalid: deltaUint(d, "guard_remote_cookie_invalid"),
		RL1Dropped:    deltaUint(d, "guard_remote_rl1_dropped"),
		Forwarded:     deltaUint(d, "guard_remote_forwarded_to_ans"),
		P50:           hist.Quantile(0.50),
		P90:           hist.Quantile(0.90),
		P99:           hist.Quantile(0.99),
	}
	return rate, detail, nil
}

// TableIRow is one column of the qualitative comparison (Table I), with the
// quantitative entries backed by this reproduction's measurements.
type TableIRow struct {
	Scheme               SchemeLabel
	WorstLatencyRTT      int
	BestLatencyRTT       int
	CookieStorage        string
	CookieRange          string
	TrafficAmplification string
	Deployment           string
}

// TableI returns the scheme-comparison table. The latency RTT counts are
// verified against measurement by the TestTableI… tests.
func TableI() []TableIRow {
	return []TableIRow{
		{LabelNSName, 2, 1, "1 cookie per NS record", "2^32", "< 50% (24 bytes)", "ANS side only"},
		{LabelFabIP, 3, 1, "2 cookies per non-referral record", "2^32 and R_y <= 2^24", "< 50% (24 bytes)", "ANS side only"},
		{LabelTCP, 3, 3, "0", "2^32", "0", "ANS side only"},
		{LabelModified, 2, 1, "1 cookie per ANS", "2^128", "0", "LRS side and ANS side"},
	}
}
