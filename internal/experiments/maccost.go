// MAC cost vs the syscall floor. The guard's deployability case (PAPER §IV,
// DESIGN §17) is that one cookie verification costs less than the send
// syscall the packet pays anyway — verification is then never the dataplane
// bottleneck. This rig measures both sides on the host: per-verification
// wall-clock for a MAC scheme against per-datagram sendto cost on loopback
// UDP. bench-smoke asserts verify < syscall for every built-in scheme.
package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"dnsguard/internal/cookie"
	"dnsguard/internal/realnet"
)

// MACCostResult is one scheme's measured verify cost next to the host's
// per-datagram send-syscall floor.
type MACCostResult struct {
	Scheme    string  `json:"scheme"`
	VerifyNs  float64 `json:"verify_ns"`
	SyscallNs float64 `json:"syscall_ns"`
}

// MACCost measures scheme's per-verification cost and the host's loopback
// UDP per-send cost. Both loops are long enough to amortize timer overhead;
// the sink socket is never read — UDP drops on a full receive buffer without
// slowing the sender, so the send loop measures the syscall, not the peer.
func MACCost(scheme string) (MACCostResult, error) {
	mac, err := cookie.MACByName(scheme)
	if err != nil {
		return MACCostResult{}, err
	}
	var key [cookie.KeySize]byte
	for i := range key {
		key[i] = byte(i * 3)
	}
	auth, err := cookie.Open(cookie.Options{Key: &key, MAC: mac})
	if err != nil {
		return MACCostResult{}, err
	}
	src := netip.MustParseAddr("203.0.113.7")
	c := auth.Mint(src)
	if !auth.Verify(src, c) { // warm + sanity
		return MACCostResult{}, fmt.Errorf("maccost: %s cookie does not verify", mac.Name())
	}
	const verifyIters = 200_000
	start := time.Now()
	for i := 0; i < verifyIters; i++ {
		if !auth.Verify(src, c) {
			return MACCostResult{}, fmt.Errorf("maccost: %s verify failed mid-loop", mac.Name())
		}
	}
	verifyNs := float64(time.Since(start).Nanoseconds()) / verifyIters

	env := realnet.New()
	sender, err := env.ListenUDP(netip.MustParseAddrPort("127.0.0.1:0"))
	if err != nil {
		return MACCostResult{}, err
	}
	defer sender.Close()
	sink, err := env.ListenUDP(netip.MustParseAddrPort("127.0.0.1:0"))
	if err != nil {
		return MACCostResult{}, err
	}
	defer sink.Close()
	payload := make([]byte, 64) // a small DNS query's worth
	dst := sink.LocalAddr()
	const sendIters = 20_000
	start = time.Now()
	for i := 0; i < sendIters; i++ {
		if err := sender.WriteTo(payload, dst); err != nil {
			return MACCostResult{}, fmt.Errorf("maccost: send %d: %w", i, err)
		}
	}
	syscallNs := float64(time.Since(start).Nanoseconds()) / sendIters

	return MACCostResult{Scheme: mac.Name(), VerifyNs: verifyNs, SyscallNs: syscallNs}, nil
}
