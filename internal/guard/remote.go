package guard

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"dnsguard/internal/cookie"
	"dnsguard/internal/cpumodel"
	"dnsguard/internal/dnswire"
	"dnsguard/internal/engine"
	"dnsguard/internal/metrics"
	"dnsguard/internal/netapi"
	"dnsguard/internal/ratelimit"
	"dnsguard/internal/resolver"
)

// Scheme selects how the guard bootstraps cookie-less requesters.
type Scheme int

// Fallback schemes for requesters that do not speak the cookie extension.
const (
	// SchemeDNS embeds cookies in fabricated NS names (and, for
	// non-referral answers, in a fabricated server address within the
	// guard's subnet) — §III-B.
	SchemeDNS Scheme = iota + 1
	// SchemeTCP redirects the requester to TCP via the truncation flag —
	// §III-C. The TCP side is served by internal/tcpproxy.
	SchemeTCP
)

func (s Scheme) String() string {
	switch s {
	case SchemeDNS:
		return "dns-based"
	case SchemeTCP:
		return "tcp-based"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// CPUWorker charges simulated CPU time; netsim.(*CPU) implements it.
type CPUWorker interface {
	Work(d time.Duration)
}

// RemoteConfig parameterizes the ANS-side guard.
type RemoteConfig struct {
	// Env supplies clock and sockets.
	Env netapi.Env
	// IO is the packet-capture interface for the protected address space.
	// Shorthand for a one-entry IOs; exactly one of IO / IOs is required.
	IO PacketIO
	// IOs are multiple capture interfaces (e.g. SO_REUSEPORT siblings from
	// netapi.UDPReuseEnv); the engine runs one reader per entry. Replies
	// always leave through IOs[0].
	IOs []PacketIO
	// Shards is the dataplane worker count; every per-source structure
	// (pending NAT table, rate limiters, verifier) is owned by the shard
	// the source address hashes to. 0 and 1 mean one shard, which runs the
	// pre-engine inline pipeline and reproduces it exactly.
	Shards int
	// QueueDepth bounds each shard's ingress queue (multi-shard only).
	// 0 means the engine default.
	QueueDepth int
	// Batch is the number of datagrams the dataplane moves per read when the
	// capture interface supports it (TapIO and SocketIO both do). 0 and 1
	// mean per-packet I/O, which reproduces the pre-batching dataplane
	// event for event. Larger values amortize the read syscall, the shard
	// queue hop, the cookie-keyring lock, and the egress writes across the
	// batch; per-packet semantics (admission policy, supervision, observer,
	// all counters) are unchanged.
	Batch int
	// Ingest selects how packets reach shard workers (see engine.IngestMode).
	// The zero value (engine.IngestAuto) picks shard-affine ingest — one read
	// loop per shard on its own interface, no queue hop — when len(IOs) ==
	// Shards and every interface reports stable kernel flow steering
	// (netapi.FlowStableConn, e.g. SO_REUSEPORT siblings); otherwise the
	// central source-hash fan-out runs, which netsim requires for
	// deterministic replays.
	Ingest engine.IngestMode
	// FastPathTTL enables the verified-source cache: a source that just
	// passed a cookie check is remembered with its credential for this
	// long, replacing the next MD5 verification with a byte compare. The
	// presented credential is still compared — a spoofed address alone
	// gains nothing. 0 disables the cache (the deterministic-reproduction
	// configuration). Keep it at or below the key-rotation grace period:
	// a cached credential is honored until its TTL even across a Rotate.
	FastPathTTL time.Duration
	// FastPathSources bounds the verified-source cache per shard.
	// 0 means the engine default.
	FastPathSources int
	// Observer, when non-nil, is called in worker context with the owning
	// shard right before each packet is handled. Diagnostic hook; tests
	// use it to assert per-source shard affinity.
	Observer func(shard int, pkt Packet)
	// PublicAddr is the ANS's advertised address, which the guard
	// intercepts and answers from.
	PublicAddr netip.AddrPort
	// ANSAddr is where the real ANS actually listens (the guard's private
	// path to it).
	ANSAddr netip.AddrPort
	// ANSFallbacks are ordered secondary ANS addresses (e.g. a hidden
	// replica) tried in sequence when the primary's circuit breaker opens.
	// A non-empty list implies Health.Enabled.
	ANSFallbacks []netip.AddrPort
	// Health configures the per-shard upstream circuit breaker and the
	// pending-table sweeper feeding it. The zero value disables both,
	// preserving the historical proc set exactly.
	Health HealthConfig
	// Supervision configures dataplane shard supervision (recover boundary,
	// quarantine, restart budget, trip policy) — see engine.SupervisorConfig.
	// When Trip is engine.TripPass and OnPass is nil, tripped shards relay
	// their packets unfiltered via the guard's passthrough path.
	Supervision engine.SupervisorConfig
	// Zone is the apex of the zone the protected ANS serves.
	Zone dnswire.Name
	// Subnet is the intercepted prefix used for IP cookies (scheme 1b,
	// non-referral answers). Invalid/zero disables the fabricated-IP
	// variant; non-referral first contacts then fail closed.
	Subnet netip.Prefix
	// Fallback is the scheme used for cookie-less requesters.
	Fallback Scheme
	// TCPClients lists source prefixes that are always redirected to TCP
	// regardless of Fallback (the paper's Figure 5 testbed redirects its
	// second LRS to TCP while the first uses UDP cookies).
	TCPClients []netip.Prefix
	// Auth computes cookies; required.
	Auth *cookie.Authenticator
	// NSPrefix overrides the fabricated-label prefix.
	NSPrefix string
	// NSTTL is the TTL (seconds) of fabricated records and wire cookies;
	// 0 means one week (§III-E).
	NSTTL uint32
	// RL1 configures Rate-Limiter1 (cookie responses). Zero-value fields
	// take defaults. Each shard runs its own limiter over the sources it
	// owns, so per-source limits are exact and global budgets are split
	// per shard.
	RL1 ratelimit.Limiter1Config
	// RL2 configures Rate-Limiter2 (verified requests).
	RL2 ratelimit.Limiter2Config
	// ActivationThreshold is the input rate (req/s) above which spoof
	// detection engages; 0 means always on (§IV-C uses the ANS capacity).
	ActivationThreshold float64
	// PendingTimeout bounds NAT-table entries for in-flight ANS queries.
	PendingTimeout time.Duration
	// AnswerCacheTTL bounds the non-referral answer cache (message 5
	// results reused for message 7). 0 means 10 s; negative disables the
	// cache entirely (every message 7 consults the ANS, the paper's
	// 4-packet cache-hit accounting).
	AnswerCacheTTL time.Duration
	// KeyRotation, when positive, rotates the cookie key on that period
	// (the paper suggests weekly, matching the cookie TTL so each
	// verification still costs one MD5 — §III-E).
	KeyRotation time.Duration
	// CPU, when non-nil, is charged per Costs for every operation.
	CPU CPUWorker
	// Costs are the per-operation charges (see cpumodel.Default2006).
	Costs cpumodel.GuardCosts
	// ShardHashSeed, when non-zero, fixes the source→shard hash (see
	// engine.Config.HashSeed). Deterministic simulations set it so
	// multi-shard runs replay bit-identically; production keeps 0.
	ShardHashSeed uint64
	// Mitigation arms the layered auto-mitigation selector (see
	// MitigationConfig and mitigate.go). Disabled by default: the guard
	// then keeps the paper's static activation behavior exactly.
	Mitigation MitigationConfig
}

// Validate reports the first missing required field, without touching the
// config. NewRemote calls it; flag plumbing can call it directly after
// assembling a config (typically after Normalize, once the I/O fields are
// bound).
func (c *RemoteConfig) Validate() error {
	switch {
	case c.Env == nil:
		return errors.New("guard: RemoteConfig.Env is required")
	case c.IO == nil && len(c.IOs) == 0:
		return errors.New("guard: RemoteConfig.IO (or IOs) is required")
	case c.Auth == nil:
		return errors.New("guard: RemoteConfig.Auth is required")
	case !c.PublicAddr.IsValid() || !c.ANSAddr.IsValid():
		return errors.New("guard: PublicAddr and ANSAddr are required")
	}
	return nil
}

// Normalize fills every defaulted field in place. It is idempotent and
// independent of Validate — flag plumbing can Normalize a partially built
// config first (for example to learn the effective Shards before binding
// that many sockets), then set the I/O fields and Validate.
func (c *RemoteConfig) Normalize() {
	if len(c.IOs) == 0 && c.IO != nil {
		c.IOs = []PacketIO{c.IO}
	}
	if c.IO == nil && len(c.IOs) > 0 {
		c.IO = c.IOs[0]
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if c.Fallback == 0 {
		c.Fallback = SchemeDNS
	}
	if c.NSTTL == 0 {
		c.NSTTL = uint32(cookie.DefaultTTL / time.Second)
	}
	if c.RL1.PerSourceRate == 0 {
		c.RL1 = ratelimit.DefaultLimiter1Config()
	}
	if c.RL2.PerSourceRate == 0 {
		c.RL2 = ratelimit.DefaultLimiter2Config()
	}
	if c.PendingTimeout <= 0 {
		c.PendingTimeout = 3 * time.Second
	}
	if c.AnswerCacheTTL == 0 {
		c.AnswerCacheTTL = 10 * time.Second
	}
	if len(c.ANSFallbacks) > 0 {
		c.Health.Enabled = true
	}
	if c.Health.Enabled {
		c.Health.fillDefaults(c.PendingTimeout)
	}
	if c.Mitigation.Enabled {
		c.Mitigation.normalize()
	}
}

func (c *RemoteConfig) fillDefaults() error {
	if err := c.Validate(); err != nil {
		return err
	}
	c.Normalize()
	return nil
}

// RemoteStats counts guard activity; the experiment harness reads these.
// Fields are written with atomic operations (shard workers and the upstream
// loops run concurrently under real clocks); read individual fields with
// atomic.LoadUint64, or take a consistent-enough copy via Load.
type RemoteStats struct {
	Received        uint64 // packets read from the capture interface
	Passthrough     uint64 // relayed while spoof detection inactive
	Malformed       uint64
	NewcomerGrants  uint64 // fabricated NS / TC / cookie responses sent
	RL1Dropped      uint64 // cookie responses suppressed by Rate-Limiter1
	CookieValid     uint64 // requests whose cookie verified
	CookieInvalid   uint64 // spoofed requests dropped
	RL2Dropped      uint64 // verified requests over the nominal rate
	FastPathHits    uint64 // verifications short-circuited by the source cache
	ForwardedToANS  uint64
	AnswerCacheHits uint64
	RepliesToClient uint64
	TCRedirects     uint64
	PendingDropped  uint64 // NAT table overflow/expiry losses
	UpstreamStrays  uint64 // duplicated/unmatched ANS responses discarded
	UpstreamSpoofed uint64 // upstream datagrams failing source/question checks
	KeyRotations    uint64

	// Upstream health / failover (HealthConfig; zero when disabled).
	UpstreamTimeouts uint64 // pending entries reaped as upstream timeouts
	BreakerOpens     uint64 // breakers tripped by consecutive timeouts
	BreakerCloses    uint64 // breakers restored by a verified response
	ProbesSent       uint64 // half-open synthetic SOA probes emitted
	Failovers        uint64 // forwards diverted to a fallback upstream
	FailClosedDrops  uint64 // forwards shed with every breaker open
}

// Load returns an atomically-field-read copy of the stats. Each field is
// individually exact; the set is not a single consistent cut, which is fine
// for monitoring and for quiesced test assertions.
func (s *RemoteStats) Load() RemoteStats {
	return metrics.SnapshotUint64(s)
}

// MetricsInto registers every counter as a guard_remote_* series reading
// the live fields, so exports track the struct without copying it.
func (s *RemoteStats) MetricsInto(r *metrics.Registry) {
	metrics.RegisterUint64Fields(r, "guard_remote_", s)
}

type pendKind int

const (
	pendPassthrough pendKind = iota + 1
	pendChild                // rewritten cookie query (message 4); answer fabricates message 6
	pendDirect               // verified request relayed as-is (messages 5/8)
	pendProbe                // guard-minted half-open health probe; consumed internally
)

type pendEntry struct {
	kind      pendKind
	clientSrc netip.AddrPort
	replyFrom netip.AddrPort // source address for our reply (public or cookie IP)
	origID    uint16
	question  dnswire.Question // the client's question (fabricated name for pendChild)
	child     dnswire.Name     // restored child name (pendChild)
	fwdQ      dnswire.Question // question actually sent upstream; responses must echo it
	upstream  netip.AddrPort   // where the query went; the response must come from here
	expires   time.Duration

	// Fast-path entries (fastpath.go) carry the forwarded and client question
	// spans as reused wire bytes instead of decoded structures; the decoded
	// fields above stay zero until materializeFastLocked fills them for the
	// materializing upstream path. fast entries return to the shard pool.
	fast    bool
	qwire   []byte // client question span, name folded to canonical case (pendChild)
	fwdWire []byte // forwarded question span; upstream responses must echo it
}

// Remote is the ANS-side DNS guard. Its packet pipeline runs on an
// internal/engine dataplane: source addresses hash to shards, and each shard
// owns every per-source structure (rate limiters, pending NAT table,
// transaction-ID pool, upstream socket), so the hot path takes no cross-shard
// locks. With Shards == 1 the engine runs inline and the guard behaves —
// event for event — like the original single-loop implementation.
type Remote struct {
	cfg    RemoteConfig
	nsc    cookie.NSCodec
	ipc    cookie.IPCodec

	// nsPrefix/nsPrefixLen cache the NS codec's label geometry for the wire
	// fast path: the effective (lowercase) label prefix and the full cookie
	// label length it implies.
	nsPrefix    string
	nsPrefixLen int
	eng    *engine.Engine
	shards []*remoteShard
	rate   *ratelimit.RateEstimator
	rateMu sync.Mutex // serializes the rate estimator across shard workers
	active atomic.Bool
	closed atomic.Bool

	// Planned-change lifecycle (lifecycle.go): the state machine gauge and
	// its counters. Zero value = serving, so guards that never drain are
	// untouched.
	lcState atomic.Int32
	lc      LifecycleStats

	// Layered auto-mitigation selector state (mitigate.go). mit is always
	// non-nil; the three control atomics stay at their zero values (mitAuto,
	// no fallback override, non-strict) whenever the selector is disarmed,
	// which makes every override check below a no-op.
	mit         *mitigator
	mitMode     atomic.Int32 // mitAuto / mitForcePass / mitForceActive
	mitFallback atomic.Int32 // 0 or an imposed Scheme
	mitStrict   atomic.Bool  // limiters tightened StrictFactor×

	// answers is the shared non-referral answer cache (locks internally).
	answers *resolver.Cache

	// Stats is updated as the guard runs (atomically; see RemoteStats).
	Stats RemoteStats
}

// remoteShard is the engine handler for one shard: the slice of guard state
// owned by the sources that hash there. Everything except pending/ids is
// touched only by the shard's worker; the NAT table is shared with the
// shard's upstream loop, hence mu.
type remoteShard struct {
	g        *Remote
	id       int
	upstream netapi.UDPConn
	health   *shardHealth // nil unless cfg.Health.Enabled

	// mu guards the NAT table, the ID pool, and the limiter pointers (the
	// pointers are swapped by ResetShard and read by metrics closures; the
	// limiters themselves are internally synchronized).
	mu      sync.Mutex
	rl1     *ratelimit.Limiter1
	rl2     *ratelimit.Limiter2
	pending map[uint16]*pendEntry
	ids     idPool

	// strict mirrors the selector's mitStrict flag into worker context;
	// syncLimiters compares and rebuilds the limiters on transitions.
	strict bool

	// Batch-bracket state, touched only by the shard's worker between
	// BeginBatch and EndBatch (see batch.go): the keyring snapshot and the
	// coalesced-egress reply buffer.
	bv      *cookie.BatchVerifier
	inBatch bool
	outbuf  []Packet

	// Fast-path scratch (fastpath.go). entryPool is the pendEntry free list
	// (under mu); credBuf and wireBuf are worker-context scratch for the
	// credential and the forwarded wire; upBuf is upstream-loop-context
	// scratch for fabricated replies. The two contexts never share a buffer.
	entryPool []*pendEntry
	credBuf   []byte
	wireBuf   []byte
	upBuf     []byte
}

// limiters returns the shard's current rate limiters; ResetShard may swap
// them, so cross-proc readers (metrics) go through here.
func (s *remoteShard) limiters() (*ratelimit.Limiter1, *ratelimit.Limiter2) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rl1, s.rl2
}

// ResetShard implements engine.Resetter: a supervised shard restart discards
// every per-packet structure (NAT table, ID pool, rate limiters — any of
// which the panic may have left mid-update) while keeping the upstream
// socket, its reader proc, and the breaker state, whose lifetimes span
// restarts. Runs in the owning worker's context.
func (s *remoteShard) ResetShard() {
	g := s.g
	now := g.now()
	s.mu.Lock()
	s.pending = make(map[uint16]*pendEntry)
	s.ids = idPool{}
	s.rl1 = ratelimit.NewLimiter1(g.cfg.RL1, now)
	s.rl2 = ratelimit.NewLimiter2(g.cfg.RL2, now)
	s.mu.Unlock()
}

// MetricsInto registers the guard's counters, rate-limiter counters, a live
// NAT-table-size gauge, and the dataplane's guard_engine_* series on r. The
// guard_rl1_* / guard_rl2_* names are stable across shard counts: with one
// shard they read the limiter directly, otherwise they sum across shards.
func (g *Remote) MetricsInto(r *metrics.Registry) {
	g.Stats.MetricsInto(r)
	// Limiter series sum across shards and read the limiter pointers through
	// the shard lock, so they stay live across supervised shard restarts
	// (ResetShard swaps the limiters). With one shard the sum is the
	// limiter itself, keeping the series names stable across shard counts.
	sum := func(f func(*remoteShard) uint64) func() uint64 {
		return func() uint64 {
			var t uint64
			for _, s := range g.shards {
				t += f(s)
			}
			return t
		}
	}
	r.FuncUint("guard_rl1_allowed", sum(func(s *remoteShard) uint64 { rl1, _ := s.limiters(); a, _ := rl1.Stats(); return a }))
	r.FuncUint("guard_rl1_denied", sum(func(s *remoteShard) uint64 { rl1, _ := s.limiters(); _, d := rl1.Stats(); return d }))
	r.FuncUint("guard_rl1_topk_evictions", sum(func(s *remoteShard) uint64 { rl1, _ := s.limiters(); return rl1.TopKEvictions() }))
	r.FuncUint("guard_rl2_allowed", sum(func(s *remoteShard) uint64 { _, rl2 := s.limiters(); a, _ := rl2.Stats(); return a }))
	r.FuncUint("guard_rl2_denied", sum(func(s *remoteShard) uint64 { _, rl2 := s.limiters(); _, d := rl2.Stats(); return d }))
	r.Func("guard_remote_pending", func() float64 {
		return float64(g.PendingEntries())
	})
	g.mitMetricsInto(r)
	g.lifecycleMetricsInto(r)
	g.eng.MetricsInto(r, "guard_engine_")
}

// NewRemote validates cfg and creates the guard (not yet started).
func NewRemote(cfg RemoteConfig) (*Remote, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	now := cfg.Env.Now()
	g := &Remote{
		cfg:     cfg,
		nsc:     cookie.NSCodec{Prefix: cfg.NSPrefix},
		ipc:     cookie.IPCodec{Subnet: cfg.Subnet},
		rate:    ratelimit.NewRateEstimator(10, 100*time.Millisecond),
		answers: resolver.NewCache(4096),
		mit:     newMitigator(cfg.Mitigation),
	}
	prefix := cfg.NSPrefix
	if prefix == "" {
		prefix = cookie.DefaultNSPrefix
	}
	g.nsPrefix = prefix
	g.nsPrefixLen = len(g.nsc.EncodeLabel(cookie.Cookie{}))
	if cfg.Mitigation.Enabled {
		// Derive the initial control flags from the ladder bottom
		// (passthrough) so the armed guard starts fully open and works its
		// way up; disarmed guards never touch the flags.
		g.applyMitigation()
	}
	g.shards = make([]*remoteShard, cfg.Shards)
	sup := cfg.Supervision
	if sup.Enabled && sup.Trip == engine.TripPass && sup.OnPass == nil {
		// Fail-open trip: a shard that exhausted its restart budget relays
		// its sources' traffic unfiltered instead of silencing them.
		sup.OnPass = func(shard int, pkt Packet) { g.shards[shard].passthrough(pkt) }
	}
	eng, err := engine.New(engine.Config{
		Env:             cfg.Env,
		IOs:             cfg.IOs,
		Shards:          cfg.Shards,
		QueueDepth:      cfg.QueueDepth,
		Batch:           cfg.Batch,
		Ingest:          cfg.Ingest,
		FastPathTTL:     cfg.FastPathTTL,
		FastPathSources: cfg.FastPathSources,
		Name:            "guard",
		Observer:        cfg.Observer,
		Supervisor:      sup,
		HashSeed:        cfg.ShardHashSeed,
		NewHandler: func(i int) engine.Handler {
			s := &remoteShard{
				g:       g,
				id:      i,
				rl1:     ratelimit.NewLimiter1(cfg.RL1, now),
				rl2:     ratelimit.NewLimiter2(cfg.RL2, now),
				pending: make(map[uint16]*pendEntry),
				credBuf: append(make([]byte, 0, 3+g.nsPrefixLen), "ns:"...)[:3+g.nsPrefixLen],
				wireBuf: make([]byte, 0, dnswire.MaxUDPSize),
				upBuf:   make([]byte, 0, dnswire.MaxUDPSize),
			}
			if cfg.Health.Enabled {
				s.health = newShardHealth(g)
			}
			g.shards[i] = s
			return s
		},
	})
	if err != nil {
		return nil, fmt.Errorf("guard: %w", err)
	}
	g.eng = eng
	return g, nil
}

// Start opens the per-shard upstream sockets and spawns the dataplane.
// With one shard the spawn sequence is exactly the historical one —
// upstream bind, "guard-capture", "guard-upstream", "guard-rotate" — so
// deterministic simulations replay unchanged.
func (g *Remote) Start() error {
	for _, s := range g.shards {
		up, err := g.cfg.Env.ListenUDP(netip.AddrPort{})
		if err != nil {
			return fmt.Errorf("guard: binding upstream socket: %w", err)
		}
		// Best-effort: widen the kernel receive buffer where the conn
		// exposes it. ANS replies arrive in bursts while the shard worker is
		// busy with ingress; the distro default (~208 KiB ≈ 128 small
		// datagrams of skb truesize) silently drops the excess, which shows
		// up as upstream timeouts under load the dataplane could handle.
		if rb, ok := up.(interface{ SetReadBuffer(int) error }); ok {
			_ = rb.SetReadBuffer(4 << 20)
		}
		s.upstream = up
	}
	g.eng.Start()
	for _, s := range g.shards {
		s := s
		name := "guard-upstream"
		if len(g.shards) > 1 {
			name = fmt.Sprintf("guard-upstream-%d", s.id)
		}
		g.cfg.Env.Go(name, s.upstreamLoop)
	}
	if g.cfg.Health.Enabled {
		for _, s := range g.shards {
			s := s
			name := "guard-health"
			if len(g.shards) > 1 {
				name = fmt.Sprintf("guard-health-%d", s.id)
			}
			g.cfg.Env.Go(name, s.healthLoop)
		}
	}
	if g.cfg.KeyRotation > 0 {
		g.cfg.Env.Go("guard-rotate", g.rotateLoop)
	}
	if g.cfg.Mitigation.Enabled {
		g.cfg.Env.Go("guard-mitigate", g.mitigateLoop)
	}
	return nil
}

// UpstreamAddr reports the local address of shard 0's upstream socket
// (valid after Start). Tests use it to aim spoofed datagrams at the
// ANS-facing path.
func (g *Remote) UpstreamAddr() netip.AddrPort {
	if g.shards[0].upstream == nil {
		return netip.AddrPort{}
	}
	return g.shards[0].upstream.LocalAddr()
}

// PendingEntries reports the NAT-table population summed across shards.
func (g *Remote) PendingEntries() int {
	total := 0
	for _, s := range g.shards {
		s.mu.Lock()
		total += len(s.pending)
		s.mu.Unlock()
	}
	return total
}

// Engine exposes the dataplane (shard mapping, backpressure stats, the
// verified-source cache). Read-only use.
func (g *Remote) Engine() *engine.Engine { return g.eng }

// rotateLoop changes the cookie key every KeyRotation period. Cookies from
// the previous generation stay valid for one more period (the generation
// bit selects the key), so rotation is invisible to live requesters.
func (g *Remote) rotateLoop() {
	for !g.closed.Load() {
		g.cfg.Env.Sleep(g.cfg.KeyRotation)
		if g.closed.Load() {
			return
		}
		if err := g.cfg.Auth.Rotate(); err != nil {
			continue // keep the old key; retry next period
		}
		atomic.AddUint64(&g.Stats.KeyRotations, 1)
	}
}

// AdoptKeys installs a fleet-published keyring state on this guard's
// authenticator (see cookie.Adopt): the fleet controller rotates the shared
// ring once and pushes the result to every site, so any guard verifies a
// cookie minted by any other. Reports whether the state was adopted (a stale
// epoch is ignored); an adoption that advances the epoch counts as a key
// rotation in the guard's stats.
func (g *Remote) AdoptKeys(st cookie.KeyState) bool {
	before := g.cfg.Auth.Epoch()
	if !g.cfg.Auth.Adopt(st) {
		return false
	}
	if g.cfg.Auth.Epoch() != before {
		atomic.AddUint64(&g.Stats.KeyRotations, 1)
	}
	return true
}

// KeyringEpoch reports the cookie keyring's current epoch — the value
// readiness gates compare against the fleet's target epoch.
func (g *Remote) KeyringEpoch() uint64 { return g.cfg.Auth.Epoch() }

// Close stops the guard.
func (g *Remote) Close() {
	if g.closed.Swap(true) {
		return
	}
	g.eng.Close()
	for _, s := range g.shards {
		if s.upstream != nil {
			_ = s.upstream.Close()
		}
	}
}

// Active reports whether spoof detection is currently engaged. The layered
// mitigation selector, when armed, can override the threshold decision in
// either direction: the ladder bottom relays everything, cookie rungs and
// above force detection on.
func (g *Remote) Active() bool {
	switch g.mitMode.Load() {
	case mitForcePass:
		return false
	case mitForceActive:
		return true
	}
	return g.cfg.ActivationThreshold == 0 || g.active.Load()
}

// preempter is optionally implemented by CPU models that distinguish
// interrupt-priority packet work from ordinary jobs (netsim.CPU does).
type preempter interface {
	WorkPreempt(d time.Duration)
}

func (g *Remote) charge(d time.Duration) {
	if g.cfg.CPU == nil || d <= 0 {
		return
	}
	// The guard's datapath ran in the kernel (iptables/softirq) on the
	// paper's testbed: it preempts userspace work like the TCP proxy.
	if p, ok := g.cfg.CPU.(preempter); ok {
		p.WorkPreempt(d)
		return
	}
	g.cfg.CPU.Work(d)
}

func (g *Remote) now() time.Duration { return g.cfg.Env.Now() }

// HandlePacket runs the Figure 4 pipeline for one intercepted datagram; the
// engine calls it on the worker owning pkt.Src's shard.
func (s *remoteShard) HandlePacket(pkt Packet) {
	g := s.g
	s.syncLimiters()
	atomic.AddUint64(&g.Stats.Received, 1)
	g.charge(g.cfg.Costs.PacketOp)
	g.updateActivation()
	s.handle(pkt)
}

func (g *Remote) updateActivation() {
	if g.cfg.ActivationThreshold <= 0 {
		return
	}
	g.rateMu.Lock()
	defer g.rateMu.Unlock()
	now := g.now()
	g.rate.Observe(now)
	r := g.rate.Rate(now)
	switch {
	case !g.active.Load() && r > g.cfg.ActivationThreshold:
		g.active.Store(true)
	case g.active.Load() && r < 0.8*g.cfg.ActivationThreshold:
		g.active.Store(false)
	}
}

func (s *remoteShard) handle(pkt Packet) {
	g := s.g
	if pkt.Dst.Port() != g.cfg.PublicAddr.Port() {
		return // not DNS traffic for the protected service
	}
	if !g.Active() {
		s.passthrough(pkt)
		return
	}
	if s.tryFastNS(pkt) {
		return
	}
	msg, err := dnswire.Unpack(pkt.Payload)
	if err != nil || msg.Flags.QR || len(msg.Questions) == 0 {
		atomic.AddUint64(&g.Stats.Malformed, 1)
		return
	}
	// Scheme 1b: queries addressed to a cookie IP inside the guard subnet.
	if g.cfg.Subnet.IsValid() && pkt.Dst.Addr() != g.cfg.PublicAddr.Addr() && g.cfg.Subnet.Contains(pkt.Dst.Addr()) {
		s.handleIPCookie(pkt, msg)
		return
	}
	// Modified-DNS scheme: explicit cookie extension.
	if c, _, _, ok := FindCookie(msg); ok {
		s.handleModified(pkt, msg, c)
		return
	}
	// DNS-based scheme: cookie embedded in the query name.
	if label, child, ok := ParseFabricatedName(g.nsc, msg.Question().Name); ok {
		s.handleNSCookie(pkt, msg, label, child)
		return
	}
	s.handleNewcomer(pkt, msg)
}

// passthrough relays traffic unmodified while spoof detection is inactive.
func (s *remoteShard) passthrough(pkt Packet) {
	g := s.g
	if s.tryFastPassthrough(pkt) {
		return
	}
	msg, err := dnswire.Unpack(pkt.Payload)
	if err != nil || msg.Flags.QR {
		atomic.AddUint64(&g.Stats.Malformed, 1)
		return
	}
	atomic.AddUint64(&g.Stats.Passthrough, 1)
	s.forwardMsg(msg, &pendEntry{
		kind:      pendPassthrough,
		clientSrc: pkt.Src,
		replyFrom: pkt.Dst,
		origID:    msg.ID,
	})
}

// handleNewcomer boots a cookie-less requester per the fallback scheme.
func (s *remoteShard) handleNewcomer(pkt Packet, msg *dnswire.Message) {
	g := s.g
	if g.drainGate() {
		// Draining/quiesced: no new cookie exchanges — this instance may not
		// live to answer them. The client retries and lands on a serving
		// site (or this site's replacement).
		atomic.AddUint64(&g.lc.DrainDropped, 1)
		return
	}
	qname := msg.Question().Name
	if g.cfg.Mitigation.Enabled {
		// Feed the selector's name-diversity sketch before the limiter so
		// it reflects offered newcomer load, not the post-RL1 residue.
		g.mit.sketch.observe(qname)
	}
	if !s.rl1.AllowResponse(pkt.Src.Addr(), g.now()) {
		atomic.AddUint64(&g.Stats.RL1Dropped, 1)
		return
	}
	child, hasChild := qname.ChildOf(g.cfg.Zone)
	useTCP := g.effectiveFallback() == SchemeTCP || !hasChild || g.isTCPClient(pkt.Src.Addr())
	if !qname.IsSubdomainOf(g.cfg.Zone) && qname != g.cfg.Zone {
		resp := msg.Response()
		resp.Flags.RCode = dnswire.RCodeRefused
		s.reply(pkt.Dst, pkt.Src, resp)
		return
	}
	if useTCP {
		// TC redirect: also used for apex queries, which have no child
		// name to fabricate.
		g.charge(g.cfg.Costs.TCReply)
		atomic.AddUint64(&g.Stats.NewcomerGrants, 1)
		atomic.AddUint64(&g.Stats.TCRedirects, 1)
		resp := msg.Response()
		resp.Flags.TC = true
		s.reply(pkt.Dst, pkt.Src, resp)
		return
	}
	// DNS-based: fabricate "child NS <cookie+label>" with a long TTL and
	// no glue, so the LRS must come back through us to resolve it.
	g.charge(g.cfg.Costs.CookieGrant)
	c := s.mint(pkt.Src.Addr())
	fabName, err := FabricateNSName(g.nsc, c, child)
	if err != nil {
		// Label too long to carry a cookie; fall back to TCP.
		atomic.AddUint64(&g.Stats.TCRedirects, 1)
		resp := msg.Response()
		resp.Flags.TC = true
		s.reply(pkt.Dst, pkt.Src, resp)
		return
	}
	atomic.AddUint64(&g.Stats.NewcomerGrants, 1)
	resp := msg.Response()
	resp.Authority = []dnswire.RR{
		dnswire.NewRR(child, g.cfg.NSTTL, &dnswire.NSData{Host: fabName}),
	}
	s.reply(pkt.Dst, pkt.Src, resp)
}

// isTCPClient reports whether src is configured for TCP redirection.
func (g *Remote) isTCPClient(src netip.Addr) bool {
	for _, p := range g.cfg.TCPClients {
		if p.Contains(src) {
			return true
		}
	}
	return false
}

// fastPath consults the verified-source cache: true when src recently
// verified exactly cred, in which case the MD5 check may be skipped. The
// credential compare is the security boundary — the cache never turns a
// bare source address into trust — and it is constant-time: the presented
// credential is attacker-controlled, and a byte-wise early exit would leak
// the cached cookie one matching prefix byte at a time.
//
// The lookup is shard-explicit: this handler owns shard s.id, and under
// affine ingest the owning shard is the delivering socket's, not the source
// hash's, so the source-hashing VerifiedCred would consult (and promote
// into) a cache partition a different worker owns.
func (s *remoteShard) fastPath(src netip.Addr, cred string) bool {
	got, ok := s.g.eng.VerifiedCredOn(s.id, src)
	if !ok || subtle.ConstantTimeCompare([]byte(got), []byte(cred)) != 1 {
		return false
	}
	atomic.AddUint64(&s.g.Stats.FastPathHits, 1)
	return true
}

// handleNSCookie processes a query for a fabricated name (message 3):
// verify, restore, forward (message 4).
func (s *remoteShard) handleNSCookie(pkt Packet, msg *dnswire.Message, label string, child dnswire.Name) {
	g := s.g
	if cred := "ns:" + label; !s.fastPath(pkt.Src.Addr(), cred) {
		g.charge(g.cfg.Costs.CookieCheck)
		if !s.verifyLabel(pkt.Src.Addr(), label) {
			atomic.AddUint64(&g.Stats.CookieInvalid, 1)
			return
		}
		g.eng.MarkVerifiedOn(s.id, pkt.Src.Addr(), cred)
	}
	atomic.AddUint64(&g.Stats.CookieValid, 1)
	if !s.rl2.AllowRequest(pkt.Src.Addr(), g.now()) {
		atomic.AddUint64(&g.Stats.RL2Dropped, 1)
		return
	}
	g.charge(g.cfg.Costs.Rewrite)
	q := msg.Question()
	fwd := dnswire.NewQuery(0, child, q.Type)
	fwd.Flags.RD = false
	s.forwardMsg(fwd, &pendEntry{
		kind:      pendChild,
		clientSrc: pkt.Src,
		replyFrom: pkt.Dst,
		origID:    msg.ID,
		question:  q,
		child:     child,
	})
}

// handleIPCookie processes a query addressed to a cookie address
// (message 7): the destination IP is the credential.
func (s *remoteShard) handleIPCookie(pkt Packet, msg *dnswire.Message) {
	g := s.g
	dst16 := pkt.Dst.Addr().As16()
	if cred := "ip:" + string(dst16[:]); !s.fastPath(pkt.Src.Addr(), cred) {
		g.charge(g.cfg.Costs.CookieCheck)
		if !s.verifyIP(pkt.Src.Addr(), pkt.Dst.Addr()) {
			atomic.AddUint64(&g.Stats.CookieInvalid, 1)
			return
		}
		g.eng.MarkVerifiedOn(s.id, pkt.Src.Addr(), cred)
	}
	atomic.AddUint64(&g.Stats.CookieValid, 1)
	if !s.rl2.AllowRequest(pkt.Src.Addr(), g.now()) {
		atomic.AddUint64(&g.Stats.RL2Dropped, 1)
		return
	}
	q := msg.Question()
	// Serve from the answer cache when message 5's result is still fresh.
	if rrs, _, neg, ok := g.answersGet(q.Name, q.Type); ok && !neg {
		atomic.AddUint64(&g.Stats.AnswerCacheHits, 1)
		resp := msg.Response()
		resp.Flags.AA = true
		resp.Answers = rrs
		s.reply(pkt.Dst, pkt.Src, resp)
		return
	}
	fwd := dnswire.NewQuery(0, q.Name, q.Type)
	fwd.Flags.RD = false
	s.forwardMsg(fwd, &pendEntry{
		kind:      pendDirect,
		clientSrc: pkt.Src,
		replyFrom: pkt.Dst,
		origID:    msg.ID,
		question:  q,
	})
}

// handleModified processes the explicit cookie extension (Figure 3).
func (s *remoteShard) handleModified(pkt Packet, msg *dnswire.Message, c cookie.Cookie) {
	g := s.g
	if c.IsZero() {
		// Message 2: cookie request. Answer through Rate-Limiter1.
		if !s.rl1.AllowResponse(pkt.Src.Addr(), g.now()) {
			atomic.AddUint64(&g.Stats.RL1Dropped, 1)
			return
		}
		g.charge(g.cfg.Costs.CookieGrant)
		atomic.AddUint64(&g.Stats.NewcomerGrants, 1)
		resp := msg.Response()
		AttachCookie(resp, s.mint(pkt.Src.Addr()), g.cfg.NSTTL)
		s.reply(pkt.Dst, pkt.Src, resp)
		return
	}
	if cred := "ck:" + string(c[:]); !s.fastPath(pkt.Src.Addr(), cred) {
		g.charge(g.cfg.Costs.CookieCheck)
		if !s.verifyCookie(pkt.Src.Addr(), c) {
			atomic.AddUint64(&g.Stats.CookieInvalid, 1)
			return
		}
		g.eng.MarkVerifiedOn(s.id, pkt.Src.Addr(), cred)
	}
	atomic.AddUint64(&g.Stats.CookieValid, 1)
	if !s.rl2.AllowRequest(pkt.Src.Addr(), g.now()) {
		atomic.AddUint64(&g.Stats.RL2Dropped, 1)
		return
	}
	g.charge(g.cfg.Costs.Rewrite)
	fwd := *msg
	fwd.Additional = append([]dnswire.RR(nil), msg.Additional...)
	_, _ = StripCookie(&fwd)
	s.forwardMsg(&fwd, &pendEntry{
		kind:      pendDirect,
		clientSrc: pkt.Src,
		replyFrom: pkt.Dst,
		origID:    msg.ID,
		question:  msg.Question(),
	})
}

// forwardMsg sends msg to the current upstream — the configured ANS, or
// whatever the shard's circuit breaker selects when health tracking is on —
// under a fresh transaction ID, registering the pending entry for the
// response.
func (s *remoteShard) forwardMsg(msg *dnswire.Message, entry *pendEntry) {
	g := s.g
	target := g.cfg.ANSAddr
	if s.health != nil {
		up, ok := s.health.pick()
		if !ok {
			// Every breaker open and the policy is fail-closed: shed.
			atomic.AddUint64(&g.Stats.FailClosedDrops, 1)
			return
		}
		if up != g.cfg.ANSAddr {
			atomic.AddUint64(&g.Stats.Failovers, 1)
		}
		target = up
	}
	s.forwardTo(msg, entry, target)
}

// forwardTo is forwardMsg with an explicit upstream (health probes pick
// their own target).
func (s *remoteShard) forwardTo(msg *dnswire.Message, entry *pendEntry, target netip.AddrPort) {
	g := s.g
	entry.upstream = target
	if len(msg.Questions) > 0 {
		entry.fwdQ = msg.Questions[0]
	}
	entry.expires = g.now() + g.cfg.PendingTimeout
	s.mu.Lock()
	id, ok := s.allocID()
	if !ok {
		s.mu.Unlock()
		atomic.AddUint64(&g.Stats.PendingDropped, 1)
		return
	}
	s.pending[id] = entry
	s.mu.Unlock()
	out := *msg
	out.ID = id
	wire, err := out.PackUDP(dnswire.MaxUDPSize)
	if err != nil {
		s.mu.Lock()
		delete(s.pending, id)
		s.ids.release(id)
		s.mu.Unlock()
		return
	}
	atomic.AddUint64(&g.Stats.ForwardedToANS, 1)
	g.charge(g.cfg.Costs.PacketOp)
	_ = s.upstream.WriteTo(wire, target)
}

// allocID picks an unused transaction ID in O(1) via the shard's ID pool;
// the caller must hold s.mu. When the NAT table is at capacity it first
// reaps expired entries, refusing only if the table is genuinely full of
// live queries.
func (s *remoteShard) allocID() (uint16, bool) {
	if len(s.pending) >= maxPending {
		now := s.g.now()
		for id, e := range s.pending {
			if now >= e.expires {
				delete(s.pending, id)
				s.ids.release(id)
				s.putEntryLocked(e)
				atomic.AddUint64(&s.g.Stats.PendingDropped, 1)
			}
		}
		if len(s.pending) >= maxPending {
			return 0, false
		}
	}
	return s.ids.get()
}

// maxPending bounds each shard's NAT table (the pre-engine global bound,
// now per shard).
const maxPending = 4096

// upstreamLoop receives ANS responses for one shard and transforms them per
// the pending entry's kind. A datagram is consumed only when it (a) comes
// from the configured ANS address, and (b) echoes the question the guard
// forwarded — ID alone is 16 bits of entropy, trivially sweepable by an
// off-path attacker who learns the upstream port.
func (s *remoteShard) upstreamLoop() {
	g := s.g
	// One slab reused for every read: the per-datagram buffer churn of a
	// ReadFrom loop disappears and on Linux the reads collapse into
	// recvmmsg. With Batch == 1 the slab has a single slot, and a full slab
	// makes ReadBatch exactly one blocking read per call (the zero-timeout
	// drain never runs), so the historical per-packet event sequence is
	// preserved. handleUpstream only borrows the payload — slab slots are
	// the loop's to overwrite on the next read — and may patch it in place
	// (the fast relay rewrites the transaction ID before writing out).
	bc := netapi.AsBatch(s.upstream)
	slab := netapi.NewSlab(g.cfg.Batch, dnswire.MaxMessageSize)
	for {
		n, err := bc.ReadBatch(slab, netapi.NoTimeout)
		if err != nil {
			return
		}
		for i := 0; i < n; i++ {
			s.handleUpstream(slab[i].Payload(), slab[i].Addr)
		}
	}
}

// handleUpstream validates and relays one ANS datagram. payload is borrowed:
// it is only read within the call, never retained.
func (s *remoteShard) handleUpstream(payload []byte, src netip.AddrPort) {
	g := s.g
	g.charge(g.cfg.Costs.PacketOp)
	if !g.isUpstreamAddr(src) {
		// Off-path datagram: only configured upstreams send here.
		atomic.AddUint64(&g.Stats.UpstreamSpoofed, 1)
		return
	}
	if s.tryFastUpstream(payload, src) {
		return
	}
	resp, err := dnswire.Unpack(payload)
	if err != nil || !resp.Flags.QR {
		return
	}
	s.mu.Lock()
	entry, ok := s.pending[resp.ID]
	if !ok {
		s.mu.Unlock()
		// Duplicated or long-delayed ANS response whose entry was
		// already consumed — the network, not the ANS, misbehaving.
		atomic.AddUint64(&g.Stats.UpstreamStrays, 1)
		return
	}
	if entry.fast && entry.fwdQ == (dnswire.Question{}) {
		// A fast entry whose response bailed to this path (answers,
		// referral, case deviation): decode its wire spans once so the
		// question-echo check and answerChild see the historical fields.
		s.materializeFastLocked(entry)
	}
	if len(resp.Questions) == 0 || resp.Questions[0] != entry.fwdQ || src != entry.upstream {
		// Right ID but wrong question — or right everything from the
		// wrong upstream (one configured ANS cannot vouch for another).
		// Spoofed or corrupted either way; keep the entry so the
		// genuine answer can still land.
		s.mu.Unlock()
		atomic.AddUint64(&g.Stats.UpstreamSpoofed, 1)
		return
	}
	expired := g.now() >= entry.expires
	delete(s.pending, resp.ID)
	s.ids.release(resp.ID)
	s.mu.Unlock()
	if s.health != nil {
		// Only a fully validated response feeds the breaker: source,
		// ID, and question echo all checked above.
		s.health.noteSuccess(src)
	}
	if expired {
		atomic.AddUint64(&g.Stats.PendingDropped, 1)
		s.recycleEntry(entry)
		return
	}
	switch entry.kind {
	case pendPassthrough, pendDirect:
		resp.ID = entry.origID
		g.reply(entry.replyFrom, entry.clientSrc, resp)
	case pendChild:
		s.answerChild(entry, resp)
	case pendProbe:
		// Half-open probe answered: the noteSuccess above already
		// closed the breaker. Nothing to relay.
	}
	s.recycleEntry(entry)
}

// answerChild turns the ANS's answer for the restored child query (message
// 5) into the response for the fabricated name (message 6).
func (s *remoteShard) answerChild(entry *pendEntry, resp *dnswire.Message) {
	g := s.g
	out := &dnswire.Message{
		ID:        entry.origID,
		Flags:     dnswire.Flags{QR: true, AA: true},
		Questions: []dnswire.Question{entry.question},
	}
	fabName := entry.question.Name

	switch {
	case resp.Flags.RCode == dnswire.RCodeNXDomain:
		out.Flags.RCode = dnswire.RCodeNXDomain
		out.Authority = resp.Authority
	case len(resp.Answers) == 0 && hasNS(resp.Authority):
		// Referral: the fabricated name's addresses are the real
		// next-level servers' glue addresses (§III-B.1).
		for _, rr := range resp.Additional {
			if rr.Type == dnswire.TypeA {
				out.Answers = append(out.Answers,
					dnswire.NewRR(fabName, rr.TTL, rr.Data))
			}
		}
		if len(out.Answers) == 0 {
			out.Flags.RCode = dnswire.RCodeServFail
		}
	case len(resp.Answers) > 0:
		// Non-referral: answer with the IP cookie (§III-B.2) and cache
		// the real answer for message 7.
		if !g.cfg.Subnet.IsValid() {
			out.Flags.RCode = dnswire.RCodeServFail
			break
		}
		g.charge(g.cfg.Costs.CookieCheck) // second cookie computation
		c := g.cfg.Auth.Mint(entry.clientSrc.Addr())
		addr, err := g.ipc.Encode(c)
		if err != nil {
			out.Flags.RCode = dnswire.RCodeServFail
			break
		}
		if g.cfg.AnswerCacheTTL > 0 {
			ttl := uint32(g.cfg.AnswerCacheTTL / time.Second)
			cached := make([]dnswire.RR, len(resp.Answers))
			copy(cached, resp.Answers)
			for i := range cached {
				if cached[i].TTL > ttl {
					cached[i].TTL = ttl
				}
			}
			g.answers.Put(g.now(), entry.child, entry.question.Type, cached)
		}
		out.Answers = []dnswire.RR{
			dnswire.NewRR(fabName, g.cfg.NSTTL, &dnswire.AData{Addr: addr}),
		}
	default:
		// NODATA for the child: nothing useful to fabricate.
		out.Flags.RCode = dnswire.RCodeServFail
	}
	g.reply(entry.replyFrom, entry.clientSrc, out)
}

// answersGet consults the non-referral answer cache unless it is disabled.
func (g *Remote) answersGet(name dnswire.Name, t dnswire.Type) ([]dnswire.RR, dnswire.RCode, bool, bool) {
	if g.cfg.AnswerCacheTTL < 0 {
		return nil, 0, false, false
	}
	return g.answers.Get(g.now(), name, t)
}

// reply packs and emits a guard-originated response.
func (g *Remote) reply(from, to netip.AddrPort, msg *dnswire.Message) {
	wire, err := msg.PackUDP(dnswire.MaxUDPSize)
	if err != nil {
		return
	}
	atomic.AddUint64(&g.Stats.RepliesToClient, 1)
	g.charge(g.cfg.Costs.PacketOp)
	_ = g.cfg.IO.WriteFromTo(from, to, wire)
}

func hasNS(rrs []dnswire.RR) bool {
	for _, rr := range rrs {
		if rr.Type == dnswire.TypeNS {
			return true
		}
	}
	return false
}
