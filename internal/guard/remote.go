package guard

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"dnsguard/internal/cookie"
	"dnsguard/internal/cpumodel"
	"dnsguard/internal/dnswire"
	"dnsguard/internal/metrics"
	"dnsguard/internal/netapi"
	"dnsguard/internal/ratelimit"
	"dnsguard/internal/resolver"
)

// Scheme selects how the guard bootstraps cookie-less requesters.
type Scheme int

// Fallback schemes for requesters that do not speak the cookie extension.
const (
	// SchemeDNS embeds cookies in fabricated NS names (and, for
	// non-referral answers, in a fabricated server address within the
	// guard's subnet) — §III-B.
	SchemeDNS Scheme = iota + 1
	// SchemeTCP redirects the requester to TCP via the truncation flag —
	// §III-C. The TCP side is served by internal/tcpproxy.
	SchemeTCP
)

func (s Scheme) String() string {
	switch s {
	case SchemeDNS:
		return "dns-based"
	case SchemeTCP:
		return "tcp-based"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// CPUWorker charges simulated CPU time; netsim.(*CPU) implements it.
type CPUWorker interface {
	Work(d time.Duration)
}

// RemoteConfig parameterizes the ANS-side guard.
type RemoteConfig struct {
	// Env supplies clock and sockets.
	Env netapi.Env
	// IO is the packet-capture interface for the protected address space.
	IO PacketIO
	// PublicAddr is the ANS's advertised address, which the guard
	// intercepts and answers from.
	PublicAddr netip.AddrPort
	// ANSAddr is where the real ANS actually listens (the guard's private
	// path to it).
	ANSAddr netip.AddrPort
	// Zone is the apex of the zone the protected ANS serves.
	Zone dnswire.Name
	// Subnet is the intercepted prefix used for IP cookies (scheme 1b,
	// non-referral answers). Invalid/zero disables the fabricated-IP
	// variant; non-referral first contacts then fail closed.
	Subnet netip.Prefix
	// Fallback is the scheme used for cookie-less requesters.
	Fallback Scheme
	// TCPClients lists source prefixes that are always redirected to TCP
	// regardless of Fallback (the paper's Figure 5 testbed redirects its
	// second LRS to TCP while the first uses UDP cookies).
	TCPClients []netip.Prefix
	// Auth computes cookies; required.
	Auth *cookie.Authenticator
	// NSPrefix overrides the fabricated-label prefix.
	NSPrefix string
	// NSTTL is the TTL (seconds) of fabricated records and wire cookies;
	// 0 means one week (§III-E).
	NSTTL uint32
	// RL1 configures Rate-Limiter1 (cookie responses). Zero-value fields
	// take defaults.
	RL1 ratelimit.Limiter1Config
	// RL2 configures Rate-Limiter2 (verified requests).
	RL2 ratelimit.Limiter2Config
	// ActivationThreshold is the input rate (req/s) above which spoof
	// detection engages; 0 means always on (§IV-C uses the ANS capacity).
	ActivationThreshold float64
	// PendingTimeout bounds NAT-table entries for in-flight ANS queries.
	PendingTimeout time.Duration
	// AnswerCacheTTL bounds the non-referral answer cache (message 5
	// results reused for message 7). 0 means 10 s; negative disables the
	// cache entirely (every message 7 consults the ANS, the paper's
	// 4-packet cache-hit accounting).
	AnswerCacheTTL time.Duration
	// KeyRotation, when positive, rotates the cookie key on that period
	// (the paper suggests weekly, matching the cookie TTL so each
	// verification still costs one MD5 — §III-E).
	KeyRotation time.Duration
	// CPU, when non-nil, is charged per Costs for every operation.
	CPU CPUWorker
	// Costs are the per-operation charges (see cpumodel.Default2006).
	Costs cpumodel.GuardCosts
}

func (c *RemoteConfig) fillDefaults() error {
	switch {
	case c.Env == nil:
		return errors.New("guard: RemoteConfig.Env is required")
	case c.IO == nil:
		return errors.New("guard: RemoteConfig.IO is required")
	case c.Auth == nil:
		return errors.New("guard: RemoteConfig.Auth is required")
	case !c.PublicAddr.IsValid() || !c.ANSAddr.IsValid():
		return errors.New("guard: PublicAddr and ANSAddr are required")
	}
	if c.Fallback == 0 {
		c.Fallback = SchemeDNS
	}
	if c.NSTTL == 0 {
		c.NSTTL = uint32(cookie.DefaultTTL / time.Second)
	}
	if c.RL1.PerSourceRate == 0 {
		c.RL1 = ratelimit.DefaultLimiter1Config()
	}
	if c.RL2.PerSourceRate == 0 {
		c.RL2 = ratelimit.DefaultLimiter2Config()
	}
	if c.PendingTimeout <= 0 {
		c.PendingTimeout = 3 * time.Second
	}
	if c.AnswerCacheTTL == 0 {
		c.AnswerCacheTTL = 10 * time.Second
	}
	return nil
}

// RemoteStats counts guard activity; the experiment harness reads these.
// Fields are written with atomic operations (the capture and upstream loops
// run concurrently under real clocks); read individual fields with
// atomic.LoadUint64, or take a consistent-enough copy via Load.
type RemoteStats struct {
	Received        uint64 // packets read from the capture interface
	Passthrough     uint64 // relayed while spoof detection inactive
	Malformed       uint64
	NewcomerGrants  uint64 // fabricated NS / TC / cookie responses sent
	RL1Dropped      uint64 // cookie responses suppressed by Rate-Limiter1
	CookieValid     uint64 // requests whose cookie verified
	CookieInvalid   uint64 // spoofed requests dropped
	RL2Dropped      uint64 // verified requests over the nominal rate
	ForwardedToANS  uint64
	AnswerCacheHits uint64
	RepliesToClient uint64
	TCRedirects     uint64
	PendingDropped  uint64 // NAT table overflow/expiry losses
	UpstreamStrays  uint64 // duplicated/unmatched ANS responses discarded
	UpstreamSpoofed uint64 // upstream datagrams failing source/question checks
	KeyRotations    uint64
}

// Load returns an atomically-field-read copy of the stats. Each field is
// individually exact; the set is not a single consistent cut, which is fine
// for monitoring and for quiesced test assertions.
func (s *RemoteStats) Load() RemoteStats {
	return RemoteStats{
		Received:        atomic.LoadUint64(&s.Received),
		Passthrough:     atomic.LoadUint64(&s.Passthrough),
		Malformed:       atomic.LoadUint64(&s.Malformed),
		NewcomerGrants:  atomic.LoadUint64(&s.NewcomerGrants),
		RL1Dropped:      atomic.LoadUint64(&s.RL1Dropped),
		CookieValid:     atomic.LoadUint64(&s.CookieValid),
		CookieInvalid:   atomic.LoadUint64(&s.CookieInvalid),
		RL2Dropped:      atomic.LoadUint64(&s.RL2Dropped),
		ForwardedToANS:  atomic.LoadUint64(&s.ForwardedToANS),
		AnswerCacheHits: atomic.LoadUint64(&s.AnswerCacheHits),
		RepliesToClient: atomic.LoadUint64(&s.RepliesToClient),
		TCRedirects:     atomic.LoadUint64(&s.TCRedirects),
		PendingDropped:  atomic.LoadUint64(&s.PendingDropped),
		UpstreamStrays:  atomic.LoadUint64(&s.UpstreamStrays),
		UpstreamSpoofed: atomic.LoadUint64(&s.UpstreamSpoofed),
		KeyRotations:    atomic.LoadUint64(&s.KeyRotations),
	}
}

// MetricsInto registers every counter as a guard_remote_* series reading
// the live fields, so exports track the struct without copying it.
func (s *RemoteStats) MetricsInto(r *metrics.Registry) {
	for name, f := range map[string]*uint64{
		"guard_remote_received":          &s.Received,
		"guard_remote_passthrough":       &s.Passthrough,
		"guard_remote_malformed":         &s.Malformed,
		"guard_remote_newcomer_grants":   &s.NewcomerGrants,
		"guard_remote_rl1_dropped":       &s.RL1Dropped,
		"guard_remote_cookie_valid":      &s.CookieValid,
		"guard_remote_cookie_invalid":    &s.CookieInvalid,
		"guard_remote_rl2_dropped":       &s.RL2Dropped,
		"guard_remote_forwarded_to_ans":  &s.ForwardedToANS,
		"guard_remote_answer_cache_hits": &s.AnswerCacheHits,
		"guard_remote_replies_to_client": &s.RepliesToClient,
		"guard_remote_tc_redirects":      &s.TCRedirects,
		"guard_remote_pending_dropped":   &s.PendingDropped,
		"guard_remote_upstream_strays":   &s.UpstreamStrays,
		"guard_remote_upstream_spoofed":  &s.UpstreamSpoofed,
		"guard_remote_key_rotations":     &s.KeyRotations,
	} {
		f := f
		r.FuncUint(name, func() uint64 { return atomic.LoadUint64(f) })
	}
}

type pendKind int

const (
	pendPassthrough pendKind = iota + 1
	pendChild                // rewritten cookie query (message 4); answer fabricates message 6
	pendDirect               // verified request relayed as-is (messages 5/8)
)

type pendEntry struct {
	kind      pendKind
	clientSrc netip.AddrPort
	replyFrom netip.AddrPort // source address for our reply (public or cookie IP)
	origID    uint16
	question  dnswire.Question // the client's question (fabricated name for pendChild)
	child     dnswire.Name     // restored child name (pendChild)
	fwdQ      dnswire.Question // question actually sent upstream; responses must echo it
	expires   time.Duration
}

// Remote is the ANS-side DNS guard.
type Remote struct {
	cfg      RemoteConfig
	nsc      cookie.NSCodec
	ipc      cookie.IPCodec
	rl1      *ratelimit.Limiter1
	rl2      *ratelimit.Limiter2
	rate     *ratelimit.RateEstimator
	active   bool
	upstream netapi.UDPConn
	closed   atomic.Bool

	// mu guards the NAT table, shared between the capture loop (register)
	// and the upstream loop (consume) — concurrent goroutines under real
	// clocks. The answer cache locks internally.
	mu      sync.Mutex
	pending map[uint16]*pendEntry
	nextID  uint16
	answers *resolver.Cache

	// Stats is updated as the guard runs (atomically; see RemoteStats).
	Stats RemoteStats
}

// MetricsInto registers the guard's counters, rate-limiter counters, and a
// live NAT-table-size gauge on r (guard_remote_* series).
func (g *Remote) MetricsInto(r *metrics.Registry) {
	g.Stats.MetricsInto(r)
	g.rl1.MetricsInto(r, "guard_rl1_")
	g.rl2.MetricsInto(r, "guard_rl2_")
	r.Func("guard_remote_pending", func() float64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		return float64(len(g.pending))
	})
}

// NewRemote validates cfg and creates the guard (not yet started).
func NewRemote(cfg RemoteConfig) (*Remote, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	now := cfg.Env.Now()
	g := &Remote{
		cfg:     cfg,
		nsc:     cookie.NSCodec{Prefix: cfg.NSPrefix},
		ipc:     cookie.IPCodec{Subnet: cfg.Subnet},
		rl1:     ratelimit.NewLimiter1(cfg.RL1, now),
		rl2:     ratelimit.NewLimiter2(cfg.RL2, now),
		rate:    ratelimit.NewRateEstimator(10, 100*time.Millisecond),
		pending: make(map[uint16]*pendEntry),
		answers: resolver.NewCache(4096),
	}
	return g, nil
}

// Start opens the upstream socket and spawns the guard's procs.
func (g *Remote) Start() error {
	up, err := g.cfg.Env.ListenUDP(netip.AddrPort{})
	if err != nil {
		return fmt.Errorf("guard: binding upstream socket: %w", err)
	}
	g.upstream = up
	g.cfg.Env.Go("guard-capture", g.captureLoop)
	g.cfg.Env.Go("guard-upstream", g.upstreamLoop)
	if g.cfg.KeyRotation > 0 {
		g.cfg.Env.Go("guard-rotate", g.rotateLoop)
	}
	return nil
}

// UpstreamAddr reports the local address of the guard's upstream socket
// (valid after Start). Tests use it to aim spoofed datagrams at the
// ANS-facing path.
func (g *Remote) UpstreamAddr() netip.AddrPort {
	if g.upstream == nil {
		return netip.AddrPort{}
	}
	return g.upstream.LocalAddr()
}

// rotateLoop changes the cookie key every KeyRotation period. Cookies from
// the previous generation stay valid for one more period (the generation
// bit selects the key), so rotation is invisible to live requesters.
func (g *Remote) rotateLoop() {
	for !g.closed.Load() {
		g.cfg.Env.Sleep(g.cfg.KeyRotation)
		if g.closed.Load() {
			return
		}
		if err := g.cfg.Auth.Rotate(); err != nil {
			continue // keep the old key; retry next period
		}
		atomic.AddUint64(&g.Stats.KeyRotations, 1)
	}
}

// Close stops the guard.
func (g *Remote) Close() {
	if g.closed.Swap(true) {
		return
	}
	_ = g.cfg.IO.Close()
	if g.upstream != nil {
		_ = g.upstream.Close()
	}
}

// Active reports whether spoof detection is currently engaged.
func (g *Remote) Active() bool { return g.cfg.ActivationThreshold == 0 || g.active }

// preempter is optionally implemented by CPU models that distinguish
// interrupt-priority packet work from ordinary jobs (netsim.CPU does).
type preempter interface {
	WorkPreempt(d time.Duration)
}

func (g *Remote) charge(d time.Duration) {
	if g.cfg.CPU == nil || d <= 0 {
		return
	}
	// The guard's datapath ran in the kernel (iptables/softirq) on the
	// paper's testbed: it preempts userspace work like the TCP proxy.
	if p, ok := g.cfg.CPU.(preempter); ok {
		p.WorkPreempt(d)
		return
	}
	g.cfg.CPU.Work(d)
}

func (g *Remote) now() time.Duration { return g.cfg.Env.Now() }

// captureLoop is the main packet pipeline (Figure 4).
func (g *Remote) captureLoop() {
	for {
		pkt, err := g.cfg.IO.Read(netapi.NoTimeout)
		if err != nil {
			return
		}
		atomic.AddUint64(&g.Stats.Received, 1)
		g.charge(g.cfg.Costs.PacketOp)
		g.updateActivation()
		g.handle(pkt)
	}
}

func (g *Remote) updateActivation() {
	if g.cfg.ActivationThreshold <= 0 {
		return
	}
	now := g.now()
	g.rate.Observe(now)
	r := g.rate.Rate(now)
	switch {
	case !g.active && r > g.cfg.ActivationThreshold:
		g.active = true
	case g.active && r < 0.8*g.cfg.ActivationThreshold:
		g.active = false
	}
}

func (g *Remote) handle(pkt Packet) {
	if pkt.Dst.Port() != g.cfg.PublicAddr.Port() {
		return // not DNS traffic for the protected service
	}
	if !g.Active() {
		g.passthrough(pkt)
		return
	}
	msg, err := dnswire.Unpack(pkt.Payload)
	if err != nil || msg.Flags.QR || len(msg.Questions) == 0 {
		atomic.AddUint64(&g.Stats.Malformed, 1)
		return
	}
	// Scheme 1b: queries addressed to a cookie IP inside the guard subnet.
	if g.cfg.Subnet.IsValid() && pkt.Dst.Addr() != g.cfg.PublicAddr.Addr() && g.cfg.Subnet.Contains(pkt.Dst.Addr()) {
		g.handleIPCookie(pkt, msg)
		return
	}
	// Modified-DNS scheme: explicit cookie extension.
	if c, _, _, ok := FindCookie(msg); ok {
		g.handleModified(pkt, msg, c)
		return
	}
	// DNS-based scheme: cookie embedded in the query name.
	if label, child, ok := ParseFabricatedName(g.nsc, msg.Question().Name); ok {
		g.handleNSCookie(pkt, msg, label, child)
		return
	}
	g.handleNewcomer(pkt, msg)
}

// passthrough relays traffic unmodified while spoof detection is inactive.
func (g *Remote) passthrough(pkt Packet) {
	msg, err := dnswire.Unpack(pkt.Payload)
	if err != nil || msg.Flags.QR {
		atomic.AddUint64(&g.Stats.Malformed, 1)
		return
	}
	atomic.AddUint64(&g.Stats.Passthrough, 1)
	g.forwardMsg(msg, &pendEntry{
		kind:      pendPassthrough,
		clientSrc: pkt.Src,
		replyFrom: pkt.Dst,
		origID:    msg.ID,
	})
}

// handleNewcomer boots a cookie-less requester per the fallback scheme.
func (g *Remote) handleNewcomer(pkt Packet, msg *dnswire.Message) {
	if !g.rl1.AllowResponse(pkt.Src.Addr(), g.now()) {
		atomic.AddUint64(&g.Stats.RL1Dropped, 1)
		return
	}
	qname := msg.Question().Name
	child, hasChild := qname.ChildOf(g.cfg.Zone)
	useTCP := g.cfg.Fallback == SchemeTCP || !hasChild || g.isTCPClient(pkt.Src.Addr())
	if !qname.IsSubdomainOf(g.cfg.Zone) && qname != g.cfg.Zone {
		resp := msg.Response()
		resp.Flags.RCode = dnswire.RCodeRefused
		g.reply(pkt.Dst, pkt.Src, resp)
		return
	}
	if useTCP {
		// TC redirect: also used for apex queries, which have no child
		// name to fabricate.
		g.charge(g.cfg.Costs.TCReply)
		atomic.AddUint64(&g.Stats.NewcomerGrants, 1)
		atomic.AddUint64(&g.Stats.TCRedirects, 1)
		resp := msg.Response()
		resp.Flags.TC = true
		g.reply(pkt.Dst, pkt.Src, resp)
		return
	}
	// DNS-based: fabricate "child NS <cookie+label>" with a long TTL and
	// no glue, so the LRS must come back through us to resolve it.
	g.charge(g.cfg.Costs.CookieGrant)
	c := g.cfg.Auth.Mint(pkt.Src.Addr())
	fabName, err := FabricateNSName(g.nsc, c, child)
	if err != nil {
		// Label too long to carry a cookie; fall back to TCP.
		atomic.AddUint64(&g.Stats.TCRedirects, 1)
		resp := msg.Response()
		resp.Flags.TC = true
		g.reply(pkt.Dst, pkt.Src, resp)
		return
	}
	atomic.AddUint64(&g.Stats.NewcomerGrants, 1)
	resp := msg.Response()
	resp.Authority = []dnswire.RR{
		dnswire.NewRR(child, g.cfg.NSTTL, &dnswire.NSData{Host: fabName}),
	}
	g.reply(pkt.Dst, pkt.Src, resp)
}

// isTCPClient reports whether src is configured for TCP redirection.
func (g *Remote) isTCPClient(src netip.Addr) bool {
	for _, p := range g.cfg.TCPClients {
		if p.Contains(src) {
			return true
		}
	}
	return false
}

// handleNSCookie processes a query for a fabricated name (message 3):
// verify, restore, forward (message 4).
func (g *Remote) handleNSCookie(pkt Packet, msg *dnswire.Message, label string, child dnswire.Name) {
	g.charge(g.cfg.Costs.CookieCheck)
	if !g.nsc.VerifyLabel(g.cfg.Auth, pkt.Src.Addr(), label) {
		atomic.AddUint64(&g.Stats.CookieInvalid, 1)
		return
	}
	atomic.AddUint64(&g.Stats.CookieValid, 1)
	if !g.rl2.AllowRequest(pkt.Src.Addr(), g.now()) {
		atomic.AddUint64(&g.Stats.RL2Dropped, 1)
		return
	}
	g.charge(g.cfg.Costs.Rewrite)
	q := msg.Question()
	fwd := dnswire.NewQuery(0, child, q.Type)
	fwd.Flags.RD = false
	g.forwardMsg(fwd, &pendEntry{
		kind:      pendChild,
		clientSrc: pkt.Src,
		replyFrom: pkt.Dst,
		origID:    msg.ID,
		question:  q,
		child:     child,
	})
}

// handleIPCookie processes a query addressed to a cookie address
// (message 7): the destination IP is the credential.
func (g *Remote) handleIPCookie(pkt Packet, msg *dnswire.Message) {
	g.charge(g.cfg.Costs.CookieCheck)
	if !g.ipc.Verify(g.cfg.Auth, pkt.Src.Addr(), pkt.Dst.Addr()) {
		atomic.AddUint64(&g.Stats.CookieInvalid, 1)
		return
	}
	atomic.AddUint64(&g.Stats.CookieValid, 1)
	if !g.rl2.AllowRequest(pkt.Src.Addr(), g.now()) {
		atomic.AddUint64(&g.Stats.RL2Dropped, 1)
		return
	}
	q := msg.Question()
	// Serve from the answer cache when message 5's result is still fresh.
	if rrs, _, neg, ok := g.answersGet(q.Name, q.Type); ok && !neg {
		atomic.AddUint64(&g.Stats.AnswerCacheHits, 1)
		resp := msg.Response()
		resp.Flags.AA = true
		resp.Answers = rrs
		g.reply(pkt.Dst, pkt.Src, resp)
		return
	}
	fwd := dnswire.NewQuery(0, q.Name, q.Type)
	fwd.Flags.RD = false
	g.forwardMsg(fwd, &pendEntry{
		kind:      pendDirect,
		clientSrc: pkt.Src,
		replyFrom: pkt.Dst,
		origID:    msg.ID,
		question:  q,
	})
}

// handleModified processes the explicit cookie extension (Figure 3).
func (g *Remote) handleModified(pkt Packet, msg *dnswire.Message, c cookie.Cookie) {
	if c.IsZero() {
		// Message 2: cookie request. Answer through Rate-Limiter1.
		if !g.rl1.AllowResponse(pkt.Src.Addr(), g.now()) {
			atomic.AddUint64(&g.Stats.RL1Dropped, 1)
			return
		}
		g.charge(g.cfg.Costs.CookieGrant)
		atomic.AddUint64(&g.Stats.NewcomerGrants, 1)
		resp := msg.Response()
		AttachCookie(resp, g.cfg.Auth.Mint(pkt.Src.Addr()), g.cfg.NSTTL)
		g.reply(pkt.Dst, pkt.Src, resp)
		return
	}
	g.charge(g.cfg.Costs.CookieCheck)
	if !g.cfg.Auth.Verify(pkt.Src.Addr(), c) {
		atomic.AddUint64(&g.Stats.CookieInvalid, 1)
		return
	}
	atomic.AddUint64(&g.Stats.CookieValid, 1)
	if !g.rl2.AllowRequest(pkt.Src.Addr(), g.now()) {
		atomic.AddUint64(&g.Stats.RL2Dropped, 1)
		return
	}
	g.charge(g.cfg.Costs.Rewrite)
	fwd := *msg
	fwd.Additional = append([]dnswire.RR(nil), msg.Additional...)
	_, _ = StripCookie(&fwd)
	g.forwardMsg(&fwd, &pendEntry{
		kind:      pendDirect,
		clientSrc: pkt.Src,
		replyFrom: pkt.Dst,
		origID:    msg.ID,
		question:  msg.Question(),
	})
}

// forwardMsg sends msg to the ANS under a fresh transaction ID and registers
// the pending entry for the response.
func (g *Remote) forwardMsg(msg *dnswire.Message, entry *pendEntry) {
	if len(msg.Questions) > 0 {
		entry.fwdQ = msg.Questions[0]
	}
	entry.expires = g.now() + g.cfg.PendingTimeout
	g.mu.Lock()
	id, ok := g.allocID()
	if !ok {
		g.mu.Unlock()
		atomic.AddUint64(&g.Stats.PendingDropped, 1)
		return
	}
	g.pending[id] = entry
	g.mu.Unlock()
	out := *msg
	out.ID = id
	wire, err := out.PackUDP(dnswire.MaxUDPSize)
	if err != nil {
		g.mu.Lock()
		delete(g.pending, id)
		g.mu.Unlock()
		return
	}
	atomic.AddUint64(&g.Stats.ForwardedToANS, 1)
	g.charge(g.cfg.Costs.PacketOp)
	_ = g.upstream.WriteTo(wire, g.cfg.ANSAddr)
}

// allocID picks an unused transaction ID; the caller must hold g.mu.
func (g *Remote) allocID() (uint16, bool) {
	if len(g.pending) >= 4096 {
		// Reap expired entries before refusing.
		now := g.now()
		for id, e := range g.pending {
			if now >= e.expires {
				delete(g.pending, id)
				atomic.AddUint64(&g.Stats.PendingDropped, 1)
			}
		}
		if len(g.pending) >= 4096 {
			return 0, false
		}
	}
	for i := 0; i < 65536; i++ {
		g.nextID++
		if _, used := g.pending[g.nextID]; !used {
			return g.nextID, true
		}
	}
	return 0, false
}

// upstreamLoop receives ANS responses and transforms them per the pending
// entry's kind. A datagram is consumed only when it (a) comes from the
// configured ANS address, and (b) echoes the question the guard forwarded —
// ID alone is 16 bits of entropy, trivially sweepable by an off-path
// attacker who learns the upstream port.
func (g *Remote) upstreamLoop() {
	for {
		payload, src, err := g.upstream.ReadFrom(netapi.NoTimeout)
		if err != nil {
			return
		}
		g.charge(g.cfg.Costs.PacketOp)
		if src != g.cfg.ANSAddr {
			// Off-path datagram: only the real ANS sends to this socket.
			atomic.AddUint64(&g.Stats.UpstreamSpoofed, 1)
			continue
		}
		resp, err := dnswire.Unpack(payload)
		if err != nil || !resp.Flags.QR {
			continue
		}
		g.mu.Lock()
		entry, ok := g.pending[resp.ID]
		if !ok {
			g.mu.Unlock()
			// Duplicated or long-delayed ANS response whose entry was
			// already consumed — the network, not the ANS, misbehaving.
			atomic.AddUint64(&g.Stats.UpstreamStrays, 1)
			continue
		}
		if len(resp.Questions) == 0 || resp.Questions[0] != entry.fwdQ {
			// Right ID, wrong question: spoofed (or corrupted) response.
			// Keep the entry so the genuine answer can still land.
			g.mu.Unlock()
			atomic.AddUint64(&g.Stats.UpstreamSpoofed, 1)
			continue
		}
		if g.now() >= entry.expires {
			delete(g.pending, resp.ID)
			g.mu.Unlock()
			atomic.AddUint64(&g.Stats.PendingDropped, 1)
			continue
		}
		delete(g.pending, resp.ID)
		g.mu.Unlock()
		switch entry.kind {
		case pendPassthrough, pendDirect:
			resp.ID = entry.origID
			g.reply(entry.replyFrom, entry.clientSrc, resp)
		case pendChild:
			g.answerChild(entry, resp)
		}
	}
}

// answerChild turns the ANS's answer for the restored child query (message
// 5) into the response for the fabricated name (message 6).
func (g *Remote) answerChild(entry *pendEntry, resp *dnswire.Message) {
	out := &dnswire.Message{
		ID:        entry.origID,
		Flags:     dnswire.Flags{QR: true, AA: true},
		Questions: []dnswire.Question{entry.question},
	}
	fabName := entry.question.Name

	switch {
	case resp.Flags.RCode == dnswire.RCodeNXDomain:
		out.Flags.RCode = dnswire.RCodeNXDomain
		out.Authority = resp.Authority
	case len(resp.Answers) == 0 && hasNS(resp.Authority):
		// Referral: the fabricated name's addresses are the real
		// next-level servers' glue addresses (§III-B.1).
		for _, rr := range resp.Additional {
			if rr.Type == dnswire.TypeA {
				out.Answers = append(out.Answers,
					dnswire.NewRR(fabName, rr.TTL, rr.Data))
			}
		}
		if len(out.Answers) == 0 {
			out.Flags.RCode = dnswire.RCodeServFail
		}
	case len(resp.Answers) > 0:
		// Non-referral: answer with the IP cookie (§III-B.2) and cache
		// the real answer for message 7.
		if !g.cfg.Subnet.IsValid() {
			out.Flags.RCode = dnswire.RCodeServFail
			break
		}
		g.charge(g.cfg.Costs.CookieCheck) // second cookie computation
		c := g.cfg.Auth.Mint(entry.clientSrc.Addr())
		addr, err := g.ipc.Encode(c)
		if err != nil {
			out.Flags.RCode = dnswire.RCodeServFail
			break
		}
		if g.cfg.AnswerCacheTTL > 0 {
			ttl := uint32(g.cfg.AnswerCacheTTL / time.Second)
			cached := make([]dnswire.RR, len(resp.Answers))
			copy(cached, resp.Answers)
			for i := range cached {
				if cached[i].TTL > ttl {
					cached[i].TTL = ttl
				}
			}
			g.answers.Put(g.now(), entry.child, entry.question.Type, cached)
		}
		out.Answers = []dnswire.RR{
			dnswire.NewRR(fabName, g.cfg.NSTTL, &dnswire.AData{Addr: addr}),
		}
	default:
		// NODATA for the child: nothing useful to fabricate.
		out.Flags.RCode = dnswire.RCodeServFail
	}
	g.reply(entry.replyFrom, entry.clientSrc, out)
}

// answersGet consults the non-referral answer cache unless it is disabled.
func (g *Remote) answersGet(name dnswire.Name, t dnswire.Type) ([]dnswire.RR, dnswire.RCode, bool, bool) {
	if g.cfg.AnswerCacheTTL < 0 {
		return nil, 0, false, false
	}
	return g.answers.Get(g.now(), name, t)
}

// reply packs and emits a guard-originated response.
func (g *Remote) reply(from, to netip.AddrPort, msg *dnswire.Message) {
	wire, err := msg.PackUDP(dnswire.MaxUDPSize)
	if err != nil {
		return
	}
	atomic.AddUint64(&g.Stats.RepliesToClient, 1)
	g.charge(g.cfg.Costs.PacketOp)
	_ = g.cfg.IO.WriteFromTo(from, to, wire)
}

func hasNS(rrs []dnswire.RR) bool {
	for _, rr := range rrs {
		if rr.Type == dnswire.TypeNS {
			return true
		}
	}
	return false
}
