package guard

import "testing"

func TestIDPoolUniqueAndRecycled(t *testing.T) {
	var p idPool
	seen := make(map[uint16]bool)
	for i := 0; i < 1000; i++ {
		id, ok := p.get()
		if !ok {
			t.Fatalf("get %d failed", i)
		}
		if id == 0 {
			t.Fatal("issued ID 0")
		}
		if seen[id] {
			t.Fatalf("ID %d issued twice while outstanding", id)
		}
		seen[id] = true
	}
	// Release half; the next allocations must come from the free list, not
	// grow the high-water mark.
	for id := uint16(1); id <= 500; id++ {
		p.release(id)
		delete(seen, id)
	}
	mark := p.next
	for i := 0; i < 500; i++ {
		id, ok := p.get()
		if !ok {
			t.Fatalf("recycled get %d failed", i)
		}
		if seen[id] {
			t.Fatalf("recycled ID %d collides with outstanding", id)
		}
		seen[id] = true
	}
	if p.next != mark {
		t.Fatalf("high-water mark grew %d -> %d despite free IDs", mark, p.next)
	}
}

func TestIDPoolExhaustion(t *testing.T) {
	var p idPool
	for i := 0; i < 65535; i++ {
		if _, ok := p.get(); !ok {
			t.Fatalf("get %d failed before exhaustion", i)
		}
	}
	if _, ok := p.get(); ok {
		t.Fatal("issued a 65536th ID")
	}
	p.release(7)
	if id, ok := p.get(); !ok || id != 7 {
		t.Fatalf("post-exhaustion recycle = (%d, %v), want (7, true)", id, ok)
	}
}

// TestAllocIDBoundedWorkAtHighOccupancy is the regression guard for the old
// linear probe: with the NAT table at 90% occupancy, each allocation must
// still cost exactly one probe. (The probe-counting field exists for this
// test; the old allocID walked occupied IDs, degrading toward O(table) as
// the table filled.)
func TestAllocIDBoundedWorkAtHighOccupancy(t *testing.T) {
	s := &remoteShard{pending: make(map[uint16]*pendEntry)}
	fill := maxPending * 9 / 10
	for i := 0; i < fill; i++ {
		id, ok := s.allocID()
		if !ok {
			t.Fatalf("fill alloc %d failed", i)
		}
		s.pending[id] = &pendEntry{}
	}

	before := s.ids.probes
	const allocs = 256
	for i := 0; i < allocs; i++ {
		id, ok := s.allocID()
		if !ok {
			t.Fatalf("alloc %d at 90%% fill failed", i)
		}
		if _, clash := s.pending[id]; clash {
			t.Fatalf("alloc %d returned in-use ID %d", i, id)
		}
		s.pending[id] = &pendEntry{}
	}
	if got := s.ids.probes - before; got != allocs {
		t.Fatalf("%d allocations cost %d probes, want exactly %d (O(1) contract)", allocs, got, allocs)
	}
}
