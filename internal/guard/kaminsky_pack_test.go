// The promoted Kaminsky-sweep regression: the same scenario the hand-rolled
// attacker in remote_test.go used to drive — off-path forged answers, then
// an on-path transaction-ID sweep racing a live NAT entry — now expressed
// as the workload package's "kaminsky-sweep" campaign pack, compressed onto
// the fixture's millisecond timeline via PackParams.Stretch. External test
// package: workload imports guard, so the wrapper must sit outside it.
package guard_test

import (
	"net/netip"
	"testing"
	"time"

	"dnsguard/internal/ans"
	"dnsguard/internal/cookie"
	"dnsguard/internal/dnswire"
	"dnsguard/internal/guard"
	"dnsguard/internal/netsim"
	"dnsguard/internal/resolver"
	"dnsguard/internal/vclock"
	"dnsguard/internal/workload"
	"dnsguard/internal/zone"
)

const (
	packRootZoneText = `
.    86400 IN SOA a.root.example. host.example. 1 7200 600 360000 60
.    86400 IN NS  a.root.example.
a.root.example. 86400 IN A 198.41.0.4
com. 86400 IN NS a.gtld.example.
a.gtld.example. 86400 IN A 192.5.6.30
org. 86400 IN NS a.org.example.
a.org.example. 86400 IN A 192.5.6.40
`
	packComZoneText = `
$ORIGIN com.
@ 86400 IN SOA a.gtld.example. host.example. 1 7200 600 360000 60
@ 86400 IN NS a.gtld.example.
foo 86400 IN NS ns1.foo.com.
ns1.foo.com. 86400 IN A 192.0.2.1
`
	packFooZoneText = `
$ORIGIN foo.com.
@ 3600 IN SOA ns1 admin 1 7200 600 360000 60
@ 3600 IN NS ns1
ns1 3600 IN A 192.0.2.1
www 300 IN A 198.51.100.10
mail 300 IN A 198.51.100.11
`
)

func TestGuardRejectsSpoofedUpstreamAnswers(t *testing.T) {
	// The root fixture of remote_test.go, rebuilt on the exported API: a
	// guard fronting the root ANS, unguarded com/foo servers, one LRS.
	sched := vclock.New(21)
	network := netsim.New(sched, 5*time.Millisecond)

	rootHost := network.AddHost("root-ans", netip.MustParseAddr("10.99.0.2"))
	rootSrv, err := ans.New(ans.Config{
		Env: rootHost, Addr: netip.MustParseAddrPort("10.99.0.2:53"),
		Zone: zone.MustParse(packRootZoneText, dnswire.Root),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rootSrv.Start(); err != nil {
		t.Fatal(err)
	}

	guardHost := network.AddHost("guard", netip.MustParseAddr("10.99.0.1"))
	guardHost.ClaimAddr(netip.MustParseAddr("198.41.0.4"))
	// Slow the guard<->ANS link so the NAT entry for the forwarded query
	// stays pending long enough for the sweep to race it.
	network.SetLatency(guardHost, rootHost, 20*time.Millisecond)
	tap, err := guardHost.OpenTap()
	if err != nil {
		t.Fatal(err)
	}
	var key [cookie.KeySize]byte
	for i := range key {
		key[i] = byte(i)
	}
	g, err := guard.NewRemote(guard.RemoteConfig{
		Env:        guardHost,
		IO:         guard.TapIO{Tap: tap},
		PublicAddr: netip.MustParseAddrPort("198.41.0.4:53"),
		ANSAddr:    netip.MustParseAddrPort("10.99.0.2:53"),
		Zone:       dnswire.Root,
		Fallback:   guard.SchemeDNS,
		Auth:       cookie.NewAuthenticatorWithKey(key),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}

	for _, hz := range []struct{ name, ip, text string }{
		{"com-ans", "192.5.6.30", packComZoneText},
		{"foo-ans", "192.0.2.1", packFooZoneText},
	} {
		h := network.AddHost(hz.name, netip.MustParseAddr(hz.ip))
		srv, err := ans.New(ans.Config{
			Env: h, Addr: netip.AddrPortFrom(h.Addr(), 53),
			Zone: zone.MustParse(hz.text, dnswire.Root),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
	}

	lrs := network.AddHost("lrs", netip.MustParseAddr("10.0.0.53"))
	res, err := resolver.New(resolver.Config{
		Env:       lrs,
		RootHints: []netip.AddrPort{netip.MustParseAddrPort("198.41.0.4:53")},
		Timeout:   500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The campaign pack, compressed 40:1 so its seconds-scale timeline
	// lands on this fixture's ~40ms pending window: the off-path phase
	// fires at t=25ms (handshake done, verified query in flight), the
	// on-path sweep covers its 512-ID span within the window.
	pack, ok := workload.PackByName("kaminsky-sweep")
	if !ok {
		t.Fatal("kaminsky-sweep pack missing")
	}
	attacker := network.AddHost("attacker", netip.MustParseAddr("203.0.113.99"))
	phases := pack.Build(workload.PackParams{
		Rate:    8000,
		Lead:    25 * time.Millisecond,
		Stretch: 0.025,
	})
	camp, err := workload.NewCampaign(workload.CampaignConfig{
		Host:     attacker,
		Target:   netip.MustParseAddrPort("198.41.0.4:53"),
		Zone:     dnswire.Root,
		Seed:     21,
		Upstream: g.UpstreamAddr,
		ANSAddr:  netip.MustParseAddrPort("10.99.0.2:53"),
		Phases:   phases,
	})
	if err != nil {
		t.Fatal(err)
	}
	camp.Start()

	sched.Go("test", func() {
		r, err := res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA)
		if err != nil {
			t.Errorf("Resolve despite spoofing: %v (guard stats %+v)", err, g.Stats)
			return
		}
		if len(r.Answers) != 1 || r.Answers[0].Data.(*dnswire.AData).Addr != netip.MustParseAddr("198.51.100.10") {
			t.Errorf("answers = %v, want the genuine 198.51.100.10", r.Answers)
		}
	})
	sched.Run(30 * time.Second)

	if camp.PhasesFinished() != 2 {
		t.Fatalf("phases finished = %d, want 2", camp.PhasesFinished())
	}
	offPathSent := camp.PhaseSent(0)
	if offPathSent == 0 || camp.PhaseSent(1) == 0 {
		t.Fatalf("campaign under-emitted: phase sends %d / %d", offPathSent, camp.PhaseSent(1))
	}
	st := g.Stats.Load()
	// Every off-path packet is rejected at the source check, and at least
	// one on-path swept ID must have hit a live NAT entry and been rejected
	// by the question check — without evicting the entry (the genuine
	// answer above still landed).
	if st.UpstreamSpoofed < offPathSent+1 {
		t.Errorf("UpstreamSpoofed = %d, want >= %d (off-path sends + a pending-ID hit)",
			st.UpstreamSpoofed, offPathSent+1)
	}
	// Swept IDs with no pending entry are strays, not spoofs.
	if st.UpstreamStrays == 0 {
		t.Error("UpstreamStrays = 0, want > 0 (non-pending IDs from the sweep)")
	}
}
