package guard

// idPool hands out unused DNS transaction IDs in O(1). The pre-engine guard
// probed `nextID++` until it found a free slot — amortized fine when the
// pending table was sparse, but a table sitting near its bound (a flood that
// never completes) made every allocation walk the occupied range. The pool
// replaces the probe with a free list: an ID is minted once from a
// monotonically-growing high-water mark and thereafter recycled through
// `free` as its pending entry is consumed. Since the table is bounded at
// maxPending, the mark never grows past maxPending+1 — ID exhaustion is
// structurally impossible.
//
// ID 0 is never issued (it reads as "unset" in too many places to risk).
// Allocation order is deterministic for a deterministic caller, but the
// values differ from the old probe's: nothing branches on ID values, only on
// uniqueness.
type idPool struct {
	free   []uint16 // released IDs ready for reuse (LIFO)
	next   uint16   // high-water mark: IDs 1..next have been minted
	probes uint64   // allocation steps taken; regression guard for O(1)
}

// get returns an unused ID. The caller owns it until release. Exactly one
// probe per call — the property idpool_test locks in.
func (p *idPool) get() (uint16, bool) {
	p.probes++
	if n := len(p.free); n > 0 {
		id := p.free[n-1]
		p.free = p.free[:n-1]
		return id, true
	}
	if p.next == 65535 {
		return 0, false
	}
	p.next++
	return p.next, true
}

// release returns an ID to the pool. Releasing an ID that is still mapped in
// the pending table (or double-releasing) would alias two in-flight queries;
// callers release exactly where they delete the table entry.
func (p *idPool) release(id uint16) { p.free = append(p.free, id) }
