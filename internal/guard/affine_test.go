package guard

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dnsguard/internal/cookie"
	"dnsguard/internal/dnswire"
	"dnsguard/internal/netapi"
	"dnsguard/internal/realnet"
)

// chanIO is a channel-backed, flow-stable PacketIO: the real-scheduler test
// stand-in for one SO_REUSEPORT member socket feeding one affine shard.
type chanIO struct {
	ch     chan Packet
	closed chan struct{}
	once   sync.Once
}

func newChanIO() *chanIO {
	return &chanIO{ch: make(chan Packet, 16), closed: make(chan struct{})}
}

func (c *chanIO) FlowStable() bool { return true }

func (c *chanIO) Read(timeout time.Duration) (Packet, error) {
	select {
	case p := <-c.ch:
		return p, nil
	case <-c.closed:
		return Packet{}, netapi.ErrClosed
	}
}

func (c *chanIO) WriteFromTo(src, dst netip.AddrPort, payload []byte) error { return nil }

func (c *chanIO) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// TestAffineGuardShardExplicitFastPath pins the guard's shard-explicit
// verified-cache wiring: under affine ingest a source's owning shard is the
// delivering socket's, which can disagree with the engine's source hash.
// The handler must promote into and consult its own shard's cache partition
// (MarkVerifiedOn/VerifiedCredOn with the handler's id) — the source-hashing
// MarkVerified would store the credential in a partition the owning worker
// never reads, silently disabling the fast path in exactly the deployment
// (per-shard SO_REUSEPORT sockets) the sharded dataplane exists for.
func TestAffineGuardShardExplicitFastPath(t *testing.T) {
	env := realnet.New()
	ansConn, err := env.ListenUDP(netip.MustParseAddrPort("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer ansConn.Close()
	go func() {
		for {
			b, src, err := ansConn.ReadFrom(netapi.NoTimeout)
			if err != nil {
				return
			}
			if len(b) > 2 {
				b[2] |= 0x80
				_ = ansConn.WriteTo(b, src)
			}
		}
	}()

	ios := []*chanIO{newChanIO(), newChanIO()}
	g, err := NewRemote(RemoteConfig{
		Env:         env,
		IOs:         []PacketIO{ios[0], ios[1]},
		Shards:      2,
		FastPathTTL: time.Hour,
		PublicAddr:  mustAP("192.0.2.1:53"),
		ANSAddr:     ansConn.LocalAddr(),
		Zone:        dnswire.MustName("foo.com"),
		Fallback:    SchemeDNS,
		Auth:        testAuth(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	eng := g.Engine()
	if !eng.Affine() {
		t.Fatal("two flow-stable sockets for two shards must select affine ingest")
	}

	// A source whose hash shard disagrees with its delivering socket.
	src := netip.AddrPortFrom(netip.MustParseAddr("203.0.113.77"), 5353)
	hashShard := eng.ShardOf(src.Addr())
	socket := 1 - hashShard

	fab, err := FabricateNSName(cookie.NSCodec{}, g.cfg.Auth.Mint(src.Addr()), dnswire.MustName("www.foo.com"))
	if err != nil {
		t.Fatal(err)
	}
	query := func(id uint16) Packet {
		wire, err := dnswire.NewQuery(id, fab, dnswire.TypeA).PackUDP(512)
		if err != nil {
			t.Fatal(err)
		}
		return Packet{Src: src, Dst: mustAP("192.0.2.1:53"), Payload: wire}
	}
	waitStat := func(name string, f *uint64, want uint64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for atomic.LoadUint64(f) < want {
			if time.Now().After(deadline) {
				t.Fatalf("%s = %d, want %d (stats %+v)", name, atomic.LoadUint64(f), want, g.Stats.Load())
			}
			time.Sleep(time.Millisecond)
		}
	}

	ios[socket].ch <- query(1)
	waitStat("CookieValid", &g.Stats.CookieValid, 1)

	// The credential must live in the delivering shard's partition, and only
	// there — presence in the hash shard would mean the handler wrote
	// through the source-hashing legacy path.
	if _, ok := eng.VerifiedCredOn(socket, src.Addr()); !ok {
		t.Errorf("credential missing from owning shard %d's cache", socket)
	}
	if _, ok := eng.VerifiedCredOn(hashShard, src.Addr()); ok {
		t.Errorf("credential leaked into hash shard %d's cache", hashShard)
	}

	// The second query over the same socket must hit the fast path.
	ios[socket].ch <- query(2)
	waitStat("CookieValid", &g.Stats.CookieValid, 2)
	if hits := atomic.LoadUint64(&g.Stats.FastPathHits); hits != 1 {
		t.Errorf("FastPathHits = %d, want 1", hits)
	}
}
