package guard

import (
	"net/netip"
	"testing"
	"time"

	"dnsguard/internal/ans"
	"dnsguard/internal/dnswire"
	"dnsguard/internal/netsim"
	"dnsguard/internal/resolver"
	"dnsguard/internal/vclock"
	"dnsguard/internal/zone"
)

// leafFixture: a guard protecting the foo.com leaf ANS (public 192.0.2.1,
// subnet 192.0.2.0/24 for IP cookies). Exercises the fabricated NS name +
// IP variant (§III-B.2).
type leafFixture struct {
	sched *vclock.Scheduler
	net   *netsim.Network
	guard *Remote
	fooNS *ans.Server
	lrs   *netsim.Host
	res   *resolver.Resolver
}

func newLeafFixture(t *testing.T, mutate func(*RemoteConfig)) *leafFixture {
	t.Helper()
	sched := vclock.New(33)
	network := netsim.New(sched, 5*time.Millisecond)
	f := &leafFixture{sched: sched, net: network}

	ansHost := network.AddHost("foo-ans", mustAddr("10.99.0.2"))
	srv, err := ans.New(ans.Config{
		Env: ansHost, Addr: mustAP("10.99.0.2:53"),
		Zone: zone.MustParse(fooZoneText, dnswire.Root),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	f.fooNS = srv

	guardHost := network.AddHost("guard", mustAddr("10.99.0.1"))
	guardHost.ClaimPrefix(netip.MustParsePrefix("192.0.2.0/24"))
	network.SetLatency(guardHost, ansHost, 100*time.Microsecond)
	tap, err := guardHost.OpenTap()
	if err != nil {
		t.Fatal(err)
	}
	cfg := RemoteConfig{
		Env:        guardHost,
		IO:         TapIO{Tap: tap},
		PublicAddr: mustAP("192.0.2.1:53"),
		ANSAddr:    mustAP("10.99.0.2:53"),
		Zone:       dnswire.MustName("foo.com"),
		Subnet:     netip.MustParsePrefix("192.0.2.0/24"),
		Fallback:   SchemeDNS,
		Auth:       testAuth(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := NewRemote(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	f.guard = g

	f.lrs = network.AddHost("lrs", mustAddr("10.0.0.53"))
	res, err := resolver.New(resolver.Config{
		Env:       f.lrs,
		RootHints: []netip.AddrPort{mustAP("192.0.2.1:53")},
		Timeout:   500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.res = res
	return f
}

func (f *leafFixture) run(t *testing.T, fn func()) {
	t.Helper()
	f.sched.Go("test", fn)
	f.sched.Run(10 * time.Minute)
}

func TestLeafGuardNonReferralResolution(t *testing.T) {
	f := newLeafFixture(t, nil)
	var missLatency time.Duration
	f.run(t, func() {
		start := f.sched.Now()
		res, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA)
		missLatency = f.sched.Now() - start
		if err != nil {
			t.Errorf("Resolve: %v (guard %+v)", err, f.guard.Stats)
			return
		}
		want := mustAddr("198.51.100.10")
		found := false
		for _, rr := range res.Answers {
			if a, ok := rr.Data.(*dnswire.AData); ok && a.Addr == want {
				found = true
			}
		}
		if !found {
			t.Errorf("answers = %v, want %v", res.Answers, want)
		}
	})
	// Paper: first access is 3 RTT (messages 1-2, 3-6, 7-10). RTT = 10ms.
	if missLatency < 29*time.Millisecond || missLatency > 32*time.Millisecond {
		t.Errorf("cache-miss latency = %v, want ~30ms (3 RTT)", missLatency)
	}
	st := f.guard.Stats
	if st.NewcomerGrants != 1 || st.CookieValid != 2 {
		t.Errorf("stats = %+v, want 1 grant + 2 cookie validations (NS label + IP)", st)
	}
	// Message 7 was served from the answer cache, so the ANS saw exactly
	// one query (message 4).
	if f.fooNS.Stats.UDPQueries != 1 {
		t.Errorf("ANS queries = %d, want 1", f.fooNS.Stats.UDPQueries)
	}
	if st.AnswerCacheHits != 1 {
		t.Errorf("answer cache hits = %d, want 1", st.AnswerCacheHits)
	}
}

func TestLeafGuardCacheHitIsOneRTT(t *testing.T) {
	f := newLeafFixture(t, nil)
	var hitLatency time.Duration
	var upstream int
	f.run(t, func() {
		if _, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA); err != nil {
			t.Errorf("first: %v", err)
			return
		}
		// Let the final answer (TTL 300s) expire but keep the fabricated
		// NS name and IP cookie (TTL one week).
		f.sched.Sleep(400 * time.Second)
		start := f.sched.Now()
		res, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA)
		hitLatency = f.sched.Now() - start
		upstream = res.Upstream
		if err != nil {
			t.Errorf("second: %v", err)
		}
	})
	if upstream != 1 {
		t.Fatalf("upstream = %d, want 1 (message 7 only)", upstream)
	}
	// Paper Table II: cache hit = 1 RTT (11.3ms measured at 10.9ms RTT).
	// Ours adds the guard→ANS LAN hop (0.2ms) when the answer cache has
	// expired.
	if hitLatency < 10*time.Millisecond || hitLatency > 11*time.Millisecond {
		t.Fatalf("cache-hit latency = %v, want ~10ms (1 RTT)", hitLatency)
	}
}

func TestLeafGuardIPCookieWrongSourceDropped(t *testing.T) {
	f := newLeafFixture(t, nil)
	attacker := f.net.AddHost("attacker", mustAddr("203.0.113.66"))
	f.run(t, func() {
		// Legitimate LRS completes a resolution, learning its cookie IP.
		if _, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA); err != nil {
			t.Errorf("Resolve: %v", err)
			return
		}
		// The attacker sprays queries at every address in the subnet from
		// its own (spoofed, but fixed) source; at most one address can
		// match its cookie.
		q, _ := dnswire.NewQuery(9, dnswire.MustName("www.foo.com"), dnswire.TypeA).PackUDP(512)
		for y := 1; y < 255; y++ {
			dst := netip.AddrPortFrom(netip.AddrFrom4([4]byte{192, 0, 2, byte(y)}), 53)
			_ = attacker.SendRaw(mustAP("198.18.0.1:1234"), dst, q)
		}
		f.sched.Sleep(time.Second)
	})
	st := f.guard.Stats
	// 253 of the sprayed addresses are wrong (the public .1 goes down the
	// newcomer path); at most 2 can hit the attacker's own cookie address
	// (current + previous key generation) — the 1/R_y false-negative floor
	// the paper derives (§III-G).
	if st.CookieInvalid < 251 {
		t.Errorf("invalid = %d, want >= 251 of 253 sprayed", st.CookieInvalid)
	}
	if f.fooNS.Stats.UDPQueries > 2 {
		t.Errorf("ANS queries = %d; spray must not multiply load", f.fooNS.Stats.UDPQueries)
	}
}

func TestLeafGuardSecondNameFabricatesAgain(t *testing.T) {
	f := newLeafFixture(t, nil)
	f.run(t, func() {
		if _, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA); err != nil {
			t.Errorf("www: %v", err)
			return
		}
		if _, err := f.res.Resolve(dnswire.MustName("mail.foo.com"), dnswire.TypeA); err != nil {
			t.Errorf("mail: %v", err)
			return
		}
	})
	// Each non-referral name needs its own fabricated ANS (the storage
	// inefficiency Table I documents for this variant).
	if f.guard.Stats.NewcomerGrants != 2 {
		t.Errorf("grants = %d, want 2 (one per name)", f.guard.Stats.NewcomerGrants)
	}
}

func TestLeafGuardWithoutSubnetFailsClosed(t *testing.T) {
	f := newLeafFixture(t, func(c *RemoteConfig) { c.Subnet = netip.Prefix{} })
	f.run(t, func() {
		_, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA)
		if err == nil {
			t.Error("resolution through subnet-less leaf guard should fail (documented limitation)")
		}
	})
}
