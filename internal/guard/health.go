package guard

// Upstream ANS health and failover. The guard exists because the ANS behind
// it is the fragile component (§IV: an unprotected ANS collapses at ~1.5k
// spoofed qps) — but the paper assumes the ANS stays reachable. In
// deployment it does not: the ANS restarts, its link flaps, an operator
// fat-fingers a firewall rule. Without health tracking every pending entry
// for a dead upstream just times out silently and the guard keeps throwing
// verified traffic into a black hole.
//
// This file adds a per-shard circuit breaker over an ordered upstream list
// (the configured ANSAddr first, then ANSFallbacks):
//
//   - closed:    traffic flows; consecutive timeouts are counted.
//   - open:      TimeoutThreshold consecutive timeouts trip the breaker;
//                traffic shifts to the next closed upstream in order.
//   - half-open: after Cooldown an open upstream receives one synthetic SOA
//                probe (a query the guard mints itself, consumed internally —
//                no client ever sees it). Success closes the breaker, so the
//                primary is restored as soon as it answers; a probe timeout
//                re-opens it for another cooldown.
//
// When every upstream is open the explicit overload policy decides: fail
// open (forward to the primary anyway — maybe the breaker is wrong) or fail
// closed (shed, protecting whatever is left of the ANS). The breaker is
// per shard, matching the engine's no-cross-shard-locks discipline; shards
// discover an outage independently within one threshold of timeouts each.
//
// Everything here is strictly opt-in: with HealthConfig.Enabled false no
// sweeper proc is spawned and forwardMsg short-circuits to the single
// configured ANSAddr, preserving the deterministic single-shard replay.

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"dnsguard/internal/dnswire"
)

// HealthConfig parameterizes upstream health tracking and failover.
type HealthConfig struct {
	// Enabled turns the breaker and the per-shard health sweeper on. It is
	// implied by a non-empty RemoteConfig.ANSFallbacks.
	Enabled bool
	// TimeoutThreshold is how many consecutive upstream timeouts open the
	// breaker. 0 means 3.
	TimeoutThreshold int
	// Cooldown is how long an open breaker waits before a half-open probe.
	// 0 means 2s.
	Cooldown time.Duration
	// SweepInterval is the period of the pending-table reaper that turns
	// expired entries into timeout signals. 0 means PendingTimeout / 2.
	SweepInterval time.Duration
	// FailOpen selects the policy when every upstream's breaker is open:
	// true forwards to the primary anyway (fail-open), false sheds the
	// request (fail-closed, the default).
	FailOpen bool
}

func (hc *HealthConfig) fillDefaults(pendingTimeout time.Duration) {
	if hc.TimeoutThreshold <= 0 {
		hc.TimeoutThreshold = 3
	}
	if hc.Cooldown <= 0 {
		hc.Cooldown = 2 * time.Second
	}
	if hc.SweepInterval <= 0 {
		hc.SweepInterval = pendingTimeout / 2
	}
}

// breakerState is one upstream's circuit-breaker state.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// upstreamHealth tracks one upstream address within a shard.
type upstreamHealth struct {
	addr     netip.AddrPort
	state    breakerState
	consec   int           // consecutive timeouts while closed
	openedAt time.Duration // when the breaker last opened (or a probe failed)
}

// shardHealth is one shard's breaker over the ordered upstream list. Guarded
// by its own mutex: the shard worker (pick), the health sweeper (timeouts,
// probes), and the upstream loop (successes) all touch it.
type shardHealth struct {
	g  *Remote
	mu sync.Mutex
	// ups[0] is the primary (RemoteConfig.ANSAddr); the rest are the
	// ordered ANSFallbacks.
	ups []upstreamHealth
}

func newShardHealth(g *Remote) *shardHealth {
	h := &shardHealth{g: g}
	h.ups = append(h.ups, upstreamHealth{addr: g.cfg.ANSAddr})
	for _, a := range g.cfg.ANSFallbacks {
		h.ups = append(h.ups, upstreamHealth{addr: a})
	}
	return h
}

// pick selects the forward target: the first upstream in order whose breaker
// is closed. With every breaker open the overload policy applies — fail-open
// returns the primary, fail-closed reports no target.
func (h *shardHealth) pick() (netip.AddrPort, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.ups {
		if h.ups[i].state == breakerClosed {
			return h.ups[i].addr, true
		}
	}
	if h.g.cfg.Health.FailOpen {
		return h.ups[0].addr, true
	}
	return netip.AddrPort{}, false
}

// noteTimeout feeds one upstream timeout (an expired pending entry, probe or
// regular) into the breaker.
func (h *shardHealth) noteTimeout(addr netip.AddrPort, now time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	u := h.find(addr)
	if u == nil {
		return
	}
	switch u.state {
	case breakerClosed:
		u.consec++
		if u.consec >= h.g.cfg.Health.TimeoutThreshold {
			u.state = breakerOpen
			u.openedAt = now
			atomic.AddUint64(&h.g.Stats.BreakerOpens, 1)
		}
	case breakerHalfOpen:
		// The probe died too: back to open for another cooldown.
		u.state = breakerOpen
		u.openedAt = now
	}
}

// noteSuccess feeds a genuine (source- and question-verified) response from
// addr into the breaker: any state snaps back to closed, restoring the
// upstream's place in the failover order.
func (h *shardHealth) noteSuccess(addr netip.AddrPort) {
	h.mu.Lock()
	defer h.mu.Unlock()
	u := h.find(addr)
	if u == nil {
		return
	}
	u.consec = 0
	if u.state != breakerClosed {
		u.state = breakerClosed
		atomic.AddUint64(&h.g.Stats.BreakerCloses, 1)
	}
}

// dueProbes transitions cooled-down open breakers to half-open and returns
// their addresses; the caller sends one synthetic probe to each. An upstream
// stays half-open (no repeat probes) until the probe answers or times out.
func (h *shardHealth) dueProbes(now time.Duration) []netip.AddrPort {
	h.mu.Lock()
	defer h.mu.Unlock()
	var due []netip.AddrPort
	for i := range h.ups {
		u := &h.ups[i]
		if u.state == breakerOpen && now-u.openedAt >= h.g.cfg.Health.Cooldown {
			u.state = breakerHalfOpen
			due = append(due, u.addr)
		}
	}
	return due
}

func (h *shardHealth) find(addr netip.AddrPort) *upstreamHealth {
	for i := range h.ups {
		if h.ups[i].addr == addr {
			return &h.ups[i]
		}
	}
	return nil
}

// BreakerState reports upstream addr's breaker state on shard (tests and
// the metrics gauge): 0 closed, 1 open, 2 half-open, -1 unknown.
func (g *Remote) BreakerState(shard int, addr netip.AddrPort) int {
	h := g.shards[shard].health
	if h == nil {
		return -1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	u := h.find(addr)
	if u == nil {
		return -1
	}
	return int(u.state)
}

// isUpstreamAddr reports whether src is one of the configured upstreams —
// the only sources whose datagrams the upstream socket may consume.
func (g *Remote) isUpstreamAddr(src netip.AddrPort) bool {
	if src == g.cfg.ANSAddr {
		return true
	}
	for _, a := range g.cfg.ANSFallbacks {
		if src == a {
			return true
		}
	}
	return false
}

// healthLoop is one shard's sweeper proc ("guard-health[-i]", spawned only
// when health is enabled): it reaps expired pending entries into timeout
// signals and launches half-open probes for cooled-down breakers.
func (s *remoteShard) healthLoop() {
	g := s.g
	for !g.closed.Load() {
		g.cfg.Env.Sleep(g.cfg.Health.SweepInterval)
		if g.closed.Load() {
			return
		}
		now := g.now()
		for _, e := range s.sweepPending(now) {
			s.health.noteTimeout(e.upstream, now)
		}
		for _, addr := range s.health.dueProbes(now) {
			s.sendProbe(addr)
		}
	}
}

// sweepPending removes and returns every expired pending entry. Without the
// sweeper an expired entry lingered until its ID collided or the table
// filled; the breaker needs the timeout signal promptly.
func (s *remoteShard) sweepPending(now time.Duration) []*pendEntry {
	g := s.g
	var dead []*pendEntry
	s.mu.Lock()
	for id, e := range s.pending {
		if now >= e.expires {
			delete(s.pending, id)
			s.ids.release(id)
			dead = append(dead, e)
		}
	}
	s.mu.Unlock()
	for _, e := range dead {
		atomic.AddUint64(&g.Stats.UpstreamTimeouts, 1)
		if e.kind != pendProbe {
			atomic.AddUint64(&g.Stats.PendingDropped, 1)
		}
	}
	return dead
}

// sendProbe emits the half-open probe: a synthetic SOA query for the zone
// apex, minted by the guard itself and consumed internally on response. The
// probe rides the ordinary pending table, so the response is held to the
// same source and question-echo checks as real traffic — a spoofed "probe
// answer" cannot close the breaker.
func (s *remoteShard) sendProbe(upstream netip.AddrPort) {
	g := s.g
	probe := dnswire.NewQuery(0, g.cfg.Zone, dnswire.TypeSOA)
	probe.Flags.RD = false
	atomic.AddUint64(&g.Stats.ProbesSent, 1)
	s.forwardTo(probe, &pendEntry{kind: pendProbe}, upstream)
}
