package guard

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"dnsguard/internal/ans"
	"dnsguard/internal/dnswire"
	"dnsguard/internal/netsim"
	"dnsguard/internal/resolver"
	"dnsguard/internal/tcpproxy"
	"dnsguard/internal/tcpsim"
	"dnsguard/internal/vclock"
	"dnsguard/internal/zone"
)

// Degraded-network torture suite: every guard scheme (DNS-cookie,
// TCP-fallback, modified-DNS) must keep resolving — and keep spoofed traffic
// off the ANS — while the WAN reorders, duplicates, corrupts, jitters, and
// drops packets. The paper's testbed only modelled clean loss; operational
// studies (Whac-A-Mole, root-DDoS layered defenses) show these richer
// delivery anomalies dominate during real attacks.

// tortureFaults is the acceptance-criteria policy: 10% loss + reordering +
// duplication + 2×RTT jitter, all at once. WAN RTT is 10 ms here.
func tortureFaults() netsim.Faults {
	return netsim.Faults{
		Loss:         0.10,
		Reorder:      0.10,
		ReorderDelay: 10 * time.Millisecond,
		Duplicate:    0.10,
		Jitter:       20 * time.Millisecond,
	}
}

// faultClasses are the individual fault dimensions, each exercised in
// isolation per scheme before the combined run.
var faultClasses = []struct {
	name string
	f    netsim.Faults
	// fwdOnly applies the policy only on the client→guard direction. Used
	// for corruption: a corrupted cookie reply is indistinguishable from a
	// differently-keyed valid one (MD5 output is opaque), so reverse-path
	// corruption poisons learned state — in reality the UDP checksum
	// discards those; forward corruption exercises the guard's own parser.
	fwdOnly bool
}{
	{name: "loss", f: netsim.Faults{Loss: 0.15}},
	{name: "reorder", f: netsim.Faults{Reorder: 0.5, ReorderDelay: 10 * time.Millisecond}},
	{name: "duplicate", f: netsim.Faults{Duplicate: 0.5}},
	{name: "corrupt", f: netsim.Faults{Corrupt: 0.2}, fwdOnly: true},
	{name: "jitter", f: netsim.Faults{Jitter: 20 * time.Millisecond}},
	{name: "combined", f: tortureFaults()},
}

// degradedFixture is one scheme's deployment with handles on the WAN-side
// hosts so fault policies can be installed on exactly the hostile path
// (guard↔ANS stays a clean LAN, as in the paper's Figure 5).
type degradedFixture struct {
	sched    *vclock.Scheduler
	net      *netsim.Network
	fooNS    *ans.Server
	guard    *Remote
	lrs      *netsim.Host
	attacker *netsim.Host
	res      *resolver.Resolver

	// wanPeers are the client-side hosts whose link to the guard crosses
	// the hostile WAN (the LRS itself, or its local guard).
	wanPeers  []*netsim.Host
	guardHost *netsim.Host
}

// setWANFaults installs f on every client↔guard WAN direction (reverse
// direction skipped when fwdOnly).
func (f *degradedFixture) setWANFaults(pol netsim.Faults, fwdOnly bool) {
	for _, h := range append([]*netsim.Host{f.attacker}, f.wanPeers...) {
		f.net.SetFaults(h, f.guardHost, pol)
		if !fwdOnly {
			f.net.SetFaults(f.guardHost, h, pol)
		}
	}
}

// newDegradedDNS builds the DNS-cookie deployment (leaf guard, fabricated
// NS names + IP cookies).
func newDegradedDNS(t *testing.T, seed int64) *degradedFixture {
	t.Helper()
	sched := vclock.New(seed)
	network := netsim.New(sched, 5*time.Millisecond)
	f := &degradedFixture{sched: sched, net: network}

	ansHost := network.AddHost("foo-ans", mustAddr("10.99.0.2"))
	srv, err := ans.New(ans.Config{
		Env: ansHost, Addr: mustAP("10.99.0.2:53"),
		Zone: zone.MustParse(fooZoneText, dnswire.Root),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	f.fooNS = srv

	f.guardHost = network.AddHost("guard", mustAddr("10.99.0.1"))
	f.guardHost.ClaimPrefix(netip.MustParsePrefix("192.0.2.0/24"))
	network.SetLatency(f.guardHost, ansHost, 100*time.Microsecond)
	tap, err := f.guardHost.OpenTap()
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewRemote(RemoteConfig{
		Env:        f.guardHost,
		IO:         TapIO{Tap: tap},
		PublicAddr: mustAP("192.0.2.1:53"),
		ANSAddr:    mustAP("10.99.0.2:53"),
		Zone:       dnswire.MustName("foo.com"),
		Subnet:     netip.MustParsePrefix("192.0.2.0/24"),
		Fallback:   SchemeDNS,
		Auth:       testAuth(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	f.guard = g

	f.lrs = network.AddHost("lrs", mustAddr("10.0.0.53"))
	f.wanPeers = []*netsim.Host{f.lrs}
	res, err := resolver.New(resolver.Config{
		Env:       f.lrs,
		RootHints: []netip.AddrPort{mustAP("192.0.2.1:53")},
		Timeout:   500 * time.Millisecond,
		Retries:   6,
		Backoff:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.res = res
	f.attacker = network.AddHost("attacker", mustAddr("203.0.113.66"))
	return f
}

// newDegradedTCP builds the TCP-fallback deployment (TC redirect + proxy
// with SYN cookies on the guard host).
func newDegradedTCP(t *testing.T, seed int64) *degradedFixture {
	t.Helper()
	sched := vclock.New(seed)
	network := netsim.New(sched, 5*time.Millisecond)
	f := &degradedFixture{sched: sched, net: network}

	ansHost := network.AddHost("foo-ans", mustAddr("10.99.0.2"))
	srv, err := ans.New(ans.Config{
		Env: ansHost, Addr: mustAP("10.99.0.2:53"),
		Zone: zone.MustParse(fooZoneText, dnswire.Root),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	f.fooNS = srv

	f.guardHost = network.AddHost("guard", mustAddr("10.99.0.1"))
	f.guardHost.ClaimAddr(mustAddr("192.0.2.1"))
	network.SetLatency(f.guardHost, ansHost, 100*time.Microsecond)
	tcpsim.Install(f.guardHost, tcpsim.Config{SYNCookies: true})
	tap, err := f.guardHost.OpenTap()
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewRemote(RemoteConfig{
		Env:        f.guardHost,
		IO:         TapIO{Tap: tap},
		PublicAddr: mustAP("192.0.2.1:53"),
		ANSAddr:    mustAP("10.99.0.2:53"),
		Zone:       dnswire.MustName("foo.com"),
		Fallback:   SchemeTCP,
		Auth:       testAuth(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	f.guard = g

	// MaxDuration is raised from the 5×RTT default: under injected jitter
	// and retransmission a legitimate connection legitimately outlives
	// 50 ms. The 5×RTT cap itself is covered in internal/tcpproxy.
	p, err := tcpproxy.New(tcpproxy.Config{
		Env:         f.guardHost,
		Listen:      mustAP("192.0.2.1:53"),
		ANSAddr:     mustAP("10.99.0.2:53"),
		RTT:         10 * time.Millisecond,
		MaxDuration: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}

	f.lrs = network.AddHost("lrs", mustAddr("10.0.0.53"))
	tcpsim.Install(f.lrs, tcpsim.Config{})
	f.wanPeers = []*netsim.Host{f.lrs}
	res, err := resolver.New(resolver.Config{
		Env:       f.lrs,
		RootHints: []netip.AddrPort{mustAP("192.0.2.1:53")},
		Timeout:   1500 * time.Millisecond,
		Retries:   6,
		Backoff:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.res = res
	f.attacker = network.AddHost("attacker", mustAddr("203.0.113.66"))
	return f
}

// newDegradedModified builds the full Figure 3 deployment: LRS behind a
// local guard stamping modified-DNS cookies, remote guard in front of the
// ANS (with the DNS scheme, subnet included, as the newcomer fallback so a
// timed-out exchange still has a working path).
func newDegradedModified(t *testing.T, seed int64) *degradedFixture {
	t.Helper()
	sched := vclock.New(seed)
	network := netsim.New(sched, 5*time.Millisecond)
	f := &degradedFixture{sched: sched, net: network}

	ansHost := network.AddHost("foo-ans", mustAddr("10.99.0.2"))
	srv, err := ans.New(ans.Config{
		Env: ansHost, Addr: mustAP("10.99.0.2:53"),
		Zone: zone.MustParse(fooZoneText, dnswire.Root),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	f.fooNS = srv

	f.guardHost = network.AddHost("remote-guard", mustAddr("10.99.0.1"))
	f.guardHost.ClaimPrefix(netip.MustParsePrefix("192.0.2.0/24"))
	network.SetLatency(f.guardHost, ansHost, 100*time.Microsecond)
	tap, err := f.guardHost.OpenTap()
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewRemote(RemoteConfig{
		Env:        f.guardHost,
		IO:         TapIO{Tap: tap},
		PublicAddr: mustAP("192.0.2.1:53"),
		ANSAddr:    mustAP("10.99.0.2:53"),
		Zone:       dnswire.MustName("foo.com"),
		Subnet:     netip.MustParsePrefix("192.0.2.0/24"),
		Fallback:   SchemeDNS,
		Auth:       testAuth(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	f.guard = g

	f.lrs = network.AddHost("lrs", mustAddr("10.0.0.53"))
	lgHost := network.AddHost("local-guard", mustAddr("10.0.0.254"))
	network.SetLatency(f.lrs, lgHost, 50*time.Microsecond)
	f.lrs.SetGateway(lgHost)
	lgHost.ClaimAddr(f.lrs.Addr())
	lgTap, err := lgHost.OpenTap()
	if err != nil {
		t.Fatal(err)
	}
	lg, err := NewLocal(LocalConfig{
		Env:        lgHost,
		IO:         TapIO{Tap: lgTap},
		ClientAddr: f.lrs.Addr(),
		Deliver: func(src, dst netip.AddrPort, payload []byte) error {
			return lgHost.InjectTo(f.lrs, src, dst, payload)
		},
		ExchangeTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Start(); err != nil {
		t.Fatal(err)
	}

	f.wanPeers = []*netsim.Host{lgHost}
	res, err := resolver.New(resolver.Config{
		Env:       f.lrs,
		RootHints: []netip.AddrPort{mustAP("192.0.2.1:53")},
		Timeout:   500 * time.Millisecond,
		Retries:   6,
		Backoff:   100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.res = res
	f.attacker = network.AddHost("attacker", mustAddr("203.0.113.66"))
	return f
}

// spoofedFlood fires n spoofed queries at the guard's public address from
// distinct forged sources, spaced apart, from inside a proc.
func (f *degradedFixture) spoofedFlood(n int) {
	for i := 0; i < n; i++ {
		src := netip.AddrPortFrom(mustAddr(fmt.Sprintf("198.18.%d.%d", i/250, i%250+1)), 1024+uint16(i))
		q, err := dnswire.NewQuery(uint16(i+1), dnswire.MustName("www.foo.com"), dnswire.TypeA).Pack()
		if err != nil {
			panic(err)
		}
		_ = f.attacker.SendRaw(src, mustAP("192.0.2.1:53"), q)
		f.sched.Sleep(2 * time.Millisecond)
	}
}

// resolveUnderFaults attempts a resolution up to tries times and reports
// whether any attempt returned the expected A record.
func (f *degradedFixture) resolveUnderFaults(tries int) error {
	var lastErr error
	for i := 0; i < tries; i++ {
		res, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA)
		if err != nil {
			lastErr = err
			continue
		}
		for _, rr := range res.Answers {
			if a, ok := rr.Data.(*dnswire.AData); ok && a.Addr == mustAddr("198.51.100.10") {
				return nil
			}
		}
		lastErr = fmt.Errorf("wrong answers: %v", res.Answers)
	}
	return lastErr
}

// runDegraded executes one scheme × fault-class scenario: spoofed flood
// first (ANS must see zero queries), then legitimate resolution succeeds.
func runDegraded(t *testing.T, f *degradedFixture, pol netsim.Faults, fwdOnly bool) {
	t.Helper()
	f.setWANFaults(pol, fwdOnly)
	f.sched.Go("scenario", func() {
		f.spoofedFlood(200)
		f.sched.Sleep(2 * time.Second) // let stragglers (jitter, dups) land
		if got := f.fooNS.Stats.UDPQueries; got != 0 {
			t.Errorf("ANS saw %d UDP queries from a purely spoofed flood, want 0 (guard %+v)", got, f.guard.Stats)
		}
		if err := f.resolveUnderFaults(3); err != nil {
			t.Errorf("legit resolution failed under faults: %v (resolver %+v guard %+v)", err, f.res.Stats, f.guard.Stats)
		}
	})
	f.sched.Run(30 * time.Minute)
	if f.guard.Stats.Received == 0 {
		t.Error("guard saw no traffic — fixture is not routing through it")
	}
}

func TestDegradedDNSScheme(t *testing.T) {
	for i, fc := range faultClasses {
		t.Run(fc.name, func(t *testing.T) {
			runDegraded(t, newDegradedDNS(t, 1000+int64(i)), fc.f, fc.fwdOnly)
		})
	}
}

func TestDegradedTCPScheme(t *testing.T) {
	for i, fc := range faultClasses {
		t.Run(fc.name, func(t *testing.T) {
			runDegraded(t, newDegradedTCP(t, 2000+int64(i)), fc.f, fc.fwdOnly)
		})
	}
}

func TestDegradedModifiedScheme(t *testing.T) {
	for i, fc := range faultClasses {
		t.Run(fc.name, func(t *testing.T) {
			runDegraded(t, newDegradedModified(t, 3000+int64(i)), fc.f, fc.fwdOnly)
		})
	}
}

// TestDegradedPartitionRecovery covers the remaining fault class: a
// mid-resolution outage. A resolution started inside a 2-second partition
// must ride it out on the retry/backoff budget and complete right after the
// heal — no error surfaces to the client and no manual reset is needed.
func TestDegradedPartitionRecovery(t *testing.T) {
	f := newDegradedDNS(t, 4000)
	f.net.PartitionFor(f.lrs, f.guardHost, 100*time.Millisecond, 2*time.Second)
	f.sched.Go("scenario", func() {
		f.sched.Sleep(200 * time.Millisecond) // inside the outage
		start := f.sched.Now()
		if err := f.resolveUnderFaults(1); err != nil {
			t.Errorf("resolution did not survive the outage: %v (resolver %+v)", err, f.res.Stats)
			return
		}
		if waited := f.sched.Now() - start; waited < 1800*time.Millisecond {
			t.Errorf("resolved after %v, inside the outage window — partition not exercised", waited)
		}
	})
	f.sched.Run(30 * time.Minute)
	ls := f.net.LinkStats(f.lrs, f.guardHost)
	if ls.PartitionDrops == 0 {
		t.Error("partition never dropped anything — outage not exercised")
	}
	if f.res.Stats.Retries == 0 || f.res.Stats.Backoffs == 0 {
		t.Errorf("expected retries+backoffs to carry the query across the outage: %+v", f.res.Stats)
	}
}

// TestDegradedDuplicatedCookieReplies pins the handshake-tolerance claim
// directly: with every WAN datagram duplicated and heavily reordered, the
// DNS-cookie handshake must not double-spend state or confuse the guard —
// resolution succeeds and the guard discards the duplicate it did not use.
func TestDegradedDuplicatedCookieReplies(t *testing.T) {
	f := newDegradedDNS(t, 4100)
	f.setWANFaults(netsim.Faults{Duplicate: 1.0, Reorder: 0.5, ReorderDelay: 8 * time.Millisecond}, false)
	f.sched.Go("scenario", func() {
		if err := f.resolveUnderFaults(3); err != nil {
			t.Errorf("resolution failed with all datagrams duplicated: %v (guard %+v)", err, f.guard.Stats)
		}
	})
	f.sched.Run(30 * time.Minute)
	// Duplicated verified requests each get forwarded and answered — the
	// guard treats them independently (idempotent, like the real ANS), so
	// the duplicate surfaces as either a second forward or an upstream
	// stray, never as corrupted state.
	if f.guard.Stats.CookieValid == 0 {
		t.Error("no cookie ever verified — handshake did not complete")
	}
}
