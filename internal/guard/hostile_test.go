package guard

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"dnsguard/internal/cookie"
	"dnsguard/internal/dnswire"
)

// TestGuardSurvivesHostilePackets throws mutated, truncated, and garbage
// datagrams at the guard: nothing may panic, and nothing unverified may
// reach the ANS.
func TestGuardSurvivesHostilePackets(t *testing.T) {
	f := newLeafFixture(t, nil)
	attacker := f.net.AddHost("attacker", mustAddr("203.0.113.66"))
	rng := rand.New(rand.NewSource(99))

	base, _ := dnswire.NewQuery(7, dnswire.MustName("www.foo.com"), dnswire.TypeA).PackUDP(512)
	cookieQ, _ := dnswire.NewQuery(8, dnswire.MustName("pr0011223344www.foo.com"), dnswire.TypeA).PackUDP(512)

	f.run(t, func() {
		for i := 0; i < 500; i++ {
			var payload []byte
			switch i % 5 {
			case 0: // random garbage
				payload = make([]byte, rng.Intn(64))
				rng.Read(payload)
			case 1: // bit-flipped valid query
				payload = append([]byte(nil), base...)
				for j := 0; j < 1+rng.Intn(6); j++ {
					payload[rng.Intn(len(payload))] ^= byte(1 << rng.Intn(8))
				}
			case 2: // truncated valid query
				payload = base[:rng.Intn(len(base))]
			case 3: // forged cookie-name query, mutated
				payload = append([]byte(nil), cookieQ...)
				payload[rng.Intn(len(payload))] ^= 0xFF
			case 4: // response flag set (reflection bait)
				payload = append([]byte(nil), base...)
				payload[2] |= 0x80 // QR
			}
			src := netip.AddrPortFrom(netip.AddrFrom4([4]byte{172, 16, byte(i >> 8), byte(i)}), 1234)
			dst := netip.AddrPortFrom(netip.AddrFrom4([4]byte{192, 0, 2, byte(1 + i%254)}), 53)
			_ = attacker.SendRaw(src, dst, payload)
		}
		f.sched.Sleep(time.Second)
		// A legitimate resolution must still work afterwards.
		if _, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA); err != nil {
			t.Errorf("legit resolve after hostile barrage: %v", err)
		}
	})
	// The ANS saw only the one verified query path.
	if f.fooNS.Stats.UDPQueries > 2 {
		t.Errorf("ANS saw %d queries; hostile traffic leaked through", f.fooNS.Stats.UDPQueries)
	}
	if f.fooNS.Stats.Malformed != 0 {
		t.Errorf("ANS received %d malformed packets", f.fooNS.Stats.Malformed)
	}
}

// TestGuardRestartRecovery kills the guard (losing all cookie and pending
// state) and brings up a replacement with a fresh key: clients recover by
// fetching new cookies, exactly the incremental-deployment property §V
// claims.
func TestGuardRestartRecovery(t *testing.T) {
	f := newLeafFixture(t, nil)
	f.run(t, func() {
		if _, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA); err != nil {
			t.Errorf("first resolve: %v", err)
			return
		}
		// Kill the guard and replace it with one holding a different key.
		f.guard.Close()
		guardHost := f.net.AddHost("guard2", mustAddr("10.99.0.3"))
		guardHost.ClaimPrefix(netip.MustParsePrefix("192.0.2.0/24"))
		tap, err := guardHost.OpenTap()
		if err != nil {
			t.Errorf("tap: %v", err)
			return
		}
		var key [cookie.KeySize]byte
		key[0] = 0xEE
		g2, err := NewRemote(RemoteConfig{
			Env:        guardHost,
			IO:         TapIO{Tap: tap},
			PublicAddr: mustAP("192.0.2.1:53"),
			ANSAddr:    mustAP("10.99.0.2:53"),
			Zone:       dnswire.MustName("foo.com"),
			Subnet:     netip.MustParsePrefix("192.0.2.0/24"),
			Fallback:   SchemeDNS,
			Auth:       cookie.NewAuthenticatorWithKey(key),
		})
		if err != nil {
			t.Errorf("NewRemote: %v", err)
			return
		}
		if err := g2.Start(); err != nil {
			t.Errorf("Start: %v", err)
			return
		}
		// The LRS's cached cookie addresses are now invalid; the stale
		// queries are dropped, the resolver times out, flushes, and the
		// new cookie dance succeeds.
		f.sched.Sleep(400 * time.Second) // expire the cached final answer
		if _, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA); err == nil {
			// Either the resolver recovered within its retries (fine)...
			return
		}
		// ...or its cache still points at the dead cookie: flush (a real
		// LRS's records expire) and retry.
		f.res.FlushCache()
		if _, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA); err != nil {
			t.Errorf("resolve after guard restart: %v", err)
		}
	})
}

// TestGuardPendingTableBounded verifies the NAT table cannot be ballooned
// by a flood of valid-looking cookie queries that never complete.
func TestGuardPendingTableBounded(t *testing.T) {
	// Deliberately break the guard→ANS path so pending entries linger.
	f := newLeafFixture(t, func(c *RemoteConfig) {
		c.ANSAddr = mustAP("10.99.0.99:53") // nothing there
		c.PendingTimeout = 100 * time.Millisecond
	})
	auth := f.guard.cfg.Auth
	nc := cookie.NSCodec{}
	attacker := f.net.AddHost("zombies", mustAddr("203.0.113.80"))
	f.run(t, func() {
		// 6000 "verified" cookie queries from distinct real sources (a
		// zombie farm that did obtain cookies).
		for i := 0; i < 6000; i++ {
			src := netip.AddrPortFrom(netip.AddrFrom4([4]byte{198, 18, byte(i >> 8), byte(i)}), 1234)
			fab, err := FabricateNSName(nc, auth.Mint(src.Addr()), dnswire.MustName("www.foo.com"))
			if err != nil {
				t.Errorf("fabricate: %v", err)
				return
			}
			q, _ := dnswire.NewQuery(uint16(i), fab, dnswire.TypeA).PackUDP(512)
			_ = attacker.SendRaw(src, mustAP("192.0.2.1:53"), q)
			f.sched.Sleep(20 * time.Microsecond)
		}
		f.sched.Sleep(time.Second)
	})
	if n := f.guard.PendingEntries(); n > 4096 {
		t.Errorf("pending table = %d entries, want bounded at 4096", n)
	}
	if f.guard.Stats.PendingDropped == 0 {
		t.Error("pending-table pressure never caused drops/reaping")
	}
}

// TestAutomaticKeyRotation runs the guard with a short rotation period and
// verifies that (a) rotations happen, (b) a cookie minted in generation g
// still verifies during generation g+1 and is rejected in g+2 — the
// paper's weekly schedule in miniature.
func TestAutomaticKeyRotation(t *testing.T) {
	f := newLeafFixture(t, func(c *RemoteConfig) {
		c.KeyRotation = 30 * time.Second
	})
	auth := f.guard.cfg.Auth
	nc := cookie.NSCodec{}
	client := f.net.AddHost("client", mustAddr("198.18.0.9"))

	query := func(fab dnswire.Name) bool {
		ok := false
		f.sched.Go("q", func() {
			conn, err := client.ListenUDP(netip.AddrPort{})
			if err != nil {
				return
			}
			defer conn.Close()
			wire, _ := dnswire.NewQuery(1, fab, dnswire.TypeA).PackUDP(512)
			_ = conn.WriteTo(wire, mustAP("192.0.2.1:53"))
			if _, _, err := conn.ReadFrom(200 * time.Millisecond); err == nil {
				ok = true
			}
		})
		f.sched.Run(f.sched.Now() + time.Second)
		return ok
	}

	// Mint in generation 0.
	fab, err := FabricateNSName(nc, auth.Mint(client.Addr()), dnswire.MustName("www.foo.com"))
	if err != nil {
		t.Fatal(err)
	}
	if !query(fab) {
		t.Fatal("generation-0 cookie rejected in generation 0")
	}
	// Advance one rotation: still valid.
	f.sched.Run(f.sched.Now() + 35*time.Second)
	if f.guard.Stats.KeyRotations == 0 {
		t.Fatal("no rotation happened")
	}
	if !query(fab) {
		t.Fatal("generation-0 cookie rejected in generation 1 (grace period)")
	}
	// Advance a second rotation: stale.
	f.sched.Run(f.sched.Now() + 35*time.Second)
	if query(fab) {
		t.Fatal("generation-0 cookie accepted in generation 2")
	}
	if f.guard.Stats.CookieInvalid == 0 {
		t.Fatal("stale cookie not counted invalid")
	}
}
