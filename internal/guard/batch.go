// Per-shard batch bracket. When the engine dispatches a dequeued batch it
// wraps the per-packet HandlePacket calls in BeginBatch/EndBatch; the shard
// uses the bracket to amortize two hot-path costs across the batch: the
// cookie keyring read-lock (one BatchVerifier snapshot instead of one lock
// per verification) and the egress write path (worker-context replies are
// coalesced and flushed in one BatchWriter call). Outside a bracket — in
// particular whenever Config.Batch <= 1 — every helper falls through to the
// exact single-packet code path, so per-packet runs are untouched.
package guard

import (
	"net/netip"
	"sync/atomic"

	"dnsguard/internal/cookie"
	"dnsguard/internal/dnswire"
	"dnsguard/internal/engine"
)

var _ engine.BatchHandler = (*remoteShard)(nil)

// BeginBatch implements engine.BatchHandler: snapshot the cookie keyring
// once for the whole batch. A rotation landing mid-batch takes effect at the
// next batch, indistinguishable from it landing a few packets later.
func (s *remoteShard) BeginBatch(int) {
	if s.bv == nil {
		s.bv = cookie.NewBatchVerifier()
	}
	s.bv.Reset(s.g.cfg.Auth)
	s.inBatch = true
}

// EndBatch implements engine.BatchHandler: close the bracket and flush the
// replies the batch's packets produced.
func (s *remoteShard) EndBatch() {
	s.inBatch = false
	s.flushReplies()
}

// reply emits a guard-originated response from a worker-context handler.
// Inside a batch bracket the packed reply is buffered for EndBatch's
// coalesced flush; otherwise it goes straight out, exactly as g.reply does.
// Stats and CPU charges accrue here either way, keeping per-packet
// accounting identical across modes. Reply sites that run outside worker
// context (the upstream loops) must keep calling g.reply.
func (s *remoteShard) reply(from, to netip.AddrPort, msg *dnswire.Message) {
	g := s.g
	if !s.inBatch {
		g.reply(from, to, msg)
		return
	}
	wire, err := msg.PackUDP(dnswire.MaxUDPSize)
	if err != nil {
		return
	}
	atomic.AddUint64(&g.Stats.RepliesToClient, 1)
	g.charge(g.cfg.Costs.PacketOp)
	s.outbuf = append(s.outbuf, Packet{Src: from, Dst: to, Payload: wire})
}

// flushReplies writes the batch's buffered replies in arrival order, through
// the capture interface's batch writer when it has one.
func (s *remoteShard) flushReplies() {
	if len(s.outbuf) == 0 {
		return
	}
	g := s.g
	if bw, ok := g.cfg.IO.(engine.BatchWriter); ok {
		_ = bw.WriteBatch(s.outbuf)
	} else {
		for _, p := range s.outbuf {
			_ = g.cfg.IO.WriteFromTo(p.Src, p.Dst, p.Payload)
		}
	}
	for i := range s.outbuf {
		s.outbuf[i] = Packet{} // drop payload refs between batches
	}
	s.outbuf = s.outbuf[:0]
}

// mint returns the cookie for src: from the batch snapshot inside a bracket,
// from the live authenticator otherwise.
func (s *remoteShard) mint(src netip.Addr) cookie.Cookie {
	if s.inBatch {
		return s.bv.Mint(src)
	}
	return s.g.cfg.Auth.Mint(src)
}

// verifyCookie is Authenticator.Verify routed through the batch snapshot.
func (s *remoteShard) verifyCookie(src netip.Addr, c cookie.Cookie) bool {
	if s.inBatch {
		return s.bv.Verify(src, c)
	}
	return s.g.cfg.Auth.Verify(src, c)
}

// verifyLabel is NSCodec.VerifyLabel routed through the batch snapshot.
func (s *remoteShard) verifyLabel(src netip.Addr, label string) bool {
	if s.inBatch {
		return s.bv.VerifyLabel(s.g.nsc, src, label)
	}
	return s.g.nsc.VerifyLabel(s.g.cfg.Auth, src, label)
}

// verifyIP is IPCodec.Verify routed through the batch snapshot.
func (s *remoteShard) verifyIP(src, addr netip.Addr) bool {
	if s.inBatch {
		return s.bv.VerifyIP(s.g.ipc, src, addr)
	}
	return s.g.ipc.Verify(s.g.cfg.Auth, src, addr)
}
