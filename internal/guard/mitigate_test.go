package guard

import (
	"testing"
	"time"

	"dnsguard/internal/dnswire"
)

// mitCfg is the test tuning: small counts, short holds, explicit numbers so
// each transition is exercised by a handful of step calls.
func mitCfg() MitigationConfig {
	cfg := MitigationConfig{
		Enabled:         true,
		Interval:        100 * time.Millisecond,
		FloodRate:       1000,
		PoisonRate:      50,
		DiverseNames:    64,
		CalmFactor:      0.25,
		EscalateAfter:   2,
		DeescalateAfter: 3,
		MinHold:         400 * time.Millisecond,
		FlapWindow:      2 * time.Second,
		FlapHoldFactor:  4,
		StrictFactor:    10,
	}
	return cfg
}

// stepSeq drives m with one sample per Interval starting at start.
func stepSeq(m *mitigator, start time.Duration, samples []mitSample) time.Duration {
	now := start
	for _, s := range samples {
		now += m.cfg.Interval
		m.step(now, s)
	}
	return now
}

// repeat returns n copies of s.
func repeat(s mitSample, n int) []mitSample {
	out := make([]mitSample, n)
	for i := range out {
		out[i] = s
	}
	return out
}

var (
	sampleQuiet   = mitSample{}
	sampleFlood   = mitSample{in: 5000, grants: 5000, names: 2}
	sampleTorture = mitSample{in: 5000, grants: 5000, names: 400}
	samplePoison  = mitSample{in: 100, poison: 300}
	sampleBlind   = mitSample{in: 5000}              // raw volume only: passthrough vantage
	sampleGray    = mitSample{grants: 500, names: 2} // between calm (250) and hot (1000)
)

func TestMitigatorClassify(t *testing.T) {
	cases := []struct {
		name  string
		layer MitigationLayer
		s     mitSample
		want  AttackClass
	}{
		{"quiet", LayerPassthrough, sampleQuiet, ClassNone},
		{"flood-low-diversity", LayerCookies, sampleFlood, ClassSpoofFlood},
		{"flood-high-diversity", LayerCookies, sampleTorture, ClassWaterTorture},
		{"poison-beats-flood", LayerCookies, mitSample{grants: 5000, poison: 300, names: 400}, ClassPoisoning},
		{"blind-raw-volume", LayerPassthrough, sampleBlind, ClassSpoofFlood},
		{"sighted-raw-volume-ignored", LayerCookies, sampleBlind, ClassNone},
		{"gray-not-hot", LayerCookies, sampleGray, ClassNone},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := newMitigator(mitCfg())
			m.layer.Store(int32(tc.layer))
			if got := m.classify(tc.s, 1); got != tc.want {
				t.Fatalf("classify(%+v) at %v = %v, want %v", tc.s, tc.layer, got, tc.want)
			}
		})
	}
}

func TestTerminalLayerPerClass(t *testing.T) {
	cases := []struct {
		class AttackClass
		want  MitigationLayer
	}{
		{ClassNone, LayerPassthrough},
		{ClassSpoofFlood, LayerSourceLimit},
		{ClassWaterTorture, LayerTCPFallback},
		{ClassPoisoning, LayerCookies},
	}
	for _, tc := range cases {
		if got := TerminalLayer(tc.class); got != tc.want {
			t.Errorf("TerminalLayer(%v) = %v, want %v", tc.class, got, tc.want)
		}
	}
}

// TestMitigatorTransitions drives the ladder through every transition shape
// with scripted sample sequences.
func TestMitigatorTransitions(t *testing.T) {
	cases := []struct {
		name      string
		seq       []mitSample
		wantLayer MitigationLayer
		wantClass AttackClass
		wantEsc   uint64
		wantDeesc uint64
	}{
		{
			// One hot sample is not enough (EscalateAfter 2).
			name:      "single-hot-sample-holds",
			seq:       []mitSample{sampleTorture},
			wantLayer: LayerPassthrough,
			wantClass: ClassWaterTorture,
		},
		{
			// Two consecutive hot samples climb exactly one rung.
			name:      "escalate-one-rung",
			seq:       repeat(sampleTorture, 2),
			wantLayer: LayerThreshold,
			wantClass: ClassWaterTorture,
			wantEsc:   1,
		},
		{
			// A calm gap between hot samples resets the escalate counter.
			name:      "hot-counter-resets-on-calm",
			seq:       []mitSample{sampleTorture, sampleQuiet, sampleTorture},
			wantLayer: LayerPassthrough,
			wantClass: ClassWaterTorture,
		},
		{
			// Sustained water torture stops at its terminal rung
			// (TCPFallback) no matter how long it lasts.
			name:      "water-torture-terminal",
			seq:       repeat(sampleTorture, 20),
			wantLayer: LayerTCPFallback,
			wantClass: ClassWaterTorture,
			wantEsc:   3,
		},
		{
			// Sustained spoofed flood climbs all the way to SourceLimit.
			name:      "spoof-flood-terminal",
			seq:       repeat(sampleFlood, 20),
			wantLayer: LayerSourceLimit,
			wantClass: ClassSpoofFlood,
			wantEsc:   4,
		},
		{
			// Poisoning stops at cookies: TCP fallback would not help.
			name:      "poisoning-terminal",
			seq:       repeat(samplePoison, 20),
			wantLayer: LayerCookies,
			wantClass: ClassPoisoning,
			wantEsc:   2,
		},
		{
			// Calm long enough descends one rung at a time back to
			// passthrough and clears the class.
			name:      "full-deescalation",
			seq:       append(repeat(sampleTorture, 8), repeat(sampleQuiet, 30)...),
			wantLayer: LayerPassthrough,
			wantClass: ClassNone,
			wantEsc:   3,
			wantDeesc: 3,
		},
		{
			// Gray-zone samples (below hot, above CalmFactor×hot) hold the
			// rung: no escalation, no descent, however long they persist.
			name:      "hysteresis-gray-zone-holds",
			seq:       append(repeat(sampleTorture, 8), repeat(sampleGray, 30)...),
			wantLayer: LayerTCPFallback,
			wantClass: ClassWaterTorture,
			wantEsc:   3,
		},
		{
			// A hot sample of a class with a lower terminal counts toward
			// descent: the guard is over-mitigated for what it now sees.
			name:      "class-switch-descends",
			seq:       append(repeat(sampleFlood, 10), repeat(samplePoison, 8)...),
			wantLayer: LayerCookies,
			wantClass: ClassPoisoning,
			wantEsc:   4,
			wantDeesc: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := newMitigator(mitCfg())
			stepSeq(m, 0, tc.seq)
			st := m.snapshot()
			if st.Layer != tc.wantLayer {
				t.Errorf("layer = %v, want %v", st.Layer, tc.wantLayer)
			}
			if st.Class != tc.wantClass {
				t.Errorf("class = %v, want %v", st.Class, tc.wantClass)
			}
			if tc.wantEsc != 0 && st.Stats.Escalations != tc.wantEsc {
				t.Errorf("escalations = %d, want %d", st.Stats.Escalations, tc.wantEsc)
			}
			if st.Stats.Deescalations != tc.wantDeesc {
				t.Errorf("deescalations = %d, want %d", st.Stats.Deescalations, tc.wantDeesc)
			}
		})
	}
}

// TestMitigatorMinHold: enough calm samples alone do not descend — the rung
// must also have been held MinHold.
func TestMitigatorMinHold(t *testing.T) {
	cfg := mitCfg()
	cfg.MinHold = 10 * time.Second // enormous relative to the sequence
	m := newMitigator(cfg)
	now := stepSeq(m, 0, repeat(samplePoison, 4)) // reach LayerCookies
	if got := MitigationLayer(m.layer.Load()); got != LayerCookies {
		t.Fatalf("setup layer = %v", got)
	}
	stepSeq(m, now, repeat(sampleQuiet, 50))
	if got := MitigationLayer(m.layer.Load()); got != LayerCookies {
		t.Fatalf("descended during MinHold: layer = %v", got)
	}
	if m.stats.Deescalations != 0 {
		t.Fatalf("deescalations = %d, want 0", m.stats.Deescalations)
	}
}

// TestMitigatorFlapSuppression: a re-escalation shortly after a descent
// extends the next hold FlapHoldFactor×, so a pulsing attacker cannot make
// the guard oscillate at its tempo.
func TestMitigatorFlapSuppression(t *testing.T) {
	cfg := mitCfg()
	m := newMitigator(cfg)
	// Pulse 1: up to cookies, then calm back down one rung.
	now := stepSeq(m, 0, repeat(samplePoison, 4))
	now = stepSeq(m, now, repeat(sampleQuiet, 8))
	if m.stats.Deescalations == 0 {
		t.Fatal("setup: expected a descent before the second pulse")
	}
	// Pulse 2 arrives inside FlapWindow: escalation still happens...
	now = stepSeq(m, now, repeat(samplePoison, 2))
	if m.stats.FlapHolds != 1 {
		t.Fatalf("flap holds = %d, want 1", m.stats.FlapHolds)
	}
	deescBefore := m.stats.Deescalations
	// ...but the extended hold (4×MinHold = 1.6s = 16 samples) now blocks
	// descent where plain MinHold+DeescalateAfter (max 7 samples) would
	// have allowed it.
	stepSeq(m, now, repeat(sampleQuiet, 7))
	if m.stats.Deescalations != deescBefore {
		t.Fatalf("descended inside the flap hold (deesc %d -> %d)", deescBefore, m.stats.Deescalations)
	}
	// Once the extended hold expires, calm descends again.
	stepSeq(m, now+7*cfg.Interval, repeat(sampleQuiet, 30))
	if m.stats.Deescalations == deescBefore {
		t.Fatal("never descended after the flap hold expired")
	}
}

// TestNameSketch: distinct names raise the estimate, repeats do not, and
// drain resets it.
func TestNameSketch(t *testing.T) {
	var sk nameSketch
	one := dnswire.MustName("www.foo.com")
	for i := 0; i < 1000; i++ {
		sk.observe(one)
	}
	if est := sk.drain(); est < 0.5 || est > 2 {
		t.Fatalf("single repeated name estimated at %.1f, want ~1", est)
	}
	for i := 0; i < 400; i++ {
		sk.observe(dnswire.MustName(labelName(i)))
	}
	if est := sk.drain(); est < 300 || est > 520 {
		t.Fatalf("400 distinct names estimated at %.1f, want ~400", est)
	}
	if est := sk.drain(); est != 0 {
		t.Fatalf("estimate after drain = %.1f, want 0", est)
	}
}

func labelName(i int) string {
	return "a" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26)) + ".foo.com"
}
