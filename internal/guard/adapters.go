package guard

import (
	"net/netip"
	"time"

	"dnsguard/internal/engine"
	"dnsguard/internal/netapi"
	"dnsguard/internal/netsim"
)

// TapIO adapts a netsim.Tap to PacketIO, the deployment used by all
// simulations: the guard host claims the protected address space and reads
// intercepted datagrams from its tap.
type TapIO struct {
	Tap *netsim.Tap
}

var _ PacketIO = TapIO{}

// Read implements PacketIO.
func (t TapIO) Read(timeout time.Duration) (Packet, error) {
	pkt, err := t.Tap.Read(timeout)
	if err != nil {
		return Packet{}, err
	}
	return Packet{Src: pkt.Src, Dst: pkt.Dst, Payload: pkt.Payload}, nil
}

// WriteFromTo implements PacketIO.
func (t TapIO) WriteFromTo(src, dst netip.AddrPort, payload []byte) error {
	return t.Tap.WriteFromTo(src, dst, payload)
}

// Close implements PacketIO.
func (t TapIO) Close() error { return t.Tap.Close() }

// SocketIO adapts a bound UDP socket to PacketIO for real deployments: the
// guard binds the protected service address directly, so every read's
// destination is the socket's own address and replies always originate from
// it. The fabricated-IP variant (which needs a whole subnet) is therefore
// unavailable over SocketIO; use the NS-name, TCP, or modified schemes.
type SocketIO struct {
	Conn netapi.UDPConn
}

var (
	_ PacketIO          = SocketIO{}
	_ engine.FlowStable = SocketIO{}
)

// FlowStable bridges the engine's ingest-eligibility probe to the
// underlying socket: true only when the conn itself guarantees stable
// kernel flow steering (netapi.FlowStableConn — SO_REUSEPORT members
// qualify, shared-fd handles and netsim shims do not). TapIO deliberately
// lacks this method: taps fan out from a central queue, so affine ingest
// would break source→shard determinism there.
func (s SocketIO) FlowStable() bool {
	fs, ok := s.Conn.(netapi.FlowStableConn)
	return ok && fs.FlowStable()
}

// Read implements PacketIO.
func (s SocketIO) Read(timeout time.Duration) (Packet, error) {
	payload, src, err := s.Conn.ReadFrom(timeout)
	if err != nil {
		return Packet{}, err
	}
	return Packet{Src: src, Dst: s.Conn.LocalAddr(), Payload: payload}, nil
}

// WriteFromTo implements PacketIO; src must be the socket's own address
// (userspace cannot spoof), so it is ignored.
func (s SocketIO) WriteFromTo(_, dst netip.AddrPort, payload []byte) error {
	return s.Conn.WriteTo(payload, dst)
}

// Close implements PacketIO.
func (s SocketIO) Close() error { return s.Conn.Close() }
