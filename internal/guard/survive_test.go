package guard

// Survivability tests: the guard's crash/restart/outage behavior under the
// deterministic simulator. Three properties from the survivability layer:
//
//  1. A guard restart that restores its epoch'd keyring from the state file
//     keeps verifying every cookie the LRS population cached before the
//     crash — and a restart WITHOUT the state file (the old behavior)
//     invalidates all of them, the regression the keyring exists to fix.
//  2. A handler panic on one dataplane shard restarts only that shard:
//     the offending packet is quarantined, the restart metric increments,
//     and both the victim shard and its siblings keep serving.
//  3. A primary-ANS blackout trips the per-shard circuit breaker within the
//     configured threshold, traffic fails over to the secondary, and a
//     half-open probe restores the primary once it returns.

import (
	"net/netip"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"dnsguard/internal/ans"
	"dnsguard/internal/cookie"
	"dnsguard/internal/dnswire"
	"dnsguard/internal/engine"
	"dnsguard/internal/zone"
)

// surviveSrc yields distinct client sources for the replayed population.
func surviveSrc(i int) netip.AddrPort {
	return netip.AddrPortFrom(netip.AddrFrom4([4]byte{172, 16, byte(i >> 8), byte(i)}), 1234)
}

// fabricatedQuery builds the wire query an LRS holding cookie c for child
// would send (message 3 of the DNS-based scheme).
func fabricatedQuery(t *testing.T, id uint16, c cookie.Cookie, child dnswire.Name) []byte {
	t.Helper()
	fab, err := FabricateNSName(cookie.NSCodec{}, c, child)
	if err != nil {
		t.Fatal(err)
	}
	q := dnswire.NewQuery(id, fab, dnswire.TypeA)
	q.Flags.RD = false
	wire, err := q.PackUDP(512)
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestRestartWithKeyEpochsPreservesCookies(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keyring")
	auth, err := cookie.OpenKeyring(path)
	if err != nil {
		t.Fatal(err)
	}

	// The pre-crash cookie population: half minted before the last key
	// rotation (previous epoch), half after (current epoch). These are the
	// credentials LRS caches hold for up to a week.
	const n = 100
	child := dnswire.MustName("com")
	cookies := make([]cookie.Cookie, n)
	for i := 0; i < n/2; i++ {
		cookies[i] = auth.Mint(surviveSrc(i).Addr())
	}
	if err := auth.Rotate(); err != nil {
		t.Fatal(err)
	}
	for i := n / 2; i < n; i++ {
		cookies[i] = auth.Mint(surviveSrc(i).Addr())
	}

	// replay boots a fresh simulation (a restart IS a new process) around a
	// guard using a, replays every cached cookie, and returns the stats.
	replay := func(a *cookie.Authenticator) RemoteStats {
		f := newRootFixture(t, func(c *RemoteConfig) { c.Auth = a })
		lrsPop := f.net.AddHost("lrs-pop", mustAddr("203.0.113.50"))
		f.run(t, func() {
			for i := 0; i < n; i++ {
				wire := fabricatedQuery(t, uint16(i+1), cookies[i], child)
				_ = lrsPop.SendRaw(surviveSrc(i), mustAP("198.41.0.4:53"), wire)
				f.sched.Sleep(time.Millisecond)
			}
			f.sched.Sleep(time.Second)
		})
		return f.guard.Stats.Load()
	}

	// Restart with the state file: the restored ring must re-verify the
	// whole population (the acceptance bar is ≥99%; epochs make it exact)
	// with zero new cookie exchanges.
	restored, err := cookie.OpenKeyring(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Epoch() != auth.Epoch() {
		t.Fatalf("restored epoch %d, want %d", restored.Epoch(), auth.Epoch())
	}
	st := replay(restored)
	if st.CookieValid != n || st.CookieInvalid != 0 {
		t.Fatalf("after keyring restore: %d/%d cookies verified (%d invalid), want 100%%",
			st.CookieValid, n, st.CookieInvalid)
	}
	if st.NewcomerGrants != 0 {
		t.Fatalf("%d new cookie exchanges after restore, want 0", st.NewcomerGrants)
	}

	// Regression (epochs disabled / no state file): a restart onto a fresh
	// random key silently invalidates the entire cached population.
	fresh, err := cookie.NewAuthenticator()
	if err != nil {
		t.Fatal(err)
	}
	st = replay(fresh)
	if st.CookieValid != 0 || st.CookieInvalid != n {
		t.Fatalf("fresh-key restart: %d valid / %d invalid, want 0/%d",
			st.CookieValid, st.CookieInvalid, n)
	}
}

func TestShardPanicIsolatedByGuardSupervision(t *testing.T) {
	poison := mustAddr("203.0.113.99")
	f := newRootFixture(t, func(c *RemoteConfig) {
		c.Shards = 2
		c.Supervision = engine.SupervisorConfig{Enabled: true}
		c.Observer = func(shard int, pkt Packet) {
			if pkt.Src.Addr() == poison {
				panic("injected shard fault")
			}
		}
	})
	eng := f.guard.Engine()
	poisonShard := eng.ShardOf(poison)
	// A clean source that hashes to the SAME shard as the poison packet:
	// proves the restarted shard itself keeps serving, not just siblings.
	sibling := mustAddr("203.0.113.1")
	for i := 2; eng.ShardOf(sibling) != poisonShard; i++ {
		sibling = netip.AddrFrom4([4]byte{203, 0, 113, byte(i)})
	}

	attacker := f.net.AddHost("attacker", mustAddr("203.0.113.66"))
	f.run(t, func() {
		q, _ := dnswire.NewQuery(7, dnswire.MustName("www.foo.com"), dnswire.TypeA).PackUDP(512)
		_ = attacker.SendRaw(netip.AddrPortFrom(poison, 1234), mustAP("198.41.0.4:53"), q)
		f.sched.Sleep(100 * time.Millisecond)

		// The restarted shard still answers newcomers...
		q2, _ := dnswire.NewQuery(8, dnswire.MustName("www.foo.com"), dnswire.TypeA).PackUDP(512)
		_ = attacker.SendRaw(netip.AddrPortFrom(sibling, 1234), mustAP("198.41.0.4:53"), q2)
		f.sched.Sleep(100 * time.Millisecond)

		// ...and the guard as a whole still resolves end to end.
		res, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA)
		if err != nil {
			t.Errorf("resolution after shard panic: %v", err)
			return
		}
		if len(res.Answers) == 0 {
			t.Error("no answers after shard panic")
		}
	})

	sup := eng.Supervision()
	if sup.ShardRestarts != 1 || sup.PanicsQuarantined != 1 || sup.ShardsTripped != 0 {
		t.Fatalf("supervision stats = %+v, want exactly one restart, no trip", sup)
	}
	for i := 0; i < 2; i++ {
		if eng.ShardTripped(i) {
			t.Fatalf("shard %d tripped after a single panic", i)
		}
	}
	qr := eng.Quarantined()
	if len(qr) != 1 || qr[0].Src.Addr() != poison || qr[0].Shard != poisonShard {
		t.Fatalf("quarantine = %+v, want the poison packet on shard %d", qr, poisonShard)
	}
	if f.guard.Stats.NewcomerGrants == 0 {
		t.Fatal("restarted shard served no newcomer grants")
	}
}

func TestANSBlackoutFailoverAndRestore(t *testing.T) {
	auth := testAuth()
	primary := mustAP("10.99.0.2:53")
	secondary := mustAP("10.99.0.3:53")
	f := newRootFixture(t, func(c *RemoteConfig) {
		c.Auth = auth
		c.ANSFallbacks = []netip.AddrPort{secondary}
		c.Health = HealthConfig{
			Enabled:          true,
			TimeoutThreshold: 3,
			Cooldown:         500 * time.Millisecond,
			SweepInterval:    100 * time.Millisecond,
		}
		c.PendingTimeout = 200 * time.Millisecond
	})

	// Secondary ANS: a replica serving the same zone on the fallback addr.
	secHost := f.net.AddHost("root-ans-2", mustAddr("10.99.0.3"))
	secSrv, err := ans.New(ans.Config{
		Env: secHost, Addr: secondary,
		Zone: zone.MustParse(rootZoneText, dnswire.Root),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := secSrv.Start(); err != nil {
		t.Fatal(err)
	}

	// Verified traffic: distinct pre-cookied sources (labels minted from
	// the guard's own authenticator, as a warmed-up LRS population).
	child := dnswire.MustName("com")
	lrsPop := f.net.AddHost("lrs-pop", mustAddr("203.0.113.50"))
	send := func(i int) {
		wire := fabricatedQuery(t, uint16(i+1), auth.Mint(surviveSrc(i).Addr()), child)
		_ = lrsPop.SendRaw(surviveSrc(i), mustAP("198.41.0.4:53"), wire)
	}

	// The primary goes dark before any traffic flows.
	guardHost, primHost := f.hosts["guard"], f.hosts["root-ans"]
	f.net.Partition(guardHost, primHost)

	var (
		openState, restoredState   int
		opens, failovers, probes   uint64
		closes, secSeen, primExtra uint64
	)
	f.run(t, func() {
		// TimeoutThreshold verified queries into the black hole.
		for i := 0; i < 3; i++ {
			send(i)
			f.sched.Sleep(50 * time.Millisecond)
		}
		// Past PendingTimeout + a sweep: the reaper turns them into
		// timeout signals and the breaker opens.
		f.sched.Sleep(500 * time.Millisecond)
		openState = f.guard.BreakerState(0, primary)
		opens = atomic.LoadUint64(&f.guard.Stats.BreakerOpens)

		// Traffic now fails over to the secondary and gets answered.
		for i := 3; i < 6; i++ {
			send(i)
			f.sched.Sleep(50 * time.Millisecond)
		}
		f.sched.Sleep(100 * time.Millisecond)
		failovers = atomic.LoadUint64(&f.guard.Stats.Failovers)
		secSeen = atomic.LoadUint64(&secSrv.Stats.UDPQueries)

		// Primary returns; after the cooldown a half-open SOA probe
		// closes the breaker again.
		f.net.Heal(guardHost, primHost)
		f.sched.Sleep(1500 * time.Millisecond)
		restoredState = f.guard.BreakerState(0, primary)
		probes = atomic.LoadUint64(&f.guard.Stats.ProbesSent)
		closes = atomic.LoadUint64(&f.guard.Stats.BreakerCloses)

		// Post-restore traffic goes back to the primary, not the fallback.
		primBefore := atomic.LoadUint64(&f.root.Stats.UDPQueries)
		send(6)
		f.sched.Sleep(100 * time.Millisecond)
		primExtra = atomic.LoadUint64(&f.root.Stats.UDPQueries) - primBefore
	})

	if openState != 1 {
		t.Fatalf("primary breaker state after blackout = %d, want 1 (open)", openState)
	}
	if opens != 1 {
		t.Fatalf("breaker opens = %d, want 1", opens)
	}
	if failovers != 3 || secSeen != 3 {
		t.Fatalf("failovers = %d, secondary saw %d queries; want 3 and 3", failovers, secSeen)
	}
	if probes == 0 {
		t.Fatal("no half-open probes sent")
	}
	if closes != 1 || restoredState != 0 {
		t.Fatalf("closes = %d, restored state = %d; want 1 and 0 (closed)", closes, restoredState)
	}
	if primExtra != 1 {
		t.Fatalf("primary saw %d post-restore queries, want 1", primExtra)
	}
	st := f.guard.Stats.Load()
	if st.UpstreamTimeouts < 3 {
		t.Fatalf("upstream timeouts = %d, want >= 3", st.UpstreamTimeouts)
	}
	if st.FailClosedDrops != 0 {
		t.Fatalf("fail-closed drops = %d with a live fallback, want 0", st.FailClosedDrops)
	}
}
