package guard

import (
	"testing"

	"dnsguard/internal/dnswire"
)

// TestGuardBatchedDataplane runs the guarded-root scenario with Batch > 1 —
// the tap fills slabs, each dequeued batch is bracketed by a keyring
// snapshot, and replies leave through the coalesced egress flush — and pins
// the end-to-end outcome and every guard counter to the per-packet run.
func TestGuardBatchedDataplane(t *testing.T) {
	stats := make(map[int]RemoteStats)
	for _, batch := range []int{1, 8} {
		f := newRootFixture(t, func(c *RemoteConfig) { c.Batch = batch })
		f.run(t, func() {
			res, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA)
			if err != nil {
				t.Errorf("batch=%d: Resolve: %v (guard stats %+v)", batch, err, f.guard.Stats)
				return
			}
			if len(res.Answers) != 1 || res.Answers[0].Data.(*dnswire.AData).Addr != mustAddr("198.51.100.10") {
				t.Errorf("batch=%d: answers = %v", batch, res.Answers)
			}
		})
		ing := f.guard.Engine().Ingest()
		reads, pkts := ing.Reads, ing.Packets
		if batch > 1 && reads == 0 {
			t.Errorf("batch=%d: engine took no batched reads; the slab path did not engage", batch)
		}
		if batch == 1 && reads != 0 {
			t.Errorf("batch=1: engine took %d batched reads; per-packet mode must not batch", reads)
		}
		if reads > 0 && pkts < reads {
			t.Errorf("batch=%d: %d packets over %d reads; ReadBatch must return n >= 1", batch, pkts, reads)
		}
		stats[batch] = f.guard.Stats.Load()
	}
	if stats[8] != stats[1] {
		t.Errorf("batched guard counters diverge from per-packet run:\nbatch=1: %+v\nbatch=8: %+v",
			stats[1], stats[8])
	}
}

// TestGuardBatchedFloodDrops repeats the spoofed-flood scenario in batch
// mode: rate-limited grants and cookie admission must hold when the
// newcomers arrive as slabs and the shard sheds whole unverified groups.
func TestGuardBatchedFloodDrops(t *testing.T) {
	f := newRootFixture(t, func(c *RemoteConfig) {
		c.Batch = 16
		c.RL1.PerSourceRate = 100
		c.RL1.PerSourceBurst = 20
		c.RL1.GlobalRate = 1000
		c.RL1.GlobalBurst = 100
	})
	f.run(t, func() {
		if _, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA); err != nil {
			t.Errorf("Resolve through flood config: %v", err)
		}
	})
	st := f.guard.Stats.Load()
	if st.CookieValid != 1 || st.ForwardedToANS != 1 {
		t.Errorf("valid=%d forwarded=%d, want 1/1", st.CookieValid, st.ForwardedToANS)
	}
}
