// Zero-allocation wire-to-wire fast path for verified sources.
//
// The materializing pipeline (handle → Unpack → handleNSCookie → NewQuery →
// PackUDP, and its upstream mirror) allocates a Message, name strings, and a
// packed wire per packet. For a source that is already in the engine's
// verified cache none of that structure is consulted — the guard only needs
// the cookie label bytes (to compare against the cached credential) and the
// question span (to rewrite and forward). This file handles that traffic as
// dnswire.View reads over the borrowed ingress slab, with entry-owned reused
// byte buffers in the pending NAT table and per-shard scratch buffers for the
// outgoing wires.
//
// The contract with the materializing path is strict equivalence: a fast
// handler either *commits* — in which case every counter, every CPU charge,
// and every emitted byte is identical to what the materializing path would
// have produced — or it *bails* before any observable effect and the
// materializing path runs as if the fast path did not exist. Anything
// unusual (extra records, compressed or non-ASCII names, mixed-case echoes,
// reserved flag bits on a raw-relay shape) bails. Deterministic replays with
// FastPathTTL == 0 never enter any of these functions.

package guard

import (
	"bytes"
	"net/netip"
	"sync/atomic"

	"dnsguard/internal/dnswire"
)

// flagsZMask covers the reserved Z bits, the one part of the flags word that
// dnswire.Unpack→Pack does not round-trip (packFlags writes them as zero). A
// raw-relay shape with a Z bit set would repack differently, so it bails to
// the materializing path.
const flagsZMask = 0x0070

// entryPoolCap bounds each shard's pendEntry free list. Entries beyond the
// cap fall to the GC; the steady-state in-flight population is bounded by
// maxPending anyway.
const entryPoolCap = 512

// getEntryLocked pops a pooled pendEntry (caller holds s.mu).
func (s *remoteShard) getEntryLocked() *pendEntry {
	if n := len(s.entryPool); n > 0 {
		e := s.entryPool[n-1]
		s.entryPool[n-1] = nil
		s.entryPool = s.entryPool[:n-1]
		return e
	}
	return &pendEntry{}
}

// putEntryLocked returns a consumed fast entry to the shard pool, keeping its
// wire buffers' capacity (caller holds s.mu). Entries the materializing path
// allocated are not pooled — their lifetime was never under this file's
// control.
func (s *remoteShard) putEntryLocked(e *pendEntry) {
	if e == nil || !e.fast || len(s.entryPool) >= entryPoolCap {
		return
	}
	q, f := e.qwire[:0], e.fwdWire[:0]
	*e = pendEntry{qwire: q, fwdWire: f}
	s.entryPool = append(s.entryPool, e)
}

// recycleEntry is putEntryLocked for callers not holding s.mu.
func (s *remoteShard) recycleEntry(e *pendEntry) {
	s.mu.Lock()
	s.putEntryLocked(e)
	s.mu.Unlock()
}

// materializeFastLocked fills the decoded fields of a fast entry so the
// materializing upstream path can run its question-echo comparison and
// answerChild transformation on it (caller holds s.mu). Only responses the
// fast upstream path bails on — answers, referrals, mixed-case echoes — pay
// this cost, and only once per entry.
func (s *remoteShard) materializeFastLocked(entry *pendEntry) {
	if q, _, err := dnswire.UnpackQuestion(entry.fwdWire); err == nil {
		entry.fwdQ = q
	}
	if entry.kind == pendChild {
		entry.child = entry.fwdQ.Name
		if q, _, err := dnswire.UnpackQuestion(entry.qwire); err == nil {
			entry.question = q
		}
	}
}

// appendFolded appends b to dst with ASCII uppercase folded to lowercase.
// Length octets (< 64) and the terminator pass through unchanged, so folding
// a whole name span yields the canonical wire encoding dnswire.Pack emits.
func appendFolded(dst, b []byte) []byte {
	for _, c := range b {
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		dst = append(dst, c)
	}
	return dst
}

// isHexLower reports whether c is a lowercase hex digit — what remains of
// cookie-label hex after ASCII folding. Mirrors cookie.NSCodec.DecodeLabel's
// accept set (hex.DecodeString after ToLower).
func isHexLower(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')
}

// viewFastShape reports whether v covers the whole datagram with exactly one
// question and nothing else — the only shape the fast paths touch.
func viewFastShape(v dnswire.View, n int) bool {
	return v.QDCount() == 1 && v.ANCount() == 0 && v.NSCount() == 0 &&
		v.ARCount() == 0 && v.End() == n
}

// tryFastNS handles a cookie-labeled query from a verified source without
// materializing it: parse in place, compare the folded label against the
// cached credential, rewrite, forward. Returns false (bail) unless the
// packet is certain to reach handleNSCookie with a verified-cache hit; on
// true the packet is fully handled with effects identical to that path.
func (s *remoteShard) tryFastNS(pkt Packet) bool {
	g := s.g
	if !g.eng.FastPathEnabled() {
		return false
	}
	payload := pkt.Payload
	if len(payload) > dnswire.MaxUDPSize || pkt.Dst.Addr() != g.cfg.PublicAddr.Addr() {
		// Off-public destinations can hit the subnet (IP-cookie) branch;
		// only the exact public address is guaranteed to classify as an
		// NS-label query.
		return false
	}
	v, ok := dnswire.ParseView(payload)
	if !ok || v.QR() || !viewFastShape(v, len(payload)) {
		return false
	}
	first := v.FirstLabel()
	pl := g.nsPrefixLen
	if len(first) <= pl {
		return false
	}
	// Fold the would-be cookie label into the shard's credential scratch
	// ("ns:" + label, exactly the credential handleNSCookie builds from the
	// canonical name) and shape-check it: prefix match plus hex digits,
	// mirroring NSCodec.IsCookieLabel.
	cred := s.credBuf
	for i := 0; i < pl; i++ {
		c := first[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		cred[3+i] = c
	}
	for i := 0; i < len(g.nsPrefix); i++ {
		if cred[3+i] != g.nsPrefix[i] {
			return false
		}
	}
	for _, c := range cred[3+len(g.nsPrefix) : 3+pl] {
		if !isHexLower(c) {
			return false
		}
	}
	if !g.eng.VerifiedCredMatchOn(s.id, pkt.Src.Addr(), cred) {
		// Miss, expired, or credential mismatch: no counter was touched, and
		// the materializing path's own VerifiedCredOn probe will do the
		// hit/miss accounting exactly as before.
		return false
	}
	// Committed. From here every effect mirrors handleNSCookie on a
	// fastPath() hit.
	atomic.AddUint64(&g.Stats.FastPathHits, 1)
	atomic.AddUint64(&g.Stats.CookieValid, 1)
	if !s.rl2.AllowRequest(pkt.Src.Addr(), g.now()) {
		atomic.AddUint64(&g.Stats.RL2Dropped, 1)
		return true
	}
	g.charge(g.cfg.Costs.Rewrite)
	s.forwardFastNS(pkt, v, pl)
	return true
}

// forwardFastNS rewrites the cookie-labeled question to the restored child
// name and forwards it, registering a fast pending entry. The assembled wire
// is byte-identical to PackUDP(NewQuery(0, child, qtype) with RD=false): a
// 12-byte header, the first label with the cookie prefix stripped, the rest
// of the name folded to canonical case, the client's qtype, and class IN
// (NewQuery forces IN regardless of the client's class).
func (s *remoteShard) forwardFastNS(pkt Packet, v dnswire.View, pl int) {
	g := s.g
	target := g.cfg.ANSAddr
	if s.health != nil {
		up, ok := s.health.pick()
		if !ok {
			atomic.AddUint64(&g.Stats.FailClosedDrops, 1)
			return
		}
		if up != g.cfg.ANSAddr {
			atomic.AddUint64(&g.Stats.Failovers, 1)
		}
		target = up
	}
	qw := v.QuestionWire()
	name := v.QNameWire()
	first := v.FirstLabel()

	// Assemble the forward wire in the shard scratch first — entry buffers
	// must not be touched after the entry is published, since the upstream
	// loop may consume it the moment it is in the table.
	wire := append(s.wireBuf[:0],
		0, 0, // ID patched below
		0, 0, // flags: query, RD off
		0, 1, 0, 0, 0, 0, 0, 0)
	wire = append(wire, byte(len(first)-pl))
	wire = appendFolded(wire, first[pl:])
	wire = appendFolded(wire, name[1+len(first):])
	wire = append(wire, qw[len(name)], qw[len(name)+1], 0x00, 0x01)
	s.wireBuf = wire[:0]

	expires := g.now() + g.cfg.PendingTimeout
	s.mu.Lock()
	entry := s.getEntryLocked()
	entry.kind = pendChild
	entry.fast = true
	entry.clientSrc = pkt.Src
	entry.replyFrom = pkt.Dst
	entry.origID = v.ID()
	entry.upstream = target
	entry.expires = expires
	// qwire: the client's question span with the name folded to canonical
	// case — the reply fabrication template and, if the materializing path
	// consumes this entry, the source for entry.question.
	entry.qwire = appendFolded(entry.qwire[:0], qw[:len(name)])
	entry.qwire = append(entry.qwire, qw[len(name):]...)
	// fwdWire: the forwarded question span; upstream responses must echo it.
	entry.fwdWire = append(entry.fwdWire[:0], wire[12:]...)
	id, ok := s.allocID()
	if !ok {
		s.putEntryLocked(entry)
		s.mu.Unlock()
		atomic.AddUint64(&g.Stats.PendingDropped, 1)
		return
	}
	s.pending[id] = entry
	s.mu.Unlock()
	wire[0], wire[1] = byte(id>>8), byte(id)
	atomic.AddUint64(&g.Stats.ForwardedToANS, 1)
	g.charge(g.cfg.Costs.PacketOp)
	_ = s.upstream.WriteTo(wire, target)
}

// tryFastPassthrough relays an inactive-guard (or tripped-shard) query
// without materializing it: the raw datagram is forwarded with only the
// transaction ID rewritten. Committing requires the raw bytes to be exactly
// what Unpack→PackUDP would emit — canonical-case name, no reserved flag
// bits, single question at the datagram edge — so the relayed wire is
// byte-identical to the materializing path's.
func (s *remoteShard) tryFastPassthrough(pkt Packet) bool {
	g := s.g
	if !g.eng.FastPathEnabled() {
		return false
	}
	payload := pkt.Payload
	if len(payload) > dnswire.MaxUDPSize {
		return false
	}
	v, ok := dnswire.ParseView(payload)
	if !ok || v.QR() || v.RawFlags()&flagsZMask != 0 || !viewFastShape(v, len(payload)) {
		return false
	}
	for _, b := range v.QNameWire() {
		if b >= 'A' && b <= 'Z' {
			return false // repack would fold the name; relay raw only if it's a no-op
		}
	}
	atomic.AddUint64(&g.Stats.Passthrough, 1)
	target := g.cfg.ANSAddr
	if s.health != nil {
		up, ok := s.health.pick()
		if !ok {
			atomic.AddUint64(&g.Stats.FailClosedDrops, 1)
			return true
		}
		if up != g.cfg.ANSAddr {
			atomic.AddUint64(&g.Stats.Failovers, 1)
		}
		target = up
	}
	expires := g.now() + g.cfg.PendingTimeout
	s.mu.Lock()
	entry := s.getEntryLocked()
	entry.kind = pendPassthrough
	entry.fast = true
	entry.clientSrc = pkt.Src
	entry.replyFrom = pkt.Dst
	entry.origID = v.ID()
	entry.upstream = target
	entry.expires = expires
	entry.qwire = entry.qwire[:0]
	entry.fwdWire = append(entry.fwdWire[:0], v.QuestionWire()...)
	id, ok := s.allocID()
	if !ok {
		s.putEntryLocked(entry)
		s.mu.Unlock()
		atomic.AddUint64(&g.Stats.PendingDropped, 1)
		return true
	}
	s.pending[id] = entry
	s.mu.Unlock()
	// The payload is the shard's borrowed ingress buffer; patching the ID in
	// place is safe (nothing re-reads it) and the write interface copies.
	payload[0], payload[1] = byte(id>>8), byte(id)
	atomic.AddUint64(&g.Stats.ForwardedToANS, 1)
	g.charge(g.cfg.Costs.PacketOp)
	_ = s.upstream.WriteTo(payload, target)
	return true
}

// tryFastUpstream consumes an ANS response for a fast pending entry without
// materializing it. Only the all-success shape commits: a single-question
// response with no records, echoing the forwarded question byte-for-byte,
// from the expected upstream. Everything else — answers, referrals, case
// deviations, wrong question, wrong source, missing entry — bails with the
// entry untouched, and the materializing path re-derives its own verdict
// (spoofed, stray, or a real answer) exactly as before.
func (s *remoteShard) tryFastUpstream(payload []byte, src netip.AddrPort) bool {
	g := s.g
	v, ok := dnswire.ParseView(payload)
	if !ok || !v.QR() || !viewFastShape(v, len(payload)) {
		return false
	}
	id := v.ID()
	s.mu.Lock()
	entry, ok := s.pending[id]
	if !ok || !entry.fast || src != entry.upstream ||
		!bytes.Equal(v.QuestionWire(), entry.fwdWire) {
		s.mu.Unlock()
		return false
	}
	if entry.kind != pendChild && v.RawFlags()&flagsZMask != 0 {
		// Raw relay must repack as a no-op; Z bits would be cleared by the
		// materializing path. Rare: let it do the clearing.
		s.mu.Unlock()
		return false
	}
	expired := g.now() >= entry.expires
	delete(s.pending, id)
	s.ids.release(id)
	s.mu.Unlock()
	if s.health != nil {
		s.health.noteSuccess(src)
	}
	if expired {
		atomic.AddUint64(&g.Stats.PendingDropped, 1)
		s.recycleEntry(entry)
		return true
	}
	switch entry.kind {
	case pendChild:
		// A no-record response can only take answerChild's NXDomain or
		// ServFail arms (the referral and answer arms need records), both of
		// which fabricate header {QR, AA, RCode} + the client's question.
		rcode := byte(dnswire.RCodeServFail)
		if dnswire.RCode(v.RawFlags()&0xF) == dnswire.RCodeNXDomain {
			rcode = byte(dnswire.RCodeNXDomain)
		}
		buf := append(s.upBuf[:0],
			byte(entry.origID>>8), byte(entry.origID),
			0x84, rcode, // QR|AA, opcode 0, rcode
			0, 1, 0, 0, 0, 0, 0, 0)
		buf = append(buf, entry.qwire...)
		s.upBuf = buf[:0]
		g.replyWire(entry.replyFrom, entry.clientSrc, buf)
	default: // pendPassthrough (pendDirect entries are never fast)
		payload[0], payload[1] = byte(entry.origID>>8), byte(entry.origID)
		g.replyWire(entry.replyFrom, entry.clientSrc, payload)
	}
	s.recycleEntry(entry)
	return true
}

// replyWire emits an already-packed guard response: g.reply with the packing
// hoisted out. Counters and charges are identical.
func (g *Remote) replyWire(from, to netip.AddrPort, wire []byte) {
	atomic.AddUint64(&g.Stats.RepliesToClient, 1)
	g.charge(g.cfg.Costs.PacketOp)
	_ = g.cfg.IO.WriteFromTo(from, to, wire)
}
