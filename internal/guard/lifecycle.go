package guard

// Planned-change lifecycle for a guard site. A crash (PR 4) is survived by
// the persisted keyring; a *planned* restart — binary upgrade, host
// maintenance — should not cost the population anything at all. The state
// machine here gives an orchestrator the handles it needs:
//
//	serving → draining → quiesced → restarting   (old instance)
//	                      warming  → serving     (new instance)
//
// Draining refuses new cookie exchanges (newcomers) while continuing to
// serve cookie-verified traffic, flushes the dataplane queues, and lets
// in-flight NAT exchanges complete or time out. Quiesced means the instance
// holds no in-flight client state and can be torn down. The replacement
// instance starts Warming: it serves traffic (so a catchment front that
// routes early loses nothing) but advertises not-ready until its keyring
// epoch is current and its queues are settled; the front restores the
// site's weight only then (see fleet's readiness gate and the /readyz
// endpoint in cmd/dnsguardd).
//
// States are exported as guard_lifecycle_* series: the state gauge, the
// transition counter, drains started, and newcomers refused by a drain.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"dnsguard/internal/metrics"
)

// LifecycleState is one node of the guard's planned-change state machine.
type LifecycleState int32

const (
	// LifecycleServing is the steady state: every scheme handled, newcomers
	// granted cookies. The zero value, so guards that never drain behave
	// exactly as before the lifecycle existed.
	LifecycleServing LifecycleState = iota
	// LifecycleDraining refuses new unverified flows while verified traffic
	// and in-flight exchanges complete.
	LifecycleDraining
	// LifecycleQuiesced holds no in-flight client state; safe to tear down.
	LifecycleQuiesced
	// LifecycleRestarting marks the old instance between quiesce and Close.
	LifecycleRestarting
	// LifecycleWarming is a fresh instance serving traffic but not yet
	// advertising readiness (keyring may trail the fleet epoch).
	LifecycleWarming
)

func (s LifecycleState) String() string {
	switch s {
	case LifecycleServing:
		return "serving"
	case LifecycleDraining:
		return "draining"
	case LifecycleQuiesced:
		return "quiesced"
	case LifecycleRestarting:
		return "restarting"
	case LifecycleWarming:
		return "warming"
	}
	return fmt.Sprintf("LifecycleState(%d)", int32(s))
}

// LifecycleStats counts lifecycle activity (atomic fields, exported as
// guard_lifecycle_* series).
type LifecycleStats struct {
	Transitions  uint64 // state changes since construction
	Drains       uint64 // Drain calls that entered draining
	DrainDropped uint64 // newcomer queries refused while draining/quiesced
}

// lifecyclePoll paces Drain's quiesce polls (virtual time under netsim).
const lifecyclePoll = 200 * time.Microsecond

// ErrNotReady is the base error readiness probes wrap.
var ErrNotReady = errors.New("guard: not ready")

// Lifecycle reports the guard's current lifecycle state.
func (g *Remote) Lifecycle() LifecycleState {
	return LifecycleState(g.lcState.Load())
}

// setLifecycle moves the state machine and counts the transition.
func (g *Remote) setLifecycle(s LifecycleState) {
	if g.lcState.Swap(int32(s)) != int32(s) {
		atomic.AddUint64(&g.lc.Transitions, 1)
	}
}

// drainGate reports whether newcomer (cookie-less, unverified) queries must
// be refused: any state past serving means the instance is on its way down
// or not yet warmed into the catchment, and granting a cookie exchange it
// may not live to answer would strand the client.
func (g *Remote) drainGate() bool {
	return LifecycleState(g.lcState.Load()) != LifecycleServing &&
		LifecycleState(g.lcState.Load()) != LifecycleWarming
}

// Drain takes the guard from serving to quiesced: new unverified flows are
// refused (engine drain + the newcomer gate), the dataplane queues flush,
// and in-flight NAT exchanges get PendingTimeout to complete before the
// stragglers are dropped (counted as PendingDropped). Returns nil once
// quiesced; ctx.Err() if the context expires first, leaving the guard
// draining so the caller can retry or Resume. Safe to call from a netsim
// proc — all waiting is via Env.Sleep.
func (g *Remote) Drain(ctx context.Context) error {
	g.setLifecycle(LifecycleDraining)
	atomic.AddUint64(&g.lc.Drains, 1)
	if err := g.eng.Drain(ctx); err != nil {
		return err
	}
	// Let in-flight exchanges complete or time out: the longest any pending
	// NAT entry can legitimately live is PendingTimeout.
	deadline := g.now() + g.cfg.PendingTimeout
	for g.PendingEntries() > 0 && g.now() < deadline {
		if err := ctx.Err(); err != nil {
			return err
		}
		g.cfg.Env.Sleep(lifecyclePoll)
	}
	// Stragglers past their window are dropped, same accounting as an
	// upstream that never answered.
	for _, s := range g.shards {
		s.mu.Lock()
		for id := range s.pending {
			delete(s.pending, id)
			s.ids.release(id)
			atomic.AddUint64(&g.Stats.PendingDropped, 1)
		}
		s.mu.Unlock()
	}
	g.setLifecycle(LifecycleQuiesced)
	return nil
}

// Resume aborts a drain: the engine re-admits unverified flows and the
// guard returns to serving.
func (g *Remote) Resume() {
	g.eng.Resume()
	g.setLifecycle(LifecycleServing)
}

// BeginRestart marks the quiesced instance as tearing down (call just
// before Close). Purely observational — Close works from any state — but
// it keeps the exported state gauge truthful during the swap.
func (g *Remote) BeginRestart() { g.setLifecycle(LifecycleRestarting) }

// WarmStart marks a freshly constructed replacement instance as warming:
// it serves traffic but Ready gates on the keyring epoch and queue depth
// until MarkServing.
func (g *Remote) WarmStart() { g.setLifecycle(LifecycleWarming) }

// MarkServing completes a warm-up: the instance advertises full readiness.
func (g *Remote) MarkServing() { g.setLifecycle(LifecycleServing) }

// Healthz is the liveness probe: nil while the guard can make progress at
// all (process up, dataplane not closed). Deliberately lax — a draining or
// warming guard is alive.
func (g *Remote) Healthz() error {
	if g.closed.Load() {
		return errors.New("guard: closed")
	}
	return nil
}

// Ready is the readiness probe behind /readyz and the fleet's re-admission
// gate: nil only when the guard should receive catchment weight. minEpoch
// is the keyring epoch the caller requires (the fleet's current epoch; 0
// accepts any). Conditions: not closed, lifecycle serving or warming (a
// draining site must shed weight, not attract it), keyring epoch current,
// and the ingress backlog below half the configured queue depth.
func (g *Remote) Ready(minEpoch uint64) error {
	if g.closed.Load() {
		return fmt.Errorf("%w: closed", ErrNotReady)
	}
	switch st := g.Lifecycle(); st {
	case LifecycleServing, LifecycleWarming:
	default:
		return fmt.Errorf("%w: lifecycle %s", ErrNotReady, st)
	}
	if epoch := g.cfg.Auth.Epoch(); epoch < minEpoch {
		return fmt.Errorf("%w: keyring epoch %d behind fleet epoch %d", ErrNotReady, epoch, minEpoch)
	}
	backlog := 0
	for i := 0; i < g.eng.Shards(); i++ {
		backlog += g.eng.QueueDepth(i)
	}
	if max := g.cfg.QueueDepth * g.cfg.Shards / 2; backlog > max {
		return fmt.Errorf("%w: ingress backlog %d over threshold %d", ErrNotReady, backlog, max)
	}
	return nil
}

// LifecycleStats returns an atomically-read copy of the lifecycle counters.
func (g *Remote) LifecycleStats() LifecycleStats {
	return metrics.SnapshotUint64(&g.lc)
}

// lifecycleMetricsInto registers the guard_lifecycle_* series.
func (g *Remote) lifecycleMetricsInto(r *metrics.Registry) {
	r.FuncUint("guard_lifecycle_state", func() uint64 { return uint64(g.lcState.Load()) })
	metrics.RegisterUint64Fields(r, "guard_lifecycle_", &g.lc)
}
