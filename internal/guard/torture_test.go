package guard

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"dnsguard/internal/ans"
	"dnsguard/internal/cookie"
	"dnsguard/internal/dnswire"
	"dnsguard/internal/engine"
	"dnsguard/internal/netsim"
	"dnsguard/internal/vclock"
	"dnsguard/internal/zone"
)

// TestShardedGuardTorture floods an 8-shard guard with all three schemes at
// once — fabricated NS-name cookies, IP cookies, and the explicit cookie
// extension — plus newcomers and garbage, over links injecting loss,
// duplication, reordering, corruption, and jitter. It asserts the shard
// contract end to end: every source is handled by exactly the shard its
// address hashes to, multiple shards carry load, verified traffic still
// reaches the ANS, and nothing unverified leaks. `make check` runs it under
// -race, which also exercises the queued dataplane's cross-proc handoffs.
func TestShardedGuardTorture(t *testing.T) {
	sched := vclock.New(1234)
	network := netsim.New(sched, 5*time.Millisecond)

	ansHost := network.AddHost("foo-ans", mustAddr("10.99.0.2"))
	srv, err := ans.New(ans.Config{
		Env: ansHost, Addr: mustAP("10.99.0.2:53"),
		Zone: zone.MustParse(fooZoneText, dnswire.Root),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	guardHost := network.AddHost("guard", mustAddr("10.99.0.1"))
	guardHost.ClaimPrefix(netip.MustParsePrefix("192.0.2.0/24"))
	network.SetLatency(guardHost, ansHost, 100*time.Microsecond)
	tap, err := guardHost.OpenTap()
	if err != nil {
		t.Fatal(err)
	}

	// shardOf records which worker handled each source; the final assertion
	// compares it against the engine's hash. vclock serializes procs, so a
	// plain map is race-free under the simulator.
	shardOf := make(map[netip.Addr]map[int]bool)
	g, err := NewRemote(RemoteConfig{
		Env:         guardHost,
		IO:          TapIO{Tap: tap},
		Shards:      8,
		QueueDepth:  64,
		FastPathTTL: time.Hour,
		Observer: func(shard int, pkt Packet) {
			a := pkt.Src.Addr()
			if shardOf[a] == nil {
				shardOf[a] = make(map[int]bool)
			}
			shardOf[a][shard] = true
		},
		PublicAddr: mustAP("192.0.2.1:53"),
		ANSAddr:    mustAP("10.99.0.2:53"),
		Zone:       dnswire.MustName("foo.com"),
		Subnet:     netip.MustParsePrefix("192.0.2.0/24"),
		Fallback:   SchemeDNS,
		Auth:       testAuth(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	attacker := network.AddHost("mixed-lrs-farm", mustAddr("203.0.113.66"))
	network.SetLinkFaults(attacker, guardHost, netsim.Faults{
		Loss:      0.05,
		Duplicate: 0.05,
		Reorder:   0.10,
		Corrupt:   0.02,
		Jitter:    2 * time.Millisecond,
	})

	auth := g.cfg.Auth
	nc := cookie.NSCodec{}
	ipc := cookie.IPCodec{Subnet: netip.MustParsePrefix("192.0.2.0/24")}
	public := mustAP("192.0.2.1:53")
	www := dnswire.MustName("www.foo.com")
	rng := rand.New(rand.NewSource(77))

	const sources = 96
	sched.Go("torture", func() {
		for round := 0; round < 4; round++ {
			for i := 0; i < sources; i++ {
				src := netip.AddrPortFrom(netip.AddrFrom4([4]byte{198, 18, byte(i >> 8), byte(100 + i)}), uint16(2000+i))
				var wire []byte
				var dst netip.AddrPort
				switch i % 4 {
				case 0: // DNS-based scheme: query the fabricated NS name.
					fab, err := FabricateNSName(nc, auth.Mint(src.Addr()), www)
					if err != nil {
						t.Errorf("fabricate: %v", err)
						return
					}
					wire, _ = dnswire.NewQuery(uint16(i), fab, dnswire.TypeA).PackUDP(512)
					dst = public
				case 1: // IP-cookie scheme: query the fabricated address.
					addr, err := ipc.Encode(auth.Mint(src.Addr()))
					if err != nil {
						t.Errorf("ip encode: %v", err)
						return
					}
					wire, _ = dnswire.NewQuery(uint16(i), www, dnswire.TypeA).PackUDP(512)
					dst = netip.AddrPortFrom(addr, 53)
				case 2: // Modified-DNS scheme: explicit cookie extension.
					q := dnswire.NewQuery(uint16(i), www, dnswire.TypeA)
					AttachCookie(q, auth.Mint(src.Addr()), 3600)
					wire, _ = q.PackUDP(512)
					dst = public
				case 3: // Newcomer or garbage.
					if i%8 == 3 {
						wire, _ = dnswire.NewQuery(uint16(i), www, dnswire.TypeA).PackUDP(512)
					} else {
						wire = make([]byte, 4+rng.Intn(48))
						rng.Read(wire)
					}
					dst = public
				}
				_ = attacker.SendRaw(src, dst, wire)
				sched.Sleep(50 * time.Microsecond)
			}
			sched.Sleep(50 * time.Millisecond)
		}
		sched.Sleep(2 * time.Second)
	})
	sched.Run(5 * time.Minute)

	eng := g.Engine()
	used := make(map[int]bool)
	for src, shards := range shardOf {
		if len(shards) != 1 {
			t.Errorf("source %v handled by %d shards, want exactly 1", src, len(shards))
			continue
		}
		for shard := range shards {
			used[shard] = true
			if want := eng.ShardOf(src); shard != want {
				t.Errorf("source %v handled on shard %d, hash says %d", src, shard, want)
			}
		}
	}
	if len(used) < 2 {
		t.Errorf("only %d shard(s) carried traffic; want load spread", len(used))
	}

	st := g.Stats.Load()
	if st.Received == 0 || st.CookieValid == 0 || st.ForwardedToANS == 0 {
		t.Errorf("pipeline starved: %+v", st)
	}
	if st.FastPathHits == 0 {
		t.Error("verified-source fast path never hit despite repeated sources")
	}
	// Faulted links corrupt payloads; the guard must have eaten them quietly.
	if st.Malformed == 0 {
		t.Error("no malformed packets seen despite corruption faults")
	}
	// Everything the ANS saw went through cookie verification: its query
	// count cannot exceed what the guard forwarded.
	if srv.Stats.UDPQueries > st.ForwardedToANS {
		t.Errorf("ANS saw %d queries but guard forwarded only %d — leak",
			srv.Stats.UDPQueries, st.ForwardedToANS)
	}
	var handled uint64
	for i := 0; i < eng.Shards(); i++ {
		handled += eng.Stats(i).Handled
	}
	if handled != st.Received {
		t.Errorf("engine handled %d packets, guard received %d", handled, st.Received)
	}
}

// TestSurvivabilityTorture runs the mixed-scheme flood with the whole
// survivability layer armed at once: shard supervision absorbing injected
// handler panics, and the upstream breaker riding out a scripted mid-flood
// ANS blackout with failover to a secondary. The guard must come out the
// other side still verifying, with the primary restored, no shard tripped,
// and the no-leak invariant intact.
func TestSurvivabilityTorture(t *testing.T) {
	sched := vclock.New(4321)
	network := netsim.New(sched, 5*time.Millisecond)

	ansHost := network.AddHost("foo-ans", mustAddr("10.99.0.2"))
	srv, err := ans.New(ans.Config{
		Env: ansHost, Addr: mustAP("10.99.0.2:53"),
		Zone: zone.MustParse(fooZoneText, dnswire.Root),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	secHost := network.AddHost("foo-ans-2", mustAddr("10.99.0.3"))
	sec, err := ans.New(ans.Config{
		Env: secHost, Addr: mustAP("10.99.0.3:53"),
		Zone: zone.MustParse(fooZoneText, dnswire.Root),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sec.Start(); err != nil {
		t.Fatal(err)
	}

	guardHost := network.AddHost("guard", mustAddr("10.99.0.1"))
	guardHost.ClaimPrefix(netip.MustParsePrefix("192.0.2.0/24"))
	network.SetLatency(guardHost, ansHost, 100*time.Microsecond)
	network.SetLatency(guardHost, secHost, 100*time.Microsecond)
	tap, err := guardHost.OpenTap()
	if err != nil {
		t.Fatal(err)
	}

	poison := mustAddr("198.18.0.250")
	g, err := NewRemote(RemoteConfig{
		Env:         guardHost,
		IO:          TapIO{Tap: tap},
		Shards:      8,
		QueueDepth:  64,
		FastPathTTL: time.Hour,
		Observer: func(shard int, pkt Packet) {
			if pkt.Src.Addr() == poison {
				panic("torture: injected handler fault")
			}
		},
		PublicAddr:   mustAP("192.0.2.1:53"),
		ANSAddr:      mustAP("10.99.0.2:53"),
		ANSFallbacks: []netip.AddrPort{mustAP("10.99.0.3:53")},
		Health: HealthConfig{
			TimeoutThreshold: 3,
			Cooldown:         200 * time.Millisecond,
			SweepInterval:    50 * time.Millisecond,
		},
		Supervision:    engine.SupervisorConfig{Enabled: true, MaxRestarts: 50},
		PendingTimeout: 100 * time.Millisecond,
		Zone:           dnswire.MustName("foo.com"),
		Subnet:         netip.MustParsePrefix("192.0.2.0/24"),
		Fallback:       SchemeDNS,
		Auth:           testAuth(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	attacker := network.AddHost("mixed-lrs-farm", mustAddr("203.0.113.66"))
	network.SetLinkFaults(attacker, guardHost, netsim.Faults{
		Loss:    0.05,
		Reorder: 0.10,
		Jitter:  2 * time.Millisecond,
	})

	// Script the outage up front: the primary ANS goes completely dark
	// 20ms in, for 150ms — squarely inside the flood.
	network.IsolateFor(ansHost, 20*time.Millisecond, 150*time.Millisecond)

	auth := g.cfg.Auth
	nc := cookie.NSCodec{}
	public := mustAP("192.0.2.1:53")
	www := dnswire.MustName("www.foo.com")

	const sources, poisonPkts = 64, 4
	sched.Go("torture", func() {
		for i := 0; i < poisonPkts; i++ {
			// Panic packets land first so restarts happen under load.
			q, _ := dnswire.NewQuery(uint16(9000+i), www, dnswire.TypeA).PackUDP(512)
			_ = attacker.SendRaw(netip.AddrPortFrom(poison, 4444), public, q)
		}
		for round := 0; round < 6; round++ {
			for i := 0; i < sources; i++ {
				src := netip.AddrPortFrom(netip.AddrFrom4([4]byte{198, 18, 1, byte(100 + i)}), uint16(2000+i))
				fab, err := FabricateNSName(nc, auth.Mint(src.Addr()), www)
				if err != nil {
					t.Errorf("fabricate: %v", err)
					return
				}
				wire, _ := dnswire.NewQuery(uint16(round*sources+i), fab, dnswire.TypeA).PackUDP(512)
				_ = attacker.SendRaw(src, public, wire)
				sched.Sleep(100 * time.Microsecond)
			}
			sched.Sleep(40 * time.Millisecond)
		}
		sched.Sleep(2 * time.Second)
	})
	sched.Run(5 * time.Minute)

	eng := g.Engine()
	sup := eng.Supervision()
	if sup.ShardRestarts < poisonPkts {
		t.Errorf("shard restarts = %d, want >= %d (one per poison packet)", sup.ShardRestarts, poisonPkts)
	}
	if sup.PanicsQuarantined != sup.ShardRestarts {
		t.Errorf("quarantined %d != restarts %d", sup.PanicsQuarantined, sup.ShardRestarts)
	}
	if sup.ShardsTripped != 0 {
		t.Errorf("%d shards tripped; budget should have absorbed the faults", sup.ShardsTripped)
	}

	st := g.Stats.Load()
	if st.BreakerOpens == 0 || st.BreakerCloses == 0 {
		t.Errorf("breaker never cycled: opens=%d closes=%d", st.BreakerOpens, st.BreakerCloses)
	}
	if st.Failovers == 0 || sec.Stats.UDPQueries == 0 {
		t.Errorf("no failover traffic: failovers=%d secondary-queries=%d", st.Failovers, sec.Stats.UDPQueries)
	}
	if st.ProbesSent == 0 {
		t.Error("no half-open probes sent")
	}
	for i := 0; i < g.Engine().Shards(); i++ {
		if s := g.BreakerState(i, mustAP("10.99.0.2:53")); s != 0 {
			t.Errorf("shard %d primary breaker = %d after heal, want 0 (closed)", i, s)
		}
	}
	if st.CookieValid == 0 || st.FailClosedDrops != 0 {
		t.Errorf("pipeline wrong under outage: valid=%d failClosed=%d", st.CookieValid, st.FailClosedDrops)
	}
	// No-leak invariant across BOTH upstreams.
	if total := srv.Stats.UDPQueries + sec.Stats.UDPQueries; total > st.ForwardedToANS {
		t.Errorf("upstreams saw %d queries, guard forwarded %d — leak", total, st.ForwardedToANS)
	}
	// Engine-handled accounting: every packet either reached the guard
	// pipeline or is sitting in quarantine.
	var handled uint64
	for i := 0; i < eng.Shards(); i++ {
		handled += eng.Stats(i).Handled
	}
	if handled != st.Received+sup.PanicsQuarantined {
		t.Errorf("handled %d != received %d + quarantined %d",
			handled, st.Received, sup.PanicsQuarantined)
	}
}
