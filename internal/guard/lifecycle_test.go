package guard

// Lifecycle contract: Drain refuses new cookie exchanges while verified
// traffic completes, quiesces the NAT table, and drives the state machine
// serving→draining→quiesced; Resume reopens; Ready gates on lifecycle,
// keyring epoch, and backlog.

import (
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"dnsguard/internal/dnswire"
)

func TestLifecycleDrainQuiesces(t *testing.T) {
	f := newRootFixture(t, nil)
	g := f.guard
	attacker := f.net.AddHost("attacker", mustAddr("203.0.113.66"))
	f.run(t, func() {
		if g.Lifecycle() != LifecycleServing {
			t.Errorf("initial lifecycle = %v, want serving", g.Lifecycle())
		}
		// Establish one verified client so the guard has real state.
		if _, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA); err != nil {
			t.Errorf("pre-drain resolve: %v", err)
			return
		}
		if err := g.Drain(context.Background()); err != nil {
			t.Errorf("Drain: %v", err)
			return
		}
		if g.Lifecycle() != LifecycleQuiesced {
			t.Errorf("post-drain lifecycle = %v, want quiesced", g.Lifecycle())
		}
		if g.PendingEntries() != 0 {
			t.Errorf("pending entries after drain = %d, want 0", g.PendingEntries())
		}
		// A newcomer arriving mid-drain gets nothing: no grant, no TC.
		grantsBefore := g.Stats.Load().NewcomerGrants
		q, _ := dnswire.NewQuery(7, dnswire.MustName("mail.foo.com"), dnswire.TypeA).PackUDP(512)
		src := netip.AddrPortFrom(mustAddr("172.16.9.9"), 1234)
		_ = attacker.SendRaw(src, mustAP("198.41.0.4:53"), q)
		f.sched.Sleep(50 * time.Millisecond)
		if got := g.Stats.Load().NewcomerGrants; got != grantsBefore {
			t.Errorf("newcomer granted during quiesce (grants %d -> %d)", grantsBefore, got)
		}
		if st := g.LifecycleStats(); st.DrainDropped != 1 || st.Drains != 1 {
			t.Errorf("lifecycle stats = %+v, want DrainDropped 1, Drains 1", st)
		}

		// Resume reopens the newcomer path.
		g.Resume()
		if g.Lifecycle() != LifecycleServing {
			t.Errorf("post-resume lifecycle = %v, want serving", g.Lifecycle())
		}
		_ = attacker.SendRaw(src, mustAP("198.41.0.4:53"), q)
		f.sched.Sleep(50 * time.Millisecond)
		if got := g.Stats.Load().NewcomerGrants; got != grantsBefore+1 {
			t.Errorf("newcomer not granted after Resume (grants %d -> %d)", grantsBefore, got)
		}
	})
}

func TestLifecycleReadinessGates(t *testing.T) {
	f := newRootFixture(t, nil)
	g := f.guard
	f.run(t, func() {
		if err := g.Ready(0); err != nil {
			t.Errorf("serving guard not ready: %v", err)
		}
		if err := g.Healthz(); err != nil {
			t.Errorf("serving guard not healthy: %v", err)
		}
		// A keyring epoch requirement ahead of the guard's blocks readiness.
		if err := g.Ready(g.KeyringEpoch() + 1); !errors.Is(err, ErrNotReady) {
			t.Errorf("Ready(epoch+1) = %v, want ErrNotReady", err)
		}
		if err := g.Drain(context.Background()); err != nil {
			t.Errorf("Drain: %v", err)
			return
		}
		if err := g.Ready(0); !errors.Is(err, ErrNotReady) {
			t.Errorf("quiesced guard reports ready (%v)", err)
		}
		if err := g.Healthz(); err != nil {
			t.Errorf("quiesced guard must stay live: %v", err)
		}
		g.BeginRestart()
		if g.Lifecycle() != LifecycleRestarting {
			t.Errorf("lifecycle = %v, want restarting", g.Lifecycle())
		}
		// The replacement instance pattern: warming serves and is ready once
		// its epoch is current.
		g.WarmStart()
		if err := g.Ready(g.KeyringEpoch()); err != nil {
			t.Errorf("warming guard with a current keyring not ready: %v", err)
		}
		g.MarkServing()
		if g.Lifecycle() != LifecycleServing {
			t.Errorf("lifecycle = %v, want serving", g.Lifecycle())
		}
	})
	g.Close()
	if err := g.Healthz(); err == nil {
		t.Error("closed guard reports healthy")
	}
	if err := g.Ready(0); !errors.Is(err, ErrNotReady) {
		t.Errorf("closed guard Ready = %v, want ErrNotReady", err)
	}
}
