package guard

import (
	"net/netip"
	"testing"
	"time"

	"dnsguard/internal/ans"
	"dnsguard/internal/dnswire"
	"dnsguard/internal/netsim"
	"dnsguard/internal/resolver"
	"dnsguard/internal/vclock"
	"dnsguard/internal/zone"
)

func mustAddr(s string) netip.Addr   { return netip.MustParseAddr(s) }
func mustAP(s string) netip.AddrPort { return netip.MustParseAddrPort(s) }

const rootZoneText = `
.    86400 IN SOA a.root.example. host.example. 1 7200 600 360000 60
.    86400 IN NS  a.root.example.
a.root.example. 86400 IN A 198.41.0.4
com. 86400 IN NS a.gtld.example.
a.gtld.example. 86400 IN A 192.5.6.30
org. 86400 IN NS a.org.example.
a.org.example. 86400 IN A 192.5.6.40
`

const comZoneText = `
$ORIGIN com.
@ 86400 IN SOA a.gtld.example. host.example. 1 7200 600 360000 60
@ 86400 IN NS a.gtld.example.
foo 86400 IN NS ns1.foo.com.
ns1.foo.com. 86400 IN A 192.0.2.1
`

const fooZoneText = `
$ORIGIN foo.com.
@ 3600 IN SOA ns1 admin 1 7200 600 360000 60
@ 3600 IN NS ns1
ns1 3600 IN A 192.0.2.1
www 300 IN A 198.51.100.10
mail 300 IN A 198.51.100.11
`

// rootFixture: a guard protecting the root ANS; com and foo.com are plain
// unguarded servers. This exercises the referral (NS-name) variant.
type rootFixture struct {
	sched *vclock.Scheduler
	net   *netsim.Network
	guard *Remote
	root  *ans.Server
	lrs   *netsim.Host
	res   *resolver.Resolver
	hosts map[string]*netsim.Host
}

func newRootFixture(t *testing.T, mutate func(*RemoteConfig)) *rootFixture {
	t.Helper()
	sched := vclock.New(21)
	network := netsim.New(sched, 5*time.Millisecond)
	f := &rootFixture{sched: sched, net: network, hosts: map[string]*netsim.Host{}}

	// Real root ANS on a private address.
	rootHost := network.AddHost("root-ans", mustAddr("10.99.0.2"))
	f.hosts["root-ans"] = rootHost
	rootSrv, err := ans.New(ans.Config{
		Env: rootHost, Addr: mustAP("10.99.0.2:53"),
		Zone: zone.MustParse(rootZoneText, dnswire.Root),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rootSrv.Start(); err != nil {
		t.Fatal(err)
	}
	f.root = rootSrv

	// Guard claims the public root address.
	guardHost := network.AddHost("guard", mustAddr("10.99.0.1"))
	f.hosts["guard"] = guardHost
	guardHost.ClaimAddr(mustAddr("198.41.0.4"))
	network.SetLatency(guardHost, rootHost, 100*time.Microsecond)
	tap, err := guardHost.OpenTap()
	if err != nil {
		t.Fatal(err)
	}
	cfg := RemoteConfig{
		Env:        guardHost,
		IO:         TapIO{Tap: tap},
		PublicAddr: mustAP("198.41.0.4:53"),
		ANSAddr:    mustAP("10.99.0.2:53"),
		Zone:       dnswire.Root,
		Fallback:   SchemeDNS,
		Auth:       testAuth(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := NewRemote(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	f.guard = g

	// Unguarded com and foo servers.
	for _, hz := range []struct{ name, ip, text string }{
		{"com-ans", "192.5.6.30", comZoneText},
		{"foo-ans", "192.0.2.1", fooZoneText},
	} {
		h := network.AddHost(hz.name, mustAddr(hz.ip))
		f.hosts[hz.name] = h
		srv, err := ans.New(ans.Config{
			Env: h, Addr: netip.AddrPortFrom(h.Addr(), 53),
			Zone: zone.MustParse(hz.text, dnswire.Root),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
	}

	f.lrs = network.AddHost("lrs", mustAddr("10.0.0.53"))
	res, err := resolver.New(resolver.Config{
		Env:       f.lrs,
		RootHints: []netip.AddrPort{mustAP("198.41.0.4:53")},
		Timeout:   500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.res = res
	return f
}

func (f *rootFixture) run(t *testing.T, fn func()) {
	t.Helper()
	f.sched.Go("test", fn)
	f.sched.Run(30 * time.Second)
}

func TestGuardedRootResolution(t *testing.T) {
	f := newRootFixture(t, nil)
	f.run(t, func() {
		res, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA)
		if err != nil {
			t.Errorf("Resolve: %v (guard stats %+v)", err, f.guard.Stats)
			return
		}
		if len(res.Answers) != 1 || res.Answers[0].Data.(*dnswire.AData).Addr != mustAddr("198.51.100.10") {
			t.Errorf("answers = %v", res.Answers)
		}
	})
	st := f.guard.Stats
	if st.NewcomerGrants != 1 {
		t.Errorf("grants = %d, want 1", st.NewcomerGrants)
	}
	if st.CookieValid != 1 {
		t.Errorf("valid = %d, want 1", st.CookieValid)
	}
	if st.ForwardedToANS != 1 {
		t.Errorf("forwarded = %d, want 1 (only the verified cookie query)", st.ForwardedToANS)
	}
	if f.root.Stats.UDPQueries != 1 {
		t.Errorf("root ANS saw %d queries, want 1", f.root.Stats.UDPQueries)
	}
}

func TestGuardedRootSiblingTLDSkipsRoot(t *testing.T) {
	f := newRootFixture(t, nil)
	f.run(t, func() {
		if _, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA); err != nil {
			t.Errorf("first: %v", err)
			return
		}
		// A different name under com: the LRS has cached the fabricated
		// com NS and its addresses, so the root guard sees nothing new.
		before := f.guard.Stats.Received
		if _, err := f.res.Resolve(dnswire.MustName("foo.com"), dnswire.TypeNS); err != nil {
			t.Errorf("second: %v", err)
			return
		}
		if f.guard.Stats.Received != before {
			t.Errorf("root guard saw %d extra packets; cached delegation should bypass it",
				f.guard.Stats.Received-before)
		}
	})
}

func TestGuardDropsSpoofedFlood(t *testing.T) {
	f := newRootFixture(t, func(c *RemoteConfig) {
		c.RL1.PerSourceRate = 100
		c.RL1.PerSourceBurst = 20
		c.RL1.GlobalRate = 1000
		c.RL1.GlobalBurst = 100
		c.RL1.TrackedSources = 1024
	})
	attacker := f.net.AddHost("attacker", mustAddr("203.0.113.66"))
	const floodPkts = 2000

	f.sched.Go("attacker", func() {
		q, _ := dnswire.NewQuery(99, dnswire.MustName("www.foo.com"), dnswire.TypeA).PackUDP(512)
		for i := 0; i < floodPkts; i++ {
			src := netip.AddrPortFrom(netip.AddrFrom4([4]byte{172, 16, byte(i >> 8), byte(i)}), 1234)
			_ = attacker.SendRaw(src, mustAP("198.41.0.4:53"), q)
			f.sched.Sleep(10 * time.Microsecond)
		}
	})
	f.run(t, func() {
		f.sched.Sleep(time.Second) // let the flood land
		res, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA)
		if err != nil {
			t.Errorf("legit resolution failed under flood: %v", err)
			return
		}
		if len(res.Answers) == 0 {
			t.Error("no answers")
		}
	})
	// Spoofed packets must never reach the ANS: it sees only the one
	// verified query.
	if f.root.Stats.UDPQueries != 1 {
		t.Errorf("root ANS saw %d queries under spoofed flood, want 1", f.root.Stats.UDPQueries)
	}
	// RL1 must have suppressed most cookie grants.
	if f.guard.Stats.RL1Dropped == 0 {
		t.Error("RL1 never engaged during flood")
	}
	if f.guard.Stats.NewcomerGrants > floodPkts/2 {
		t.Errorf("grants = %d of %d flood packets; reflector protection too weak",
			f.guard.Stats.NewcomerGrants, floodPkts)
	}
}

func TestGuardDropsForgedCookieLabels(t *testing.T) {
	f := newRootFixture(t, nil)
	attacker := f.net.AddHost("attacker", mustAddr("203.0.113.66"))
	f.run(t, func() {
		// Forged cookie queries with wrong hex values.
		for i := 0; i < 100; i++ {
			name := dnswire.MustName(string(rune('a'+i%26)) + "r0000000" + string(rune('a'+i%16)) + "com")
			_ = name
			q, _ := dnswire.NewQuery(uint16(i), dnswire.MustName("pr00000000com"), dnswire.TypeA).PackUDP(512)
			src := netip.AddrPortFrom(netip.AddrFrom4([4]byte{172, 16, 0, byte(i)}), 1234)
			_ = attacker.SendRaw(src, mustAP("198.41.0.4:53"), q)
		}
		f.sched.Sleep(time.Second)
	})
	if f.guard.Stats.CookieInvalid != 100 {
		t.Errorf("invalid = %d, want 100", f.guard.Stats.CookieInvalid)
	}
	if f.root.Stats.UDPQueries != 0 {
		t.Errorf("ANS saw %d forged queries", f.root.Stats.UDPQueries)
	}
}

func TestGuardKeyRotation(t *testing.T) {
	f := newRootFixture(t, nil)
	f.run(t, func() {
		if _, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA); err != nil {
			t.Errorf("first: %v", err)
			return
		}
		// Rotate once: cached cookies (previous generation) must survive.
		if err := f.guard.cfg.Auth.Rotate(); err != nil {
			t.Errorf("Rotate: %v", err)
			return
		}
		f.res.Cache().Flush() // force full re-resolution with...
		// Flushing would discard the cookie; instead simulate an LRS that
		// kept only the fabricated NS record by re-resolving a new name.
		if _, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA); err != nil {
			t.Errorf("after rotation: %v", err)
		}
	})
	if f.guard.Stats.CookieInvalid != 0 {
		t.Errorf("invalid = %d after one rotation, want 0", f.guard.Stats.CookieInvalid)
	}
}

func TestGuardThresholdActivation(t *testing.T) {
	f := newRootFixture(t, func(c *RemoteConfig) { c.ActivationThreshold = 5000 })
	f.run(t, func() {
		// Low rate: passthrough, no cookies.
		if _, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA); err != nil {
			t.Errorf("Resolve: %v", err)
			return
		}
	})
	if f.guard.Stats.Passthrough == 0 {
		t.Error("expected passthrough below threshold")
	}
	if f.guard.Stats.NewcomerGrants != 0 {
		t.Errorf("grants = %d below threshold, want 0", f.guard.Stats.NewcomerGrants)
	}
	if f.guard.Active() {
		t.Error("guard active below threshold")
	}

	// Now flood past the threshold and sample the activation state while
	// the flood is still running (it decays back below threshold after).
	attacker := f.net.AddHost("attacker", mustAddr("203.0.113.66"))
	activeDuring := false
	f.sched.Go("flood", func() {
		q, _ := dnswire.NewQuery(1, dnswire.MustName("x.com"), dnswire.TypeA).PackUDP(512)
		for i := 0; i < 20000; i++ {
			src := netip.AddrPortFrom(netip.AddrFrom4([4]byte{172, 16, byte(i >> 8), byte(i)}), 1234)
			_ = attacker.SendRaw(src, mustAP("198.41.0.4:53"), q)
			f.sched.Sleep(50 * time.Microsecond) // 20K/s
			if i == 19000 {
				activeDuring = f.guard.Active()
			}
		}
	})
	f.sched.Run(60 * time.Second)
	if !activeDuring {
		t.Error("guard not active during above-threshold flood")
	}
	if f.guard.Stats.NewcomerGrants == 0 && f.guard.Stats.RL1Dropped == 0 {
		t.Error("spoof detection never engaged")
	}
}

func TestGuardApexQueryRedirectsToTCP(t *testing.T) {
	f := newRootFixture(t, nil)
	f.run(t, func() {
		conn, err := f.lrs.ListenUDP(netip.AddrPort{})
		if err != nil {
			t.Errorf("bind: %v", err)
			return
		}
		defer conn.Close()
		// Query the root apex itself (no child label to fabricate).
		q, _ := dnswire.NewQuery(5, dnswire.Root, dnswire.TypeNS).PackUDP(512)
		_ = conn.WriteTo(q, mustAP("198.41.0.4:53"))
		payload, _, err := conn.ReadFrom(time.Second)
		if err != nil {
			t.Errorf("no response: %v", err)
			return
		}
		resp, err := dnswire.Unpack(payload)
		if err != nil {
			t.Errorf("unpack: %v", err)
			return
		}
		if !resp.Flags.TC {
			t.Errorf("apex query response lacks TC; flags=%+v", resp.Flags)
		}
	})
}

func TestGuardRefusesOutOfZone(t *testing.T) {
	// Guard a leaf zone and ask it for an unrelated name.
	f := newLeafFixture(t, nil)
	f.run(t, func() {
		conn, err := f.lrs.ListenUDP(netip.AddrPort{})
		if err != nil {
			return
		}
		defer conn.Close()
		q, _ := dnswire.NewQuery(5, dnswire.MustName("bar.org"), dnswire.TypeA).PackUDP(512)
		_ = conn.WriteTo(q, mustAP("192.0.2.1:53"))
		payload, _, err := conn.ReadFrom(time.Second)
		if err != nil {
			t.Errorf("no response: %v", err)
			return
		}
		resp, _ := dnswire.Unpack(payload)
		if resp.Flags.RCode != dnswire.RCodeRefused {
			t.Errorf("rcode = %v, want REFUSED", resp.Flags.RCode)
		}
	})
}

// TestGuardRejectsSpoofedUpstreamAnswers lives in kaminsky_pack_test.go
// (package guard_test): the hand-rolled ID-sweep attacker it used to carry
// was promoted into the workload package's "kaminsky-sweep" campaign pack,
// and the test is now a thin wrapper driving that pack against the same
// root fixture.
