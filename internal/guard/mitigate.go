// Layered auto-mitigation selector. The paper runs one defense statically;
// operational follow-ups (Rizvi et al.'s layered root-DNS defense, Wei &
// Heidemann's multi-phase spoofing campaigns) chain escalating mitigations
// per attack class instead. The selector is that chain for this guard: a
// small state machine sampling the guard's own counters on a fixed period
// and walking a ladder of rungs, each cumulative over the ones below it:
//
//	LayerPassthrough  relay everything; the guard only watches rates
//	LayerThreshold    the configured ActivationThreshold behavior (§IV-C)
//	LayerCookies      spoof detection forced on regardless of input rate
//	LayerTCPFallback  cookies, and newcomers are TC-redirected to TCP
//	LayerSourceLimit  all of the above with limiters tightened StrictFactor×
//
// Each attack class has a documented terminal rung — the point past which
// more mitigation costs legitimate traffic without further protecting the
// ANS: a poisoning sweep targets the upstream path, so forcing cookies
// (which shrinks that path to verified queries) is terminal; water torture
// burns CPU on per-name cookie grants, so TC redirection (the cheapest
// possible reply, and one that forces attackers to complete handshakes) is
// terminal; a spoofed flood with source churn defeats per-source state, so
// the tightened global/per-source limiters are terminal.
//
// Escalation and de-escalation are both hysteretic: climb one rung after
// EscalateAfter consecutive hot samples, descend one rung after
// DeescalateAfter consecutive confidently-calm samples (every signal below
// CalmFactor of its trigger) and only after MinHold at the current rung. A
// re-escalation shortly after a descent is flap evidence: the next hold is
// extended FlapHoldFactor×, so an attacker cannot oscillate the guard by
// pulsing its flood.
package guard

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"

	"dnsguard/internal/dnswire"
	"dnsguard/internal/metrics"
	"dnsguard/internal/ratelimit"
)

// AttackClass is the selector's belief about what is hitting the guard.
type AttackClass int32

// Attack classes, ordered by classification priority.
const (
	// ClassNone: no signal above threshold.
	ClassNone AttackClass = iota
	// ClassSpoofFlood: high cookie-less or invalid-cookie pressure with
	// low question diversity (the paper's Figure 5/6 floods, including
	// catchment churn across spoofed source populations).
	ClassSpoofFlood
	// ClassWaterTorture: high newcomer pressure spread over many distinct
	// question names (random-subdomain floods).
	ClassWaterTorture
	// ClassPoisoning: datagrams failing the upstream source/question
	// validation (Kaminsky-style transaction-ID sweeps).
	ClassPoisoning
)

func (c AttackClass) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassSpoofFlood:
		return "spoof-flood"
	case ClassWaterTorture:
		return "water-torture"
	case ClassPoisoning:
		return "poisoning"
	default:
		return fmt.Sprintf("class(%d)", int32(c))
	}
}

// MitigationLayer is a rung on the mitigation ladder. Rungs are cumulative:
// each applies every control below it.
type MitigationLayer int32

// The ladder, bottom to top.
const (
	LayerPassthrough MitigationLayer = iota
	LayerThreshold
	LayerCookies
	LayerTCPFallback
	LayerSourceLimit
)

func (l MitigationLayer) String() string {
	switch l {
	case LayerPassthrough:
		return "passthrough"
	case LayerThreshold:
		return "threshold"
	case LayerCookies:
		return "cookies"
	case LayerTCPFallback:
		return "tcp-fallback"
	case LayerSourceLimit:
		return "source-limit"
	default:
		return fmt.Sprintf("layer(%d)", int32(l))
	}
}

// TerminalLayer reports the documented maximum rung for an attack class —
// the point past which further escalation stops paying (see the package
// comment for the per-class rationale).
func TerminalLayer(c AttackClass) MitigationLayer {
	switch c {
	case ClassSpoofFlood:
		return LayerSourceLimit
	case ClassWaterTorture:
		return LayerTCPFallback
	case ClassPoisoning:
		return LayerCookies
	default:
		return LayerPassthrough
	}
}

// MitigationConfig parameterizes the layered auto-mitigation selector.
// Rates are packets/second; every zero field takes the documented default.
type MitigationConfig struct {
	// Enabled arms the selector. Disarmed (the default), the guard keeps
	// the paper's static behavior exactly: the selector never runs and no
	// control override is applied.
	Enabled bool
	// Interval is the sampling period. 0 means 200ms.
	Interval time.Duration
	// FloodRate is the attack-pressure rate (newcomer grants + RL1 drops +
	// invalid cookies, or raw input while the guard is passthrough-blind)
	// that marks a sample hot. 0 means 500/s.
	FloodRate float64
	// PoisonRate is the upstream-validation-failure rate (spoofed + stray
	// datagrams on the ANS-facing socket) that marks poisoning. 0 means 50/s.
	PoisonRate float64
	// DiverseNames is the estimated count of distinct newcomer question
	// names per sample above which hot flood pressure classifies as water
	// torture rather than a spoofed flood. 0 means 64.
	DiverseNames float64
	// CalmFactor scales every threshold for the de-escalation check: a
	// sample is confidently calm only when all signals sit below
	// CalmFactor×threshold. Samples in the gray zone between hold the
	// current rung. 0 means 0.25.
	CalmFactor float64
	// EscalateAfter is the consecutive hot samples required to climb one
	// rung. 0 means 2.
	EscalateAfter int
	// DeescalateAfter is the consecutive calm samples required to descend
	// one rung. 0 means 5.
	DeescalateAfter int
	// MinHold is the minimum dwell at a rung before descending. 0 means 2s.
	MinHold time.Duration
	// FlapWindow: a re-escalation within this of the last descent counts as
	// a flap and extends the next hold. 0 means 10s.
	FlapWindow time.Duration
	// FlapHoldFactor multiplies MinHold for the flap-extended hold. 0 means 4.
	FlapHoldFactor int
	// StrictFactor divides every limiter rate and burst at LayerSourceLimit.
	// 0 means 10.
	StrictFactor float64
}

func (c *MitigationConfig) normalize() {
	if c.Interval <= 0 {
		c.Interval = 200 * time.Millisecond
	}
	if c.FloodRate <= 0 {
		c.FloodRate = 500
	}
	if c.PoisonRate <= 0 {
		c.PoisonRate = 50
	}
	if c.DiverseNames <= 0 {
		c.DiverseNames = 64
	}
	if c.CalmFactor <= 0 || c.CalmFactor >= 1 {
		c.CalmFactor = 0.25
	}
	if c.EscalateAfter <= 0 {
		c.EscalateAfter = 2
	}
	if c.DeescalateAfter <= 0 {
		c.DeescalateAfter = 5
	}
	if c.MinHold <= 0 {
		c.MinHold = 2 * time.Second
	}
	if c.FlapWindow <= 0 {
		c.FlapWindow = 10 * time.Second
	}
	if c.FlapHoldFactor <= 0 {
		c.FlapHoldFactor = 4
	}
	if c.StrictFactor <= 1 {
		c.StrictFactor = 10
	}
}

// MitigationStats counts selector activity. Fields are written atomically.
type MitigationStats struct {
	Samples               uint64 // selector evaluations
	Escalations           uint64 // rungs climbed
	Deescalations         uint64 // rungs descended
	FlapHolds             uint64 // holds extended by flap suppression
	SpoofFloodIntervals   uint64 // samples classified spoof-flood
	WaterTortureIntervals uint64 // samples classified water-torture
	PoisoningIntervals    uint64 // samples classified poisoning
}

// MitigationState is a read-only snapshot of the selector, exposed through
// Remote.Mitigation.
type MitigationState struct {
	Layer    MitigationLayer
	MaxLayer MitigationLayer // highest rung reached since start
	Class    AttackClass     // last non-none classification (none after full descent)
	Stats    MitigationStats
}

// mitSample is one interval's signal vector, pre-reduced to rates so the
// state machine itself is pure and environment-free (table-driven tests
// feed it directly).
type mitSample struct {
	in      float64 // total ingress: received + engine-shed, pkts/s
	grants  float64 // cookie-less pressure: newcomer grants + RL1 drops, pkts/s
	invalid float64 // failed cookie verifications, pkts/s
	poison  float64 // upstream datagrams failing source/question checks, pkts/s
	names   float64 // estimated distinct newcomer question names this interval
}

// mitigator is the selector state machine. step runs only on the selector
// proc; layer/class/maxLayer are atomics because metrics closures and the
// dataplane read them concurrently under real clocks.
type mitigator struct {
	cfg      MitigationConfig
	layer    atomic.Int32
	class    atomic.Int32
	maxLayer atomic.Int32
	sketch   nameSketch
	stats    MitigationStats

	// step-proc-private transition state.
	hot, calm    int
	lastChange   time.Duration
	lastDescend  time.Duration
	hasDescended bool
	holdUntil    time.Duration
}

func newMitigator(cfg MitigationConfig) *mitigator {
	cfg.normalize()
	return &mitigator{cfg: cfg}
}

// classify maps a sample to an attack class with every threshold scaled by
// f (1 for the hot check, CalmFactor for the confidently-calm check).
// Priority: poisoning over water torture over spoofed flood — the rarer,
// more specific signal wins. Raw input volume alone only classifies while
// the guard is passthrough-blind (below LayerCookies nothing populates the
// grant/invalid signals); once cookies are checking, verified volume is
// goodput, not attack evidence.
func (m *mitigator) classify(s mitSample, f float64) AttackClass {
	blind := MitigationLayer(m.layer.Load()) < LayerCookies
	switch {
	case s.poison >= f*m.cfg.PoisonRate:
		return ClassPoisoning
	case s.grants+s.invalid >= f*m.cfg.FloodRate:
		if s.names >= f*m.cfg.DiverseNames {
			return ClassWaterTorture
		}
		return ClassSpoofFlood
	case blind && s.in >= f*m.cfg.FloodRate:
		return ClassSpoofFlood
	}
	return ClassNone
}

// step advances the ladder by at most one rung for one sample.
func (m *mitigator) step(now time.Duration, s mitSample) {
	atomic.AddUint64(&m.stats.Samples, 1)
	class := m.classify(s, 1)
	switch class {
	case ClassSpoofFlood:
		atomic.AddUint64(&m.stats.SpoofFloodIntervals, 1)
	case ClassWaterTorture:
		atomic.AddUint64(&m.stats.WaterTortureIntervals, 1)
	case ClassPoisoning:
		atomic.AddUint64(&m.stats.PoisoningIntervals, 1)
	}
	if class != ClassNone {
		m.class.Store(int32(class))
	}
	layer := MitigationLayer(m.layer.Load())
	term := TerminalLayer(class)
	switch {
	case layer < term:
		m.calm = 0
		m.hot++
		if m.hot >= m.cfg.EscalateAfter {
			m.escalate(now)
		}
	case layer > term:
		m.hot = 0
		// Hysteresis: when the sample is merely not-hot (gray zone between
		// CalmFactor×threshold and threshold) hold the rung without
		// advancing either counter. A hot sample of a lower-terminal class
		// does count toward descent — the guard is over-mitigated for what
		// it now sees.
		if class == ClassNone && m.classify(s, m.cfg.CalmFactor) != ClassNone {
			return
		}
		m.calm++
		if m.calm >= m.cfg.DeescalateAfter && now >= m.holdUntil && now-m.lastChange >= m.cfg.MinHold {
			m.deescalate(now)
		}
	default: // at the terminal rung for the current class
		m.hot, m.calm = 0, 0
	}
}

func (m *mitigator) escalate(now time.Duration) {
	if m.hasDescended && now-m.lastDescend <= m.cfg.FlapWindow {
		// Flap suppression: climbing right after a descent means the
		// attack paused just long enough to lure us down. Extend the next
		// hold so the oscillation cannot continue at the attacker's tempo.
		m.holdUntil = now + time.Duration(m.cfg.FlapHoldFactor)*m.cfg.MinHold
		atomic.AddUint64(&m.stats.FlapHolds, 1)
	}
	l := m.layer.Add(1)
	m.hot = 0
	m.lastChange = now
	if l > m.maxLayer.Load() {
		m.maxLayer.Store(l)
	}
	atomic.AddUint64(&m.stats.Escalations, 1)
}

func (m *mitigator) deescalate(now time.Duration) {
	l := m.layer.Add(-1)
	m.calm = 0
	m.lastChange = now
	m.lastDescend = now
	m.hasDescended = true
	atomic.AddUint64(&m.stats.Deescalations, 1)
	if MitigationLayer(l) == LayerPassthrough {
		m.class.Store(int32(ClassNone))
	}
}

func (m *mitigator) snapshot() MitigationState {
	return MitigationState{
		Layer:    MitigationLayer(m.layer.Load()),
		MaxLayer: MitigationLayer(m.maxLayer.Load()),
		Class:    AttackClass(m.class.Load()),
		Stats:    metrics.SnapshotUint64(&m.stats),
	}
}

// nameSketch estimates the distinct newcomer question names seen since the
// last drain: a 1024-bit linear-counting bitmap over an FNV-1a hash. Shard
// workers set bits concurrently (one CAS-or per newcomer); the selector
// drains once per sample. The estimate only feeds a threshold compare, so
// the ±few-percent linear-counting error is irrelevant.
type nameSketch struct {
	words [16]atomic.Uint64
}

func (n *nameSketch) observe(name dnswire.Name) {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	bit := h & 1023
	w := &n.words[bit>>6]
	mask := uint64(1) << (bit & 63)
	for {
		old := w.Load()
		if old&mask != 0 || w.CompareAndSwap(old, old|mask) {
			return
		}
	}
}

// drain returns the linear-counting estimate and clears the bitmap.
func (n *nameSketch) drain() float64 {
	set := 0
	for i := range n.words {
		set += bits.OnesCount64(n.words[i].Swap(0))
	}
	const m = 1024.0
	switch {
	case set == 0:
		return 0
	case set >= int(m):
		return m * 7 // saturated bitmap: report "a lot", avoid ln(0)
	}
	return m * math.Log(m/(m-float64(set)))
}

// Selector-side plumbing on the guard ---------------------------------------

// Control modes the selector can impose on the activation decision.
const (
	mitAuto        int32 = iota // defer to ActivationThreshold (the paper's behavior)
	mitForcePass                // relay everything (ladder bottom)
	mitForceActive              // spoof detection on regardless of input rate
)

// Mitigation returns a snapshot of the layered auto-mitigation selector
// (zero-valued, layer passthrough, when the selector is disarmed).
func (g *Remote) Mitigation() MitigationState { return g.mit.snapshot() }

// mitigateLoop is the "guard-mitigate" proc: sample the guard counters
// every Interval, advance the ladder, apply the rung's controls.
func (g *Remote) mitigateLoop() {
	prev := g.Stats.Load()
	prevShed := g.shedNew()
	prevT := g.now()
	for !g.closed.Load() {
		g.cfg.Env.Sleep(g.cfg.Mitigation.Interval)
		if g.closed.Load() {
			return
		}
		cur := g.Stats.Load()
		shed := g.shedNew()
		now := g.now()
		dt := (now - prevT).Seconds()
		if dt <= 0 {
			continue
		}
		s := mitSample{
			in:      float64(cur.Received-prev.Received+shed-prevShed) / dt,
			grants:  float64(cur.NewcomerGrants-prev.NewcomerGrants+cur.RL1Dropped-prev.RL1Dropped) / dt,
			invalid: float64(cur.CookieInvalid-prev.CookieInvalid) / dt,
			poison:  float64(cur.UpstreamSpoofed-prev.UpstreamSpoofed+cur.UpstreamStrays-prev.UpstreamStrays) / dt,
			names:   g.mit.sketch.drain(),
		}
		g.mit.step(now, s)
		g.applyMitigation()
		prev, prevShed, prevT = cur, shed, now
	}
}

// shedNew sums engine tail-drops across shards: packets the flood pushed off
// the queues before the guard ever counted them as Received.
func (g *Remote) shedNew() uint64 {
	var t uint64
	for i := 0; i < g.eng.Shards(); i++ {
		t += g.eng.Stats(i).ShedNew
	}
	return t
}

// applyMitigation maps the current rung onto the guard's control surface.
// Everything here is an atomic flag read by the dataplane; the limiter swap
// itself happens lazily in worker context (see syncLimiters).
func (g *Remote) applyMitigation() {
	layer := MitigationLayer(g.mit.layer.Load())
	switch {
	case layer >= LayerCookies:
		g.mitMode.Store(mitForceActive)
	case layer == LayerPassthrough:
		g.mitMode.Store(mitForcePass)
	default:
		g.mitMode.Store(mitAuto)
	}
	if layer >= LayerTCPFallback {
		g.mitFallback.Store(int32(SchemeTCP))
	} else {
		g.mitFallback.Store(0)
	}
	g.mitStrict.Store(layer >= LayerSourceLimit)
}

// effectiveFallback is the configured scheme unless the selector has imposed
// TCP fallback.
func (g *Remote) effectiveFallback() Scheme {
	if v := g.mitFallback.Load(); v != 0 {
		return Scheme(v)
	}
	return g.cfg.Fallback
}

// syncLimiters applies the selector's limiter-tightening control in worker
// context — the limiters are worker-owned, so swapping them from the
// selector proc would race the hot path. One atomic load per packet when
// nothing changed.
func (s *remoteShard) syncLimiters() {
	strict := s.g.mitStrict.Load()
	if s.strict == strict {
		return
	}
	s.strict = strict
	rl1, rl2 := s.g.cfg.RL1, s.g.cfg.RL2
	if strict {
		f := s.g.cfg.Mitigation.StrictFactor
		rl1.PerSourceRate /= f
		rl1.PerSourceBurst /= f
		rl1.GlobalRate /= f
		rl1.GlobalBurst /= f
		rl2.PerSourceRate /= f
		rl2.PerSourceBurst /= f
	}
	now := s.g.now()
	s.mu.Lock()
	s.rl1 = ratelimit.NewLimiter1(rl1, now)
	s.rl2 = ratelimit.NewLimiter2(rl2, now)
	s.mu.Unlock()
}

// mitMetricsInto registers the guard_mitigation_* series. Registered
// unconditionally: a flat zero from a disarmed selector is more operable
// than series that appear only once an attack starts.
func (g *Remote) mitMetricsInto(r *metrics.Registry) {
	r.FuncUint("guard_mitigation_enabled", func() uint64 {
		if g.cfg.Mitigation.Enabled {
			return 1
		}
		return 0
	})
	r.Func("guard_mitigation_layer", func() float64 { return float64(g.mit.layer.Load()) })
	r.Func("guard_mitigation_max_layer", func() float64 { return float64(g.mit.maxLayer.Load()) })
	r.Func("guard_mitigation_class", func() float64 { return float64(g.mit.class.Load()) })
	metrics.RegisterUint64Fields(r, "guard_mitigation_", &g.mit.stats)
}
