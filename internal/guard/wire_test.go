package guard

import (
	"testing"

	"dnsguard/internal/cookie"
	"dnsguard/internal/dnswire"
)

func testAuth() *cookie.Authenticator {
	var key [cookie.KeySize]byte
	for i := range key {
		key[i] = byte(i)
	}
	return cookie.NewAuthenticatorWithKey(key)
}

func TestAttachFindStripCookie(t *testing.T) {
	m := dnswire.NewQuery(1, dnswire.MustName("www.foo.com"), dnswire.TypeA)
	var c cookie.Cookie
	for i := range c {
		c[i] = byte(i * 3)
	}
	AttachCookie(m, c, 604800)

	got, ttl, idx, ok := FindCookie(m)
	if !ok || got != c || ttl != 604800 || idx != 0 {
		t.Fatalf("FindCookie = %v %d %d %v", got, ttl, idx, ok)
	}

	// Survives the wire.
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := dnswire.Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	got2, _, _, ok := FindCookie(decoded)
	if !ok || got2 != c {
		t.Fatalf("after wire: %v %v", got2, ok)
	}

	stripped, ok := StripCookie(decoded)
	if !ok || stripped != c {
		t.Fatalf("StripCookie = %v %v", stripped, ok)
	}
	if _, _, _, ok := FindCookie(decoded); ok {
		t.Fatal("cookie still present after strip")
	}
}

func TestFindCookieIgnoresOrdinaryTXT(t *testing.T) {
	m := dnswire.NewQuery(1, dnswire.MustName("a.b"), dnswire.TypeA)
	m.Additional = append(m.Additional,
		dnswire.NewRR(dnswire.MustName("x.y"), 60, &dnswire.TXTData{Strings: [][]byte{[]byte("0123456789abcdef")}}), // wrong owner
		dnswire.NewRR(dnswire.Root, 60, &dnswire.TXTData{Strings: [][]byte{[]byte("short")}}),                       // wrong length
	)
	if _, _, _, ok := FindCookie(m); ok {
		t.Fatal("false positive cookie detection")
	}
}

func TestFabricateAndParseNSName(t *testing.T) {
	auth := testAuth()
	nc := cookie.NSCodec{}
	src := mustAddr("10.0.0.53")
	c := auth.Mint(src)

	tests := []struct{ child string }{
		{"com"},
		{"foo.com"},
		{"www.foo.com"},
		{"a.b.c.d.example"},
	}
	for _, tt := range tests {
		child := dnswire.MustName(tt.child)
		fab, err := FabricateNSName(nc, c, child)
		if err != nil {
			t.Fatalf("Fabricate(%s): %v", tt.child, err)
		}
		// The fabricated name must live in the child's parent zone so the
		// LRS comes back to the same guard (§III-B).
		if fab.Parent() != child.Parent() {
			t.Fatalf("fab %s not in %s", fab, child.Parent())
		}
		label, restored, ok := ParseFabricatedName(nc, fab)
		if !ok {
			t.Fatalf("ParseFabricatedName(%s) failed", fab)
		}
		if restored != child {
			t.Fatalf("restored %s, want %s", restored, child)
		}
		if !nc.VerifyLabel(auth, src, label) {
			t.Fatalf("cookie label %q did not verify", label)
		}
	}
}

func TestFabricateNSNameMatchesPaperShape(t *testing.T) {
	// Root guard, question www.foo.com → child com → fabricated single
	// label "prXXXXXXXXcom" in the root zone (the paper's COOKIEcom).
	auth := testAuth()
	nc := cookie.NSCodec{}
	c := auth.Mint(mustAddr("10.0.0.53"))
	fab, err := FabricateNSName(nc, c, dnswire.MustName("com"))
	if err != nil {
		t.Fatal(err)
	}
	if fab.NumLabels() != 1 {
		t.Fatalf("fab %s has %d labels, want 1 (root-zone name)", fab, fab.NumLabels())
	}
	if len(fab.FirstLabel()) != 13 { // 2 prefix + 8 hex + 3 ("com")
		t.Fatalf("label %q length %d, want 13", fab, len(fab.FirstLabel()))
	}
}

func TestParseFabricatedNameRejectsPlainNames(t *testing.T) {
	nc := cookie.NSCodec{}
	for _, s := range []string{"www.foo.com", "com", "pr.com", "prnothexxxxcom"} {
		if _, _, ok := ParseFabricatedName(nc, dnswire.MustName(s)); ok {
			t.Errorf("ParseFabricatedName(%q) accepted", s)
		}
	}
}

func TestFabricateNSNameRejectsOversizeLabel(t *testing.T) {
	auth := testAuth()
	nc := cookie.NSCodec{}
	c := auth.Mint(mustAddr("10.0.0.1"))
	long := dnswire.MustName("a23456789012345678901234567890123456789012345678901234567890.com") // 61-char label
	if _, err := FabricateNSName(nc, c, long); err == nil {
		t.Fatal("oversize fabricated label accepted")
	}
}
