// Package guard implements the paper's DNS Guard: a transparent firewall
// module that detects source-address-spoofed DNS requests with cookies.
//
// Remote is the guard deployed in front of an authoritative name server
// (ANS). It implements all three schemes of §III and the full Figure 4
// pipeline: the cookie checker, Rate-Limiter1 (cookie responses — reflector
// protection), Rate-Limiter2 (verified requests — non-spoofed DoS
// protection), the DNS-based scheme (fabricated NS names for referral
// answers, fabricated NS name + IP cookie for non-referral answers), the
// TCP redirect (truncation flag; the TCP proxy itself is
// internal/tcpproxy), and the modified-DNS explicit cookie extension.
//
// Local is the guard deployed in front of a local recursive server (LRS)
// for the modified-DNS scheme: it stamps outgoing queries with cached
// cookies, performs the cookie exchange on first contact, and is invisible
// to the LRS.
package guard

import (
	"dnsguard/internal/cookie"
	"dnsguard/internal/dnswire"
	"dnsguard/internal/engine"
)

// Packet is a raw datagram as the guard sees it: a firewall knows both
// addresses. It is the engine's packet type; the guard rides the
// internal/engine dataplane.
type Packet = engine.Packet

// PacketIO is the guard's capture interface: read intercepted datagrams,
// write datagrams with arbitrary (owned) source addresses. netsim taps and
// realnet sockets both adapt to it.
type PacketIO = engine.PacketIO

// Modified-DNS cookie extension (Figure 3b): a TXT record at the root name
// in the additional section whose first character-string is the 16-byte
// cookie. Message 2/3 (cookie request/response) use the same shape, with an
// all-zero cookie meaning "please send mine".

// AttachCookie appends the cookie extension record to m.
func AttachCookie(m *dnswire.Message, c cookie.Cookie, ttl uint32) {
	m.Additional = append(m.Additional, dnswire.RR{
		Name:  dnswire.Root,
		Type:  dnswire.TypeTXT,
		Class: dnswire.ClassINET,
		TTL:   ttl,
		Data:  &dnswire.TXTData{Strings: [][]byte{c[:]}},
	})
}

// FindCookie locates the cookie extension in m, returning its additional-
// section index.
func FindCookie(m *dnswire.Message) (cookie.Cookie, uint32, int, bool) {
	for i, rr := range m.Additional {
		if rr.Name != dnswire.Root || rr.Type != dnswire.TypeTXT {
			continue
		}
		txt, ok := rr.Data.(*dnswire.TXTData)
		if !ok || len(txt.Strings) == 0 || len(txt.Strings[0]) != cookie.Size {
			continue
		}
		var c cookie.Cookie
		copy(c[:], txt.Strings[0])
		return c, rr.TTL, i, true
	}
	return cookie.Cookie{}, 0, -1, false
}

// StripCookie removes the cookie extension from m, reporting whether one was
// present and its value.
func StripCookie(m *dnswire.Message) (cookie.Cookie, bool) {
	c, _, i, ok := FindCookie(m)
	if !ok {
		return cookie.Cookie{}, false
	}
	m.Additional = append(m.Additional[:i], m.Additional[i+1:]...)
	return c, true
}

// FabricateNSName builds the cookie-bearing server name for a child zone:
// the child's first label is prefixed (within the same label) by the encoded
// cookie, so the name stays inside the zone the guard protects — the paper's
// "COOKIEcom" (§III-B). It fails only if the combined label would exceed 63
// octets.
func FabricateNSName(nc cookie.NSCodec, c cookie.Cookie, child dnswire.Name) (dnswire.Name, error) {
	label := nc.EncodeLabel(c) + child.FirstLabel()
	return child.Parent().PrependLabel(label)
}

// ParseFabricatedName reverses FabricateNSName: given a query name whose
// first label may carry a cookie, it extracts the embedded cookie label and
// the restored child name.
func ParseFabricatedName(nc cookie.NSCodec, qname dnswire.Name) (cookieLabel string, child dnswire.Name, ok bool) {
	first := qname.FirstLabel()
	prefixLen := len(nc.EncodeLabel(cookie.Cookie{}))
	if len(first) <= prefixLen {
		return "", "", false
	}
	cookiePart, origLabel := first[:prefixLen], first[prefixLen:]
	if !nc.IsCookieLabel(cookiePart) {
		return "", "", false
	}
	restored, err := qname.Parent().PrependLabel(origLabel)
	if err != nil {
		return "", "", false
	}
	return cookiePart, restored, true
}
