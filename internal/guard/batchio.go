// Batch capture adapters. TapIO and SocketIO implement the engine's
// optional BatchReader/BatchWriter capabilities so a guard configured with
// Batch > 1 moves whole slabs per wakeup. Scratch state (netsim packet
// slices, Datagram slabs) is pooled — the engine calls ReadBatch on a value
// receiver, so per-call reuse has to live outside the adapter.
package guard

import (
	"sync"
	"time"

	"dnsguard/internal/engine"
	"dnsguard/internal/netapi"
	"dnsguard/internal/netsim"
)

var (
	_ engine.BatchReader = TapIO{}
	_ engine.BatchWriter = TapIO{}
	_ engine.BatchReader = SocketIO{}
	_ engine.BatchWriter = SocketIO{}
)

// tapScratch pools the netsim.Packet slices ReadBatch converts from.
var tapScratch = sync.Pool{New: func() any { return new([]netsim.Packet) }}

// ReadBatch implements engine.BatchReader over the tap's batch read.
// Payloads arrive caller-owned from the simulator, so the conversion is a
// per-packet header copy, no payload copy.
func (t TapIO) ReadBatch(pkts []Packet, timeout time.Duration) (int, error) {
	sp := tapScratch.Get().(*[]netsim.Packet)
	if cap(*sp) < len(pkts) {
		*sp = make([]netsim.Packet, len(pkts))
	}
	scratch := (*sp)[:len(pkts)]
	n, err := t.Tap.ReadBatch(scratch, timeout)
	for i := 0; i < n; i++ {
		pkts[i] = Packet{Src: scratch[i].Src, Dst: scratch[i].Dst, Payload: scratch[i].Payload}
		scratch[i] = netsim.Packet{} // drop the payload ref before pooling
	}
	tapScratch.Put(sp)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// WriteBatch implements engine.BatchWriter: each packet is injected as its
// own tap write, in order, so the simulated event sequence matches n single
// writes exactly.
func (t TapIO) WriteBatch(pkts []Packet) error {
	for _, p := range pkts {
		if err := t.Tap.WriteFromTo(p.Src, p.Dst, p.Payload); err != nil {
			return err
		}
	}
	return nil
}

// socketSlot sizes read-slab buffers: 64 KiB covers any UDP payload, the
// same bound the single-packet ReadFrom path uses, so batching never
// introduces truncation the per-packet path would not have.
const socketSlot = 65536

// socketSlabs pools read slabs (slot buffers reused across batches) and
// socketViews pools write-side Datagram slices (slot buffers grown on
// demand by Datagram.Set).
var (
	socketSlabs = sync.Pool{New: func() any { return new([]netapi.Datagram) }}
	socketViews = sync.Pool{New: func() any { return new([]netapi.Datagram) }}
)

// ReadBatch implements engine.BatchReader: one BatchConn read into a pooled
// slab, then one arena allocation sized to the batch's total payload bytes —
// the handed-out packets are caller-owned (the engine queues them past this
// call) while the slab's 64 KiB slots stay hot for the next read.
func (s SocketIO) ReadBatch(pkts []Packet, timeout time.Duration) (int, error) {
	sp := socketSlabs.Get().(*[]netapi.Datagram)
	if cap(*sp) < len(pkts) {
		*sp = netapi.NewSlab(len(pkts), socketSlot)
	}
	slab := (*sp)[:len(pkts)]
	n, err := netapi.AsBatch(s.Conn).ReadBatch(slab, timeout)
	if err != nil {
		socketSlabs.Put(sp)
		return 0, err
	}
	total := 0
	for i := 0; i < n; i++ {
		total += slab[i].N
	}
	arena := make([]byte, total)
	local := s.Conn.LocalAddr()
	off := 0
	for i := 0; i < n; i++ {
		p := arena[off : off+slab[i].N : off+slab[i].N]
		copy(p, slab[i].Payload())
		off += slab[i].N
		pkts[i] = Packet{Src: slab[i].Addr, Dst: local, Payload: p}
	}
	socketSlabs.Put(sp)
	return n, nil
}

// WriteBatch implements engine.BatchWriter; as with WriteFromTo, the source
// address is the socket's own and cannot be spoofed from userspace, so only
// each packet's destination is used.
func (s SocketIO) WriteBatch(pkts []Packet) error {
	vp := socketViews.Get().(*[]netapi.Datagram)
	if cap(*vp) < len(pkts) {
		*vp = make([]netapi.Datagram, len(pkts))
	}
	views := (*vp)[:len(pkts)]
	for i, p := range pkts {
		views[i].Set(p.Payload, p.Dst)
	}
	_, err := netapi.AsBatch(s.Conn).WriteBatch(views)
	socketViews.Put(vp)
	return err
}
