package guard

import (
	"net/netip"
	"testing"
	"time"

	"dnsguard/internal/cookie"
	"dnsguard/internal/dnswire"
	"dnsguard/internal/ratelimit"
)

// TestAmplificationBounds measures the traffic amplification of each
// guard response to an unverified request — §III-G: at most 50% (24 bytes)
// for the DNS-based scheme, none for TC redirects and cookie responses.
// An unprotected server can amplify 10×; the guard's whole point is that a
// spoofed request cannot extract a big response.
func TestAmplificationBounds(t *testing.T) {
	f := newLeafFixture(t, nil)
	attacker := f.net.AddHost("attacker", mustAddr("203.0.113.66"))

	type probe struct {
		name    string
		build   func() *dnswire.Message
		maxGain float64
	}
	probes := []probe{
		{
			name:    "dns-based newcomer (fabricated NS)",
			build:   func() *dnswire.Message { return dnswire.NewQuery(1, dnswire.MustName("www.foo.com"), dnswire.TypeA) },
			maxGain: 1.5,
		},
		{
			name: "modified-dns cookie request",
			build: func() *dnswire.Message {
				q := dnswire.NewQuery(2, dnswire.MustName("www.foo.com"), dnswire.TypeA)
				AttachCookie(q, cookie.Cookie{}, 0)
				return q
			},
			maxGain: 1.05, // "message 2 and message 3 have the same size"
		},
	}
	for _, p := range probes {
		req, err := p.build().PackUDP(512)
		if err != nil {
			t.Fatal(err)
		}
		var respLen int
		f.sched.Go("probe", func() {
			conn, err := attacker.ListenUDP(netip.AddrPort{})
			if err != nil {
				return
			}
			defer conn.Close()
			_ = conn.WriteTo(req, mustAP("192.0.2.1:53"))
			payload, _, err := conn.ReadFrom(time.Second)
			if err != nil {
				return
			}
			respLen = len(payload)
		})
		f.sched.Run(f.sched.Now() + 5*time.Second)
		if respLen == 0 {
			t.Errorf("%s: no response", p.name)
			continue
		}
		// The paper accounts amplification on IP packet sizes ("the
		// minimum size of a DNS request is around 50 bytes (IP packet
		// size)"): add the 28-byte IPv4+UDP header to both directions.
		const hdr = 28
		gain := float64(respLen+hdr) / float64(len(req)+hdr)
		t.Logf("%s: %dB request → %dB response (%.2fx on the wire)", p.name, len(req)+hdr, respLen+hdr, gain)
		if gain > p.maxGain {
			t.Errorf("%s: amplification %.2fx exceeds the paper's %.2fx bound", p.name, gain, p.maxGain)
		}
	}
}

// TestTCRedirectNoAmplification checks the TCP scheme's redirect is not
// larger than the request.
func TestTCRedirectNoAmplification(t *testing.T) {
	f := newLeafFixture(t, func(c *RemoteConfig) { c.Fallback = SchemeTCP })
	attacker := f.net.AddHost("attacker", mustAddr("203.0.113.66"))
	req, _ := dnswire.NewQuery(3, dnswire.MustName("www.foo.com"), dnswire.TypeA).PackUDP(512)
	var respLen int
	f.run(t, func() {
		conn, _ := attacker.ListenUDP(netip.AddrPort{})
		defer conn.Close()
		_ = conn.WriteTo(req, mustAP("192.0.2.1:53"))
		payload, _, err := conn.ReadFrom(time.Second)
		if err != nil {
			return
		}
		respLen = len(payload)
	})
	if respLen == 0 {
		t.Fatal("no TC response")
	}
	if respLen > len(req) {
		t.Fatalf("TC redirect %dB > request %dB (amplification)", respLen, len(req))
	}
}

// TestZombieWithRealAddressIsRateLimited models §III-G's "attacker using
// public or zombie computers": the zombie legitimately obtains a cookie,
// then floods verified requests — Rate-Limiter2 must throttle it to the
// nominal per-host rate without affecting other requesters.
func TestZombieWithRealAddressIsRateLimited(t *testing.T) {
	f := newLeafFixture(t, func(c *RemoteConfig) {
		c.RL2 = ratelimit.Limiter2Config{PerSourceRate: 100, PerSourceBurst: 10, TrackedSources: 1024}
	})
	zombie := f.net.AddHost("zombie", mustAddr("198.18.0.7"))
	auth := f.guard.cfg.Auth
	nc := cookie.NSCodec{}

	f.run(t, func() {
		// The zombie computes its own valid cookie name (it controls its
		// host, so it can always complete the handshake legitimately).
		fab, err := FabricateNSName(nc, auth.Mint(zombie.Addr()), dnswire.MustName("www.foo.com"))
		if err != nil {
			t.Errorf("fabricate: %v", err)
			return
		}
		conn, _ := zombie.ListenUDP(netip.AddrPort{})
		defer conn.Close()
		// Flood 5000 verified requests over one second.
		q, _ := dnswire.NewQuery(1, fab, dnswire.TypeA).PackUDP(512)
		for i := 0; i < 5000; i++ {
			_ = conn.WriteTo(q, mustAP("192.0.2.1:53"))
			f.sched.Sleep(200 * time.Microsecond)
		}
		f.sched.Sleep(time.Second)
		// A different legitimate LRS is unaffected.
		if _, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA); err != nil {
			t.Errorf("legit resolve during zombie flood: %v", err)
		}
	})
	st := f.guard.Stats
	if st.RL2Dropped < 4000 {
		t.Errorf("RL2 dropped %d of 5000 zombie requests, want most", st.RL2Dropped)
	}
	// The ANS saw only the nominal rate (~110 allowed + the legit LRS).
	if f.fooNS.Stats.UDPQueries > 250 {
		t.Errorf("ANS saw %d queries; zombie must be throttled to the nominal rate", f.fooNS.Stats.UDPQueries)
	}
}

// TestSubnetSprayFalseNegativeFloor quantifies §III-G's worst-case false
// negative for the fabricated-IP variant: spraying the whole /24 gets
// through with probability ~1/R_y per packet.
func TestSubnetSprayFalseNegativeFloor(t *testing.T) {
	f := newLeafFixture(t, nil)
	attacker := f.net.AddHost("attacker", mustAddr("203.0.113.66"))
	const rounds = 20
	f.run(t, func() {
		q, _ := dnswire.NewQuery(9, dnswire.MustName("www.foo.com"), dnswire.TypeA).PackUDP(512)
		for r := 0; r < rounds; r++ {
			src := netip.AddrPortFrom(netip.AddrFrom4([4]byte{198, 18, 1, byte(r)}), 1234)
			for y := 2; y < 255; y++ { // skip the public .1
				dst := netip.AddrPortFrom(netip.AddrFrom4([4]byte{192, 0, 2, byte(y)}), 53)
				_ = attacker.SendRaw(src, dst, q)
			}
			f.sched.Sleep(10 * time.Millisecond)
		}
		f.sched.Sleep(time.Second)
	})
	total := rounds * 253
	passed := f.guard.Stats.CookieValid
	// Expected pass rate ≈ 2/254 per spray round (current + previous key
	// generation encodings) → about 2 per round. Allow generous slack but
	// require the floor to be roughly 1/R_y, not a hole.
	if passed > uint64(rounds*4) {
		t.Errorf("spray passed %d of %d (%.2f%%), far above the 1/R_y floor",
			passed, total, 100*float64(passed)/float64(total))
	}
	if f.guard.Stats.CookieInvalid < uint64(total)-uint64(rounds*4) {
		t.Errorf("invalid = %d of %d", f.guard.Stats.CookieInvalid, total)
	}
}
