package guard

import (
	"net/netip"
	"testing"
	"time"

	"dnsguard/internal/ans"
	"dnsguard/internal/dnswire"
	"dnsguard/internal/netsim"
	"dnsguard/internal/resolver"
	"dnsguard/internal/vclock"
	"dnsguard/internal/zone"
)

// modifiedFixture wires the full Figure 3 deployment: LRS behind a local
// guard (its gateway), remote guard in front of the ANS, modified-DNS
// cookies on the wire between them.
type modifiedFixture struct {
	sched  *vclock.Scheduler
	net    *netsim.Network
	remote *Remote
	local  *Local
	fooNS  *ans.Server
	lrs    *netsim.Host
	res    *resolver.Resolver
}

func newModifiedFixture(t *testing.T, guarded bool) *modifiedFixture {
	t.Helper()
	sched := vclock.New(44)
	network := netsim.New(sched, 5*time.Millisecond)
	f := &modifiedFixture{sched: sched, net: network}

	ansHost := network.AddHost("foo-ans", mustAddr("10.99.0.2"))
	var public netip.AddrPort
	if guarded {
		public = mustAP("192.0.2.1:53")
		srv, err := ans.New(ans.Config{
			Env: ansHost, Addr: mustAP("10.99.0.2:53"),
			Zone: zone.MustParse(fooZoneText, dnswire.Root),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		f.fooNS = srv

		guardHost := network.AddHost("remote-guard", mustAddr("10.99.0.1"))
		guardHost.ClaimAddr(mustAddr("192.0.2.1"))
		network.SetLatency(guardHost, ansHost, 100*time.Microsecond)
		tap, err := guardHost.OpenTap()
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewRemote(RemoteConfig{
			Env:        guardHost,
			IO:         TapIO{Tap: tap},
			PublicAddr: public,
			ANSAddr:    mustAP("10.99.0.2:53"),
			Zone:       dnswire.MustName("foo.com"),
			Fallback:   SchemeDNS,
			Auth:       testAuth(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Start(); err != nil {
			t.Fatal(err)
		}
		f.remote = g
	} else {
		// Unguarded legacy ANS directly on the public address.
		legacyHost := network.AddHost("foo-ans-public", mustAddr("192.0.2.1"))
		public = mustAP("192.0.2.1:53")
		srv, err := ans.New(ans.Config{
			Env: legacyHost, Addr: public,
			Zone: zone.MustParse(fooZoneText, dnswire.Root),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		f.fooNS = srv
	}

	// LRS behind its local guard: the guard is the LRS's gateway for
	// outbound traffic and claims the LRS's address for inbound.
	f.lrs = network.AddHost("lrs", mustAddr("10.0.0.53"))
	lgHost := network.AddHost("local-guard", mustAddr("10.0.0.254"))
	network.SetLatency(f.lrs, lgHost, 50*time.Microsecond)
	f.lrs.SetGateway(lgHost)
	lgHost.ClaimAddr(f.lrs.Addr())
	lgTap, err := lgHost.OpenTap()
	if err != nil {
		t.Fatal(err)
	}
	lg, err := NewLocal(LocalConfig{
		Env:        lgHost,
		IO:         TapIO{Tap: lgTap},
		ClientAddr: f.lrs.Addr(),
		Deliver: func(src, dst netip.AddrPort, payload []byte) error {
			return lgHost.InjectTo(f.lrs, src, dst, payload)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Start(); err != nil {
		t.Fatal(err)
	}
	f.local = lg

	res, err := resolver.New(resolver.Config{
		Env:       f.lrs,
		RootHints: []netip.AddrPort{public},
		Timeout:   500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.res = res
	return f
}

func (f *modifiedFixture) run(t *testing.T, fn func()) {
	t.Helper()
	f.sched.Go("test", fn)
	f.sched.Run(30 * time.Second)
}

func TestModifiedSchemeEndToEnd(t *testing.T) {
	f := newModifiedFixture(t, true)
	f.run(t, func() {
		res, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA)
		if err != nil {
			t.Errorf("Resolve: %v (remote %+v local %+v)", err, f.remote.Stats, f.local.Stats)
			return
		}
		if len(res.Answers) != 1 || res.Answers[0].Data.(*dnswire.AData).Addr != mustAddr("198.51.100.10") {
			t.Errorf("answers = %v", res.Answers)
		}
	})
	if f.local.Stats.Exchanges != 1 || f.local.Stats.CookiesLearned != 1 {
		t.Errorf("local stats = %+v, want one exchange", f.local.Stats)
	}
	if f.local.Stats.Stamped != 1 {
		t.Errorf("stamped = %d, want 1", f.local.Stats.Stamped)
	}
	if f.remote.Stats.CookieValid != 1 || f.remote.Stats.NewcomerGrants != 1 {
		t.Errorf("remote stats = %+v", f.remote.Stats)
	}
	// The ANS must never see the cookie extension (message 5 strips it).
	if f.fooNS.Stats.Malformed != 0 {
		t.Errorf("ANS malformed = %d", f.fooNS.Stats.Malformed)
	}
	if f.fooNS.Stats.UDPQueries != 1 {
		t.Errorf("ANS queries = %d, want 1", f.fooNS.Stats.UDPQueries)
	}
}

func TestModifiedSchemeSecondQueryUsesCachedCookie(t *testing.T) {
	f := newModifiedFixture(t, true)
	f.run(t, func() {
		if _, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA); err != nil {
			t.Errorf("first: %v", err)
			return
		}
		if _, err := f.res.Resolve(dnswire.MustName("mail.foo.com"), dnswire.TypeA); err != nil {
			t.Errorf("second: %v", err)
			return
		}
	})
	// One cookie per ANS: no second exchange (Table I's storage property).
	if f.local.Stats.Exchanges != 1 {
		t.Errorf("exchanges = %d, want 1", f.local.Stats.Exchanges)
	}
	if f.local.Stats.Stamped != 2 {
		t.Errorf("stamped = %d, want 2", f.local.Stats.Stamped)
	}
	if f.remote.Stats.NewcomerGrants != 1 {
		t.Errorf("grants = %d, want 1", f.remote.Stats.NewcomerGrants)
	}
}

func TestModifiedSchemeCacheHitLatencyOneRTT(t *testing.T) {
	f := newModifiedFixture(t, true)
	var lat time.Duration
	f.run(t, func() {
		if _, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA); err != nil {
			t.Errorf("first: %v", err)
			return
		}
		start := f.sched.Now()
		if _, err := f.res.Resolve(dnswire.MustName("mail.foo.com"), dnswire.TypeA); err != nil {
			t.Errorf("second: %v", err)
			return
		}
		lat = f.sched.Now() - start
	})
	// Paper Table II: 10.8ms at RTT 10.9 — one RTT, the best of all
	// schemes. Ours: 10ms RTT + 0.2ms LRS-gateway + 0.2ms guard-ANS hops.
	if lat < 10*time.Millisecond || lat > 11*time.Millisecond {
		t.Fatalf("cache-hit latency = %v, want ~10.4ms (1 RTT)", lat)
	}
}

func TestModifiedSchemeBackwardCompatibleWithLegacyANS(t *testing.T) {
	f := newModifiedFixture(t, false) // no remote guard
	f.run(t, func() {
		res, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA)
		if err != nil {
			t.Errorf("Resolve via legacy ANS: %v (local %+v)", err, f.local.Stats)
			return
		}
		if len(res.Answers) != 1 {
			t.Errorf("answers = %v", res.Answers)
		}
	})
	if f.local.Stats.LegacyServers != 1 {
		t.Errorf("legacy detections = %d, want 1", f.local.Stats.LegacyServers)
	}
	if f.local.Stats.CookiesLearned != 0 {
		t.Errorf("cookies learned = %d from a legacy server", f.local.Stats.CookiesLearned)
	}
}

func TestModifiedSchemeSpoofedCookiesDropped(t *testing.T) {
	f := newModifiedFixture(t, true)
	attacker := f.net.AddHost("attacker", mustAddr("203.0.113.66"))
	f.run(t, func() {
		// Attack with forged cookies from spoofed sources.
		for i := 0; i < 200; i++ {
			q := dnswire.NewQuery(uint16(i), dnswire.MustName("www.foo.com"), dnswire.TypeA)
			var fake [16]byte
			fake[0] = byte(i)
			fake[15] = 0xFF
			AttachCookie(q, fake, 0)
			wire, _ := q.PackUDP(512)
			src := netip.AddrPortFrom(netip.AddrFrom4([4]byte{172, 16, 0, byte(i)}), 1234)
			_ = attacker.SendRaw(src, mustAP("192.0.2.1:53"), wire)
		}
		f.sched.Sleep(time.Second)
		// Legitimate traffic still flows.
		if _, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA); err != nil {
			t.Errorf("legit resolve under forged-cookie attack: %v", err)
		}
	})
	if f.remote.Stats.CookieInvalid != 200 {
		t.Errorf("invalid = %d, want 200", f.remote.Stats.CookieInvalid)
	}
	if f.fooNS.Stats.UDPQueries != 1 {
		t.Errorf("ANS queries = %d, want 1 (forged cookies filtered)", f.fooNS.Stats.UDPQueries)
	}
}
