package guard

import (
	"bytes"
	"flag"
	"math/rand"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dnsguard/internal/ans"
	"dnsguard/internal/cookie"
	"dnsguard/internal/dnswire"
	"dnsguard/internal/metrics"
	"dnsguard/internal/netsim"
	"dnsguard/internal/vclock"
	"dnsguard/internal/zone"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata goldens")

const inlineGoldenPath = "testdata/inline_counters.golden"

// TestInlineDataplaneCounterGolden pins the shards=1/batch=1 inline dataplane
// byte-for-byte: it replays a fixed mixed-scheme netsim scenario and checks
// the guard's metrics export — every guard_remote_*, guard_rl*_*,
// guard_engine_* and mitigation series — against a golden captured from the
// PRE-affine-ingest dataplane (before the per-shard counter restructuring).
// Every golden line must appear in the export with exactly its recorded
// value, so any change to admission order, counter placement, or metrics
// naming shows up as a diff; series added since the capture are reported but
// allowed (the pin is counter equality, not export immutability).
// Regenerate deliberately with `go test ./internal/guard -run Golden -update`.
func TestInlineDataplaneCounterGolden(t *testing.T) {
	sched := vclock.New(20260808)
	network := netsim.New(sched, 5*time.Millisecond)

	ansHost := network.AddHost("foo-ans", mustAddr("10.99.0.2"))
	srv, err := ans.New(ans.Config{
		Env: ansHost, Addr: mustAP("10.99.0.2:53"),
		Zone: zone.MustParse(fooZoneText, dnswire.Root),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	guardHost := network.AddHost("guard", mustAddr("10.99.0.1"))
	guardHost.ClaimPrefix(netip.MustParsePrefix("192.0.2.0/24"))
	network.SetLatency(guardHost, ansHost, 100*time.Microsecond)
	tap, err := guardHost.OpenTap()
	if err != nil {
		t.Fatal(err)
	}

	g, err := NewRemote(RemoteConfig{
		Env:           guardHost,
		IO:            TapIO{Tap: tap},
		Shards:        1,
		Batch:         1,
		QueueDepth:    64,
		FastPathTTL:   time.Hour,
		ShardHashSeed: 1,
		PublicAddr:    mustAP("192.0.2.1:53"),
		ANSAddr:       mustAP("10.99.0.2:53"),
		Zone:          dnswire.MustName("foo.com"),
		Subnet:        netip.MustParsePrefix("192.0.2.0/24"),
		Fallback:      SchemeDNS,
		Auth:          testAuth(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	client := network.AddHost("lrs-farm", mustAddr("203.0.113.50"))

	auth := g.cfg.Auth
	nc := cookie.NSCodec{}
	ipc := cookie.IPCodec{Subnet: netip.MustParsePrefix("192.0.2.0/24")}
	public := mustAP("192.0.2.1:53")
	www := dnswire.MustName("www.foo.com")
	rng := rand.New(rand.NewSource(42))

	const sources = 48
	sched.Go("replay", func() {
		for round := 0; round < 3; round++ {
			for i := 0; i < sources; i++ {
				src := netip.AddrPortFrom(netip.AddrFrom4([4]byte{198, 18, 0, byte(10 + i)}), uint16(3000+i))
				var wire []byte
				var dst netip.AddrPort
				switch i % 4 {
				case 0: // DNS-based scheme: query the fabricated NS name.
					fab, err := FabricateNSName(nc, auth.Mint(src.Addr()), www)
					if err != nil {
						t.Errorf("fabricate: %v", err)
						return
					}
					wire, _ = dnswire.NewQuery(uint16(round*sources+i), fab, dnswire.TypeA).PackUDP(512)
					dst = public
				case 1: // IP-cookie scheme: query the fabricated address.
					addr, err := ipc.Encode(auth.Mint(src.Addr()))
					if err != nil {
						t.Errorf("ip encode: %v", err)
						return
					}
					wire, _ = dnswire.NewQuery(uint16(round*sources+i), www, dnswire.TypeA).PackUDP(512)
					dst = netip.AddrPortFrom(addr, 53)
				case 2: // Modified-DNS scheme: explicit cookie extension.
					q := dnswire.NewQuery(uint16(round*sources+i), www, dnswire.TypeA)
					AttachCookie(q, auth.Mint(src.Addr()), 3600)
					wire, _ = q.PackUDP(512)
					dst = public
				case 3: // Newcomer or deterministic garbage.
					if i%8 == 3 {
						wire, _ = dnswire.NewQuery(uint16(round*sources+i), www, dnswire.TypeA).PackUDP(512)
					} else {
						wire = make([]byte, 4+rng.Intn(48))
						rng.Read(wire)
					}
					dst = public
				}
				_ = client.SendRaw(src, dst, wire)
				sched.Sleep(75 * time.Microsecond)
			}
			sched.Sleep(50 * time.Millisecond)
		}
		sched.Sleep(2 * time.Second)
	})
	sched.Run(5 * time.Minute)

	reg := metrics.NewRegistry()
	g.MetricsInto(reg)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(inlineGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(inlineGoldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", inlineGoldenPath, len(got))
		return
	}

	want, err := os.ReadFile(inlineGoldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	missing, added := diffLines(want, got)
	if missing != "" {
		t.Errorf("inline dataplane diverged from the pre-rewrite golden "+
			"(series missing or with changed values).\n"+
			"If the change is intentional, regenerate with -update.\n%s", missing)
	}
	if added != "" {
		t.Logf("series added since the golden capture (allowed):\n%s", added)
	}

	// Sanity floor so an accidentally-empty golden can't silently pass.
	st := g.Stats.Load()
	if st.Received == 0 || st.CookieValid == 0 || st.FastPathHits == 0 || st.ForwardedToANS == 0 {
		t.Errorf("scenario too weak to pin the pipeline: %+v", st)
	}
}

// diffLines splits the divergence between two metric dumps into golden lines
// absent from got (prefixed -, failures) and got lines absent from the
// golden (prefixed +, additive series).
func diffLines(want, got []byte) (missing, added string) {
	wantSet := map[string]bool{}
	for _, l := range bytes.Split(want, []byte("\n")) {
		wantSet[string(l)] = true
	}
	gotSet := map[string]bool{}
	for _, l := range bytes.Split(got, []byte("\n")) {
		gotSet[string(l)] = true
	}
	var miss, add bytes.Buffer
	for _, l := range bytes.Split(want, []byte("\n")) {
		if len(l) > 0 && !gotSet[string(l)] {
			miss.WriteString("-" + string(l) + "\n")
		}
	}
	for _, l := range bytes.Split(got, []byte("\n")) {
		if len(l) > 0 && !wantSet[string(l)] {
			add.WriteString("+" + string(l) + "\n")
		}
	}
	return miss.String(), add.String()
}
