package guard

import (
	"errors"
	"sync"
	"sync/atomic"

	"net/netip"
	"time"

	"dnsguard/internal/cookie"
	"dnsguard/internal/dnswire"
	"dnsguard/internal/metrics"
	"dnsguard/internal/netapi"
)

// LocalConfig parameterizes the LRS-side guard (modified-DNS scheme,
// Figure 3a). The guard sits inline: it sees the LRS's outbound queries
// (gateway) and all traffic addressed to the LRS (interception), so the
// cookie exchange happens with the LRS's own source address — cookies are a
// function of the requester's IP (§III-E).
type LocalConfig struct {
	// Env supplies clock and timers.
	Env netapi.Env
	// IO captures the LRS's traffic in both directions and re-injects
	// toward the network.
	IO PacketIO
	// ClientAddr is the LRS's address, used to tell inbound from
	// outbound and as the source of cookie exchanges.
	ClientAddr netip.Addr
	// Deliver hands an inbound packet on to the real LRS (the guard
	// intercepts its address).
	Deliver func(src, dst netip.AddrPort, payload []byte) error
	// ExchangePort is the source port the guard uses for cookie
	// exchanges on behalf of the LRS. 0 means 49876.
	ExchangePort uint16
	// CookieTTLCap bounds how long a learned cookie is cached regardless
	// of the advertised TTL. 0 means one week.
	CookieTTLCap time.Duration
	// NotCapableTTL is how long a server that did not answer the cookie
	// exchange is remembered as legacy (queries pass through unmodified).
	// 0 means 60s.
	NotCapableTTL time.Duration
	// ExchangeTimeout bounds the cookie exchange (message 2/3) before
	// held queries are released unstamped. 0 means 500ms.
	ExchangeTimeout time.Duration
	// MaxHeld bounds queries buffered per destination during an exchange.
	MaxHeld int
}

// Validate reports the first missing required field, without touching the
// config.
func (c *LocalConfig) Validate() error {
	switch {
	case c.Env == nil || c.IO == nil:
		return errors.New("guard: LocalConfig.Env and IO are required")
	case !c.ClientAddr.IsValid():
		return errors.New("guard: LocalConfig.ClientAddr is required")
	case c.Deliver == nil:
		return errors.New("guard: LocalConfig.Deliver is required")
	}
	return nil
}

// Normalize fills every defaulted field in place; idempotent, and usable on
// a partially built config before Validate.
func (c *LocalConfig) Normalize() {
	if c.ExchangePort == 0 {
		c.ExchangePort = 49876
	}
	if c.CookieTTLCap <= 0 {
		c.CookieTTLCap = cookie.DefaultTTL
	}
	if c.NotCapableTTL <= 0 {
		c.NotCapableTTL = 60 * time.Second
	}
	if c.ExchangeTimeout <= 0 {
		c.ExchangeTimeout = 500 * time.Millisecond
	}
	if c.MaxHeld <= 0 {
		c.MaxHeld = 64
	}
}

func (c *LocalConfig) fillDefaults() error {
	if err := c.Validate(); err != nil {
		return err
	}
	c.Normalize()
	return nil
}

// LocalStats counts local-guard activity. Fields are written atomically
// (the capture loop and exchange-timeout procs run concurrently under real
// clocks).
type LocalStats struct {
	Intercepted    uint64 // outbound packets seen
	Stamped        uint64 // queries forwarded with a cookie attached
	PassedThrough  uint64 // non-DNS, responses, or legacy servers
	Exchanges      uint64 // cookie requests sent (message 2)
	CookiesLearned uint64
	LateCookies    uint64 // cookies learned after the exchange timed out
	ExchangeStrays uint64 // duplicated/unmatched exchange-port responses
	LegacyServers  uint64 // exchanges that revealed a non-guarded server
	HeldOverflow   uint64
	Delivered      uint64 // inbound packets handed to the LRS
}

// MetricsInto registers every counter as a guard_local_* series reading the
// live fields.
func (s *LocalStats) MetricsInto(r *metrics.Registry) {
	metrics.RegisterUint64Fields(r, "guard_local_", s)
}

type learnedCookie struct {
	c       cookie.Cookie
	expires time.Duration
}

type exchangeState struct {
	id      uint16
	held    []Packet
	started time.Duration
}

// lateExchange remembers a timed-out exchange so that a reordered or
// jitter-delayed message 3 can still teach us the cookie.
type lateExchange struct {
	dst     netip.AddrPort
	expires time.Duration
}

// Local is the LRS-side guard: transparent to the LRS, it stamps outbound
// queries with the destination guard's cookie, performing the cookie
// exchange on first contact and caching per-ANS cookies (one cookie per ANS
// — the storage advantage of the modified scheme, Table I).
type Local struct {
	cfg    LocalConfig
	closed atomic.Bool

	// mu guards the cookie/exchange tables, shared between the capture
	// loop and the exchange-timeout procs under real clocks.
	mu         sync.Mutex
	cookies    map[netip.AddrPort]learnedCookie
	notCapable map[netip.AddrPort]time.Duration
	exchanges  map[netip.AddrPort]*exchangeState
	byID       map[uint16]netip.AddrPort
	late       map[uint16]lateExchange
	nextID     uint16

	// Stats is updated as the guard runs (atomically; see LocalStats).
	Stats LocalStats
}

// MetricsInto registers the local guard's counters (guard_local_*) on r.
func (l *Local) MetricsInto(r *metrics.Registry) { l.Stats.MetricsInto(r) }

// NewLocal validates cfg and creates the guard.
func NewLocal(cfg LocalConfig) (*Local, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	return &Local{
		cfg:        cfg,
		cookies:    make(map[netip.AddrPort]learnedCookie),
		notCapable: make(map[netip.AddrPort]time.Duration),
		exchanges:  make(map[netip.AddrPort]*exchangeState),
		byID:       make(map[uint16]netip.AddrPort),
		late:       make(map[uint16]lateExchange),
	}, nil
}

// Start spawns the guard's capture proc.
func (l *Local) Start() error {
	l.cfg.Env.Go("localguard", l.captureLoop)
	return nil
}

// Close stops the guard.
func (l *Local) Close() {
	if l.closed.Swap(true) {
		return
	}
	_ = l.cfg.IO.Close()
}

// KnowsCookie reports whether a live cookie for dst is cached (tests).
func (l *Local) KnowsCookie(dst netip.AddrPort) bool {
	l.mu.Lock()
	lc, ok := l.cookies[dst]
	l.mu.Unlock()
	return ok && l.cfg.Env.Now() < lc.expires
}

func (l *Local) now() time.Duration { return l.cfg.Env.Now() }

func (l *Local) captureLoop() {
	for {
		pkt, err := l.cfg.IO.Read(netapi.NoTimeout)
		if err != nil {
			return
		}
		if pkt.Dst.Addr() == l.cfg.ClientAddr {
			l.handleInbound(pkt)
		} else {
			atomic.AddUint64(&l.Stats.Intercepted, 1)
			l.handleOutbound(pkt)
		}
	}
}

// handleInbound processes traffic addressed to the LRS: cookie-exchange
// responses are consumed, everything else is delivered untouched.
func (l *Local) handleInbound(pkt Packet) {
	if pkt.Dst.Port() == l.cfg.ExchangePort {
		l.handleExchangeResponse(pkt)
		return
	}
	atomic.AddUint64(&l.Stats.Delivered, 1)
	_ = l.cfg.Deliver(pkt.Src, pkt.Dst, pkt.Payload)
}

func (l *Local) handleOutbound(pkt Packet) {
	// Only outbound DNS queries are candidates for stamping.
	if pkt.Dst.Port() != 53 {
		l.passthrough(pkt)
		return
	}
	msg, err := dnswire.Unpack(pkt.Payload)
	if err != nil || msg.Flags.QR || len(msg.Questions) == 0 {
		l.passthrough(pkt)
		return
	}
	if _, _, _, has := FindCookie(msg); has {
		// Already stamped (nested guards?): leave it alone.
		l.passthrough(pkt)
		return
	}
	now := l.now()
	dst := pkt.Dst
	l.mu.Lock()
	defer l.mu.Unlock()
	if lc, ok := l.cookies[dst]; ok && now < lc.expires {
		l.stampAndSend(pkt, msg, lc.c)
		return
	}
	if exp, ok := l.notCapable[dst]; ok && now < exp {
		l.passthrough(pkt)
		return
	}
	// First contact: hold the query and run the cookie exchange.
	ex, running := l.exchanges[dst]
	if !running {
		ex = &exchangeState{started: now}
		l.exchanges[dst] = ex
		l.sendCookieRequest(dst, msg, ex)
	}
	if len(ex.held) >= l.cfg.MaxHeld {
		atomic.AddUint64(&l.Stats.HeldOverflow, 1)
		l.passthrough(pkt)
		return
	}
	ex.held = append(ex.held, pkt)
}

func (l *Local) passthrough(pkt Packet) {
	atomic.AddUint64(&l.Stats.PassedThrough, 1)
	_ = l.cfg.IO.WriteFromTo(pkt.Src, pkt.Dst, pkt.Payload)
}

func (l *Local) stampAndSend(pkt Packet, msg *dnswire.Message, c cookie.Cookie) {
	AttachCookie(msg, c, 0)
	wire, err := msg.PackUDP(dnswire.MaxUDPSize)
	if err != nil {
		l.passthrough(pkt)
		return
	}
	atomic.AddUint64(&l.Stats.Stamped, 1)
	_ = l.cfg.IO.WriteFromTo(pkt.Src, pkt.Dst, wire)
}

// sendCookieRequest emits message 2: the same question with an all-zero
// cookie, from the LRS's address on the guard's dedicated port so message 3
// comes back to the guard. The caller must hold l.mu.
func (l *Local) sendCookieRequest(dst netip.AddrPort, template *dnswire.Message, ex *exchangeState) {
	l.nextID++
	ex.id = l.nextID
	l.byID[ex.id] = dst
	req := dnswire.NewQuery(ex.id, template.Question().Name, template.Question().Type)
	req.Flags.RD = false
	AttachCookie(req, cookie.Cookie{}, 0)
	wire, err := req.PackUDP(dnswire.MaxUDPSize)
	if err != nil {
		return
	}
	atomic.AddUint64(&l.Stats.Exchanges, 1)
	src := netip.AddrPortFrom(l.cfg.ClientAddr, l.cfg.ExchangePort)
	_ = l.cfg.IO.WriteFromTo(src, dst, wire)
	l.cfg.Env.Go("localguard-timeout", func() {
		l.cfg.Env.Sleep(l.cfg.ExchangeTimeout)
		l.expireExchange(dst, ex)
	})
}

// expireExchange gives up on a cookie exchange: the server is remembered as
// legacy and held queries are released unstamped. The transaction ID stays
// registered for a grace window so a message 3 delayed past the timeout (by
// jitter or reordering) can still be learned and the legacy verdict undone.
func (l *Local) expireExchange(dst netip.AddrPort, ex *exchangeState) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cur, ok := l.exchanges[dst]
	if !ok || cur != ex {
		return // already resolved
	}
	delete(l.exchanges, dst)
	grace := 4 * l.cfg.ExchangeTimeout
	l.late[ex.id] = lateExchange{dst: dst, expires: l.now() + grace}
	l.cfg.Env.Go("localguard-late-reap", func() {
		l.cfg.Env.Sleep(grace)
		l.mu.Lock()
		defer l.mu.Unlock()
		if le, ok := l.late[ex.id]; ok && le.dst == dst {
			delete(l.late, ex.id)
			if d, ok := l.byID[ex.id]; ok && d == dst {
				delete(l.byID, ex.id)
			}
		}
	})
	atomic.AddUint64(&l.Stats.LegacyServers, 1)
	l.notCapable[dst] = l.now() + l.cfg.NotCapableTTL
	for _, pkt := range ex.held {
		l.passthrough(pkt)
	}
}

// handleExchangeResponse consumes message 3 (or a legacy server's plain
// answer to the cookie request).
func (l *Local) handleExchangeResponse(pkt Packet) {
	resp, err := dnswire.Unpack(pkt.Payload)
	if err != nil || !resp.Flags.QR {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	dst, ok := l.byID[resp.ID]
	if !ok || dst != pkt.Src {
		atomic.AddUint64(&l.Stats.ExchangeStrays, 1)
		return
	}
	ex, ok := l.exchanges[dst]
	if !ok || ex.id != resp.ID {
		l.handleLateExchangeResponse(dst, resp)
		return
	}
	delete(l.exchanges, dst)
	delete(l.byID, resp.ID)
	c, ttl, _, has := FindCookie(resp)
	if !has || c.IsZero() {
		// A legacy server answered the bare question: it is not
		// cookie-capable.
		atomic.AddUint64(&l.Stats.LegacyServers, 1)
		l.notCapable[dst] = l.now() + l.cfg.NotCapableTTL
		for _, held := range ex.held {
			l.passthrough(held)
		}
		return
	}
	life := time.Duration(ttl) * time.Second
	if life <= 0 || life > l.cfg.CookieTTLCap {
		life = l.cfg.CookieTTLCap
	}
	l.cookies[dst] = learnedCookie{c: c, expires: l.now() + life}
	atomic.AddUint64(&l.Stats.CookiesLearned, 1)
	for _, held := range ex.held {
		if msg, err := dnswire.Unpack(held.Payload); err == nil {
			l.stampAndSend(held, msg, c)
		}
	}
}

// handleLateExchangeResponse learns from a message 3 that arrived after its
// exchange timed out: the held queries are long gone (released unstamped),
// but the cookie is still good, and the premature legacy verdict must be
// reversed so the next query is stamped instead of passed through for
// NotCapableTTL (up to a minute of degraded service). The caller must hold
// l.mu.
func (l *Local) handleLateExchangeResponse(dst netip.AddrPort, resp *dnswire.Message) {
	le, ok := l.late[resp.ID]
	if !ok || le.dst != dst || l.now() >= le.expires {
		atomic.AddUint64(&l.Stats.ExchangeStrays, 1)
		return
	}
	delete(l.late, resp.ID)
	delete(l.byID, resp.ID)
	c, ttl, _, has := FindCookie(resp)
	if !has || c.IsZero() {
		return // legacy verdict was correct after all
	}
	life := time.Duration(ttl) * time.Second
	if life <= 0 || life > l.cfg.CookieTTLCap {
		life = l.cfg.CookieTTLCap
	}
	l.cookies[dst] = learnedCookie{c: c, expires: l.now() + life}
	delete(l.notCapable, dst)
	atomic.AddUint64(&l.Stats.CookiesLearned, 1)
	atomic.AddUint64(&l.Stats.LateCookies, 1)
}
