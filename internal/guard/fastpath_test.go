package guard

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"dnsguard/internal/dnswire"
	"dnsguard/internal/netapi"
	"dnsguard/internal/netsim"
	"dnsguard/internal/vclock"
)

// The fast path's contract is byte- and counter-equivalence with the
// materializing path. The golden replays (inline_golden_test.go and friends)
// pin the counters across full simulations; the tests here isolate the wire
// bytes — forwarded queries, fabricated replies, raw relays — and pin the
// whole verified cycle at zero allocations against stub I/O.

// sinkConn is a stub upstream socket capturing the last datagram written.
type sinkConn struct {
	buf   [dnswire.MaxUDPSize]byte
	n     int
	dst   netip.AddrPort
	wrote int
}

func (c *sinkConn) ReadFrom(timeout time.Duration) ([]byte, netip.AddrPort, error) {
	return nil, netip.AddrPort{}, netapi.ErrClosed
}

func (c *sinkConn) WriteTo(b []byte, to netip.AddrPort) error {
	c.n = copy(c.buf[:], b)
	c.dst = to
	c.wrote++
	return nil
}

func (c *sinkConn) LocalAddr() netip.AddrPort { return netip.AddrPort{} }
func (c *sinkConn) Close() error              { return nil }

// sinkIO is a stub capture interface recording the last reply emitted.
type sinkIO struct {
	buf      [dnswire.MaxUDPSize]byte
	n        int
	from, to netip.AddrPort
	wrote    int
}

func (io *sinkIO) Read(timeout time.Duration) (Packet, error) { return Packet{}, netapi.ErrClosed }

func (io *sinkIO) WriteFromTo(from, to netip.AddrPort, payload []byte) error {
	io.n = copy(io.buf[:], payload)
	io.from, io.to = from, to
	io.wrote++
	return nil
}

func (io *sinkIO) Close() error { return nil }

// fastHarness drives one shard directly — no engine start, no simulated
// network — with stub I/O on both sides, so tests can compare exact wires
// and count allocations without simulator noise.
type fastHarness struct {
	g  *Remote
	s  *remoteShard
	io *sinkIO
	up *sinkConn
}

func newFastHarness(t *testing.T, mutate func(*RemoteConfig)) *fastHarness {
	t.Helper()
	sched := vclock.New(1)
	network := netsim.New(sched, time.Millisecond)
	host := network.AddHost("guard", mustAddr("198.41.0.4"))
	io := &sinkIO{}
	cfg := RemoteConfig{
		Env:         host,
		IO:          io,
		PublicAddr:  mustAP("198.41.0.4:53"),
		ANSAddr:     mustAP("10.99.0.2:53"),
		Zone:        dnswire.Root,
		Auth:        testAuth(),
		FastPathTTL: time.Hour,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := NewRemote(cfg)
	if err != nil {
		t.Fatal(err)
	}
	up := &sinkConn{}
	g.shards[0].upstream = up
	return &fastHarness{g: g, s: g.shards[0], io: io, up: up}
}

// nsQueryWire packs a query for the fabricated name carrying src's cookie.
func (h *fastHarness) nsQueryWire(t *testing.T, src netip.Addr, child string, id uint16) []byte {
	t.Helper()
	c := h.g.cfg.Auth.Mint(src)
	fab, err := FabricateNSName(h.g.nsc, c, dnswire.MustName(child))
	if err != nil {
		t.Fatal(err)
	}
	wire, err := dnswire.NewQuery(id, fab, dnswire.TypeA).Pack()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

// TestFastNSMatchesSlowPath sends the same cookie-labeled query twice: the
// first pass misses the verified cache and takes the materializing path, the
// second hits and takes the wire path. The forwarded queries must agree byte
// for byte (modulo transaction ID), and the fabricated NXDomain replies must
// agree exactly.
func TestFastNSMatchesSlowPath(t *testing.T) {
	h := newFastHarness(t, nil)
	src := mustAP("10.0.0.53:4444")
	query := h.nsQueryWire(t, src.Addr(), "www.foo.com", 0x1234)
	// Uppercase two hex chars of the cookie and the child's first letter so
	// the fast path's ASCII folding is exercised, not just passed through
	// (offset 12 is the first label's length octet).
	for _, off := range []int{15, 16, 23} {
		if query[off] >= 'a' && query[off] <= 'z' {
			query[off] -= 'a' - 'A'
		}
	}
	ans := h.g.cfg.ANSAddr

	exchange := func() (fwd, reply []byte) {
		h.s.HandlePacket(Packet{Src: src, Dst: h.g.cfg.PublicAddr, Payload: append([]byte(nil), query...)})
		if h.up.n == 0 {
			t.Fatal("no forward emitted")
		}
		fwd = append([]byte(nil), h.up.buf[:h.up.n]...)
		// Empty NXDomain response: flip QR and set the rcode on the echo.
		resp := append([]byte(nil), fwd...)
		resp[2] |= 0x80
		resp[3] |= byte(dnswire.RCodeNXDomain)
		h.s.handleUpstream(resp, ans)
		if h.io.n == 0 {
			t.Fatal("no reply emitted")
		}
		return fwd, append([]byte(nil), h.io.buf[:h.io.n]...)
	}

	slowFwd, slowReply := exchange()
	before := h.g.Stats.Load()
	fastFwd, fastReply := exchange()
	after := h.g.Stats.Load()
	if after.FastPathHits != before.FastPathHits+1 {
		t.Fatalf("second exchange did not take the fast path: hits %d -> %d", before.FastPathHits, after.FastPathHits)
	}
	if after.CookieValid != before.CookieValid+1 || after.RepliesToClient != before.RepliesToClient+1 {
		t.Errorf("fast exchange counters diverge: %+v -> %+v", before, after)
	}
	slowFwd[0], slowFwd[1], fastFwd[0], fastFwd[1] = 0, 0, 0, 0
	if !bytes.Equal(slowFwd, fastFwd) {
		t.Errorf("forwarded wires diverge:\nslow %x\nfast %x", slowFwd, fastFwd)
	}
	if !bytes.Equal(slowReply, fastReply) {
		t.Errorf("fabricated replies diverge:\nslow %x\nfast %x", slowReply, fastReply)
	}
	if h.up.dst != ans {
		t.Errorf("forward went to %v, want %v", h.up.dst, ans)
	}
	if h.io.from != h.g.cfg.PublicAddr || h.io.to != src {
		t.Errorf("reply addressed %v -> %v, want %v -> %v", h.io.from, h.io.to, h.g.cfg.PublicAddr, src)
	}
}

// TestFastEntryMaterializes: a response the fast upstream path cannot handle
// (it carries answers) must fall back to the materializing path and produce
// the full message-6 fabrication from the wire-only pending entry.
func TestFastEntryMaterializes(t *testing.T) {
	h := newFastHarness(t, func(cfg *RemoteConfig) {
		cfg.Subnet = netip.MustParsePrefix("203.0.113.0/24")
	})
	src := mustAP("10.0.0.53:4444")
	query := h.nsQueryWire(t, src.Addr(), "www.foo.com", 0x77)

	// Warm the cache (slow exchange), then forward the same query fast.
	h.s.HandlePacket(Packet{Src: src, Dst: h.g.cfg.PublicAddr, Payload: append([]byte(nil), query...)})
	warm := append([]byte(nil), h.up.buf[:h.up.n]...)
	warm[2] |= 0x80
	h.s.handleUpstream(warm, h.g.cfg.ANSAddr)

	before := h.g.Stats.Load()
	h.s.HandlePacket(Packet{Src: src, Dst: h.g.cfg.PublicAddr, Payload: append([]byte(nil), query...)})
	if h.g.Stats.Load().FastPathHits != before.FastPathHits+1 {
		t.Fatal("query did not take the fast path")
	}
	fwd, err := dnswire.Unpack(h.up.buf[:h.up.n])
	if err != nil {
		t.Fatal(err)
	}
	if fwd.Questions[0].Name != dnswire.MustName("www.foo.com") {
		t.Fatalf("forwarded question %v", fwd.Questions[0])
	}

	// Answer with a real A record: the fast consume must bail and the
	// materializing path must fabricate the IP-cookie answer (§III-B.2).
	resp := fwd.Response()
	resp.Flags.AA = true
	resp.Answers = []dnswire.RR{dnswire.NewRR(fwd.Questions[0].Name, 300, &dnswire.AData{Addr: mustAddr("198.51.100.10")})}
	wire, err := resp.Pack()
	if err != nil {
		t.Fatal(err)
	}
	h.s.handleUpstream(wire, h.g.cfg.ANSAddr)
	reply, err := dnswire.Unpack(h.io.buf[:h.io.n])
	if err != nil {
		t.Fatal(err)
	}
	if reply.ID != 0x77 || !reply.Flags.QR || !reply.Flags.AA || reply.Flags.RCode != dnswire.RCodeNoError {
		t.Fatalf("fabricated reply header %+v", reply)
	}
	if len(reply.Answers) != 1 || reply.Answers[0].Type != dnswire.TypeA {
		t.Fatalf("fabricated reply answers %+v", reply.Answers)
	}
	addr := reply.Answers[0].Data.(*dnswire.AData).Addr
	if !h.g.cfg.Subnet.Contains(addr) {
		t.Errorf("cookie address %v outside subnet %v", addr, h.g.cfg.Subnet)
	}
	q, err := dnswire.Unpack(query)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Questions[0] != q.Questions[0] {
		t.Errorf("reply question %+v, want client question %+v", reply.Questions[0], q.Questions[0])
	}
}

// TestFastPassthroughRelay: with detection inactive, a canonical-case query
// is relayed raw with only the transaction ID rewritten, and the response is
// relayed back raw under the client's original ID.
func TestFastPassthroughRelay(t *testing.T) {
	h := newFastHarness(t, func(cfg *RemoteConfig) {
		cfg.ActivationThreshold = 1e12 // never activates: all passthrough
	})
	src := mustAP("10.0.0.53:5555")
	query, err := dnswire.NewQuery(0xBEEF, dnswire.MustName("www.foo.com"), dnswire.TypeA).Pack()
	if err != nil {
		t.Fatal(err)
	}
	payload := append([]byte(nil), query...)
	h.s.HandlePacket(Packet{Src: src, Dst: h.g.cfg.PublicAddr, Payload: payload})
	st := h.g.Stats.Load()
	if st.Passthrough != 1 || st.ForwardedToANS != 1 {
		t.Fatalf("passthrough counters %+v", st)
	}
	fwd := append([]byte(nil), h.up.buf[:h.up.n]...)
	want := append([]byte(nil), query...)
	want[0], want[1] = fwd[0], fwd[1] // only the ID may differ
	if !bytes.Equal(fwd, want) {
		t.Errorf("relayed query not raw:\ngot  %x\nwant %x", fwd, want)
	}

	resp := append([]byte(nil), fwd...)
	resp[2] |= 0x80
	h.s.handleUpstream(resp, h.g.cfg.ANSAddr)
	reply := h.io.buf[:h.io.n]
	wantReply := append([]byte(nil), resp...)
	wantReply[0], wantReply[1] = 0xBE, 0xEF
	if !bytes.Equal(reply, wantReply) {
		t.Errorf("relayed response not raw:\ngot  %x\nwant %x", reply, wantReply)
	}
	if h.g.Stats.Load().RepliesToClient != 1 {
		t.Errorf("RepliesToClient = %d", h.g.Stats.Load().RepliesToClient)
	}
}

// TestFastPathWireAllocs pins the whole verified cycle — cookie query in,
// rewritten forward out, empty response in, fabricated reply out — at zero
// allocations against stub I/O, and the inactive passthrough relay likewise.
// Real transports add their own syscall-side cost; the bench harness gates
// the end-to-end figure (≤ 2 allocs/packet) separately.
func TestFastPathWireAllocs(t *testing.T) {
	h := newFastHarness(t, nil)
	src := mustAP("10.0.0.53:4444")
	query := h.nsQueryWire(t, src.Addr(), "www.foo.com", 0x42)
	ans := h.g.cfg.ANSAddr
	pkt := Packet{Src: src, Dst: h.g.cfg.PublicAddr, Payload: query}

	// Warm: one slow exchange installs the verified entry and sizes the
	// entry-pool buffers.
	h.s.HandlePacket(pkt)
	resp := make([]byte, 0, dnswire.MaxUDPSize)
	consume := func() {
		resp = append(resp[:0], h.up.buf[:h.up.n]...)
		resp[2] |= 0x80
		resp[3] |= byte(dnswire.RCodeNXDomain)
		h.s.handleUpstream(resp, ans)
	}
	consume()

	if n := testing.AllocsPerRun(200, func() {
		h.s.HandlePacket(pkt)
		consume()
	}); n != 0 {
		t.Errorf("verified NS cycle allocates %.1f/op, want 0", n)
	}

	hp := newFastHarness(t, func(cfg *RemoteConfig) {
		cfg.ActivationThreshold = 1e12
	})
	plain, err := dnswire.NewQuery(0x43, dnswire.MustName("www.foo.com"), dnswire.TypeA).Pack()
	if err != nil {
		t.Fatal(err)
	}
	ppkt := Packet{Src: src, Dst: hp.g.cfg.PublicAddr, Payload: plain}
	hp.s.HandlePacket(ppkt)
	presp := make([]byte, 0, dnswire.MaxUDPSize)
	pconsume := func() {
		presp = append(presp[:0], hp.up.buf[:hp.up.n]...)
		presp[2] |= 0x80
		hp.s.handleUpstream(presp, hp.g.cfg.ANSAddr)
	}
	pconsume()
	if n := testing.AllocsPerRun(200, func() {
		hp.s.HandlePacket(ppkt)
		pconsume()
	}); n != 0 {
		t.Errorf("passthrough relay cycle allocates %.1f/op, want 0", n)
	}
}
