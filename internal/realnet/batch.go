// Batch datagram I/O for the real network: every UDP endpoint implements
// netapi.BatchConn. The portable path loops the single-datagram syscalls,
// reading straight into the caller's slab; on Linux (batch_linux.go) the
// whole slab moves in one recvmmsg/sendmmsg kernel crossing.

package realnet

import (
	"time"

	"dnsguard/internal/netapi"
)

// maxDatagram is the buffer size allocated for slab slots the caller left
// empty: the largest possible UDP payload.
const maxDatagram = 65536

var (
	_ netapi.BatchEnv  = (*Env)(nil)
	_ netapi.BatchConn = (*udpConn)(nil)
	_ netapi.BatchConn = (*sharedHandle)(nil)
)

// BatchIO implements netapi.BatchEnv. It reports true only when this build
// has the mmsg fast path (Linux); elsewhere batch calls still work but
// amortize buffer management, not kernel crossings.
func (e *Env) BatchIO() bool { return osBatchIO }

// ReadBatch implements netapi.BatchConn.
func (c *udpConn) ReadBatch(msgs []netapi.Datagram, timeout time.Duration) (int, error) {
	if len(msgs) == 0 {
		return 0, nil
	}
	if osBatchIO {
		return c.readBatchOS(msgs, timeout)
	}
	return c.readBatchLoop(msgs, timeout)
}

// WriteBatch implements netapi.BatchConn.
func (c *udpConn) WriteBatch(msgs []netapi.Datagram) (int, error) {
	if len(msgs) == 0 {
		return 0, nil
	}
	if osBatchIO {
		return c.writeBatchOS(msgs)
	}
	return c.writeBatchLoop(msgs)
}

// readBatchLoop is the portable path: one deadline-driven read for the first
// datagram, then zero-timeout polls for whatever else is already buffered.
func (c *udpConn) readBatchLoop(msgs []netapi.Datagram, timeout time.Duration) (int, error) {
	if err := c.readInto(&msgs[0], timeout); err != nil {
		return 0, err
	}
	n := 1
	for n < len(msgs) {
		if err := c.readInto(&msgs[n], 0); err != nil {
			break // drained (ErrTimeout) or closed; the n filled slots stand
		}
		n++
	}
	return n, nil
}

// readInto reads one datagram directly into the slot's buffer; a datagram
// longer than cap(Buf) is truncated by the kernel, per the slab contract.
func (c *udpConn) readInto(d *netapi.Datagram, timeout time.Duration) error {
	if err := c.setReadDeadline(timeout); err != nil {
		return err
	}
	if cap(d.Buf) == 0 {
		d.Buf = make([]byte, maxDatagram)
	}
	buf := d.Buf[:cap(d.Buf)]
	n, src, err := c.conn.ReadFromUDPAddrPort(buf)
	if err != nil {
		return mapErr(err)
	}
	d.Buf, d.N, d.Addr = buf[:n], n, unmap(src)
	return nil
}

func (c *udpConn) writeBatchLoop(msgs []netapi.Datagram) (int, error) {
	for i := range msgs {
		if _, err := c.conn.WriteToUDPAddrPort(msgs[i].Buf[:msgs[i].N], msgs[i].Addr); err != nil {
			return i, mapErr(err)
		}
	}
	return len(msgs), nil
}

// ReadBatch implements netapi.BatchConn on the shared-socket fallback handle.
func (h *sharedHandle) ReadBatch(msgs []netapi.Datagram, timeout time.Duration) (int, error) {
	if h.isClosed() {
		return 0, netapi.ErrClosed
	}
	return h.shared.conn.ReadBatch(msgs, timeout)
}

// WriteBatch implements netapi.BatchConn on the shared-socket fallback handle.
func (h *sharedHandle) WriteBatch(msgs []netapi.Datagram) (int, error) {
	if h.isClosed() {
		return 0, netapi.ErrClosed
	}
	return h.shared.conn.WriteBatch(msgs)
}
