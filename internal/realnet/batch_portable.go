//go:build !(linux && (amd64 || arm64))

package realnet

import (
	"time"

	"dnsguard/internal/netapi"
)

const osBatchIO = false

// The portable build has no native mmsg path; these stubs are never reached
// (ReadBatch/WriteBatch branch on osBatchIO) but keep the call sites
// compiling identically on every platform.

func (c *udpConn) readBatchOS(msgs []netapi.Datagram, timeout time.Duration) (int, error) {
	return c.readBatchLoop(msgs, timeout)
}

func (c *udpConn) writeBatchOS(msgs []netapi.Datagram) (int, error) {
	return c.writeBatchLoop(msgs)
}
