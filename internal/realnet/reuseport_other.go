//go:build !linux || mips || mipsle || mips64 || mips64le

package realnet

import (
	"fmt"
	"net/netip"

	"dnsguard/internal/netapi"
)

// listenReusePort is unavailable without SO_REUSEPORT; ListenUDPReuse falls
// back to one socket shared by n handles.
func listenReusePort(addr netip.AddrPort, n int) ([]netapi.UDPConn, error) {
	return nil, fmt.Errorf("realnet: SO_REUSEPORT unsupported on this platform: %w", netapi.ErrAddrInUse)
}
