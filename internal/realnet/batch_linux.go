//go:build linux && (amd64 || arm64)

// Linux mmsg fast path: one recvmmsg/sendmmsg kernel crossing moves a whole
// slab of datagrams. Raw syscall.Syscall6 against the stdlib syscall
// numbers, driven through RawConn.Read/Write so the calls integrate with the
// runtime netpoller and honor deadlines. Gated to amd64/arm64, where
// syscall.Msghdr's layout (8-byte pointers, uint64 iovlen) matches the
// kernel's struct mmsghdr stride of 64 bytes with one trailing uint32.

package realnet

import (
	"fmt"
	"net"
	"net/netip"
	"os"
	"sync"
	"syscall"
	"time"
	"unsafe"

	"dnsguard/internal/netapi"
)

const osBatchIO = true

// mmsghdr mirrors the kernel's struct mmsghdr: a msghdr plus the per-message
// byte count the kernel writes back. The explicit pad fixes the 64-byte
// array stride the kernel walks.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// mmsgState is the per-call scratch recvmmsg/sendmmsg point the kernel at:
// header array, sockaddr array, one iovec per message. Pooled because
// every ReadBatch needs the full set and they are invariant in shape.
type mmsgState struct {
	hdrs  []mmsghdr
	names []syscall.RawSockaddrAny
	iovs  []syscall.Iovec
}

var mmsgPool sync.Pool

func getMMsg(n int) *mmsgState {
	st, _ := mmsgPool.Get().(*mmsgState)
	if st == nil {
		st = &mmsgState{}
	}
	if cap(st.hdrs) < n {
		st.hdrs = make([]mmsghdr, n)
		st.names = make([]syscall.RawSockaddrAny, n)
		st.iovs = make([]syscall.Iovec, n)
	}
	st.hdrs, st.names, st.iovs = st.hdrs[:n], st.names[:n], st.iovs[:n]
	return st
}

func (c *udpConn) readBatchOS(msgs []netapi.Datagram, timeout time.Duration) (int, error) {
	if err := c.setReadDeadline(timeout); err != nil {
		return 0, err
	}
	rc, err := c.conn.SyscallConn()
	if err != nil {
		return 0, mapErr(err)
	}
	st := getMMsg(len(msgs))
	defer mmsgPool.Put(st)
	for i := range msgs {
		d := &msgs[i]
		if cap(d.Buf) == 0 {
			d.Buf = make([]byte, maxDatagram)
		}
		buf := d.Buf[:cap(d.Buf)]
		st.iovs[i] = syscall.Iovec{Base: &buf[0], Len: uint64(len(buf))}
		st.names[i] = syscall.RawSockaddrAny{}
		st.hdrs[i] = mmsghdr{hdr: syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(&st.names[i])),
			Namelen: syscall.SizeofSockaddrAny,
			Iov:     &st.iovs[i],
			Iovlen:  1,
		}}
	}
	// MSG_DONTWAIT keeps the syscall non-blocking regardless of socket
	// mode; blocking semantics come from the netpoller (rc.Read parks on
	// EAGAIN until readable or deadline). A poll (timeout == 0) never
	// parks: the first EAGAIN is the answer.
	poll := timeout == 0
	var got int
	var opErr error
	ioErr := rc.Read(func(fd uintptr) bool {
		for {
			r1, _, errno := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
				uintptr(unsafe.Pointer(&st.hdrs[0])), uintptr(len(msgs)),
				syscall.MSG_DONTWAIT, 0, 0)
			switch errno {
			case 0:
				got = int(r1)
				return true
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				if poll {
					opErr = netapi.ErrTimeout
					return true
				}
				return false
			default:
				opErr = os.NewSyscallError("recvmmsg", errno)
				return true
			}
		}
	})
	if ioErr != nil {
		return 0, mapErr(ioErr)
	}
	if opErr != nil {
		return 0, opErr
	}
	for i := 0; i < got; i++ {
		d := &msgs[i]
		n := int(st.hdrs[i].n)
		d.Buf = d.Buf[:cap(d.Buf)][:n]
		d.N = n
		d.Addr = anyToAddrPort(&st.names[i])
	}
	return got, nil
}

func (c *udpConn) writeBatchOS(msgs []netapi.Datagram) (int, error) {
	rc, err := c.conn.SyscallConn()
	if err != nil {
		return 0, mapErr(err)
	}
	// A socket bound over IPv6 (incl. the dual-stack wildcard) takes
	// 4-in-6 mapped sockaddrs for IPv4 destinations, exactly as the net
	// package arranges internally.
	la := c.conn.LocalAddr().(*net.UDPAddr)
	is6 := la.IP.To4() == nil
	st := getMMsg(len(msgs))
	defer mmsgPool.Put(st)
	for i := range msgs {
		d := &msgs[i]
		nameLen, err := putSockaddr(&st.names[i], d.Addr, is6)
		if err != nil {
			return 0, err
		}
		var base *byte
		if d.N > 0 {
			base = &d.Buf[0]
		}
		st.iovs[i] = syscall.Iovec{Base: base, Len: uint64(d.N)}
		st.hdrs[i] = mmsghdr{hdr: syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(&st.names[i])),
			Namelen: nameLen,
			Iov:     &st.iovs[i],
			Iovlen:  1,
		}}
	}
	sent := 0
	var opErr error
	ioErr := rc.Write(func(fd uintptr) bool {
		for sent < len(msgs) {
			r1, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&st.hdrs[sent])), uintptr(len(msgs)-sent),
				syscall.MSG_DONTWAIT, 0, 0)
			switch errno {
			case 0:
				if r1 == 0 {
					return false
				}
				sent += int(r1)
			case syscall.EINTR:
			case syscall.EAGAIN:
				return false
			default:
				opErr = os.NewSyscallError("sendmmsg", errno)
				return true
			}
		}
		return true
	})
	if ioErr != nil {
		return sent, mapErr(ioErr)
	}
	return sent, opErr
}

// putSockaddr renders dst into sa in the family the socket speaks and
// returns the sockaddr length.
func putSockaddr(sa *syscall.RawSockaddrAny, dst netip.AddrPort, is6 bool) (uint32, error) {
	addr := dst.Addr()
	if !addr.IsValid() {
		return 0, fmt.Errorf("realnet: invalid destination %v", dst)
	}
	if is6 {
		sa6 := (*syscall.RawSockaddrInet6)(unsafe.Pointer(sa))
		*sa6 = syscall.RawSockaddrInet6{Family: syscall.AF_INET6, Addr: addr.As16()}
		p := (*[2]byte)(unsafe.Pointer(&sa6.Port))
		p[0], p[1] = byte(dst.Port()>>8), byte(dst.Port())
		return syscall.SizeofSockaddrInet6, nil
	}
	if !addr.Unmap().Is4() {
		return 0, fmt.Errorf("realnet: IPv6 destination %v on IPv4 socket", dst)
	}
	sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
	*sa4 = syscall.RawSockaddrInet4{Family: syscall.AF_INET, Addr: addr.Unmap().As4()}
	p := (*[2]byte)(unsafe.Pointer(&sa4.Port))
	p[0], p[1] = byte(dst.Port()>>8), byte(dst.Port())
	return syscall.SizeofSockaddrInet4, nil
}

// anyToAddrPort decodes the kernel-filled source sockaddr; 4-in-6 sources
// are unmapped like every other realnet address.
func anyToAddrPort(sa *syscall.RawSockaddrAny) netip.AddrPort {
	switch sa.Addr.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		p := (*[2]byte)(unsafe.Pointer(&sa4.Port))
		return netip.AddrPortFrom(netip.AddrFrom4(sa4.Addr), uint16(p[0])<<8|uint16(p[1]))
	case syscall.AF_INET6:
		sa6 := (*syscall.RawSockaddrInet6)(unsafe.Pointer(sa))
		p := (*[2]byte)(unsafe.Pointer(&sa6.Port))
		return netip.AddrPortFrom(netip.AddrFrom16(sa6.Addr).Unmap(), uint16(p[0])<<8|uint16(p[1]))
	}
	return netip.AddrPort{}
}
