// netapi capability extensions for the real network: scheduler-agnostic
// bounded queues and multi-socket UDP ingest for the engine dataplane.
package realnet

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"dnsguard/internal/netapi"
)

var (
	_ netapi.QueueEnv    = (*Env)(nil)
	_ netapi.UDPReuseEnv = (*Env)(nil)
)

// NewQueue implements netapi.QueueEnv with the portable channel-backed queue.
func (e *Env) NewQueue(capacity int) netapi.Queue {
	return netapi.NewChanQueue(capacity)
}

// ListenUDPReuse implements netapi.UDPReuseEnv. On platforms with
// SO_REUSEPORT (reuseport_linux.go) it binds n independent sockets to the
// same address so the kernel steers datagrams across them; elsewhere — or
// when the reused bind fails — it falls back to one socket shared by n
// refcounted handles (concurrent ReadFrom on a single *net.UDPConn is safe,
// the kernel serializes datagram reads).
func (e *Env) ListenUDPReuse(addr netip.AddrPort, n int) ([]netapi.UDPConn, error) {
	if n < 1 {
		return nil, fmt.Errorf("realnet: ListenUDPReuse: n must be >= 1, got %d", n)
	}
	if n == 1 {
		c, err := e.ListenUDP(addr)
		if err != nil {
			return nil, err
		}
		return []netapi.UDPConn{c}, nil
	}
	if conns, err := listenReusePort(addr, n); err == nil {
		return conns, nil
	}
	return e.listenShared(addr, n)
}

// listenShared is the portable fallback: one bound socket, n handles.
func (e *Env) listenShared(addr netip.AddrPort, n int) ([]netapi.UDPConn, error) {
	base, err := e.ListenUDP(addr)
	if err != nil {
		return nil, err
	}
	shared := &sharedConn{conn: base.(*udpConn), refs: n}
	conns := make([]netapi.UDPConn, n)
	for i := range conns {
		conns[i] = &sharedHandle{shared: shared}
	}
	return conns, nil
}

type sharedConn struct {
	conn *udpConn
	mu   sync.Mutex
	refs int
}

type sharedHandle struct {
	shared *sharedConn
	mu     sync.Mutex
	closed bool
}

var (
	_ netapi.UDPConn        = (*sharedHandle)(nil)
	_ netapi.FlowStableConn = (*sharedHandle)(nil)
)

// FlowStable reports false: the handles race ReadFrom on one kernel socket,
// so consecutive datagrams of one flow land on whichever handle wins. The
// SO_REUSEPORT path (independent sockets, kernel 4-tuple steering) is the
// flow-stable one; see udpConn.FlowStable.
func (h *sharedHandle) FlowStable() bool { return false }

func (h *sharedHandle) ReadFrom(timeout time.Duration) ([]byte, netip.AddrPort, error) {
	if h.isClosed() {
		return nil, netip.AddrPort{}, netapi.ErrClosed
	}
	return h.shared.conn.ReadFrom(timeout)
}

func (h *sharedHandle) WriteTo(b []byte, to netip.AddrPort) error {
	if h.isClosed() {
		return netapi.ErrClosed
	}
	return h.shared.conn.WriteTo(b, to)
}

func (h *sharedHandle) LocalAddr() netip.AddrPort { return h.shared.conn.LocalAddr() }

func (h *sharedHandle) isClosed() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.closed
}

func (h *sharedHandle) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	h.mu.Unlock()
	h.shared.mu.Lock()
	h.shared.refs--
	last := h.shared.refs == 0
	h.shared.mu.Unlock()
	if last {
		return h.shared.conn.Close()
	}
	return nil
}

// bindAddr renders addr for net.ListenConfig, treating the zero AddrPort as
// "any address, ephemeral port" like Env.ListenUDP does.
func bindAddr(addr netip.AddrPort) string {
	if !addr.Addr().IsValid() {
		return fmt.Sprintf(":%d", addr.Port())
	}
	return addr.String()
}

// wrapUDP adapts a ListenConfig packet conn.
func wrapUDP(pc net.PacketConn) netapi.UDPConn {
	return &udpConn{conn: pc.(*net.UDPConn)}
}
