package realnet

import (
	"errors"
	"net/netip"
	"sync"
	"testing"
	"time"

	"dnsguard/internal/ans"
	"dnsguard/internal/dnswire"
	"dnsguard/internal/netapi"
	"dnsguard/internal/zone"
)

const zoneText = `
$ORIGIN foo.test.
@ 3600 IN SOA ns1 admin 1 7200 600 360000 60
@ 3600 IN NS ns1
ns1 3600 IN A 127.0.0.1
www 300 IN A 198.51.100.10
`

func TestUDPLoopback(t *testing.T) {
	env := New()
	server, err := env.ListenUDP(netip.MustParseAddrPort("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := env.ListenUDP(netip.MustParseAddrPort("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		payload, src, err := server.ReadFrom(2 * time.Second)
		if err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		_ = server.WriteTo(payload, src)
	}()
	if err := client.WriteTo([]byte("ping"), server.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	payload, _, err := client.ReadFrom(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "ping" {
		t.Fatalf("payload = %q", payload)
	}
	wg.Wait()
}

func TestUDPReadTimeout(t *testing.T) {
	env := New()
	conn, err := env.ListenUDP(netip.MustParseAddrPort("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, _, err = conn.ReadFrom(20 * time.Millisecond)
	if !errors.Is(err, netapi.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestTCPLoopback(t *testing.T) {
	env := New()
	l, err := env.ListenTCP(netip.MustParseAddrPort("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := l.Accept(2 * time.Second)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		defer conn.Close()
		buf := make([]byte, 16)
		n, err := conn.Read(buf, 2*time.Second)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		_, _ = conn.Write(buf[:n])
	}()
	conn, err := env.DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := conn.Read(buf, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "hello" {
		t.Fatalf("echo = %q", buf[:n])
	}
	wg.Wait()
}

// TestRealANSServesQueries runs the full authoritative server over real
// loopback sockets (UDP and TCP) — the deployment cmd/ansd uses.
func TestRealANSServesQueries(t *testing.T) {
	env := New()
	srv, err := ans.New(ans.Config{
		Env:       env,
		Addr:      netip.MustParseAddrPort("127.0.0.1:0"),
		Zone:      zone.MustParse(zoneText, dnswire.Root),
		EnableTCP: false, // ephemeral UDP port differs from any TCP port
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := env.ListenUDP(netip.MustParseAddrPort("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	q, _ := dnswire.NewQuery(7, dnswire.MustName("www.foo.test"), dnswire.TypeA).PackUDP(512)
	if err := client.WriteTo(q, srv.Addr()); err != nil {
		t.Fatal(err)
	}
	payload, _, err := client.ReadFrom(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnswire.Unpack(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].Data.(*dnswire.AData).Addr != netip.MustParseAddr("198.51.100.10") {
		t.Fatalf("resp = %v", resp)
	}
}
