//go:build linux && !mips && !mipsle && !mips64 && !mips64le

package realnet

import (
	"context"
	"net"
	"net/netip"
	"syscall"

	"dnsguard/internal/netapi"
)

// soReusePort is SO_REUSEPORT, absent from the frozen syscall package. The
// value is 15 on every Linux ABI except MIPS (excluded by build tag, where
// ListenUDPReuse falls back to the shared-socket path).
const soReusePort = 15

// listenReusePort binds n sockets to the same address with SO_REUSEPORT, so
// the kernel hashes inbound datagrams across them and each engine reader
// gets its own receive queue. When addr asks for an ephemeral port, the
// first bind picks it and the rest reuse it.
func listenReusePort(addr netip.AddrPort, n int) ([]netapi.UDPConn, error) {
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			if err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			}); err != nil {
				return err
			}
			return serr
		},
	}
	target := bindAddr(addr)
	conns := make([]netapi.UDPConn, 0, n)
	for i := 0; i < n; i++ {
		pc, err := lc.ListenPacket(context.Background(), "udp", target)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, mapErr(err)
		}
		conns = append(conns, wrapUDP(pc))
		if i == 0 {
			// Pin the ephemeral port the first bind chose.
			target = pc.LocalAddr().String()
		}
	}
	return conns, nil
}
