//go:build linux && amd64

package realnet

// sendmmsg's x86-64 syscall number; the stdlib syscall table predates the
// syscall and exports only SYS_RECVMMSG on this architecture.
const sysSENDMMSG = 307
