package realnet_test

import (
	"net/netip"
	"testing"

	"dnsguard/internal/netapi"
	"dnsguard/internal/netapi/netapitest"
	"dnsguard/internal/realnet"
)

// TestConformance runs the cross-backend netapi conformance suite against
// real OS sockets on loopback. The same suite runs against netsim; the two
// must agree on every pinned behavior.
func TestConformance(t *testing.T) {
	netapitest.Run(t, netapitest.Backend{
		Name: "realnet",
		Addr: netip.MustParseAddr("127.0.0.1"),
		Run: func(t *testing.T, fn func(env netapi.Env)) {
			fn(realnet.New())
		},
	})
}
