package realnet

import (
	"errors"
	"net/netip"
	"sync"
	"testing"
	"time"

	"dnsguard/internal/netapi"
)

// ListenUDPReuse must deliver every datagram exactly once across the n
// handles, whichever path (SO_REUSEPORT or shared-socket fallback) the
// platform took, and all handles must report the same bound address.
func TestListenUDPReuseDelivery(t *testing.T) {
	env := New()
	conns, err := env.ListenUDPReuse(netip.MustParseAddrPort("127.0.0.1:0"), 4)
	if err != nil {
		t.Fatal(err)
	}
	local := conns[0].LocalAddr()
	for _, c := range conns {
		if c.LocalAddr() != local {
			t.Fatalf("handle addr %v != %v", c.LocalAddr(), local)
		}
	}

	const total = 64
	var mu sync.Mutex
	seen := make(map[byte]int)
	var wg sync.WaitGroup
	for _, c := range conns {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b, _, err := c.ReadFrom(netapi.NoTimeout)
				if err != nil {
					return
				}
				mu.Lock()
				seen[b[0]]++
				mu.Unlock()
			}
		}()
	}

	sender, err := env.ListenUDP(netip.MustParseAddrPort("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	for i := 0; i < total; i++ {
		if err := sender.WriteTo([]byte{byte(i)}, local); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if n == total || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, c := range conns {
		c.Close()
	}
	wg.Wait()
	if len(seen) != total {
		t.Fatalf("received %d distinct datagrams, want %d", len(seen), total)
	}
	for b, n := range seen {
		if n != 1 {
			t.Fatalf("datagram %d delivered %d times", b, n)
		}
	}
}

func TestChanQueuePolicies(t *testing.T) {
	env := New()
	q := env.NewQueue(2)
	if !q.Put(1) || !q.Put(2) {
		t.Fatal("puts under capacity rejected")
	}
	if q.Put(3) {
		t.Fatal("drop-newest: put beyond capacity accepted")
	}
	if ev, did := q.PutEvict(4); !did || ev != 1 {
		t.Fatalf("PutEvict = (%v, %v), want (1, true)", ev, did)
	}
	if v, err := q.Get(0); err != nil || v != 2 {
		t.Fatalf("Get = (%v, %v), want (2, nil)", v, err)
	}
	if v, err := q.Get(0); err != nil || v != 4 {
		t.Fatalf("Get = (%v, %v), want (4, nil)", v, err)
	}
	if _, err := q.Get(0); !errors.Is(err, netapi.ErrTimeout) {
		t.Fatalf("empty poll err = %v, want ErrTimeout", err)
	}
	if _, err := q.Get(20 * time.Millisecond); !errors.Is(err, netapi.ErrTimeout) {
		t.Fatalf("timed Get err = %v, want ErrTimeout", err)
	}

	// Blocked Get wakes on Put from another goroutine.
	done := make(chan any, 1)
	go func() {
		v, _ := q.Get(netapi.NoTimeout)
		done <- v
	}()
	time.Sleep(10 * time.Millisecond)
	q.Put(9)
	select {
	case v := <-done:
		if v != 9 {
			t.Fatalf("woken Get = %v, want 9", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Get never woke")
	}

	q.Close()
	if _, err := q.Get(netapi.NoTimeout); !errors.Is(err, netapi.ErrClosed) {
		t.Fatalf("closed Get err = %v, want ErrClosed", err)
	}
	if q.Put(1) {
		t.Fatal("put after close accepted")
	}
}
