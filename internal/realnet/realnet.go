// Package realnet implements netapi.Env over the operating system's network
// stack (the net and time packages). The same servers, resolvers, and guards
// that run inside internal/netsim for experiments run here for real: the
// cmd/ daemons and the realservers example use this environment.
//
// Limitations relative to the simulator are inherent to userspace sockets
// and documented in DESIGN.md: source addresses cannot be spoofed, the guard
// intercepts by being addressed directly rather than by claiming a subnet,
// and SYN cookies are the kernel's business.
package realnet

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"os"
	"sync"
	"time"

	"dnsguard/internal/netapi"
)

// Env is the real-network environment. The zero value is not usable; call
// New.
type Env struct {
	start time.Time
}

var _ netapi.Env = (*Env)(nil)

// New returns an Env whose clock starts now.
func New() *Env {
	return &Env{start: time.Now()}
}

// Now implements netapi.Env.
func (e *Env) Now() time.Duration { return time.Since(e.start) }

// Sleep implements netapi.Env.
func (e *Env) Sleep(d time.Duration) { time.Sleep(d) }

// Go implements netapi.Env.
func (e *Env) Go(name string, fn func()) { go fn() }

// ListenUDP implements netapi.Env.
func (e *Env) ListenUDP(addr netip.AddrPort) (netapi.UDPConn, error) {
	var la *net.UDPAddr
	if addr.IsValid() && (addr.Addr().IsValid() || addr.Port() != 0) {
		la = net.UDPAddrFromAddrPort(addr)
	}
	conn, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, fmt.Errorf("realnet: %w", err)
	}
	return &udpConn{conn: conn}, nil
}

// DialTCP implements netapi.Env.
func (e *Env) DialTCP(raddr netip.AddrPort) (netapi.Conn, error) {
	c, err := net.DialTimeout("tcp", raddr.String(), 10*time.Second)
	if err != nil {
		return nil, mapErr(err)
	}
	return &tcpConn{conn: c.(*net.TCPConn)}, nil
}

// ListenTCP implements netapi.Env.
func (e *Env) ListenTCP(addr netip.AddrPort) (netapi.Listener, error) {
	l, err := net.ListenTCP("tcp", net.TCPAddrFromAddrPort(addr))
	if err != nil {
		return nil, mapErr(err)
	}
	return &tcpListener{l: l}, nil
}

type udpConn struct {
	conn *net.UDPConn
}

var (
	_ netapi.UDPConn        = (*udpConn)(nil)
	_ netapi.FlowStableConn = (*udpConn)(nil)
)

// FlowStable reports true: a singly-bound kernel socket receives every
// datagram of every flow addressed to it, and in an SO_REUSEPORT group
// (reuseport_linux.go) the kernel's 4-tuple hash pins each flow to one
// member socket for the socket's lifetime. The non-flow-stable realnet case
// is the shared-fd fallback, whose handles override this (sharedHandle).
func (c *udpConn) FlowStable() bool { return true }

// SetReadBuffer sets the socket's kernel receive buffer (SO_RCVBUF).
// Optional capability probed by interface assertion; load generators raise
// it so burst absorption is bounded by the harness, not the distro default.
func (c *udpConn) SetReadBuffer(bytes int) error {
	return mapErr(c.conn.SetReadBuffer(bytes))
}

// readBufPool recycles the max-datagram scratch buffers ReadFrom reads into.
// The caller-owned return slice is still an exact-size copy (the netapi
// contract), but the 64 KiB scratch — previously a fresh allocation per
// datagram — is reused across reads and across sockets.
var readBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 65536)
		return &b
	},
}

// pollGrace is the effective deadline of a zero-timeout (poll) read. A
// deadline of exactly now races the runtime's deadline timer against the
// poller's first non-blocking read attempt — the timer usually wins, the
// recv syscall is never issued, and buffered datagrams are unreachable
// through a poll (a divergence from netsim's queues that the netapi
// conformance suite pins). A hair of grace guarantees one genuine
// non-blocking attempt; an empty socket still turns the poll around within
// ~pollGrace.
const pollGrace = 200 * time.Microsecond

// setReadDeadline applies netapi timeout rules to the socket: negative
// blocks (no deadline), zero polls (pollGrace), positive bounds the wait.
func (c *udpConn) setReadDeadline(timeout time.Duration) error {
	var dl time.Time
	switch {
	case timeout == 0:
		dl = time.Now().Add(pollGrace)
	case timeout > 0:
		dl = time.Now().Add(timeout)
	}
	return mapErr(c.conn.SetReadDeadline(dl))
}

func (c *udpConn) ReadFrom(timeout time.Duration) ([]byte, netip.AddrPort, error) {
	if err := c.setReadDeadline(timeout); err != nil {
		return nil, netip.AddrPort{}, err
	}
	bufp := readBufPool.Get().(*[]byte)
	n, src, err := c.conn.ReadFromUDPAddrPort(*bufp)
	if err != nil {
		readBufPool.Put(bufp)
		return nil, netip.AddrPort{}, mapErr(err)
	}
	out := make([]byte, n)
	copy(out, (*bufp)[:n])
	readBufPool.Put(bufp)
	return out, unmap(src), nil
}

func (c *udpConn) WriteTo(b []byte, to netip.AddrPort) error {
	_, err := c.conn.WriteToUDPAddrPort(b, to)
	return mapErr(err)
}

func (c *udpConn) LocalAddr() netip.AddrPort {
	return unmap(c.conn.LocalAddr().(*net.UDPAddr).AddrPort())
}

func (c *udpConn) Close() error { return c.conn.Close() }

type tcpConn struct {
	conn *net.TCPConn
}

var _ netapi.Conn = (*tcpConn)(nil)

func (c *tcpConn) Read(b []byte, timeout time.Duration) (int, error) {
	if timeout >= 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return 0, mapErr(err)
		}
	} else if err := c.conn.SetReadDeadline(time.Time{}); err != nil {
		return 0, mapErr(err)
	}
	n, err := c.conn.Read(b)
	return n, mapErr(err)
}

func (c *tcpConn) Write(b []byte) (int, error) {
	n, err := c.conn.Write(b)
	return n, mapErr(err)
}

func (c *tcpConn) Close() error { return c.conn.Close() }

func (c *tcpConn) LocalAddr() netip.AddrPort {
	return unmap(c.conn.LocalAddr().(*net.TCPAddr).AddrPort())
}

func (c *tcpConn) RemoteAddr() netip.AddrPort {
	return unmap(c.conn.RemoteAddr().(*net.TCPAddr).AddrPort())
}

type tcpListener struct {
	l *net.TCPListener
}

var _ netapi.Listener = (*tcpListener)(nil)

func (l *tcpListener) Accept(timeout time.Duration) (netapi.Conn, error) {
	if timeout >= 0 {
		if err := l.l.SetDeadline(time.Now().Add(timeout)); err != nil {
			return nil, mapErr(err)
		}
	} else if err := l.l.SetDeadline(time.Time{}); err != nil {
		return nil, mapErr(err)
	}
	c, err := l.l.AcceptTCP()
	if err != nil {
		return nil, mapErr(err)
	}
	return &tcpConn{conn: c}, nil
}

func (l *tcpListener) Addr() netip.AddrPort {
	return unmap(l.l.Addr().(*net.TCPAddr).AddrPort())
}

func (l *tcpListener) Close() error { return l.l.Close() }

// unmap normalizes 4-in-6 addresses so netip comparisons work.
func unmap(ap netip.AddrPort) netip.AddrPort {
	return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
}

func mapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case os.IsTimeout(err):
		return netapi.ErrTimeout
	case errors.Is(err, net.ErrClosed):
		return netapi.ErrClosed
	default:
		var opErr *net.OpError
		if errors.As(err, &opErr) && opErr.Op == "dial" {
			return fmt.Errorf("%w: %v", netapi.ErrRefused, err)
		}
		return err
	}
}
