//go:build linux && arm64

package realnet

import "syscall"

const sysSENDMMSG = uintptr(syscall.SYS_SENDMMSG)
