package tcpsim

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"dnsguard/internal/netapi"
	"dnsguard/internal/netsim"
	"dnsguard/internal/vclock"
)

// TestPropertyStreamIntegrity: for random write patterns, loss rates, and
// chunk sizes, the bytes read equal the bytes written, in order — TCP's
// contract, which the DNS framing on top depends on.
func TestPropertyStreamIntegrity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sched := vclock.New(seed)
		network := netsim.New(sched, time.Duration(1+r.Intn(5))*time.Millisecond)
		client := network.AddHost("c", netip.MustParseAddr("10.0.0.1"))
		server := network.AddHost("s", netip.MustParseAddr("10.0.0.2"))
		Install(client, Config{})
		Install(server, Config{SYNCookies: r.Intn(2) == 0})
		lossy := r.Intn(2) == 0
		if lossy {
			loss := float64(r.Intn(20)) / 100
			network.SetLoss(client, server, loss)
			network.SetLoss(server, client, loss)
		}

		payload := make([]byte, 1+r.Intn(20000))
		r.Read(payload)

		var received []byte
		ok := true
		l, err := server.ListenTCP(netip.MustParseAddrPort("10.0.0.2:53"))
		if err != nil {
			return false
		}
		sched.Go("server", func() {
			conn, err := l.Accept(netapi.NoTimeout)
			if err != nil {
				ok = false
				return
			}
			defer conn.Close()
			buf := make([]byte, 4096)
			for len(received) < len(payload) {
				n, err := conn.Read(buf, 30*time.Second)
				if err != nil {
					ok = false
					return
				}
				received = append(received, buf[:n]...)
			}
		})
		sched.Go("client", func() {
			conn, err := client.DialTCP(netip.MustParseAddrPort("10.0.0.2:53"))
			if err != nil {
				ok = false
				return
			}
			defer conn.Close()
			for off := 0; off < len(payload); {
				n := 1 + r.Intn(2000)
				if off+n > len(payload) {
					n = len(payload) - off
				}
				if _, err := conn.Write(payload[off : off+n]); err != nil {
					ok = false
					return
				}
				off += n
				if r.Intn(3) == 0 {
					sched.Sleep(time.Duration(r.Intn(5)) * time.Millisecond)
				}
			}
		})
		sched.Run(5 * time.Minute)
		// TCP's contract: whatever was delivered is exactly a prefix of
		// what was written (in order, uncorrupted). Connections may
		// legitimately abort under heavy loss; on loss-free links the
		// transfer must complete.
		if len(received) > len(payload) || !bytes.Equal(received, payload[:len(received)]) {
			t.Logf("seed %d: corruption or reorder after %d bytes", seed, len(received))
			return false
		}
		if !lossy && (!ok || len(received) != len(payload)) {
			t.Logf("seed %d: loss-free transfer incomplete (%d of %d, ok=%v)", seed, len(received), len(payload), ok)
			return false
		}
		return true
	}
	// Fixed seed set for determinism (testing/quick seeds from the clock).
	for seed := int64(1); seed <= int64(2000); seed++ {
		if !f(seed) {
			t.Fatalf("failed on seed %d", seed)
		}
	}
}
