package tcpsim

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
	"time"

	"dnsguard/internal/netapi"
	"dnsguard/internal/netsim"
	"dnsguard/internal/vclock"
)

type fixture struct {
	sched          *vclock.Scheduler
	net            *netsim.Network
	client, server *netsim.Host
	cst, sst       *Stack
}

func newFixture(t *testing.T, serverCfg Config) *fixture {
	t.Helper()
	sched := vclock.New(5)
	network := netsim.New(sched, 5*time.Millisecond)
	client := network.AddHost("client", netip.MustParseAddr("10.0.0.1"))
	server := network.AddHost("server", netip.MustParseAddr("10.0.0.2"))
	return &fixture{
		sched: sched, net: network, client: client, server: server,
		cst: Install(client, Config{}),
		sst: Install(server, serverCfg),
	}
}

func serverAddr() netip.AddrPort { return netip.MustParseAddrPort("10.0.0.2:53") }

// echoServer accepts connections and echoes everything it reads.
func (f *fixture) echoServer(t *testing.T) netapi.Listener {
	t.Helper()
	l, err := f.server.ListenTCP(serverAddr())
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	f.sched.Go("echo-accept", func() {
		for {
			conn, err := l.Accept(netapi.NoTimeout)
			if err != nil {
				return
			}
			f.server.Go("echo-conn", func() {
				defer conn.Close()
				buf := make([]byte, 4096)
				for {
					n, err := conn.Read(buf, time.Second)
					if err != nil {
						return
					}
					if _, err := conn.Write(buf[:n]); err != nil {
						return
					}
				}
			})
		}
	})
	return l
}

func TestHandshakeAndEcho(t *testing.T) {
	for _, synCookies := range []bool{false, true} {
		f := newFixture(t, Config{SYNCookies: synCookies})
		f.echoServer(t)
		var got []byte
		var dialAt, doneAt time.Duration
		f.sched.Go("client", func() {
			dialAt = f.sched.Now()
			conn, err := f.client.DialTCP(serverAddr())
			if err != nil {
				t.Errorf("syncookies=%v: Dial: %v", synCookies, err)
				return
			}
			defer conn.Close()
			if _, err := conn.Write([]byte("hello tcp")); err != nil {
				t.Errorf("Write: %v", err)
				return
			}
			buf := make([]byte, 64)
			n, err := conn.Read(buf, time.Second)
			if err != nil {
				t.Errorf("Read: %v", err)
				return
			}
			got = buf[:n]
			doneAt = f.sched.Now()
		})
		f.sched.Run(0)
		if string(got) != "hello tcp" {
			t.Fatalf("syncookies=%v: got %q", synCookies, got)
		}
		// Handshake (1 RTT) + request/response (1 RTT) = 2 RTT = 20ms.
		if rtt := doneAt - dialAt; rtt != 20*time.Millisecond {
			t.Fatalf("syncookies=%v: elapsed %v, want 20ms (2 RTT)", synCookies, rtt)
		}
	}
}

func TestLargeTransferInBothDirections(t *testing.T) {
	f := newFixture(t, Config{})
	f.echoServer(t)
	payload := make([]byte, 64*1024)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	var got []byte
	f.sched.Go("client", func() {
		conn, err := f.client.DialTCP(serverAddr())
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		defer conn.Close()
		// Write in chunks like a real app.
		for off := 0; off < len(payload); off += 1000 {
			end := off + 1000
			if end > len(payload) {
				end = len(payload)
			}
			if _, err := conn.Write(payload[off:end]); err != nil {
				t.Errorf("Write: %v", err)
				return
			}
		}
		buf := make([]byte, 4096)
		for len(got) < len(payload) {
			n, err := conn.Read(buf, time.Second)
			if err != nil {
				t.Errorf("Read after %d bytes: %v", len(got), err)
				return
			}
			got = append(got, buf[:n]...)
		}
	})
	f.sched.Run(0)
	if !bytes.Equal(got, payload) {
		t.Fatalf("echo mismatch: got %d bytes", len(got))
	}
}

func TestRetransmissionRecoversLoss(t *testing.T) {
	f := newFixture(t, Config{})
	f.net.SetLoss(f.client, f.server, 0.3)
	f.net.SetLoss(f.server, f.client, 0.3)
	f.echoServer(t)
	var got []byte
	f.sched.Go("client", func() {
		conn, err := f.client.DialTCP(serverAddr())
		if err != nil {
			t.Errorf("Dial under loss: %v", err)
			return
		}
		defer conn.Close()
		if _, err := conn.Write([]byte("lossy")); err != nil {
			t.Errorf("Write: %v", err)
			return
		}
		buf := make([]byte, 64)
		n, err := conn.Read(buf, 10*time.Second)
		if err != nil {
			t.Errorf("Read: %v", err)
			return
		}
		got = buf[:n]
	})
	f.sched.Run(0)
	if string(got) != "lossy" {
		t.Fatalf("got %q", got)
	}
	if f.cst.Stats.Retransmits+f.sst.Stats.Retransmits == 0 {
		t.Log("note: no retransmits occurred (loss pattern missed); acceptable but unusual")
	}
}

func TestConnectionRefusedWhenNoListener(t *testing.T) {
	f := newFixture(t, Config{})
	var err error
	f.sched.Go("client", func() {
		_, err = f.client.DialTCP(serverAddr())
	})
	f.sched.Run(0)
	if err == nil {
		t.Fatal("dial succeeded with no listener")
	}
	if !errors.Is(err, netapi.ErrRefused) && !errors.Is(err, netapi.ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
}

func TestDialTimeoutWhenPeerSilent(t *testing.T) {
	f := newFixture(t, Config{})
	f.net.SetLoss(f.client, f.server, 1.0)
	var err error
	var elapsed time.Duration
	f.sched.Go("client", func() {
		start := f.sched.Now()
		_, err = f.client.DialTCP(serverAddr())
		elapsed = f.sched.Now() - start
	})
	f.sched.Run(0)
	if !errors.Is(err, netapi.ErrTimeout) {
		t.Fatalf("err = %v, want timeout", err)
	}
	if elapsed < time.Second {
		t.Fatalf("gave up after %v, want >= connect timeout", elapsed)
	}
}

func TestSYNCookieRejectsForgedAck(t *testing.T) {
	f := newFixture(t, Config{SYNCookies: true})
	l, err := f.server.ListenTCP(serverAddr())
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	f.sched.Go("accept", func() {
		for {
			if _, err := l.Accept(500 * time.Millisecond); err != nil {
				return
			}
			accepted++
		}
	})
	// Forge handshake-completing ACKs without ever sending SYN (the blind
	// spoofing attack SYN cookies defeat).
	f.sched.Go("attacker", func() {
		for i := 0; i < 50; i++ {
			src := netip.AddrPortFrom(netip.MustParseAddr("10.0.0.1"), uint16(40000+i))
			seg := &Segment{ACK: true, Seq: uint32(i * 1000), Ack: uint32(i * 7777)}
			_ = f.client.SendProto(netsim.ProtoTCP, src, serverAddr(), seg)
			f.sched.Sleep(time.Millisecond)
		}
	})
	f.sched.Run(0)
	if accepted != 0 {
		t.Fatalf("%d forged connections accepted", accepted)
	}
	if f.sst.Stats.CookieFailures != 50 {
		t.Fatalf("cookie failures = %d, want 50", f.sst.Stats.CookieFailures)
	}
}

func TestSYNFloodLeavesNoState(t *testing.T) {
	f := newFixture(t, Config{SYNCookies: true})
	l, _ := f.server.ListenTCP(serverAddr())
	defer l.Close()
	f.sched.Go("flood", func() {
		for i := 0; i < 10000; i++ {
			src := netip.AddrPortFrom(netip.AddrFrom4([4]byte{172, 16, byte(i >> 8), byte(i)}), 1234)
			_ = f.client.SendProto(netsim.ProtoTCP, src, serverAddr(), &Segment{SYN: true, Seq: uint32(i)})
		}
	})
	f.sched.Run(0)
	if f.sst.Stats.CurrentConns != 0 {
		t.Fatalf("conns = %d after SYN flood, want 0 (stateless)", f.sst.Stats.CurrentConns)
	}
	if f.sst.Stats.SYNCookiesSent != 10000 {
		t.Fatalf("cookies sent = %d", f.sst.Stats.SYNCookiesSent)
	}
}

func TestCleanCloseDeliversEOFAfterData(t *testing.T) {
	f := newFixture(t, Config{})
	l, _ := f.server.ListenTCP(serverAddr())
	f.sched.Go("server", func() {
		conn, err := l.Accept(netapi.NoTimeout)
		if err != nil {
			return
		}
		_, _ = conn.Write([]byte("bye"))
		_ = conn.Close()
	})
	var data []byte
	var readErr error
	f.sched.Go("client", func() {
		conn, err := f.client.DialTCP(serverAddr())
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		buf := make([]byte, 16)
		for {
			n, err := conn.Read(buf, time.Second)
			if n > 0 {
				data = append(data, buf[:n]...)
			}
			if err != nil {
				readErr = err
				break
			}
		}
		_ = conn.Close()
	})
	f.sched.Run(0)
	if string(data) != "bye" {
		t.Fatalf("data = %q", data)
	}
	if !errors.Is(readErr, netapi.ErrClosed) {
		t.Fatalf("read err = %v, want ErrClosed EOF", readErr)
	}
}

func TestConcurrentConnections(t *testing.T) {
	f := newFixture(t, Config{SYNCookies: true})
	f.echoServer(t)
	const n = 200
	done := 0
	for i := 0; i < n; i++ {
		f.sched.Go("client", func() {
			conn, err := f.client.DialTCP(serverAddr())
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			defer conn.Close()
			msg := []byte("ping")
			if _, err := conn.Write(msg); err != nil {
				return
			}
			buf := make([]byte, 16)
			if _, err := conn.Read(buf, 5*time.Second); err != nil {
				t.Errorf("Read: %v", err)
				return
			}
			done++
		})
	}
	f.sched.Run(0)
	if done != n {
		t.Fatalf("done = %d, want %d", done, n)
	}
	if f.sst.Stats.CurrentConns != 0 {
		t.Fatalf("leaked conns: %d", f.sst.Stats.CurrentConns)
	}
}

func TestConnAgeTracksDuration(t *testing.T) {
	f := newFixture(t, Config{})
	l, _ := f.server.ListenTCP(serverAddr())
	f.sched.Go("server", func() {
		conn, err := l.Accept(netapi.NoTimeout)
		if err != nil {
			return
		}
		f.sched.Sleep(30 * time.Millisecond)
		c := conn.(*Conn)
		if got := c.Age(); got != 30*time.Millisecond {
			t.Errorf("age = %v, want 30ms", got)
		}
		_ = conn.Close()
	})
	f.sched.Go("client", func() {
		conn, err := f.client.DialTCP(serverAddr())
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		defer conn.Close()
		buf := make([]byte, 1)
		_, _ = conn.Read(buf, time.Second)
	})
	f.sched.Run(0)
}

func TestSegmentHookObservesTraffic(t *testing.T) {
	var segs int
	f := newFixture(t, Config{OnSegment: func(int) { segs++ }})
	f.echoServer(t)
	f.sched.Go("client", func() {
		conn, err := f.client.DialTCP(serverAddr())
		if err != nil {
			return
		}
		defer conn.Close()
		_, _ = conn.Write([]byte("x"))
		buf := make([]byte, 4)
		_, _ = conn.Read(buf, time.Second)
	})
	f.sched.Run(0)
	if segs == 0 {
		t.Fatal("segment hook never fired")
	}
}
