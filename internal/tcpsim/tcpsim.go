// Package tcpsim is a miniature TCP implementation over netsim's segment
// transport: three-way handshake (optionally stateless via SYN cookies —
// the mechanism the DNS guard's TCP proxy relies on, §III-C), byte streams
// with cumulative acknowledgment, retransmission with bounded retries, and
// FIN/RST teardown. It provides netapi.Conn / netapi.Listener so the DNS
// servers, the resolver's TCP fallback, and the guard's TCP proxy all run
// over it unmodified inside the simulator.
//
// The model is deliberately simplified where the paper's experiments do not
// depend on fidelity: no congestion control or flow-control windows (DNS
// messages are a few hundred bytes), segments are delivered in order per
// link (netsim links are FIFO), and loss is recovered by a fixed RTO.
package tcpsim

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net/netip"
	"time"

	"dnsguard/internal/netapi"
	"dnsguard/internal/netsim"
	"dnsguard/internal/vclock"
)

// Segment is one simulated TCP segment.
type Segment struct {
	SYN, ACK, FIN, RST bool
	Seq, Ack           uint32
	Data               []byte
}

func (s Segment) String() string {
	return fmt.Sprintf("tcp[syn=%v ack=%v fin=%v rst=%v seq=%d ackn=%d len=%d]",
		s.SYN, s.ACK, s.FIN, s.RST, s.Seq, s.Ack, len(s.Data))
}

// Config tunes a Stack.
type Config struct {
	// SYNCookies enables stateless SYN handling on listeners: no
	// connection state exists until the handshake-completing ACK arrives
	// with a valid cookie, defeating SYN floods (§III-C).
	SYNCookies bool
	// RTO is the retransmission timeout. Zero means 200ms.
	RTO time.Duration
	// MaxRetries bounds retransmissions before the connection aborts.
	MaxRetries int
	// ConnectTimeout bounds Dial. Zero means 1s.
	ConnectTimeout time.Duration
	// AcceptBacklog bounds the pending-accept queue.
	AcceptBacklog int
	// OnSegment, when non-nil, observes every segment the stack sends or
	// receives; experiments hook CPU cost accounting here.
	OnSegment func(dataLen int)
}

func (c *Config) fillDefaults() {
	if c.RTO <= 0 {
		c.RTO = 200 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 5
	}
	if c.ConnectTimeout <= 0 {
		c.ConnectTimeout = time.Second
	}
	if c.AcceptBacklog <= 0 {
		c.AcceptBacklog = 1024
	}
}

// Stats counts stack activity.
type Stats struct {
	SegmentsIn     uint64
	SegmentsOut    uint64
	Retransmits    uint64
	Resets         uint64
	SYNCookiesSent uint64
	CookieFailures uint64
	Established    uint64
	CurrentConns   int
}

type connKey struct {
	local  netip.AddrPort
	remote netip.AddrPort
}

// Stack is a per-host TCP instance. Install creates one and wires it into
// the host so Host.DialTCP / Host.ListenTCP work.
type Stack struct {
	host      *netsim.Host
	sched     *vclock.Scheduler
	cfg       Config
	listeners map[netip.AddrPort]*Listener
	conns     map[connKey]*Conn
	ports     map[uint16]int // local-port refcounts (O(1) ephemeral allocation)
	nextPort  uint16
	secret    uint64

	// Stats is updated as the stack runs.
	Stats Stats
}

// Install attaches a TCP stack to h.
func Install(h *netsim.Host, cfg Config) *Stack {
	cfg.fillDefaults()
	st := &Stack{
		host:      h,
		sched:     h.Network().Scheduler(),
		cfg:       cfg,
		listeners: make(map[netip.AddrPort]*Listener),
		conns:     make(map[connKey]*Conn),
		ports:     make(map[uint16]int),
		nextPort:  50000,
		secret:    uint64(h.Network().Scheduler().Rand().Int63()),
	}
	h.HandleProto(netsim.ProtoTCP, st.receive)
	h.SetTCP(st)
	return st
}

var _ netsim.TCPProvider = (*Stack)(nil)

func (st *Stack) allocPort() uint16 {
	for {
		p := st.nextPort
		st.nextPort++
		if st.nextPort == 0 {
			st.nextPort = 50000
		}
		if st.ports[p] == 0 {
			return p
		}
	}
}

func (st *Stack) trackConn(c *Conn) {
	st.conns[connKey{c.local, c.remote}] = c
	st.ports[c.local.Port()]++
	st.Stats.CurrentConns++
}

func (st *Stack) untrackConn(c *Conn) {
	delete(st.conns, connKey{c.local, c.remote})
	if n := st.ports[c.local.Port()]; n > 1 {
		st.ports[c.local.Port()] = n - 1
	} else {
		delete(st.ports, c.local.Port())
	}
	st.Stats.CurrentConns--
}

func (st *Stack) send(from, to netip.AddrPort, seg *Segment) {
	st.Stats.SegmentsOut++
	if st.cfg.OnSegment != nil {
		st.cfg.OnSegment(len(seg.Data))
	}
	_ = st.host.SendProto(netsim.ProtoTCP, from, to, seg)
}

// receive is the protocol handler: it runs as an event callback and must not
// block.
func (st *Stack) receive(src, dst netip.AddrPort, payload any) {
	seg, ok := payload.(*Segment)
	if !ok {
		return
	}
	st.Stats.SegmentsIn++
	if st.cfg.OnSegment != nil {
		st.cfg.OnSegment(len(seg.Data))
	}
	if c, ok := st.conns[connKey{dst, src}]; ok {
		c.onSegment(seg)
		return
	}
	if l, ok := st.listeners[dst]; ok && !l.closed {
		l.onSegment(src, dst, seg)
		return
	}
	// Try a wildcard listener on the port across any owned address
	// (the guard listens on the ANS address it claims).
	for ap, l := range st.listeners {
		if ap.Port() == dst.Port() && !ap.Addr().IsValid() && !l.closed {
			l.onSegment(src, dst, seg)
			return
		}
	}
	if !seg.RST {
		st.Stats.Resets++
		st.send(dst, src, &Segment{RST: true, Ack: seg.Seq + uint32(len(seg.Data))})
	}
}

// synCookie derives the stateless ISN for a half-open handshake.
func (st *Stack) synCookie(src, dst netip.AddrPort, epoch uint64) uint32 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(st.secret >> (8 * i))
	}
	h.Write(b[:])
	sa := src.Addr().As16()
	da := dst.Addr().As16()
	h.Write(sa[:])
	h.Write(da[:])
	h.Write([]byte{byte(src.Port() >> 8), byte(src.Port()), byte(dst.Port() >> 8), byte(dst.Port())})
	for i := 0; i < 8; i++ {
		b[i] = byte(epoch >> (8 * i))
	}
	h.Write(b[:])
	return uint32(h.Sum64())
}

func (st *Stack) cookieEpoch() uint64 {
	return uint64(st.sched.Now() / (64 * time.Second))
}

// Dial implements netsim.TCPProvider.
func (st *Stack) Dial(h *netsim.Host, raddr netip.AddrPort) (netapi.Conn, error) {
	laddr := netip.AddrPortFrom(h.Addr(), st.allocPort())
	c := newConn(st, laddr, raddr)
	c.state = stateSynSent
	c.sndNxt = uint32(st.sched.Rand().Uint32())
	c.iss = c.sndNxt
	st.trackConn(c)

	syn := &Segment{SYN: true, Seq: c.sndNxt}
	c.sndNxt++
	st.send(laddr, raddr, syn)
	// Retransmit SYN on timeout.
	c.armRetransmit(func() *Segment { return syn })

	if _, err := c.established.Get(st.cfg.ConnectTimeout); err != nil {
		c.abort(netapi.ErrTimeout)
		if c.err != nil && !errors.Is(c.err, netapi.ErrTimeout) {
			return nil, c.err
		}
		return nil, fmt.Errorf("tcpsim: connect %v: %w", raddr, netapi.ErrTimeout)
	}
	if c.err != nil {
		return nil, c.err
	}
	return c, nil
}

// Listen implements netsim.TCPProvider.
func (st *Stack) Listen(h *netsim.Host, laddr netip.AddrPort) (netapi.Listener, error) {
	if _, ok := st.listeners[laddr]; ok {
		return nil, fmt.Errorf("tcpsim: %v: %w", laddr, netapi.ErrAddrInUse)
	}
	l := &Listener{
		stack:    st,
		addr:     laddr,
		backlog:  vclock.NewBoundedQueue[*Conn](st.sched, st.cfg.AcceptBacklog),
		halfOpen: make(map[connKey]*Segment),
	}
	st.listeners[laddr] = l
	return l, nil
}

// Listener accepts simulated TCP connections.
type Listener struct {
	stack    *Stack
	addr     netip.AddrPort
	backlog  *vclock.Queue[*Conn]
	halfOpen map[connKey]*Segment // non-SYN-cookie mode half-open state
	closed   bool
}

var _ netapi.Listener = (*Listener)(nil)

// Accept implements netapi.Listener.
func (l *Listener) Accept(timeout time.Duration) (netapi.Conn, error) {
	c, err := l.backlog.Get(timeout)
	if err != nil {
		if errors.Is(err, vclock.ErrTimeout) {
			return nil, netapi.ErrTimeout
		}
		return nil, netapi.ErrClosed
	}
	return c, nil
}

// Addr implements netapi.Listener.
func (l *Listener) Addr() netip.AddrPort { return l.addr }

// Close implements netapi.Listener.
func (l *Listener) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	delete(l.stack.listeners, l.addr)
	l.backlog.Close()
	return nil
}

// onSegment handles handshake traffic for this listener. dst is the address
// the peer targeted (meaningful when listening wildcard).
func (l *Listener) onSegment(src, dst netip.AddrPort, seg *Segment) {
	st := l.stack
	switch {
	case seg.SYN && !seg.ACK:
		if st.cfg.SYNCookies {
			isn := st.synCookie(src, dst, st.cookieEpoch())
			st.Stats.SYNCookiesSent++
			st.send(dst, src, &Segment{SYN: true, ACK: true, Seq: isn, Ack: seg.Seq + 1})
			return
		}
		// Stateful mode: remember the half-open handshake.
		isn := uint32(st.sched.Rand().Uint32())
		l.halfOpen[connKey{dst, src}] = &Segment{Seq: isn, Ack: seg.Seq + 1}
		st.send(dst, src, &Segment{SYN: true, ACK: true, Seq: isn, Ack: seg.Seq + 1})
	case seg.ACK && !seg.SYN:
		var isn, rcvNxt uint32
		if st.cfg.SYNCookies {
			epoch := st.cookieEpoch()
			if seg.Ack-1 != st.synCookie(src, dst, epoch) && seg.Ack-1 != st.synCookie(src, dst, epoch-1) {
				st.Stats.CookieFailures++
				st.Stats.Resets++
				st.send(dst, src, &Segment{RST: true, Ack: seg.Seq})
				return
			}
			// Stateless mode knows nothing of the client's ISN: only a
			// pure ACK (whose Seq is ISN+1 by construction) may complete
			// the handshake. A data segment arriving first — possible
			// when the pure ACK was lost — would otherwise seed rcvNxt
			// past the earlier bytes and silently truncate the stream.
			if len(seg.Data) > 0 || seg.FIN {
				st.Stats.Resets++
				st.send(dst, src, &Segment{RST: true, Ack: seg.Seq})
				return
			}
			isn = seg.Ack - 1
			rcvNxt = seg.Seq
		} else {
			half, ok := l.halfOpen[connKey{dst, src}]
			if !ok || seg.Ack-1 != half.Seq {
				st.Stats.Resets++
				st.send(dst, src, &Segment{RST: true, Ack: seg.Seq})
				return
			}
			delete(l.halfOpen, connKey{dst, src})
			isn = half.Seq
			// The SYN recorded the client's ISN: the stream starts at
			// ISN+1 regardless of which segment completes the handshake.
			rcvNxt = half.Ack
		}
		c := newConn(st, dst, src)
		c.state = stateEstablished
		c.iss = isn
		c.sndNxt = isn + 1
		c.sndUna = isn + 1
		c.rcvNxt = rcvNxt
		st.trackConn(c)
		st.Stats.Established++
		if !l.backlog.Put(c) {
			c.abort(netapi.ErrClosed) // backlog overflow
			return
		}
		// The completing segment may carry data already (client sends
		// the request with the handshake ACK).
		if len(seg.Data) > 0 || seg.FIN {
			c.onSegment(seg)
		}
	case seg.RST:
		delete(l.halfOpen, connKey{dst, src})
	}
}
