package tcpsim

import (
	"errors"
	"net/netip"
	"time"

	"dnsguard/internal/netapi"
	"dnsguard/internal/vclock"
)

type connState int

const (
	stateSynSent connState = iota + 1
	stateEstablished
	stateFinWait   // we sent FIN
	stateCloseWait // peer sent FIN
	stateClosed
)

// Conn is one simulated TCP connection endpoint.
type Conn struct {
	stack  *Stack
	local  netip.AddrPort
	remote netip.AddrPort
	state  connState

	iss    uint32 // initial send sequence
	sndNxt uint32 // next byte to send
	sndUna uint32 // oldest unacknowledged byte
	rcvNxt uint32 // next byte expected

	unacked []sentSeg // retransmission buffer, in order
	rtTimer *vclock.Timer
	retries int

	pending map[uint32][]byte // out-of-order segments by seq
	finSeq  uint32            // seq of peer FIN, once seen
	finSeen bool

	readBuf     []byte
	readSignal  *vclock.Queue[struct{}]
	established *vclock.Queue[error]

	err      error
	openedAt time.Duration
	// OnClose, when non-nil, runs once when the connection fully closes.
	OnClose func()
}

type sentSeg struct {
	seq uint32
	seg *Segment
}

var _ netapi.Conn = (*Conn)(nil)

func newConn(st *Stack, local, remote netip.AddrPort) *Conn {
	return &Conn{
		stack:       st,
		local:       local,
		remote:      remote,
		pending:     make(map[uint32][]byte),
		readSignal:  vclock.NewQueue[struct{}](st.sched),
		established: vclock.NewQueue[error](st.sched),
		openedAt:    st.sched.Now(),
	}
}

// LocalAddr implements netapi.Conn.
func (c *Conn) LocalAddr() netip.AddrPort { return c.local }

// RemoteAddr implements netapi.Conn.
func (c *Conn) RemoteAddr() netip.AddrPort { return c.remote }

// Age reports how long the connection has existed — the TCP proxy enforces
// the paper's 5×RTT duration cap with this.
func (c *Conn) Age() time.Duration { return c.stack.sched.Now() - c.openedAt }

// Write implements netapi.Conn: it queues data for delivery and returns
// immediately (the model has no send-window backpressure).
func (c *Conn) Write(b []byte) (int, error) {
	if c.state != stateEstablished && c.state != stateCloseWait {
		if c.err != nil {
			return 0, c.err
		}
		return 0, netapi.ErrClosed
	}
	data := make([]byte, len(b))
	copy(data, b)
	seg := &Segment{ACK: true, Seq: c.sndNxt, Ack: c.rcvNxt, Data: data}
	c.unacked = append(c.unacked, sentSeg{seq: c.sndNxt, seg: seg})
	c.sndNxt += uint32(len(data))
	c.stack.send(c.local, c.remote, seg)
	c.ensureRetransmit()
	return len(b), nil
}

// Read implements netapi.Conn.
func (c *Conn) Read(b []byte, timeout time.Duration) (int, error) {
	deadline := time.Duration(-1)
	if timeout >= 0 {
		deadline = c.stack.sched.Now() + timeout
	}
	for len(c.readBuf) == 0 {
		if c.err != nil {
			return 0, c.err
		}
		if c.finSeen && c.rcvNxt >= c.finSeq || c.state == stateClosed {
			return 0, netapi.ErrClosed // clean EOF
		}
		remain := netapi.NoTimeout
		if deadline >= 0 {
			remain = deadline - c.stack.sched.Now()
			if remain <= 0 {
				return 0, netapi.ErrTimeout
			}
		}
		if _, err := c.readSignal.Get(remain); err != nil {
			if errors.Is(err, vclock.ErrTimeout) {
				return 0, netapi.ErrTimeout
			}
			// Queue closed: re-check error/EOF state.
			if c.err != nil {
				return 0, c.err
			}
			return 0, netapi.ErrClosed
		}
	}
	n := copy(b, c.readBuf)
	c.readBuf = c.readBuf[n:]
	return n, nil
}

// Close implements netapi.Conn: it sends FIN and releases the endpoint. The
// model uses an abbreviated teardown — no TIME_WAIT.
func (c *Conn) Close() error {
	switch c.state {
	case stateClosed:
		return nil
	case stateSynSent:
		c.abort(netapi.ErrClosed)
		return nil
	}
	fin := &Segment{FIN: true, ACK: true, Seq: c.sndNxt, Ack: c.rcvNxt}
	c.sndNxt++
	c.stack.send(c.local, c.remote, fin)
	if c.state == stateCloseWait {
		// Peer already finished; we are done.
		c.teardown(nil)
	} else {
		c.state = stateFinWait
		// Keep state briefly to retransmit data; reap on timer.
		c.stack.sched.After(2*c.stack.cfg.RTO, func() { c.teardown(nil) })
	}
	return nil
}

// abort resets the connection immediately.
func (c *Conn) abort(err error) {
	if c.state == stateClosed {
		return
	}
	c.stack.Stats.Resets++
	c.stack.send(c.local, c.remote, &Segment{RST: true, Seq: c.sndNxt, Ack: c.rcvNxt})
	c.teardown(err)
}

func (c *Conn) teardown(err error) {
	if c.state == stateClosed {
		return
	}
	c.state = stateClosed
	if c.err == nil {
		c.err = err
	}
	if c.rtTimer != nil {
		c.rtTimer.Stop()
		c.rtTimer = nil
	}
	c.stack.untrackConn(c)
	c.readSignal.Close()
	c.established.Close()
	if c.OnClose != nil {
		c.OnClose()
		c.OnClose = nil
	}
}

// onSegment is the receive path; runs as an event callback (non-blocking).
func (c *Conn) onSegment(seg *Segment) {
	if c.state == stateClosed {
		return
	}
	if seg.RST {
		if c.rtTimer != nil {
			c.rtTimer.Stop()
			c.rtTimer = nil
		}
		c.teardown(netapi.ErrRefused)
		return
	}
	switch c.state {
	case stateSynSent:
		if seg.SYN && seg.ACK && seg.Ack == c.sndNxt {
			c.rcvNxt = seg.Seq + 1
			c.sndUna = seg.Ack
			c.state = stateEstablished
			c.stack.Stats.Established++
			if c.rtTimer != nil {
				c.rtTimer.Stop()
				c.rtTimer = nil
			}
			c.retries = 0
			// Complete the handshake. Data writes may piggyback later.
			c.stack.send(c.local, c.remote, &Segment{ACK: true, Seq: c.sndNxt, Ack: c.rcvNxt})
			c.established.Put(nil)
		}
		return
	}

	// Acknowledgment processing.
	if seg.ACK && seqGE(seg.Ack, c.sndUna) {
		c.sndUna = seg.Ack
		keep := c.unacked[:0]
		for _, ss := range c.unacked {
			if seqGE(c.sndUna, ss.seq+uint32(len(ss.seg.Data))) {
				continue // fully acked
			}
			keep = append(keep, ss)
		}
		c.unacked = keep
		if len(c.unacked) == 0 && c.rtTimer != nil {
			c.rtTimer.Stop()
			c.rtTimer = nil
			c.retries = 0
		}
	}

	// Data processing.
	progressed := false
	if len(seg.Data) > 0 {
		if seqGE(c.rcvNxt, seg.Seq+uint32(len(seg.Data))) {
			// Entirely old: re-ack.
			c.stack.send(c.local, c.remote, &Segment{ACK: true, Seq: c.sndNxt, Ack: c.rcvNxt})
		} else {
			if _, dup := c.pending[seg.Seq]; !dup {
				data := make([]byte, len(seg.Data))
				copy(data, seg.Data)
				c.pending[seg.Seq] = data
			}
			for {
				data, ok := c.pending[c.rcvNxt]
				if !ok {
					break
				}
				delete(c.pending, c.rcvNxt)
				c.readBuf = append(c.readBuf, data...)
				c.rcvNxt += uint32(len(data))
				progressed = true
			}
			// Ack what we have (cumulative).
			c.stack.send(c.local, c.remote, &Segment{ACK: true, Seq: c.sndNxt, Ack: c.rcvNxt})
		}
	}
	if seg.FIN {
		finSeq := seg.Seq + uint32(len(seg.Data))
		c.finSeen = true
		c.finSeq = finSeq
		if c.rcvNxt == finSeq {
			c.rcvNxt = finSeq + 1
			if c.state == stateEstablished {
				c.state = stateCloseWait
			} else if c.state == stateFinWait {
				c.teardown(nil)
			}
			c.stack.send(c.local, c.remote, &Segment{ACK: true, Seq: c.sndNxt, Ack: c.rcvNxt})
			progressed = true
		}
	}
	if progressed {
		// Wake one blocked reader (signal is sticky enough: readers
		// re-check buffers in a loop).
		c.readSignal.Put(struct{}{})
	}
}

// ensureRetransmit arms the retransmission timer for the oldest unacked
// segment.
func (c *Conn) ensureRetransmit() {
	if c.rtTimer != nil || len(c.unacked) == 0 {
		return
	}
	c.armRetransmit(func() *Segment {
		if len(c.unacked) == 0 {
			return nil
		}
		return c.unacked[0].seg
	})
}

func (c *Conn) armRetransmit(pick func() *Segment) {
	c.rtTimer = c.stack.sched.After(c.stack.cfg.RTO, func() {
		c.rtTimer = nil
		if c.state == stateClosed {
			return
		}
		seg := pick()
		if seg == nil {
			return
		}
		c.retries++
		if c.retries > c.stack.cfg.MaxRetries {
			c.teardown(netapi.ErrTimeout)
			return
		}
		c.stack.Stats.Retransmits++
		c.stack.send(c.local, c.remote, seg)
		c.armRetransmit(pick)
	})
}

// seqGE reports a >= b in sequence-number arithmetic.
func seqGE(a, b uint32) bool { return int32(a-b) >= 0 }
