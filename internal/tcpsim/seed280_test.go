package tcpsim

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"dnsguard/internal/netapi"
	"dnsguard/internal/netsim"
	"dnsguard/internal/vclock"
)

// TestRegressionHandshakeLossStreamStart reproduces a bug found by the
// stream-integrity property (seed 280): when the handshake-completing ACK
// and the first data segment were lost, a later data segment completed the
// handshake and the server seeded rcvNxt from it, silently skipping the
// start of the stream. The server must take the initial sequence from the
// SYN it acknowledged.
func TestRegressionHandshakeLossStreamStart(t *testing.T) {
	seed := int64(280)
	r := rand.New(rand.NewSource(seed))
	sched := vclock.New(seed)
	network := netsim.New(sched, time.Duration(1+r.Intn(5))*time.Millisecond)
	client := network.AddHost("c", netip.MustParseAddr("10.0.0.1"))
	server := network.AddHost("s", netip.MustParseAddr("10.0.0.2"))
	cst := Install(client, Config{})
	sc := r.Intn(2) == 0
	sst := Install(server, Config{SYNCookies: sc})
	lossy := r.Intn(2) == 0
	loss := 0.0
	if lossy {
		loss = float64(r.Intn(20)) / 100
		network.SetLoss(client, server, loss)
		network.SetLoss(server, client, loss)
	}
	payload := make([]byte, 1+r.Intn(20000))
	r.Read(payload)
	t.Logf("syncookies=%v lossy=%v loss=%.2f payloadLen=%d", sc, lossy, loss, len(payload))

	var received []byte
	ok := true
	l, _ := server.ListenTCP(netip.MustParseAddrPort("10.0.0.2:53"))
	sched.Go("server", func() {
		conn, err := l.Accept(netapi.NoTimeout)
		if err != nil {
			ok = false
			t.Logf("accept err %v", err)
			return
		}
		defer conn.Close()
		buf := make([]byte, 4096)
		for len(received) < len(payload) {
			n, err := conn.Read(buf, 30*time.Second)
			if err != nil {
				ok = false
				t.Logf("read err %v after %d", err, len(received))
				return
			}
			received = append(received, buf[:n]...)
		}
	})
	sched.Go("client", func() {
		conn, err := client.DialTCP(netip.MustParseAddrPort("10.0.0.2:53"))
		if err != nil {
			ok = false
			t.Logf("dial err %v", err)
			return
		}
		defer conn.Close()
		for off := 0; off < len(payload); {
			n := 1 + r.Intn(2000)
			if off+n > len(payload) {
				n = len(payload) - off
			}
			if _, err := conn.Write(payload[off : off+n]); err != nil {
				ok = false
				t.Logf("write err %v at %d", err, off)
				return
			}
			off += n
			if r.Intn(3) == 0 {
				sched.Sleep(time.Duration(r.Intn(5)) * time.Millisecond)
			}
		}
	})
	sched.Run(5 * time.Minute)
	t.Logf("ok=%v received=%d/%d cst=%+v sst=%+v", ok, len(received), len(payload), cst.Stats, sst.Stats)
	if len(received) > len(payload) || !bytes.Equal(received, payload[:len(received)]) {
		for i := range received {
			if received[i] != payload[i] {
				t.Logf("first mismatch at %d", i)
				break
			}
		}
		t.Fatal("corruption/reorder")
	}
}
