package ans

import (
	"net/netip"
	"testing"
	"time"

	"dnsguard/internal/dnswire"
	"dnsguard/internal/netapi"
	"dnsguard/internal/netsim"
	"dnsguard/internal/tcpsim"
	"dnsguard/internal/vclock"
	"dnsguard/internal/zone"
)

// TestServeDNSOverTCP exercises the length-framed TCP path end to end over
// the simulated TCP stack, including multiple queries on one connection.
func TestServeDNSOverTCP(t *testing.T) {
	sched := vclock.New(2)
	network := netsim.New(sched, time.Millisecond)
	ansHost := network.AddHost("ans", netip.MustParseAddr("1.2.3.4"))
	client := network.AddHost("client", netip.MustParseAddr("10.0.0.1"))
	tcpsim.Install(ansHost, tcpsim.Config{})
	tcpsim.Install(client, tcpsim.Config{})

	srv, err := New(Config{
		Env:       ansHost,
		Addr:      netip.MustParseAddrPort("1.2.3.4:53"),
		Zone:      zone.MustParse(fooText, dnswire.Root),
		EnableTCP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	sched.Go("client", func() {
		conn, err := client.DialTCP(netip.MustParseAddrPort("1.2.3.4:53"))
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		defer conn.Close()
		// Two pipelined queries on one connection.
		var frames []byte
		for i, name := range []string{"www.foo.com", "big.foo.com"} {
			wire, _ := dnswire.NewQuery(uint16(i+1), dnswire.MustName(name), dnswire.TypeA).Pack()
			frames, _ = dnswire.AppendTCPFrame(frames, wire)
		}
		if _, err := conn.Write(frames); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		var sc dnswire.FrameScanner
		buf := make([]byte, 4096)
		got := 0
		for got < 2 {
			n, err := conn.Read(buf, time.Second)
			if err != nil {
				t.Errorf("read after %d responses: %v", got, err)
				return
			}
			sc.Add(buf[:n])
			for {
				msg, ok, err := sc.Next()
				if err != nil {
					t.Errorf("frame: %v", err)
					return
				}
				if !ok {
					break
				}
				resp, err := dnswire.Unpack(msg)
				if err != nil {
					t.Errorf("unpack: %v", err)
					return
				}
				if resp.Flags.TC {
					t.Error("TCP response must never be truncated")
				}
				got++
			}
		}
	})
	sched.Run(time.Minute)
	if srv.Stats.TCPQueries != 2 {
		t.Fatalf("TCP queries = %d, want 2", srv.Stats.TCPQueries)
	}
}

// TestTruncationThenTCPFallback drives the classic oversize flow end to
// end: UDP answer truncated with TC, resolver retries over TCP and gets the
// full answer — the same mechanism the guard's TCP scheme hijacks.
func TestTruncationThenTCPFallback(t *testing.T) {
	sched := vclock.New(2)
	network := netsim.New(sched, time.Millisecond)
	ansHost := network.AddHost("ans", netip.MustParseAddr("1.2.3.4"))
	client := network.AddHost("client", netip.MustParseAddr("10.0.0.1"))
	tcpsim.Install(ansHost, tcpsim.Config{SYNCookies: true})
	tcpsim.Install(client, tcpsim.Config{})

	srv, err := New(Config{
		Env:       ansHost,
		Addr:      netip.MustParseAddrPort("1.2.3.4:53"),
		Zone:      zone.MustParse(fooText, dnswire.Root),
		EnableTCP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	// Raw client: UDP first, observe TC, then TCP.
	sched.Go("client", func() {
		conn, _ := client.ListenUDP(netip.AddrPort{})
		defer conn.Close()
		wire, _ := dnswire.NewQuery(9, dnswire.MustName("big.foo.com"), dnswire.TypeTXT).PackUDP(512)
		_ = conn.WriteTo(wire, netip.MustParseAddrPort("1.2.3.4:53"))
		payload, _, err := conn.ReadFrom(time.Second)
		if err != nil {
			t.Errorf("udp read: %v", err)
			return
		}
		udpResp, _ := dnswire.Unpack(payload)
		if !udpResp.Flags.TC {
			t.Error("expected TC on oversized UDP answer")
			return
		}
		tcpConn, err := client.DialTCP(netip.MustParseAddrPort("1.2.3.4:53"))
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		defer tcpConn.Close()
		full, _ := dnswire.NewQuery(10, dnswire.MustName("big.foo.com"), dnswire.TypeTXT).Pack()
		frame, _ := dnswire.AppendTCPFrame(nil, full)
		_, _ = tcpConn.Write(frame)
		var sc dnswire.FrameScanner
		buf := make([]byte, 8192)
		for {
			n, err := tcpConn.Read(buf, time.Second)
			if err != nil {
				t.Errorf("tcp read: %v", err)
				return
			}
			sc.Add(buf[:n])
			msg, ok, _ := sc.Next()
			if !ok {
				continue
			}
			resp, err := dnswire.Unpack(msg)
			if err != nil {
				t.Errorf("unpack: %v", err)
				return
			}
			if resp.Flags.TC {
				t.Error("TCP answer still truncated")
			}
			if len(resp.Answers) != 10 {
				t.Errorf("answers = %d, want all 10 TXT records", len(resp.Answers))
			}
			return
		}
	})
	sched.Run(time.Minute)
	_ = netapi.NoTimeout
}
