package ans

import (
	"net/netip"
	"testing"
	"time"

	"dnsguard/internal/dnswire"
	"dnsguard/internal/netsim"
	"dnsguard/internal/vclock"
	"dnsguard/internal/zone"
)

const barText = `
$ORIGIN bar.org.
@ 3600 IN SOA ns1 admin 1 7200 600 360000 60
@ 3600 IN NS ns1
ns1 3600 IN A 1.2.3.4
www 300 IN A 198.51.100.20
`

const subText = `
$ORIGIN deep.foo.com.
@ 3600 IN SOA ns1 admin 1 7200 600 360000 60
@ 3600 IN NS ns1
ns1 3600 IN A 1.2.3.4
www 300 IN A 198.51.100.30
`

func TestZoneSetLongestMatch(t *testing.T) {
	zs, err := NewZoneSet(
		zone.MustParse(fooText, dnswire.Root),
		zone.MustParse(barText, dnswire.Root),
		zone.MustParse(subText, dnswire.Root),
	)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		qname string
		want  string // apex, "" = none
	}{
		{"www.foo.com", "foo.com"},
		{"www.deep.foo.com", "deep.foo.com"}, // deeper zone wins
		{"www.bar.org", "bar.org"},
		{"bar.org", "bar.org"},
		{"www.example.net", ""},
	}
	for _, tt := range tests {
		z := zs.Match(dnswire.MustName(tt.qname))
		switch {
		case tt.want == "" && z != nil:
			t.Errorf("Match(%s) = %v, want none", tt.qname, z.Origin)
		case tt.want != "" && (z == nil || z.Origin != dnswire.MustName(tt.want)):
			t.Errorf("Match(%s) = %v, want %s", tt.qname, z, tt.want)
		}
	}
	if got := len(zs.Origins()); got != 3 {
		t.Fatalf("origins = %d", got)
	}
}

func TestZoneSetRejectsDuplicateAndInvalid(t *testing.T) {
	z := zone.MustParse(fooText, dnswire.Root)
	zs, err := NewZoneSet(z)
	if err != nil {
		t.Fatal(err)
	}
	if err := zs.Add(z); err == nil {
		t.Fatal("duplicate apex accepted")
	}
	if err := zs.Add(zone.New(dnswire.MustName("empty.test"))); err == nil {
		t.Fatal("invalid zone accepted")
	}
	if err := zs.Add(nil); err == nil {
		t.Fatal("nil zone accepted")
	}
}

func TestMultiZoneServer(t *testing.T) {
	sched := vclock.New(4)
	network := netsim.New(sched, time.Millisecond)
	ansHost := network.AddHost("ans", netip.MustParseAddr("1.2.3.4"))
	client := network.AddHost("client", netip.MustParseAddr("10.0.0.1"))

	zs, err := NewZoneSet(
		zone.MustParse(fooText, dnswire.Root),
		zone.MustParse(barText, dnswire.Root),
	)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Env: ansHost, Addr: ansAddr(), Zones: zs})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	resp := query(t, sched, client, ansAddr(), dnswire.NewQuery(1, dnswire.MustName("www.bar.org"), dnswire.TypeA))
	if resp == nil || len(resp.Answers) != 1 {
		t.Fatalf("bar.org answer = %v", resp)
	}
	resp = query(t, sched, client, ansAddr(), dnswire.NewQuery(2, dnswire.MustName("www.foo.com"), dnswire.TypeA))
	if resp == nil || len(resp.Answers) != 1 {
		t.Fatalf("foo.com answer = %v", resp)
	}
	resp = query(t, sched, client, ansAddr(), dnswire.NewQuery(3, dnswire.MustName("other.net"), dnswire.TypeA))
	if resp == nil || resp.Flags.RCode != dnswire.RCodeRefused {
		t.Fatalf("out-of-zone rcode = %v, want REFUSED", resp)
	}
}

func TestNewRejectsBothZoneAndZones(t *testing.T) {
	sched := vclock.New(4)
	network := netsim.New(sched, 0)
	h := network.AddHost("h", netip.MustParseAddr("1.2.3.4"))
	z := zone.MustParse(fooText, dnswire.Root)
	zs, _ := NewZoneSet(z)
	if _, err := New(Config{Env: h, Addr: ansAddr(), Zone: z, Zones: zs}); err == nil {
		t.Fatal("accepted both Zone and Zones")
	}
}
