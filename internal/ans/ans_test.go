package ans

import (
	"net/netip"
	"testing"
	"time"

	"dnsguard/internal/dnswire"
	"dnsguard/internal/netapi"
	"dnsguard/internal/netsim"
	"dnsguard/internal/vclock"
	"dnsguard/internal/zone"
)

const fooText = `
$ORIGIN foo.com.
$TTL 3600
@    IN SOA ns1 admin 1 7200 600 360000 60
@    IN NS  ns1
ns1  IN A   192.0.2.1
www  IN A   198.51.100.10
big  IN TXT "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
big  IN TXT "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"
big  IN TXT "cccccccccccccccccccccccccccccccccccccccccccccccccc"
big  IN TXT "dddddddddddddddddddddddddddddddddddddddddddddddddd"
big  IN TXT "eeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeee"
big  IN TXT "ffffffffffffffffffffffffffffffffffffffffffffffffff"
big  IN TXT "gggggggggggggggggggggggggggggggggggggggggggggggggg"
big  IN TXT "hhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhh"
big  IN TXT "iiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiii"
big  IN TXT "jjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjj"
`

func testServer(t *testing.T, mutate func(*Config)) (*vclock.Scheduler, *netsim.Host, *Server) {
	t.Helper()
	sched := vclock.New(1)
	net := netsim.New(sched, time.Millisecond)
	ansHost := net.AddHost("ans", netip.MustParseAddr("1.2.3.4"))
	client := net.AddHost("client", netip.MustParseAddr("10.0.0.1"))
	cfg := Config{
		Env:  ansHost,
		Addr: netip.AddrPortFrom(ansHost.Addr(), 53),
		Zone: zone.MustParse(fooText, dnswire.Root),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return sched, client, srv
}

// query sends one UDP query from client and returns the decoded response.
func query(t *testing.T, sched *vclock.Scheduler, client *netsim.Host, to netip.AddrPort, q *dnswire.Message) *dnswire.Message {
	t.Helper()
	var resp *dnswire.Message
	sched.Go("client", func() {
		conn, err := client.ListenUDP(netip.AddrPortFrom(client.Addr(), 0))
		if err != nil {
			t.Errorf("client bind: %v", err)
			return
		}
		defer conn.Close()
		wire, err := q.PackUDP(dnswire.MaxUDPSize)
		if err != nil {
			t.Errorf("pack: %v", err)
			return
		}
		if err := conn.WriteTo(wire, to); err != nil {
			t.Errorf("send: %v", err)
			return
		}
		payload, _, err := conn.ReadFrom(time.Second)
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		resp, err = dnswire.Unpack(payload)
		if err != nil {
			t.Errorf("unpack: %v", err)
		}
	})
	sched.Run(0)
	return resp
}

func ansAddr() netip.AddrPort { return netip.MustParseAddrPort("1.2.3.4:53") }

func TestServeAuthoritativeAnswer(t *testing.T) {
	sched, client, _ := testServer(t, nil)
	resp := query(t, sched, client, ansAddr(), dnswire.NewQuery(1, dnswire.MustName("www.foo.com"), dnswire.TypeA))
	if resp == nil {
		t.Fatal("no response")
	}
	if !resp.Flags.QR || !resp.Flags.AA || resp.Flags.RCode != dnswire.RCodeNoError {
		t.Fatalf("flags = %+v", resp.Flags)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %v", resp.Answers)
	}
	if a := resp.Answers[0].Data.(*dnswire.AData).Addr; a != netip.MustParseAddr("198.51.100.10") {
		t.Fatalf("addr = %v", a)
	}
}

func TestServeNXDomain(t *testing.T) {
	sched, client, _ := testServer(t, nil)
	resp := query(t, sched, client, ansAddr(), dnswire.NewQuery(2, dnswire.MustName("missing.foo.com"), dnswire.TypeA))
	if resp == nil {
		t.Fatal("no response")
	}
	if resp.Flags.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %v", resp.Flags.RCode)
	}
	if len(resp.Authority) != 1 || resp.Authority[0].Type != dnswire.TypeSOA {
		t.Fatalf("authority = %v", resp.Authority)
	}
}

func TestServeTruncatesOversizeUDP(t *testing.T) {
	sched, client, srv := testServer(t, nil)
	resp := query(t, sched, client, ansAddr(), dnswire.NewQuery(3, dnswire.MustName("big.foo.com"), dnswire.TypeTXT))
	if resp == nil {
		t.Fatal("no response")
	}
	if !resp.Flags.TC {
		t.Fatal("TC not set for oversized response")
	}
	if srv.Stats.Truncated != 1 {
		t.Fatalf("truncated = %d", srv.Stats.Truncated)
	}
}

func TestServeTTLOverride(t *testing.T) {
	zero := uint32(0)
	sched, client, _ := testServer(t, func(c *Config) { c.TTLOverride = &zero })
	resp := query(t, sched, client, ansAddr(), dnswire.NewQuery(4, dnswire.MustName("www.foo.com"), dnswire.TypeA))
	if resp == nil {
		t.Fatal("no response")
	}
	if resp.Answers[0].TTL != 0 {
		t.Fatalf("ttl = %d, want 0", resp.Answers[0].TTL)
	}
}

func TestServeDropsMalformed(t *testing.T) {
	sched := vclock.New(1)
	net := netsim.New(sched, time.Millisecond)
	ansHost := net.AddHost("ans", netip.MustParseAddr("1.2.3.4"))
	client := net.AddHost("client", netip.MustParseAddr("10.0.0.1"))
	srv, err := New(Config{Env: ansHost, Addr: ansAddr(), Zone: zone.MustParse(fooText, dnswire.Root)})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	sched.Go("client", func() {
		conn, _ := client.ListenUDP(netip.AddrPortFrom(client.Addr(), 0))
		defer conn.Close()
		_ = conn.WriteTo([]byte{1, 2, 3}, ansAddr())
		if _, _, err := conn.ReadFrom(100 * time.Millisecond); err == nil {
			t.Error("got a response to garbage")
		}
	})
	sched.Run(0)
	if srv.Stats.Malformed != 1 {
		t.Fatalf("malformed = %d", srv.Stats.Malformed)
	}
}

func TestServeRefusesNonINET(t *testing.T) {
	sched, client, _ := testServer(t, nil)
	q := dnswire.NewQuery(5, dnswire.MustName("www.foo.com"), dnswire.TypeA)
	q.Questions[0].Class = dnswire.Class(3) // CHAOS
	resp := query(t, sched, client, ansAddr(), q)
	if resp == nil {
		t.Fatal("no response")
	}
	if resp.Flags.RCode != dnswire.RCodeRefused {
		t.Fatalf("rcode = %v", resp.Flags.RCode)
	}
}

func TestServeChargesCPU(t *testing.T) {
	var cpu *netsim.CPU
	sched := vclock.New(1)
	net := netsim.New(sched, time.Millisecond)
	ansHost := net.AddHost("ans", netip.MustParseAddr("1.2.3.4"))
	client := net.AddHost("client", netip.MustParseAddr("10.0.0.1"))
	cpu = ansHost.CPU()
	srv, err := New(Config{
		Env: ansHost, Addr: ansAddr(),
		Zone:         zone.MustParse(fooText, dnswire.Root),
		CPU:          cpu,
		CostPerQuery: 71 * time.Microsecond, // BIND-like 14K/s
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		id := uint16(i)
		sched.Go("client", func() {
			conn, _ := client.ListenUDP(netip.AddrPortFrom(client.Addr(), 0))
			defer conn.Close()
			wire, _ := dnswire.NewQuery(id, dnswire.MustName("www.foo.com"), dnswire.TypeA).PackUDP(512)
			_ = conn.WriteTo(wire, ansAddr())
			_, _, _ = conn.ReadFrom(time.Second)
		})
	}
	sched.Run(0)
	if got := cpu.BusyTime(); got != 710*time.Microsecond {
		t.Fatalf("busy = %v, want 710µs", got)
	}
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("accepted empty config")
	}
	sched := vclock.New(1)
	net := netsim.New(sched, 0)
	h := net.AddHost("h", netip.MustParseAddr("1.2.3.4"))
	if _, err := New(Config{Env: h, Addr: ansAddr()}); err == nil {
		t.Fatal("accepted missing zone")
	}
	bad := zone.New(dnswire.MustName("foo.com")) // no SOA
	if _, err := New(Config{Env: h, Addr: ansAddr(), Zone: bad}); err == nil {
		t.Fatal("accepted invalid zone")
	}
}

var _ = netapi.NoTimeout // keep import if helpers change
