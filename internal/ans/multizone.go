package ans

import (
	"errors"
	"fmt"
	"sort"

	"dnsguard/internal/dnswire"
	"dnsguard/internal/zone"
)

// ZoneSet serves several zones from one server, selecting per query the
// zone with the longest apex matching the question (real authoritative
// servers host many zones on one address; the resolver tests' glueless
// scenario needs this too).
type ZoneSet struct {
	zones map[dnswire.Name]*zone.Zone
}

// NewZoneSet builds a set from the given zones.
func NewZoneSet(zones ...*zone.Zone) (*ZoneSet, error) {
	zs := &ZoneSet{zones: make(map[dnswire.Name]*zone.Zone, len(zones))}
	for _, z := range zones {
		if err := zs.Add(z); err != nil {
			return nil, err
		}
	}
	return zs, nil
}

// Add inserts one zone; duplicate apexes are rejected.
func (zs *ZoneSet) Add(z *zone.Zone) error {
	if z == nil {
		return errors.New("ans: nil zone")
	}
	if err := z.Validate(); err != nil {
		return fmt.Errorf("ans: zone %s: %w", z.Origin, err)
	}
	if _, dup := zs.zones[z.Origin]; dup {
		return fmt.Errorf("ans: duplicate zone %s", z.Origin)
	}
	zs.zones[z.Origin] = z
	return nil
}

// Match returns the zone with the deepest apex enclosing qname, or nil.
func (zs *ZoneSet) Match(qname dnswire.Name) *zone.Zone {
	for n := qname; ; n = n.Parent() {
		if z, ok := zs.zones[n]; ok {
			return z
		}
		if n.IsRoot() {
			return nil
		}
	}
}

// Origins lists the hosted apexes, sorted.
func (zs *ZoneSet) Origins() []dnswire.Name {
	out := make([]dnswire.Name, 0, len(zs.zones))
	for n := range zs.zones {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Lookup dispatches to the matching zone; questions outside every hosted
// zone get REFUSED semantics (Kind 0 answer distinguished by ok=false).
func (zs *ZoneSet) Lookup(qname dnswire.Name, qtype dnswire.Type) (zone.Answer, bool) {
	z := zs.Match(qname)
	if z == nil {
		return zone.Answer{}, false
	}
	return z.Lookup(qname, qtype), true
}
