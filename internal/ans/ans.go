// Package ans implements an authoritative DNS name server over a netapi.Env:
// UDP with RFC 1035 truncation and DNS-over-TCP with length framing. It
// serves a zone.Zone and models the paper's protected ANS (BIND 9.3.1 on the
// testbed). A per-request CPU cost can be attached so simulations reproduce
// the server's measured capacity (14K req/s UDP for BIND, 110K req/s for the
// authors' ANS simulator).
package ans

import (
	"errors"
	"fmt"
	"net/netip"
	"sync/atomic"
	"time"

	"dnsguard/internal/dnswire"
	"dnsguard/internal/metrics"
	"dnsguard/internal/netapi"
	"dnsguard/internal/zone"
)

// CPUWorker charges simulated CPU time; netsim.(*CPU) implements it. A nil
// worker means requests are processed instantaneously (real-socket mode).
type CPUWorker interface {
	Work(d time.Duration)
}

// Config parameterizes a Server.
type Config struct {
	// Env supplies clock and sockets.
	Env netapi.Env
	// Addr is the UDP (and TCP) service address, typically port 53.
	Addr netip.AddrPort
	// Zone is the authoritative data to serve. Exactly one of Zone and
	// Zones must be set.
	Zone *zone.Zone
	// Zones serves multiple zones from one server (longest-apex match).
	Zones *ZoneSet
	// UDPSize is the maximum UDP response size; 0 means 512.
	UDPSize int
	// CPU, when non-nil, is charged CostPerQuery for every request.
	CPU CPUWorker
	// CostPerQuery is the simulated service time per request.
	CostPerQuery time.Duration
	// TTLOverride, when non-nil, replaces every response TTL. The paper's
	// Figure 5 experiment sets it to 0 to disable caching.
	TTLOverride *uint32
	// EnableTCP also serves DNS over TCP.
	EnableTCP bool
	// RecursionAvailable sets the RA bit (an ANS normally clears it).
	RecursionAvailable bool
}

// Stats counts server activity. Fields are written atomically (the UDP
// serving proc and per-TCP-connection procs run concurrently under real
// clocks).
type Stats struct {
	UDPQueries uint64
	TCPQueries uint64
	Malformed  uint64
	Responses  uint64
	Truncated  uint64
}

// MetricsInto registers every counter as an ans_* series reading the live
// fields.
func (s *Stats) MetricsInto(r *metrics.Registry) {
	for name, f := range map[string]*uint64{
		"ans_udp_queries": &s.UDPQueries,
		"ans_tcp_queries": &s.TCPQueries,
		"ans_malformed":   &s.Malformed,
		"ans_responses":   &s.Responses,
		"ans_truncated":   &s.Truncated,
	} {
		f := f
		r.FuncUint(name, func() uint64 { return atomic.LoadUint64(f) })
	}
}

// Server is a running authoritative server.
type Server struct {
	cfg  Config
	udp  netapi.UDPConn
	tcpl netapi.Listener

	// Stats is updated as the server runs (atomically; see Stats).
	Stats Stats
}

// New validates cfg and creates a server (not yet started).
func New(cfg Config) (*Server, error) {
	if cfg.Env == nil {
		return nil, errors.New("ans: Config.Env is required")
	}
	switch {
	case cfg.Zone == nil && cfg.Zones == nil:
		return nil, errors.New("ans: Config.Zone or Config.Zones is required")
	case cfg.Zone != nil && cfg.Zones != nil:
		return nil, errors.New("ans: Config.Zone and Config.Zones are mutually exclusive")
	case cfg.Zone != nil:
		if err := cfg.Zone.Validate(); err != nil {
			return nil, fmt.Errorf("ans: invalid zone: %w", err)
		}
		zs, err := NewZoneSet(cfg.Zone)
		if err != nil {
			return nil, err
		}
		cfg.Zones = zs
	}
	if cfg.UDPSize <= 0 {
		cfg.UDPSize = dnswire.MaxUDPSize
	}
	return &Server{cfg: cfg}, nil
}

// Start binds sockets and spawns the serving procs.
func (s *Server) Start() error {
	udp, err := s.cfg.Env.ListenUDP(s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("ans: binding UDP %v: %w", s.cfg.Addr, err)
	}
	s.udp = udp
	s.cfg.Env.Go("ans-udp", s.serveUDP)
	if s.cfg.EnableTCP {
		l, err := s.cfg.Env.ListenTCP(s.cfg.Addr)
		if err != nil {
			udp.Close()
			return fmt.Errorf("ans: binding TCP %v: %w", s.cfg.Addr, err)
		}
		s.tcpl = l
		s.cfg.Env.Go("ans-tcp", s.serveTCP)
	}
	return nil
}

// Close shuts the server's sockets; serving procs exit.
func (s *Server) Close() {
	if s.udp != nil {
		_ = s.udp.Close()
	}
	if s.tcpl != nil {
		_ = s.tcpl.Close()
	}
}

// Addr returns the server's bound UDP address.
func (s *Server) Addr() netip.AddrPort {
	if s.udp != nil {
		return s.udp.LocalAddr()
	}
	return s.cfg.Addr
}

func (s *Server) serveUDP() {
	for {
		payload, src, err := s.udp.ReadFrom(netapi.NoTimeout)
		if err != nil {
			return // closed
		}
		atomic.AddUint64(&s.Stats.UDPQueries, 1)
		resp := s.HandleQuery(payload)
		if resp == nil {
			continue
		}
		wire, err := resp.PackUDP(s.cfg.UDPSize)
		if err != nil {
			continue
		}
		if wire[2]&0x02 != 0 { // TC bit, possibly set by PackUDP truncation
			atomic.AddUint64(&s.Stats.Truncated, 1)
		}
		atomic.AddUint64(&s.Stats.Responses, 1)
		_ = s.udp.WriteTo(wire, src)
	}
}

func (s *Server) serveTCP() {
	for {
		conn, err := s.tcpl.Accept(netapi.NoTimeout)
		if err != nil {
			return // closed
		}
		s.cfg.Env.Go("ans-tcp-conn", func() { s.serveConn(conn) })
	}
}

func (s *Server) serveConn(conn netapi.Conn) {
	defer conn.Close()
	var sc dnswire.FrameScanner
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf, 30*time.Second)
		if err != nil {
			return
		}
		sc.Add(buf[:n])
		for {
			frame, ok, err := sc.Next()
			if err != nil {
				return
			}
			if !ok {
				break
			}
			atomic.AddUint64(&s.Stats.TCPQueries, 1)
			resp := s.HandleQuery(frame)
			if resp == nil {
				return
			}
			wire, err := resp.Pack()
			if err != nil {
				return
			}
			out, err := dnswire.AppendTCPFrame(nil, wire)
			if err != nil {
				return
			}
			atomic.AddUint64(&s.Stats.Responses, 1)
			if _, err := conn.Write(out); err != nil {
				return
			}
		}
	}
}

// HandleQuery implements the authoritative logic for one request payload and
// returns the response message (nil to drop). It is exported so the guard
// and tests can drive the server in-process.
func (s *Server) HandleQuery(payload []byte) *dnswire.Message {
	if s.cfg.CPU != nil && s.cfg.CostPerQuery > 0 {
		s.cfg.CPU.Work(s.cfg.CostPerQuery)
	}
	q, err := dnswire.Unpack(payload)
	if err != nil || q.Flags.QR || len(q.Questions) == 0 {
		atomic.AddUint64(&s.Stats.Malformed, 1)
		return nil
	}
	resp := q.Response()
	resp.Flags.RA = s.cfg.RecursionAvailable
	if q.Flags.Opcode != dnswire.OpcodeQuery {
		resp.Flags.RCode = dnswire.RCodeNotImp
		return resp
	}
	question := q.Question()
	if question.Class != dnswire.ClassINET {
		resp.Flags.RCode = dnswire.RCodeRefused
		return resp
	}
	ans, hosted := s.cfg.Zones.Lookup(question.Name, question.Type)
	if !hosted {
		// Not authoritative for anything enclosing the name.
		resp.Flags.RCode = dnswire.RCodeRefused
		return resp
	}
	switch ans.Kind {
	case zone.KindAnswer:
		resp.Flags.AA = true
		resp.Answers = ans.Answer
	case zone.KindReferral:
		resp.Authority = ans.Authority
		resp.Additional = ans.Additional
	case zone.KindNoData:
		resp.Flags.AA = true
		resp.Authority = ans.Authority
	case zone.KindNXDomain:
		resp.Flags.AA = true
		resp.Flags.RCode = dnswire.RCodeNXDomain
		resp.Authority = ans.Authority
	}
	if s.cfg.TTLOverride != nil {
		override(resp.Answers, *s.cfg.TTLOverride)
		override(resp.Authority, *s.cfg.TTLOverride)
		override(resp.Additional, *s.cfg.TTLOverride)
	}
	return resp
}

func override(rrs []dnswire.RR, ttl uint32) {
	for i := range rrs {
		rrs[i].TTL = ttl
	}
}
