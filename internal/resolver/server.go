package resolver

import (
	"errors"
	"fmt"
	"net/netip"
	"sync/atomic"
	"time"

	"dnsguard/internal/dnswire"
	"dnsguard/internal/metrics"
	"dnsguard/internal/netapi"
)

// ServerConfig parameterizes an LRS front end.
type ServerConfig struct {
	// Env supplies clock and sockets.
	Env netapi.Env
	// Addr is the UDP service address (port 53).
	Addr netip.AddrPort
	// Resolver answers the questions.
	Resolver *Resolver
	// AllowedClients, when non-empty, restricts service to sources inside
	// these prefixes — the paper notes most LRSs only serve their own
	// organization, which is what stops attackers from recruiting LRSs.
	AllowedClients []netip.Prefix
}

// Server exposes a Resolver as a recursive DNS service over UDP, the role
// the paper's LRS plays for stub resolvers (message 1/8 in Figure 3).
type Server struct {
	cfg ServerConfig
	udp netapi.UDPConn

	// Stats counts server activity.
	Stats ServerStats
}

// ServerStats counts LRS front-end activity. Fields are written atomically
// (the serve loop and per-query procs run concurrently under real clocks).
type ServerStats struct {
	Queries  uint64
	Refused  uint64
	Answered uint64
	Failed   uint64
}

// MetricsInto registers every counter as an lrs_* series reading the live
// fields.
func (s *ServerStats) MetricsInto(r *metrics.Registry) {
	for name, f := range map[string]*uint64{
		"lrs_queries":  &s.Queries,
		"lrs_refused":  &s.Refused,
		"lrs_answered": &s.Answered,
		"lrs_failed":   &s.Failed,
	} {
		f := f
		r.FuncUint(name, func() uint64 { return atomic.LoadUint64(f) })
	}
}

// NewServer validates cfg and creates an LRS server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Env == nil || cfg.Resolver == nil {
		return nil, errors.New("resolver: ServerConfig.Env and Resolver are required")
	}
	return &Server{cfg: cfg}, nil
}

// Start binds the socket and spawns the serving proc.
func (s *Server) Start() error {
	udp, err := s.cfg.Env.ListenUDP(s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("resolver: binding %v: %w", s.cfg.Addr, err)
	}
	s.udp = udp
	s.cfg.Env.Go("lrs", s.serve)
	return nil
}

// Close shuts the server down.
func (s *Server) Close() {
	if s.udp != nil {
		_ = s.udp.Close()
	}
}

// Addr returns the bound address.
func (s *Server) Addr() netip.AddrPort {
	if s.udp != nil {
		return s.udp.LocalAddr()
	}
	return s.cfg.Addr
}

func (s *Server) allowed(src netip.Addr) bool {
	if len(s.cfg.AllowedClients) == 0 {
		return true
	}
	for _, p := range s.cfg.AllowedClients {
		if p.Contains(src) {
			return true
		}
	}
	return false
}

func (s *Server) serve() {
	for {
		payload, src, err := s.udp.ReadFrom(netapi.NoTimeout)
		if err != nil {
			return
		}
		atomic.AddUint64(&s.Stats.Queries, 1)
		q, err := dnswire.Unpack(payload)
		if err != nil || q.Flags.QR || len(q.Questions) == 0 {
			continue
		}
		if !s.allowed(src.Addr()) {
			atomic.AddUint64(&s.Stats.Refused, 1)
			resp := q.Response()
			resp.Flags.RCode = dnswire.RCodeRefused
			if wire, err := resp.PackUDP(dnswire.MaxUDPSize); err == nil {
				_ = s.udp.WriteTo(wire, src)
			}
			continue
		}
		// Each recursive question gets its own proc: resolution blocks on
		// upstream round trips.
		s.cfg.Env.Go("lrs-query", func() { s.answer(q, src) })
	}
}

func (s *Server) answer(q *dnswire.Message, src netip.AddrPort) {
	question := q.Question()
	res, err := s.cfg.Resolver.Resolve(question.Name, question.Type)
	resp := q.Response()
	resp.Flags.RA = true
	if err != nil {
		atomic.AddUint64(&s.Stats.Failed, 1)
		resp.Flags.RCode = dnswire.RCodeServFail
	} else {
		resp.Flags.RCode = res.RCode
		resp.Answers = res.Answers
		atomic.AddUint64(&s.Stats.Answered, 1)
	}
	if wire, err := resp.PackUDP(dnswire.MaxUDPSize); err == nil {
		_ = s.udp.WriteTo(wire, src)
	}
}

// StubQuery is a stub-resolver helper: one recursive UDP query to an LRS.
func StubQuery(env netapi.Env, lrs netip.AddrPort, qname dnswire.Name, qtype dnswire.Type, id uint16, timeout time.Duration) (*dnswire.Message, error) {
	conn, err := env.ListenUDP(netip.AddrPort{})
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	wire, err := dnswire.NewQuery(id, qname, qtype).PackUDP(dnswire.MaxUDPSize)
	if err != nil {
		return nil, err
	}
	if err := conn.WriteTo(wire, lrs); err != nil {
		return nil, err
	}
	deadline := env.Now() + timeout
	for {
		remain := deadline - env.Now()
		if remain <= 0 {
			return nil, netapi.ErrTimeout
		}
		payload, _, err := conn.ReadFrom(remain)
		if err != nil {
			return nil, err
		}
		resp, err := dnswire.Unpack(payload)
		if err != nil || resp.ID != id || !resp.Flags.QR {
			continue
		}
		return resp, nil
	}
}
