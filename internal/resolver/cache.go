// Package resolver implements the DNS Guard paper's LRS (local recursive
// server): a TTL-respecting cache and an iterative resolver that walks the
// delegation hierarchy from root hints, resolves NS target names (including
// the guard's fabricated cookie names, which need no special handling — that
// is the point of the DNS-based scheme's transparency), falls back to TCP on
// truncated responses, and retries with the configurable timeout whose
// 2-second BIND default is what makes unprotected servers collapse under
// attack (Figure 5).
package resolver

import (
	"sort"
	"sync"
	"time"

	"dnsguard/internal/dnswire"
)

type cacheKey struct {
	name  dnswire.Name
	rtype dnswire.Type
}

type cacheEntry struct {
	rrs      []dnswire.RR
	negative bool
	rcode    dnswire.RCode
	storedAt time.Duration
	expires  time.Duration
}

// Cache is a TTL-based DNS cache on a monotonic clock supplied by the
// caller. All methods are safe for concurrent use: the real LRS daemon
// resolves each query on its own goroutine against one shared cache.
// Set MinTTL/MaxTTL before the cache is shared.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]cacheEntry
	max     int
	// MinTTL clamps the minimum time entries stay cached.
	MinTTL time.Duration
	// MaxTTL clamps how long any entry may stay cached.
	MaxTTL time.Duration

	hits   uint64
	misses uint64
}

// NewCache creates a cache bounded to max entries (random-ish eviction of
// expired entries first, then arbitrary).
func NewCache(max int) *Cache {
	if max < 16 {
		max = 16
	}
	return &Cache{
		entries: make(map[cacheKey]cacheEntry),
		max:     max,
		MaxTTL:  7 * 24 * time.Hour,
	}
}

// Put stores an rrset. TTL is taken as the minimum TTL across rrs; a TTL of
// zero means the rrset is not cached (the Figure 5 configuration).
func (c *Cache) Put(now time.Duration, name dnswire.Name, rtype dnswire.Type, rrs []dnswire.RR) {
	if len(rrs) == 0 {
		return
	}
	minTTL := rrs[0].TTL
	for _, rr := range rrs[1:] {
		if rr.TTL < minTTL {
			minTTL = rr.TTL
		}
	}
	ttl := time.Duration(minTTL) * time.Second
	// TTL 0 means "do not cache" (Figure 5 semantics) and must be honoured
	// before the MinTTL floor — clamping first would cache the uncacheable.
	if ttl <= 0 {
		return
	}
	if ttl < c.MinTTL {
		ttl = c.MinTTL
	}
	if ttl > c.MaxTTL {
		ttl = c.MaxTTL
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evictIfFull(now)
	c.entries[cacheKey{name, rtype}] = cacheEntry{
		rrs:      append([]dnswire.RR(nil), rrs...),
		storedAt: now,
		expires:  now + ttl,
	}
}

// PutNegative stores an NXDOMAIN or NODATA result for ttl.
func (c *Cache) PutNegative(now time.Duration, name dnswire.Name, rtype dnswire.Type, rcode dnswire.RCode, ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	if ttl > c.MaxTTL {
		ttl = c.MaxTTL
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evictIfFull(now)
	c.entries[cacheKey{name, rtype}] = cacheEntry{
		negative: true,
		rcode:    rcode,
		storedAt: now,
		expires:  now + ttl,
	}
}

// Get returns the cached rrset with TTLs aged by the time in cache. negative
// reports a cached negative result (rrs nil, rcode meaningful).
func (c *Cache) Get(now time.Duration, name dnswire.Name, rtype dnswire.Type) (rrs []dnswire.RR, rcode dnswire.RCode, negative, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, exists := c.entries[cacheKey{name, rtype}]
	if !exists || now >= e.expires {
		if exists {
			delete(c.entries, cacheKey{name, rtype})
		}
		c.misses++
		return nil, 0, false, false
	}
	c.hits++
	if e.negative {
		return nil, e.rcode, true, true
	}
	aged := make([]dnswire.RR, len(e.rrs))
	copy(aged, e.rrs)
	elapsed := uint32((now - e.storedAt) / time.Second)
	for i := range aged {
		if aged[i].TTL > elapsed {
			aged[i].TTL -= elapsed
		} else {
			aged[i].TTL = 0
		}
	}
	return aged, dnswire.RCodeNoError, false, true
}

// Has reports whether a live positive entry exists.
func (c *Cache) Has(now time.Duration, name dnswire.Name, rtype dnswire.Type) bool {
	rrs, _, neg, ok := c.Get(now, name, rtype)
	return ok && !neg && len(rrs) > 0
}

// Flush removes everything.
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[cacheKey]cacheEntry)
}

// Len reports live entry count (including expired not yet reaped).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats reports hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

func (c *Cache) evictIfFull(now time.Duration) {
	if len(c.entries) < c.max {
		return
	}
	// First pass: drop expired entries.
	for k, e := range c.entries {
		if now >= e.expires {
			delete(c.entries, k)
		}
	}
	// Still full: drop the soonest-to-expire entries.
	if len(c.entries) >= c.max {
		type ke struct {
			k cacheKey
			e time.Duration
		}
		all := make([]ke, 0, len(c.entries))
		for k, e := range c.entries {
			all = append(all, ke{k, e.expires})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].e < all[j].e })
		for i := 0; i < len(all)/4+1; i++ {
			delete(c.entries, all[i].k)
		}
	}
}
