package resolver

import (
	"errors"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"dnsguard/internal/ans"
	"dnsguard/internal/dnswire"
	"dnsguard/internal/netapi"
	"dnsguard/internal/netsim"
	"dnsguard/internal/vclock"
	"dnsguard/internal/zone"
)

const rootText = `
.    86400 IN SOA a.root.example. host.example. 1 7200 600 360000 60
.    86400 IN NS  a.root.example.
a.root.example. 86400 IN A 198.41.0.4
com. 86400 IN NS a.gtld.example.
a.gtld.example. 86400 IN A 192.5.6.30
org. 86400 IN NS a.org.example.
a.org.example.  86400 IN A 192.5.6.40
`

const comText = `
$ORIGIN com.
@ 86400 IN SOA a.gtld.example. host.example. 1 7200 600 360000 60
@ 86400 IN NS a.gtld.example.
foo 86400 IN NS ns1.foo.com.
ns1.foo.com. 86400 IN A 192.0.2.1
glueless 86400 IN NS ns1.foo.com.
`

const fooText = `
$ORIGIN foo.com.
@ 3600 IN SOA ns1 admin 1 7200 600 360000 60
@ 3600 IN NS ns1
ns1 3600 IN A 192.0.2.1
www 300 IN A 198.51.100.10
alias 300 IN CNAME www
ext 300 IN CNAME www.glueless.com.
short 2 IN A 198.51.100.11
`

const gluelessText = `
$ORIGIN glueless.com.
@ 3600 IN SOA ns1.foo.com. admin.foo.com. 1 7200 600 360000 60
@ 3600 IN NS ns1.foo.com.
www 300 IN A 198.51.100.99
`

type fixture struct {
	sched *vclock.Scheduler
	net   *netsim.Network
	lrs   *netsim.Host
	res   *Resolver
	hosts map[string]*netsim.Host
}

func newFixture(t *testing.T, mutate func(*Config)) *fixture {
	t.Helper()
	sched := vclock.New(11)
	network := netsim.New(sched, 5*time.Millisecond) // one-way; RTT 10ms

	f := &fixture{sched: sched, net: network, hosts: map[string]*netsim.Host{}}
	start := func(name, ip, text string) *netsim.Host {
		h := network.AddHost(name, netip.MustParseAddr(ip))
		f.hosts[name] = h
		srv, err := ans.New(ans.Config{
			Env:  h,
			Addr: netip.AddrPortFrom(h.Addr(), 53),
			Zone: zone.MustParse(text, dnswire.Root),
		})
		if err != nil {
			t.Fatalf("ans.New(%s): %v", name, err)
		}
		if err := srv.Start(); err != nil {
			t.Fatalf("ans.Start(%s): %v", name, err)
		}
		return h
	}
	start("root", "198.41.0.4", rootText)
	start("com", "192.5.6.30", comText)
	start("foo", "192.0.2.1", fooText)
	// Note: glueless.com delegates to ns1.foo.com, which only serves the
	// foo.com zone here — queries for glueless names get NXDOMAIN. The
	// glueless tests exercise the sub-resolution path, not the final
	// answer.
	_ = gluelessText
	f.lrs = network.AddHost("lrs", netip.MustParseAddr("10.0.0.53"))

	cfg := Config{
		Env:       f.lrs,
		RootHints: []netip.AddrPort{netip.MustParseAddrPort("198.41.0.4:53")},
		Timeout:   200 * time.Millisecond,
		Retries:   1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	f.res = res
	return f
}

// run executes fn as a proc and drains the simulation.
func (f *fixture) run(t *testing.T, fn func()) {
	t.Helper()
	f.sched.Go("test", fn)
	f.sched.Run(0)
}

func TestResolveThroughHierarchy(t *testing.T) {
	f := newFixture(t, nil)
	f.run(t, func() {
		res, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA)
		if err != nil {
			t.Errorf("Resolve: %v", err)
			return
		}
		if len(res.Answers) != 1 {
			t.Errorf("answers = %v", res.Answers)
			return
		}
		if a := res.Answers[0].Data.(*dnswire.AData).Addr; a != netip.MustParseAddr("198.51.100.10") {
			t.Errorf("addr = %v", a)
		}
		if res.Upstream != 3 {
			t.Errorf("upstream = %d, want 3 (root, com, foo)", res.Upstream)
		}
		// 3 sequential round trips at RTT 10ms.
		if res.Latency != 30*time.Millisecond {
			t.Errorf("latency = %v, want 30ms", res.Latency)
		}
	})
}

func TestResolveSecondQueryHitsCache(t *testing.T) {
	f := newFixture(t, nil)
	f.run(t, func() {
		if _, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA); err != nil {
			t.Errorf("first: %v", err)
			return
		}
		res, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA)
		if err != nil {
			t.Errorf("second: %v", err)
			return
		}
		if !res.CacheHit || res.Upstream != 0 || res.Latency != 0 {
			t.Errorf("second = %+v, want pure cache hit", res)
		}
	})
}

func TestResolveSiblingUsesCachedDelegation(t *testing.T) {
	f := newFixture(t, nil)
	f.run(t, func() {
		if _, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA); err != nil {
			t.Errorf("first: %v", err)
			return
		}
		res, err := f.res.Resolve(dnswire.MustName("alias.foo.com"), dnswire.TypeA)
		if err != nil {
			t.Errorf("second: %v", err)
			return
		}
		if res.Upstream != 1 {
			t.Errorf("upstream = %d, want 1 (foo only, delegations cached)", res.Upstream)
		}
	})
}

func TestResolveCNAMEChain(t *testing.T) {
	f := newFixture(t, nil)
	f.run(t, func() {
		res, err := f.res.Resolve(dnswire.MustName("alias.foo.com"), dnswire.TypeA)
		if err != nil {
			t.Errorf("Resolve: %v", err)
			return
		}
		if len(res.Answers) != 2 || res.Answers[0].Type != dnswire.TypeCNAME || res.Answers[1].Type != dnswire.TypeA {
			t.Errorf("answers = %v", res.Answers)
		}
	})
}

func TestResolveNXDomainAndNegativeCache(t *testing.T) {
	f := newFixture(t, nil)
	f.run(t, func() {
		res, err := f.res.Resolve(dnswire.MustName("missing.foo.com"), dnswire.TypeA)
		if err != nil {
			t.Errorf("Resolve: %v", err)
			return
		}
		if res.RCode != dnswire.RCodeNXDomain {
			t.Errorf("rcode = %v", res.RCode)
		}
		res2, err := f.res.Resolve(dnswire.MustName("missing.foo.com"), dnswire.TypeA)
		if err != nil {
			t.Errorf("second: %v", err)
			return
		}
		if res2.RCode != dnswire.RCodeNXDomain || res2.Upstream != 0 {
			t.Errorf("second = %+v, want cached NXDOMAIN", res2)
		}
	})
}

func TestResolveCacheExpiry(t *testing.T) {
	f := newFixture(t, nil)
	f.run(t, func() {
		if _, err := f.res.Resolve(dnswire.MustName("short.foo.com"), dnswire.TypeA); err != nil {
			t.Errorf("first: %v", err)
			return
		}
		f.sched.Sleep(3 * time.Second) // short TTL is 2s
		res, err := f.res.Resolve(dnswire.MustName("short.foo.com"), dnswire.TypeA)
		if err != nil {
			t.Errorf("second: %v", err)
			return
		}
		if res.Upstream == 0 {
			t.Error("expired record served from cache")
		}
	})
}

func TestResolveDisableCache(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.DisableCache = true })
	f.run(t, func() {
		_, _ = f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA)
		res, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA)
		if err != nil {
			t.Errorf("Resolve: %v", err)
			return
		}
		if res.Upstream != 3 {
			t.Errorf("upstream = %d, want 3 with cache disabled", res.Upstream)
		}
	})
}

func TestResolveGluelessDelegation(t *testing.T) {
	f := newFixture(t, nil)
	f.run(t, func() {
		// glueless.com's NS is ns1.foo.com with no glue in the com zone;
		// the resolver must sub-resolve the server address.
		res, err := f.res.Resolve(dnswire.MustName("www.glueless.com"), dnswire.TypeA)
		if err != nil {
			// ns1.foo.com serves glueless only on port 1053 in this
			// fixture, which the resolver cannot know; accept both
			// outcomes but require the sub-resolution to have happened.
			if f.res.Stats.Upstream < 3 {
				t.Errorf("no sub-resolution attempted: %+v", f.res.Stats)
			}
			return
		}
		_ = res
	})
}

func TestResolveExternalCNAME(t *testing.T) {
	f := newFixture(t, nil)
	f.run(t, func() {
		// ext.foo.com → www.glueless.com (cross-zone CNAME). Resolution of
		// the target requires walking com again.
		res, err := f.res.Resolve(dnswire.MustName("ext.foo.com"), dnswire.TypeA)
		// The glueless zone is unreachable in this fixture (see above), so
		// the CNAME itself must still have been returned or an upstream
		// error surfaced; the resolver must not loop forever.
		if err == nil && len(res.Answers) == 0 {
			t.Error("no answers and no error")
		}
	})
}

func TestResolveServerUnreachableFallsBack(t *testing.T) {
	f := newFixture(t, nil)
	// A host that exists but never answers: queries to it time out.
	f.net.AddHost("dead", netip.MustParseAddr("203.0.113.254"))
	// Add a dead NS for foo.com ahead of the live one by priming the cache.
	f.run(t, func() {
		now := f.lrs.Now()
		f.res.Cache().Put(now, dnswire.MustName("foo.com"), dnswire.TypeNS, []dnswire.RR{
			dnswire.NewRR(dnswire.MustName("foo.com"), 3600, &dnswire.NSData{Host: dnswire.MustName("dead.foo.com")}),
			dnswire.NewRR(dnswire.MustName("foo.com"), 3600, &dnswire.NSData{Host: dnswire.MustName("ns1.foo.com")}),
		})
		f.res.Cache().Put(now, dnswire.MustName("dead.foo.com"), dnswire.TypeA, []dnswire.RR{
			dnswire.NewRR(dnswire.MustName("dead.foo.com"), 3600, &dnswire.AData{Addr: netip.MustParseAddr("203.0.113.254")}),
		})
		f.res.Cache().Put(now, dnswire.MustName("ns1.foo.com"), dnswire.TypeA, []dnswire.RR{
			dnswire.NewRR(dnswire.MustName("ns1.foo.com"), 3600, &dnswire.AData{Addr: netip.MustParseAddr("192.0.2.1")}),
		})
		res, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA)
		if err != nil {
			t.Errorf("Resolve: %v", err)
			return
		}
		if len(res.Answers) != 1 {
			t.Errorf("answers = %v", res.Answers)
		}
		if f.res.Stats.Timeouts == 0 {
			t.Error("expected a timeout against the dead server")
		}
	})
}

func TestResolveTotalLossTimesOut(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.Retries = 1; c.Timeout = 50 * time.Millisecond })
	f.net.SetLoss(f.lrs, f.hosts["root"], 1.0)
	f.run(t, func() {
		_, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA)
		if err == nil {
			t.Error("resolution succeeded through a dead link")
		}
	})
}

func TestResolvePartialLossRecovers(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.Retries = 4; c.Timeout = 50 * time.Millisecond })
	f.net.SetLoss(f.lrs, f.hosts["root"], 0.5)
	f.net.SetLoss(f.lrs, f.hosts["com"], 0.5)
	f.run(t, func() {
		res, err := f.res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA)
		if err != nil {
			t.Errorf("Resolve under 50%% loss: %v (stats %+v)", err, f.res.Stats)
			return
		}
		if len(res.Answers) == 0 {
			t.Error("no answers")
		}
	})
}

func TestMaliciousSameZoneReferralLoopDetected(t *testing.T) {
	sched := vclock.New(3)
	network := netsim.New(sched, time.Millisecond)
	evil := network.AddHost("evil", netip.MustParseAddr("203.0.113.66"))
	lrs := network.AddHost("lrs", netip.MustParseAddr("10.0.0.53"))

	// A server that always answers with a referral to the root itself.
	sched.Go("evil", func() {
		conn, err := evil.ListenUDP(netip.AddrPortFrom(evil.Addr(), 53))
		if err != nil {
			t.Errorf("bind: %v", err)
			return
		}
		for {
			payload, src, err := conn.ReadFrom(netapi.NoTimeout)
			if err != nil {
				return
			}
			q, err := dnswire.Unpack(payload)
			if err != nil {
				continue
			}
			resp := q.Response()
			resp.Authority = []dnswire.RR{
				dnswire.NewRR(dnswire.Root, 60, &dnswire.NSData{Host: dnswire.MustName("evil.example")}),
			}
			resp.Additional = []dnswire.RR{
				dnswire.NewRR(dnswire.MustName("evil.example"), 60, &dnswire.AData{Addr: evil.Addr()}),
			}
			wire, _ := resp.PackUDP(512)
			_ = conn.WriteTo(wire, src)
		}
	})
	res, err := New(Config{
		Env:       lrs,
		RootHints: []netip.AddrPort{netip.AddrPortFrom(evil.Addr(), 53)},
		Timeout:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var rerr error
	sched.Go("test", func() {
		_, rerr = res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA)
	})
	sched.Run(2 * time.Second)
	if rerr == nil {
		t.Fatal("referral loop not detected")
	}
	if !errors.Is(rerr, ErrLoop) && !errors.Is(rerr, ErrServFail) {
		t.Fatalf("err = %v, want loop/servfail", rerr)
	}
}

func TestLRSServerAndStub(t *testing.T) {
	f := newFixture(t, nil)
	srv, err := NewServer(ServerConfig{
		Env:            f.lrs,
		Addr:           netip.AddrPortFrom(f.lrs.Addr(), 53),
		Resolver:       f.res,
		AllowedClients: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	stub := f.net.AddHost("stub", netip.MustParseAddr("10.0.0.7"))
	outsider := f.net.AddHost("outsider", netip.MustParseAddr("172.16.0.9"))

	f.sched.Go("stub", func() {
		resp, err := StubQuery(stub, srv.Addr(), dnswire.MustName("www.foo.com"), dnswire.TypeA, 77, time.Second)
		if err != nil {
			t.Errorf("StubQuery: %v", err)
			return
		}
		if !resp.Flags.RA || len(resp.Answers) != 1 {
			t.Errorf("resp = %v", resp)
		}
	})
	f.sched.Go("outsider", func() {
		resp, err := StubQuery(outsider, srv.Addr(), dnswire.MustName("www.foo.com"), dnswire.TypeA, 78, time.Second)
		if err != nil {
			t.Errorf("outsider query: %v", err)
			return
		}
		if resp.Flags.RCode != dnswire.RCodeRefused {
			t.Errorf("outsider rcode = %v, want REFUSED", resp.Flags.RCode)
		}
	})
	f.sched.Run(0)
	if srv.Stats.Refused != 1 || srv.Stats.Answered != 1 {
		t.Fatalf("stats = %+v", srv.Stats)
	}
}

func TestCacheBasics(t *testing.T) {
	c := NewCache(100)
	name := dnswire.MustName("x.example")
	rr := dnswire.NewRR(name, 60, &dnswire.AData{Addr: netip.MustParseAddr("1.1.1.1")})
	c.Put(0, name, dnswire.TypeA, []dnswire.RR{rr})
	got, _, neg, ok := c.Get(30*time.Second, name, dnswire.TypeA)
	if !ok || neg || len(got) != 1 {
		t.Fatalf("Get = %v %v %v", got, neg, ok)
	}
	if got[0].TTL != 30 {
		t.Fatalf("aged TTL = %d, want 30", got[0].TTL)
	}
	if _, _, _, ok := c.Get(61*time.Second, name, dnswire.TypeA); ok {
		t.Fatal("expired entry served")
	}
}

func TestCacheZeroTTLNotStored(t *testing.T) {
	c := NewCache(100)
	name := dnswire.MustName("x.example")
	rr := dnswire.NewRR(name, 0, &dnswire.AData{Addr: netip.MustParseAddr("1.1.1.1")})
	c.Put(0, name, dnswire.TypeA, []dnswire.RR{rr})
	if _, _, _, ok := c.Get(0, name, dnswire.TypeA); ok {
		t.Fatal("TTL-0 record cached")
	}
}

func TestCacheEvictionBound(t *testing.T) {
	c := NewCache(64)
	for i := 0; i < 1000; i++ {
		name := dnswire.MustName(fmt.Sprintf("h%d.example", i))
		rr := dnswire.NewRR(name, 600, &dnswire.AData{Addr: netip.MustParseAddr("1.1.1.1")})
		c.Put(0, name, dnswire.TypeA, []dnswire.RR{rr})
	}
	if c.Len() > 64 {
		t.Fatalf("len = %d, want <= 64", c.Len())
	}
}

func TestCacheZeroTTLNotStoredDespiteMinTTL(t *testing.T) {
	// Figure 5 semantics: a zero TTL means "do not cache", full stop. The
	// MinTTL floor must not resurrect the rrset — before the fix, MinTTL > 0
	// clamped first and a TTL-0 record was cached for MinTTL.
	c := NewCache(100)
	c.MinTTL = 30 * time.Second
	name := dnswire.MustName("uncacheable.example")
	rr := dnswire.NewRR(name, 0, &dnswire.AData{Addr: netip.MustParseAddr("1.1.1.1")})
	c.Put(0, name, dnswire.TypeA, []dnswire.RR{rr})
	if _, _, _, ok := c.Get(0, name, dnswire.TypeA); ok {
		t.Fatal("TTL-0 record cached because of MinTTL clamp")
	}
	// MinTTL still applies to nonzero TTLs.
	rr = dnswire.NewRR(name, 1, &dnswire.AData{Addr: netip.MustParseAddr("1.1.1.1")})
	c.Put(0, name, dnswire.TypeA, []dnswire.RR{rr})
	if _, _, _, ok := c.Get(20*time.Second, name, dnswire.TypeA); !ok {
		t.Fatal("TTL-1 record not floored to MinTTL")
	}
}
