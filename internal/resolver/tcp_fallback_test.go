package resolver

import (
	"net/netip"
	"testing"
	"time"

	"dnsguard/internal/ans"
	"dnsguard/internal/dnswire"
	"dnsguard/internal/netsim"
	"dnsguard/internal/tcpsim"
	"dnsguard/internal/vclock"
	"dnsguard/internal/zone"
)

const bigZoneText = `
$ORIGIN big.test.
@ 3600 IN SOA ns1 admin 1 7200 600 360000 60
@ 3600 IN NS ns1
ns1 3600 IN A 192.0.2.9
huge 300 IN TXT "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
huge 300 IN TXT "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"
huge 300 IN TXT "cccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccc"
huge 300 IN TXT "dddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddd"
huge 300 IN TXT "eeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeee"
huge 300 IN TXT "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"
huge 300 IN TXT "gggggggggggggggggggggggggggggggggggggggggggggggggggggggggggggggggggggggggggggg"
`

// TestResolverTruncationFallback verifies the resolver transparently
// retries over TCP when a response carries TC — the behavior the guard's
// TCP-based scheme relies on (§III-C: "the LRS will automatically initiate
// a TCP connection").
func TestResolverTruncationFallback(t *testing.T) {
	sched := vclock.New(17)
	network := netsim.New(sched, 2*time.Millisecond)
	ansHost := network.AddHost("ans", netip.MustParseAddr("192.0.2.9"))
	lrsHost := network.AddHost("lrs", netip.MustParseAddr("10.0.0.53"))
	tcpsim.Install(ansHost, tcpsim.Config{})
	tcpsim.Install(lrsHost, tcpsim.Config{})

	srv, err := ans.New(ans.Config{
		Env:       ansHost,
		Addr:      netip.MustParseAddrPort("192.0.2.9:53"),
		Zone:      zone.MustParse(bigZoneText, dnswire.Root),
		EnableTCP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	res, err := New(Config{
		Env:       lrsHost,
		RootHints: []netip.AddrPort{netip.MustParseAddrPort("192.0.2.9:53")},
		Timeout:   500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched.Go("test", func() {
		r, err := res.Resolve(dnswire.MustName("huge.big.test"), dnswire.TypeTXT)
		if err != nil {
			t.Errorf("Resolve: %v", err)
			return
		}
		if len(r.Answers) != 7 {
			t.Errorf("answers = %d, want all 7 TXT records via TCP", len(r.Answers))
		}
	})
	sched.Run(time.Minute)
	if res.Stats.TCPFallbacks != 1 {
		t.Fatalf("TCP fallbacks = %d, want 1", res.Stats.TCPFallbacks)
	}
	if srv.Stats.TCPQueries != 1 {
		t.Fatalf("ANS TCP queries = %d, want 1", srv.Stats.TCPQueries)
	}
	if srv.Stats.Truncated != 1 {
		t.Fatalf("truncated = %d, want 1", srv.Stats.Truncated)
	}
}
