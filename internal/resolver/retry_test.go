package resolver

import (
	"net/netip"
	"testing"
	"time"

	"dnsguard/internal/ans"
	"dnsguard/internal/dnswire"
	"dnsguard/internal/netsim"
	"dnsguard/internal/tcpsim"
	"dnsguard/internal/vclock"
	"dnsguard/internal/zone"
)

// singleZone builds a one-ANS network for retry-path tests and returns the
// scheduler, network, the two hosts, and a resolver built from cfg (Env and
// RootHints are filled in).
func singleZone(t *testing.T, seed int64, enableTCP bool, mutate func(*Config)) (*vclock.Scheduler, *netsim.Network, *netsim.Host, *netsim.Host, *Resolver) {
	t.Helper()
	sched := vclock.New(seed)
	network := netsim.New(sched, 5*time.Millisecond)
	ansHost := network.AddHost("ans", netip.MustParseAddr("192.0.2.9"))
	lrsHost := network.AddHost("lrs", netip.MustParseAddr("10.0.0.53"))
	if enableTCP {
		tcpsim.Install(ansHost, tcpsim.Config{})
		tcpsim.Install(lrsHost, tcpsim.Config{})
	}
	srv, err := ans.New(ans.Config{
		Env:       ansHost,
		Addr:      netip.MustParseAddrPort("192.0.2.9:53"),
		Zone:      zone.MustParse(fooText, dnswire.Root),
		EnableTCP: enableTCP,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Env:       lrsHost,
		RootHints: []netip.AddrPort{netip.MustParseAddrPort("192.0.2.9:53")},
		Timeout:   50 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sched, network, lrsHost, ansHost, res
}

func TestBackoffRetriesSurviveHeavyLoss(t *testing.T) {
	sched, network, lrs, ansHost, res := singleZone(t, 101, false, func(c *Config) {
		c.Retries = 8
		c.Backoff = 20 * time.Millisecond
		c.MaxBackoff = 100 * time.Millisecond
	})
	// 70% loss in both directions: each attempt succeeds with p ≈ 0.09, so
	// nine attempts succeed with p ≈ 0.57 per query; across several queries
	// with backoff the resolver must get through at least once.
	network.SetLoss(lrs, ansHost, 0.7)
	network.SetLoss(ansHost, lrs, 0.7)

	succeeded := 0
	sched.Go("test", func() {
		for i := 0; i < 5; i++ {
			if _, err := res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA); err == nil {
				succeeded++
			}
			res.FlushCache()
		}
	})
	sched.Run(time.Hour)
	if succeeded == 0 {
		t.Fatalf("0 of 5 resolutions succeeded under 70%% loss with %d retries", 8)
	}
	if res.Stats.Retries == 0 {
		t.Fatal("no retries recorded under heavy loss")
	}
	if res.Stats.Backoffs == 0 {
		t.Fatal("no backoff sleeps recorded")
	}
}

func TestBackoffDelaysAreBoundedAndJittered(t *testing.T) {
	// Against a black-holed server, round k starts after a jittered delay in
	// [Backoff/2, Backoff]·2^(k-1), capped at MaxBackoff. With Timeout 50ms,
	// Retries 3, Backoff 40ms, MaxBackoff 60ms the worst case is
	// 4×50ms + (40+60+60)ms = 360ms; without the cap it could reach 480ms.
	sched, network, lrs, ansHost, res := singleZone(t, 102, false, func(c *Config) {
		c.Retries = 3
		c.Backoff = 40 * time.Millisecond
		c.MaxBackoff = 60 * time.Millisecond
	})
	network.Partition(lrs, ansHost)

	var elapsed time.Duration
	sched.Go("test", func() {
		start := sched.Now()
		if _, err := res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA); err == nil {
			t.Error("resolution succeeded across a partition")
		}
		elapsed = sched.Now() - start
	})
	sched.Run(time.Hour)
	// Lower bound: 4 timeouts + minimum jittered backoffs (20+30+30)ms.
	if elapsed < 280*time.Millisecond || elapsed > 360*time.Millisecond {
		t.Fatalf("elapsed = %v, want within [280ms, 360ms]", elapsed)
	}
	if res.Stats.Backoffs != 3 {
		t.Fatalf("Backoffs = %d, want 3", res.Stats.Backoffs)
	}
}

func TestQueryTimeoutBoundsTotalEffort(t *testing.T) {
	// Retries 10 × Timeout 50ms would burn 550ms per query; QueryTimeout
	// must cut the whole effort off near 120ms.
	sched, network, lrs, ansHost, res := singleZone(t, 103, false, func(c *Config) {
		c.Retries = 10
		c.QueryTimeout = 120 * time.Millisecond
	})
	network.Partition(lrs, ansHost)

	var elapsed time.Duration
	sched.Go("test", func() {
		start := sched.Now()
		if _, err := res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA); err == nil {
			t.Error("resolution succeeded across a partition")
		}
		elapsed = sched.Now() - start
	})
	sched.Run(time.Hour)
	if elapsed > 130*time.Millisecond {
		t.Fatalf("elapsed = %v, QueryTimeout is 120ms", elapsed)
	}
	if elapsed < 100*time.Millisecond {
		t.Fatalf("elapsed = %v, gave up before using the budget", elapsed)
	}
}

func TestTCPRetryAfterUDPFailure(t *testing.T) {
	// UDP to the ANS is fully corrupted (every datagram damaged, so no
	// response ever matches), but the TCP path works: after one failed UDP
	// round the resolver must switch to TCP and succeed.
	sched, network, lrs, ansHost, res := singleZone(t, 104, true, func(c *Config) {
		c.Retries = 2
		c.TCPRetryAfter = 1
	})
	// Every UDP query is damaged in flight, so no response ever matches the
	// resolver's (id, question) filter; TCP passes clean (UDPOnly models a
	// middlebox mangling UDP/53 specifically).
	network.SetFaults(lrs, ansHost, netsim.Faults{Corrupt: 1.0, UDPOnly: true})

	var result Result
	var rerr error
	sched.Go("test", func() {
		result, rerr = res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA)
	})
	sched.Run(time.Hour)
	if rerr != nil {
		t.Fatalf("Resolve over TCP retry: %v (stats %+v)", rerr, res.Stats)
	}
	if len(result.Answers) != 1 {
		t.Fatalf("answers = %v", result.Answers)
	}
	if res.Stats.TCPRetries == 0 {
		t.Fatal("TCPRetries = 0, resolution must have gone over TCP")
	}
	if res.Stats.Timeouts == 0 {
		t.Fatal("expected UDP timeouts before the TCP switch")
	}
}

func TestTCPRetryDisabledByDefault(t *testing.T) {
	sched, network, lrs, ansHost, res := singleZone(t, 105, true, func(c *Config) {
		c.Retries = 1
	})
	network.SetFaults(lrs, ansHost, netsim.Faults{Corrupt: 1.0, UDPOnly: true})
	sched.Go("test", func() {
		if _, err := res.Resolve(dnswire.MustName("www.foo.com"), dnswire.TypeA); err == nil {
			t.Error("resolution succeeded with UDP corrupted and TCP retry disabled")
		}
	})
	sched.Run(time.Hour)
	if res.Stats.TCPRetries != 0 {
		t.Fatalf("TCPRetries = %d with the feature disabled", res.Stats.TCPRetries)
	}
}
