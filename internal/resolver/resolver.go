package resolver

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"dnsguard/internal/dnswire"
	"dnsguard/internal/metrics"
	"dnsguard/internal/netapi"
)

// Resolution errors.
var (
	ErrNoServers   = errors.New("resolver: no usable name servers")
	ErrTimeout     = errors.New("resolver: query timed out")
	ErrLoop        = errors.New("resolver: referral loop or depth exceeded")
	ErrServFail    = errors.New("resolver: upstream failure")
	ErrUnreachable = errors.New("resolver: all servers unreachable")
)

// Config parameterizes a Resolver.
type Config struct {
	// Env supplies clock and sockets.
	Env netapi.Env
	// RootHints are the addresses of root name servers (or, for a
	// single-zone deployment, of that zone's servers).
	RootHints []netip.AddrPort
	// Timeout is the per-attempt wait for a response. BIND's classic
	// 2-second timer is the default; the paper's LRS simulator uses 10 ms.
	Timeout time.Duration
	// Retries is how many additional attempts (rotating servers) are made
	// after the first.
	Retries int
	// QueryTimeout bounds the total wall-clock time one upstream query may
	// spend across all retry rounds, server rotations, backoff sleeps, and
	// TCP retries. Zero means only the per-attempt Timeout applies.
	QueryTimeout time.Duration
	// Backoff enables capped exponential backoff between retry rounds: the
	// resolver sleeps a jittered delay starting at Backoff and doubling
	// each round, capped at MaxBackoff. Zero disables backoff, preserving
	// the paper's fixed-interval retry behaviour.
	Backoff time.Duration
	// MaxBackoff caps the backoff delay. Zero means 8×Backoff.
	MaxBackoff time.Duration
	// TCPRetryAfter switches the query to TCP after this many fully-failed
	// UDP retry rounds — the escape hatch when an adversary (or a fault
	// policy) makes UDP unusable but the path still carries streams.
	// Zero disables UDP-failure TCP retry (truncation fallback is always on).
	TCPRetryAfter int
	// MaxSteps bounds delegation-following iterations per query.
	MaxSteps int
	// MaxDepth bounds sub-resolutions (NS target addresses, CNAME chains).
	MaxDepth int
	// CacheSize bounds the cache entry count.
	CacheSize int
	// DisableCache turns the cache off entirely (the paper's cache-miss
	// throughput experiments disable cookie caching this way).
	DisableCache bool
	// Seed makes query-ID generation deterministic in simulations.
	Seed int64
}

// Validate reports the first missing required field, without touching the
// config.
func (c *Config) Validate() error {
	if c.Env == nil {
		return errors.New("resolver: Config.Env is required")
	}
	if len(c.RootHints) == 0 {
		return errors.New("resolver: Config.RootHints is required")
	}
	return nil
}

// Normalize fills every defaulted field in place; idempotent, and usable on
// a partially built config before Validate (flag plumbing).
func (c *Config) Normalize() {
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Backoff > 0 && c.MaxBackoff <= 0 {
		c.MaxBackoff = 8 * c.Backoff
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 24
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 8
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 1 << 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Stats counts resolver activity. Fields are written atomically (the real
// LRS resolves concurrent queries against one Resolver); read them with
// atomic.LoadUint64 when the resolver may still be running.
type Stats struct {
	Queries      uint64 // client questions asked of this resolver
	Upstream     uint64 // queries sent to authoritative servers
	Retries      uint64
	Timeouts     uint64
	TCPFallbacks uint64 // truncation-driven TCP fallbacks
	TCPRetries   uint64 // TCP retries after repeated UDP failure
	Backoffs     uint64 // inter-round backoff sleeps taken
	CacheAnswers uint64 // questions answered fully from cache
}

// MetricsInto registers every counter as a resolver_* series reading the
// live fields.
func (s *Stats) MetricsInto(r *metrics.Registry) {
	for name, f := range map[string]*uint64{
		"resolver_queries":       &s.Queries,
		"resolver_upstream":      &s.Upstream,
		"resolver_retries":       &s.Retries,
		"resolver_timeouts":      &s.Timeouts,
		"resolver_tcp_fallbacks": &s.TCPFallbacks,
		"resolver_tcp_retries":   &s.TCPRetries,
		"resolver_backoffs":      &s.Backoffs,
		"resolver_cache_answers": &s.CacheAnswers,
	} {
		f := f
		r.FuncUint(name, func() uint64 { return atomic.LoadUint64(f) })
	}
}

// Result is the outcome of one resolution.
type Result struct {
	Answers  []dnswire.RR
	RCode    dnswire.RCode
	Latency  time.Duration
	Upstream int // upstream queries this resolution issued
	CacheHit bool
}

// Resolver is an iterative (recursive-serving) DNS resolver. It is safe for
// concurrent Resolve calls: the cache locks internally, the rng is guarded,
// and stats are atomic.
type Resolver struct {
	cfg   Config
	cache *Cache

	rngMu sync.Mutex
	rng   *rand.Rand

	// Stats is updated during operation (atomically; see Stats).
	Stats Stats
}

// MetricsInto registers the resolver's counters and cache hit/miss series
// (resolver_*) on r.
func (r *Resolver) MetricsInto(reg *metrics.Registry) {
	r.Stats.MetricsInto(reg)
	reg.FuncUint("resolver_cache_hits", func() uint64 { h, _ := r.cache.Stats(); return h })
	reg.FuncUint("resolver_cache_misses", func() uint64 { _, m := r.cache.Stats(); return m })
}

// randUint32 draws from the seeded rng under its lock.
func (r *Resolver) randUint32() uint32 {
	r.rngMu.Lock()
	defer r.rngMu.Unlock()
	return r.rng.Uint32()
}

// randInt63n draws from the seeded rng under its lock.
func (r *Resolver) randInt63n(n int64) int64 {
	r.rngMu.Lock()
	defer r.rngMu.Unlock()
	return r.rng.Int63n(n)
}

// New builds a resolver.
func New(cfg Config) (*Resolver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.Normalize()
	return &Resolver{
		cfg:   cfg,
		cache: NewCache(cfg.CacheSize),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// Cache exposes the resolver's cache (for tests and cache-priming).
func (r *Resolver) Cache() *Cache { return r.cache }

// FlushCache drops all cached data.
func (r *Resolver) FlushCache() { r.cache.Flush() }

// Resolve answers (qname, qtype) by walking the delegation hierarchy.
func (r *Resolver) Resolve(qname dnswire.Name, qtype dnswire.Type) (Result, error) {
	atomic.AddUint64(&r.Stats.Queries, 1)
	start := r.cfg.Env.Now()
	before := atomic.LoadUint64(&r.Stats.Upstream)
	rrs, rcode, err := r.resolve(qname, qtype, 0)
	res := Result{
		Answers: rrs,
		RCode:   rcode,
		Latency: r.cfg.Env.Now() - start,
		// With concurrent resolutions this delta can include other queries'
		// upstream traffic; it is exact when queries are serialized (the
		// simulator and the experiments).
		Upstream: int(atomic.LoadUint64(&r.Stats.Upstream) - before),
	}
	res.CacheHit = res.Upstream == 0 && err == nil
	if res.CacheHit {
		atomic.AddUint64(&r.Stats.CacheAnswers, 1)
	}
	return res, err
}

func (r *Resolver) now() time.Duration { return r.cfg.Env.Now() }

func (r *Resolver) cacheGet(name dnswire.Name, t dnswire.Type) ([]dnswire.RR, dnswire.RCode, bool, bool) {
	if r.cfg.DisableCache {
		return nil, 0, false, false
	}
	return r.cache.Get(r.now(), name, t)
}

func (r *Resolver) cachePut(name dnswire.Name, t dnswire.Type, rrs []dnswire.RR) {
	if r.cfg.DisableCache {
		return
	}
	r.cache.Put(r.now(), name, t, rrs)
}

func (r *Resolver) resolve(qname dnswire.Name, qtype dnswire.Type, depth int) ([]dnswire.RR, dnswire.RCode, error) {
	if depth > r.cfg.MaxDepth {
		return nil, dnswire.RCodeServFail, ErrLoop
	}
	// Cache: direct answer.
	if rrs, rcode, neg, ok := r.cacheGet(qname, qtype); ok {
		if neg {
			return nil, rcode, nil
		}
		return rrs, dnswire.RCodeNoError, nil
	}
	// Cache: CNAME indirection.
	if qtype != dnswire.TypeCNAME {
		if cn, _, neg, ok := r.cacheGet(qname, dnswire.TypeCNAME); ok && !neg && len(cn) > 0 {
			target := cn[0].Data.(*dnswire.CNAMEData).Target
			tail, rcode, err := r.resolve(target, qtype, depth+1)
			if err != nil {
				return nil, rcode, err
			}
			return append(cn, tail...), rcode, nil
		}
	}

	zoneName, servers := r.bestServers(qname)
	for step := 0; step < r.cfg.MaxSteps; step++ {
		resp, err := r.querySet(servers, qname, qtype, depth)
		if err != nil {
			return nil, dnswire.RCodeServFail, err
		}
		switch kind := classify(resp, qname, qtype); kind {
		case respAnswer:
			return r.acceptAnswer(resp, qname, qtype, depth)
		case respNXDomain:
			ttl := negativeTTL(resp)
			if !r.cfg.DisableCache {
				r.cache.PutNegative(r.now(), qname, qtype, dnswire.RCodeNXDomain, ttl)
			}
			return nil, dnswire.RCodeNXDomain, nil
		case respNoData:
			ttl := negativeTTL(resp)
			if !r.cfg.DisableCache {
				r.cache.PutNegative(r.now(), qname, qtype, dnswire.RCodeNoError, ttl)
			}
			return nil, dnswire.RCodeNoError, nil
		case respReferral:
			child, nsset := referralTarget(resp)
			// Progress and sanity: the child zone must enclose qname and
			// be strictly deeper than the zone we just asked; anything
			// else is a bogus or looping referral.
			if !qname.IsSubdomainOf(child) || child.NumLabels() <= zoneName.NumLabels() {
				return nil, dnswire.RCodeServFail, fmt.Errorf("%w: referral to %s from zone %s", ErrLoop, child, zoneName)
			}
			r.cachePut(child, dnswire.TypeNS, nsset)
			for _, glue := range resp.Additional {
				if glue.Type == dnswire.TypeA || glue.Type == dnswire.TypeAAAA {
					r.cachePut(glue.Name, glue.Type, []dnswire.RR{glue})
				}
			}
			zoneName = child
			// Attach glue addresses directly so they are used even when
			// the cache is disabled (and without re-resolution).
			servers = nsNamesWithGlue(nsset, resp.Additional)
		default:
			return nil, resp.Flags.RCode, fmt.Errorf("%w: rcode %v from zone %s", ErrServFail, resp.Flags.RCode, zoneName)
		}
	}
	return nil, dnswire.RCodeServFail, fmt.Errorf("%w: exceeded %d steps", ErrLoop, r.cfg.MaxSteps)
}

// acceptAnswer caches the answer rrsets and follows a dangling CNAME chain.
func (r *Resolver) acceptAnswer(resp *dnswire.Message, qname dnswire.Name, qtype dnswire.Type, depth int) ([]dnswire.RR, dnswire.RCode, error) {
	// Group rrsets by (owner, type) and cache each.
	groups := map[cacheKey][]dnswire.RR{}
	for _, rr := range resp.Answers {
		k := cacheKey{rr.Name, rr.Type}
		groups[k] = append(groups[k], rr)
	}
	for k, rrs := range groups {
		r.cachePut(k.name, k.rtype, rrs)
	}
	chain := append([]dnswire.RR(nil), resp.Answers...)
	// Does the chain already contain a record of qtype?
	for _, rr := range chain {
		if rr.Type == qtype || qtype == dnswire.TypeANY {
			return chain, dnswire.RCodeNoError, nil
		}
	}
	// Dangling CNAME: follow the last target.
	last := chain[len(chain)-1]
	if cn, ok := last.Data.(*dnswire.CNAMEData); ok && qtype != dnswire.TypeCNAME {
		tail, rcode, err := r.resolve(cn.Target, qtype, depth+1)
		if err != nil {
			return nil, rcode, err
		}
		return append(chain, tail...), rcode, nil
	}
	return chain, dnswire.RCodeNoError, nil
}

// serverRef names a candidate server: either by name (address resolved
// lazily) or by literal address (root hints).
type serverRef struct {
	name dnswire.Name
	addr netip.AddrPort
}

// bestServers finds the deepest cached zone cut enclosing qname; falls back
// to root hints.
func (r *Resolver) bestServers(qname dnswire.Name) (dnswire.Name, []serverRef) {
	if !r.cfg.DisableCache {
		for z := qname; ; z = z.Parent() {
			if rrs, _, neg, ok := r.cacheGet(z, dnswire.TypeNS); ok && !neg && len(rrs) > 0 {
				return z, nsNames(rrs)
			}
			if z.IsRoot() {
				break
			}
		}
	}
	refs := make([]serverRef, len(r.cfg.RootHints))
	for i, a := range r.cfg.RootHints {
		refs[i] = serverRef{addr: a}
	}
	return dnswire.Root, refs
}

func nsNames(nsset []dnswire.RR) []serverRef {
	return nsNamesWithGlue(nsset, nil)
}

func nsNamesWithGlue(nsset, glue []dnswire.RR) []serverRef {
	refs := make([]serverRef, 0, len(nsset))
	for _, rr := range nsset {
		d, ok := rr.Data.(*dnswire.NSData)
		if !ok {
			continue
		}
		ref := serverRef{name: d.Host}
		for _, g := range glue {
			if g.Name == d.Host && g.Type == dnswire.TypeA {
				ref.addr = netip.AddrPortFrom(g.Data.(*dnswire.AData).Addr, 53)
				break
			}
		}
		refs = append(refs, ref)
	}
	return refs
}

// querySet tries each server (with retries) until one responds. Retry rounds
// back off exponentially with jitter when Backoff is set, the whole effort is
// bounded by QueryTimeout when set, and after TCPRetryAfter fully-failed UDP
// rounds the query is retried over TCP.
func (r *Resolver) querySet(servers []serverRef, qname dnswire.Name, qtype dnswire.Type, depth int) (*dnswire.Message, error) {
	if len(servers) == 0 {
		return nil, ErrNoServers
	}
	var deadline time.Duration // 0 = unbounded
	if r.cfg.QueryTimeout > 0 {
		deadline = r.now() + r.cfg.QueryTimeout
	}
	var lastErr error = ErrUnreachable
	backoff := r.cfg.Backoff
	tcpTried := false
	attempts := r.cfg.Retries + 1
	for a := 0; a < attempts; a++ {
		if a > 0 && backoff > 0 {
			d := backoff/2 + time.Duration(r.randInt63n(int64(backoff/2)+1))
			if deadline > 0 && r.now()+d >= deadline {
				break
			}
			atomic.AddUint64(&r.Stats.Backoffs, 1)
			r.cfg.Env.Sleep(d)
			if backoff *= 2; backoff > r.cfg.MaxBackoff {
				backoff = r.cfg.MaxBackoff
			}
		}
		for _, ref := range servers {
			addr := ref.addr
			if !addr.IsValid() {
				ip, err := r.serverAddr(ref.name, depth)
				if err != nil {
					lastErr = err
					continue
				}
				addr = netip.AddrPortFrom(ip, 53)
			}
			timeout, ok := r.attemptTimeout(deadline)
			if !ok {
				return nil, lastErr
			}
			resp, err := r.exchange(addr, qname, qtype, timeout)
			if err != nil {
				lastErr = err
				if a > 0 {
					atomic.AddUint64(&r.Stats.Retries, 1)
				}
				continue
			}
			return resp, nil
		}
		if r.cfg.TCPRetryAfter > 0 && !tcpTried && a+1 >= r.cfg.TCPRetryAfter {
			tcpTried = true
			if resp, err := r.querySetTCP(servers, qname, qtype, deadline); err == nil {
				return resp, nil
			} else {
				lastErr = err
			}
		}
	}
	if r.cfg.TCPRetryAfter > 0 && !tcpTried {
		if resp, err := r.querySetTCP(servers, qname, qtype, deadline); err == nil {
			return resp, nil
		}
	}
	return nil, lastErr
}

// querySetTCP retries the query over TCP against every server that already
// has a resolved address (re-resolving over a broken UDP path would defeat
// the point).
func (r *Resolver) querySetTCP(servers []serverRef, qname dnswire.Name, qtype dnswire.Type, deadline time.Duration) (*dnswire.Message, error) {
	var lastErr error = ErrUnreachable
	for _, ref := range servers {
		if !ref.addr.IsValid() {
			continue
		}
		timeout, ok := r.attemptTimeout(deadline)
		if !ok {
			return nil, lastErr
		}
		atomic.AddUint64(&r.Stats.TCPRetries, 1)
		resp, err := r.exchangeTCP(ref.addr, qname, qtype, timeout)
		if err != nil {
			lastErr = err
			continue
		}
		return resp, nil
	}
	return nil, lastErr
}

// attemptTimeout returns the per-attempt timeout, clipped to the remaining
// query deadline; ok is false when the deadline has already passed.
func (r *Resolver) attemptTimeout(deadline time.Duration) (time.Duration, bool) {
	timeout := r.cfg.Timeout
	if deadline > 0 {
		remain := deadline - r.now()
		if remain <= 0 {
			return 0, false
		}
		if remain < timeout {
			timeout = remain
		}
	}
	return timeout, true
}

// serverAddr resolves a name server's address, from glue/cache or by
// sub-resolution (this is the path that resolves fabricated cookie names).
func (r *Resolver) serverAddr(host dnswire.Name, depth int) (netip.Addr, error) {
	if rrs, _, neg, ok := r.cacheGet(host, dnswire.TypeA); ok && !neg && len(rrs) > 0 {
		return rrs[0].Data.(*dnswire.AData).Addr, nil
	}
	rrs, _, err := r.resolve(host, dnswire.TypeA, depth+1)
	if err != nil {
		return netip.Addr{}, fmt.Errorf("resolving server %s: %w", host, err)
	}
	for _, rr := range rrs {
		if a, ok := rr.Data.(*dnswire.AData); ok {
			return a.Addr, nil
		}
	}
	return netip.Addr{}, fmt.Errorf("%w: no address for server %s", ErrNoServers, host)
}

// exchange performs one UDP query/response with TCP fallback on truncation.
func (r *Resolver) exchange(server netip.AddrPort, qname dnswire.Name, qtype dnswire.Type, timeout time.Duration) (*dnswire.Message, error) {
	conn, err := r.cfg.Env.ListenUDP(netip.AddrPort{})
	if err != nil {
		return nil, fmt.Errorf("resolver: binding query socket: %w", err)
	}
	defer conn.Close()

	id := uint16(r.randUint32())
	q := dnswire.NewQuery(id, qname, qtype)
	q.Flags.RD = false // iterative
	wire, err := q.PackUDP(dnswire.MaxUDPSize)
	if err != nil {
		return nil, err
	}
	atomic.AddUint64(&r.Stats.Upstream, 1)
	if err := conn.WriteTo(wire, server); err != nil {
		return nil, err
	}
	deadline := r.now() + timeout
	for {
		remain := deadline - r.now()
		if remain <= 0 {
			atomic.AddUint64(&r.Stats.Timeouts, 1)
			return nil, ErrTimeout
		}
		payload, _, err := conn.ReadFrom(remain)
		if err != nil {
			if errors.Is(err, netapi.ErrTimeout) {
				atomic.AddUint64(&r.Stats.Timeouts, 1)
				return nil, ErrTimeout
			}
			return nil, err
		}
		resp, err := dnswire.Unpack(payload)
		if err != nil || resp.ID != id || !resp.Flags.QR {
			continue // stray or forged datagram; keep waiting
		}
		if len(resp.Questions) > 0 && (resp.Questions[0].Name != qname || resp.Questions[0].Type != qtype) {
			continue
		}
		if resp.Flags.TC {
			atomic.AddUint64(&r.Stats.TCPFallbacks, 1)
			return r.exchangeTCP(server, qname, qtype, timeout)
		}
		return resp, nil
	}
}

// exchangeTCP retries the query over a fresh TCP connection.
func (r *Resolver) exchangeTCP(server netip.AddrPort, qname dnswire.Name, qtype dnswire.Type, timeout time.Duration) (*dnswire.Message, error) {
	conn, err := r.cfg.Env.DialTCP(server)
	if err != nil {
		return nil, fmt.Errorf("resolver: TCP fallback dial: %w", err)
	}
	defer conn.Close()
	id := uint16(r.randUint32())
	q := dnswire.NewQuery(id, qname, qtype)
	q.Flags.RD = false
	wire, err := q.Pack()
	if err != nil {
		return nil, err
	}
	frame, err := dnswire.AppendTCPFrame(nil, wire)
	if err != nil {
		return nil, err
	}
	atomic.AddUint64(&r.Stats.Upstream, 1)
	if _, err := conn.Write(frame); err != nil {
		return nil, err
	}
	deadline := r.now() + timeout
	var sc dnswire.FrameScanner
	buf := make([]byte, 4096)
	for {
		remain := deadline - r.now()
		if remain <= 0 {
			atomic.AddUint64(&r.Stats.Timeouts, 1)
			return nil, ErrTimeout
		}
		n, err := conn.Read(buf, remain)
		if err != nil {
			if errors.Is(err, netapi.ErrTimeout) {
				atomic.AddUint64(&r.Stats.Timeouts, 1)
				return nil, ErrTimeout
			}
			return nil, err
		}
		sc.Add(buf[:n])
		msg, ok, err := sc.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		resp, err := dnswire.Unpack(msg)
		if err != nil || resp.ID != id {
			continue
		}
		return resp, nil
	}
}

// Response classification --------------------------------------------------

type respKind int

const (
	respAnswer respKind = iota + 1
	respReferral
	respNXDomain
	respNoData
	respError
)

func classify(resp *dnswire.Message, qname dnswire.Name, qtype dnswire.Type) respKind {
	switch {
	case resp.Flags.RCode == dnswire.RCodeNXDomain:
		return respNXDomain
	case resp.Flags.RCode != dnswire.RCodeNoError:
		return respError
	case len(resp.Answers) > 0:
		return respAnswer
	default:
		// Referral: NS records in authority, not authoritative.
		for _, rr := range resp.Authority {
			if rr.Type == dnswire.TypeNS {
				return respReferral
			}
		}
		return respNoData
	}
}

func referralTarget(resp *dnswire.Message) (dnswire.Name, []dnswire.RR) {
	var nsset []dnswire.RR
	var child dnswire.Name
	for _, rr := range resp.Authority {
		if rr.Type == dnswire.TypeNS {
			child = rr.Name
			nsset = append(nsset, rr)
		}
	}
	return child, nsset
}

func negativeTTL(resp *dnswire.Message) time.Duration {
	for _, rr := range resp.Authority {
		if soa, ok := rr.Data.(*dnswire.SOAData); ok {
			ttl := soa.Minimum
			if rr.TTL < ttl {
				ttl = rr.TTL
			}
			return time.Duration(ttl) * time.Second
		}
	}
	return 30 * time.Second
}
