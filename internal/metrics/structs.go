package metrics

import (
	"reflect"
	"strings"
	"sync/atomic"
	"unicode"
)

// This file is the one place stats structs are copied or exported from.
// Every component keeps a plain struct of exported uint64 counters written
// with atomic operations; SnapshotUint64 and RegisterUint64Fields derive the
// snapshot copy and the registry series from the struct shape itself, so new
// counters (the engine adds several per shard) cannot drift out of the
// hand-maintained copies that used to exist per struct.

// SnapshotUint64 returns a copy of *s with every exported uint64 field read
// atomically. Non-uint64 exported fields are copied plainly. Each field is
// individually exact; the set is not a single consistent cut, which is fine
// for monitoring and quiesced test assertions.
func SnapshotUint64[S any](s *S) S {
	var out S
	src := reflect.ValueOf(s).Elem()
	dst := reflect.ValueOf(&out).Elem()
	for i := 0; i < src.NumField(); i++ {
		f := src.Field(i)
		if !f.CanInterface() {
			continue // unexported: not part of the snapshot contract
		}
		if f.Kind() == reflect.Uint64 {
			dst.Field(i).SetUint(atomic.LoadUint64(f.Addr().Interface().(*uint64)))
			continue
		}
		dst.Field(i).Set(f)
	}
	return out
}

// RegisterUint64Fields registers every exported uint64 field of *s on r as a
// Func series named prefix + SnakeCase(FieldName), reading the live field
// atomically at scrape time. The struct must outlive the registry's use.
func RegisterUint64Fields[S any](r *Registry, prefix string, s *S) {
	v := reflect.ValueOf(s).Elem()
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() != reflect.Uint64 || !f.CanInterface() {
			continue
		}
		p := f.Addr().Interface().(*uint64)
		r.FuncUint(prefix+SnakeCase(t.Field(i).Name), func() uint64 {
			return atomic.LoadUint64(p)
		})
	}
}

// SnakeCase converts a Go exported identifier to the registry's
// lower_snake_case convention, keeping acronym/digit runs together:
// "NewcomerGrants" → "newcomer_grants", "RL1Dropped" → "rl1_dropped",
// "ForwardedToANS" → "forwarded_to_ans", "TCRedirects" → "tc_redirects".
func SnakeCase(name string) string {
	var b strings.Builder
	rs := []rune(name)
	for i, r := range rs {
		if unicode.IsUpper(r) && i > 0 {
			prev := rs[i-1]
			next := rune(0)
			if i+1 < len(rs) {
				next = rs[i+1]
			}
			// A word starts at an uppercase rune following a lowercase rune
			// or digit, or at the last uppercase rune of an acronym run
			// ("TCRedirects": the R before "edirects").
			if unicode.IsLower(prev) || unicode.IsDigit(prev) ||
				(unicode.IsUpper(prev) && unicode.IsLower(next)) {
				b.WriteByte('_')
			}
		}
		b.WriteRune(unicode.ToLower(r))
	}
	return b.String()
}
