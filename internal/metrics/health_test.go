package metrics

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
)

// HealthHandler contract: /healthz and /readyz return 200 "ok" on a nil
// probe result, 503 with the error text otherwise, and the metrics
// endpoints stay mounted alongside them.
func TestHealthHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("probe_series").Add(3)
	healthy := true
	reason := errors.New("keyring epoch 2 behind fleet epoch 3")
	ready := false
	ln, err := ServeHealth("127.0.0.1:0", r,
		func() error {
			if healthy {
				return nil
			}
			return errors.New("closed")
		},
		func() error {
			if ready {
				return nil
			}
			return reason
		})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + ln.Addr().String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "keyring epoch") {
		t.Fatalf("/readyz = %d %q, want 503 with reason", code, body)
	}
	ready = true
	if code, body := get("/readyz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("ready /readyz = %d %q, want 200 ok", code, body)
	}
	healthy = false
	if code, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy /healthz = %d, want 503", code)
	}
	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "probe_series 3") {
		t.Fatalf("/metrics missing under HealthHandler: %d %q", code, body)
	}
	// Nil probes always pass (plain-Handler semantics).
	lnNil, err := ServeHealth("127.0.0.1:0", r, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lnNil.Close()
	resp, err := http.Get("http://" + lnNil.Addr().String() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("nil-probe /readyz = %d, want 200", resp.StatusCode)
	}
}
