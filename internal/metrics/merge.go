package metrics

import (
	"fmt"
	"sort"
	"time"
)

// Cross-registry aggregation. A guard fleet runs one Registry per guard so
// the hot paths never share a counter cacheline across instances; the
// fleet-level view ("how many cookies did the *fleet* verify") is produced
// at scrape time by summing the per-guard snapshots. The same helper serves
// any multi-process roll-up: collect N registries (or N snapshots shipped
// over the wire), merge, export.

// MergeHistogram adds src's observations into dst, bucket by bucket. Both
// histograms must have identical bounds; otherwise nothing is merged and an
// error is returned. Concurrent observation on src during the merge may
// produce a momentarily torn view (same caveat as Histogram snapshots).
func MergeHistogram(dst, src *Histogram) error {
	if len(dst.bounds) != len(src.bounds) {
		return fmt.Errorf("metrics: merge histogram: bucket count mismatch (%d vs %d)", len(dst.bounds), len(src.bounds))
	}
	for i := range dst.bounds {
		if dst.bounds[i] != src.bounds[i] {
			return fmt.Errorf("metrics: merge histogram: bound %d mismatch (%v vs %v)", i, dst.bounds[i], src.bounds[i])
		}
	}
	for i := range src.counts {
		dst.counts[i].Add(src.counts[i].Load())
	}
	dst.count.Add(src.count.Load())
	dst.sum.Add(src.sum.Load())
	return nil
}

// Merged snapshots every registry and combines same-named series: counters,
// gauges, and func adapters sum their values; histograms merge bucket-wise
// first and then emit their derived series (_count/_sum_ns/quantiles/_le_*),
// so the merged quantiles are computed over the combined distribution rather
// than averaged per-registry. The result is sorted by name.
//
// A series name must have the same kind in every registry, and histogram
// series must share bounds; Merged panics otherwise — mixed kinds under one
// name are a programming error, exactly like double registration.
func Merged(regs ...*Registry) []Sample {
	sums := make(map[string]float64)
	hists := make(map[string]*Histogram)
	for _, r := range regs {
		r.mu.RLock()
		for name, m := range r.m {
			if h, ok := m.(*Histogram); ok {
				if _, clash := sums[name]; clash {
					r.mu.RUnlock()
					panic(fmt.Sprintf("metrics: merged series %q is both histogram and scalar", name))
				}
				acc := hists[name]
				if acc == nil {
					acc = NewHistogramBounds(append([]time.Duration(nil), h.bounds...))
					hists[name] = acc
				}
				if err := MergeHistogram(acc, h); err != nil {
					r.mu.RUnlock()
					panic(err.Error())
				}
				continue
			}
			m.sample(name, func(s Sample) {
				if _, clash := hists[s.Name]; clash {
					panic(fmt.Sprintf("metrics: merged series %q is both histogram and scalar", s.Name))
				}
				sums[s.Name] += s.Value
			})
		}
		r.mu.RUnlock()
	}
	var out []Sample
	for name, v := range sums {
		out = append(out, Sample{name, v})
	}
	for name, h := range hists {
		h.sample(name, func(s Sample) { out = append(out, s) })
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MergedInto registers a live roll-up of regs on r: every snapshot of r
// re-merges the current state of all source registries and emits each merged
// series under prefix+name. The roll-up is registered as a single entry
// named prefix; registering two roll-ups with the same prefix panics.
func MergedInto(r *Registry, prefix string, regs ...*Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[prefix]; ok {
		panic(fmt.Sprintf("metrics: %q already registered", prefix))
	}
	r.m[prefix] = mergedMetric{prefix: prefix, regs: regs}
}

// mergedMetric is the registry entry behind MergedInto: one registered name
// expanding to the full merged series set at sample time.
type mergedMetric struct {
	prefix string
	regs   []*Registry
}

func (m mergedMetric) sample(_ string, emit func(Sample)) {
	for _, s := range Merged(m.regs...) {
		emit(Sample{m.prefix + s.Name, s.Value})
	}
}
