package metrics

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// Handler returns an http.Handler exposing the registry:
//
//	/metrics     sorted expvar-style "name value" text
//	/debug/vars  the same snapshot as one JSON object
//
// Mount it on a daemon's -metrics-addr listener.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.WriteText(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
	return mux
}

// HealthHandler wraps Handler with the two Kubernetes-style probe
// endpoints orchestrators and catchment fronts poll:
//
//	/healthz  liveness — 200 "ok" while the process can make progress
//	/readyz   readiness — 200 "ok" only when the component should receive
//	          traffic (e.g. guard lifecycle serving, keyring epoch current,
//	          ingress backlog under threshold)
//
// healthz/readyz report the probe outcome: nil is healthy/ready, an error
// is rendered as a 503 with the error text as the body (so an operator's
// curl explains *why* the site is out of rotation). A nil func means the
// probe always passes — Handler semantics for daemons with nothing to gate.
func HealthHandler(r *Registry, healthz, readyz func() error) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", Handler(r))
	probe := func(check func() error) http.HandlerFunc {
		return func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if check != nil {
				if err := check(); err != nil {
					w.WriteHeader(http.StatusServiceUnavailable)
					fmt.Fprintln(w, err)
					return
				}
			}
			fmt.Fprintln(w, "ok")
		}
	}
	mux.HandleFunc("/healthz", probe(healthz))
	mux.HandleFunc("/readyz", probe(readyz))
	return mux
}

// Serve listens on addr and serves the registry until the listener is
// closed. It returns the bound listener (for its actual address and for
// shutdown) and never blocks; the serve loop runs in a goroutine.
func Serve(addr string, r *Registry) (net.Listener, error) {
	return serveHandler(addr, Handler(r))
}

// ServeHealth is Serve with the /healthz and /readyz probes mounted (see
// HealthHandler).
func ServeHealth(addr string, r *Registry, healthz, readyz func() error) (net.Listener, error) {
	return serveHandler(addr, HealthHandler(r, healthz, readyz))
}

func serveHandler(addr string, h http.Handler) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}

// DumpEvery writes the registry as text to w every interval until stop is
// closed — the headless-run export path (point w at stderr). Each dump is
// framed with a "-- metrics --" header line so interleaved logs stay
// greppable.
func DumpEvery(r *Registry, interval time.Duration, w io.Writer, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			fmt.Fprintln(w, "-- metrics --")
			_ = r.WriteText(w)
		case <-stop:
			return
		}
	}
}
