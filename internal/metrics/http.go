package metrics

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// Handler returns an http.Handler exposing the registry:
//
//	/metrics     sorted expvar-style "name value" text
//	/debug/vars  the same snapshot as one JSON object
//
// Mount it on a daemon's -metrics-addr listener.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.WriteText(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
	return mux
}

// Serve listens on addr and serves the registry until the listener is
// closed. It returns the bound listener (for its actual address and for
// shutdown) and never blocks; the serve loop runs in a goroutine.
func Serve(addr string, r *Registry) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}

// DumpEvery writes the registry as text to w every interval until stop is
// closed — the headless-run export path (point w at stderr). Each dump is
// framed with a "-- metrics --" header line so interleaved logs stay
// greppable.
func DumpEvery(r *Registry, interval time.Duration, w io.Writer, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			fmt.Fprintln(w, "-- metrics --")
			_ = r.WriteText(w)
		case <-stop:
			return
		}
	}
}
