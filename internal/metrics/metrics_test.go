package metrics

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("guard_received")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("guard_received"); again != c {
		t.Fatalf("second Counter() returned a different instance")
	}
	g := r.Gauge("tcpproxy_live")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatalf("Gauge(\"x\") after Counter(\"x\") did not panic")
		}
	}()
	r.Gauge("x")
}

func TestFuncAdapter(t *testing.T) {
	r := NewRegistry()
	var backing uint64 = 42
	r.FuncUint("legacy_field", func() uint64 { return backing })
	if v, ok := r.Get("legacy_field"); !ok || v != 42 {
		t.Fatalf("Get(legacy_field) = %v, %v; want 42, true", v, ok)
	}
	backing = 43
	if v, _ := r.Get("legacy_field"); v != 43 {
		t.Fatalf("adapter did not track backing field: got %v", v)
	}
}

// TestConcurrentIncrements is the -race workhorse: many goroutines hammer
// the same counters, gauges, and histogram while snapshots run.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_counter")
			g := r.Gauge("shared_gauge")
			h := r.Histogram("shared_hist")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(i) * time.Microsecond)
				if i%500 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_counter").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("shared_gauge").Value(); got != workers*perWorker {
		t.Fatalf("gauge = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("shared_hist").Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogramBounds([]time.Duration{
		time.Microsecond, 2 * time.Microsecond, 4 * time.Microsecond,
	})
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{-time.Microsecond, 0},           // clock regression lands low, not lost
		{time.Microsecond, 0},            // bounds are inclusive upper edges
		{time.Microsecond + 1, 1},        // just past a bound moves up a bucket
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{5 * time.Microsecond, 3},        // overflow bucket
		{time.Hour, 3},
	}
	for _, tc := range cases {
		if got := h.bucketIndex(tc.d); got != tc.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
	// 100 observations spread 1..100 ms: p50 should land near 50 ms within
	// the 2x bucket resolution, and never outside [1ms, 128ms].
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if h.Sum() != 5050*time.Millisecond {
		t.Fatalf("sum = %v, want 5.05s", h.Sum())
	}
	p50 := h.Quantile(0.5)
	if p50 < 25*time.Millisecond || p50 > 100*time.Millisecond {
		t.Errorf("p50 = %v, outside [25ms, 100ms]", p50)
	}
	// 2x buckets bound the relative error at one bucket width: the true p99
	// (99 ms) must be reported within its containing bucket (..131.072 ms].
	p99 := h.Quantile(0.99)
	if p99 < p50 || p99 > 132*time.Millisecond {
		t.Errorf("p99 = %v, want within [p50, 132ms]", p99)
	}
	if h.Quantile(0) > h.Quantile(1) {
		t.Errorf("quantiles not monotone: q0=%v q1=%v", h.Quantile(0), h.Quantile(1))
	}
}

func TestSnapshotDeterministicOrdering(t *testing.T) {
	r := NewRegistry()
	// Register in deliberately unsorted order.
	r.Counter("zeta")
	r.Gauge("alpha")
	r.Counter("mid")
	r.Histogram("beta").Observe(3 * time.Microsecond)

	first := r.Snapshot()
	names := make([]string, len(first))
	for i, s := range first {
		names[i] = s.Name
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("snapshot not sorted: %v", names)
	}
	second := r.Snapshot()
	if len(second) != len(first) {
		t.Fatalf("snapshot size changed: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("snapshot not deterministic at %d: %v vs %v", i, first[i], second[i])
		}
	}
}

func TestWriteTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_counter").Add(2)
	r.Gauge("a_gauge").Set(-1)

	var text bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	want := "a_gauge -1\nb_counter 2\n"
	if text.String() != want {
		t.Fatalf("WriteText = %q, want %q", text.String(), want)
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var obj map[string]float64
	if err := json.Unmarshal(js.Bytes(), &obj); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v", err)
	}
	if obj["a_gauge"] != -1 || obj["b_counter"] != 2 {
		t.Fatalf("WriteJSON = %v", obj)
	}
}

func TestDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	before := r.Snapshot()
	c.Add(7)
	after := r.Snapshot()
	d := Delta(before, after)
	if len(d) != 1 || d[0].Name != "n" || d[0].Value != 7 {
		t.Fatalf("Delta = %v, want [{n 7}]", d)
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("guard_remote_received").Add(9)
	ln, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + ln.Addr().String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, "guard_remote_received 9") {
		t.Fatalf("/metrics missing series: %q", body)
	}
	var obj map[string]float64
	if err := json.Unmarshal([]byte(get("/debug/vars")), &obj); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if obj["guard_remote_received"] != 9 {
		t.Fatalf("/debug/vars = %v", obj)
	}
}

func TestDumpEvery(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { DumpEvery(r, time.Millisecond, w, stop); close(done) }()
	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		s := buf.String()
		mu.Unlock()
		if strings.Contains(s, "-- metrics --") && strings.Contains(s, "x 1") {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("no dump within deadline; buffer: %q", s)
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(stop)
	<-done
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
