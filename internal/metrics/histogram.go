package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Histogram buckets count observed durations. Bounds are fixed at
// construction: log-spaced (doubling) from 1 µs, which spans the paper's
// latency range — sub-millisecond cookie verification up to multi-second
// TCP-redirect round trips — in ~25 buckets with ≤2x relative error.
//
// Observations and snapshots are lock-free: each bucket is an independent
// atomic counter, plus an atomic count and sum. A concurrent snapshot may
// see a torn view (an observation counted in sum but not yet in a bucket);
// for monitoring this is acceptable and every individual value is exact
// eventually.
type Histogram struct {
	bounds []time.Duration // upper bound of bucket i (inclusive); last bucket is +inf
	counts []atomic.Uint64 // len(bounds)+1: final slot is the overflow bucket
	count  atomic.Uint64
	sum    atomic.Int64 // total nanoseconds
}

// defaultBounds doubles from 1 µs for 25 buckets: 1µs, 2µs, … ~16.8 s.
func defaultBounds() []time.Duration {
	bounds := make([]time.Duration, 25)
	b := time.Microsecond
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}

// NewHistogram creates a histogram with the default log-spaced bounds.
func NewHistogram() *Histogram {
	return NewHistogramBounds(defaultBounds())
}

// NewHistogramBounds creates a histogram with the given ascending upper
// bounds. An implicit overflow bucket captures anything above the last.
func NewHistogramBounds(bounds []time.Duration) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one duration. Negative durations count in the first
// bucket (they arise from clock adjustments; dropping them would hide load).
func (h *Histogram) Observe(d time.Duration) {
	h.counts[h.bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// bucketIndex locates the first bucket whose upper bound is >= d (binary
// search over the fixed bounds).
func (h *Histogram) bucketIndex(d time.Duration) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] >= d {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by linear interpolation
// within the containing bucket. Returns 0 when the histogram is empty.
// Observations in the overflow bucket report the last finite bound.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n >= rank && n > 0 {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lower := time.Duration(0)
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			frac := (rank - cum) / n
			return lower + time.Duration(frac*float64(upper-lower))
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// sample emits the derived series for a histogram: _count, _sum_ns, the
// interpolated p50/p90/p99, and one cumulative _le_<bound> line per
// non-empty prefix of buckets.
func (h *Histogram) sample(name string, emit func(Sample)) {
	emit(Sample{name + "_count", float64(h.count.Load())})
	emit(Sample{name + "_sum_ns", float64(h.sum.Load())})
	emit(Sample{name + "_p50_ns", float64(h.Quantile(0.50))})
	emit(Sample{name + "_p90_ns", float64(h.Quantile(0.90))})
	emit(Sample{name + "_p99_ns", float64(h.Quantile(0.99))})
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum == 0 {
			continue // skip empty leading buckets to keep exports short
		}
		label := "inf"
		if i < len(h.bounds) {
			label = fmt.Sprintf("%dus", h.bounds[i].Microseconds())
		}
		emit(Sample{name + "_le_" + label, float64(cum)})
	}
}
