// Package metrics is the guard-wide observability substrate: a
// dependency-free registry of atomic counters, gauges, and fixed-bucket
// latency histograms with deterministic snapshot and export.
//
// The paper's entire evaluation (Tables I–III, Figures 5–7) is expressed in
// measured rates — cookie issues and verifications, drops at each rate
// limiter, offered load on the ANS, per-scheme latency — and operational
// DNS-defense work (Rizvi et al.'s layered root defense, Wei & Heidemann's
// spoof measurement) triggers every mitigation layer off live measurement.
// This package gives every component one substrate for those numbers:
//
//   - Counter and Gauge are lock-free atomics usable from any goroutine,
//     including the guard's capture and upstream loops under real clocks;
//   - Histogram buckets latencies into log-spaced bins spanning the paper's
//     µs-to-s range and reports quantiles by interpolation;
//   - Registry names metrics, accepts read-only snapshot adapters for
//     pre-existing stats structs (so their exported fields keep working),
//     and exports everything as sorted expvar-style "name value" text or
//     JSON — deterministic output for tests and diffable scrapes.
//
// Naming convention: lower_snake_case, prefixed by component
// ("guard_remote_", "resolver_", "tcpproxy_", ...); histogram-derived
// series append _count, _sum_ns, _p50_ns, _p90_ns, _p99_ns, and
// _le_<bound> bucket lines. DESIGN.md §9 maps series to the paper's tables.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; share it by pointer (it must not be copied after first use).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (e.g. live connections, table
// sizes). The zero value is ready to use; share it by pointer.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reports the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Sample is one exported series value at snapshot time.
type Sample struct {
	Name  string
	Value float64
}

// metric is anything that can contribute samples to a snapshot.
type metric interface {
	sample(name string, emit func(Sample))
}

func (c *Counter) sample(name string, emit func(Sample)) {
	emit(Sample{name, float64(c.Value())})
}

func (g *Gauge) sample(name string, emit func(Sample)) {
	emit(Sample{name, float64(g.Value())})
}

// funcMetric adapts a read-only closure — the snapshot adapter used to
// export pre-existing stats struct fields without migrating their type.
type funcMetric func() float64

func (f funcMetric) sample(name string, emit func(Sample)) {
	emit(Sample{name, f()})
}

// Registry is a named set of metrics. All methods are safe for concurrent
// use; getters create on first use and return the existing metric (of the
// same kind) thereafter.
type Registry struct {
	mu sync.RWMutex
	m  map[string]metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]metric)}
}

// Counter returns the counter registered under name, creating it if needed.
// Panics if name is already registered as a different kind.
func (r *Registry) Counter(name string) *Counter {
	c, _ := lookupOrCreate(r, name, func() *Counter { return &Counter{} })
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	g, _ := lookupOrCreate(r, name, func() *Gauge { return &Gauge{} })
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the default log-spaced latency buckets (1 µs … ~17 s) if needed.
func (r *Registry) Histogram(name string) *Histogram {
	h, _ := lookupOrCreate(r, name, NewHistogram)
	return h
}

// RegisterHistogram attaches a caller-owned histogram under name, so
// components that pre-create histograms (one per engine shard) can expose
// them without routing construction through the registry. Panics if name is
// already registered.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[name]; ok {
		panic(fmt.Sprintf("metrics: %q already registered", name))
	}
	r.m[name] = h
}

// Func registers a read-only snapshot adapter under name: fn is called at
// every snapshot. Use it to export fields of pre-existing stats structs
// (loaded atomically by the caller) without changing their type.
func (r *Registry) Func(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[name]; ok {
		panic(fmt.Sprintf("metrics: %q already registered", name))
	}
	r.m[name] = funcMetric(fn)
}

// FuncUint is Func for the common case of a uint64 counter field.
func (r *Registry) FuncUint(name string, fn func() uint64) {
	r.Func(name, func() float64 { return float64(fn()) })
}

// lookupOrCreate returns the metric under name, creating it with mk when
// absent. It panics when name holds a metric of a different concrete type.
func lookupOrCreate[M metric](r *Registry, name string, mk func() M) (M, bool) {
	r.mu.RLock()
	existing, ok := r.m[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		existing, ok = r.m[name]
		if !ok {
			m := mk()
			r.m[name] = m
			r.mu.Unlock()
			return m, true
		}
		r.mu.Unlock()
	}
	m, ok := existing.(M)
	if !ok {
		panic(fmt.Sprintf("metrics: %q already registered as %T", name, existing))
	}
	return m, false
}

// Snapshot returns every sample, sorted by name — deterministic for a given
// set of metric values. Counters and gauges are read atomically; Func
// adapters are invoked.
func (r *Registry) Snapshot() []Sample {
	r.mu.RLock()
	names := make([]string, 0, len(r.m))
	for name := range r.m {
		names = append(names, name)
	}
	sort.Strings(names)
	samples := make([]Sample, 0, len(names))
	for _, name := range names {
		r.m[name].sample(name, func(s Sample) { samples = append(samples, s) })
	}
	r.mu.RUnlock()
	sort.Slice(samples, func(i, j int) bool { return samples[i].Name < samples[j].Name })
	return samples
}

// Get returns the snapshot value of one series (histograms expand to their
// derived series names) and whether it exists.
func (r *Registry) Get(name string) (float64, bool) {
	for _, s := range r.Snapshot() {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

// WriteText writes the snapshot as expvar-style "name value" lines, sorted
// by name. Integral values print without a decimal point.
func (r *Registry) WriteText(w io.Writer) error {
	for _, s := range r.Snapshot() {
		if _, err := fmt.Fprintf(w, "%s %s\n", s.Name, formatValue(s.Value)); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the snapshot as a single JSON object keyed by series
// name (keys are emitted in sorted order by encoding/json).
func (r *Registry) WriteJSON(w io.Writer) error {
	obj := make(map[string]float64)
	for _, s := range r.Snapshot() {
		obj[s.Name] = s.Value
	}
	enc := json.NewEncoder(w)
	return enc.Encode(obj)
}

func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Delta computes per-series differences between two snapshots taken from the
// same registry (after minus before). Series absent from before are reported
// at their after value; series absent from after are dropped.
func Delta(before, after []Sample) []Sample {
	prev := make(map[string]float64, len(before))
	for _, s := range before {
		prev[s.Name] = s.Value
	}
	out := make([]Sample, 0, len(after))
	for _, s := range after {
		out = append(out, Sample{s.Name, s.Value - prev[s.Name]})
	}
	return out
}
