package metrics

import (
	"sync/atomic"
	"testing"
)

// Every existing stats field name must keep producing the exact series
// suffix the hand-written MetricsInto maps used, or scrape consumers
// (metrics-smoke, benchtab annotations) silently lose series.
func TestSnakeCase(t *testing.T) {
	cases := map[string]string{
		// guard.RemoteStats
		"Received":        "received",
		"PassedThrough":   "passed_through",
		"NewcomerGrants":  "newcomer_grants",
		"TCRedirects":     "tc_redirects",
		"CookieValid":     "cookie_valid",
		"CookieInvalid":   "cookie_invalid",
		"RL1Dropped":      "rl1_dropped",
		"RL2Dropped":      "rl2_dropped",
		"ForwardedToANS":  "forwarded_to_ans",
		"AnswersRelayed":  "answers_relayed",
		"PendingOverflow": "pending_overflow",
		"PendingDropped":  "pending_dropped",
		"UpstreamStrays":  "upstream_strays",
		"UpstreamSpoofed": "upstream_spoofed",
		"CacheHits":       "cache_hits",
		"KeyRotations":    "key_rotations",
		// guard.LocalStats
		"Intercepted":    "intercepted",
		"CookiesLearned": "cookies_learned",
		"ExchangeStrays": "exchange_strays",
		// netsim stats
		"Delivered":      "delivered",
		"NoRoute":        "no_route",
		"RecvDropped":    "recv_dropped",
		"PartitionDrops": "partition_drops",
		"Reordered":      "reordered",
		// engine
		"ShedNew":      "shed_new",
		"ShedOld":      "shed_old",
		"FastPathHits": "fast_path_hits",
	}
	for in, want := range cases {
		if got := SnakeCase(in); got != want {
			t.Errorf("SnakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}

type testStats struct {
	Received  uint64
	RL1Drop   uint64
	NotACount int // non-uint64 exported field: copied, not registered
	hidden    uint64
}

func TestSnapshotUint64(t *testing.T) {
	s := &testStats{NotACount: 7, hidden: 3}
	atomic.StoreUint64(&s.Received, 42)
	atomic.StoreUint64(&s.RL1Drop, 9)
	got := SnapshotUint64(s)
	if got.Received != 42 || got.RL1Drop != 9 || got.NotACount != 7 {
		t.Fatalf("snapshot = %+v", got)
	}
	if got.hidden != 0 {
		t.Fatalf("unexported field copied: %+v", got)
	}
}

func TestRegisterUint64Fields(t *testing.T) {
	s := &testStats{}
	r := NewRegistry()
	RegisterUint64Fields(r, "x_", s)
	atomic.StoreUint64(&s.Received, 5)
	if v, ok := r.Get("x_received"); !ok || v != 5 {
		t.Fatalf("x_received = %v, %v", v, ok)
	}
	if v, ok := r.Get("x_rl1_drop"); !ok || v != 0 {
		t.Fatalf("x_rl1_drop = %v, %v", v, ok)
	}
	if _, ok := r.Get("x_not_a_count"); ok {
		t.Fatal("non-uint64 field registered")
	}
}

func TestRegisterHistogram(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram()
	r.RegisterHistogram("lat", h)
	h.Observe(1000)
	if v, ok := r.Get("lat_count"); !ok || v != 1 {
		t.Fatalf("lat_count = %v, %v", v, ok)
	}
}
