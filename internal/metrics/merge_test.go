package metrics

import (
	"strings"
	"testing"
	"time"
)

func mergedValue(t *testing.T, samples []Sample, name string) float64 {
	t.Helper()
	for _, s := range samples {
		if s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("merged snapshot missing series %q", name)
	return 0
}

func TestMergedSumsCounters(t *testing.T) {
	a, b, c := NewRegistry(), NewRegistry(), NewRegistry()
	a.Counter("received").Add(10)
	b.Counter("received").Add(32)
	c.Counter("received").Add(0)
	a.Counter("only_a").Add(7)
	b.Gauge("depth").Set(4)
	c.Gauge("depth").Set(-1)
	a.FuncUint("handled", func() uint64 { return 5 })
	b.FuncUint("handled", func() uint64 { return 6 })

	m := Merged(a, b, c)
	if got := mergedValue(t, m, "received"); got != 42 {
		t.Errorf("received = %v, want 42", got)
	}
	if got := mergedValue(t, m, "only_a"); got != 7 {
		t.Errorf("only_a = %v, want 7", got)
	}
	if got := mergedValue(t, m, "depth"); got != 3 {
		t.Errorf("depth = %v, want 3 (gauges sum)", got)
	}
	if got := mergedValue(t, m, "handled"); got != 11 {
		t.Errorf("handled = %v, want 11", got)
	}
	// Sorted by name, like Snapshot.
	for i := 1; i < len(m); i++ {
		if m[i-1].Name >= m[i].Name {
			t.Fatalf("merged samples not sorted: %q before %q", m[i-1].Name, m[i].Name)
		}
	}
}

func TestMergedHistogramsCombineDistributions(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	ha, hb := a.Histogram("wait"), b.Histogram("wait")
	// 90 fast observations in one registry, 10 slow in the other: the merged
	// p99 must land in the slow region, which per-registry averaging of
	// quantiles could never produce.
	for i := 0; i < 90; i++ {
		ha.Observe(2 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		hb.Observe(slowTail)
	}
	m := Merged(a, b)
	if got := mergedValue(t, m, "wait_count"); got != 100 {
		t.Errorf("wait_count = %v, want 100", got)
	}
	wantSum := float64(90*2*time.Microsecond + 10*slowTail)
	if got := mergedValue(t, m, "wait_sum_ns"); got != wantSum {
		t.Errorf("wait_sum_ns = %v, want %v", got, wantSum)
	}
	if got := time.Duration(mergedValue(t, m, "wait_p99_ns")); got < time.Millisecond {
		t.Errorf("merged p99 = %v, want >= 1ms (slow tail from second registry)", got)
	}
	if got := time.Duration(mergedValue(t, m, "wait_p50_ns")); got > 10*time.Microsecond {
		t.Errorf("merged p50 = %v, want fast-path dominated", got)
	}
}

const slowTail = 3 * time.Millisecond

func TestMergeHistogramBoundsMismatch(t *testing.T) {
	dst := NewHistogramBounds([]time.Duration{time.Microsecond, time.Millisecond})
	src := NewHistogramBounds([]time.Duration{time.Microsecond, 2 * time.Millisecond})
	if err := MergeHistogram(dst, src); err == nil {
		t.Fatal("MergeHistogram accepted mismatched bounds")
	}
	short := NewHistogramBounds([]time.Duration{time.Microsecond})
	if err := MergeHistogram(dst, short); err == nil {
		t.Fatal("MergeHistogram accepted mismatched bucket count")
	}
	same := NewHistogramBounds([]time.Duration{time.Microsecond, time.Millisecond})
	same.Observe(time.Microsecond)
	if err := MergeHistogram(dst, same); err != nil {
		t.Fatalf("MergeHistogram on matching bounds: %v", err)
	}
	if dst.Count() != 1 {
		t.Fatalf("dst.Count = %d, want 1", dst.Count())
	}
}

func TestMergedPanicsOnMixedKinds(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("x").Inc()
	b.Histogram("x").Observe(time.Microsecond)
	defer func() {
		if recover() == nil {
			t.Fatal("Merged did not panic on counter/histogram kind clash")
		}
	}()
	Merged(a, b)
}

func TestMergedInto(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("guard_remote_received").Add(3)
	b.Counter("guard_remote_received").Add(4)
	a.Histogram("guard_wait").Observe(time.Microsecond)
	b.Histogram("guard_wait").Observe(time.Microsecond)

	top := NewRegistry()
	top.Counter("fleet_sites").Add(2)
	MergedInto(top, "fleet_", a, b)

	var sb strings.Builder
	if err := top.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"fleet_guard_remote_received 7\n",
		"fleet_guard_wait_count 2\n",
		"fleet_sites 2\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("roll-up text missing %q; got:\n%s", want, text)
		}
	}
	// The roll-up is live: source registries keep moving after registration.
	a.Counter("guard_remote_received").Add(10)
	if v, ok := top.Get("fleet_guard_remote_received"); !ok || v != 17 {
		t.Errorf("live roll-up = %v (ok=%v), want 17", v, ok)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("duplicate MergedInto prefix did not panic")
		}
	}()
	MergedInto(top, "fleet_", a)
}
