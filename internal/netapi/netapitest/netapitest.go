// Package netapitest is the cross-backend conformance suite for netapi
// environments. Every behavioral contract the rest of the repository leans
// on — timeout semantics (NoTimeout blocks, zero polls, ErrTimeout/ErrClosed
// matched with errors.Is), ephemeral-port binding, queue admission policy,
// and the BatchConn slab rules (no wait-to-fill, truncate-to-cap,
// allocate-when-empty) — is pinned here and run against both internal/netsim
// and internal/realnet, so a divergence between the simulator and the real
// stack fails a test instead of surfacing as a production-only bug.
//
// Backends with cooperative schedulers (netsim) run each check inside a
// scheduler proc, where t.Fatalf's runtime.Goexit would wedge the virtual
// clock — checks therefore report with t.Errorf and return.
package netapitest

import (
	"bytes"
	"errors"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"dnsguard/internal/netapi"
)

// Backend adapts one netapi.Env implementation to the suite.
type Backend struct {
	// Name labels the subtests.
	Name string
	// Addr is an address the environment can bind UDP sockets on (the
	// host's own address under netsim, a loopback address under realnet).
	Addr netip.Addr
	// Run executes fn with a fresh Env in a context where netapi blocking
	// calls are legal — the test goroutine for preemptive backends, a
	// scheduler proc (with the scheduler then run to completion) for
	// cooperative ones. Run must not return until fn has.
	Run func(t *testing.T, fn func(env netapi.Env))
}

// Run executes the full conformance suite against b.
func Run(t *testing.T, b Backend) {
	t.Run("ZeroPortBind", func(t *testing.T) { b.Run(t, func(env netapi.Env) { testZeroPortBind(t, b, env) }) })
	t.Run("TimeoutPoll", func(t *testing.T) { b.Run(t, func(env netapi.Env) { testTimeoutPoll(t, b, env) }) })
	t.Run("TimeoutElapses", func(t *testing.T) { b.Run(t, func(env netapi.Env) { testTimeoutElapses(t, b, env) }) })
	t.Run("RoundTrip", func(t *testing.T) { b.Run(t, func(env netapi.Env) { testRoundTrip(t, b, env) }) })
	t.Run("Close", func(t *testing.T) { b.Run(t, func(env netapi.Env) { testClose(t, b, env) }) })
	t.Run("Queue", func(t *testing.T) { b.Run(t, func(env netapi.Env) { testQueue(t, b, env) }) })
	for _, mode := range []batchMode{{"Native", netapi.AsBatch}, {"Loop", loopBatch}} {
		mode := mode
		t.Run("BatchRead/"+mode.name, func(t *testing.T) {
			b.Run(t, func(env netapi.Env) { testBatchRead(t, b, env, mode) })
		})
		t.Run("BatchSlab/"+mode.name, func(t *testing.T) {
			b.Run(t, func(env netapi.Env) { testBatchSlab(t, b, env, mode) })
		})
		t.Run("BatchWrite/"+mode.name, func(t *testing.T) {
			b.Run(t, func(env netapi.Env) { testBatchWrite(t, b, env, mode) })
		})
	}
}

// batchMode selects how the suite obtains a BatchConn: AsBatch exercises the
// backend's native implementation when it has one, Loop pins the portable
// fallback's semantics even where a native path exists.
type batchMode struct {
	name string
	wrap func(netapi.UDPConn) netapi.BatchConn
}

func loopBatch(c netapi.UDPConn) netapi.BatchConn { return netapi.LoopBatch(c) }

// settle is how long the suite waits for sent datagrams to be buffered at
// the receiver before draining them (simulated link latency, loopback
// scheduling).
const settle = 250 * time.Millisecond

func bind(t *testing.T, b Backend, env netapi.Env) netapi.UDPConn {
	t.Helper()
	c, err := env.ListenUDP(netip.AddrPortFrom(b.Addr, 0))
	if err != nil {
		t.Errorf("ListenUDP(%v:0): %v", b.Addr, err)
		return nil
	}
	return c
}

func testZeroPortBind(t *testing.T, b Backend, env netapi.Env) {
	c1 := bind(t, b, env)
	c2 := bind(t, b, env)
	if c1 == nil || c2 == nil {
		return
	}
	defer c1.Close()
	defer c2.Close()
	a1, a2 := c1.LocalAddr(), c2.LocalAddr()
	if a1.Addr() != b.Addr || a2.Addr() != b.Addr {
		t.Errorf("bound addresses %v, %v; want %v", a1.Addr(), a2.Addr(), b.Addr)
	}
	if a1.Port() == 0 || a2.Port() == 0 {
		t.Errorf("ephemeral bind produced zero port: %v, %v", a1, a2)
	}
	if a1.Port() == a2.Port() {
		t.Errorf("two ephemeral binds share port %d", a1.Port())
	}
	// A fully zero AddrPort must also bind (the backend picks address and
	// port); only the non-zero port is portable across backends.
	c3, err := env.ListenUDP(netip.AddrPort{})
	if err != nil {
		t.Errorf("ListenUDP(zero AddrPort): %v", err)
		return
	}
	defer c3.Close()
	if c3.LocalAddr().Port() == 0 {
		t.Errorf("zero-AddrPort bind produced zero port: %v", c3.LocalAddr())
	}
}

func testTimeoutPoll(t *testing.T, b Backend, env netapi.Env) {
	c := bind(t, b, env)
	if c == nil {
		return
	}
	defer c.Close()
	if _, _, err := c.ReadFrom(0); !errors.Is(err, netapi.ErrTimeout) {
		t.Errorf("poll on empty socket: err = %v, want errors.Is ErrTimeout", err)
	}
	// A poll must also see a datagram that is already buffered: this is the
	// rule a deadline-of-exactly-now implementation breaks (the deadline
	// timer beats the recv attempt and buffered data becomes unreachable).
	if err := c.WriteTo([]byte("poll"), c.LocalAddr()); err != nil {
		t.Errorf("self WriteTo: %v", err)
		return
	}
	env.Sleep(settle)
	payload, _, err := c.ReadFrom(0)
	if err != nil || string(payload) != "poll" {
		t.Errorf("poll with buffered datagram = %q, %v; want \"poll\", nil", payload, err)
	}
}

func testTimeoutElapses(t *testing.T, b Backend, env netapi.Env) {
	c := bind(t, b, env)
	if c == nil {
		return
	}
	defer c.Close()
	const wait = 30 * time.Millisecond
	start := env.Now()
	_, _, err := c.ReadFrom(wait)
	if !errors.Is(err, netapi.ErrTimeout) {
		t.Errorf("timed read: err = %v, want errors.Is ErrTimeout", err)
	}
	if elapsed := env.Now() - start; elapsed < wait {
		t.Errorf("timed read returned after %v, before the %v timeout", elapsed, wait)
	}
}

func testRoundTrip(t *testing.T, b Backend, env netapi.Env) {
	sender, receiver := bind(t, b, env), bind(t, b, env)
	if sender == nil || receiver == nil {
		return
	}
	defer sender.Close()
	defer receiver.Close()
	payload := []byte("conformance round trip")
	if err := sender.WriteTo(payload, receiver.LocalAddr()); err != nil {
		t.Errorf("WriteTo: %v", err)
		return
	}
	got, src, err := receiver.ReadFrom(5 * time.Second)
	if err != nil {
		t.Errorf("ReadFrom: %v", err)
		return
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload = %q, want %q", got, payload)
	}
	if src != sender.LocalAddr() {
		t.Errorf("source = %v, want %v", src, sender.LocalAddr())
	}
}

func testClose(t *testing.T, b Backend, env netapi.Env) {
	c := bind(t, b, env)
	if c == nil {
		return
	}
	// Closing from another proc must unblock an indefinitely blocked read
	// with ErrClosed.
	env.Go("closer", func() {
		env.Sleep(20 * time.Millisecond)
		_ = c.Close()
	})
	if _, _, err := c.ReadFrom(netapi.NoTimeout); !errors.Is(err, netapi.ErrClosed) {
		t.Errorf("blocked read on closed socket: err = %v, want errors.Is ErrClosed", err)
	}
	if _, _, err := c.ReadFrom(0); !errors.Is(err, netapi.ErrClosed) {
		t.Errorf("poll on closed socket: err = %v, want errors.Is ErrClosed", err)
	}
	if err := c.WriteTo([]byte("x"), c.LocalAddr()); !errors.Is(err, netapi.ErrClosed) {
		t.Errorf("write on closed socket: err = %v, want errors.Is ErrClosed", err)
	}
	slab := netapi.NewSlab(2, 64)
	if _, err := netapi.AsBatch(c).ReadBatch(slab, 0); !errors.Is(err, netapi.ErrClosed) {
		t.Errorf("batch read on closed socket: err = %v, want errors.Is ErrClosed", err)
	}
}

func testQueue(t *testing.T, b Backend, env netapi.Env) {
	q := netapi.Capabilities(env).NewQueue(2)
	if _, err := q.Get(0); !errors.Is(err, netapi.ErrTimeout) {
		t.Errorf("Get(0) on empty queue: err = %v, want errors.Is ErrTimeout", err)
	}
	if !q.Put(1) || !q.Put(2) {
		t.Error("Put into non-full queue reported false")
	}
	if q.Put(3) {
		t.Error("Put into full queue reported true; tail-drop is the contract")
	}
	if ev, did := q.PutEvict(4); !did || ev != 1 {
		t.Errorf("PutEvict on full queue = (%v, %v), want oldest item (1, true)", ev, did)
	}
	if q.Len() != 2 {
		t.Errorf("Len = %d after evicting put into capacity-2 queue, want 2", q.Len())
	}
	for i, want := range []int{2, 4} {
		got, err := q.Get(0)
		if err != nil || got != want {
			t.Errorf("Get #%d = (%v, %v), want (%d, nil)", i, got, err, want)
		}
	}
	// A blocked Get must be woken by a Put from another proc.
	env.Go("producer", func() {
		env.Sleep(10 * time.Millisecond)
		q.Put(7)
	})
	if got, err := q.Get(5 * time.Second); err != nil || got != 7 {
		t.Errorf("blocked Get = (%v, %v), want (7, nil)", got, err)
	}
	// Close drains buffered items before reporting ErrClosed, and rejects
	// further Puts.
	q.Put(8)
	q.Close()
	if got, err := q.Get(0); err != nil || got != 8 {
		t.Errorf("Get after Close = (%v, %v); buffered items must drain first", got, err)
	}
	if _, err := q.Get(0); !errors.Is(err, netapi.ErrClosed) {
		t.Errorf("Get on drained closed queue: err = %v, want errors.Is ErrClosed", err)
	}
	if q.Put(9) {
		t.Error("Put into closed queue reported true")
	}
}

func testBatchRead(t *testing.T, b Backend, env netapi.Env, mode batchMode) {
	sender, receiver := bind(t, b, env), bind(t, b, env)
	if sender == nil || receiver == nil {
		return
	}
	defer sender.Close()
	defer receiver.Close()
	bc := mode.wrap(receiver)

	const sent = 3
	for i := 0; i < sent; i++ {
		if err := sender.WriteTo([]byte(fmt.Sprintf("dgram-%d", i)), receiver.LocalAddr()); err != nil {
			t.Errorf("WriteTo #%d: %v", i, err)
			return
		}
	}
	env.Sleep(settle)

	// The slab has more slots than datagrams exist: a blocking ReadBatch
	// must still return — it takes the first datagram under blocking rules
	// and then only what is already buffered, never waiting to fill.
	slab := netapi.NewSlab(sent+5, 64)
	total := 0
	for total < sent {
		timeout := netapi.NoTimeout
		if total > 0 {
			timeout = 5 * time.Second
		}
		n, err := bc.ReadBatch(slab[total:], timeout)
		if err != nil {
			t.Errorf("ReadBatch after %d datagrams: %v", total, err)
			return
		}
		if n < 1 {
			t.Errorf("ReadBatch returned n = %d with nil error; contract is n >= 1", n)
			return
		}
		total += n
	}
	for i := 0; i < sent; i++ {
		want := fmt.Sprintf("dgram-%d", i)
		if got := string(slab[i].Payload()); got != want {
			t.Errorf("slot %d payload = %q, want %q", i, got, want)
		}
		if slab[i].Addr != sender.LocalAddr() {
			t.Errorf("slot %d source = %v, want %v", i, slab[i].Addr, sender.LocalAddr())
		}
	}
	if n, err := bc.ReadBatch(slab, 0); !errors.Is(err, netapi.ErrTimeout) {
		t.Errorf("ReadBatch poll on drained socket = (%d, %v), want errors.Is ErrTimeout", n, err)
	}
	if n, err := bc.ReadBatch(nil, 0); n != 0 || err != nil {
		t.Errorf("ReadBatch with empty slab = (%d, %v), want (0, nil)", n, err)
	}
}

func testBatchSlab(t *testing.T, b Backend, env netapi.Env, mode batchMode) {
	sender, receiver := bind(t, b, env), bind(t, b, env)
	if sender == nil || receiver == nil {
		return
	}
	defer sender.Close()
	defer receiver.Close()
	bc := mode.wrap(receiver)
	payload := []byte("0123456789")

	// An empty slot (cap 0) is allocated by the implementation.
	if err := sender.WriteTo(payload, receiver.LocalAddr()); err != nil {
		t.Errorf("WriteTo: %v", err)
		return
	}
	env.Sleep(settle)
	empty := make([]netapi.Datagram, 1)
	if n, err := bc.ReadBatch(empty, 5*time.Second); n != 1 || err != nil {
		t.Errorf("ReadBatch into empty slot = (%d, %v)", n, err)
		return
	}
	if !bytes.Equal(empty[0].Payload(), payload) {
		t.Errorf("empty-slot payload = %q, want %q", empty[0].Payload(), payload)
	}

	// A datagram longer than the slot's capacity is truncated to cap — the
	// same thing a plain recvfrom with a short buffer does.
	if err := sender.WriteTo(payload, receiver.LocalAddr()); err != nil {
		t.Errorf("WriteTo: %v", err)
		return
	}
	env.Sleep(settle)
	short := netapi.NewSlab(1, 4)
	if n, err := bc.ReadBatch(short, 5*time.Second); n != 1 || err != nil {
		t.Errorf("ReadBatch into short slot = (%d, %v)", n, err)
		return
	}
	if short[0].N != 4 || !bytes.Equal(short[0].Payload(), payload[:4]) {
		t.Errorf("short slot = %d bytes %q, want 4 bytes %q", short[0].N, short[0].Payload(), payload[:4])
	}
}

func testBatchWrite(t *testing.T, b Backend, env netapi.Env, mode batchMode) {
	sender, receiver := bind(t, b, env), bind(t, b, env)
	if sender == nil || receiver == nil {
		return
	}
	defer sender.Close()
	defer receiver.Close()
	bc := mode.wrap(sender)

	const sent = 4
	views := make([]netapi.Datagram, sent)
	for i := range views {
		views[i].Set([]byte(fmt.Sprintf("batch-write-%d", i)), receiver.LocalAddr())
	}
	if n, err := bc.WriteBatch(views); n != sent || err != nil {
		t.Errorf("WriteBatch = (%d, %v), want (%d, nil)", n, err, sent)
		return
	}
	for i := 0; i < sent; i++ {
		payload, src, err := receiver.ReadFrom(5 * time.Second)
		if err != nil {
			t.Errorf("ReadFrom #%d: %v", i, err)
			return
		}
		want := fmt.Sprintf("batch-write-%d", i)
		if string(payload) != want {
			t.Errorf("datagram %d = %q, want %q (batch writes are ordered)", i, payload, want)
		}
		if src != sender.LocalAddr() {
			t.Errorf("datagram %d source = %v, want %v", i, src, sender.LocalAddr())
		}
	}
}
