package netapi

import (
	"sync"
	"time"
)

// NewChanQueue returns the portable Queue implementation for environments
// scheduled by the Go runtime (realnet, tests). It is a mutex-guarded ring
// with a wakeup channel, designed for the engine's topology: any number of
// producers, ONE consumer. A single consumer drains the ring to empty before
// blocking again, so the capacity-1 wakeup channel cannot lose a wakeup;
// multiple concurrent Get callers would need a condition variable instead.
//
// Simulator procs must not use this (a channel receive inside a netsim proc
// deadlocks the virtual clock); netsim's Env provides its own Queue.
func NewChanQueue(capacity int) Queue {
	if capacity < 1 {
		capacity = 1
	}
	return &chanQueue{
		items:  make([]any, capacity),
		notify: make(chan struct{}, 1),
	}
}

type chanQueue struct {
	mu     sync.Mutex
	items  []any // ring buffer of len == capacity
	head   int
	n      int
	closed bool
	notify chan struct{}
}

func (q *chanQueue) wake() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

func (q *chanQueue) Put(v any) bool {
	q.mu.Lock()
	if q.closed || q.n == len(q.items) {
		q.mu.Unlock()
		return false
	}
	q.items[(q.head+q.n)%len(q.items)] = v
	q.n++
	q.mu.Unlock()
	q.wake()
	return true
}

func (q *chanQueue) PutEvict(v any) (evicted any, didEvict bool) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		// Closed: bounce v back to the caller as the "evicted" item (see the
		// netapi.Queue contract) so pooled items are never silently dropped.
		return v, true
	}
	if q.n == len(q.items) {
		evicted, didEvict = q.items[q.head], true
		q.items[q.head] = nil
		q.head = (q.head + 1) % len(q.items)
		q.n--
	}
	q.items[(q.head+q.n)%len(q.items)] = v
	q.n++
	q.mu.Unlock()
	q.wake()
	return evicted, didEvict
}

func (q *chanQueue) Get(timeout time.Duration) (any, error) {
	var timer *time.Timer
	var expire <-chan time.Time
	if timeout > 0 {
		timer = time.NewTimer(timeout)
		expire = timer.C
		defer timer.Stop()
	}
	for {
		q.mu.Lock()
		if q.n > 0 {
			v := q.items[q.head]
			q.items[q.head] = nil
			q.head = (q.head + 1) % len(q.items)
			q.n--
			q.mu.Unlock()
			return v, nil
		}
		closed := q.closed
		q.mu.Unlock()
		if closed {
			return nil, ErrClosed
		}
		if timeout == 0 {
			return nil, ErrTimeout
		}
		select {
		case <-q.notify:
		case <-expire:
			return nil, ErrTimeout
		}
	}
}

func (q *chanQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

func (q *chanQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.wake()
}
