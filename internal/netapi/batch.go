package netapi

import (
	"net/netip"
	"time"
)

// Datagram is one slot of a reusable batch slab: a payload buffer, the number
// of payload bytes it holds, and the peer address. A caller allocates a slab
// once (see NewSlab), hands it to ReadBatch over and over, and reads each
// filled slot's Buf[:N] — the slab amortizes buffer allocation across the
// life of the connection.
type Datagram struct {
	// Buf holds the payload. ReadBatch fills Buf[:N] in place, reusing the
	// slot's existing capacity; when cap(Buf) is zero the implementation
	// allocates. Real-socket backends scatter datagrams straight into Buf
	// and therefore cannot grow it mid-syscall: a datagram longer than
	// cap(Buf) is silently truncated to cap(Buf), exactly as a plain
	// recvfrom with a short buffer would (size slots for the largest
	// datagram you expect; 64 KiB covers any UDP payload). The simulator
	// applies the same truncation rule so both backends agree.
	Buf []byte
	// N is the payload length: bytes received for a read, bytes to send
	// for a write.
	N int
	// Addr is the peer: source address for a read, destination for a write.
	Addr netip.AddrPort
}

// Payload returns the filled portion of the slot, Buf[:N].
func (d *Datagram) Payload() []byte { return d.Buf[:d.N] }

// Set fills the slot for writing: the payload is copied into the slot's
// buffer (growing it if needed) so the caller's slice is not retained.
func (d *Datagram) Set(payload []byte, to netip.AddrPort) {
	d.Buf = append(d.Buf[:0], payload...)
	d.N = len(payload)
	d.Addr = to
}

// NewSlab allocates a batch slab of n datagram slots, each backed by a
// size-byte buffer carved from one contiguous allocation.
func NewSlab(n, size int) []Datagram {
	backing := make([]byte, n*size)
	msgs := make([]Datagram, n)
	for i := range msgs {
		msgs[i].Buf = backing[i*size : (i+1)*size : (i+1)*size]
	}
	return msgs
}

// BatchConn is an optional UDPConn capability: moving several datagrams per
// call. Backends that can amortize per-datagram cost implement it natively —
// realnet batches kernel crossings with recvmmsg/sendmmsg on Linux, netsim
// drains its delivery queue without touching the event schedule. Obtain one
// with AsBatch, which falls back to a portable per-datagram loop over any
// UDPConn, so callers can be written against BatchConn unconditionally.
type BatchConn interface {
	// ReadBatch fills up to len(msgs) slots and returns the number filled.
	// It blocks per netapi timeout rules for the first datagram (NoTimeout
	// blocks; zero polls; ErrTimeout/ErrClosed on failure) and then takes
	// only what is already buffered — it never waits to fill the slab, so
	// n >= 1 whenever err is nil. Filled slots are valid until the next
	// ReadBatch on the same slab.
	ReadBatch(msgs []Datagram, timeout time.Duration) (n int, err error)
	// WriteBatch sends msgs[i].Buf[:msgs[i].N] to msgs[i].Addr for each
	// slot, in order, and returns the number sent. Delivery is
	// best-effort; a non-nil error reports the first send failure.
	WriteBatch(msgs []Datagram) (n int, err error)
}

// AsBatch returns c's native BatchConn implementation when it has one, and
// otherwise wraps c in a portable adapter that loops ReadFrom/WriteTo (one
// blocking read, then zero-timeout polls to drain what is buffered).
func AsBatch(c UDPConn) BatchConn {
	if bc, ok := c.(BatchConn); ok {
		return bc
	}
	return LoopBatch(c)
}

// LoopBatch wraps any UDPConn in the portable per-datagram BatchConn
// adapter, regardless of native support. AsBatch should be preferred;
// LoopBatch exists so the conformance suite can pin the fallback's semantics
// even on platforms where the native path is compiled in.
func LoopBatch(c UDPConn) BatchConn { return loopBatch{c} }

type loopBatch struct{ c UDPConn }

func (l loopBatch) ReadBatch(msgs []Datagram, timeout time.Duration) (int, error) {
	if len(msgs) == 0 {
		return 0, nil
	}
	b, src, err := l.c.ReadFrom(timeout)
	if err != nil {
		return 0, err
	}
	storeDatagram(&msgs[0], b, src)
	n := 1
	for n < len(msgs) {
		b, src, err := l.c.ReadFrom(0)
		if err != nil {
			break // drained (ErrTimeout) or closed; the n we have stand
		}
		storeDatagram(&msgs[n], b, src)
		n++
	}
	return n, nil
}

func (l loopBatch) WriteBatch(msgs []Datagram) (int, error) {
	for i := range msgs {
		if err := l.c.WriteTo(msgs[i].Buf[:msgs[i].N], msgs[i].Addr); err != nil {
			return i, err
		}
	}
	return len(msgs), nil
}

// storeDatagram copies payload into the slot under the slab contract:
// reuse the slot's capacity, truncate to cap(Buf) when the payload is
// longer, allocate only when the slot has no buffer at all.
func storeDatagram(d *Datagram, payload []byte, src netip.AddrPort) {
	if c := cap(d.Buf); c == 0 {
		d.Buf = append([]byte(nil), payload...)
	} else {
		if len(payload) > c {
			payload = payload[:c]
		}
		d.Buf = append(d.Buf[:0], payload...)
	}
	d.N = len(payload)
	d.Addr = src
}
