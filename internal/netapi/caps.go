package netapi

import "net/netip"

// Caps is the consolidated view of an Env's optional capabilities,
// discovered once by Capabilities. It replaces scattered type-asserts
// against QueueEnv / UDPReuseEnv / CooperativeEnv at every call site: code
// probes the environment a single time and then branches on plain fields.
//
// Capability matrix (see the package doc for the narrative):
//
//	capability        realnet                      netsim                       absent ⇒
//	----------        -------                      ------                       --------
//	NewQueue          chan-backed Queue            vclock BoundedQueue          NewChanQueue fallback (set unconditionally)
//	ListenUDPReuse    SO_REUSEPORT (or shared fd)  deterministic fan-out shim   nil func: single-socket ingest only
//	Cooperative       false (OS goroutines)        true (coroutines, vclock)    false: OS blocking allowed
//	Batch             true (recvmmsg on Linux,     true (event-free queue       false: AsBatch still works via the
//	                  read-loop elsewhere)         drain)                       portable per-datagram loop
//
// Flow stability is a per-conn property, not an Env capability: conns from
// ListenUDPReuse may implement FlowStableConn to advertise kernel per-flow
// steering (realnet's SO_REUSEPORT sockets report true; its shared-fd
// fallback and netsim's fan-out shim report false). Callers that need it
// probe each conn, not the Env.
type Caps struct {
	// NewQueue constructs a scheduler-aware bounded Queue. Never nil: when
	// the Env does not implement QueueEnv this falls back to NewChanQueue,
	// which is correct for any preemptive environment.
	NewQueue func(capacity int) Queue
	// ListenUDPReuse binds n datagram endpoints to one address, or nil
	// when the Env has no multi-socket ingest (UDPReuseEnv not
	// implemented).
	ListenUDPReuse func(addr netip.AddrPort, n int) ([]UDPConn, error)
	// Cooperative reports that procs are cooperative coroutines on a
	// shared virtual clock and must never block through OS primitives
	// (CooperativeEnv semantics; false for preemptive environments).
	Cooperative bool
	// Batch reports that the Env's UDP conns implement BatchConn natively,
	// amortizing per-datagram cost. AsBatch works either way; this only
	// tells callers whether batching buys more than a convenience loop.
	Batch bool
}

// BatchEnv is an optional Env capability marker: BatchIO reports that the
// environment's UDP conns implement BatchConn natively. Capabilities uses it
// to fill Caps.Batch.
type BatchEnv interface {
	BatchIO() bool
}

// Capabilities probes env for every optional capability and returns the
// consolidated Caps. It is cheap (a handful of type asserts) but callers are
// expected to invoke it once at setup, not per packet.
func Capabilities(env Env) Caps {
	caps := Caps{NewQueue: NewChanQueue}
	if qe, ok := env.(QueueEnv); ok {
		caps.NewQueue = qe.NewQueue
	}
	if re, ok := env.(UDPReuseEnv); ok {
		caps.ListenUDPReuse = re.ListenUDPReuse
	}
	if ce, ok := env.(CooperativeEnv); ok {
		caps.Cooperative = ce.CooperativeScheduling()
	}
	if be, ok := env.(BatchEnv); ok {
		caps.Batch = be.BatchIO()
	}
	return caps
}
