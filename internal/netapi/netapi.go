// Package netapi defines the minimal network environment used by every
// component in this repository: a clock, goroutine spawning, and UDP/TCP
// endpoints addressed with netip types.
//
// Two implementations exist: internal/netsim (a deterministic discrete-event
// simulator on a virtual clock, used by all experiments) and internal/realnet
// (thin adapters over the net and time packages, used by the cmd/ daemons and
// the realservers example). Code written against Env runs unchanged on both.
//
// # Optional capabilities
//
// Beyond the core Env contract, an environment may implement optional
// capability interfaces. Callers never type-assert for these individually;
// they call Capabilities(env) once and branch on the returned Caps:
//
//	capability       interface        realnet                       netsim
//	----------       ---------        -------                       ------
//	bounded queues   QueueEnv         chan-backed queue             vclock BoundedQueue (proc-blocking)
//	reuse-port       UDPReuseEnv      SO_REUSEPORT, shared-fd       deterministic fan-out shim
//	                                  fallback
//	cooperative      CooperativeEnv   false — OS goroutines,        true — coroutines on the virtual
//	scheduling                        blocking allowed              clock; OS blocking deadlocks
//	batch I/O        BatchEnv +       native: recvmmsg/sendmmsg     native: event-free drain of the
//	                 BatchConn        on Linux, read loop           delivery queue
//	                                  elsewhere
//
// Every capability has a portable fallback, so absence never means "cannot":
// no QueueEnv falls back to NewChanQueue, no UDPReuseEnv means single-socket
// ingest, no BatchConn is bridged by AsBatch's per-datagram loop. What the
// capabilities buy is performance (batch I/O, kernel flow steering) or
// correctness under a specific scheduler (vclock queues in netsim).
package netapi

import (
	"errors"
	"net/netip"
	"time"
)

// Blocking-call timeouts. A negative timeout blocks indefinitely; zero polls.
const NoTimeout time.Duration = -1

// Errors returned by Env endpoints. Implementations wrap or return these
// directly so callers can match with errors.Is.
var (
	ErrTimeout   = errors.New("netapi: i/o timeout")
	ErrClosed    = errors.New("netapi: endpoint closed")
	ErrRefused   = errors.New("netapi: connection refused")
	ErrNoRoute   = errors.New("netapi: no route to host")
	ErrAddrInUse = errors.New("netapi: address in use")
)

// Env is the execution environment: virtual or real time plus socket
// factories. Addresses on an Env are IPv4/IPv6 netip addresses; the simulator
// assigns them explicitly while realnet uses whatever the host OS provides.
type Env interface {
	// Now returns monotonic time as an offset from an arbitrary epoch.
	Now() time.Duration
	// Sleep blocks the calling proc/goroutine for d.
	Sleep(d time.Duration)
	// Go runs fn concurrently. The name is used in diagnostics only.
	Go(name string, fn func())
	// ListenUDP binds a datagram endpoint. A zero port picks an ephemeral
	// port; on the simulator the address must belong to the calling host.
	ListenUDP(addr netip.AddrPort) (UDPConn, error)
	// DialTCP opens a stream connection to raddr.
	DialTCP(raddr netip.AddrPort) (Conn, error)
	// ListenTCP binds a stream listener.
	ListenTCP(addr netip.AddrPort) (Listener, error)
}

// Queue is a bounded FIFO mailbox whose Get blocks the calling proc in an
// env-appropriate way. Under the simulator, procs may only block through
// vclock primitives — a Go channel receive inside a netsim proc deadlocks the
// scheduler — so any component that needs an inter-proc queue (the engine's
// per-shard ingress queues) must obtain one from the Env instead of using
// channels directly.
type Queue interface {
	// Put appends v, waking one blocked Get. Reports false when the queue
	// is full (tail drop / drop-newest) or closed.
	Put(v any) bool
	// PutEvict appends v; when full it evicts the oldest buffered item
	// instead of dropping v (drop-oldest). Reports the evicted item. On a
	// closed queue nothing can be buffered, so v itself is reported as
	// evicted — ownership returns to the caller, which can distinguish
	// rejection from a normal eviction by identity (evicted == v). The
	// pre-close behavior of silently discarding v lost track of pooled
	// items and let callers double-count accepted work during shutdown.
	PutEvict(v any) (evicted any, didEvict bool)
	// Get removes the oldest item, blocking per netapi timeout rules
	// (NoTimeout blocks; zero polls; ErrTimeout/ErrClosed on failure).
	Get(timeout time.Duration) (any, error)
	// Len reports the number of buffered items.
	Len() int
	Close()
}

// QueueEnv is an optional Env capability: construction of scheduler-aware
// bounded queues. Both realnet and netsim implement it; code that requires it
// type-asserts and may fall back to direct dispatch when absent.
type QueueEnv interface {
	NewQueue(capacity int) Queue
}

// CooperativeEnv is an optional Env capability describing the scheduling
// discipline. CooperativeScheduling reports true when procs are cooperative
// coroutines on a shared virtual clock (netsim): such a proc must never
// block through OS-level primitives (channel receives, WaitGroup waits) —
// doing so wedges the scheduler goroutine and deadlocks the whole
// simulation. Components that would otherwise join their workers on
// shutdown (engine.Close) consult this and fall back to the scheduler's own
// drain semantics. An Env that does not implement the interface is treated
// as preemptive (real goroutines, OS blocking allowed).
type CooperativeEnv interface {
	CooperativeScheduling() bool
}

// UDPReuseEnv is an optional Env capability: bind n datagram endpoints to the
// same address so one reader can run per engine shard. realnet implements it
// with SO_REUSEPORT where available (fallback: one socket shared by n
// handles — concurrent ReadFrom on a UDP socket is safe); netsim implements a
// fan-out shim over the host's single receive queue. All returned conns
// report the same LocalAddr; closing each handle once releases the binding.
type UDPReuseEnv interface {
	ListenUDPReuse(addr netip.AddrPort, n int) ([]UDPConn, error)
}

// FlowStableConn is an optional UDPConn capability: it reports whether every
// datagram of one flow is delivered to this same conn for the conn's
// lifetime. Kernel SO_REUSEPORT steering qualifies — the 4-tuple hash pins a
// flow to one socket of the group (realnet marks those conns true). A single
// socket read through several refcounted handles, or a userspace fan-out
// over one receive queue (netsim's reuse shim), does not: any handle can
// observe any flow. Shard-affine ingest (engine.IngestAuto) engages only on
// conns that report true; a conn that does not implement the interface is
// treated as not flow-stable.
type FlowStableConn interface {
	FlowStable() bool
}

// UDPConn is a datagram endpoint.
type UDPConn interface {
	// ReadFrom blocks until a datagram arrives, the timeout elapses
	// (ErrTimeout), or the endpoint is closed (ErrClosed). The returned
	// slice is owned by the caller.
	ReadFrom(timeout time.Duration) ([]byte, netip.AddrPort, error)
	// WriteTo sends one datagram to to. Delivery is best-effort.
	WriteTo(b []byte, to netip.AddrPort) error
	LocalAddr() netip.AddrPort
	Close() error
}

// Conn is a byte-stream connection.
type Conn interface {
	// Read fills b with available bytes, blocking until at least one byte
	// arrives, the timeout elapses, or the peer closes (ErrClosed on a
	// clean close after all data is drained).
	Read(b []byte, timeout time.Duration) (int, error)
	// Write queues b for delivery to the peer.
	Write(b []byte) (int, error)
	Close() error
	LocalAddr() netip.AddrPort
	RemoteAddr() netip.AddrPort
}

// Listener accepts inbound stream connections.
type Listener interface {
	// Accept blocks until a connection is established, the timeout
	// elapses, or the listener is closed.
	Accept(timeout time.Duration) (Conn, error)
	Addr() netip.AddrPort
	Close() error
}
