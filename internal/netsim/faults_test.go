package netsim

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"dnsguard/internal/netapi"
	"dnsguard/internal/vclock"
)

// faultPair is a two-host network with b draining a socket on :53, recording
// arrival order (first payload byte), virtual arrival times, and payloads.
type faultPair struct {
	sched *vclock.Scheduler
	net   *Network
	a, b  *Host

	order []byte
	times []time.Duration
	raw   [][]byte
}

func newFaultPair(t *testing.T, seed int64, lat time.Duration) *faultPair {
	t.Helper()
	s := vclock.New(seed)
	n := New(s, lat)
	fp := &faultPair{sched: s, net: n}
	fp.a = n.AddHost("a", addr("10.0.0.1"))
	fp.b = n.AddHost("b", addr("10.0.0.2"))

	conn, err := fp.b.ListenUDP(ap("10.0.0.2:53"))
	if err != nil {
		t.Fatal(err)
	}
	s.Go("drain", func() {
		for {
			p, _, err := conn.ReadFrom(10 * time.Second)
			if err == netapi.ErrTimeout {
				continue // an outage may outlast the poll interval
			}
			if err != nil {
				return
			}
			fp.order = append(fp.order, p[0])
			fp.times = append(fp.times, s.Now())
			fp.raw = append(fp.raw, p)
		}
	})
	return fp
}

// blast sends count datagrams of the given size, seq byte in [0,count),
// spaced gap apart, then runs the simulation to completion.
func (fp *faultPair) blast(t *testing.T, count int, gap time.Duration, size int) {
	t.Helper()
	fp.sched.Go("blast", func() {
		conn, err := fp.a.ListenUDP(netip.AddrPortFrom(fp.a.Addr(), 0))
		if err != nil {
			t.Errorf("ListenUDP: %v", err)
			return
		}
		for i := 0; i < count; i++ {
			payload := make([]byte, size)
			payload[0] = byte(i)
			if err := conn.WriteTo(payload, ap("10.0.0.2:53")); err != nil {
				t.Errorf("WriteTo: %v", err)
				return
			}
			fp.sched.Sleep(gap)
		}
	})
	fp.sched.Run(fp.sched.Now() + time.Minute)
}

func TestFaultsZeroValueIsTransparent(t *testing.T) {
	// Same seed, with and without an all-zero Faults policy installed: the
	// delivery schedule must be identical (no extra RNG draws).
	run := func(install bool) ([]byte, []time.Duration) {
		fp := newFaultPair(t, 99, 3*time.Millisecond)
		if install {
			fp.net.SetLinkFaults(fp.a, fp.b, Faults{})
			fp.net.SetDefaultFaults(Faults{})
		}
		fp.blast(t, 20, time.Millisecond, 8)
		return fp.order, fp.times
	}
	o1, t1 := run(false)
	o2, t2 := run(true)
	if !bytes.Equal(o1, o2) {
		t.Fatalf("order diverged: %v vs %v", o1, o2)
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("time[%d] diverged: %v vs %v", i, t1[i], t2[i])
		}
	}
	if len(o1) != 20 {
		t.Fatalf("delivered %d of 20 with no faults", len(o1))
	}
}

func TestFaultLoss(t *testing.T) {
	fp := newFaultPair(t, 1, time.Millisecond)
	fp.net.SetFaults(fp.a, fp.b, Faults{Loss: 0.5})
	fp.blast(t, 400, 100*time.Microsecond, 8)
	ls := fp.net.LinkStats(fp.a, fp.b)
	if ls.Sent != 400 {
		t.Fatalf("Sent = %d, want 400", ls.Sent)
	}
	if ls.Lost < 120 || ls.Lost > 280 {
		t.Fatalf("Lost = %d at 50%% loss over 400, far from expectation", ls.Lost)
	}
	if uint64(len(fp.order))+ls.Lost != 400 {
		t.Fatalf("delivered %d + lost %d != 400", len(fp.order), ls.Lost)
	}
	if fp.net.Stats.Lost != ls.Lost {
		t.Fatalf("NetStats.Lost = %d, link = %d", fp.net.Stats.Lost, ls.Lost)
	}
}

func TestFaultLossComposesWithSetLoss(t *testing.T) {
	// Legacy SetLoss and Faults.Loss are independent drop stages, so the
	// effective delivery rate is their product (~25% here).
	fp := newFaultPair(t, 2, time.Millisecond)
	fp.net.SetLoss(fp.a, fp.b, 0.5)
	fp.net.SetFaults(fp.a, fp.b, Faults{Loss: 0.5})
	fp.blast(t, 400, 100*time.Microsecond, 8)
	if got := len(fp.order); got < 50 || got > 150 {
		t.Fatalf("delivered %d of 400 at compound 75%% loss", got)
	}
}

func TestFaultReorderObservable(t *testing.T) {
	fp := newFaultPair(t, 3, time.Millisecond)
	fp.net.SetFaults(fp.a, fp.b, Faults{Reorder: 0.3, ReorderDelay: 5 * time.Millisecond})
	fp.blast(t, 100, 200*time.Microsecond, 8)
	if len(fp.order) != 100 {
		t.Fatalf("delivered %d of 100 (reorder must not lose)", len(fp.order))
	}
	inversions := 0
	for i := 1; i < len(fp.order); i++ {
		if fp.order[i] < fp.order[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("no inversions observed at 30% reorder")
	}
	ls := fp.net.LinkStats(fp.a, fp.b)
	if ls.Reordered == 0 || fp.net.Stats.Reordered != ls.Reordered {
		t.Fatalf("Reordered counters: link %d net %d", ls.Reordered, fp.net.Stats.Reordered)
	}
}

func TestFaultDuplicate(t *testing.T) {
	fp := newFaultPair(t, 4, time.Millisecond)
	fp.net.SetFaults(fp.a, fp.b, Faults{Duplicate: 0.5})
	fp.blast(t, 100, time.Millisecond, 8)
	ls := fp.net.LinkStats(fp.a, fp.b)
	if ls.Duplicated == 0 {
		t.Fatal("no duplicates at 50%")
	}
	if got, want := uint64(len(fp.order)), 100+ls.Duplicated; got != want {
		t.Fatalf("delivered %d, want 100 + %d dups", got, ls.Duplicated)
	}
	// Each duplicated seq appears exactly twice, and the two copies must
	// not share a backing array.
	seen := map[byte][]int{}
	for i, b := range fp.order {
		seen[b] = append(seen[b], i)
	}
	dups := 0
	for _, idx := range seen {
		switch len(idx) {
		case 1:
		case 2:
			dups++
			if &fp.raw[idx[0]][0] == &fp.raw[idx[1]][0] {
				t.Fatal("duplicate aliases the original buffer")
			}
		default:
			t.Fatalf("a seq arrived %d times", len(idx))
		}
	}
	if uint64(dups) != ls.Duplicated {
		t.Fatalf("%d seqs doubled, counter says %d", dups, ls.Duplicated)
	}
}

func TestFaultCorruptUDP(t *testing.T) {
	fp := newFaultPair(t, 5, time.Millisecond)
	fp.net.SetFaults(fp.a, fp.b, Faults{Corrupt: 0.5})
	fp.blast(t, 200, 100*time.Microsecond, 32)
	if len(fp.order) != 200 {
		t.Fatalf("delivered %d of 200 (UDP corruption must not drop)", len(fp.order))
	}
	ls := fp.net.LinkStats(fp.a, fp.b)
	if ls.Corrupted < 50 || ls.Corrupted > 150 {
		t.Fatalf("Corrupted = %d at 50%% over 200", ls.Corrupted)
	}
	damaged := 0
	for _, p := range fp.raw {
		for _, b := range p[1:] { // byte 0 is the seq, may legitimately vary
			if b != 0 {
				damaged++
				break
			}
		}
	}
	if damaged == 0 {
		t.Fatal("no payload actually damaged")
	}
}

func TestFaultJitterBounds(t *testing.T) {
	const lat, jit = 2 * time.Millisecond, 4 * time.Millisecond
	fp := newFaultPair(t, 6, lat)
	fp.net.SetFaults(fp.a, fp.b, Faults{Jitter: jit})
	fp.blast(t, 50, 10*time.Millisecond, 8)
	if len(fp.times) != 50 {
		t.Fatalf("delivered %d of 50", len(fp.times))
	}
	sawJitter := false
	for i, at := range fp.times {
		sent := time.Duration(i) * 10 * time.Millisecond
		d := at - sent
		if d < lat || d >= lat+jit {
			t.Fatalf("datagram %d delay %v outside [%v, %v)", i, d, lat, lat+jit)
		}
		if d > lat {
			sawJitter = true
		}
	}
	if !sawJitter {
		t.Fatal("jitter never added delay")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	fp := newFaultPair(t, 7, time.Millisecond)
	fp.net.Partition(fp.a, fp.b)
	if !fp.net.Partitioned(fp.a, fp.b) || !fp.net.Partitioned(fp.b, fp.a) {
		t.Fatal("partition not symmetric")
	}
	fp.blast(t, 10, time.Millisecond, 8)
	if len(fp.order) != 0 {
		t.Fatalf("delivered %d across a partition", len(fp.order))
	}
	ls := fp.net.LinkStats(fp.a, fp.b)
	if ls.PartitionDrops != 10 || fp.net.Stats.PartitionDrops != 10 {
		t.Fatalf("PartitionDrops link=%d net=%d, want 10", ls.PartitionDrops, fp.net.Stats.PartitionDrops)
	}

	fp.net.Heal(fp.a, fp.b)
	fp.order = nil
	fp.blast(t, 10, time.Millisecond, 8)
	if len(fp.order) != 10 {
		t.Fatalf("delivered %d of 10 after heal", len(fp.order))
	}
}

func TestPartitionForSchedules(t *testing.T) {
	// Outage from t=5ms to t=15ms; datagrams sent every 1ms for 30ms with
	// zero link latency, so arrival time == send time.
	fp := newFaultPair(t, 8, 0)
	fp.net.PartitionFor(fp.a, fp.b, 5*time.Millisecond, 10*time.Millisecond)
	fp.blast(t, 30, time.Millisecond, 8)
	for i, at := range fp.times {
		if at >= 5*time.Millisecond && at < 15*time.Millisecond {
			t.Fatalf("arrival %d at %v inside the scheduled outage", i, at)
		}
	}
	ls := fp.net.LinkStats(fp.a, fp.b)
	if ls.PartitionDrops == 0 {
		t.Fatal("scheduled partition dropped nothing")
	}
	if got := uint64(len(fp.order)) + ls.PartitionDrops; got != 30 {
		t.Fatalf("delivered+dropped = %d, want 30", got)
	}
}

func TestFaultsDeterministicReplay(t *testing.T) {
	run := func() (order []byte, ls LinkStats) {
		fp := newFaultPair(t, 42, time.Millisecond)
		fp.net.SetFaults(fp.a, fp.b, Faults{
			Loss: 0.1, Duplicate: 0.1, Reorder: 0.2,
			Corrupt: 0.05, Jitter: 2 * time.Millisecond,
		})
		fp.blast(t, 200, 300*time.Microsecond, 16)
		return fp.order, fp.net.LinkStats(fp.a, fp.b)
	}
	o1, s1 := run()
	o2, s2 := run()
	if !bytes.Equal(o1, o2) {
		t.Fatal("arrival order diverged between identical seeded runs")
	}
	if s1 != s2 {
		t.Fatalf("LinkStats diverged: %+v vs %+v", s1, s2)
	}
	if s1.Lost == 0 || s1.Duplicated == 0 || s1.Reordered == 0 || s1.Corrupted == 0 {
		t.Fatalf("expected every fault class to fire: %+v", s1)
	}
}

func TestFaultCorruptDropsStructuredPayloads(t *testing.T) {
	// Non-UDP transport payloads cannot be bit-flipped meaningfully; the
	// model treats corruption as a checksum-failed drop, which is what TCP
	// sees after a link-layer CRC failure.
	s := vclock.New(9)
	n := New(s, time.Millisecond)
	a := n.AddHost("a", addr("10.0.0.1"))
	b := n.AddHost("b", addr("10.0.0.2"))
	n.SetFaults(a, b, Faults{Corrupt: 1.0})

	got := 0
	b.HandleProto(ProtoTCP, func(src, dst netip.AddrPort, payload any) { got++ })
	s.Go("send", func() {
		for i := 0; i < 20; i++ {
			_ = a.SendProto(ProtoTCP, ap("10.0.0.1:1"), ap("10.0.0.2:2"), &struct{ n int }{i})
			s.Sleep(time.Millisecond)
		}
	})
	s.Run(time.Minute)
	if got != 0 {
		t.Fatalf("%d corrupted TCP segments delivered, want 0", got)
	}
	ls := n.LinkStats(a, b)
	if ls.Corrupted != 20 {
		t.Fatalf("Corrupted = %d, want 20", ls.Corrupted)
	}
}

func TestDefaultFaultsAndOverride(t *testing.T) {
	// A per-link policy overrides the default entirely.
	s := vclock.New(10)
	n := New(s, time.Millisecond)
	a := n.AddHost("a", addr("10.0.0.1"))
	b := n.AddHost("b", addr("10.0.0.2"))
	c := n.AddHost("c", addr("10.0.0.3"))
	n.SetDefaultFaults(Faults{Loss: 1.0})
	n.SetFaults(a, b, Faults{}) // clean override

	gotB, gotC := 0, 0
	connB, err := b.ListenUDP(ap("10.0.0.2:53"))
	if err != nil {
		t.Fatal(err)
	}
	connC, err := c.ListenUDP(ap("10.0.0.3:53"))
	if err != nil {
		t.Fatal(err)
	}
	s.Go("drainB", func() {
		for {
			if _, _, err := connB.ReadFrom(time.Second); err != nil {
				return
			}
			gotB++
		}
	})
	s.Go("drainC", func() {
		for {
			if _, _, err := connC.ReadFrom(time.Second); err != nil {
				return
			}
			gotC++
		}
	})
	s.Go("send", func() {
		conn, err := a.ListenUDP(netip.AddrPortFrom(a.Addr(), 0))
		if err != nil {
			t.Errorf("ListenUDP: %v", err)
			return
		}
		for i := 0; i < 10; i++ {
			_ = conn.WriteTo([]byte{1}, ap("10.0.0.2:53"))
			_ = conn.WriteTo([]byte{1}, ap("10.0.0.3:53"))
			s.Sleep(time.Millisecond)
		}
	})
	s.Run(time.Minute)
	if gotB != 10 {
		t.Fatalf("override link delivered %d of 10", gotB)
	}
	if gotC != 0 {
		t.Fatalf("default-faulted link delivered %d, want 0", gotC)
	}
}
