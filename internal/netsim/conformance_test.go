package netsim_test

import (
	"net/netip"
	"testing"
	"time"

	"dnsguard/internal/netapi"
	"dnsguard/internal/netapi/netapitest"
	"dnsguard/internal/netsim"
	"dnsguard/internal/vclock"
)

// TestConformance runs the cross-backend netapi conformance suite against
// the simulator. Each check executes inside a scheduler proc on a fresh
// single-host network (blocking netapi calls are only legal on procs), and
// the scheduler is run until the check completes.
func TestConformance(t *testing.T) {
	netapitest.Run(t, netapitest.Backend{
		Name: "netsim",
		Addr: netip.MustParseAddr("10.9.0.1"),
		Run: func(t *testing.T, fn func(env netapi.Env)) {
			sched := vclock.New(1)
			network := netsim.New(sched, time.Millisecond)
			host := network.AddHost("conformance", netip.MustParseAddr("10.9.0.1"))
			done := false
			sched.Go("conformance", func() {
				fn(host)
				done = true
			})
			sched.Run(time.Hour)
			if !done {
				t.Error("conformance check never completed; a proc is parked with no wakeup")
			}
		},
	})
}
