package netsim

import (
	"time"

	"dnsguard/internal/vclock"
)

// CPU models a single serialized processor shared by all procs on a host.
// Work reserves the next available slot on the CPU's timeline and sleeps the
// calling proc until that work completes, so concurrent procs (e.g. many TCP
// proxy connections) correctly contend for one processor. Busy time is
// accumulated for utilization measurements.
type CPU struct {
	sched     *vclock.Scheduler
	busyUntil time.Duration
	prioUntil time.Duration
	busy      time.Duration
}

func newCPU(s *vclock.Scheduler) *CPU { return &CPU{sched: s} }

// Work charges d of CPU time and blocks the calling proc until the work
// completes (including any queueing behind earlier work).
func (c *CPU) Work(d time.Duration) {
	if d <= 0 {
		return
	}
	now := c.sched.Now()
	start := now
	if c.busyUntil > start {
		start = c.busyUntil
	}
	c.busyUntil = start + d
	c.busy += d
	c.sched.Sleep(c.busyUntil - now)
}

// WorkPreempt charges d of CPU time at interrupt priority: the packet
// datapath (the guard's capture loops) runs in softirq context on the
// paper's Linux testbed and preempts userspace work. Priority work
// serializes only against other priority work — its throughput is bounded
// by its own cost — while every charged instant is also stolen from the
// normal Work timeline, so ordinary jobs (e.g. the TCP proxy) get exactly
// the leftover CPU.
func (c *CPU) WorkPreempt(d time.Duration) {
	if d <= 0 {
		return
	}
	now := c.sched.Now()
	start := now
	if c.prioUntil > start {
		start = c.prioUntil
	}
	c.prioUntil = start + d
	c.busy += d
	// Steal the same amount from the normal timeline.
	if c.busyUntil < now {
		c.busyUntil = now
	}
	c.busyUntil += d
	c.sched.Sleep(c.prioUntil - now)
}

// TryWork behaves like Work but refuses (returning false, charging nothing)
// when the CPU's backlog already exceeds maxBacklog — modelling a bounded
// service queue with tail drop.
func (c *CPU) TryWork(d, maxBacklog time.Duration) bool {
	if backlog := c.busyUntil - c.sched.Now(); backlog > maxBacklog {
		return false
	}
	c.Work(d)
	return true
}

// Account charges d of CPU time without blocking the caller. It is used on
// fast paths where the caller immediately continues (the queueing effect is
// modelled by the socket queue instead).
func (c *CPU) Account(d time.Duration) {
	if d <= 0 {
		return
	}
	now := c.sched.Now()
	start := now
	if c.busyUntil > start {
		start = c.busyUntil
	}
	c.busyUntil = start + d
	c.busy += d
}

// BusyTime returns the total CPU time consumed so far.
func (c *CPU) BusyTime() time.Duration { return c.busy }

// Backlog returns how far the CPU timeline extends past the current instant.
func (c *CPU) Backlog() time.Duration {
	b := c.busyUntil - c.sched.Now()
	if b < 0 {
		return 0
	}
	return b
}

// UtilizationMeter samples a CPU's busy time over an interval.
type UtilizationMeter struct {
	cpu       *CPU
	lastBusy  time.Duration
	lastStamp time.Duration
}

// NewUtilizationMeter starts measuring cpu from the current instant.
func NewUtilizationMeter(cpu *CPU) *UtilizationMeter {
	return &UtilizationMeter{cpu: cpu, lastBusy: cpu.busy, lastStamp: cpu.sched.Now()}
}

// Sample returns the fraction of time the CPU was busy since the previous
// Sample (or since construction) and resets the window. The result is capped
// at 1.0.
func (m *UtilizationMeter) Sample() float64 {
	now := m.cpu.sched.Now()
	dt := now - m.lastStamp
	db := m.cpu.busy - m.lastBusy
	m.lastStamp, m.lastBusy = now, m.cpu.busy
	if dt <= 0 {
		return 0
	}
	u := float64(db) / float64(dt)
	if u > 1 {
		u = 1
	}
	return u
}
