// Package netsim is a deterministic discrete-event network simulator built on
// internal/vclock. It models hosts with IPv4/IPv6 addresses, point-to-point
// latency, probabilistic loss, bounded receive queues (tail drop), serialized
// per-host CPUs, and transparent middleboxes that claim address space —
// exactly the facilities the DNS Guard paper's testbed provides in hardware.
//
// Each Host implements netapi.Env, so servers, resolvers, and guards written
// against that interface run inside the simulation unmodified. Source-address
// spoofing (required to reproduce the paper's attacks) is available through
// Host.SendRaw, which injects a datagram with an arbitrary source address.
package netsim

import (
	"fmt"
	"net/netip"
	"sync"
	"time"

	"dnsguard/internal/metrics"
	"dnsguard/internal/netapi"
	"dnsguard/internal/vclock"
)

// Protocol numbers used on the simulated wire.
const (
	ProtoTCP uint8 = 6
	ProtoUDP uint8 = 17
)

// DefaultQueueCap bounds a socket or tap receive queue unless overridden.
// Overflowing datagrams are tail-dropped, like a kernel socket buffer.
const DefaultQueueCap = 512

// Network is a set of hosts connected by configurable links, all sharing one
// virtual clock.
type Network struct {
	sched      *vclock.Scheduler
	hosts      []*Host
	native     map[netip.Addr]*Host
	claims     []claim
	defLatency time.Duration
	latency    map[hostPair]time.Duration
	loss       map[hostPair]float64
	defLoss    float64
	faults     map[hostPair]Faults
	defFaults  Faults
	parts      map[hostPair]bool
	linkStats  map[hostPair]*LinkStats

	// Stats counts network-wide events.
	Stats NetStats
}

type claim struct {
	prefix netip.Prefix
	host   *Host
}

type hostPair struct{ a, b *Host }

// NetStats aggregates network-level counters.
type NetStats struct {
	Sent           uint64 // datagrams/segments submitted
	Delivered      uint64 // handed to a socket, tap, or protocol handler
	Lost           uint64 // dropped by link loss (SetLoss or Faults.Loss)
	NoRoute        uint64 // no host owns the destination address
	NoSocket       uint64 // host had no matching socket/tap/handler
	Duplicated     uint64 // extra copies injected by Faults.Duplicate
	Reordered      uint64 // datagrams delayed past later traffic
	Corrupted      uint64 // payloads bit-flipped (UDP) or CRC-dropped
	PartitionDrops uint64 // dropped on a partitioned link
}

// MetricsInto registers network-wide counters as netsim_* series. The
// simulator is cooperatively scheduled (one real goroutine at a time), so
// plain reads are safe; snapshot between vclock runs, not during one.
func (n *Network) MetricsInto(r *metrics.Registry) {
	metrics.RegisterUint64Fields(r, "netsim_", &n.Stats)
}

// LinkMetricsInto registers the a→b direction's LinkStats under prefix
// (e.g. "netsim_link_client_guard_"): <prefix>sent, <prefix>lost,
// <prefix>duplicated, <prefix>reordered, <prefix>corrupted,
// <prefix>partition_drops.
func (n *Network) LinkMetricsInto(r *metrics.Registry, a, b *Host, prefix string) {
	metrics.RegisterUint64Fields(r, prefix, n.linkStatsFor(a, b))
}

// New creates an empty network on sched with a default one-way link latency.
func New(sched *vclock.Scheduler, defaultOneWayLatency time.Duration) *Network {
	return &Network{
		sched:      sched,
		native:     make(map[netip.Addr]*Host),
		latency:    make(map[hostPair]time.Duration),
		loss:       make(map[hostPair]float64),
		faults:     make(map[hostPair]Faults),
		parts:      make(map[hostPair]bool),
		linkStats:  make(map[hostPair]*LinkStats),
		defLatency: defaultOneWayLatency,
	}
}

// Scheduler returns the virtual-time scheduler driving this network.
func (n *Network) Scheduler() *vclock.Scheduler { return n.sched }

// AddHost creates a host owning the given addresses.
func (n *Network) AddHost(name string, ips ...netip.Addr) *Host {
	h := &Host{
		net:      n,
		name:     name,
		ips:      append([]netip.Addr(nil), ips...),
		udp:      make(map[netip.AddrPort]*UDPConn),
		ports:    make(map[uint16]int),
		protos:   make(map[uint8]ProtoHandler),
		nextPort: 49152,
		queueCap: DefaultQueueCap,
		cpu:      newCPU(n.sched),
	}
	for _, ip := range ips {
		if other, ok := n.native[ip]; ok {
			panic(fmt.Sprintf("netsim: address %v already owned by %s", ip, other.name))
		}
		n.native[ip] = h
	}
	n.hosts = append(n.hosts, h)
	return h
}

// SetLatency sets the symmetric one-way latency between two hosts.
func (n *Network) SetLatency(a, b *Host, oneWay time.Duration) {
	n.latency[hostPair{a, b}] = oneWay
	n.latency[hostPair{b, a}] = oneWay
}

// SetLoss sets the directional loss probability for datagrams from a to b.
func (n *Network) SetLoss(a, b *Host, rate float64) {
	n.loss[hostPair{a, b}] = rate
}

// SetDefaultLoss sets the loss probability applied to links without an
// explicit override.
func (n *Network) SetDefaultLoss(rate float64) { n.defLoss = rate }

func (n *Network) latencyBetween(a, b *Host) time.Duration {
	if a == b {
		return 0
	}
	if d, ok := n.latency[hostPair{a, b}]; ok {
		return d
	}
	return n.defLatency
}

func (n *Network) lossBetween(a, b *Host) float64 {
	if r, ok := n.loss[hostPair{a, b}]; ok {
		return r
	}
	return n.defLoss
}

// ownerOf resolves the host that receives traffic for addr: explicit claims
// (longest prefix first; later claims win ties, the way a replacement box
// takes over an address) take precedence over native ownership, which is
// how a guard middlebox transparently captures its ANS's address space.
func (n *Network) ownerOf(addr netip.Addr) *Host {
	var best *Host
	bestBits := -1
	for _, c := range n.claims {
		if c.prefix.Contains(addr) && c.prefix.Bits() >= bestBits {
			best, bestBits = c.host, c.prefix.Bits()
		}
	}
	if best != nil {
		return best
	}
	return n.native[addr]
}

// Packet is a raw datagram as seen by taps and protocol handlers.
type Packet struct {
	Src     netip.AddrPort
	Dst     netip.AddrPort
	Payload []byte
}

// ProtoHandler receives non-UDP transport payloads (e.g. simulated TCP
// segments) addressed to a host. Handlers run as event callbacks and must not
// block; hand off to a queue for real work.
type ProtoHandler func(src, dst netip.AddrPort, payload any)

// send routes one transport payload from srcHost. UDP payloads must be
// []byte. bypassGateway is set for re-injected traffic so middleboxes do not
// loop. directTo, when non-nil, skips routing and delivers to that host.
func (n *Network) send(proto uint8, srcHost *Host, src, dst netip.AddrPort, payload any, bypassGateway bool, directTo *Host) error {
	n.Stats.Sent++
	target := directTo
	if target == nil {
		if gw := srcHost.gateway; gw != nil && !bypassGateway && gw != srcHost {
			target = gw
		} else {
			target = n.ownerOf(dst.Addr())
		}
	}
	if target == nil {
		n.Stats.NoRoute++
		return fmt.Errorf("netsim: send %v->%v: %w", src, dst, netapi.ErrNoRoute)
	}
	payload, extra, dupDelay, deliver := n.applyFaults(proto, srcHost, target, payload)
	if !deliver {
		recyclePayload(payload)
		return nil // silently lost, like the real network
	}
	lat := n.latencyBetween(srcHost, target)
	n.sched.After(lat+extra, func() { target.deliver(proto, src, dst, payload) })
	if dupDelay > 0 {
		dup := dupPayload(payload)
		n.sched.After(lat+dupDelay, func() { target.deliver(proto, src, dst, dup) })
	}
	return nil
}

// Host is a simulated machine. It implements netapi.Env.
type Host struct {
	net      *Network
	name     string
	ips      []netip.Addr
	udp      map[netip.AddrPort]*UDPConn
	ports    map[uint16]int // bound-port refcounts (O(1) ephemeral allocation)
	tap      *Tap
	protos   map[uint8]ProtoHandler
	gateway  *Host
	tcp      TCPProvider
	nextPort uint16
	queueCap int
	cpu      *CPU

	// Stats counts host-level events.
	Stats HostStats
}

// HostStats aggregates per-host counters.
type HostStats struct {
	UDPSent     uint64
	UDPReceived uint64
	RecvDropped uint64 // receive queue overflow (tail drop)
	NoSocket    uint64
}

var _ netapi.Env = (*Host)(nil)

// Name returns the diagnostic name given to AddHost.
func (h *Host) Name() string { return h.name }

// Addr returns the host's primary address.
func (h *Host) Addr() netip.Addr {
	if len(h.ips) == 0 {
		return netip.Addr{}
	}
	return h.ips[0]
}

// Network returns the network this host belongs to.
func (h *Host) Network() *Network { return h.net }

// CPU returns the host's serialized virtual CPU.
func (h *Host) CPU() *CPU { return h.cpu }

// SetQueueCap overrides the receive-queue bound used by subsequently created
// sockets and taps.
func (h *Host) SetQueueCap(c int) { h.queueCap = c }

// SetGateway routes every datagram this host originates through gw's tap,
// modelling an on-path middlebox (the paper's local DNS guard). Traffic the
// gateway re-injects must use SendRaw or InjectTo to avoid looping.
func (h *Host) SetGateway(gw *Host) { h.gateway = gw }

// ClaimPrefix directs all traffic addressed within p to this host, taking
// precedence over native owners. This is how the remote DNS guard intercepts
// traffic for its ANS's address and for the cookie subnet.
func (h *Host) ClaimPrefix(p netip.Prefix) {
	h.net.claims = append(h.net.claims, claim{prefix: p, host: h})
}

// ClaimAddr is ClaimPrefix for a single address.
func (h *Host) ClaimAddr(a netip.Addr) {
	h.ClaimPrefix(netip.PrefixFrom(a, a.BitLen()))
}

// Now implements netapi.Env.
func (h *Host) Now() time.Duration { return h.net.sched.Now() }

// Sleep implements netapi.Env.
func (h *Host) Sleep(d time.Duration) { h.net.sched.Sleep(d) }

// Go implements netapi.Env.
func (h *Host) Go(name string, fn func()) {
	h.net.sched.Go(h.name+"/"+name, fn)
}

// CooperativeScheduling implements netapi.CooperativeEnv: simulated procs
// are coroutines on the virtual clock and must not block through OS
// primitives (see netapi.CooperativeEnv).
func (h *Host) CooperativeScheduling() bool { return true }

func (h *Host) ownsAddr(a netip.Addr) bool {
	for _, ip := range h.ips {
		if ip == a {
			return true
		}
	}
	return false
}

func (h *Host) allocPort() uint16 {
	for {
		p := h.nextPort
		h.nextPort++
		if h.nextPort == 0 {
			h.nextPort = 49152
		}
		if h.ports[p] == 0 {
			return p
		}
	}
}

// ListenUDP implements netapi.Env. The address must be one of the host's own
// addresses (use a Tap to receive for claimed prefixes).
func (h *Host) ListenUDP(addr netip.AddrPort) (netapi.UDPConn, error) {
	a := addr.Addr()
	if !a.IsValid() || a.IsUnspecified() {
		a = h.Addr()
	}
	if !h.ownsAddr(a) {
		return nil, fmt.Errorf("netsim: %s does not own %v: %w", h.name, a, netapi.ErrNoRoute)
	}
	port := addr.Port()
	if port == 0 {
		port = h.allocPort()
	}
	ap := netip.AddrPortFrom(a, port)
	if _, ok := h.udp[ap]; ok {
		return nil, fmt.Errorf("netsim: %v: %w", ap, netapi.ErrAddrInUse)
	}
	c := &UDPConn{
		host:  h,
		local: ap,
		q:     vclock.NewBoundedQueue[Packet](h.net.sched, h.queueCap),
	}
	h.udp[ap] = c
	h.ports[port]++
	return c, nil
}

// DialTCP implements netapi.Env, delegating to the installed TCPProvider.
func (h *Host) DialTCP(raddr netip.AddrPort) (netapi.Conn, error) {
	if h.tcp == nil {
		return nil, fmt.Errorf("netsim: %s has no TCP stack: %w", h.name, netapi.ErrNoRoute)
	}
	return h.tcp.Dial(h, raddr)
}

// ListenTCP implements netapi.Env, delegating to the installed TCPProvider.
func (h *Host) ListenTCP(addr netip.AddrPort) (netapi.Listener, error) {
	if h.tcp == nil {
		return nil, fmt.Errorf("netsim: %s has no TCP stack: %w", h.name, netapi.ErrNoRoute)
	}
	return h.tcp.Listen(h, addr)
}

// TCPProvider supplies a stream transport for a host; see internal/tcpsim.
type TCPProvider interface {
	Dial(h *Host, raddr netip.AddrPort) (netapi.Conn, error)
	Listen(h *Host, laddr netip.AddrPort) (netapi.Listener, error)
}

// SetTCP installs the stream transport used by DialTCP/ListenTCP.
func (h *Host) SetTCP(p TCPProvider) { h.tcp = p }

// HandleProto registers a transport handler (tcpsim uses this for segments).
func (h *Host) HandleProto(proto uint8, fn ProtoHandler) { h.protos[proto] = fn }

// SendProto transmits a transport payload from this host. Used by tcpsim.
func (h *Host) SendProto(proto uint8, src, dst netip.AddrPort, payload any) error {
	return h.net.send(proto, h, src, dst, payload, false, nil)
}

// SendRaw injects a UDP datagram with an arbitrary source address, bypassing
// any gateway on this host. This is the spoofing primitive used by attack
// generators and by middleboxes re-injecting intercepted traffic.
func (h *Host) SendRaw(src, dst netip.AddrPort, payload []byte) error {
	h.Stats.UDPSent++
	return h.net.send(ProtoUDP, h, src, dst, cloneBytes(payload), true, nil)
}

// InjectTo delivers a datagram directly to target, skipping routing and
// claims. Middleboxes use it to hand intercepted traffic to the machine that
// natively owns the destination address.
func (h *Host) InjectTo(target *Host, src, dst netip.AddrPort, payload []byte) error {
	h.Stats.UDPSent++
	return h.net.send(ProtoUDP, h, src, dst, cloneBytes(payload), true, target)
}

// deliver hands an arriving payload to the right endpoint on this host.
func (h *Host) deliver(proto uint8, src, dst netip.AddrPort, payload any) {
	if proto != ProtoUDP {
		if fn, ok := h.protos[proto]; ok {
			h.net.Stats.Delivered++
			fn(src, dst, payload)
			return
		}
		h.Stats.NoSocket++
		h.net.Stats.NoSocket++
		return
	}
	b, ok := payload.([]byte)
	if !ok {
		panic("netsim: UDP payload must be []byte")
	}
	h.Stats.UDPReceived++
	pkt := Packet{Src: src, Dst: dst, Payload: b}
	if c, ok := h.udp[dst]; ok && !c.closed {
		h.net.Stats.Delivered++
		if !c.q.Put(pkt) {
			h.Stats.RecvDropped++
			recycleBytes(b)
		}
		return
	}
	if h.tap != nil && !h.tap.closed {
		h.net.Stats.Delivered++
		if !h.tap.q.Put(pkt) {
			h.Stats.RecvDropped++
			recycleBytes(b)
		}
		return
	}
	h.Stats.NoSocket++
	h.net.Stats.NoSocket++
	recycleBytes(b)
}

// UDPConn is a simulated datagram socket.
type UDPConn struct {
	host   *Host
	local  netip.AddrPort
	q      *vclock.Queue[Packet]
	closed bool
}

var _ netapi.UDPConn = (*UDPConn)(nil)

// ReadFrom implements netapi.UDPConn.
func (c *UDPConn) ReadFrom(timeout time.Duration) ([]byte, netip.AddrPort, error) {
	pkt, err := c.q.Get(timeout)
	if err != nil {
		return nil, netip.AddrPort{}, mapQueueErr(err)
	}
	return pkt.Payload, pkt.Src, nil
}

// WriteTo implements netapi.UDPConn.
func (c *UDPConn) WriteTo(b []byte, to netip.AddrPort) error {
	if c.closed {
		return netapi.ErrClosed
	}
	c.host.Stats.UDPSent++
	return c.host.net.send(ProtoUDP, c.host, c.local, to, cloneBytes(b), false, nil)
}

// LocalAddr implements netapi.UDPConn.
func (c *UDPConn) LocalAddr() netip.AddrPort { return c.local }

// Close implements netapi.UDPConn.
func (c *UDPConn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	delete(c.host.udp, c.local)
	if n := c.host.ports[c.local.Port()]; n > 1 {
		c.host.ports[c.local.Port()] = n - 1
	} else {
		delete(c.host.ports, c.local.Port())
	}
	c.q.Close()
	return nil
}

// Tap receives every datagram delivered to this host that no explicit socket
// claimed — including traffic for claimed prefixes and gateway-intercepted
// traffic. It is the guard's packet-capture interface.
type Tap struct {
	host   *Host
	q      *vclock.Queue[Packet]
	closed bool
}

// OpenTap installs the host's tap. Only one tap may exist per host.
func (h *Host) OpenTap() (*Tap, error) {
	if h.tap != nil && !h.tap.closed {
		return nil, fmt.Errorf("netsim: %s already has a tap: %w", h.name, netapi.ErrAddrInUse)
	}
	t := &Tap{host: h, q: vclock.NewBoundedQueue[Packet](h.net.sched, h.queueCap)}
	h.tap = t
	return t, nil
}

// Read blocks until a packet arrives, the timeout elapses, or the tap closes.
func (t *Tap) Read(timeout time.Duration) (Packet, error) {
	pkt, err := t.q.Get(timeout)
	if err != nil {
		return Packet{}, mapQueueErr(err)
	}
	return pkt, nil
}

// WriteFromTo sends a datagram with an explicit source address; the source
// should be an address this tap's host owns or claims (e.g. answering as the
// protected ANS).
func (t *Tap) WriteFromTo(src, dst netip.AddrPort, payload []byte) error {
	if t.closed {
		return netapi.ErrClosed
	}
	return t.host.SendRaw(src, dst, payload)
}

// Pending reports queued packets (backlog) on the tap.
func (t *Tap) Pending() int { return t.q.Len() }

// Dropped reports packets tail-dropped from the tap queue.
func (t *Tap) Dropped() uint64 { return t.q.Dropped() }

// Close shuts the tap; blocked readers receive ErrClosed.
func (t *Tap) Close() error {
	if t.closed {
		return nil
	}
	t.closed = true
	t.q.Close()
	return nil
}

func mapQueueErr(err error) error {
	switch err {
	case vclock.ErrTimeout:
		return netapi.ErrTimeout
	case vclock.ErrClosed:
		return netapi.ErrClosed
	default:
		return err
	}
}

// payloadPool recycles in-flight datagram buffers. Delivered payloads are
// caller-owned (netapi.UDPConn.ReadFrom contract) and never return here; only
// payloads the network itself drops — queue overflow, loss, partitions, no
// socket — are recycled. Under the spoofed floods the guard is built for,
// drops are the common case, so this removes the per-drop allocation.
var payloadPool sync.Pool

const payloadPoolCap = 2048 // covers DNS-over-UDP; larger payloads bypass

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	var out []byte
	if v := payloadPool.Get(); v != nil {
		if buf := v.([]byte); cap(buf) >= len(b) {
			out = buf[:len(b)]
		}
	}
	if out == nil {
		out = make([]byte, len(b), max(len(b), payloadPoolCap))
	}
	copy(out, b)
	return out
}

// recycleBytes returns a dropped payload's buffer to the pool. Callers must
// hold the only reference (true for every clone the network made itself).
func recycleBytes(b []byte) {
	if cap(b) >= payloadPoolCap {
		payloadPool.Put(b[:0])
	}
}

// recyclePayload is recycleBytes for the transport-agnostic payload slot.
func recyclePayload(payload any) {
	if b, ok := payload.([]byte); ok {
		recycleBytes(b)
	}
}
