// Env capability extensions used by the engine dataplane: scheduler-aware
// bounded queues (netapi.QueueEnv) and multi-handle UDP ingest
// (netapi.UDPReuseEnv). Both must exist here because netsim procs may only
// block through vclock primitives — an engine built on Go channels would
// deadlock the discrete-event scheduler the moment a worker blocked on one.
package netsim

import (
	"fmt"
	"net/netip"
	"time"

	"dnsguard/internal/netapi"
	"dnsguard/internal/vclock"
)

var (
	_ netapi.QueueEnv    = (*Host)(nil)
	_ netapi.UDPReuseEnv = (*Host)(nil)
)

// NewQueue implements netapi.QueueEnv with a vclock bounded queue, so Get
// parks the calling proc on the virtual clock.
func (h *Host) NewQueue(capacity int) netapi.Queue {
	return &simQueue{q: vclock.NewBoundedQueue[any](h.net.sched, capacity)}
}

type simQueue struct {
	q *vclock.Queue[any]
}

func (s *simQueue) Put(v any) bool { return s.q.Put(v) }

func (s *simQueue) PutEvict(v any) (any, bool) {
	if s.q.Closed() {
		// netapi.Queue contract: a closed queue bounces v back as evicted.
		return v, true
	}
	return s.q.PutEvict(v)
}

func (s *simQueue) Get(timeout time.Duration) (any, error) {
	v, err := s.q.Get(timeout)
	if err != nil {
		return nil, mapQueueErr(err)
	}
	return v, nil
}

func (s *simQueue) Len() int { return s.q.Len() }

func (s *simQueue) Close() { s.q.Close() }

// ListenUDPReuse implements netapi.UDPReuseEnv as a fan-out shim: the
// address is bound once and n handles share the underlying receive queue
// (vclock queues support multiple blocked readers, each datagram waking
// exactly one — the closest simulator analog of kernel SO_REUSEPORT
// steering). The binding is released when every handle has been closed.
func (h *Host) ListenUDPReuse(addr netip.AddrPort, n int) ([]netapi.UDPConn, error) {
	if n < 1 {
		return nil, fmt.Errorf("netsim: ListenUDPReuse: n must be >= 1, got %d", n)
	}
	base, err := h.ListenUDP(addr)
	if err != nil {
		return nil, err
	}
	shared := &sharedUDP{conn: base.(*UDPConn), refs: n}
	conns := make([]netapi.UDPConn, n)
	for i := range conns {
		conns[i] = &reuseConn{shared: shared}
	}
	return conns, nil
}

// sharedUDP refcounts one bound simulator socket across reuse handles.
type sharedUDP struct {
	conn *UDPConn
	refs int
}

type reuseConn struct {
	shared *sharedUDP
	closed bool
}

var (
	_ netapi.UDPConn        = (*reuseConn)(nil)
	_ netapi.FlowStableConn = (*reuseConn)(nil)
)

// FlowStable reports false: the fan-out shim hands each datagram to whichever
// handle is blocked, so a flow wanders across handles. Affine ingest must not
// engage here — netsim keeps the source-hash mapping, which is also what
// makes multi-shard replays deterministic (see engine.IngestMode).
func (c *reuseConn) FlowStable() bool { return false }

func (c *reuseConn) ReadFrom(timeout time.Duration) ([]byte, netip.AddrPort, error) {
	if c.closed {
		return nil, netip.AddrPort{}, netapi.ErrClosed
	}
	return c.shared.conn.ReadFrom(timeout)
}

func (c *reuseConn) WriteTo(b []byte, to netip.AddrPort) error {
	if c.closed {
		return netapi.ErrClosed
	}
	return c.shared.conn.WriteTo(b, to)
}

func (c *reuseConn) LocalAddr() netip.AddrPort { return c.shared.conn.LocalAddr() }

func (c *reuseConn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.shared.refs--
	if c.shared.refs == 0 {
		return c.shared.conn.Close()
	}
	return nil
}
