// Batch datagram I/O for the simulator: netapi.BatchConn on simulated
// sockets and a batch read on taps. A batch read takes the first datagram
// under normal blocking rules and then drains what is already buffered with
// zero-timeout polls. vclock.Queue.Get(0) on a non-empty queue hands back
// the head without parking the proc or scheduling anything, and on an empty
// queue returns ErrTimeout equally event-free — so a batch read consumes
// exactly the queue states a loop of single reads would have seen and leaves
// the event schedule bit-for-bit unchanged (DESIGN.md §12).
package netsim

import (
	"time"

	"dnsguard/internal/netapi"
)

var (
	_ netapi.BatchEnv  = (*Host)(nil)
	_ netapi.BatchConn = (*UDPConn)(nil)
	_ netapi.BatchConn = (*reuseConn)(nil)
)

// BatchIO implements netapi.BatchEnv: simulated sockets drain their
// delivery queue natively.
func (h *Host) BatchIO() bool { return true }

// ReadBatch implements netapi.BatchConn. Delivered clones are copied into
// the slab and recycled, so a batch-reading consumer returns in-flight
// buffers to the payload pool instead of retiring them to the GC.
func (c *UDPConn) ReadBatch(msgs []netapi.Datagram, timeout time.Duration) (int, error) {
	if len(msgs) == 0 {
		return 0, nil
	}
	pkt, err := c.q.Get(timeout)
	if err != nil {
		return 0, mapQueueErr(err)
	}
	storeSimDatagram(&msgs[0], pkt)
	n := 1
	for n < len(msgs) {
		pkt, err := c.q.Get(0)
		if err != nil {
			break
		}
		storeSimDatagram(&msgs[n], pkt)
		n++
	}
	return n, nil
}

// WriteBatch implements netapi.BatchConn. Each datagram is routed as its
// own delivery event, in slab order — the exact event sequence n WriteTo
// calls would schedule.
func (c *UDPConn) WriteBatch(msgs []netapi.Datagram) (int, error) {
	for i := range msgs {
		if err := c.WriteTo(msgs[i].Buf[:msgs[i].N], msgs[i].Addr); err != nil {
			return i, err
		}
	}
	return len(msgs), nil
}

// ReadBatch implements netapi.BatchConn on reuse handles; all handles drain
// the one shared queue, like their single reads.
func (c *reuseConn) ReadBatch(msgs []netapi.Datagram, timeout time.Duration) (int, error) {
	if c.closed {
		return 0, netapi.ErrClosed
	}
	return c.shared.conn.ReadBatch(msgs, timeout)
}

// WriteBatch implements netapi.BatchConn.
func (c *reuseConn) WriteBatch(msgs []netapi.Datagram) (int, error) {
	if c.closed {
		return 0, netapi.ErrClosed
	}
	return c.shared.conn.WriteBatch(msgs)
}

// storeSimDatagram copies a delivered packet into the slot under the slab
// contract (reuse capacity, truncate to cap, allocate only when empty) and
// recycles the network's clone.
func storeSimDatagram(d *netapi.Datagram, pkt Packet) {
	p := pkt.Payload
	if c := cap(d.Buf); c == 0 {
		d.Buf = append([]byte(nil), p...)
	} else {
		if len(p) > c {
			p = p[:c]
		}
		d.Buf = append(d.Buf[:0], p...)
	}
	d.N = len(p)
	d.Addr = pkt.Src
	recycleBytes(pkt.Payload)
}

// ReadBatch fills pkts with up to len(pkts) captured datagrams: the first
// under normal blocking rules, the rest from the tap's existing backlog
// without parking. Payloads are caller-owned, as with Read.
func (t *Tap) ReadBatch(pkts []Packet, timeout time.Duration) (int, error) {
	if len(pkts) == 0 {
		return 0, nil
	}
	pkt, err := t.q.Get(timeout)
	if err != nil {
		return 0, mapQueueErr(err)
	}
	pkts[0] = pkt
	n := 1
	for n < len(pkts) {
		pkt, err := t.q.Get(0)
		if err != nil {
			break
		}
		pkts[n] = pkt
		n++
	}
	return n, nil
}
