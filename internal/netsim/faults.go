// Adversarial-network fault injection. The paper's testbed degrades only by
// probabilistic loss; real DNS attacks (and the operational studies they
// spawned) degrade delivery in richer ways: duplicated datagrams from
// retransmitting middleboxes, reordering across load-balanced paths, bit
// corruption, latency jitter, and outright partitions. Faults models all of
// these per directed host pair, deterministically, using the scheduler's
// seeded random source — the same inputs always replay the same run.
package netsim

import (
	"time"
)

// Faults is a per-link fault-injection policy. The zero value injects
// nothing and consumes no randomness, so unfaulted simulations remain
// bit-for-bit identical to runs predating this layer. Probabilities are in
// [0, 1] and evaluated independently per datagram.
type Faults struct {
	// Loss drops the datagram silently, in addition to any rate installed
	// with SetLoss (either trigger drops).
	Loss float64
	// Duplicate delivers a second, independent copy of the datagram after
	// an extra delay in (0, ReorderDelay].
	Duplicate float64
	// Reorder delays the datagram by an extra amount in (0, ReorderDelay],
	// letting later traffic overtake it (netsim links are otherwise FIFO).
	Reorder float64
	// ReorderDelay bounds the extra delay for reordered and duplicated
	// datagrams. Zero means twice the link's one-way latency.
	ReorderDelay time.Duration
	// Corrupt flips one to four random bits of a UDP payload. Non-UDP
	// transports (simulated TCP segments) carry structured payloads whose
	// checksums would reject the damage, so corruption drops them instead
	// — which is what a real link-layer CRC failure looks like to TCP.
	Corrupt float64
	// Jitter adds a uniform extra latency in [0, Jitter) to every
	// datagram on the link.
	Jitter time.Duration
	// UDPOnly restricts this policy to UDP datagrams, letting simulated TCP
	// segments pass clean — the signature of middleboxes that rate-limit or
	// mangle UDP/53 specifically. Partitions and SetLoss are unaffected.
	UDPOnly bool
}

// active reports whether the policy can affect traffic at all.
func (f Faults) active() bool {
	return f.Loss > 0 || f.Duplicate > 0 || f.Reorder > 0 || f.Corrupt > 0 || f.Jitter > 0
}

// LinkStats counts per-fault events on one directed link (and, aggregated,
// network-wide in NetStats). Sent counts datagrams that reached the fault
// stage, before any verdict.
type LinkStats struct {
	Sent           uint64
	Lost           uint64 // dropped by SetLoss or Faults.Loss
	Duplicated     uint64
	Reordered      uint64
	Corrupted      uint64 // payload damaged (UDP) or CRC-dropped (non-UDP)
	PartitionDrops uint64 // dropped while the link was partitioned
}

// SetFaults installs the fault policy for datagrams from a to b. Directions
// are independent; call twice (or use SetLinkFaults) for a symmetric link.
func (n *Network) SetFaults(a, b *Host, f Faults) {
	n.faults[hostPair{a, b}] = f
}

// SetLinkFaults installs the same fault policy in both directions.
func (n *Network) SetLinkFaults(a, b *Host, f Faults) {
	n.SetFaults(a, b, f)
	n.SetFaults(b, a, f)
}

// SetDefaultFaults installs the policy applied to links without an explicit
// override.
func (n *Network) SetDefaultFaults(f Faults) { n.defFaults = f }

func (n *Network) faultsBetween(a, b *Host) Faults {
	if f, ok := n.faults[hostPair{a, b}]; ok {
		return f
	}
	return n.defFaults
}

// Partition severs the link between a and b in both directions; datagrams
// are dropped (and counted) until Heal. Partitioning is idempotent.
func (n *Network) Partition(a, b *Host) {
	n.parts[hostPair{a, b}] = true
	n.parts[hostPair{b, a}] = true
}

// Heal restores a partitioned link in both directions.
func (n *Network) Heal(a, b *Host) {
	delete(n.parts, hostPair{a, b})
	delete(n.parts, hostPair{b, a})
}

// Partitioned reports whether traffic from a to b is currently severed.
func (n *Network) Partitioned(a, b *Host) bool { return n.parts[hostPair{a, b}] }

// PartitionFor schedules a split of the a—b link at virtual time `after`
// from now, healing itself `duration` later. Scheduled events compose: a
// test can script an entire outage timeline up front.
func (n *Network) PartitionFor(a, b *Host, after, duration time.Duration) {
	n.sched.After(after, func() { n.Partition(a, b) })
	n.sched.After(after+duration, func() { n.Heal(a, b) })
}

// At schedules fn on the virtual clock `after` from now, running in
// scheduler (callback) context. It is the generic scripting hook behind
// PartitionFor: survivability tests use it to stage guard restarts, key
// rotations, and breaker probes at exact virtual times.
func (n *Network) At(after time.Duration, fn func()) {
	n.sched.After(after, fn)
}

// IsolateFor blacks out host h — severs its links to every other host — at
// virtual time `after` from now, healing `duration` later. This is the
// scripted "ANS goes dark" event for upstream-failover tests: unlike a
// pairwise PartitionFor, no probe path survives.
func (n *Network) IsolateFor(h *Host, after, duration time.Duration) {
	n.sched.After(after, func() {
		for _, other := range n.hosts {
			if other != h {
				n.Partition(h, other)
			}
		}
	})
	n.sched.After(after+duration, func() {
		for _, other := range n.hosts {
			if other != h {
				n.Heal(h, other)
			}
		}
	})
}

// LinkStats returns a copy of the per-fault counters for the directed link
// from a to b.
func (n *Network) LinkStats(a, b *Host) LinkStats {
	if ls, ok := n.linkStats[hostPair{a, b}]; ok {
		return *ls
	}
	return LinkStats{}
}

func (n *Network) linkStatsFor(a, b *Host) *LinkStats {
	p := hostPair{a, b}
	ls, ok := n.linkStats[p]
	if !ok {
		ls = &LinkStats{}
		n.linkStats[p] = ls
	}
	return ls
}

// applyFaults runs the fault pipeline for one datagram from src to target.
// It returns the (possibly corrupted) payload, the extra latency to add, a
// duplicate-copy delay (0 means no duplicate), and whether to deliver at
// all. It draws randomness only for configured faults, preserving replay
// compatibility for fault-free simulations.
func (n *Network) applyFaults(proto uint8, src, target *Host, payload any) (any, time.Duration, time.Duration, bool) {
	ls := n.linkStatsFor(src, target)
	ls.Sent++
	if n.parts[hostPair{src, target}] {
		ls.PartitionDrops++
		n.Stats.PartitionDrops++
		return payload, 0, 0, false
	}
	if r := n.lossBetween(src, target); r > 0 && n.sched.Rand().Float64() < r {
		ls.Lost++
		n.Stats.Lost++
		return payload, 0, 0, false
	}
	f := n.faultsBetween(src, target)
	if !f.active() || (f.UDPOnly && proto != ProtoUDP) {
		return payload, 0, 0, true
	}
	if f.Loss > 0 && n.sched.Rand().Float64() < f.Loss {
		ls.Lost++
		n.Stats.Lost++
		return payload, 0, 0, false
	}
	if f.Corrupt > 0 && n.sched.Rand().Float64() < f.Corrupt {
		ls.Corrupted++
		n.Stats.Corrupted++
		b, ok := payload.([]byte)
		if !ok || proto != ProtoUDP || len(b) == 0 {
			// Structured transport payload: the checksum underneath
			// would reject it, so corruption degenerates to loss.
			return payload, 0, 0, false
		}
		payload = n.corruptBytes(b)
	}
	reorderDelay := f.ReorderDelay
	if reorderDelay <= 0 {
		reorderDelay = 2 * n.latencyBetween(src, target)
	}
	var extra time.Duration
	if f.Jitter > 0 {
		extra += n.sched.RandDuration(f.Jitter)
	}
	if f.Reorder > 0 && n.sched.Rand().Float64() < f.Reorder {
		ls.Reordered++
		n.Stats.Reordered++
		extra += time.Microsecond + n.sched.RandDuration(reorderDelay)
	}
	var dupDelay time.Duration
	if f.Duplicate > 0 && n.sched.Rand().Float64() < f.Duplicate {
		ls.Duplicated++
		n.Stats.Duplicated++
		dupDelay = time.Microsecond + n.sched.RandDuration(reorderDelay)
	}
	return payload, extra, dupDelay, true
}

// corruptBytes flips 1–4 random bits in a copy of b; b itself is recycled
// (the caller abandons it for the damaged copy).
func (n *Network) corruptBytes(b []byte) []byte {
	out := cloneBytes(b)
	recycleBytes(b)
	flips := 1 + n.sched.Rand().Intn(4)
	for i := 0; i < flips; i++ {
		out[n.sched.Rand().Intn(len(out))] ^= byte(1) << n.sched.Rand().Intn(8)
	}
	return out
}

// dupPayload deep-copies a []byte payload so the duplicate delivery cannot
// alias the original buffer; structured payloads (TCP segments) are shared,
// matching how tcpsim treats received segments as immutable.
func dupPayload(payload any) any {
	if b, ok := payload.([]byte); ok {
		return cloneBytes(b)
	}
	return payload
}
